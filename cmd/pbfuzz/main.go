// Command pbfuzz is the bulk driver of the differential fuzzing harness: it
// generates adversarial OPB instances (internal/gen.AdversarialOPB), runs
// each through internal/fuzz.Check — every lower-bound method, both search
// strategies, the ablation toggles, and the cooperative/isolated portfolio,
// all under the internal/audit invariant auditor and against the brute-force
// oracle — and shrinks any mismatch to a minimal reproducer.
//
// Reproducers are written to -out (default testdata/fuzz-corpus/) with the
// mismatch list in the header comment; TestFuzzCorpus replays that directory
// on every `go test` run, so a finding stays a regression test forever.
//
// Usage:
//
//	pbfuzz [-n 1000] [-seed 1] [-vars 6] [-rows 5] [-budget 50000] [-out dir]
//
// Exit status: 0 clean, 1 findings written, 2 usage/setup error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/fuzz"
	"repro/internal/gen"
	"repro/internal/opb"
	"repro/internal/pb"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of instances to generate")
		seed     = flag.Int64("seed", 1, "base seed (instance i uses seed+i)")
		vars     = flag.Int("vars", 0, "variables per instance (0 = generator default)")
		rows     = flag.Int("rows", 0, "constraint rows per instance (0 = generator default)")
		budget   = flag.Int64("budget", 0, "per-configuration conflict budget (0 = fuzz.DefaultBudget)")
		out      = flag.String("out", filepath.Join("testdata", "fuzz-corpus"), "directory for shrunk reproducers")
		maxTime  = flag.Duration("time", 0, "wall-clock cap for the whole run (0 = none)")
		verbose  = flag.Bool("v", false, "log every instance, not just findings")
		hugeProb = flag.Float64("huge", 0, "probability of near-MaxInt64 coefficients (0 = generator default)")
	)
	flag.Parse()

	start := time.Now()
	findings := 0
	parsed, skipped := 0, 0
	for i := 0; i < *n; i++ {
		if *maxTime > 0 && time.Since(start) > *maxTime {
			fmt.Fprintf(os.Stderr, "c time cap reached after %d instances\n", i)
			break
		}
		s := *seed + int64(i)
		text := gen.AdversarialOPB(gen.AdversarialConfig{
			Vars: *vars, Rows: *rows, Seed: s, HugeProb: *hugeProb,
		})
		p, err := opb.ParseString(text)
		if err != nil {
			skipped++ // structured rejection (overflow &c.) — intended outcome
			if *verbose {
				fmt.Printf("c seed %d: rejected by parser: %v\n", s, err)
			}
			continue
		}
		parsed++
		ms := fuzz.Check(p, *budget)
		if len(ms) == 0 {
			if *verbose {
				fmt.Printf("c seed %d: clean\n", s)
			}
			continue
		}
		findings++
		small := fuzz.Shrink(p, func(q *pb.Problem) bool {
			return len(fuzz.Check(q, *budget)) > 0
		})
		sms := fuzz.Check(small, *budget)
		fmt.Fprintf(os.Stderr, "c seed %d: %d mismatch(es), shrunk %d->%d constraints\n",
			s, len(ms), len(p.Constraints), len(small.Constraints))
		for _, m := range sms {
			fmt.Fprintf(os.Stderr, "c   %s\n", m)
		}
		if err := save(*out, s, small, sms); err != nil {
			fmt.Fprintf(os.Stderr, "error saving reproducer: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Printf("c pbfuzz: %d generated, %d parsed, %d rejected, %d finding(s) in %v\n",
		*n, parsed, skipped, findings, time.Since(start).Round(time.Millisecond))
	if findings > 0 {
		os.Exit(1)
	}
}

// save writes the shrunk reproducer with its mismatch list as the header
// comment, named by the generating seed.
func save(dir string, seed int64, p *pb.Problem, ms []fuzz.Mismatch) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "* pbfuzz reproducer, seed %d\n", seed)
	for _, m := range ms {
		fmt.Fprintf(&sb, "* mismatch %s\n", m)
	}
	sb.WriteString(opb.WriteString(p))
	name := filepath.Join(dir, fmt.Sprintf("seed-%d.opb", seed))
	return os.WriteFile(name, []byte(sb.String()), 0o644)
}
