// Command pbcheck validates a solver's output against an OPB instance: it
// reads the instance, a "v ..." value line (from bsolo or any
// PB-competition-style solver), and reports whether the assignment is
// feasible and what it costs. Exit status 0 = feasible, 1 = infeasible or
// error. The checking logic lives in internal/verify.
//
// Usage:
//
//	bsolo -lb lpr f.opb | pbcheck f.opb
//	pbcheck -v "x1 -x2 x3" f.opb
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/opb"
	"repro/internal/verify"
)

func main() {
	valueLine := flag.String("v", "", "value line (default: read a 'v' line from stdin)")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: pbcheck [-v literals] instance.opb"))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prob, err := opb.Parse(f)
	if err != nil {
		fatal(err)
	}

	var a verify.Assignment
	if *valueLine != "" {
		a, err = verify.ParseValueLine(prob, *valueLine)
	} else {
		a, err = verify.ScanValueLine(prob, os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	if a.Missing > 0 {
		fmt.Printf("c %d variables missing from the value line (defaulted to the zero-cost polarity; %d derived from negative-cost partners)\n",
			a.Missing, a.Derived)
	}

	rep := verify.Check(prob, a.Values)
	if !rep.Feasible {
		fmt.Printf("s INFEASIBLE (constraint %d violated: %v)\n", rep.ViolatedIdx, rep.Violated)
		os.Exit(1)
	}
	fmt.Printf("s FEASIBLE\no %d\n", rep.Objective)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbcheck:", err)
	os.Exit(1)
}
