// Command bsolo is the reproduction's pseudo-Boolean optimizer CLI: it reads
// an OPB instance and solves it with a selectable lower-bound method and
// search strategy, printing results in the pseudo-Boolean-evaluation style
// (c comments, "s" status line, "o" objective line, "v" value line).
//
// Usage:
//
//	bsolo [flags] [instance.opb]
//
// With no file argument the instance is read from standard input.
//
// Weighted Boolean Optimization inputs are selected with -wcnf (DIMACS
// weighted CNF) or -wbo (soft OPB). They solve through the big-M compilation
// by default; -core-guided switches to the WPM1 core-guided loop (or, with
// -portfolio, adds it to the race). Weighted runs report the penalty optimum
// in instance space and exit 30 (optimum), 20 (the hard constraints alone
// are contradictory) or 0 (unknown), per the MaxSAT-evaluation convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/opb"
	"repro/internal/pb"
	"repro/internal/portfolio"
	"repro/internal/preprocess"
	"repro/internal/share"
	"repro/internal/verify"
	"repro/internal/wbo"
	"repro/internal/wcnf"
)

func main() {
	var (
		lbFlag       = flag.String("lb", "lpr", "lower bound method: plain|mis|lgr|lpr")
		strategy     = flag.String("strategy", "bb", "search strategy: bb (branch-and-bound) | linear")
		wcnfIn       = flag.Bool("wcnf", false, "parse the input as weighted CNF (DIMACS wcnf; weights at or above the header top are hard)")
		wboIn        = flag.Bool("wbo", false, "parse the input as soft OPB (soft: header plus [w]-prefixed soft constraints)")
		coreGuided   = flag.Bool("core-guided", false, "with -wcnf/-wbo: WPM1 core-guided search instead of big-M branch-and-bound (with -portfolio: joins the race as an extra member)")
		timeLimit    = flag.Duration("time", 0, "wall-clock limit (e.g. 30s; 0 = none)")
		maxConflicts = flag.Int64("conflicts", 0, "conflict limit (0 = none)")
		chrono       = flag.Bool("chrono", false, "chronological backtracking on bound conflicts (§4 ablation)")
		noLPBranch   = flag.Bool("no-lp-branching", false, "disable §5 LP-guided branching")
		noKnapsack   = flag.Bool("no-knapsack", false, "disable the eq. 10 incumbent constraint")
		cardInf      = flag.Bool("card-inference", true, "enable eq. 11-13 cardinality inference")
		lgrIters     = flag.Int("lgr-iters", 50, "Lagrangian subgradient iterations per bound")
		boundBudget  = flag.Duration("bound-budget", 0, "wall-clock cap per lower-bound call (0 = derive from -time; -1ns = uncapped)")
		fallbackK    = flag.Int("fallback-after", 0, "consecutive bound failures before demoting to MIS (0 = default 8; <0 = never)")
		pre          = flag.Bool("preprocess", false, "apply probing/strengthening/subsumption first")
		presolve     = flag.Bool("presolve", false, "fix variables by probing + roof-duality-style persistency and solve the reduced problem (results are mapped back to the original variables)")
		coverRed     = flag.Bool("cover", false, "apply covering-problem reductions (implies -preprocess machinery)")
		pbLearn      = flag.Bool("pb-learning", false, "derive Galena-style cutting-plane constraints at conflicts")
		incremental  = flag.Bool("incremental", true, "maintain the reduced problem incrementally across nodes (false = rebuild per node)")
		warmLP       = flag.Bool("warm-lp", true, "warm-start the LPR simplex from the previous node's basis")
		cutsOn       = flag.Bool("cuts", true, "with -lb lpr: separate knapsack-cover and clique cuts into a managed pool")
		cutRounds    = flag.Int("cut-rounds", 0, "with -cuts: root separation fixpoint cap (0 = default)")
		cutMaxPool   = flag.Int("cut-max-pool", 0, "with -cuts: cut pool capacity before activity-based eviction (0 = default)")
		portfolioRun = flag.Bool("portfolio", false, "race all four lower-bound methods concurrently")
		shareOn      = flag.Bool("share", true, "with -portfolio: cooperative sharing (incumbents + learned clauses); false = isolated race")
		shareLen     = flag.Int("share-len", 8, "with -portfolio -share: max literals of an exchanged clause")
		shareLBD     = flag.Int("share-lbd", 4, "with -portfolio -share: max LBD of an exchanged clause")
		shareCap     = flag.Int("share-cap", 4096, "with -portfolio -share: exchange ring capacity in clauses")
		maxMembers   = flag.Int("members", 0, "with -portfolio: cap on concurrently running members (0 = GOMAXPROCS; 1 + -share=false = deterministic)")
		lsMembers    = flag.Int("ls", 0, "with -portfolio: append this many stochastic local-search members (UB-only: they publish incumbents but never prove optimality or infeasibility)")
		lsFlips      = flag.Int64("ls-flips", 0, "with -ls: per-member flip limit (0 = none; the wall clock governs)")
		seed         = flag.Int64("seed", 0, "RNG seed for -random-branch (0 = default seed 1; portfolio members use per-member seeds)")
		randBranch   = flag.Float64("random-branch", 0, "probability of a random branch decision (single-solver diversification; 0 = off)")
		auditRun     = flag.Bool("audit", false, "replay learned clauses, bound conflicts, imports and incumbents against the original problem (exhaustive on small instances; see internal/audit)")
		showStats    = flag.Bool("stats", false, "print solver statistics")
		showModel    = flag.Bool("model", true, "print the v (values) line")
		tracePath    = flag.String("trace", "", "record structured search events and write them as JSONL to this file at exit")
		tracePretty  = flag.Bool("trace-pretty", false, "print the recorded search events human-readably on stderr at exit (implies tracing)")
		traceCap     = flag.Int("trace-cap", obs.DefaultTraceCapacity, "trace ring capacity in events (oldest events are overwritten beyond it)")
		debugAddr    = flag.String("debug-addr", "", "serve the live introspection endpoint (GET /metrics JSON + /debug/pprof) on this address; \":port\" binds loopback only")
		metricsPath  = flag.String("metrics", "", "write the final unified metrics snapshot JSON to this file at exit")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var (
		prob *pb.Problem
		wi   *wbo.Instance // weighted instance (-wcnf/-wbo); nil for plain OPB
		err  error
	)
	switch {
	case *wcnfIn && *wboIn:
		fatal(fmt.Errorf("-wcnf and -wbo are mutually exclusive"))
	case *wcnfIn, *wboIn:
		if *wcnfIn {
			wi, err = wcnf.Parse(in)
		} else {
			wi, err = wcnf.ParseWBO(in)
		}
		if err != nil {
			fatal(err)
		}
		// The big-M compilation is the problem every exact member, the
		// auditor and the share board see; core-guided witnesses are mapped
		// into it via ExtendedWitness before they are verified or published.
		b, berr := wi.Builder()
		if berr != nil {
			fatal(berr)
		}
		if prob, err = b.Problem(); err != nil {
			fatal(err)
		}
		fmt.Printf("c parsed weighted instance: %d variables, %d hard, %d soft (offset %d)\n",
			wi.NumVars, len(wi.Hard), len(wi.Soft), wi.Offset)
		fmt.Printf("c compiled to %d variables, %d constraints\n", prob.NumVars, len(prob.Constraints))
	default:
		if prob, err = opb.Parse(in); err != nil {
			fatal(err)
		}
		fmt.Printf("c parsed %d variables, %d constraints\n", prob.NumVars, len(prob.Constraints))
	}
	if *coreGuided && wi == nil {
		fatal(fmt.Errorf("-core-guided requires a weighted instance (-wcnf or -wbo)"))
	}
	if wi != nil && (*pre || *presolve || *coverRed) {
		// These passes renumber or rewrite variables, which would silently
		// break the soft-constraint index mapping behind ExtendedWitness.
		fatal(fmt.Errorf("-preprocess/-presolve/-cover are not supported with -wcnf/-wbo"))
	}

	if *pre || *coverRed {
		var info preprocess.Info
		prob, info, err = preprocess.Apply(prob, preprocess.Options{
			Probing:           *pre,
			Strengthening:     *pre,
			Subsumption:       *pre,
			CoverReductions:   *coverRed,
			CardinalityDetect: *pre,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("c preprocess: fixed=%d implications=%d subsumed=%d card=%d essential=%d domRows=%d domCols=%d\n",
			info.FixedLiterals, info.Implications, info.SubsumedRemoved, info.CardinalityNormalized,
			info.Cover.EssentialColumns, info.Cover.DominatedRows, info.Cover.DominatedColumns)
	}

	// -presolve eliminates variables and renumbers the problem; origProb and
	// fixing carry the mapping so the o/v lines and the final verification
	// stay in the ORIGINAL variable space.
	origProb := prob
	var fixing *preprocess.Fixing
	if *presolve {
		fixing, err = preprocess.FixVariables(prob, preprocess.DefaultFixOptions)
		if err != nil {
			fatal(err)
		}
		prob = fixing.Problem
		fmt.Printf("c presolve: fixed=%d (probing=%d persistency=%d rounds=%d) vars %d -> %d, constraints %d -> %d\n",
			fixing.NumFixed(), fixing.ProbeFixed, fixing.PersistencyFixed, fixing.Rounds,
			origProb.NumVars, prob.NumVars, len(origProb.Constraints), len(prob.Constraints))
		if fixing.ProvedUnsat {
			fmt.Println("c presolve: proved infeasible at the root")
		}
	}

	opt := core.Options{
		TimeLimit:            *timeLimit,
		MaxConflicts:         *maxConflicts,
		ChronologicalBounds:  *chrono,
		NoLPBranching:        *noLPBranch,
		NoKnapsackCuts:       *noKnapsack,
		CardinalityInference: *cardInf,
		LGRIterations:        *lgrIters,
		PBLearning:           *pbLearn,
		BoundBudget:          *boundBudget,
		FallbackAfter:        *fallbackK,
		NoIncrementalReduce:  !*incremental,
		NoWarmLP:             !*warmLP,
		NoCuts:               !*cutsOn,
		CutRounds:            *cutRounds,
		CutMaxPool:           *cutMaxPool,
	}

	// SIGINT/SIGTERM close the Cancel channel so the search unwinds
	// gracefully and prints the best incumbent with an "s UNKNOWN" status
	// line; a second signal exits immediately.
	cancel := make(chan struct{})
	opt.Cancel = cancel
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("c caught %v: stopping search, reporting best incumbent\n", sig)
		close(cancel)
		<-sigc
		fmt.Println("s UNKNOWN")
		os.Exit(130)
	}()
	switch strings.ToLower(*lbFlag) {
	case "plain":
		opt.LowerBound = core.LBNone
	case "mis":
		opt.LowerBound = core.LBMIS
	case "lgr":
		opt.LowerBound = core.LBLGR
	case "lpr":
		opt.LowerBound = core.LBLPR
	default:
		fatal(fmt.Errorf("unknown -lb %q", *lbFlag))
	}
	switch strings.ToLower(*strategy) {
	case "bb":
		opt.Strategy = core.StrategyBranchBound
	case "linear":
		opt.Strategy = core.StrategyLinearSearch
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}

	opt.Seed = *seed
	opt.RandomBranchFreq = *randBranch

	var auditor *audit.Auditor
	if *auditRun {
		auditor = audit.New(prob)
		opt.Audit = auditor
		if prob.NumVars > audit.DefaultMaxExhaustiveVars {
			fmt.Printf("c audit: %d variables exceed the exhaustive gate (%d); clause/bound replays will be skipped, incumbents still re-verified\n",
				prob.NumVars, audit.DefaultMaxExhaustiveVars)
		}
	}

	// Observability: the trace ring records structured search events (JSONL
	// and/or pretty-printed at exit); the registry serves tear-free unified
	// metrics snapshots live on -debug-addr and writes the terminal snapshot
	// with -metrics. All nil (zero-cost) when the flags are unset.
	var tracer *obs.Tracer
	if *tracePath != "" || *tracePretty {
		tracer = obs.NewTracer(*traceCap)
	}
	var registry *obs.Registry
	if *debugAddr != "" || *metricsPath != "" {
		registry = obs.NewRegistry()
		if flag.NArg() > 0 {
			registry.SetMeta("instance", flag.Arg(0))
		}
		registry.SetMeta("lb", strings.ToLower(*lbFlag))
	}
	if *debugAddr != "" {
		bound, shutdown, err := obs.Serve(*debugAddr, registry)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Printf("c debug endpoint: http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}

	if *lsMembers > 0 && !*portfolioRun {
		fatal(fmt.Errorf("-ls requires -portfolio (a lone UB-only worker cannot conclude; race it against the exact members)"))
	}

	start := time.Now()
	var res core.Result
	var pres *portfolio.Result
	var wres *wbo.Result
	if *portfolioRun {
		configs := portfolio.DefaultConfigs()
		for i := range configs {
			configs[i].Options.TimeLimit = opt.TimeLimit
			configs[i].Options.MaxConflicts = opt.MaxConflicts
			configs[i].Options.BoundBudget = opt.BoundBudget
			configs[i].Options.FallbackAfter = opt.FallbackAfter
			configs[i].Options.NoCuts = opt.NoCuts
			configs[i].Options.CutRounds = opt.CutRounds
			configs[i].Options.CutMaxPool = opt.CutMaxPool
		}
		// LS members go first: irrelevant when members race concurrently,
		// but under serialized execution (capped -members, low GOMAXPROCS)
		// the UB-only workers must run before the exact members so their
		// incumbents are already on the board warming B&B pruning.
		var lsConfigs []portfolio.Config
		for i := 0; i < *lsMembers; i++ {
			name := "ls"
			if *lsMembers > 1 {
				name = fmt.Sprintf("ls%d", i+1)
			}
			cfg := portfolio.LSConfig(name, int64(101+i), *lsFlips)
			cfg.LS.TimeLimit = opt.TimeLimit
			lsConfigs = append(lsConfigs, cfg)
		}
		configs = append(lsConfigs, configs...)
		if *coreGuided {
			cg := portfolio.Config{Name: "core-guided", CoreGuided: &portfolio.CoreGuided{
				Instance: wi,
				Options:  wbo.Options{TimeLimit: opt.TimeLimit, MaxConflicts: opt.MaxConflicts},
			}}
			configs = append([]portfolio.Config{cg}, configs...)
		}
		p := portfolio.SolveOpts(prob, configs, portfolio.Options{
			NoSharing:     !*shareOn,
			Share:         share.Config{Capacity: *shareCap, MaxLen: *shareLen, MaxLBD: *shareLBD},
			MaxConcurrent: *maxMembers,
			Stop:          cancel,
			Audit:         auditor,
			Trace:         tracer,
			Registry:      registry,
		})
		pres = &p
		res = p.Result
		fmt.Printf("c portfolio winner: %s (members=%d concurrency=%d sharing=%t)\n",
			p.Winner, len(p.Members), p.Concurrency, p.Sharing)
		for name, err := range p.Errors {
			fmt.Printf("c portfolio member %s crashed: %v\n", name, firstLine(err))
		}
	} else if *coreGuided {
		r := wbo.Solve(wi, wbo.Options{
			TimeLimit:    opt.TimeLimit,
			MaxConflicts: opt.MaxConflicts,
			Cancel:       cancel,
		})
		wres = &r
		if auditor != nil {
			// The auditor is scoped to the compiled problem: replay the
			// witness there (selectors set on exactly the violated softs) and
			// state the verdict in compiled-objective terms (minus Offset).
			if r.HasSolution {
				auditor.Incumbent(r.Best-wi.Offset, wi.ExtendedWitness(r.Values))
			}
			switch {
			case r.Status == core.StatusOptimal:
				auditor.Termination(audit.Claim{Optimal: true, Best: r.Best - wi.Offset})
			case r.HardUnsat:
				auditor.Termination(audit.Claim{Unsat: true})
			case r.HasSolution:
				auditor.Termination(audit.Claim{UpperBound: true, Best: r.Best - wi.Offset})
			}
		}
	} else {
		opt.Trace = tracer.Named(strings.ToLower(*lbFlag))
		if registry != nil {
			live := &obs.Live{}
			registry.RegisterSolver(strings.ToLower(*lbFlag), live)
			opt.Live = live
		}
		res = core.SafeSolve(prob, opt)
	}
	elapsed := time.Since(start)
	fmt.Printf("c solved in %v\n", elapsed)

	auditOK := true
	if auditor != nil {
		rep := auditor.Snapshot()
		auditOK = rep.Ok()
		for _, line := range strings.Split(rep.String(), "\n") {
			fmt.Printf("c audit: %s\n", strings.TrimSpace(line))
		}
	}

	// Weighted (-wcnf/-wbo) runs report in instance space, with the
	// hard-UNSAT vs penalty-optimum distinction explicit: "s UNSATISFIABLE"
	// means the hard constraints alone are contradictory (exit 20), while an
	// optimum that merely pays soft penalties prints the penalty on the o
	// line under "s OPTIMUM FOUND" (exit 30). Witnesses are re-verified
	// against both the original soft penalties and the compiled hard rows
	// before printing; any disagreement is a soundness bug (exit 2).
	if wi != nil {
		var (
			status    core.Status
			hardUnsat bool
			hasSol    bool
			best      int64 // instance-space penalty, Offset included
			values    []bool
		)
		if wres != nil {
			status, hardUnsat, hasSol, best = wres.Status, wres.HardUnsat, wres.HasSolution, wres.Best
			values = wres.Values
			fmt.Printf("c core-guided: iterations=%d cores=%d cardRewrites=%d conflicts=%d\n",
				wres.Iterations, wres.Cores, wres.CardRewrites, wres.Conflicts)
			if status == core.StatusLimit {
				fmt.Printf("c proved penalty lower bound %d\n", wres.LowerBound)
			}
			if status == core.StatusError {
				fmt.Printf("c solver error: %v\n", firstLine(wres.Err))
			}
		} else {
			status, hasSol = res.Status, res.HasSolution
			// The compiled soft rows are always satisfiable through their
			// selectors, so compiled-UNSAT can only mean the hard skeleton is.
			hardUnsat = res.Status == core.StatusUnsat
			if res.Status == core.StatusSatisfiable {
				// No soft constraints survived compilation (objective-free
				// problem): a feasible model is the penalty-free optimum.
				status = core.StatusOptimal
			}
			if res.Status == core.StatusError {
				fmt.Printf("c solver error: %v\n", firstLine(res.Err))
			}
			if hasSol {
				values = res.Values[:wi.NumVars]
				best = res.Best + wi.Offset
			}
		}
		sound := true
		if hasSol {
			if pen, _ := wi.Penalty(values); pen+wi.Offset != best {
				fmt.Printf("c weighted: SOUNDNESS BUG — witness pays penalty %d, solver claimed %d\n",
					pen+wi.Offset, best)
				sound = false
			}
			if rep := verify.Check(prob, wi.ExtendedWitness(values)); !rep.Feasible {
				fmt.Printf("c weighted: SOUNDNESS BUG — witness violates compiled constraint %d\n",
					rep.ViolatedIdx)
				sound = false
			}
		}
		code := 0
		switch {
		case status == core.StatusOptimal && hasSol:
			fmt.Printf("o %d\n", best)
			fmt.Println("s OPTIMUM FOUND")
			code = 30
		case status == core.StatusUnsat && hardUnsat:
			fmt.Println("c the hard constraints alone are contradictory (not a penalty optimum)")
			fmt.Println("s UNSATISFIABLE")
			code = 20
		default:
			if hasSol {
				fmt.Printf("c best penalty upper bound %d\n", best)
				fmt.Printf("o %d\n", best)
			}
			fmt.Println("s UNKNOWN")
		}
		if hasSol && *showModel {
			fmt.Println(weightedValueLine(wi, values))
		}
		if *showStats {
			if pres != nil {
				printPortfolioStats(pres)
			} else if wres == nil {
				st := res.Stats
				fmt.Printf("c decisions=%d conflicts=%d boundConflicts=%d boundCalls=%d boundPrunes=%d\n",
					st.Decisions, st.Conflicts, st.BoundConflicts, st.BoundCalls, st.BoundPrunes)
			}
		}
		if err := writeObsOutputs(tracer, registry, *tracePath, *tracePretty, *metricsPath); err != nil {
			fatal(err)
		}
		if !auditOK || !sound {
			os.Exit(2)
		}
		os.Exit(code)
	}

	// When presolve fixes every costed variable, the reduced problem has no
	// objective left and a proved solve reports StatusSatisfiable — but in
	// the original space that is a proved optimum (Best carries the absorbed
	// CostOffset).
	if res.Status == core.StatusSatisfiable && fixing != nil && origProb.HasObjective() {
		res.Status = core.StatusOptimal
	}
	switch res.Status {
	case core.StatusOptimal:
		fmt.Printf("o %d\n", res.Best)
		fmt.Println("s OPTIMUM FOUND")
	case core.StatusSatisfiable:
		fmt.Println("s SATISFIABLE")
	case core.StatusUnsat:
		fmt.Println("s UNSATISFIABLE")
	case core.StatusError:
		fmt.Printf("c solver error: %v\n", firstLine(res.Err))
		if res.HasSolution {
			fmt.Printf("o %d\n", res.Best)
		}
		fmt.Println("s UNKNOWN")
	case core.StatusLimit:
		if res.HasSolution {
			fmt.Printf("c best upper bound %d\n", res.Best)
			fmt.Printf("o %d\n", res.Best)
		}
		fmt.Println("s UNKNOWN")
	}
	presolveOK := true
	if res.HasSolution {
		values := res.Values
		if fixing != nil {
			// Map the reduced-space model back to the original variables and
			// re-verify there: a Lift or CostOffset bug must fail loudly, not
			// emit a value line that checkers reject.
			values = fixing.Lift(values)
			rep := verify.Check(origProb, values)
			switch {
			case !rep.Feasible:
				fmt.Printf("c presolve: SOUNDNESS BUG — lifted model violates original constraint %d\n", rep.ViolatedIdx)
				presolveOK = false
			case rep.Objective != res.Best:
				fmt.Printf("c presolve: SOUNDNESS BUG — lifted model costs %d in original space, solver claimed %d\n",
					rep.Objective, res.Best)
				presolveOK = false
			}
		}
		if *showModel {
			fmt.Println(verify.FormatValueLine(origProb, values))
		}
	}
	if *showStats {
		st := res.Stats
		fmt.Printf("c decisions=%d conflicts=%d boundConflicts=%d boundCalls=%d boundPrunes=%d\n",
			st.Decisions, st.Conflicts, st.BoundConflicts, st.BoundCalls, st.BoundPrunes)
		if secs := elapsed.Seconds(); secs > 0 {
			fmt.Printf("c propagations=%d (%.0f/s)\n", st.Propagations, float64(st.Propagations)/secs)
		}
		if fixing != nil {
			fmt.Printf("c presolveFixed=%d\n", fixing.NumFixed())
		}
		fmt.Printf("c solutions=%d restarts=%d knapsackCuts=%d cardCuts=%d ncbSavedLevels=%d learned=%d\n",
			st.Solutions, st.Restarts, st.KnapsackCuts, st.CardCuts, st.NCBSavedLevels, st.LearnedClauses)
		if st.PBLearned > 0 || st.PBCardNormalized > 0 {
			fmt.Printf("c pbLearned=%d pbCardNormalized=%d\n", st.PBLearned, st.PBCardNormalized)
		}
		if st.BoundFailures > 0 || st.BoundFallbacks > 0 || st.BoundTimeouts > 0 || st.BoundDemotions > 0 {
			fmt.Printf("c boundFailures=%d boundPanics=%d boundFallbacks=%d boundTimeouts=%d boundDemotions=%d\n",
				st.BoundFailures, st.BoundPanics, st.BoundFallbacks, st.BoundTimeouts, st.BoundDemotions)
		}
		if st.Bounds.TotalCalls() > 0 || st.Bounds.Reduces > 0 {
			for _, line := range strings.Split(st.Bounds.String(), "\n") {
				fmt.Printf("c %s\n", line)
			}
		}
		if st.RandomDecisions > 0 {
			fmt.Printf("c randomDecisions=%d\n", st.RandomDecisions)
		}
		if pres != nil {
			printPortfolioStats(pres)
		} else if st.Sharing.Active() {
			printSharing("", &st.Sharing, st.ImportedClauses)
		}
	}
	if err := writeObsOutputs(tracer, registry, *tracePath, *tracePretty, *metricsPath); err != nil {
		fatal(err)
	}
	if !auditOK || !presolveOK {
		os.Exit(2) // audit/lift violations are a soundness bug, not a solver answer
	}
}

// writeObsOutputs flushes the end-of-run observability artifacts: the JSONL
// event trace, the human-readable trace dump (stderr), and the terminal
// unified metrics snapshot. Any write failure is a hard error — a benchmark
// pipeline must not mistake a truncated artifact for a clean run.
func writeObsOutputs(tracer *obs.Tracer, registry *obs.Registry, tracePath string, tracePretty bool, metricsPath string) error {
	if tracer != nil {
		if dropped := tracer.Dropped(); dropped > 0 {
			fmt.Printf("c trace: ring overwrote %d oldest events (raise -trace-cap to keep them)\n", dropped)
		}
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return err
			}
			err = tracer.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("writing trace %s: %w", tracePath, err)
			}
			fmt.Printf("c trace: %d events written to %s\n", tracer.Len(), tracePath)
		}
		if tracePretty {
			if err := tracer.WritePretty(os.Stderr); err != nil {
				return fmt.Errorf("writing trace to stderr: %w", err)
			}
		}
	}
	if registry != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(registry.Snapshot())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics %s: %w", metricsPath, err)
		}
		fmt.Printf("c metrics: snapshot written to %s\n", metricsPath)
	}
	return nil
}

// printPortfolioStats prints the board's global counters and each member's
// sharing-side view as comment lines.
func printPortfolioStats(p *portfolio.Result) {
	if p.Sharing {
		b := p.Board
		owner := b.BestOwner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("c board: incumbents=%d owner=%s clausesPublished=%d tooLong=%d highLBD=%d dup=%d lapped=%d\n",
			b.Incumbents, owner, b.ClausesPublished, b.ClausesTooLong,
			b.ClausesHighLBD, b.ClausesDuplicate, b.ClausesLapped)
	}
	for _, m := range p.Members {
		if m.UBOnly {
			fmt.Printf("c member %-6s status=%s flips=%d restarts=%d improvements=%d (ub-only)\n",
				m.Name, m.Status, m.Stats.Flips, m.Stats.Restarts, m.Stats.Solutions)
		} else {
			fmt.Printf("c member %-6s status=%s decisions=%d conflicts=%d boundConflicts=%d\n",
				m.Name, m.Status, m.Stats.Decisions, m.Stats.Conflicts, m.Stats.BoundConflicts)
		}
		if m.Stats.Sharing.Active() {
			printSharing(m.Name+" ", &m.Stats.Sharing, m.Stats.ImportedClauses)
		}
	}
}

func printSharing(prefix string, sh *core.SharingStats, imported int64) {
	fmt.Printf("c %ssharing: incumbents=%d/%d foreignUB=%d foreignPrunes=%d ubInterrupts=%d\n",
		prefix, sh.IncumbentsWon, sh.IncumbentsPublished, sh.ForeignIncumbents,
		sh.ForeignUBPrunes, sh.UBInterrupts)
	fmt.Printf("c %ssharing: clausesPub=%d rejected=%d imported=%d (units=%d) dropped=%d invalid=%d conflicts=%d\n",
		prefix, sh.ClausesPublished, sh.ClausesRejected, imported,
		sh.ImportedUnits, sh.ImportsDropped, sh.ImportsRejected, sh.ImportConflicts)
}

// weightedValueLine renders a weighted-instance witness over the ORIGINAL
// variables only — the compiled selector variables are an encoding artifact
// and never appear on the v line.
func weightedValueLine(wi *wbo.Instance, values []bool) string {
	var sb strings.Builder
	sb.WriteString("v")
	for v := 0; v < wi.NumVars; v++ {
		sb.WriteByte(' ')
		if !values[v] {
			sb.WriteByte('-')
		}
		if v < len(wi.Names) && wi.Names[v] != "" {
			sb.WriteString(wi.Names[v])
		} else {
			fmt.Fprintf(&sb, "x%d", v+1)
		}
	}
	return sb.String()
}

// firstLine trims a multi-line error (StatusError carries a stack trace) to
// its first line for the comment stream.
func firstLine(err error) string {
	if err == nil {
		return "unknown"
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return msg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsolo:", err)
	os.Exit(1)
}
