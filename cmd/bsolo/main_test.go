package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/wbo"
)

// TestMain re-execs the test binary as bsolo itself when BSOLO_RUN_MAIN is
// set: end-to-end tests drive real argv/stdin/exit-code behavior without a
// separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("BSOLO_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runBsolo runs bsolo with the given stdin and flags, returning the combined
// output and the exit code.
func runBsolo(t *testing.T, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BSOLO_RUN_MAIN=1")
	cmd.Stdin = strings.NewReader(stdin)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v\n%s", err, out)
	}
	return string(out), code
}

// wcnfSplit forces WPM1 weight splitting; penalty optimum 5 (see the
// testdata/fuzz-corpus ground-truth table).
const wcnfSplit = `p wcnf 2 4 100
100 -1 -2 0
7 1 0
2 -1 0
3 2 0
`

func TestWeightedCoreGuidedOptimum(t *testing.T) {
	out, code := runBsolo(t, wcnfSplit, "-wcnf", "-core-guided", "-audit")
	if !strings.Contains(out, "s OPTIMUM FOUND") || !strings.Contains(out, "o 5\n") {
		t.Fatalf("missing optimum lines:\n%s", out)
	}
	if !strings.Contains(out, "v x1 -x2") {
		t.Fatalf("value line must cover the original variables only:\n%s", out)
	}
	if code != 30 {
		t.Fatalf("exit code %d, want 30 (optimum)", code)
	}
}

// TestWeightedBigMAgrees runs the same instance through the default big-M
// branch-and-bound path: same penalty, same exit code.
func TestWeightedBigMAgrees(t *testing.T) {
	out, code := runBsolo(t, wcnfSplit, "-wcnf", "-audit")
	if !strings.Contains(out, "s OPTIMUM FOUND") || !strings.Contains(out, "o 5\n") {
		t.Fatalf("big-M path disagrees with core-guided:\n%s", out)
	}
	if code != 30 {
		t.Fatalf("exit code %d, want 30", code)
	}
}

// TestWeightedHardUnsat pins the hard-UNSAT vs penalty-optimum distinction:
// a hard empty clause is UNSATISFIABLE (exit 20), never a penalty optimum.
func TestWeightedHardUnsat(t *testing.T) {
	in := "p wcnf 1 2 9\n9 0\n5 1 0\n"
	for _, extra := range [][]string{{"-core-guided"}, nil} {
		out, code := runBsolo(t, in, append([]string{"-wcnf"}, extra...)...)
		if !strings.Contains(out, "s UNSATISFIABLE") ||
			!strings.Contains(out, "hard constraints alone are contradictory") {
			t.Fatalf("args %v: missing hard-UNSAT verdict:\n%s", extra, out)
		}
		if code != 20 {
			t.Fatalf("args %v: exit code %d, want 20 (hard-UNSAT)", extra, code)
		}
	}
}

// TestWeightedSoftEmptyOffset: a soft empty clause folds into the offset and
// must still be paid on the o line.
func TestWeightedSoftEmptyOffset(t *testing.T) {
	in := "p wcnf 2 4 10\n10 1 2 0\n4 0\n2 -1 0\n1 -2 0\n"
	out, code := runBsolo(t, in, "-wcnf", "-core-guided")
	if !strings.Contains(out, "o 5\n") || code != 30 {
		t.Fatalf("exit %d, want offset-inclusive optimum 5:\n%s", code, out)
	}
}

func TestSoftOPBInput(t *testing.T) {
	in := "* toy wbo\nsoft: 10 ;\n+1 a +1 b >= 1 ;\n[3] +1 ~a >= 1 ;\n[2] +1 ~b >= 1 ;\n"
	out, code := runBsolo(t, in, "-wbo", "-core-guided")
	if !strings.Contains(out, "s OPTIMUM FOUND") || !strings.Contains(out, "o 2\n") {
		t.Fatalf("soft-OPB optimum wrong:\n%s", out)
	}
	if !strings.Contains(out, "v -a b") {
		t.Fatalf("value line must use the declared names:\n%s", out)
	}
	if code != 30 {
		t.Fatalf("exit code %d, want 30", code)
	}
}

// TestMixedPortfolioWeighted races the core-guided member against the exact
// members on the compiled problem, under the auditor.
func TestMixedPortfolioWeighted(t *testing.T) {
	out, code := runBsolo(t, wcnfSplit, "-wcnf", "-core-guided", "-portfolio", "-audit")
	if !strings.Contains(out, "s OPTIMUM FOUND") || !strings.Contains(out, "o 5\n") {
		t.Fatalf("mixed portfolio disagrees:\n%s", out)
	}
	if code != 30 {
		t.Fatalf("exit code %d, want 30", code)
	}
}

func TestCoreGuidedRequiresWeightedInput(t *testing.T) {
	out, code := runBsolo(t, "min: +1 x1 ;\n+1 x1 >= 0 ;\n", "-core-guided")
	if code != 1 || !strings.Contains(out, "-core-guided requires") {
		t.Fatalf("exit %d, want usage error:\n%s", code, out)
	}
}

// TestPlainOPBExitZero guards the pre-existing contract: plain OPB runs keep
// exit code 0 regardless of the weighted-mode exit-code convention.
func TestPlainOPBExitZero(t *testing.T) {
	out, code := runBsolo(t, "min: +1 x1 ;\n+1 x1 +1 x2 >= 1 ;\n")
	if !strings.Contains(out, "s OPTIMUM FOUND") || code != 0 {
		t.Fatalf("exit %d, want 0 with optimum:\n%s", code, out)
	}
}

func TestWeightedValueLineNames(t *testing.T) {
	wi := &wbo.Instance{NumVars: 3, Names: []string{"a", ""}}
	got := weightedValueLine(wi, []bool{true, false, true})
	if got != "v a -x2 x3" {
		t.Fatalf("got %q", got)
	}
}
