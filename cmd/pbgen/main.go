// Command pbgen generates the reproduction's benchmark instances in OPB
// format (see internal/gen for the family definitions and DESIGN.md for how
// each family substitutes for the paper's original suite).
//
// Usage:
//
//	pbgen -family grout -seed 7 > grout.opb
//	pbgen -family synth -nodes 40 -o synth.opb
//	pbgen -family mcnc  -inputs 8
//	pbgen -family acc   -teams 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/opb"
	"repro/internal/pb"
)

func main() {
	var (
		family = flag.String("family", "grout", "benchmark family: grout|synth|mcnc|acc|sym")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")

		// grout
		width    = flag.Int("width", 5, "grout: grid width")
		height   = flag.Int("height", 5, "grout: grid height")
		nets     = flag.Int("nets", 12, "grout: number of nets")
		paths    = flag.Int("paths", 6, "grout: candidate paths per net")
		capacity = flag.Int("capacity", 3, "grout: edge capacity")

		// synth
		nodes    = flag.Int("nodes", 28, "synth: netlist nodes")
		impls    = flag.Int("impls", 4, "synth: implementations per node")
		fanout   = flag.Float64("fanout", 1.5, "synth: average fanout")
		incompat = flag.Float64("incompat", 0.3, "synth: cross-family incompatibility probability")
		buffer   = flag.Int64("buffer", 0, "synth: level-restoring buffer area (0 = hard incompatibilities)")

		// mcnc
		inputs = flag.Int("inputs", 7, "mcnc: function inputs")
		onDen  = flag.Float64("on", 0.3, "mcnc: ON-set density")
		dcDen  = flag.Float64("dc", 0.1, "mcnc: don't-care density")

		// acc
		teams     = flag.Int("teams", 8, "acc: teams (even)")
		fixed     = flag.Int("fixed", 4, "acc: pre-fixed matches")
		forbidden = flag.Int("forbidden", 10, "acc: forbidden (pair,round) combos")
		homeAway  = flag.Bool("homeaway", false, "acc: add home/away balance constraints")

		// grout extras / sym
		multiPin = flag.Float64("multipin", 0, "grout: fraction of three-pin nets")
		lowK     = flag.Int("lowk", 3, "sym: lower popcount bound")
		highK    = flag.Int("highk", 6, "sym: upper popcount bound")
	)
	flag.Parse()

	var prob *pb.Problem
	var err error
	switch *family {
	case "grout":
		prob, err = gen.Grout(gen.GroutConfig{
			Width: *width, Height: *height, Nets: *nets,
			PathsPerNet: *paths, Capacity: *capacity,
			MultiPinFraction: *multiPin, Seed: *seed,
		})
	case "sym":
		// The exact symmetric-function covering instance (9sym with the
		// defaults); ignores -seed (the instance is fully determined).
		prob, err = gen.Sym(gen.SymConfig{Inputs: *inputs, LowK: *lowK, HighK: *highK})
	case "synth":
		prob, err = gen.Synthesis(gen.SynthesisConfig{
			Nodes: *nodes, Impls: *impls, Fanout: *fanout,
			Incompat: *incompat, BufferArea: *buffer, Seed: *seed,
		})
	case "mcnc":
		prob, err = gen.MinCover(gen.MinCoverConfig{
			Inputs: *inputs, OnDensity: *onDen, DcDensity: *dcDen, Seed: *seed,
		})
	case "acc":
		prob, err = gen.ACC(gen.ACCConfig{
			Teams: *teams, FixedMatches: *fixed, ForbiddenMatches: *forbidden,
			HomeAway: *homeAway, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := opb.Write(w, prob); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbgen:", err)
	os.Exit(1)
}
