// Command bsolvd is the PBO solver daemon: it serves the branch-and-bound
// solver over HTTP/JSON inside the internal/serve robustness envelope —
// admission control with load shedding, per-tenant quotas, deadline
// propagation, per-job panic isolation, watchdog demotion of stuck solves,
// a verified solve-session cache, and graceful SIGTERM drain.
//
// Serve mode (default):
//
//	bsolvd -addr :8080 -workers 4 -queue 64
//
// then:
//
//	curl -s -XPOST --data-binary @instance.opb localhost:8080/solve
//	curl -s localhost:8080/jobs/j000001/result?wait_ms=5000
//
// Self-load mode (-loadtest N) runs the in-process load harness instead of
// listening: N concurrent small solves against a private Server, reporting
// the latency distribution and outcome histogram, optionally as a
// repro.bench/v1 snapshot (-bench-out).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "API listen address (host-less addresses bind loopback)")
		queueCap    = flag.Int("queue", 64, "admission queue capacity (full queue sheds 429)")
		workers     = flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
		tenantMax   = flag.Int("tenant-max", 16, "per-tenant active-job quota (<0 = unlimited)")
		deadline    = flag.Duration("deadline", 10*time.Second, "default per-job wall-clock budget")
		maxDeadline = flag.Duration("max-deadline", 60*time.Second, "cap on client-requested budgets")
		stall       = flag.Duration("stall", 2*time.Second, "watchdog no-progress threshold")
		stallGrace  = flag.Duration("stall-grace", 0, "post-cancel grace before demoting a stuck solve (0 = stall/2)")
		drainBudget = flag.Duration("drain", 15*time.Second, "SIGTERM graceful-drain budget")
		cacheCap    = flag.Int("cache", 256, "solve-session cache entries (<0 disables)")
		auditJobs   = flag.Bool("audit", false, "attach the invariant auditor to every job (slow; debugging)")
		traceCap    = flag.Int("trace-cap", 0, "structured trace ring capacity (0 = off)")
		metricsOut  = flag.String("metrics", "", "write the final unified metrics snapshot JSON here at drain")
		faults      = flag.String("faults", "", "fault-injection plan (see internal/fault; testing only)")

		loadJobs = flag.Int("loadtest", 0, "self-load mode: run N in-process jobs instead of serving")
		loadConc = flag.Int("load-conc", 16, "self-load client concurrency")
		benchOut = flag.String("bench-out", "", "self-load: write the repro.bench/v1 snapshot here")
	)
	flag.Parse()

	if *faults != "" {
		if err := armFaultPlan(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "bsolvd:", err)
			os.Exit(2)
		}
		defer fault.Reset()
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceCap > 0 {
		tracer = obs.NewTracer(*traceCap)
	}
	cfg := serve.Config{
		QueueCap:        *queueCap,
		Workers:         *workers,
		TenantMax:       *tenantMax,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		StallTimeout:    *stall,
		StallGrace:      *stallGrace,
		CacheCap:        *cacheCap,
		Audit:           *auditJobs,
		Registry:        reg,
		Trace:           tracer,
	}

	if *loadJobs > 0 {
		os.Exit(runLoadtest(cfg, *loadJobs, *loadConc, *benchOut))
	}

	srv := serve.New(cfg)
	bound, stop, err := obs.ServeHandler(*addr, srv.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsolvd:", err)
		os.Exit(1)
	}
	eff := srv.Config()
	fmt.Printf("bsolvd: serving on http://%s (workers=%d queue=%d)\n", bound, eff.Workers, eff.QueueCap)

	// SIGTERM/SIGINT → graceful drain: stop admitting, finish in-flight
	// within the budget, force-resolve stragglers, flush metrics.
	rep := <-srv.DrainOnSignal(*drainBudget)
	// The listener drains after the jobs so late status polls still land.
	lctx, lcancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = stop(lctx)
	lcancel()

	if *metricsOut != "" && rep.MetricsFlushed {
		if err := writeSnapshot(*metricsOut, rep.FinalSnapshot); err != nil {
			fmt.Fprintln(os.Stderr, "bsolvd: metrics flush:", err)
		}
	}
	fmt.Printf("bsolvd: drained: resolved=%d forced=%d clean=%v\n", rep.Resolved, rep.Forced, rep.Clean)
	if !rep.Clean {
		os.Exit(1)
	}
}

func runLoadtest(cfg serve.Config, jobs, conc int, benchOut string) int {
	srv := serve.New(cfg)
	rep := serve.RunLoad(srv, serve.LoadConfig{Jobs: jobs, Concurrency: conc})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	drain := srv.Drain(ctx)
	cancel()
	fmt.Println(rep.String())
	fmt.Printf("drain: resolved=%d forced=%d clean=%v\n", drain.Resolved, drain.Forced, drain.Clean)
	if benchOut != "" {
		if err := rep.BenchSnapshot("lpr").WriteFile(benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bsolvd: bench snapshot:", err)
			return 1
		}
		fmt.Println("bench snapshot:", benchOut)
	}
	if rep.Unresolved > 0 || !drain.Clean {
		return 1
	}
	return 0
}

// armFaultPlan parses the -faults flag: comma-separated clauses of the form
//
//	point=kind[/every=N][/prob=P][/delay=DUR][/match=KEY]
//
// e.g. "serve.job=panic/every=7,mis.estimate=delay/delay=5s/match=t1".
func armFaultPlan(plan string) error {
	for _, clause := range strings.Split(plan, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok || name == "" {
			return fmt.Errorf("bad fault clause %q (want point=kind/...)", clause)
		}
		parts := strings.Split(rest, "/")
		var spec fault.Spec
		switch parts[0] {
		case "panic":
			spec.Kind = fault.KindPanic
		case "delay":
			spec.Kind = fault.KindDelay
		case "corrupt":
			spec.Kind = fault.KindCorrupt
		default:
			return fmt.Errorf("bad fault kind %q in %q (want panic|delay|corrupt)", parts[0], clause)
		}
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("bad fault option %q in %q", opt, clause)
			}
			var err error
			switch k {
			case "every":
				spec.Every, err = strconv.Atoi(v)
			case "prob":
				spec.Prob, err = strconv.ParseFloat(v, 64)
			case "delay":
				spec.Delay, err = time.ParseDuration(v)
			case "match":
				spec.Match = v
			case "value":
				spec.Value, err = strconv.ParseFloat(v, 64)
			case "seed":
				spec.Seed, err = strconv.ParseInt(v, 10, 64)
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return fmt.Errorf("bad fault option %q in %q: %v", opt, clause, err)
			}
		}
		if spec.Every == 0 && spec.Prob == 0 {
			spec.Every = 1
		}
		fault.Arm(name, spec)
	}
	return nil
}

func writeSnapshot(path string, snap obs.Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
