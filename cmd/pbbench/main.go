// Command pbbench regenerates the paper's Table 1: it runs the seven solver
// columns (pbs, galena, the MILP stand-in for cplex, and bsolo with
// plain/MIS/LGR/LPR lower bounding) over the four benchmark families and
// prints the results in the paper's layout, with "ub" entries for
// budget-exhausted runs and the #Solved summary row.
//
// Usage:
//
//	pbbench -all -time 10s
//	pbbench -family grout -solvers lpr,plain -time 5s
//
// Beyond Table 1's seven columns, the solver list accepts "portfolio" (the
// cooperative four-member race: shared incumbents + clause exchange) and
// "portfolio-iso" (the same race with sharing disconnected); the CSV output
// carries their conflict/decision totals and sharing counters, so
//
//	pbbench -family synth -solvers portfolio,portfolio-iso -csv out.csv
//
// measures what cooperation buys on identical instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		family    = flag.String("family", "", "family to run: grout|synth|mcnc|acc (empty with -all = all)")
		all       = flag.Bool("all", false, "run all four families")
		solvers   = flag.String("solvers", "", "comma-separated solver subset (default: all seven columns)")
		timeLimit = flag.Duration("time", 10*time.Second, "per-run wall-clock limit")
		conflicts = flag.Int64("conflicts", 0, "per-run conflict limit (0 = none)")
		milpNodes = flag.Int64("milp-nodes", 0, "MILP node limit (0 = default)")
		perFamily = flag.Int("n", 10, "instances per family")

		groutNets  = flag.Int("grout-nets", 0, "override grout net count")
		synthNodes = flag.Int("synth-nodes", 0, "override synth node count")
		mcncInputs = flag.Int("mcnc-inputs", 0, "override mcnc input count")
		accTeams   = flag.Int("acc-teams", 0, "override acc team count")
		csvOut     = flag.String("csv", "", "also write machine-readable results to this file")
		ablations  = flag.Bool("ablations", false, "run the A1-A6 ablations instead of Table 1")

		incremental  = flag.Bool("incremental", true, "incremental reduced-problem maintenance in the bsolo columns")
		warmLP       = flag.Bool("warm-lp", true, "LP warm starting in the lpr column")
		boundProfile = flag.Bool("bound-profile", false, "print per-solver bound-pipeline timing after the table")
	)
	flag.Parse()

	if *ablations {
		sc := harness.Scale{GroutNets: 18, SynthNodes: 24, McncInputs: 7, AccTeams: 8, PerFamily: 3}
		insts, err := harness.AblationInstances(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbbench:", err)
			os.Exit(1)
		}
		fmt.Printf("running ablations A1-A6 over %d instances (limit %v per run)\n\n", len(insts), *timeLimit)
		var rows []harness.AblationResult
		for _, id := range harness.Ablations() {
			rows = append(rows, harness.RunAblation(id, insts, *timeLimit, *conflicts)...)
		}
		fmt.Print(harness.FormatAblations(rows))
		return
	}

	var fams []harness.Family
	switch {
	case *all || *family == "":
		fams = harness.Families()
	default:
		for _, f := range strings.Split(*family, ",") {
			fams = append(fams, harness.Family(strings.TrimSpace(f)))
		}
	}

	cols := harness.Solvers()
	if *solvers != "" {
		cols = nil
		for _, s := range strings.Split(*solvers, ",") {
			cols = append(cols, harness.SolverID(strings.TrimSpace(s)))
		}
	}

	sc := harness.DefaultScale()
	sc.PerFamily = *perFamily
	if *groutNets > 0 {
		sc.GroutNets = *groutNets
	}
	if *synthNodes > 0 {
		sc.SynthNodes = *synthNodes
	}
	if *mcncInputs > 0 {
		sc.McncInputs = *mcncInputs
	}
	if *accTeams > 0 {
		sc.AccTeams = *accTeams
	}

	insts, err := harness.Instances(fams, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbbench:", err)
		os.Exit(1)
	}
	fmt.Printf("running %d instances x %d solvers (limit %v per run)\n",
		len(insts), len(cols), *timeLimit)

	lim := harness.Limits{Time: *timeLimit, MaxConflicts: *conflicts, MilpNodes: *milpNodes,
		NoIncrementalReduce: !*incremental, NoWarmLP: !*warmLP}
	var results []harness.RunResult
	for _, inst := range insts {
		for _, id := range cols {
			r := harness.Run(inst, id, lim)
			results = append(results, r)
			status := "solved"
			if !r.Solved {
				status = "limit"
				if r.HasUB {
					status = fmt.Sprintf("ub %d", r.Best)
				}
			}
			extra := ""
			if r.Members > 0 {
				extra = fmt.Sprintf("  winner=%s conflicts=%d decisions=%d shImp=%d shPrunes=%d",
					r.Winner, r.Conflicts, r.Decisions, r.ShClausesImp, r.ShForeignPrunes)
			}
			fmt.Fprintf(os.Stderr, "  %-18s %-7s %-10s %v%s\n", inst.Name, id, status, r.Duration.Round(time.Millisecond), extra)
		}
	}
	fmt.Println()
	fmt.Print(harness.FormatTable(results, cols))
	if *boundProfile {
		if prof := harness.FormatBoundProfile(results); prof != "" {
			fmt.Println()
			fmt.Print(prof)
		}
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(harness.FormatCSV(results)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pbbench: writing csv:", err)
			os.Exit(1)
		}
	}
}
