// Command pbbench regenerates the paper's Table 1: it runs the seven solver
// columns (pbs, galena, the MILP stand-in for cplex, and bsolo with
// plain/MIS/LGR/LPR lower bounding) over the four benchmark families and
// prints the results in the paper's layout, with "ub" entries for
// budget-exhausted runs and the #Solved summary row.
//
// Usage:
//
//	pbbench -all -time 10s
//	pbbench -family grout -solvers lpr,plain -time 5s
//
// Beyond Table 1's seven columns, the solver list accepts "portfolio" (the
// cooperative four-member race: shared incumbents + clause exchange) and
// "portfolio-iso" (the same race with sharing disconnected); the CSV output
// carries their conflict/decision totals and sharing counters, so
//
//	pbbench -family synth -solvers portfolio,portfolio-iso -csv out.csv
//
// measures what cooperation buys on identical instances.
//
// The solver list also accepts "ls" (the stochastic local-search worker
// alone — UB-only: incumbents but never proofs) and "portfolio-ls" (the
// cooperative race plus one LS member), and the family list accepts "sat"
// (large always-feasible synthesis instances sized for first-incumbent
// latency). The ttfiMs CSV/snapshot column records wall-clock to the first
// incumbent any member reported, so
//
//	pbbench -family sat -solvers portfolio,portfolio-ls -csv out.csv
//
// measures how much earlier the mixed portfolio reaches a feasible solution
// (make bench-ls wraps exactly this comparison).
//
// The family list further accepts "wbo" (generated Weighted Boolean
// Optimization instances: hard-feasible skeletons plus weighted soft rows),
// and the solver list accepts "core-guided" (the WPM1 core-guided loop on
// the WBO payload) and "portfolio-wbo" (the cooperative race plus the
// core-guided member), so
//
//	pbbench -family wbo -solvers portfolio,portfolio-wbo -csv out.csv
//
// measures what core-guided search adds over pure branch-and-bound on
// penalty optimization (make bench-wbo wraps exactly this comparison).
//
// Benchmark trajectory: -snapshot writes the run as a versioned
// BENCH_<family>_<date>.json document (-snapshot auto picks the canonical
// name), and -compare old.json re-runs the same cells and flags regressions
// — lost solves, worsened incumbents, slowdowns beyond -compare-tol — with a
// non-zero exit code, so CI can gate on it.
//
// Exit codes: 0 clean, 1 on any setup or output-write failure, 3 when
// -compare found regressions. A truncated artifact is never reported as a
// clean run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("pbbench", flag.ExitOnError)
	var (
		family    = fs.String("family", "", "family to run: grout|synth|mcnc|acc|sat|wbo (empty with -all = the four Table 1 families)")
		all       = fs.Bool("all", false, "run all four families")
		solvers   = fs.String("solvers", "", "comma-separated solver subset (default: all seven columns)")
		timeLimit = fs.Duration("time", 10*time.Second, "per-run wall-clock limit")
		conflicts = fs.Int64("conflicts", 0, "per-run conflict limit (0 = none)")
		milpNodes = fs.Int64("milp-nodes", 0, "MILP node limit (0 = default)")
		perFamily = fs.Int("n", 10, "instances per family")

		groutNets  = fs.Int("grout-nets", 0, "override grout net count")
		synthNodes = fs.Int("synth-nodes", 0, "override synth node count")
		mcncInputs = fs.Int("mcnc-inputs", 0, "override mcnc input count")
		accTeams   = fs.Int("acc-teams", 0, "override acc team count")
		satNodes   = fs.Int("sat-nodes", 0, "override sat-family node count")
		wboVars    = fs.Int("wbo-vars", 0, "override wbo-family variable count")
		csvOut     = fs.String("csv", "", "also write machine-readable results to this file")
		ablations  = fs.Bool("ablations", false, "run the A1-A7 ablations instead of Table 1")

		presolve     = fs.Bool("presolve", false, "fix variables by probing + persistency presolve before every run (fixedVars/propsPerSec land in the CSV and snapshot rows)")
		incremental  = fs.Bool("incremental", true, "incremental reduced-problem maintenance in the bsolo columns")
		warmLP       = fs.Bool("warm-lp", true, "LP warm starting in the lpr column")
		cutsOn       = fs.Bool("cuts", true, "knapsack-cover/clique cut separation in the lpr column")
		cutRounds    = fs.Int("cut-rounds", 0, "root separation fixpoint cap (0 = default)")
		cutMaxPool   = fs.Int("cut-max-pool", 0, "cut pool capacity (0 = default)")
		boundProfile = fs.Bool("bound-profile", false, "print per-solver bound-pipeline timing after the table")

		snapshotOut = fs.String("snapshot", "", "write the run as a versioned bench snapshot JSON (\"auto\" = BENCH_<family>_<date>.json)")
		compareOld  = fs.String("compare", "", "compare this run against an earlier bench snapshot and flag regressions (exit 3)")
		compareTol  = fs.Float64("compare-tol", 1.5, "with -compare: wall-clock slowdown factor tolerated before a cell regresses")
	)
	_ = fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pbbench:", err)
		return 1
	}

	if *ablations {
		sc := harness.Scale{GroutNets: 18, SynthNodes: 24, McncInputs: 7, AccTeams: 8, PerFamily: 3}
		insts, err := harness.AblationInstances(sc)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "running ablations A1-A7 over %d instances (limit %v per run)\n\n", len(insts), *timeLimit)
		var rows []harness.AblationResult
		for _, id := range harness.Ablations() {
			rows = append(rows, harness.RunAblation(id, insts, *timeLimit, *conflicts)...)
		}
		if _, err := io.WriteString(stdout, harness.FormatAblations(rows)); err != nil {
			return fail(err)
		}
		return 0
	}

	var fams []harness.Family
	switch {
	case *all || *family == "" || *family == "all":
		fams = harness.Families()
	default:
		for _, f := range strings.Split(*family, ",") {
			fams = append(fams, harness.Family(strings.TrimSpace(f)))
		}
	}

	cols := harness.Solvers()
	if *solvers != "" {
		cols = nil
		for _, s := range strings.Split(*solvers, ",") {
			cols = append(cols, harness.SolverID(strings.TrimSpace(s)))
		}
	}

	sc := harness.DefaultScale()
	sc.PerFamily = *perFamily
	if *groutNets > 0 {
		sc.GroutNets = *groutNets
	}
	if *synthNodes > 0 {
		sc.SynthNodes = *synthNodes
	}
	if *mcncInputs > 0 {
		sc.McncInputs = *mcncInputs
	}
	if *accTeams > 0 {
		sc.AccTeams = *accTeams
	}
	if *satNodes > 0 {
		sc.SatNodes = *satNodes
	}
	if *wboVars > 0 {
		sc.WboVars = *wboVars
	}

	insts, err := harness.Instances(fams, sc)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "running %d instances x %d solvers (limit %v per run)\n",
		len(insts), len(cols), *timeLimit)

	lim := harness.Limits{Time: *timeLimit, MaxConflicts: *conflicts, MilpNodes: *milpNodes,
		NoIncrementalReduce: !*incremental, NoWarmLP: !*warmLP, Presolve: *presolve,
		NoCuts: !*cutsOn, CutRounds: *cutRounds, CutMaxPool: *cutMaxPool}
	var results []harness.RunResult
	for _, inst := range insts {
		for _, id := range cols {
			r := harness.Run(inst, id, lim)
			results = append(results, r)
			status := "solved"
			if !r.Solved {
				status = "limit"
				if r.HasUB {
					status = fmt.Sprintf("ub %d", r.Best)
				}
			}
			extra := ""
			if r.Members > 0 {
				extra = fmt.Sprintf("  winner=%s conflicts=%d decisions=%d shImp=%d shPrunes=%d",
					r.Winner, r.Conflicts, r.Decisions, r.ShClausesImp, r.ShForeignPrunes)
			}
			if r.FirstIncumbent > 0 {
				extra += fmt.Sprintf("  ttfi=%v", r.FirstIncumbent.Round(time.Millisecond))
			}
			fmt.Fprintf(stderr, "  %-18s %-7s %-10s %v%s\n", inst.Name, id, status, r.Duration.Round(time.Millisecond), extra)
		}
	}
	if _, err := fmt.Fprintf(stdout, "\n%s", harness.FormatTable(results, cols)); err != nil {
		return fail(err)
	}
	if *boundProfile {
		if prof := harness.FormatBoundProfile(results); prof != "" {
			if _, err := fmt.Fprintf(stdout, "\n%s", prof); err != nil {
				return fail(err)
			}
		}
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(harness.FormatCSV(results)), 0o644); err != nil {
			return fail(fmt.Errorf("writing csv: %w", err))
		}
	}

	var snap *obs.BenchSnapshot
	if *snapshotOut != "" || *compareOld != "" {
		snap = harness.BenchSnapshot(results, fams, *timeLimit, map[string]string{
			"n":       fmt.Sprint(sc.PerFamily),
			"solvers": joinSolvers(cols),
		})
	}
	if *snapshotOut != "" {
		path := *snapshotOut
		if path == "auto" {
			path = snap.DefaultName()
		}
		if err := snap.WriteFile(path); err != nil {
			return fail(fmt.Errorf("writing snapshot: %w", err))
		}
		fmt.Fprintf(stdout, "\nsnapshot written to %s (%d rows)\n", path, len(snap.Rows))
	}
	if *compareOld != "" {
		old, err := obs.LoadBenchSnapshot(*compareOld)
		if err != nil {
			return fail(fmt.Errorf("loading baseline: %w", err))
		}
		diff := obs.CompareBench(old, snap, *compareTol)
		if _, err := fmt.Fprintf(stdout, "\ncompare vs %s:\n%s\n", *compareOld, diff.String()); err != nil {
			return fail(err)
		}
		if diff.HasRegressions() {
			return 3
		}
	}
	return 0
}

func joinSolvers(cols []harness.SolverID) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}
