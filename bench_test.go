// Package repro's benchmark suite regenerates the paper's evaluation
// (Table 1 — its only exhibit; the paper contains no figures) and the
// ablation studies A1–A6 indexed in DESIGN.md §4.
//
// Table 1 benches (one per family, sub-benchmarks per solver column):
//
//	BenchmarkTable1Grout / Synth / Mcnc / Acc
//	BenchmarkTable1Summary      — solved counts across the whole suite
//
// Ablations:
//
//	BenchmarkAblationBoundConflicts — §4 NCB vs chronological backtracking
//	BenchmarkAblationLPBranching    — §5 LP-guided branching on/off
//	BenchmarkAblationKnapsack       — §5 eq. 10 incumbent constraint on/off
//	BenchmarkAblationCardInference  — §5 eqs. 11–13 on/off
//	BenchmarkAblationLGRIterations  — §6 LGR convergence (iteration sweep)
//	BenchmarkAblationPreprocess     — §6 preprocessing on the synth family
//
// Bench instances are scaled down from the Table 1 defaults so that a
// single iteration stays in the tens-of-milliseconds range for the strong
// configurations; budget-capped weak configurations report their solved
// ratio via custom metrics instead of wall-clock alone.
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/preprocess"
)

// benchScale is small enough for repeated timing runs yet large enough that
// the solver columns keep their Table 1 ordering.
func benchScale(perFamily int) harness.Scale {
	return harness.Scale{
		GroutNets:  18,
		SynthNodes: 24,
		McncInputs: 7,
		AccTeams:   8,
		PerFamily:  perFamily,
	}
}

// benchLimits caps each run so that weak solvers cannot stall a bench
// iteration; solved/unsolved is reported as a metric.
func benchLimits() harness.Limits {
	return harness.Limits{
		Time:         2 * time.Second,
		MaxConflicts: 200_000,
		MilpNodes:    200_000,
	}
}

func benchFamily(b *testing.B, fam harness.Family) {
	insts, err := harness.Instances([]harness.Family{fam}, benchScale(3))
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range harness.Solvers() {
		b.Run(string(id), func(b *testing.B) {
			lim := benchLimits()
			solved, total := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, inst := range insts {
					r := harness.Run(inst, id, lim)
					total++
					if r.Solved {
						solved++
					}
				}
			}
			b.ReportMetric(float64(solved)/float64(total), "solved/run")
		})
	}
}

func BenchmarkTable1Grout(b *testing.B) { benchFamily(b, harness.FamilyGrout) }
func BenchmarkTable1Synth(b *testing.B) { benchFamily(b, harness.FamilySynth) }
func BenchmarkTable1Mcnc(b *testing.B)  { benchFamily(b, harness.FamilyMcnc) }
func BenchmarkTable1Acc(b *testing.B)   { benchFamily(b, harness.FamilyAcc) }

// BenchmarkTable1Summary reproduces the #Solved row at bench scale: it runs
// the full matrix once per iteration and reports per-solver solved counts.
func BenchmarkTable1Summary(b *testing.B) {
	insts, err := harness.Instances(harness.Families(), benchScale(2))
	if err != nil {
		b.Fatal(err)
	}
	lim := benchLimits()
	counts := map[harness.SolverID]int{}
	runs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := harness.RunMatrix(insts, harness.Solvers(), lim)
		for s, c := range harness.SolvedCounts(results) {
			counts[s] += c
		}
		runs++
	}
	for _, s := range harness.Solvers() {
		b.ReportMetric(float64(counts[s])/float64(runs), string(s)+"-solved")
	}
}

// ablationInstances returns a small optimization suite (grout + synth +
// mcnc) used by the ablation benches.
func ablationInstances(b *testing.B) []harness.Instance {
	insts, err := harness.Instances(
		[]harness.Family{harness.FamilyGrout, harness.FamilySynth, harness.FamilyMcnc},
		benchScale(2))
	if err != nil {
		b.Fatal(err)
	}
	return insts
}

func runWithOptions(b *testing.B, opt core.Options) {
	insts := ablationInstances(b)
	opt.TimeLimit = 2 * time.Second
	opt.MaxConflicts = 200_000
	solved, total := 0, 0
	var decisions int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, inst := range insts {
			res := core.Solve(inst.Prob, opt)
			total++
			if res.Status == core.StatusOptimal || res.Status == core.StatusSatisfiable ||
				res.Status == core.StatusUnsat {
				solved++
			}
			decisions += res.Stats.Decisions
		}
	}
	b.ReportMetric(float64(solved)/float64(total), "solved/run")
	b.ReportMetric(float64(decisions)/float64(total), "decisions/inst")
}

// A1 — §4: analyzing bound conflicts (non-chronological backtracking) vs
// the "straightforward" chronological explanation.
func BenchmarkAblationBoundConflicts(b *testing.B) {
	b.Run("ncb", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR, CardinalityInference: true})
	})
	b.Run("chronological", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR, CardinalityInference: true,
			ChronologicalBounds: true})
	})
}

// A2 — §5: branch on the LP variable closest to 0.5 vs pure VSIDS.
func BenchmarkAblationLPBranching(b *testing.B) {
	b.Run("lp-branching", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR, CardinalityInference: true})
	})
	b.Run("vsids-only", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR, CardinalityInference: true,
			NoLPBranching: true})
	})
}

// A3 — §5 eq. 10: the incumbent knapsack constraint.
func BenchmarkAblationKnapsack(b *testing.B) {
	b.Run("knapsack-cut", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR})
	})
	b.Run("no-cut", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBLPR, NoKnapsackCuts: true})
	})
}

// A4 — §5 eqs. 11–13: cardinality-based cost inference (grout and synth
// carry the positive cardinality rows the inference needs).
func BenchmarkAblationCardInference(b *testing.B) {
	b.Run("inference", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBMIS, CardinalityInference: true})
	})
	b.Run("off", func(b *testing.B) {
		runWithOptions(b, core.Options{LowerBound: core.LBMIS})
	})
}

// A5 — §6: "bsolo with LPR is significantly more efficient than bsolo with
// LGR ... motivated by the slow convergence observed for the Lagrangian
// relaxation": sweep the subgradient iteration budget and the warm start.
func BenchmarkAblationLGRIterations(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"cold-10", core.Options{LowerBound: core.LBLGR, LGRIterations: 10, LGRColdStart: true}},
		{"cold-50", core.Options{LowerBound: core.LBLGR, LGRIterations: 50, LGRColdStart: true}},
		{"cold-200", core.Options{LowerBound: core.LBLGR, LGRIterations: 200, LGRColdStart: true}},
		{"warm-10", core.Options{LowerBound: core.LBLGR, LGRIterations: 10}},
		{"warm-50", core.Options{LowerBound: core.LBLGR, LGRIterations: 50}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := cfg.opt
			opt.CardinalityInference = true
			runWithOptions(b, opt)
		})
	}
}

// A6 — §6: probing/strengthening/subsumption preprocessing on the synth
// family (where the paper applied its simplification techniques).
func BenchmarkAblationPreprocess(b *testing.B) {
	insts, err := harness.Instances([]harness.Family{harness.FamilySynth}, benchScale(3))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, pre bool) {
		solved, total := 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, inst := range insts {
				prob := inst.Prob
				if pre {
					p2, info, err := preprocess.Apply(prob, preprocess.Options{
						Probing: true, Strengthening: true, Subsumption: true,
					})
					if err == nil && !info.ProvedUnsat {
						prob = p2
					}
				}
				res := core.Solve(prob, core.Options{
					LowerBound: core.LBLPR, TimeLimit: 2 * time.Second, MaxConflicts: 200_000,
				})
				total++
				if res.Status == core.StatusOptimal {
					solved++
				}
			}
		}
		b.ReportMetric(float64(solved)/float64(total), "solved/run")
	}
	b.Run("preprocess", func(b *testing.B) { run(b, true) })
	b.Run("raw", func(b *testing.B) { run(b, false) })
}
