# Convenience targets for the bsolo-go reproduction.

GO ?= go

.PHONY: all build test race fuzz bench table examples clean ci vet

all: build test

vet:
	$(GO) vet ./...

# What CI runs: vet + build + full test suite, then the race detector on
# the concurrency-sensitive packages (engine interrupt hook, solver
# cancellation, portfolio racing, fault injection).
ci: vet build test
	$(GO) test -race ./internal/engine ./internal/core ./internal/portfolio ./internal/fault

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing session on the OPB parser (seed corpus always runs in `test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/opb

# Table 1 benches + ablations A1-A6 (see DESIGN.md section 4).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Regenerate the paper's Table 1 at reproduction scale (minutes).
table:
	$(GO) run ./cmd/pbbench -all -n 10 -time 10s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mincov
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/comparison
	$(GO) run ./examples/routing

clean:
	$(GO) clean ./...
