# Convenience targets for the bsolo-go reproduction.

GO ?= go

.PHONY: all build test race fuzz bench bench-bounds bench-engine bench-portfolio bench-cuts bench-ls bench-wbo bench-snapshot bench-baseline bench-compare escape-check load-smoke table examples clean ci vet

all: build test

vet:
	$(GO) vet ./...

# What CI runs: vet + build + full test suite, then the race detector on
# the concurrency-sensitive packages (engine interrupt hook, solver
# cancellation, portfolio racing + clause sharing, fault injection, the
# incremental Reducer's watcher protocol, the warm-start LP state, the
# live metrics registry, the bsolvd serving envelope), the daemon's
# chaos/load smoke, the bench-regression gate against the committed
# baseline, then a single-iteration smoke pass over the bound-pipeline
# and portfolio-sharing benchmarks and a small bench snapshot.
ci: vet build test
	$(GO) test -race ./internal/engine ./internal/core ./internal/portfolio ./internal/share ./internal/ls ./internal/fault ./internal/bounds ./internal/lp ./internal/cuts ./internal/fuzz ./internal/obs ./internal/preprocess ./internal/serve ./internal/wbo ./internal/wcnf
	$(MAKE) escape-check
	$(MAKE) load-smoke
	$(MAKE) bench-compare
	$(MAKE) bench-bounds BENCHTIME=1x
	$(MAKE) bench-engine BENCHTIME=1x
	$(MAKE) bench-portfolio BENCHTIME=1x
	$(MAKE) bench-snapshot BENCH_FAMILY=synth BENCH_N=2 BENCH_TIME=3s
	$(MAKE) bench-ls BENCH_LS_N=2 BENCH_LS_TIME=2s BENCH_LS_NODES=20 BENCH_LS_OUT=/tmp/bench_ls_smoke.json
	$(MAKE) bench-wbo BENCH_WBO_N=2 BENCH_WBO_TIME=2s BENCH_WBO_VARS=12 BENCH_WBO_OUT=/tmp/bench_wbo_smoke.json
	$(MAKE) fuzz FUZZTIME=10s PBFUZZ_N=500

# bsolvd load/chaos smoke under the race detector: 50 concurrent solves with
# injected panics and a mid-run SIGTERM (zero lost jobs, clean drain), plus
# the full chaos acceptance test (saturated-queue shedding, watchdog rescue,
# audited-correct answers only).
load-smoke:
	$(GO) test -race -count=1 -run 'TestServeLoadSmoke|TestChaosAcceptance' ./internal/serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Differential fuzzing (see DESIGN.md section 10): replay the committed
# reproducer corpus, sweep adversarial instances through every solver
# configuration under the invariant auditor via cmd/pbfuzz, then short
# coverage-guided sessions on the differential harness and the OPB parser.
# Override FUZZTIME / PBFUZZ_N for longer hunts.
FUZZTIME ?= 30s
PBFUZZ_N ?= 2000
fuzz:
	$(GO) test -run 'TestFuzzCorpus|TestAdversarialDifferential|TestWBODifferential' -count=1 ./internal/fuzz
	$(GO) test -run 'TestWCNFCorpus' -count=1 ./internal/wcnf
	$(GO) run ./cmd/pbfuzz -n $(PBFUZZ_N) -seed 1
	$(GO) test -fuzz=FuzzDifferential -fuzztime=$(FUZZTIME) ./internal/fuzz
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/opb
	$(GO) test -fuzz=FuzzWCNFParse -fuzztime=$(FUZZTIME) ./internal/wcnf

# Table 1 benches + ablations A1-A6 (see DESIGN.md section 4).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Bound-pipeline microbenchmarks: from-scratch Extract vs the incremental
# Reducer, and the LPR node-loop with cold vs warm-started LP solves.
# Override BENCHTIME (e.g. BENCHTIME=2s) for stable comparative numbers.
BENCHTIME ?= 2s
bench-bounds:
	$(GO) test -bench='BenchmarkExtract|BenchmarkReducerIncremental' -benchmem -benchtime=$(BENCHTIME) -run='^$$' ./internal/bounds
	$(GO) test -bench='BenchmarkLPRNodeLoop' -benchmem -benchtime=$(BENCHTIME) -run='^$$' ./internal/lp

# Engine-core node-throughput microbenchmarks: one full propagation wave
# (decide, CSR counter propagation, batched delta flush, backtrack) through
# the struct-of-arrays engine vs the faithful pre-refactor pointer-per-
# constraint replica kept in bench_test.go. The layout refactor landed at
# ~1.6x on the wave; the workload is cache-bound and noisy, so compare
# medians across repetitions (BENCHCOUNT=6), never single runs.
BENCHCOUNT ?= 1
bench-engine:
	$(GO) test -bench='BenchmarkPropagateWave' -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' ./internal/engine

# Escape-analysis guard for the engine hot path: the per-literal helpers on
# the propagation wave (CSR row lookup, transition marking, literal value
# lookup, heap re-insert on backtrack) must stay inlinable, and the batched
# delta flush must stay allocation-free. The obs alloc-regression tests pin
# the complementary runtime guarantee (0 allocs/op across a full wave); this
# catches the same regressions at compile time with a file:line pointer.
escape-check:
	@out=$$($(GO) build -gcflags='-m' ./internal/engine 2>&1); \
	for fn in '(*Engine).csr' '(*Engine).noteTransition' '(*Engine).LitValue' '(*varHeap).pushIfAbsent'; do \
		echo "$$out" | grep -qF "can inline $$fn" || { echo "escape-check: $$fn is no longer inlinable"; exit 1; }; \
	done; \
	if echo "$$out" | grep 'notify\.go' | grep -q 'escapes to heap'; then \
		echo "escape-check: allocation escaped onto the batched-delta path:"; \
		echo "$$out" | grep 'notify\.go' | grep 'escapes to heap'; exit 1; \
	fi; \
	cutsout=$$($(GO) build -gcflags='-m' ./internal/cuts 2>&1); \
	for fn in '(*Pool).Probe' '(*Pool).Len'; do \
		echo "$$cutsout" | grep -qF "can inline $$fn" || { echo "escape-check: $$fn is no longer inlinable"; exit 1; }; \
	done; \
	if echo "$$cutsout" | grep 'probe\.go' | grep -q 'escapes to heap'; then \
		echo "escape-check: allocation escaped onto the per-node separation fast path:"; \
		echo "$$cutsout" | grep 'probe\.go' | grep 'escapes to heap'; exit 1; \
	fi; \
	lsout=$$($(GO) build -gcflags='-m' ./internal/ls 2>&1); \
	for fn in 'violation' 'objViolation' '(*solver).removeUnsat' '(*solver).bumpWeights'; do \
		echo "$$lsout" | grep -qF "can inline $$fn" || { echo "escape-check: ls $$fn is no longer inlinable"; exit 1; }; \
	done; \
	echo "escape-check: hot-path inlining + alloc-free delta flush + cut-probe + ls flip-loop helpers OK"

# Cooperative-portfolio benchmarks: every member proving the optimum with and
# without the sharing board (total conflicts/decisions across members), the
# end-to-end race, and the per-node board hot path. Override BENCHTIME for
# stable comparative numbers.
bench-portfolio:
	$(GO) test -bench='BenchmarkPortfolioSharedVsIsolated|BenchmarkPortfolioRace|BenchmarkBoardHotPath' -benchmem -benchtime=$(BENCHTIME) -run='^$$' ./internal/portfolio

# Cut-separation payoff on the synthetic LPR-gap family: share of the root
# integrality gap closed by the separation fixpoint, and the median
# conflicts/nodes to the proved optimum with cuts on vs off. The workload is
# search-order sensitive, so compare medians across repetitions
# (BENCHCOUNT=6), never single runs.
bench-cuts:
	$(GO) test -bench='BenchmarkCutsSynth' -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -run='^$$' ./internal/harness

# Local-search payoff benchmark (see DESIGN.md section 15): the cooperative
# race plus one LS member (portfolio-ls) vs the B&B-only race (portfolio) on
# the always-feasible sat family, with the exact lpr column as the quality
# reference. The ttfiMs column is the headline — how much earlier the mixed
# portfolio reaches its first feasible incumbent — and the best column bounds
# incumbent quality. Writes a versioned snapshot (BENCH_sat_<date>.json).
BENCH_LS_N ?= 3
BENCH_LS_TIME ?= 5s
BENCH_LS_NODES ?= 0
BENCH_LS_OUT ?= auto
bench-ls:
	$(GO) run ./cmd/pbbench -family sat -n $(BENCH_LS_N) -time $(BENCH_LS_TIME) -sat-nodes $(BENCH_LS_NODES) -solvers lpr,portfolio,portfolio-ls -snapshot $(BENCH_LS_OUT)

# Core-guided payoff benchmark (see DESIGN.md section 16): the cooperative
# race plus the WPM1 core-guided member (portfolio-wbo) vs the B&B-only race
# (portfolio) on generated weighted instances, with the solo core-guided
# column as the pure-strategy reference. Both portfolio columns must prove
# the same optima; the mixed one should match or beat the B&B-only wall
# clock. Writes a versioned snapshot (BENCH_wbo_<date>.json).
BENCH_WBO_N ?= 3
BENCH_WBO_TIME ?= 5s
BENCH_WBO_VARS ?= 0
BENCH_WBO_OUT ?= auto
bench-wbo:
	$(GO) run ./cmd/pbbench -family wbo -n $(BENCH_WBO_N) -time $(BENCH_WBO_TIME) -wbo-vars $(BENCH_WBO_VARS) -solvers core-guided,portfolio,portfolio-wbo -snapshot $(BENCH_WBO_OUT)

# Benchmark-trajectory snapshot: run the bench matrix and write a versioned
# BENCH_<family>_<date>.json document (schema repro.bench/v1). Compare two
# snapshots with `go run ./cmd/pbbench ... -compare old.json` — regressions
# (lost solves, worse incumbents, slowdowns beyond -compare-tol) exit 3.
# Override the knobs for bigger runs: make bench-snapshot BENCH_FAMILY=all
# BENCH_N=10 BENCH_TIME=10s BENCH_OUT=BENCH_all_$(shell date +%F).json
BENCH_FAMILY ?= synth
BENCH_N ?= 2
BENCH_TIME ?= 3s
BENCH_SOLVERS ?= plain,mis,lgr,lpr
BENCH_OUT ?= auto
bench-snapshot:
	$(GO) run ./cmd/pbbench -family $(BENCH_FAMILY) -n $(BENCH_N) -time $(BENCH_TIME) -solvers $(BENCH_SOLVERS) -snapshot $(BENCH_OUT)

# The committed perf baseline (BENCH_synth_baseline.json) and the CI gate
# against it. The baseline uses the deterministic-verdict solver columns only
# (plain rarely finishes within the smoke budget, so its incumbent is noise);
# the generous tolerance plus CompareBench's 50ms floor absorbs CI jitter
# while still catching lost solves and real slowdowns. Regenerate with
# `make bench-baseline` ONLY alongside a change that intentionally moves perf,
# and say so in the commit.
BASELINE := BENCH_synth_baseline.json
BASELINE_TOL ?= 4
bench-baseline:
	$(GO) run ./cmd/pbbench -family synth -n 2 -time 3s -solvers mis,lgr,lpr -snapshot $(BASELINE)

bench-compare:
	$(GO) run ./cmd/pbbench -family synth -n 2 -time 3s -solvers mis,lgr,lpr -compare $(BASELINE) -compare-tol $(BASELINE_TOL)

# Regenerate the paper's Table 1 at reproduction scale (minutes).
table:
	$(GO) run ./cmd/pbbench -all -n 10 -time 10s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mincov
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/comparison
	$(GO) run ./examples/routing

clean:
	$(GO) clean ./...
