// Scheduling: the paper's acc-tight family — pseudo-Boolean *satisfaction*
// with no cost function. Build a tight round-robin tournament scheduling
// instance, solve it, and print the schedule. With no objective, all four
// bsolo lower-bound configurations behave identically (Table 1, footnote a)
// — this example demonstrates that.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	const teams = 8
	prob, err := gen.ACC(gen.ACCConfig{
		Teams:            teams,
		FixedMatches:     5,
		ForbiddenMatches: 12,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduling instance: %d variables, %d constraints, no objective\n",
		prob.NumVars, len(prob.Constraints))

	for _, method := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
		start := time.Now()
		res := core.Solve(prob, core.Options{LowerBound: method, TimeLimit: 30 * time.Second})
		fmt.Printf("  bsolo-%-6s %v in %v (bound calls: %d — always 0 without a cost function)\n",
			method, res.Status, time.Since(start).Round(time.Millisecond), res.Stats.BoundCalls)
		if method != core.LBLPR {
			continue
		}
		if res.Status != core.StatusSatisfiable {
			log.Fatalf("instance should be satisfiable, got %v", res.Status)
		}
		printSchedule(teams, res.Values)
	}
}

// printSchedule decodes x_{i,j,r} (the gen.ACC variable layout) into a
// round-by-round pairing table.
func printSchedule(teams int, values []bool) {
	rounds := teams - 1
	var pairs [][2]int
	for i := 0; i < teams; i++ {
		for j := i + 1; j < teams; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	fmt.Println("\nschedule:")
	for r := 0; r < rounds; r++ {
		fmt.Printf("  round %d:", r+1)
		for pi, pr := range pairs {
			if values[pi*rounds+r] {
				fmt.Printf("  %d-%d", pr[0], pr[1])
			}
		}
		fmt.Println()
	}
}
