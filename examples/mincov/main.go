// Mincov: two-level logic minimization, the paper's MCNC benchmark family.
// Compute the prime implicants of a Boolean function with Quine–McCluskey,
// formulate minimum-literal covering as PBO, solve it with bsolo+LPR, and
// print the chosen sum-of-products cover.
//
//	go run ./examples/mincov
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/qm"
)

func main() {
	// f(a,b,c,d) = Σ m(0,1,2,5,6,7,8,9,10,14) — a classic teaching example.
	const inputs = 4
	on := []uint32{0, 1, 2, 5, 6, 7, 8, 9, 10, 14}

	primes, err := qm.Primes(inputs, on, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("function has %d ON-set minterms and %d prime implicants:\n", len(on), len(primes))
	for i, pr := range primes {
		fmt.Printf("  p%-2d %s  (%d literals)\n", i, pr.StringN(inputs), pr.Literals(inputs))
	}

	// Minimum-literal cover: cost = literals + 1 per chosen cube.
	prob := pb.NewProblem(len(primes))
	for i, pr := range primes {
		prob.SetCost(pb.Var(i), int64(pr.Literals(inputs)+1))
	}
	for _, row := range qm.CoverTable(on, primes) {
		lits := make([]pb.Lit, len(row))
		for k, pi := range row {
			lits[k] = pb.PosLit(pb.Var(pi))
		}
		if err := prob.AddClause(lits...); err != nil {
			log.Fatal(err)
		}
	}

	res := core.Solve(prob, core.Options{LowerBound: core.LBLPR})
	if res.Status != core.StatusOptimal {
		log.Fatalf("unexpected status %v", res.Status)
	}
	fmt.Printf("\nminimum cover (cost %d):\n", res.Best)
	for i, used := range res.Values {
		if used {
			fmt.Printf("  %s\n", primes[i].StringN(inputs))
		}
	}
}
