// Softprefs: designer preferences as weighted soft constraints on top of a
// hard technology-selection problem — the standard "penalty variable"
// modeling idiom for PBO in EDA flows, built on internal/soft.
//
// Each of a row of gates picks exactly one drive strength (hard). The
// design brief adds soft preferences: adjacent gates should not both use
// the strongest drive (noise, weight 4 each), and gate 0 would ideally use
// strength 2 (weight 3). The solver balances area cost against penalties.
//
//	go run ./examples/softprefs
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/soft"
)

func main() {
	const gates = 6
	const strengths = 3
	area := [strengths]int64{2, 3, 5} // per strength

	b := soft.NewBuilder(gates * strengths)
	v := func(g, s int) pb.Var { return pb.Var(g*strengths + s) }

	for g := 0; g < gates; g++ {
		lits := make([]pb.Lit, strengths)
		for s := 0; s < strengths; s++ {
			b.SetCost(v(g, s), area[s])
			lits[s] = pb.PosLit(v(g, s))
		}
		// Exactly one strength per gate (hard).
		terms := make([]pb.Term, strengths)
		for s := 0; s < strengths; s++ {
			terms[s] = pb.Term{Coef: 1, Lit: lits[s]}
		}
		b.Hard(terms, pb.EQ, 1)
	}
	// Every odd gate drives a long wire: strength 0 is too weak (hard).
	for g := 1; g < gates; g += 2 {
		b.HardClause(pb.NegLit(v(g, 0)))
	}

	// Soft: no two adjacent gates both at the strongest drive.
	var noisePrefs []int
	for g := 0; g+1 < gates; g++ {
		idx := b.SoftClause(4, pb.NegLit(v(g, strengths-1)), pb.NegLit(v(g+1, strengths-1)))
		noisePrefs = append(noisePrefs, idx)
	}
	// Soft: gate 0 ideally at strength 2.
	wish := b.SoftClause(3, pb.PosLit(v(0, 2)))

	sol, err := b.Solve(core.Options{LowerBound: core.LBLPR})
	if err != nil {
		log.Fatal(err)
	}
	if sol.Status != core.StatusOptimal {
		log.Fatalf("unexpected status %v", sol.Status)
	}
	fmt.Printf("optimal total cost %d (area + penalties), penalty share %d\n", sol.Best, sol.Penalty)
	for g := 0; g < gates; g++ {
		for s := 0; s < strengths; s++ {
			if sol.Values[v(g, s)] {
				fmt.Printf("  gate %d: strength %d (area %d)\n", g, s, area[s])
			}
		}
	}
	for _, i := range sol.Violated {
		switch {
		case i == wish:
			fmt.Println("  violated: gate-0 strength wish (paid 3)")
		default:
			for k, np := range noisePrefs {
				if i == np {
					fmt.Printf("  violated: noise preference between gates %d and %d (paid 4)\n", k, k+1)
				}
			}
		}
	}
}
