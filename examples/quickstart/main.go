// Quickstart: build a small pseudo-Boolean optimization problem with the
// public API, solve it with each of the paper's four lower-bound methods,
// and print the optimum.
//
// The model is a toy weighted vertex cover: pick vertices (with weights) so
// that every edge has an endpoint picked, minimizing total weight.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pb"
)

func main() {
	// A 6-vertex graph with weights.
	weights := []int64{4, 2, 3, 5, 1, 3}
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 5}}

	p := pb.NewProblem(len(weights))
	for v, w := range weights {
		p.SetCost(pb.Var(v), w)
	}
	for _, e := range edges {
		// x_u + x_v >= 1: the edge is covered.
		if err := p.AddClause(pb.PosLit(pb.Var(e[0])), pb.PosLit(pb.Var(e[1]))); err != nil {
			log.Fatal(err)
		}
	}

	for _, method := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
		res := core.Solve(p, core.Options{LowerBound: method})
		if res.Status != core.StatusOptimal {
			log.Fatalf("%v: unexpected status %v", method, res.Status)
		}
		var cover []int
		for v, used := range res.Values {
			if used {
				cover = append(cover, v)
			}
		}
		fmt.Printf("%-6s optimum=%d cover=%v decisions=%d boundPrunes=%d\n",
			method, res.Best, cover, res.Stats.Decisions, res.Stats.BoundPrunes)
	}
}
