// Routing: the workload that motivates the paper's grout benchmark family.
// Generate a congested global-routing instance (nets choosing candidate
// paths through a shared-capacity grid, minimizing wirelength) and compare
// plain branch-and-bound against LPR-driven lower bounding — the paper's
// headline effect.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	prob, err := gen.Grout(gen.GroutConfig{
		Width: 5, Height: 5,
		Nets:        24,
		PathsPerNet: 6,
		Capacity:    2,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing instance: %d path variables, %d constraints\n",
		prob.NumVars, len(prob.Constraints))

	budget := 10 * time.Second
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"plain (no lower bound)", core.Options{LowerBound: core.LBNone, TimeLimit: budget}},
		{"MIS lower bound", core.Options{LowerBound: core.LBMIS, TimeLimit: budget}},
		{"LPR lower bound", core.Options{LowerBound: core.LBLPR, TimeLimit: budget}},
	} {
		start := time.Now()
		res := core.Solve(prob, cfg.opt)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch res.Status {
		case core.StatusOptimal:
			fmt.Printf("%-24s optimal wirelength %d in %v (%d decisions, %d bound prunes)\n",
				cfg.name, res.Best, elapsed, res.Stats.Decisions, res.Stats.BoundPrunes)
		case core.StatusLimit:
			fmt.Printf("%-24s TIMEOUT after %v, best upper bound %d\n", cfg.name, elapsed, res.Best)
		default:
			fmt.Printf("%-24s %v\n", cfg.name, res.Status)
		}
	}
}
