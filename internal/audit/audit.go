// Package audit implements the in-search invariant auditor: an opt-in hook
// (core.Options.Audit, surfaced as `bsolo -audit`) that replays every
// soundness-critical artifact the solver produces — learned clauses, §4
// bound-based conflicts (ω_pp ∪ ω_pl), imported clauses, adopted incumbents
// and terminal claims — against the *original* problem, recording violations
// in a structured Report instead of panicking.
//
// The auditor is the oracle half of the differential-fuzzing harness
// (internal/fuzz, cmd/pbfuzz): a status/optimum mismatch between
// configurations tells you *that* something is unsound; the auditor's replay
// tells you *which* artifact first broke, on which witness assignment.
//
// # What each check means
//
// Learned clause. Every clause the solver learns is implied by
// problem ∧ (cost ≤ upper−1): the incumbent cuts (eq. 10/13) and, under
// sharing, imported clauses participate in conflict analysis, so the
// implication is relative to the weakest cost assumption in force (the
// caller passes it). The auditor enumerates all assignments (gated by
// Config.MaxExhaustiveVars) and flags any *feasible* assignment cheaper than
// the assumption that falsifies the clause — such an assignment is a
// solution the clause unsoundly cuts off.
//
// Bound conflict. A §4 bound conflict claims every completion of the current
// partial assignment costs ≥ path + lower. The auditor enumerates the
// completions of the trail and flags any feasible completion costing less —
// the node the solver pruned contained a solution better than the bound
// admitted.
//
// Imported clause. Same implication as a learned clause, but relative to the
// sharing board's upper bound at import time (the publisher's incumbent was
// on the board before the clause entered the ring; the board's UB only
// decreases, so it under-approximates every assumption behind the clause —
// see DESIGN.md §9).
//
// Incumbent. Every adopted solution — local, foreign, or terminal — must
// re-verify against the original constraints with exactly the claimed
// objective (internal/verify.Check; always cheap, never gated).
//
// Termination. "optimal <v>" must equal the exhaustive optimum;
// "unsatisfiable" must mean no feasible assignment exists.
//
// # Cost model
//
// The exhaustive checks precompute one feasibility/cost table of size
// 2^NumVars at construction and share it across all events, so a per-event
// replay is a table scan, not a constraint-store walk. Instances above
// MaxExhaustiveVars skip the exhaustive checks (counted in Counts.Skipped);
// the incumbent re-verification has no size gate. All methods are safe on a
// nil *Auditor (no-ops), so call sites need no guards, and the struct is
// internally locked so one auditor can serve every member of a portfolio.
package audit

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/pb"
	"repro/internal/verify"
)

// Kind classifies a violation by the artifact that produced it.
type Kind int

const (
	// KindLearnedClause: a learned clause eliminates a feasible assignment
	// cheaper than the cost assumption it was learned under.
	KindLearnedClause Kind = iota
	// KindBoundConflict: a feasible completion of the partial assignment
	// costs less than the claimed path + lower.
	KindBoundConflict
	// KindImportedClause: an imported clause eliminates a feasible
	// assignment cheaper than the board's upper bound.
	KindImportedClause
	// KindIncumbent: an adopted solution violates a constraint or its
	// objective differs from the claimed value.
	KindIncumbent
	// KindTermination: the terminal status/optimum disagrees with the
	// exhaustive reference.
	KindTermination
	// KindPooledCut: a cutting plane accepted into the LPR cut pool
	// eliminates a feasible assignment. Pooled cuts must be implied by the
	// original problem alone — the pool outlives incumbents, so no
	// upper-bound assumption is admissible.
	KindPooledCut
)

func (k Kind) String() string {
	switch k {
	case KindLearnedClause:
		return "learned-clause"
	case KindBoundConflict:
		return "bound-conflict"
	case KindImportedClause:
		return "imported-clause"
	case KindIncumbent:
		return "incumbent"
	case KindTermination:
		return "termination"
	case KindPooledCut:
		return "pooled-cut"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Violation is one audited artifact that failed its replay.
type Violation struct {
	Kind Kind
	// Detail is a human-readable description of what broke.
	Detail string
	// Clause is the offending clause for the clause-shaped kinds (a copy).
	Clause []pb.Lit
	// Witness, when non-nil, is a full assignment demonstrating the
	// violation (a feasible solution the artifact wrongly excludes).
	Witness []bool
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
}

// Counts tallies audited events per artifact class.
type Counts struct {
	LearnedClauses  int64
	BoundConflicts  int64
	ImportedClauses int64
	Incumbents      int64
	Terminations    int64
	PooledCuts      int64
	// Skipped counts events whose exhaustive replay was skipped because the
	// instance exceeds MaxExhaustiveVars (incumbent checks are never
	// skipped).
	Skipped int64
}

// Report is the auditor's cumulative outcome.
type Report struct {
	Counts     Counts
	Violations []Violation
}

// Ok reports whether no violation was recorded.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a compact multi-line summary ("c audit: ..." friendly).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audited %d learned, %d bound conflicts, %d imports, %d incumbents, %d cuts, %d terminations (%d skipped)",
		r.Counts.LearnedClauses, r.Counts.BoundConflicts, r.Counts.ImportedClauses,
		r.Counts.Incumbents, r.Counts.PooledCuts, r.Counts.Terminations, r.Counts.Skipped)
	if r.Ok() {
		sb.WriteString("; no violations")
		return sb.String()
	}
	fmt.Fprintf(&sb, "; %d VIOLATIONS", len(r.Violations))
	for _, v := range r.Violations {
		sb.WriteString("\n  ")
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Config tunes an Auditor.
type Config struct {
	// MaxExhaustiveVars gates the 2^n replay table (default 20 ≈ 1M rows,
	// ~9MB). Instances above the gate still get incumbent re-verification;
	// the exhaustive checks count as Skipped.
	MaxExhaustiveVars int
	// MaxViolations caps recorded violations (default 64); events past the
	// cap are still counted but their violations dropped — a single unsound
	// clause otherwise floods the report at every subsequent conflict.
	MaxViolations int
}

// DefaultMaxExhaustiveVars is the default replay-table gate.
const DefaultMaxExhaustiveVars = 20

const defaultMaxViolations = 64

// Auditor replays solver artifacts against one problem. Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Auditor struct {
	mu  sync.Mutex
	p   *pb.Problem
	ix  *verify.Index
	cfg Config

	// exhaustive is set when the replay table below was built. feas[m] and
	// cost[m] are feasibility and *internal* objective (CostOffset excluded)
	// of the assignment where variable v is true iff bit v of m is set.
	exhaustive bool
	feas       []bool
	cost       []int64

	rep Report
}

// New builds an auditor for p with default configuration.
func New(p *pb.Problem) *Auditor { return NewWith(p, Config{}) }

// NewWith builds an auditor for p with the given configuration.
func NewWith(p *pb.Problem, cfg Config) *Auditor {
	if cfg.MaxExhaustiveVars <= 0 {
		cfg.MaxExhaustiveVars = DefaultMaxExhaustiveVars
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = defaultMaxViolations
	}
	a := &Auditor{p: p, ix: verify.NewIndex(p), cfg: cfg}
	if n := p.NumVars; n <= cfg.MaxExhaustiveVars && n < 31 {
		a.exhaustive = true
		size := 1 << n
		a.feas = make([]bool, size)
		a.cost = make([]int64, size)
		values := make([]bool, n)
		for m := 0; m < size; m++ {
			var c int64
			for v := 0; v < n; v++ {
				values[v] = m&(1<<v) != 0
				if values[v] {
					c += p.Cost[v]
				}
			}
			a.cost[m] = c
			a.feas[m] = p.Feasible(values)
		}
	}
	return a
}

// Snapshot returns a copy of the cumulative report.
func (a *Auditor) Snapshot() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := a.rep
	rep.Violations = append([]Violation(nil), a.rep.Violations...)
	return rep
}

// Ok reports whether no violation has been recorded so far.
func (a *Auditor) Ok() bool {
	if a == nil {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rep.Ok()
}

func (a *Auditor) violate(v Violation) {
	if len(a.rep.Violations) < a.cfg.MaxViolations {
		a.rep.Violations = append(a.rep.Violations, v)
	}
}

// witness expands mask m into a full assignment slice.
func (a *Auditor) witness(m int) []bool {
	out := make([]bool, a.p.NumVars)
	for v := range out {
		out[v] = m&(1<<v) != 0
	}
	return out
}

// clauseSat reports whether the clause holds under assignment mask m.
func clauseSat(lits []pb.Lit, m int) bool {
	for _, l := range lits {
		if l.Eval(m&(1<<l.Var()) != 0) {
			return true
		}
	}
	return false
}

// satAdd adds without wrapping (bounds can be pb-space sentinels like
// bounds.InfBound; path is a real cost — their sum must not overflow into a
// vacuous comparison).
func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return math.MinInt64
	}
	return s
}

// LearnedClause audits one freshly learned clause. assumedUB is the weakest
// cost assumption the clause may rely on (the solver's current upper bound,
// further lowered by any sharing import — see core's assumedUB tracking);
// hasUB=false means the clause must be implied by the problem alone.
func (a *Auditor) LearnedClause(lits []pb.Lit, assumedUB int64, hasUB bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.LearnedClauses++
	a.checkClauseImplied(KindLearnedClause, lits, assumedUB, hasUB)
}

// ImportedClause audits one clause drained from the sharing board under the
// board's upper bound at import time.
func (a *Auditor) ImportedClause(lits []pb.Lit, boardUB int64, hasUB bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.ImportedClauses++
	a.checkClauseImplied(KindImportedClause, lits, boardUB, hasUB)
}

// PooledCut audits one cutting plane accepted into the LPR cut pool: every
// feasible assignment of the original problem must satisfy Σ terms ≥ degree,
// with no cost assumption whatsoever (the pool persists across incumbents
// and tightens every node LP, so a cut valid only under some upper bound
// would silently corrupt bounds for the rest of the run).
func (a *Auditor) PooledCut(terms []pb.Term, degree int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.PooledCuts++
	if !a.exhaustive {
		a.rep.Counts.Skipped++
		return
	}
	for m := range a.feas {
		if !a.feas[m] {
			continue
		}
		var lhs int64
		for _, t := range terms {
			if t.Lit.Eval(m&(1<<t.Lit.Var()) != 0) {
				lhs += t.Coef
			}
		}
		if lhs < degree {
			lits := make([]pb.Lit, len(terms))
			for i, t := range terms {
				lits[i] = t.Lit
			}
			a.violate(Violation{
				Kind: KindPooledCut,
				Detail: fmt.Sprintf("pooled cut %v >= %d eliminates feasible assignment (lhs=%d, internal cost %d)",
					terms, degree, lhs, a.cost[m]),
				Clause:  lits,
				Witness: a.witness(m),
			})
			return
		}
	}
}

// checkClauseImplied verifies that every feasible assignment strictly below
// the cost assumption satisfies the clause. Caller holds the lock.
func (a *Auditor) checkClauseImplied(kind Kind, lits []pb.Lit, ub int64, hasUB bool) {
	if !a.exhaustive {
		a.rep.Counts.Skipped++
		return
	}
	for m := range a.feas {
		if !a.feas[m] || (hasUB && a.cost[m] >= ub) {
			continue
		}
		if !clauseSat(lits, m) {
			detail := fmt.Sprintf("clause %s eliminates feasible assignment of internal cost %d",
				a.clauseString(lits), a.cost[m])
			if hasUB {
				detail += fmt.Sprintf(" (below the assumed upper bound %d)", ub)
			}
			a.violate(Violation{
				Kind:    kind,
				Detail:  detail,
				Clause:  append([]pb.Lit(nil), lits...),
				Witness: a.witness(m),
			})
			return
		}
	}
}

// BoundConflict audits one §4 bound conflict: assigned is the trail at the
// conflict, and the solver claims every feasible completion of it costs at
// least path + lower (internal objective space). lower may be a huge
// infeasibility sentinel (bounds.InfBound), in which case the claim is that
// no feasible completion exists at all.
func (a *Auditor) BoundConflict(assigned []pb.Lit, path, lower int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.BoundConflicts++
	if !a.exhaustive {
		a.rep.Counts.Skipped++
		return
	}
	claimed := satAdd(path, lower)
	// Completions of the trail: fixed bits from assigned literals, free bits
	// enumerated by sub-mask.
	fixedMask, fixedVal := 0, 0
	for _, l := range assigned {
		bit := 1 << l.Var()
		fixedMask |= bit
		if !l.IsNeg() {
			fixedVal |= bit
		}
	}
	var free []int
	for v := 0; v < a.p.NumVars; v++ {
		if fixedMask&(1<<v) == 0 {
			free = append(free, v)
		}
	}
	for sub := 0; sub < 1<<len(free); sub++ {
		m := fixedVal
		for i, v := range free {
			if sub&(1<<i) != 0 {
				m |= 1 << v
			}
		}
		if a.feas[m] && a.cost[m] < claimed {
			a.violate(Violation{
				Kind: KindBoundConflict,
				Detail: fmt.Sprintf("feasible completion of internal cost %d beats claimed bound path(%d)+lower(%d)",
					a.cost[m], path, lower),
				Witness: a.witness(m),
			})
			return
		}
	}
}

// Incumbent audits one adopted solution (local find, foreign adoption, or
// the terminal assignment): it must satisfy every original constraint and
// cost exactly the claimed external objective (CostOffset included). Never
// gated by instance size.
func (a *Auditor) Incumbent(externalCost int64, values []bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.Incumbents++
	if len(values) != a.p.NumVars {
		a.violate(Violation{
			Kind:   KindIncumbent,
			Detail: fmt.Sprintf("assignment has %d values, problem has %d variables", len(values), a.p.NumVars),
		})
		return
	}
	rep := verify.Check(a.p, values)
	if !rep.Feasible {
		a.violate(Violation{
			Kind:    KindIncumbent,
			Detail:  fmt.Sprintf("adopted incumbent violates constraint %d: %v", rep.ViolatedIdx, rep.Violated),
			Witness: append([]bool(nil), values...),
		})
		return
	}
	if rep.Objective != externalCost {
		a.violate(Violation{
			Kind:    KindIncumbent,
			Detail:  fmt.Sprintf("adopted incumbent costs %d, solver claims %d", rep.Objective, externalCost),
			Witness: append([]bool(nil), values...),
		})
	}
}

// Claim is a solver's terminal verdict, audited by Termination.
type Claim struct {
	// Optimal: the solver proved Best (external objective) optimal.
	Optimal bool
	// Satisfiable: objective-free instance proved satisfiable.
	Satisfiable bool
	// Unsat: the solver proved the constraints unsatisfiable.
	Unsat bool
	// UpperBound: a UB-only member (local search) claims Best is achieved by
	// some feasible assignment — an upper bound on the optimum, never an
	// exhaustion proof. Mutually exclusive with the verdicts above.
	UpperBound bool
	// Best is the claimed optimum (meaningful with Optimal) or achieved
	// upper bound (meaningful with UpperBound).
	Best int64
}

// Termination audits a terminal claim against the exhaustive reference.
// Inconclusive outcomes (limits, errors) carry no claim and should not be
// audited.
func (a *Auditor) Termination(c Claim) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Counts.Terminations++
	if !a.exhaustive {
		a.rep.Counts.Skipped++
		return
	}
	feasible := false
	best := int64(math.MaxInt64)
	bestM := -1
	for m := range a.feas {
		if a.feas[m] && a.cost[m] < best {
			feasible = true
			best = a.cost[m]
			bestM = m
		}
	}
	switch {
	case c.Unsat && feasible:
		a.violate(Violation{
			Kind:    KindTermination,
			Detail:  fmt.Sprintf("claimed unsatisfiable, but a feasible assignment of internal cost %d exists", best),
			Witness: a.witness(bestM),
		})
	case (c.Optimal || c.Satisfiable) && !feasible:
		a.violate(Violation{
			Kind:   KindTermination,
			Detail: "claimed a solution, but the instance is infeasible",
		})
	case c.Optimal && feasible && c.Best != satAdd(best, a.p.CostOffset):
		a.violate(Violation{
			Kind: KindTermination,
			Detail: fmt.Sprintf("claimed optimum %d, exhaustive optimum is %d",
				c.Best, satAdd(best, a.p.CostOffset)),
			Witness: a.witness(bestM),
		})
	case c.UpperBound && !feasible:
		a.violate(Violation{
			Kind:   KindTermination,
			Detail: "claimed an upper bound, but the instance is infeasible",
		})
	case c.UpperBound && feasible && c.Best < satAdd(best, a.p.CostOffset):
		// An upper bound may exceed the optimum (local search is not a
		// proof) — but never undercut it: no feasible assignment achieves
		// a cost below the exhaustive minimum.
		a.violate(Violation{
			Kind: KindTermination,
			Detail: fmt.Sprintf("claimed achieved upper bound %d below the exhaustive optimum %d",
				c.Best, satAdd(best, a.p.CostOffset)),
			Witness: a.witness(bestM),
		})
	}
}

func (a *Auditor) clauseString(lits []pb.Lit) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, l := range lits {
		if i > 0 {
			sb.WriteString(" ∨ ")
		}
		if l.IsNeg() {
			sb.WriteByte('¬')
		}
		sb.WriteString(verify.VarName(a.p, l.Var()))
	}
	sb.WriteByte(')')
	return sb.String()
}
