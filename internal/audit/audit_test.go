package audit

import (
	"strings"
	"testing"

	"repro/internal/opb"
	"repro/internal/pb"
)

// min 3a + b  s.t.  a + b ≥ 1: optimum 1 at (a=0, b=1).
func sample(t *testing.T) *pb.Problem {
	t.Helper()
	p, err := opb.ParseString("min: +3 a +1 b ;\n+1 a +1 b >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNilAuditorIsNoOp(t *testing.T) {
	var a *Auditor
	a.LearnedClause([]pb.Lit{pb.PosLit(0)}, 0, false)
	a.ImportedClause(nil, 0, false)
	a.BoundConflict(nil, 0, 0)
	a.Incumbent(0, nil)
	a.Termination(Claim{})
	if !a.Ok() {
		t.Fatal("nil auditor must be Ok")
	}
	if rep := a.Snapshot(); !rep.Ok() {
		t.Fatal("nil snapshot must be Ok")
	}
}

func TestLearnedClauseSoundAndUnsound(t *testing.T) {
	p := sample(t)
	a := New(p)
	// (a ∨ b) is implied by the problem outright.
	a.LearnedClause([]pb.Lit{pb.PosLit(0), pb.PosLit(1)}, 0, false)
	if !a.Ok() {
		t.Fatalf("sound clause flagged: %v", a.Snapshot().Violations)
	}
	// (a) eliminates the feasible optimum (a=0, b=1): unsound.
	a.LearnedClause([]pb.Lit{pb.PosLit(0)}, 0, false)
	rep := a.Snapshot()
	if rep.Ok() || rep.Violations[0].Kind != KindLearnedClause {
		t.Fatalf("unsound clause not flagged: %+v", rep)
	}
	if w := rep.Violations[0].Witness; w == nil || w[0] || !w[1] {
		t.Fatalf("witness should be the eliminated assignment (¬a, b): %v", w)
	}
	if rep.Counts.LearnedClauses != 2 {
		t.Fatalf("counts: %+v", rep.Counts)
	}
}

func TestLearnedClauseUnderUpperBound(t *testing.T) {
	p := sample(t)
	a := New(p)
	// (a) is NOT implied by the problem alone, but under cost < 2 the only
	// surviving feasible assignments are... (¬a, b) with cost 1 — which
	// falsifies (a). Still unsound.
	a.ImportedClause([]pb.Lit{pb.PosLit(0)}, 2, true)
	if a.Ok() {
		t.Fatal("clause eliminating the only sub-2 solution must be flagged")
	}
	// (¬a) under cost < 2: the sole feasible assignment below the bound,
	// (¬a, b), satisfies it — sound relative to the assumption.
	b := New(p)
	b.ImportedClause([]pb.Lit{pb.NegLit(0)}, 2, true)
	if !b.Ok() {
		t.Fatalf("assumption-relative sound clause flagged: %v", b.Snapshot().Violations)
	}
	if b.Snapshot().Counts.ImportedClauses != 1 {
		t.Fatalf("counts: %+v", b.Snapshot().Counts)
	}
}

func TestBoundConflictReplay(t *testing.T) {
	p := sample(t)
	a := New(p)
	// Trail: a=1 (path 3). Claiming every completion costs ≥ 3 is sound.
	a.BoundConflict([]pb.Lit{pb.PosLit(0)}, 3, 0)
	if !a.Ok() {
		t.Fatalf("sound bound claim flagged: %v", a.Snapshot().Violations)
	}
	// Claiming ≥ 5 is unsound: completion (a, ¬b) costs 3.
	a.BoundConflict([]pb.Lit{pb.PosLit(0)}, 3, 2)
	rep := a.Snapshot()
	if rep.Ok() || rep.Violations[0].Kind != KindBoundConflict {
		t.Fatalf("unsound bound claim not flagged: %+v", rep)
	}
	// An infeasibility sentinel on a feasible subtree is also caught.
	b := New(p)
	b.BoundConflict([]pb.Lit{pb.PosLit(1)}, 1, int64(1)<<60)
	if b.Ok() {
		t.Fatal("false infeasibility claim must be flagged")
	}
}

func TestIncumbentReplay(t *testing.T) {
	p := sample(t)
	a := New(p)
	a.Incumbent(1, []bool{false, true}) // feasible, cost 1: fine
	if !a.Ok() {
		t.Fatalf("valid incumbent flagged: %v", a.Snapshot().Violations)
	}
	a.Incumbent(0, []bool{false, false}) // violates a+b ≥ 1
	if a.Ok() {
		t.Fatal("infeasible incumbent must be flagged")
	}
	b := New(p)
	b.Incumbent(2, []bool{false, true}) // feasible but costs 1, not 2
	if b.Ok() {
		t.Fatal("mis-costed incumbent must be flagged")
	}
	c := New(p)
	c.Incumbent(1, []bool{true}) // wrong arity
	if c.Ok() {
		t.Fatal("short assignment must be flagged")
	}
}

func TestTerminationReplay(t *testing.T) {
	p := sample(t)
	a := New(p)
	a.Termination(Claim{Optimal: true, Best: 1})
	if !a.Ok() {
		t.Fatalf("correct optimum flagged: %v", a.Snapshot().Violations)
	}
	a.Termination(Claim{Optimal: true, Best: 2})
	if a.Ok() {
		t.Fatal("wrong optimum must be flagged")
	}
	b := New(p)
	b.Termination(Claim{Unsat: true})
	if b.Ok() {
		t.Fatal("unsat claim on a feasible instance must be flagged")
	}
	// Genuinely unsatisfiable instance: unsat claim passes, solution claim
	// is flagged.
	u, err := opb.ParseString("+1 a >= 1 ;\n+1 ~a >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	c := New(u)
	c.Termination(Claim{Unsat: true})
	if !c.Ok() {
		t.Fatalf("correct unsat claim flagged: %v", c.Snapshot().Violations)
	}
	c.Termination(Claim{Satisfiable: true})
	if c.Ok() {
		t.Fatal("satisfiable claim on an unsat instance must be flagged")
	}
}

func TestTerminationRespectsCostOffset(t *testing.T) {
	// Negative objective coefficient: opb normalizes it into a complement
	// variable plus CostOffset. The audited optimum must be in the original
	// (external) space.
	p, err := opb.ParseString("min: -5 a +1 b ;\n+1 a +1 b >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	a := New(p)
	a.Termination(Claim{Optimal: true, Best: -5})
	if !a.Ok() {
		t.Fatalf("external-space optimum -5 flagged: %v", a.Snapshot().Violations)
	}
	a.Termination(Claim{Optimal: true, Best: 0})
	if a.Ok() {
		t.Fatal("internal-space optimum must be flagged as wrong")
	}
}

func TestExhaustiveGateSkips(t *testing.T) {
	p := pb.NewProblem(8)
	for v := 0; v < 8; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	a := NewWith(p, Config{MaxExhaustiveVars: 4})
	a.LearnedClause([]pb.Lit{pb.PosLit(0)}, 0, false)
	a.BoundConflict(nil, 0, 1)
	a.Termination(Claim{Optimal: true, Best: 99})
	rep := a.Snapshot()
	if !rep.Ok() {
		t.Fatalf("gated auditor must not flag: %v", rep.Violations)
	}
	if rep.Counts.Skipped != 3 {
		t.Fatalf("skipped=%d want 3", rep.Counts.Skipped)
	}
	// Incumbent checks are never gated.
	a.Incumbent(99, make([]bool, 8))
	if a.Ok() {
		t.Fatal("mis-costed incumbent must be flagged even above the gate")
	}
}

func TestViolationCap(t *testing.T) {
	p := sample(t)
	a := NewWith(p, Config{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		a.LearnedClause([]pb.Lit{pb.PosLit(0)}, 0, false)
	}
	rep := a.Snapshot()
	if len(rep.Violations) != 2 {
		t.Fatalf("violations=%d want cap 2", len(rep.Violations))
	}
	if rep.Counts.LearnedClauses != 5 {
		t.Fatalf("events past the cap must still be counted: %+v", rep.Counts)
	}
}

func TestReportString(t *testing.T) {
	p := sample(t)
	a := New(p)
	rep := a.Snapshot()
	if !strings.Contains(rep.String(), "no violations") {
		t.Fatalf("clean report: %q", rep.String())
	}
	a.LearnedClause([]pb.Lit{pb.PosLit(0)}, 0, false)
	rep = a.Snapshot()
	if !strings.Contains(rep.String(), "VIOLATIONS") ||
		!strings.Contains(rep.String(), "learned-clause") {
		t.Fatalf("violating report: %q", rep.String())
	}
}

func TestConcurrentAuditing(t *testing.T) {
	p := sample(t)
	a := New(p)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				a.LearnedClause([]pb.Lit{pb.PosLit(0), pb.PosLit(1)}, 0, false)
				a.Incumbent(1, []bool{false, true})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	rep := a.Snapshot()
	if !rep.Ok() || rep.Counts.LearnedClauses != 800 || rep.Counts.Incumbents != 800 {
		t.Fatalf("%+v", rep)
	}
}

func TestPooledCutReplay(t *testing.T) {
	p := sample(t)
	a := New(p)
	// a + b ≥ 1 is the problem's own row: trivially implied.
	a.PooledCut([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)},
	}, 1)
	if !a.Ok() {
		rep0 := a.Snapshot()
		t.Fatalf("valid pooled cut flagged: %s", rep0.String())
	}
	// a + b ≥ 2 wrongly excludes the feasible (a=0, b=1) — and an
	// upper-bound-style justification must not save it: cuts get none.
	a.PooledCut([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)},
	}, 2)
	rep := a.Snapshot()
	if rep.Ok() || rep.Counts.PooledCuts != 2 {
		t.Fatalf("invalid pooled cut not flagged: %s", rep.String())
	}
	v := rep.Violations[0]
	if v.Kind != KindPooledCut || v.Witness == nil {
		t.Fatalf("violation lacks kind/witness: %+v", v)
	}
	// Any witness must be feasible yet below the cut's degree.
	if !v.Witness[0] && !v.Witness[1] {
		t.Fatalf("witness %v is not even feasible for a+b≥1", v.Witness)
	}
	if v.Witness[0] && v.Witness[1] {
		t.Fatalf("witness %v satisfies the bogus cut; proves nothing", v.Witness)
	}
}

func TestPooledCutNilAndSkip(t *testing.T) {
	var nilA *Auditor
	nilA.PooledCut([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, 1)
	big := pb.NewProblem(25) // above the exhaustive gate
	a := New(big)
	a.PooledCut([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, 1)
	rep := a.Snapshot()
	if rep.Counts.PooledCuts != 1 || rep.Counts.Skipped != 1 || !rep.Ok() {
		t.Fatalf("gated pooled cut should count as skipped: %+v", rep.Counts)
	}
}

func TestTerminationUpperBoundClaims(t *testing.T) {
	p := sample(t) // optimum 1
	a := New(p)
	// A UB-only member may report any achieved bound at or above the
	// optimum — it is not an optimality proof.
	a.Termination(Claim{UpperBound: true, Best: 3})
	a.Termination(Claim{UpperBound: true, Best: 1})
	if rep := a.Snapshot(); !rep.Ok() {
		t.Fatalf("sound upper-bound claims flagged: %v", rep.Violations)
	}
	// Undercutting the exhaustive optimum means the claimed assignment
	// cannot exist.
	a.Termination(Claim{UpperBound: true, Best: 0})
	rep := a.Snapshot()
	if rep.Ok() {
		t.Fatal("upper bound below the exhaustive optimum not flagged")
	}
	if !strings.Contains(rep.Violations[len(rep.Violations)-1].Detail, "below the exhaustive optimum") {
		t.Fatalf("unexpected violation: %v", rep.Violations)
	}

	// On an infeasible instance no feasible assignment achieves any bound.
	unsat, err := opb.ParseString("min: +1 a ;\n+1 a >= 1 ;\n+1 ~a >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	b := New(unsat)
	b.Termination(Claim{UpperBound: true, Best: 1})
	if b.Ok() {
		t.Fatal("upper-bound claim on an infeasible instance not flagged")
	}
}
