package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Live is the producer side of live metrics for one solver: the solver
// publishes complete, immutable SolverMetrics values at checkpoints (every
// 16th node and at termination), and concurrent scrapers load the latest
// value through one atomic pointer — a reader can never observe a torn or
// half-assembled counter block, no matter how many members publish in
// parallel. A nil *Live is the disabled state: Publish is a nil-check no-op.
type Live struct {
	p atomic.Pointer[SolverMetrics]
}

// Publish installs m as the latest snapshot. The value is copied; the
// caller must not retain pointers into m's maps after publishing (the core
// converter builds fresh maps per snapshot, see core.Stats.Metrics).
// A nil receiver is a true no-op: the heap copy lives in the non-inlined
// store helper, so the disabled path costs one nil check and zero
// allocations (pinned by TestDisabledObservabilityAllocatesNothing).
func (l *Live) Publish(m SolverMetrics) {
	if l == nil {
		return
	}
	l.store(m)
}

//go:noinline
func (l *Live) store(m SolverMetrics) {
	l.p.Store(&m)
}

// Load returns the latest published snapshot (ok=false before the first
// publish). Nil-safe.
func (l *Live) Load() (SolverMetrics, bool) {
	if l == nil {
		return SolverMetrics{}, false
	}
	p := l.p.Load()
	if p == nil {
		return SolverMetrics{}, false
	}
	return *p, true
}

// Registry assembles the unified Snapshot from registered live sources. It
// is safe for concurrent use: registration happens at run setup, snapshots
// may be taken at any time (the HTTP endpoint, the CLI's -metrics writer,
// tests racing a solve).
type Registry struct {
	mu      sync.Mutex
	start   time.Time
	meta    map[string]string
	names   []string
	solvers []*Live
	board   func() BoardMetrics
}

// NewRegistry returns an empty registry with its uptime clock started.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// SetMeta records a free-form run label (instance name, mode, flags).
func (r *Registry) SetMeta(key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.meta == nil {
		r.meta = make(map[string]string)
	}
	r.meta[key] = value
}

// RegisterSolver adds one live source under the given name. Snapshot
// reports solvers in registration order and stamps each block with its
// registered name (overriding whatever the producer wrote).
func (r *Registry) RegisterSolver(name string, src *Live) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names = append(r.names, name)
	r.solvers = append(r.solvers, src)
}

// RegisterBoard installs the sharing board's snapshot function (fn must be
// safe to call concurrently; share.Board.Snapshot is).
func (r *Registry) RegisterBoard(fn func() BoardMetrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.board = fn
}

// Snapshot assembles the current unified document. Solvers that have not
// published yet appear with only their name, so scrapers see the full
// member roster from the first request.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	solvers := append([]*Live(nil), r.solvers...)
	board := r.board
	var meta map[string]string
	if len(r.meta) > 0 {
		meta = make(map[string]string, len(r.meta))
		for k, v := range r.meta {
			meta[k] = v
		}
	}
	start := r.start
	r.mu.Unlock()

	now := time.Now()
	snap := Snapshot{
		Schema:      SchemaVersion,
		TakenUnixMs: now.UnixMilli(),
		UptimeMs:    float64(now.Sub(start).Microseconds()) / 1000,
		Meta:        meta,
		Solvers:     make([]SolverMetrics, len(solvers)),
	}
	for i, src := range solvers {
		m, _ := src.Load()
		m.Name = names[i]
		snap.Solvers[i] = m
	}
	if board != nil {
		b := board()
		snap.Board = &b
	}
	return snap
}

// Handler returns the introspection mux: GET /metrics serves the unified
// snapshot as JSON, and /debug/pprof/* exposes the standard Go profiles.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "repro debug endpoint: /metrics (unified snapshot JSON), /debug/pprof/")
	})
	return mux
}

// Serve starts the introspection endpoint on addr and returns the bound
// address (useful with port 0) and a shutdown function. Security: the
// endpoint is meant for the operator's loopback only — an addr without a
// host (":6060") is rewritten to 127.0.0.1, and binding a non-loopback host
// requires spelling it out explicitly (DESIGN.md §11 security note).
//
// The shutdown function drains in-flight requests gracefully for up to two
// seconds before force-closing; long-lived callers that want to control the
// drain budget should use ServeHandler directly.
func Serve(addr string, r *Registry) (boundAddr string, shutdown func(), err error) {
	bound, stop, err := ServeHandler(addr, r.Handler())
	if err != nil {
		return "", nil, err
	}
	return bound, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = stop(ctx)
	}, nil
}

// ServeHandler starts a hardened HTTP server for an arbitrary handler with
// the same loopback-default addressing as Serve. The server carries
// slow-client protection for long-lived use — ReadHeaderTimeout against
// header-dribbling connections, IdleTimeout so abandoned keep-alives do not
// accumulate — and the returned shutdown function performs a context-bounded
// graceful drain: new connections are refused immediately, in-flight
// requests get until ctx's deadline, and whatever remains is force-closed.
// Shutdown always reaps the serving goroutine before returning (the
// pre-hardening Serve could only abandon it). Reused by bsolvd for both its
// API listener and its debug endpoint.
func ServeHandler(addr string, h http.Handler) (boundAddr string, shutdown func(context.Context) error, err error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // ErrServerClosed on shutdown
	}()
	return ln.Addr().String(), func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		if err != nil {
			_ = srv.Close() // drain budget exhausted: force-close stragglers
		}
		<-done
		return err
	}, nil
}
