package obs

// The unified metrics snapshot schema. One Snapshot merges every counter
// block the solver stack maintains — core.Stats, bounds.Stats, the
// member-side SharingStats and the board's global counters — into a single
// versioned JSON document. The same document is served live by the registry
// (`bsolo -debug-addr`), written at end-of-run (`bsolo -metrics`), and
// embedded per solver column in the pbbench BENCH_*.json snapshots.
//
// Schema rules: all durations are float64 milliseconds; all timestamps are
// int64 Unix milliseconds; optional blocks are pointers omitted when empty.
// Changing field meaning (not merely adding fields) requires bumping
// SchemaVersion.

// SchemaVersion identifies the metrics snapshot layout.
const SchemaVersion = "repro.metrics/v1"

// Snapshot is the top-level unified metrics document.
type Snapshot struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// TakenUnixMs is when the snapshot was assembled.
	TakenUnixMs int64 `json:"taken_unix_ms"`
	// UptimeMs is milliseconds since the registry (≈ the run) started.
	UptimeMs float64 `json:"uptime_ms"`
	// Meta carries free-form run labels (instance name, flags, mode).
	Meta map[string]string `json:"meta,omitempty"`
	// Solvers holds one entry per registered solver (one for a single
	// solve, one per member for a portfolio), in registration order.
	Solvers []SolverMetrics `json:"solvers"`
	// Board is the sharing board's global counters (nil without sharing).
	Board *BoardMetrics `json:"board,omitempty"`
}

// SolverMetrics is one solver's (or portfolio member's) counter block: the
// flattened core.Stats plus the bounds and sharing sub-blocks.
type SolverMetrics struct {
	// Name labels the solver (the lower-bound method, or the member name).
	Name string `json:"name"`
	// Status is the terminal verdict ("" while the solve is running).
	Status string `json:"status,omitempty"`
	// Best is the incumbent objective (nil when no solution is known).
	Best *int64 `json:"best,omitempty"`

	Decisions      int64 `json:"decisions"`
	Conflicts      int64 `json:"conflicts"`
	BoundConflicts int64 `json:"bound_conflicts"`
	BoundCalls     int64 `json:"bound_calls"`
	BoundPrunes    int64 `json:"bound_prunes"`
	Solutions      int64 `json:"solutions"`
	Restarts       int64 `json:"restarts"`
	KnapsackCuts   int64 `json:"knapsack_cuts"`
	CardCuts       int64 `json:"card_cuts"`
	NCBSavedLevels int64 `json:"ncb_saved_levels"`
	Propagations   int64 `json:"propagations"`
	LearnedClauses int64 `json:"learned_clauses"`
	PBLearned      int64 `json:"pb_learned"`

	BoundFailures  int64 `json:"bound_failures"`
	BoundPanics    int64 `json:"bound_panics"`
	BoundFallbacks int64 `json:"bound_fallbacks"`
	BoundDemotions int64 `json:"bound_demotions"`
	BoundTimeouts  int64 `json:"bound_timeouts"`

	ImportedClauses int64 `json:"imported_clauses"`
	RandomDecisions int64 `json:"random_decisions"`

	// Flips is the local-search move count; 0 for branch-and-bound members
	// (additive field, schema-compatible with repro.metrics/v1 consumers).
	Flips int64 `json:"flips,omitempty"`

	Bounds BoundsMetrics `json:"bounds"`
	// Sharing is nil when the solve ran without a board.
	Sharing *SharingMetrics `json:"sharing,omitempty"`
}

// BoundsMetrics is the bound-pipeline block (bounds.Stats).
type BoundsMetrics struct {
	Incremental   bool                   `json:"incremental"`
	Reduces       int64                  `json:"reduces"`
	ReduceMs      float64                `json:"reduce_ms"`
	WarmSolves    int64                  `json:"lp_warm_solves"`
	ColdSolves    int64                  `json:"lp_cold_solves"`
	WarmFallbacks int64                  `json:"lp_warm_fallbacks"`
	Cuts          *CutMetrics            `json:"cuts,omitempty"`
	Per           map[string]ProcMetrics `json:"per,omitempty"`
}

// CutMetrics is the LPR cut-pool block (cuts.Counters); nil when LPR ran
// without a pool (or never separated).
type CutMetrics struct {
	Separated  int64   `json:"separated"`
	Duplicates int64   `json:"duplicates"`
	Rounds     int64   `json:"rounds"`
	Applied    int64   `json:"applied"`
	Active     int64   `json:"active"`
	Pruned     int64   `json:"pruned"`
	SepMs      float64 `json:"sep_ms"`
}

// ProcMetrics is one estimator's aggregate (bounds.ProcStats).
type ProcMetrics struct {
	Calls      int64   `json:"calls"`
	TimeMs     float64 `json:"time_ms"`
	BoundSum   int64   `json:"bound_sum"`
	MaxBound   int64   `json:"max_bound"`
	Infinite   int64   `json:"infinite"`
	Incomplete int64   `json:"incomplete"`
	Failed     int64   `json:"failed"`
	Panics     int64   `json:"panics"`
	Prunes     int64   `json:"prunes"`
}

// SharingMetrics is one member's cooperative-event block (SharingStats).
type SharingMetrics struct {
	IncumbentsPublished int64 `json:"incumbents_published"`
	IncumbentsWon       int64 `json:"incumbents_won"`
	ForeignIncumbents   int64 `json:"foreign_incumbents"`
	ForeignRejected     int64 `json:"foreign_rejected,omitempty"`
	ForeignUBPrunes     int64 `json:"foreign_ub_prunes"`
	UBInterrupts        int64 `json:"ub_interrupts"`
	ClausesPublished    int64 `json:"clauses_published"`
	ClausesRejected     int64 `json:"clauses_rejected"`
	ClausesImported     int64 `json:"clauses_imported"`
	ImportedUnits       int64 `json:"imported_units"`
	ImportsDropped      int64 `json:"imports_dropped"`
	ImportsRejected     int64 `json:"imports_rejected"`
	ImportConflicts     int64 `json:"import_conflicts"`
}

// BoardMetrics is the sharing board's global block (share.Stats).
type BoardMetrics struct {
	Members int `json:"members"`
	// ClauseMembers counts the members participating in clause exchange;
	// UB-only members (local search) join with clauses opted out and are
	// excluded from ring cursor/lap accounting.
	ClauseMembers    int    `json:"clause_members,omitempty"`
	ClausesPublished int64  `json:"clauses_published"`
	ClausesTooLong   int64  `json:"clauses_too_long"`
	ClausesHighLBD   int64  `json:"clauses_high_lbd"`
	ClausesDuplicate int64  `json:"clauses_duplicate"`
	ClausesLapped    int64  `json:"clauses_lapped"`
	Incumbents       int64  `json:"incumbents"`
	HasIncumbent     bool   `json:"has_incumbent"`
	BestCost         int64  `json:"best_cost"`
	BestOwner        string `json:"best_owner,omitempty"`
}
