package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func sampleSolverMetrics(name string) SolverMetrics {
	best := int64(42)
	return SolverMetrics{
		Name:           name,
		Status:         "optimal",
		Best:           &best,
		Decisions:      100,
		Conflicts:      40,
		BoundConflicts: 12,
		BoundCalls:     50,
		BoundPrunes:    11,
		Solutions:      3,
		Restarts:       2,
		Propagations:   9000,
		LearnedClauses: 38,
		BoundTimeouts:  1,
		Bounds: BoundsMetrics{
			Incremental: true,
			Reduces:     50,
			ReduceMs:    1.25,
			WarmSolves:  30,
			ColdSolves:  20,
			Per: map[string]ProcMetrics{
				"lpr": {Calls: 45, TimeMs: 12.5, BoundSum: 900, MaxBound: 40, Prunes: 10},
				"mis": {Calls: 5, TimeMs: 0.5, BoundSum: 20, MaxBound: 8, Prunes: 1},
			},
		},
		Sharing: &SharingMetrics{
			IncumbentsPublished: 3,
			IncumbentsWon:       2,
			ClausesPublished:    17,
			ClausesImported:     9,
		},
	}
}

// TestSnapshotSchemaRoundTrip is the snapshot-schema round-trip test: a
// fully populated Snapshot must survive JSON encode/decode bit-identically
// (the schema uses only exactly-representable field types: int64 counters,
// float64 milliseconds, strings).
func TestSnapshotSchemaRoundTrip(t *testing.T) {
	board := BoardMetrics{
		Members:          4,
		ClausesPublished: 17,
		ClausesDuplicate: 2,
		Incumbents:       5,
		HasIncumbent:     true,
		BestCost:         42,
		BestOwner:        "lpr",
	}
	snap := Snapshot{
		Schema:      SchemaVersion,
		TakenUnixMs: 1754_000_000_000,
		UptimeMs:    1234.5,
		Meta:        map[string]string{"instance": "synth-30-1", "mode": "portfolio"},
		Solvers:     []SolverMetrics{sampleSolverMetrics("lpr"), sampleSolverMetrics("mis")},
		Board:       &board,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot did not round-trip:\n got %+v\nwant %+v", back, snap)
	}
	if back.Schema != SchemaVersion {
		t.Fatalf("schema=%q want %q", back.Schema, SchemaVersion)
	}
}

func TestLiveNilSafeAndTearFree(t *testing.T) {
	var l *Live
	l.Publish(sampleSolverMetrics("x")) // must not panic
	if _, ok := l.Load(); ok {
		t.Fatal("nil Live loaded a value")
	}

	live := &Live{}
	if _, ok := live.Load(); ok {
		t.Fatal("empty Live loaded a value")
	}
	// Concurrent publishers and readers: every load must observe a
	// consistent pair (Decisions == Conflicts by construction) — the
	// atomic-pointer publish makes torn reads impossible.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			live.Publish(SolverMetrics{Decisions: i, Conflicts: i})
		}
	}()
	for i := 0; i < 10000; i++ {
		if m, ok := live.Load(); ok && m.Decisions != m.Conflicts {
			close(stop)
			wg.Wait()
			t.Fatalf("torn read: decisions=%d conflicts=%d", m.Decisions, m.Conflicts)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrySnapshotAndEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.SetMeta("instance", "unit-test")
	liveA, liveB := &Live{}, &Live{}
	reg.RegisterSolver("lpr", liveA)
	reg.RegisterSolver("mis", liveB)
	reg.RegisterBoard(func() BoardMetrics { return BoardMetrics{Members: 2, Incumbents: 1} })
	liveA.Publish(sampleSolverMetrics("ignored")) // registry stamps the registered name

	snap := reg.Snapshot()
	if snap.Schema != SchemaVersion {
		t.Fatalf("schema=%q", snap.Schema)
	}
	if len(snap.Solvers) != 2 || snap.Solvers[0].Name != "lpr" || snap.Solvers[1].Name != "mis" {
		t.Fatalf("solver roster wrong: %+v", snap.Solvers)
	}
	if snap.Solvers[0].Decisions != 100 {
		t.Fatalf("published metrics lost: %+v", snap.Solvers[0])
	}
	if snap.Solvers[1].Decisions != 0 {
		t.Fatal("unpublished member should be zero-valued")
	}
	if snap.Board == nil || snap.Board.Members != 2 {
		t.Fatalf("board block wrong: %+v", snap.Board)
	}

	// HTTP endpoint: /metrics serves the same document; pprof index mounts.
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var got Snapshot
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("endpoint served invalid JSON: %v\n%s", err, body)
	}
	if got.Schema != SchemaVersion || len(got.Solvers) != 2 {
		t.Fatalf("endpoint snapshot wrong: %+v", got)
	}
	if got.Meta["instance"] != "unit-test" {
		t.Fatalf("meta lost: %+v", got.Meta)
	}
	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	ppBody, _ := io.ReadAll(pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK || !strings.Contains(string(ppBody), "goroutine") {
		t.Fatalf("pprof index not served: status=%d", pp.StatusCode)
	}
}

func TestServeDefaultsToLoopback(t *testing.T) {
	addr, shutdown, err := Serve(":0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("host-less addr must bind loopback, got %s", addr)
	}
}
