package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerNilIsDisabledAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// All methods must be nil-safe no-ops.
	tr.Emit(EvBound, "lpr", 1, 2, "ok")
	if tr.Named("x") != nil {
		t.Fatal("nil.Named must stay nil")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer leaked state")
	}
	// Zero allocations on the disabled hot path.
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvBound, "lpr", 42, 57, "ok")
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates: %v allocs/op", allocs)
	}
}

func TestTracerEnabledEmitIsAllocationFree(t *testing.T) {
	tr := NewTracer(1 << 12)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvBound, "lpr", 42, 57, "ok")
	})
	if allocs != 0 {
		t.Fatalf("enabled Emit allocates: %v allocs/op (ring must be preallocated)", allocs)
	}
}

func TestTracerRingOrderAndOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		tr.Emit(EvRestart, "", i, 0, "")
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len=%d want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped=%d want 6", got)
	}
	evs := tr.Snapshot()
	for i, ev := range evs {
		wantA := int64(6 + i) // oldest retained is #6
		if ev.A != wantA || ev.Seq != uint64(wantA) {
			t.Fatalf("event %d: A=%d seq=%d want %d (oldest-first order)", i, ev.A, ev.Seq, wantA)
		}
	}
}

func TestTracerNamedSharesRing(t *testing.T) {
	tr := NewTracer(16)
	a, b := tr.Named("lpr"), tr.Named("mis")
	a.Emit(EvIncumbent, "", 10, 0, "local")
	b.Emit(EvIncumbent, "", 9, 0, "local")
	evs := tr.Snapshot()
	if len(evs) != 2 || evs[0].Member != "lpr" || evs[1].Member != "mis" {
		t.Fatalf("named handles did not share the ring: %+v", evs)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("sequence not global across handles: %+v", evs)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.Named("w")
			for i := 0; i < 500; i++ {
				h.Emit(EvBound, "lpr", int64(i), 0, "ok")
			}
		}(w)
	}
	wg.Wait()
	if got := int(tr.Dropped()) + tr.Len(); got != 2000 {
		t.Fatalf("retained+dropped=%d want 2000", got)
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvSolveStart, "lpr", 12, 0, "")
	tr.Emit(EvBound, "lpr", 5, 9, "incomplete")
	tr.Emit(EvSolveEnd, "", 7, 0, "optimal")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("line %d: seq=%d", i, ev.Seq)
		}
	}
	var mid Event
	if err := json.Unmarshal([]byte(lines[1]), &mid); err != nil {
		t.Fatal(err)
	}
	if mid.Kind != EvBound || mid.Method != "lpr" || mid.A != 5 || mid.B != 9 || mid.Note != "incomplete" {
		t.Fatalf("round-trip mangled event: %+v", mid)
	}
}

func TestEventKindJSONNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("kind %s: %v", k, err)
		}
		if back != k {
			t.Fatalf("kind %s round-tripped to %s", k, back)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bad); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

func TestTracerPretty(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvBound, "lgr", 3, 8, "ok")
	tr.Emit(EvDemotion, "lpr", 0, 0, "mis")
	var buf bytes.Buffer
	if err := tr.WritePretty(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bound", "method=lgr", "demotion", "demoted=lpr to=mis"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pretty output missing %q:\n%s", want, out)
		}
	}
}
