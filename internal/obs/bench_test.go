package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func sampleBench() *BenchSnapshot {
	s := NewBenchSnapshot([]string{"synth"}, 5000)
	s.Meta = map[string]string{"n": "3"}
	s.Rows = []BenchRow{
		{Instance: "synth-30-1", Family: "synth", Solver: "lpr", Solved: true, Best: i64(17),
			WallMs: 120, Conflicts: 400, Decisions: 900, BoundCalls: 300, BoundMs: 80, LPWarm: 250, LPCold: 50},
		{Instance: "synth-30-1", Family: "synth", Solver: "plain", Solved: false, Best: i64(21),
			WallMs: 5000, Conflicts: 90000, Decisions: 200000},
		{Instance: "synth-30-1", Family: "synth", Solver: "portfolio", Solved: true, Best: i64(17),
			WallMs: 90, Members: 4, ShPub: 40, ShImp: 25, ShPrunes: 7},
	}
	return s
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	s := sampleBench()
	path := filepath.Join(t.TempDir(), s.DefaultName())
	if !strings.HasPrefix(filepath.Base(path), "BENCH_synth_") || !strings.HasSuffix(path, ".json") {
		t.Fatalf("default name %q", s.DefaultName())
	}
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("bench snapshot did not round-trip:\n got %+v\nwant %+v", back, s)
	}
}

func TestLoadBenchSnapshotRejectsWrongSchema(t *testing.T) {
	s := sampleBench()
	s.Schema = "repro.bench/v0"
	path := filepath.Join(t.TempDir(), "old.json")
	data, _ := json.Marshal(s)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchSnapshot(path); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	if _, err := LoadBenchSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	old := sampleBench()
	cur := sampleBench()
	// Regression 1: lpr loses its solve.
	cur.Rows[0].Solved = false
	cur.Rows[0].Best = nil
	// Regression 2: plain's incumbent gets worse.
	cur.Rows[1].Best = i64(25)
	// Regression 3: portfolio slows down 10x beyond tolerance+floor.
	cur.Rows[2].WallMs = 900

	d := CompareBench(old, cur, 1.5)
	if !d.HasRegressions() || len(d.Regressions) != 3 {
		t.Fatalf("want 3 regressions, got %d:\n%s", len(d.Regressions), d.String())
	}
	rep := d.String()
	for _, want := range []string{"no longer solved", "ub 21 -> 25", "90ms -> 900ms"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCompareBenchToleratesNoiseAndReportsImprovements(t *testing.T) {
	old := sampleBench()
	cur := sampleBench()
	cur.Rows[0].WallMs = 160      // 1.33x with a 50ms floor: inside tolerance
	cur.Rows[1].Solved = true     // plain now solves
	cur.Rows[1].WallMs = 900      //
	cur.Rows = cur.Rows[:2]       // portfolio cell disappears -> note
	d := CompareBench(old, cur, 1.5)
	if d.HasRegressions() {
		t.Fatalf("unexpected regressions:\n%s", d.String())
	}
	if len(d.Improvements) != 1 || !strings.Contains(d.Improvements[0], "now solved") {
		t.Fatalf("improvement not reported: %+v", d.Improvements)
	}
	if len(d.Notes) != 1 || !strings.Contains(d.Notes[0], "missing") {
		t.Fatalf("missing-cell note not reported: %+v", d.Notes)
	}
}

func TestCompareBenchIdenticalIsClean(t *testing.T) {
	s := sampleBench()
	d := CompareBench(s, s, 0) // tol<=1 selects the default
	if d.HasRegressions() || len(d.Improvements) != 0 || len(d.Notes) != 0 {
		t.Fatalf("self-compare not clean:\n%s", d.String())
	}
	if !strings.Contains(d.String(), "no changes") {
		t.Fatalf("clean report should say so: %q", d.String())
	}
}
