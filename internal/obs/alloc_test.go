// Allocation-regression tests for the data-oriented engine core. The
// struct-of-arrays refactor's contract is that steady-state search does not
// allocate: one propagation wave (decide, CSR counter propagation, batched
// delta flush, backtrack, flush again) and an incremental Reducer.Reduce
// both run entirely out of reusable buffers once warm. These tests pin that
// contract with testing.AllocsPerRun so a stray closure, interface boxing,
// or buffer regrowth on the hot path fails CI rather than silently taxing
// every search node. The escape-check Makefile target is the compile-time
// twin of this runtime guarantee.
//
// They live in obs (as package obs_test) with the rest of the perf-
// observability surface: bench snapshots watch wall-clock trajectories,
// these watch the allocation trajectory.
package obs_test

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/pb"
)

// waveProblem builds a small implication chain overlaid with clauses and
// cardinality windows, so one decision cascades through every variable and
// touches several occurrence rows per assignment (the same shape as the
// engine's PropagateWave benchmarks, scaled down for test time).
func waveProblem(n int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n-1; v++ {
		_ = p.AddConstraint([]pb.Term{
			{Coef: 2, Lit: pb.NegLit(pb.Var(v))},
			{Coef: 3, Lit: pb.PosLit(pb.Var(v + 1))},
		}, pb.GE, 3)
	}
	for v := 0; v+5 < n; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.NegLit(pb.Var(v+2)), pb.PosLit(pb.Var(v+5)))
	}
	for v := 0; v+8 <= n; v += 2 {
		terms := make([]pb.Term, 8)
		for k := range terms {
			terms[k] = pb.Term{Coef: 1, Lit: pb.PosLit(pb.Var(v + k))}
		}
		_ = p.AddConstraint(terms, pb.GE, 1)
	}
	return p
}

// countWatcher is the cheapest possible ConsWatcher: the test measures the
// engine's side of the batched-delta contract, not a consumer's.
type countWatcher struct{ sat, unsat int }

func (w *countWatcher) ConsWave(satisfied, unsatisfied []int32) {
	w.sat += len(satisfied)
	w.unsat += len(unsatisfied)
}
func (w *countWatcher) ConsAdded(idx int, satisfied bool) {}

// TestPropagationWaveAllocFree pins 0 allocs/op on the full wave path with a
// watcher attached: Decide → Propagate → FlushConsDeltas → BacktrackTo →
// FlushConsDeltas. The trail, dirty list, scratch buffers and VSIDS heap all
// reach steady-state capacity during warm-up; after that, a search node must
// not touch the allocator.
func TestPropagationWaveAllocFree(t *testing.T) {
	const n = 200
	e := engine.New(waveProblem(n))
	w := &countWatcher{}
	e.SetConsWatcher(w)

	wave := func() {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			t.Fatal("unexpected conflict in wave workload")
		}
		e.FlushConsDeltas()
		e.BacktrackTo(0)
		e.FlushConsDeltas()
	}
	for i := 0; i < 3; i++ { // grow every reusable buffer to capacity
		wave()
	}
	if allocs := testing.AllocsPerRun(50, wave); allocs != 0 {
		t.Fatalf("propagation wave allocated %.1f times per op; want 0 (hot-path regression)", allocs)
	}
	if w.sat == 0 || w.unsat == 0 {
		t.Fatalf("watcher saw no transitions (sat=%d unsat=%d); wave workload is not exercising the delta path", w.sat, w.unsat)
	}
}

// TestReducerReduceAllocFree pins 0 allocs/op on the incremental reduced-
// problem build: once the Reducer's term arena and row spans have grown to
// the problem's size, Reduce at alternating trail states (root and one
// propagated decision deep) must be allocation-free — that is the payoff of
// maintaining the active set from batched trail deltas instead of
// re-extracting per node.
func TestReducerReduceAllocFree(t *testing.T) {
	const n = 200
	e := engine.New(waveProblem(n))
	r := bounds.NewReducer(e)

	cycle := func() {
		if red := r.Reduce(); red == nil {
			t.Fatal("nil reduction at root")
		}
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			t.Fatal("unexpected conflict in wave workload")
		}
		if red := r.Reduce(); red == nil {
			t.Fatal("nil reduction after propagation")
		}
		e.BacktrackTo(0)
	}
	for i := 0; i < 3; i++ { // grow arena, row spans, active set, scratch
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("Reducer.Reduce allocated %.1f times per op; want 0 (arena regression)", allocs)
	}
}
