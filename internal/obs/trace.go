package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies one search lifecycle event. The taxonomy follows the
// paper's quantitative story (which bounding method prunes, where time goes)
// plus the cooperative-portfolio and resilience machinery added by PRs 1–4.
type EventKind uint8

const (
	// EvSolveStart marks the beginning of one member's search.
	// Method = lower-bound method; A = number of variables.
	EvSolveStart EventKind = iota
	// EvSolveEnd marks the member's terminal verdict.
	// A = best objective (when any); Note = status string.
	EvSolveEnd
	// EvRestart is a Luby restart. A = restart ordinal.
	EvRestart
	// EvReduceDB is a learned-database garbage collection.
	// A = learned-clause count at collection time.
	EvReduceDB
	// EvBound is one lower-bound estimation. Method = estimator that
	// produced the returned bound; A = bound; B = target (upper − path);
	// Note = outcome: "ok", "incomplete", "infeasible", "failed" or
	// "fallback" (the MIS rung rescued a failed/empty primary call).
	EvBound
	// EvPrune is a node pruned by path + lower ≥ upper.
	// Method = estimator credited ("path" for pure path-cost prunes);
	// A = path cost; B = lower bound used.
	EvPrune
	// EvBoundConflict is the §4 bound-conflict analysis following a prune.
	// A = decision level at the conflict; B = backjump target level.
	EvBoundConflict
	// EvIncumbent is an upper-bound improvement. A = objective value
	// (including CostOffset); Note = "local" or "foreign" (adopted from the
	// sharing board).
	EvIncumbent
	// EvSharePublish is an offer to the sharing board. Method = "incumbent"
	// (A = cost, Note = "won"/"lost") or "clause" (A = length, B = LBD,
	// Note = "accepted"/"rejected").
	EvSharePublish
	// EvShareImport summarizes one root-level drain of the exchange ring.
	// A = clauses installed; B = root conflicts among them.
	EvShareImport
	// EvFallback is a per-node fallback-ladder rescue: the primary
	// estimator failed and the cheaper rung produced the bound.
	// Method = rescuing estimator; A = its bound.
	EvFallback
	// EvDemotion is a fallback-ladder circuit-breaker trip: the primary
	// method is demoted for the rest of the run. Method = demoted method;
	// Note = replacement method.
	EvDemotion
	// EvCut is one cutting plane accepted into the LPR cut pool.
	// Method = separator family ("cover" or "clique" when known, else
	// "cut"); A = term count; B = degree.
	EvCut

	numEventKinds = iota
)

var eventKindNames = [numEventKinds]string{
	"solve_start", "solve_end", "restart", "reduce_db", "bound", "prune",
	"bound_conflict", "incumbent", "share_publish", "share_import",
	"fallback", "demotion", "cut",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the string names produced by MarshalJSON.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range eventKindNames {
		if n == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one fixed-size trace record. The meaning of Method/A/B/Note is
// per-kind (see the EventKind constants). Producers pass only static or
// already-materialized strings, so emitting an event never allocates.
type Event struct {
	// Seq is the global emission ordinal (monotonic across members sharing
	// one tracer); a gap-free prefix may be lost to ring overwrite.
	Seq uint64 `json:"seq"`
	// AtNs is nanoseconds since the tracer was created.
	AtNs int64 `json:"at_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Member names the emitting portfolio member ("" for a single solve).
	Member string `json:"member,omitempty"`
	// Method is the per-kind detail string (estimator name, publish kind).
	Method string `json:"method,omitempty"`
	// A and B are the per-kind numeric payloads.
	A int64 `json:"a"`
	B int64 `json:"b"`
	// Note is the per-kind outcome string.
	Note string `json:"note,omitempty"`
}

// tracerRing is the shared state behind one tracer and all its Named
// handles: a preallocated ring of events under a short mutex.
type tracerRing struct {
	mu      sync.Mutex
	buf     []Event
	seq     uint64 // next sequence number == total events emitted
	dropped uint64 // events overwritten before being read
	start   time.Time
}

// Tracer records structured search events into a bounded ring. The zero
// *Tracer (nil) is the disabled tracer: every method is a nil-check no-op,
// so hot paths carry tracer calls unconditionally. One tracer may be shared
// by every member of a portfolio (emission is mutex-serialized); use Named
// to label each member's events.
type Tracer struct {
	r      *tracerRing
	member string
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity: enough for minutes of portfolio search at typical
// event rates while bounding memory at ~64 B/event.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns an enabled tracer with the given ring capacity
// (capacity <= 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{r: &tracerRing{
		buf:   make([]Event, 0, capacity),
		start: time.Now(),
	}}
}

// Named returns a handle that shares this tracer's ring but stamps every
// event with the given member label. Nil-safe: a nil receiver returns nil,
// so wiring `tracer.Named(cfg.Name)` through a disabled run stays free.
func (t *Tracer) Named(member string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{r: t.r, member: member}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Nil-safe and allocation-free: the event value is
// written into a preallocated ring slot under a short mutex. Callers must
// pass only static or pre-materialized strings (no fmt.Sprintf on hot
// paths).
func (t *Tracer) Emit(kind EventKind, method string, a, b int64, note string) {
	if t == nil {
		return
	}
	r := t.r
	now := time.Now() // outside the lock
	r.mu.Lock()
	ev := Event{
		Seq:    r.seq,
		AtNs:   now.Sub(r.start).Nanoseconds(),
		Kind:   kind,
		Member: t.member,
		Method: method,
		A:      a,
		B:      b,
		Note:   note,
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.seq%uint64(cap(r.buf))] = ev
		r.dropped++
	}
	r.seq++
	r.mu.Unlock()
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	return len(t.r.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	return t.r.dropped
}

// Snapshot returns the retained events in emission order (oldest first).
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	r := t.r
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) || cap(r.buf) == 0 {
		copy(out, r.buf)
		return out
	}
	// Full ring: the oldest event sits at seq % cap.
	head := int(r.seq % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// WriteJSONL writes the retained events to w, one JSON object per line —
// the machine-readable trace sink (`bsolo -trace file.jsonl`).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Snapshot() {
		if err := enc.Encode(&ev); err != nil {
			return err
		}
	}
	return nil
}

// WritePretty renders the retained events human-readably, one line per
// event — the `-trace-pretty` view.
func (t *Tracer) WritePretty(w io.Writer) error {
	for _, ev := range t.Snapshot() {
		if _, err := fmt.Fprintln(w, ev.Pretty()); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "… %d earlier events lost to ring overwrite\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Pretty renders one event as a human-readable line.
func (e *Event) Pretty() string {
	at := time.Duration(e.AtNs).Round(time.Microsecond)
	who := e.Member
	if who == "" {
		who = "solver"
	}
	var detail string
	switch e.Kind {
	case EvSolveStart:
		detail = fmt.Sprintf("method=%s vars=%d", e.Method, e.A)
	case EvSolveEnd:
		detail = fmt.Sprintf("status=%s best=%d", e.Note, e.A)
	case EvRestart:
		detail = fmt.Sprintf("restart #%d", e.A)
	case EvReduceDB:
		detail = fmt.Sprintf("learned=%d", e.A)
	case EvBound:
		detail = fmt.Sprintf("method=%s bound=%d target=%d (%s)", e.Method, e.A, e.B, e.Note)
	case EvPrune:
		detail = fmt.Sprintf("method=%s path=%d lower=%d", e.Method, e.A, e.B)
	case EvBoundConflict:
		detail = fmt.Sprintf("level=%d backjump=%d", e.A, e.B)
	case EvIncumbent:
		detail = fmt.Sprintf("best=%d (%s)", e.A, e.Note)
	case EvSharePublish:
		if e.Method == "clause" {
			detail = fmt.Sprintf("clause len=%d lbd=%d (%s)", e.A, e.B, e.Note)
		} else {
			detail = fmt.Sprintf("incumbent cost=%d (%s)", e.A, e.Note)
		}
	case EvShareImport:
		detail = fmt.Sprintf("imported=%d conflicts=%d", e.A, e.B)
	case EvFallback:
		detail = fmt.Sprintf("rescued-by=%s bound=%d", e.Method, e.A)
	case EvDemotion:
		detail = fmt.Sprintf("demoted=%s to=%s", e.Method, e.Note)
	case EvCut:
		detail = fmt.Sprintf("terms=%d degree=%d", e.A, e.B)
	default:
		detail = fmt.Sprintf("method=%s a=%d b=%d note=%s", e.Method, e.A, e.B, e.Note)
	}
	return fmt.Sprintf("%10s #%-6d %-9s %-14s %s", "+"+at.String(), e.Seq, who, e.Kind, detail)
}
