// Package obs is the observability layer of the reproduction: a structured,
// ring-buffered search-event tracer, a unified metrics snapshot schema that
// merges the solver's scattered counter blocks (core.Stats, bounds.Stats,
// SharingStats, the board's global counters) into one versioned JSON
// document, and a live introspection registry that serves that document —
// plus net/http/pprof — over an opt-in loopback HTTP endpoint while a solve
// is still running.
//
// Design constraints (DESIGN.md §11):
//
//   - Zero cost when disabled. Every producer-side handle (*Tracer, *Live)
//     is nil-safe: a disabled run carries nil pointers and the hot path pays
//     exactly one nil check — no allocation, no atomic, no lock.
//   - Lock-cheap when enabled. The tracer appends fixed-size Event values
//     into a preallocated ring under a short mutex; no per-event allocation.
//     Live metrics are published as immutable snapshot values behind an
//     atomic pointer, so concurrent scrapers can never observe a torn or
//     half-updated counter block.
//   - One-way imports. obs depends only on the standard library; the solver
//     packages (core, portfolio, harness) import obs and convert their
//     native stats into the schema structs defined here.
package obs
