package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// BenchSchemaVersion identifies the BENCH_*.json snapshot layout.
const BenchSchemaVersion = "repro.bench/v1"

// BenchRow is one (instance, solver) cell of a benchmark run: the Table 1
// verdict plus the effort, bound-pipeline and sharing counters the CSV
// output carries, in machine-comparable form.
type BenchRow struct {
	Instance string `json:"instance"`
	Family   string `json:"family"`
	Solver   string `json:"solver"`
	Solved   bool   `json:"solved"`
	// Best is the incumbent objective (nil when no solution was found).
	Best   *int64  `json:"best,omitempty"`
	WallMs float64 `json:"wall_ms"`
	// Err is non-empty when the solver crashed (the cell never counts as
	// solved).
	Err string `json:"err,omitempty"`

	Conflicts  int64   `json:"conflicts"`
	Decisions  int64   `json:"decisions"`
	BoundCalls int64   `json:"bound_calls"`
	BoundMs    float64 `json:"bound_ms"`
	LPWarm     int64   `json:"lp_warm"`
	LPCold     int64   `json:"lp_cold"`

	// FixedVars counts presolve-eliminated variables; PropsPerSec is the
	// engine propagation rate. Both omitempty so snapshots taken before
	// these columns existed still load and compare.
	FixedVars   int     `json:"fixed_vars,omitempty"`
	PropsPerSec float64 `json:"props_per_sec,omitempty"`

	// Cut-pool counters (LPR with cuts only; omitempty for pre-cuts
	// snapshots): cuts separated into the pool, live at end of run, and
	// evicted by activity aging.
	CutsSep    int64 `json:"cuts_sep,omitempty"`
	CutsActive int64 `json:"cuts_active,omitempty"`
	CutsPruned int64 `json:"cuts_pruned,omitempty"`

	Members  int   `json:"members,omitempty"`
	ShPub    int64 `json:"sh_pub,omitempty"`
	ShImp    int64 `json:"sh_imp,omitempty"`
	ShPrunes int64 `json:"sh_prunes,omitempty"`

	// Incumbent-latency columns (additive; omitted for rows that never
	// reported an incumbent or never flipped, which keeps historic
	// snapshots byte-comparable). TtfiMs is wall-clock milliseconds from
	// run start to the first incumbent any member reported; Flips counts
	// local-search flips (ls / portfolio-ls rows only).
	TtfiMs float64 `json:"ttfi_ms,omitempty"`
	Flips  int64   `json:"flips,omitempty"`
}

// BenchSnapshot is one pbbench run's machine-readable record — the unit of
// the repo's perf trajectory (BENCH_<family>_<date>.json files).
type BenchSnapshot struct {
	Schema        string `json:"schema"`
	CreatedUnixMs int64  `json:"created_unix_ms"`
	// Date is the YYYY-MM-DD the run was taken (used in the default file
	// name).
	Date string `json:"date"`
	// Families lists the families included, in run order.
	Families []string `json:"families"`
	// LimitMs is the per-run wall-clock budget.
	LimitMs float64 `json:"limit_ms"`
	// Meta carries free-form run labels (scale knobs, flags, host notes).
	Meta map[string]string `json:"meta,omitempty"`
	Rows []BenchRow        `json:"rows"`
}

// NewBenchSnapshot stamps an empty snapshot with the schema version and the
// current date.
func NewBenchSnapshot(families []string, limitMs float64) *BenchSnapshot {
	now := time.Now()
	return &BenchSnapshot{
		Schema:        BenchSchemaVersion,
		CreatedUnixMs: now.UnixMilli(),
		Date:          now.Format("2006-01-02"),
		Families:      families,
		LimitMs:       limitMs,
	}
}

// DefaultName returns the trajectory file name BENCH_<family>_<date>.json
// ("all" when the snapshot spans several families).
func (s *BenchSnapshot) DefaultName() string {
	fam := "all"
	if len(s.Families) == 1 {
		fam = s.Families[0]
	}
	return fmt.Sprintf("BENCH_%s_%s.json", fam, s.Date)
}

// WriteFile writes the snapshot as indented JSON.
func (s *BenchSnapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding bench snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing bench snapshot: %w", err)
	}
	return nil
}

// LoadBenchSnapshot reads and validates a BENCH_*.json file.
func LoadBenchSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading bench snapshot: %w", err)
	}
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: parsing bench snapshot %s: %w", path, err)
	}
	if s.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("obs: bench snapshot %s: schema %q, want %q", path, s.Schema, BenchSchemaVersion)
	}
	return &s, nil
}

// BenchDiff is the outcome of comparing two snapshots of the same bench.
type BenchDiff struct {
	// Regressions lists cells that got worse: lost solves, slower beyond
	// tolerance, or weaker incumbents on unsolved cells.
	Regressions []string
	// Improvements lists cells that got better (informational).
	Improvements []string
	// Notes lists cells present in only one snapshot (informational).
	Notes []string
}

// HasRegressions reports whether any cell regressed.
func (d *BenchDiff) HasRegressions() bool { return len(d.Regressions) > 0 }

// String renders the diff report.
func (d *BenchDiff) String() string {
	var sb strings.Builder
	for _, l := range d.Regressions {
		fmt.Fprintf(&sb, "REGRESSION  %s\n", l)
	}
	for _, l := range d.Improvements {
		fmt.Fprintf(&sb, "improved    %s\n", l)
	}
	for _, l := range d.Notes {
		fmt.Fprintf(&sb, "note        %s\n", l)
	}
	if sb.Len() == 0 {
		return "no changes beyond tolerance\n"
	}
	return sb.String()
}

// benchCompareFloorMs absorbs scheduler noise on fast cells: a slowdown is
// only a regression when the new time also exceeds the old by this floor.
const benchCompareFloorMs = 50

// CompareBench diffs cur against old, keyed by (instance, solver). tol is
// the multiplicative slowdown tolerance (e.g. 1.5 = a solved cell may take
// up to 1.5x the old time before it flags); tol <= 1 selects 1.5.
//
// Regression rules, per shared cell:
//   - old solved, new unsolved (or crashed)  → regression
//   - both solved, newMs > oldMs*tol + floor → regression
//   - both unsolved, new incumbent worse (or lost) → regression
//
// The reverse transitions are reported as improvements; cells present in
// only one snapshot are notes. Comparing different benches (no shared
// cells) yields only notes.
func CompareBench(old, cur *BenchSnapshot, tol float64) BenchDiff {
	if tol <= 1 {
		tol = 1.5
	}
	key := func(r *BenchRow) string { return r.Instance + "\x00" + r.Solver }
	oldRows := make(map[string]*BenchRow, len(old.Rows))
	for i := range old.Rows {
		oldRows[key(&old.Rows[i])] = &old.Rows[i]
	}
	var d BenchDiff
	seen := make(map[string]bool, len(cur.Rows))
	for i := range cur.Rows {
		n := &cur.Rows[i]
		k := key(n)
		seen[k] = true
		o, ok := oldRows[k]
		if !ok {
			d.Notes = append(d.Notes, fmt.Sprintf("%s/%s: new cell", n.Instance, n.Solver))
			continue
		}
		cell := fmt.Sprintf("%s/%s", n.Instance, n.Solver)
		switch {
		case o.Solved && !n.Solved:
			why := "no longer solved"
			if n.Err != "" {
				why = "crashed: " + n.Err
			}
			d.Regressions = append(d.Regressions, fmt.Sprintf("%s: %s (was %.0fms)", cell, why, o.WallMs))
		case !o.Solved && n.Solved:
			d.Improvements = append(d.Improvements, fmt.Sprintf("%s: now solved in %.0fms", cell, n.WallMs))
		case o.Solved && n.Solved:
			if n.WallMs > o.WallMs*tol+benchCompareFloorMs {
				d.Regressions = append(d.Regressions,
					fmt.Sprintf("%s: %.0fms -> %.0fms (%.2fx, tol %.2fx)", cell, o.WallMs, n.WallMs, n.WallMs/o.WallMs, tol))
			} else if o.WallMs > n.WallMs*tol+benchCompareFloorMs {
				d.Improvements = append(d.Improvements,
					fmt.Sprintf("%s: %.0fms -> %.0fms", cell, o.WallMs, n.WallMs))
			}
		default: // neither solved: compare incumbents (minimization)
			switch {
			case o.Best != nil && n.Best == nil:
				d.Regressions = append(d.Regressions,
					fmt.Sprintf("%s: lost incumbent (was ub %d)", cell, *o.Best))
			case o.Best != nil && n.Best != nil && *n.Best > *o.Best:
				d.Regressions = append(d.Regressions,
					fmt.Sprintf("%s: ub %d -> %d (worse)", cell, *o.Best, *n.Best))
			case o.Best == nil && n.Best != nil:
				d.Improvements = append(d.Improvements,
					fmt.Sprintf("%s: new incumbent ub %d", cell, *n.Best))
			case o.Best != nil && n.Best != nil && *n.Best < *o.Best:
				d.Improvements = append(d.Improvements,
					fmt.Sprintf("%s: ub %d -> %d", cell, *o.Best, *n.Best))
			}
		}
	}
	var gone []string
	for k, o := range oldRows {
		if !seen[k] {
			gone = append(gone, fmt.Sprintf("%s/%s: cell missing from new run", o.Instance, o.Solver))
			_ = k
		}
	}
	sort.Strings(gone)
	d.Notes = append(d.Notes, gone...)
	return d
}
