// Overflow-checked int64 arithmetic for the normalization layer.
//
// Fuzzer-sized coefficients (up to ±2^63−1 straight from an OPB file) can
// wrap the accumulations inside Normalize, AddConstraint's ≤→≥ negation and
// the objective fold — silently turning an UNSAT row into a trivially
// satisfied one, or corrupting the optimum. Every accumulation that touches
// externally supplied coefficients therefore goes through the helpers below:
// on overflow the operation *saturates* (so downstream comparisons stay
// ordered and nothing wraps to a small value) and the enclosing constructor
// reports ErrOverflow, which internal/opb surfaces from Parse.
package pb

import (
	"errors"
	"math"
)

// ErrOverflow reports that coefficient or objective arithmetic would exceed
// the int64 range. It is wrapped by the errors returned from AddConstraint,
// Validate and opb.Parse; test with errors.Is(err, pb.ErrOverflow).
var ErrOverflow = errors.New("pb: int64 overflow in coefficient arithmetic")

// MaxObjective is the largest worst-case objective value (Σ Cost, excluding
// CostOffset) the solver stack can represent soundly. The search engine
// encodes "no incumbent yet" as MaxInt64/2 and the bound estimators encode
// "subproblem infeasible" as MaxInt64/4; an instance whose achievable
// objective can reach those sentinels makes real values indistinguishable
// from the sentinels, and the engine — discovered by the differential fuzzer
// — prunes every feasible solution and reports a confident, wrong UNSAT.
// Validate therefore rejects ΣCost > MaxObjective (and |CostOffset| >
// MaxObjective) with ErrOverflow, and core.Solve refuses such instances
// outright rather than mis-solving them. One further power of two of
// headroom is kept below the MaxInt64/4 sentinel so that sums of a bound
// with a path cost, and the knapsack-cut degree TotalCost − upper + 1, stay
// exact without saturating.
const MaxObjective = math.MaxInt64 / 8

// addOK returns a+b and whether the addition stayed in range.
func addOK(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return s, false
	}
	return s, true
}

// subOK returns a−b and whether the subtraction stayed in range.
func subOK(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return d, false
	}
	return d, true
}

// negOK returns −a and whether the negation stayed in range (−MinInt64
// does not exist).
func negOK(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return math.MaxInt64, false
	}
	return -a, true
}

// CheckedAdd returns a+b, or ErrOverflow when the sum leaves the int64
// range. Exported for input layers (internal/opb) that fold externally
// supplied objective coefficients.
func CheckedAdd(a, b int64) (int64, error) {
	s, ok := addOK(a, b)
	if !ok {
		return s, ErrOverflow
	}
	return s, nil
}

// CheckedSub returns a−b, or ErrOverflow.
func CheckedSub(a, b int64) (int64, error) {
	d, ok := subOK(a, b)
	if !ok {
		return d, ErrOverflow
	}
	return d, nil
}

// CheckedNeg returns −a, or ErrOverflow (−MinInt64 does not exist).
func CheckedNeg(a int64) (int64, error) {
	n, ok := negOK(a)
	if !ok {
		return n, ErrOverflow
	}
	return n, nil
}

// satAdd returns a+b clamped to [MinInt64, MaxInt64]: overflow saturates
// instead of wrapping, keeping comparisons against bounds and degrees sane
// even on inputs that slipped past the constructors (defensive runtime
// paths like ObjectiveValue and TotalCost).
func satAdd(a, b int64) int64 {
	s, ok := addOK(a, b)
	if ok {
		return s
	}
	if b > 0 {
		return math.MaxInt64
	}
	return math.MinInt64
}
