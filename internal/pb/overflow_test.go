package pb

import (
	"errors"
	"math"
	"testing"
)

func TestCheckedHelpers(t *testing.T) {
	if v, ok := addOK(math.MaxInt64, 1); ok {
		t.Fatalf("addOK(MaxInt64,1) = %d, want overflow", v)
	}
	if v, ok := addOK(math.MinInt64, -1); ok {
		t.Fatalf("addOK(MinInt64,-1) = %d, want overflow", v)
	}
	if v, ok := addOK(3, 4); !ok || v != 7 {
		t.Fatalf("addOK(3,4) = %d,%v", v, ok)
	}
	if v, ok := subOK(math.MinInt64, 1); ok {
		t.Fatalf("subOK(MinInt64,1) = %d, want overflow", v)
	}
	if v, ok := subOK(0, math.MinInt64); ok {
		t.Fatalf("subOK(0,MinInt64) = %d, want overflow", v)
	}
	if _, ok := negOK(math.MinInt64); ok {
		t.Fatal("negOK(MinInt64) should overflow")
	}
	if satAdd(math.MaxInt64, math.MaxInt64) != math.MaxInt64 {
		t.Fatal("satAdd should clamp high")
	}
	if satAdd(math.MinInt64, math.MinInt64) != math.MinInt64 {
		t.Fatal("satAdd should clamp low")
	}
	if _, err := CheckedAdd(math.MaxInt64, math.MaxInt64); !errors.Is(err, ErrOverflow) {
		t.Fatal("CheckedAdd should report ErrOverflow")
	}
	if _, err := CheckedSub(math.MinInt64, 1); !errors.Is(err, ErrOverflow) {
		t.Fatal("CheckedSub should report ErrOverflow")
	}
	if _, err := CheckedNeg(math.MinInt64); !errors.Is(err, ErrOverflow) {
		t.Fatal("CheckedNeg should report ErrOverflow")
	}
}

// Duplicate-literal merging used to wrap: +MaxInt64 x1 +MaxInt64 x1 >= 1
// silently became a small (or negative) coefficient. NormalizeChecked must
// reject it with ErrOverflow.
func TestNormalizeCheckedOverflow(t *testing.T) {
	huge := int64(math.MaxInt64)
	cases := []struct {
		name  string
		terms []Term
		rhs   int64
	}{
		{"dup positive", []Term{{huge, PosLit(0)}, {huge, PosLit(0)}}, 1},
		{"neg flip rhs", []Term{{huge, NegLit(0)}, {huge, NegLit(1)}}, math.MinInt64 + 2},
		{"coef sum", []Term{{huge, PosLit(0)}, {huge, PosLit(1)}}, huge},
	}
	for _, c := range cases {
		if _, err := NormalizeChecked(c.terms, c.rhs); !errors.Is(err, ErrOverflow) {
			t.Errorf("%s: got err=%v, want ErrOverflow", c.name, err)
		}
	}
	// Sanity: moderate inputs still normalize identically to Normalize.
	got, err := NormalizeChecked([]Term{{2, PosLit(0)}, {-3, PosLit(1)}}, 1)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	want := Normalize([]Term{{2, PosLit(0)}, {-3, PosLit(1)}}, 1)
	if got.String() != want.String() {
		t.Fatalf("NormalizeChecked=%v want %v", got, want)
	}
}

func TestAddConstraintOverflow(t *testing.T) {
	p := NewProblem(2)
	err := p.AddConstraint([]Term{{math.MaxInt64, PosLit(0)}, {math.MaxInt64, PosLit(0)}}, GE, 1)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("GE dup: err=%v, want ErrOverflow", err)
	}
	// ≤ path negates coefficients; MinInt64 cannot be negated.
	err = p.AddConstraint([]Term{{math.MinInt64, PosLit(0)}}, LE, 0)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("LE MinInt64 coef: err=%v, want ErrOverflow", err)
	}
	err = p.AddConstraint([]Term{{1, PosLit(0)}}, LE, math.MinInt64)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("LE MinInt64 rhs: err=%v, want ErrOverflow", err)
	}
}

func TestValidateObjectiveOverflow(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, math.MaxInt64)
	p.SetCost(1, math.MaxInt64)
	if err := p.Validate(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Validate: err=%v, want ErrOverflow", err)
	}
	// ObjectiveValue on the same (invalid) problem saturates, never wraps.
	if got := p.ObjectiveValue([]bool{true, true}); got != math.MaxInt64 {
		t.Fatalf("ObjectiveValue saturated = %d, want MaxInt64", got)
	}
	if got := p.TotalCost(); got != math.MaxInt64 {
		t.Fatalf("TotalCost saturated = %d, want MaxInt64", got)
	}
}
