// Package pb defines the linear Pseudo-Boolean Optimization (PBO) problem
// model used throughout the repository.
//
// An instance is
//
//	minimize   Σ_j c_j · x_j
//	subject to Σ_j a_ij · l_ij ≥ b_i        for every constraint i
//	           x_j ∈ {0,1}
//
// where every literal l_ij is a variable x_j or its complement ¬x_j, and all
// coefficients a_ij, degrees b_i, and costs c_j are non-negative integers.
// Arbitrary linear pseudo-Boolean constraints (≤, =, negative coefficients,
// negative costs) are brought into this normal form by the constructors in
// this package; see Problem.AddConstraint and NewProblem.
package pb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Var identifies a Boolean decision variable. Variables are dense integers
// starting at 0.
type Var int32

// Lit is a literal: a variable or its complement. The encoding is
// 2*v for the positive literal x_v and 2*v+1 for the negative literal ¬x_v.
type Lit int32

// NoLit is the zero-ish sentinel for "no literal".
const NoLit Lit = -1

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given sign; neg=true yields ¬v.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return NegLit(v)
	}
	return PosLit(v)
}

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsNeg reports whether l is a negative literal (¬x).
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// String renders l as x<i> or ~x<i>.
func (l Lit) String() string {
	if l == NoLit {
		return "nil"
	}
	if l.IsNeg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Eval reports whether l is true under the given assignment of its variable.
func (l Lit) Eval(varValue bool) bool { return varValue != l.IsNeg() }

// Term is one coefficient–literal pair of a constraint's left-hand side.
type Term struct {
	Coef int64
	Lit  Lit
}

// Constraint is a normalized pseudo-Boolean constraint
//
//	Σ_k Coef_k · Lit_k ≥ Degree
//
// with all Coef_k > 0 and Degree ≥ 0, at most one term per variable, and
// every Coef_k ≤ Degree (coefficients are clipped: a coefficient larger than
// the degree propagates identically to one equal to it).
type Constraint struct {
	Terms  []Term
	Degree int64
	// Learned marks constraints derived during search (conflict clauses,
	// knapsack cuts) as opposed to problem constraints.
	Learned bool
}

// Kind classifies a normalized constraint.
type Kind int

const (
	// KindTrivial is a constraint with Degree ≤ 0: always satisfied.
	KindTrivial Kind = iota
	// KindClause requires a single true literal (all coefficients ≥ degree;
	// after clipping, all equal to it with degree scaled to 1-like behaviour).
	KindClause
	// KindCardinality has all coefficients equal but needs ≥2 literals true.
	KindCardinality
	// KindGeneral is any other pseudo-Boolean constraint.
	KindGeneral
)

func (k Kind) String() string {
	switch k {
	case KindTrivial:
		return "trivial"
	case KindClause:
		return "clause"
	case KindCardinality:
		return "cardinality"
	default:
		return "general"
	}
}

// Kind reports the classification of c.
func (c *Constraint) Kind() Kind {
	if c.Degree <= 0 {
		return KindTrivial
	}
	if len(c.Terms) == 0 {
		return KindGeneral // positive degree with no terms: unsatisfiable
	}
	allEqual := true
	for _, t := range c.Terms {
		if t.Coef != c.Terms[0].Coef {
			allEqual = false
			break
		}
	}
	if !allEqual {
		return KindGeneral
	}
	k := c.Terms[0].Coef
	need := (c.Degree + k - 1) / k // ⌈Degree/k⌉ literals must be true
	if need <= 1 {
		return KindClause
	}
	return KindCardinality
}

// CardinalityNeed returns, for a clause or cardinality constraint with all
// coefficients equal to k, the number ⌈Degree/k⌉ of literals that must be
// true. For general constraints it returns a valid lower bound on the number
// of true literals (⌈Degree/maxCoef⌉).
func (c *Constraint) CardinalityNeed() int64 {
	if c.Degree <= 0 {
		return 0
	}
	var maxCoef int64
	for _, t := range c.Terms {
		if t.Coef > maxCoef {
			maxCoef = t.Coef
		}
	}
	if maxCoef == 0 {
		return 0
	}
	return (c.Degree + maxCoef - 1) / maxCoef
}

// CoefSum returns the sum of all coefficients. The sum saturates at MaxInt64
// instead of wrapping (normalized constraints reject overflowing sums at
// construction, so saturation is purely defensive).
func (c *Constraint) CoefSum() int64 {
	var s int64
	for _, t := range c.Terms {
		s = satAdd(s, t.Coef)
	}
	return s
}

// Slack returns CoefSum − Degree: the amount by which the constraint can
// "afford" falsified literals before becoming unsatisfiable.
func (c *Constraint) Slack() int64 { return c.CoefSum() - c.Degree }

// Eval reports whether the constraint holds under the full assignment
// values[v] (indexed by variable).
func (c *Constraint) Eval(values []bool) bool {
	var lhs int64
	for _, t := range c.Terms {
		if t.Lit.Eval(values[t.Lit.Var()]) {
			lhs += t.Coef
		}
	}
	return lhs >= c.Degree
}

// Clone returns a deep copy of c.
func (c *Constraint) Clone() *Constraint {
	terms := make([]Term, len(c.Terms))
	copy(terms, c.Terms)
	return &Constraint{Terms: terms, Degree: c.Degree, Learned: c.Learned}
}

// String renders the constraint in OPB-like syntax.
func (c *Constraint) String() string {
	var sb strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "+%d %s", t.Coef, t.Lit)
	}
	fmt.Fprintf(&sb, " >= %d", c.Degree)
	return sb.String()
}

// Cmp is the relational operator of a raw (pre-normalization) constraint.
type Cmp int

const (
	// GE is Σ terms ≥ rhs.
	GE Cmp = iota
	// LE is Σ terms ≤ rhs.
	LE
	// EQ is Σ terms = rhs.
	EQ
)

func (c Cmp) String() string {
	switch c {
	case GE:
		return ">="
	case LE:
		return "<="
	default:
		return "="
	}
}

// Problem is a PBO instance in normal form.
type Problem struct {
	// NumVars is the number of decision variables; variables are 0..NumVars-1.
	NumVars int
	// Cost[v] is the non-negative cost incurred when x_v = 1. After
	// normalization of negative input costs, the true objective value is
	// CostOffset + Σ Cost[v]·x_v.
	Cost []int64
	// CostOffset is the constant added to the normalized objective to
	// recover the original objective value.
	CostOffset int64
	// Constraints are the normalized problem constraints.
	Constraints []*Constraint
	// Names optionally maps variables to external names (e.g. from OPB
	// files). May be nil or shorter than NumVars.
	Names []string
}

// NewProblem returns an empty problem with n variables and zero costs.
func NewProblem(n int) *Problem {
	return &Problem{
		NumVars: n,
		Cost:    make([]int64, n),
	}
}

// AddVar appends a fresh variable with the given cost (which may be
// negative; negative costs are normalized into CostOffset) and returns it.
func (p *Problem) AddVar(cost int64) Var {
	v := Var(p.NumVars)
	p.NumVars++
	p.Cost = append(p.Cost, 0)
	p.SetCost(v, cost)
	return v
}

// SetCost assigns variable v the objective coefficient cost. A negative cost
// is normalized by the substitution x = 1 − ¬x: the problem stores cost
// |cost| on the complemented polarity via CostOffset bookkeeping. Concretely,
// for cost < 0 we record Cost[v] = 0 and instead penalize x_v = 0, which is
// expressed by adding cost to CostOffset and storing −cost as a "negative
// polarity" cost. Since the engine only understands costs on x=1, the
// substitution flips the literal meaning: we keep Cost[v] = −cost with
// offset cost, and callers must complement v's polarity themselves; the OPB
// layer does this. Here we only accept cost ≥ 0 and panic otherwise to keep
// the core model simple.
func (p *Problem) SetCost(v Var, cost int64) {
	if cost < 0 {
		panic("pb: SetCost requires non-negative cost; normalize at input layer")
	}
	p.Cost[v] = cost
}

// TotalCost returns the sum of all variable costs (the worst possible
// normalized objective value, an upper bound on any solution cost + 1 slack).
// The sum saturates at MaxInt64 instead of wrapping; Validate rejects
// problems whose total cost overflows, so a saturated value can only be seen
// on problems that bypassed the input layer.
func (p *Problem) TotalCost() int64 {
	var s int64
	for _, c := range p.Cost {
		s = satAdd(s, c)
	}
	return s
}

// HasObjective reports whether any variable has a nonzero cost. Instances
// without an objective are pure PB satisfaction problems (like the paper's
// acc-tight family).
func (p *Problem) HasObjective() bool {
	for _, c := range p.Cost {
		if c != 0 {
			return true
		}
	}
	return false
}

// AddConstraint normalizes and appends the constraint Σ terms cmp rhs.
// Terms may mention a variable several times and with negative coefficients;
// EQ is split into GE+LE. Trivially true constraints are dropped; trivially
// false constraints are recorded as an empty constraint with positive degree
// (which the solver reports as UNSAT). It returns an error only if a term
// mentions an out-of-range variable.
func (p *Problem) AddConstraint(terms []Term, cmp Cmp, rhs int64) error {
	for _, t := range terms {
		if v := t.Lit.Var(); v < 0 || int(v) >= p.NumVars {
			return fmt.Errorf("pb: constraint mentions undefined variable x%d (problem has %d vars)", v, p.NumVars)
		}
	}
	switch cmp {
	case GE:
		c, err := NormalizeChecked(terms, rhs)
		if err != nil {
			return err
		}
		if c != nil {
			p.Constraints = append(p.Constraints, c)
		}
	case LE:
		// Σ a·l ≤ b  ⇔  Σ −a·l ≥ −b.
		neg := make([]Term, len(terms))
		for i, t := range terms {
			nc, ok := negOK(t.Coef)
			if !ok {
				return fmt.Errorf("pb: coefficient %d on %s: %w", t.Coef, t.Lit, ErrOverflow)
			}
			neg[i] = Term{Coef: nc, Lit: t.Lit}
		}
		nrhs, ok := negOK(rhs)
		if !ok {
			return fmt.Errorf("pb: right-hand side %d: %w", rhs, ErrOverflow)
		}
		c, err := NormalizeChecked(neg, nrhs)
		if err != nil {
			return err
		}
		if c != nil {
			p.Constraints = append(p.Constraints, c)
		}
	case EQ:
		if err := p.AddConstraint(terms, GE, rhs); err != nil {
			return err
		}
		return p.AddConstraint(terms, LE, rhs)
	default:
		return fmt.Errorf("pb: unknown comparison %d", cmp)
	}
	return nil
}

// AddClause appends the clause l1 ∨ l2 ∨ … (Σ l_k ≥ 1).
func (p *Problem) AddClause(lits ...Lit) error {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	return p.AddConstraint(terms, GE, 1)
}

// AddAtLeast appends the cardinality constraint Σ lits ≥ k.
func (p *Problem) AddAtLeast(lits []Lit, k int64) error {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	return p.AddConstraint(terms, GE, k)
}

// AddAtMost appends the cardinality constraint Σ lits ≤ k.
func (p *Problem) AddAtMost(lits []Lit, k int64) error {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	return p.AddConstraint(terms, LE, k)
}

// AddExactlyOne appends Σ lits = 1.
func (p *Problem) AddExactlyOne(lits ...Lit) error {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	return p.AddConstraint(terms, EQ, 1)
}

// ObjectiveValue returns CostOffset + Σ Cost[v]·x_v for the full assignment.
// The accumulation saturates at the int64 limits instead of wrapping (see
// overflow.go); Validate guarantees a validated problem's objective cannot
// overflow, so saturation only fires on problems that bypassed the input
// layer.
func (p *Problem) ObjectiveValue(values []bool) int64 {
	s := p.CostOffset
	for v, c := range p.Cost {
		if c != 0 && values[v] {
			s = satAdd(s, c)
		}
	}
	return s
}

// Feasible reports whether the full assignment satisfies every constraint.
func (p *Problem) Feasible(values []bool) bool {
	for _, c := range p.Constraints {
		if !c.Eval(values) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		NumVars:    p.NumVars,
		Cost:       append([]int64(nil), p.Cost...),
		CostOffset: p.CostOffset,
		Names:      append([]string(nil), p.Names...),
	}
	q.Constraints = make([]*Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		q.Constraints[i] = c.Clone()
	}
	return q
}

// Validate checks internal consistency (normal form invariants) and returns
// a descriptive error when violated. Intended for tests and input layers.
func (p *Problem) Validate() error {
	if len(p.Cost) != p.NumVars {
		return fmt.Errorf("pb: len(Cost)=%d != NumVars=%d", len(p.Cost), p.NumVars)
	}
	if p.CostOffset > MaxObjective || p.CostOffset < -MaxObjective {
		return fmt.Errorf("pb: CostOffset %d exceeds the solver headroom ±%d: %w",
			p.CostOffset, MaxObjective, ErrOverflow)
	}
	var totalCost int64 = p.CostOffset
	var sumCost int64
	for v, c := range p.Cost {
		if c < 0 {
			return fmt.Errorf("pb: negative cost %d on x%d", c, v)
		}
		var ok bool
		if totalCost, ok = addOK(totalCost, c); !ok {
			return fmt.Errorf("pb: objective CostOffset + ΣCost at x%d: %w", v, ErrOverflow)
		}
		if sumCost, ok = addOK(sumCost, c); !ok || sumCost > MaxObjective {
			// Found by the differential fuzzer (testdata/fuzz-corpus/
			// seed-*.opb): a worst-case objective at or above the solver's
			// "no incumbent yet" sentinel makes every feasible solution look
			// worse than an incumbent that does not exist, and the search
			// soundly-looking claims UNSAT. Such instances must be rejected
			// at the input layer, never mis-solved.
			return fmt.Errorf("pb: ΣCost at x%d exceeds the solver headroom %d: %w",
				v, MaxObjective, ErrOverflow)
		}
	}
	for i, c := range p.Constraints {
		if c.Degree < 0 {
			return fmt.Errorf("pb: constraint %d has negative degree %d", i, c.Degree)
		}
		seen := map[Var]bool{}
		for _, t := range c.Terms {
			if t.Coef <= 0 {
				return fmt.Errorf("pb: constraint %d has non-positive coefficient %d", i, t.Coef)
			}
			if t.Coef > c.Degree {
				return fmt.Errorf("pb: constraint %d has coefficient %d > degree %d (not clipped)", i, t.Coef, c.Degree)
			}
			v := t.Lit.Var()
			if v < 0 || int(v) >= p.NumVars {
				return fmt.Errorf("pb: constraint %d mentions undefined x%d", i, v)
			}
			if seen[v] {
				return fmt.Errorf("pb: constraint %d mentions x%d twice", i, v)
			}
			seen[v] = true
		}
		// Degree ≤ CoefSum or the constraint is an intentional UNSAT marker;
		// either way the sum itself must not wrap (CoefSum saturates, so a
		// wrapped store would already have corrupted Slack/propagation).
		var sum int64
		for _, t := range c.Terms {
			var ok bool
			if sum, ok = addOK(sum, t.Coef); !ok {
				return fmt.Errorf("pb: constraint %d coefficient sum: %w", i, ErrOverflow)
			}
		}
	}
	return nil
}

// Normalize converts Σ terms ≥ rhs into normal form: merges duplicate
// variables, removes zero coefficients, flips negative coefficients via
// a·l = a − a·¬l, clips coefficients at the degree, and sorts terms by
// descending coefficient (ties by literal). It returns nil when the
// constraint is trivially true (degree ≤ 0). A constraint that is trivially
// false (degree > coefficient sum, including empty with degree > 0) is
// returned as-is so the caller can detect infeasibility.
//
// Normalize assumes coefficient arithmetic cannot overflow (moderate,
// program-constructed inputs); external inputs must go through
// NormalizeChecked / AddConstraint, which reject overflow with ErrOverflow.
// If an overflow does occur here, Normalize panics rather than returning a
// silently wrapped — and potentially unsound — constraint.
func Normalize(terms []Term, rhs int64) *Constraint {
	c, err := NormalizeChecked(terms, rhs)
	if err != nil {
		panic(err)
	}
	return c
}

// NormalizeChecked is Normalize with overflow-checked arithmetic: every
// accumulation that could exceed int64 (duplicate-variable merging, the
// negative-coefficient flips on the right-hand side, the residual coefficient
// sum) reports ErrOverflow instead of wrapping. This is the entry point for
// externally supplied coefficients (the OPB parser, the fuzzer's adversarial
// instances).
func NormalizeChecked(terms []Term, rhs int64) (*Constraint, error) {
	// Merge per-variable contributions. For variable v with positive-literal
	// coefficient ap and negative-literal coefficient an:
	//   ap·x + an·(1−x) = (ap−an)·x + an
	// so the merged coefficient on x is ap−an and rhs decreases by an.
	byVar := map[Var]int64{} // net coefficient on the positive literal
	var ok bool
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		c := t.Coef
		if t.Lit.IsNeg() {
			if byVar[t.Lit.Var()], ok = subOK(byVar[t.Lit.Var()], c); !ok {
				return nil, fmt.Errorf("pb: merged coefficient on %s: %w", t.Lit, ErrOverflow)
			}
			if rhs, ok = subOK(rhs, c); !ok {
				return nil, fmt.Errorf("pb: degree adjustment for %s: %w", t.Lit, ErrOverflow)
			}
		} else {
			if byVar[t.Lit.Var()], ok = addOK(byVar[t.Lit.Var()], c); !ok {
				return nil, fmt.Errorf("pb: merged coefficient on %s: %w", t.Lit, ErrOverflow)
			}
		}
	}
	out := make([]Term, 0, len(byVar))
	for v, a := range byVar {
		switch {
		case a > 0:
			out = append(out, Term{Coef: a, Lit: PosLit(v)})
		case a < 0:
			// a·x = a − a·(1−x) = a + (−a)·¬x ⇒ move constant a to rhs.
			na, ok := negOK(a)
			if !ok {
				return nil, fmt.Errorf("pb: flipped coefficient on x%d: %w", v, ErrOverflow)
			}
			out = append(out, Term{Coef: na, Lit: NegLit(v)})
			if rhs, ok = subOK(rhs, a); !ok {
				return nil, fmt.Errorf("pb: degree adjustment for x%d: %w", v, ErrOverflow)
			}
		}
	}
	if rhs <= 0 {
		return nil, nil // trivially satisfied
	}
	// Clip coefficients at the degree: a literal with coef ≥ degree
	// satisfies the constraint alone either way. After clipping every
	// coefficient is ≤ rhs, but the *sum* over many terms can still wrap —
	// and a wrapped CoefSum corrupts slack-based propagation — so reject it.
	var sum int64
	for i := range out {
		if out[i].Coef > rhs {
			out[i].Coef = rhs
		}
		if sum, ok = addOK(sum, out[i].Coef); !ok {
			return nil, fmt.Errorf("pb: coefficient sum of normalized constraint: %w", ErrOverflow)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coef != out[j].Coef {
			return out[i].Coef > out[j].Coef
		}
		return out[i].Lit < out[j].Lit
	})
	return &Constraint{Terms: out, Degree: rhs}, nil
}

// Reduce returns the residual of c under a partial assignment. assigned[v]
// reports whether x_v is assigned and value[v] its value (only meaningful
// when assigned). The residual drops satisfied-or-false literals:
//
//	Σ_{unassigned} a·l ≥ Degree − Σ_{true assigned lits} a
//
// It returns (nil, true) when the residual is trivially satisfied, and
// (residual, false) otherwise; a residual whose degree exceeds its
// coefficient sum is unsatisfiable under the partial assignment.
func (c *Constraint) Reduce(assigned, value []bool) (res *Constraint, satisfied bool) {
	deg := c.Degree
	var terms []Term
	for _, t := range c.Terms {
		v := t.Lit.Var()
		if assigned[v] {
			if t.Lit.Eval(value[v]) {
				deg -= t.Coef
			}
			continue
		}
		terms = append(terms, t)
	}
	if deg <= 0 {
		return nil, true
	}
	for i := range terms {
		if terms[i].Coef > deg {
			terms[i].Coef = deg
		}
	}
	return &Constraint{Terms: terms, Degree: deg, Learned: c.Learned}, false
}

// BruteForceResult is the outcome of the exhaustive reference solver.
type BruteForceResult struct {
	Feasible bool
	Optimum  int64 // includes CostOffset; meaningful only when Feasible
	Values   []bool
}

// BruteForce exhaustively solves p (reference implementation for tests).
// It panics if p has more than 24 variables.
func BruteForce(p *Problem) BruteForceResult {
	if p.NumVars > 24 {
		panic("pb: BruteForce limited to 24 variables")
	}
	n := p.NumVars
	best := BruteForceResult{Optimum: math.MaxInt64}
	values := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 0; v < n; v++ {
			values[v] = mask&(1<<v) != 0
		}
		if !p.Feasible(values) {
			continue
		}
		obj := p.ObjectiveValue(values)
		if !best.Feasible || obj < best.Optimum {
			best.Feasible = true
			best.Optimum = obj
			best.Values = append([]bool(nil), values...)
		}
	}
	if !best.Feasible {
		best.Optimum = 0
	}
	return best
}
