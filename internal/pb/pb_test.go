package pb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := Var(0); v < 100; v++ {
		pos, neg := PosLit(v), NegLit(v)
		if pos.Var() != v || neg.Var() != v {
			t.Fatalf("Var() mismatch for v=%d", v)
		}
		if pos.IsNeg() || !neg.IsNeg() {
			t.Fatalf("IsNeg mismatch for v=%d", v)
		}
		if pos.Neg() != neg || neg.Neg() != pos {
			t.Fatalf("Neg mismatch for v=%d", v)
		}
		if MkLit(v, false) != pos || MkLit(v, true) != neg {
			t.Fatalf("MkLit mismatch for v=%d", v)
		}
	}
}

func TestLitEval(t *testing.T) {
	if !PosLit(0).Eval(true) || PosLit(0).Eval(false) {
		t.Fatal("positive literal eval wrong")
	}
	if NegLit(0).Eval(true) || !NegLit(0).Eval(false) {
		t.Fatal("negative literal eval wrong")
	}
}

func TestLitString(t *testing.T) {
	if PosLit(3).String() != "x3" {
		t.Fatalf("got %q", PosLit(3).String())
	}
	if NegLit(3).String() != "~x3" {
		t.Fatalf("got %q", NegLit(3).String())
	}
	if NoLit.String() != "nil" {
		t.Fatalf("got %q", NoLit.String())
	}
}

func TestNormalizeTriviallyTrue(t *testing.T) {
	// x0 + x1 >= 0 is trivially true.
	c := Normalize([]Term{{1, PosLit(0)}, {1, PosLit(1)}}, 0)
	if c != nil {
		t.Fatalf("expected nil, got %v", c)
	}
	// Negative rhs likewise.
	if Normalize([]Term{{1, PosLit(0)}}, -5) != nil {
		t.Fatal("expected nil for negative rhs")
	}
}

func TestNormalizeNegativeCoef(t *testing.T) {
	// -2 x0 + 3 x1 >= 1  ⇔  2 ¬x0 + 3 x1 >= 3.
	c := Normalize([]Term{{-2, PosLit(0)}, {3, PosLit(1)}}, 1)
	if c == nil {
		t.Fatal("unexpected nil")
	}
	if c.Degree != 3 {
		t.Fatalf("degree=%d want 3", c.Degree)
	}
	found := map[string]int64{}
	for _, tm := range c.Terms {
		found[tm.Lit.String()] = tm.Coef
	}
	if found["~x0"] != 2 || found["x1"] != 3 {
		t.Fatalf("terms wrong: %v", c)
	}
}

func TestNormalizeMergesDuplicates(t *testing.T) {
	// 2 x0 + 3 x0 >= 4 ⇒ 5 x0 >= 4 ⇒ clipped to 4 x0 >= 4.
	c := Normalize([]Term{{2, PosLit(0)}, {3, PosLit(0)}}, 4)
	if c == nil || len(c.Terms) != 1 || c.Terms[0].Coef != 4 || c.Degree != 4 {
		t.Fatalf("got %v", c)
	}
	// x0 and ¬x0 cancel: 2 x0 + 3 ¬x0 >= 1 ⇔ -1 x0 >= -2 ⇔ ¬x0 >= -1: trivial.
	c = Normalize([]Term{{2, PosLit(0)}, {3, NegLit(0)}}, 1)
	if c != nil {
		t.Fatalf("expected trivial, got %v", c)
	}
	// 2 x0 + 3 ¬x0 >= 3 ⇔ ¬x0 >= 0 + ... : -1·x0 >= 0 ⇔ 1·¬x0 >= 1.
	c = Normalize([]Term{{2, PosLit(0)}, {3, NegLit(0)}}, 3)
	if c == nil || len(c.Terms) != 1 || c.Terms[0].Lit != NegLit(0) || c.Degree != 1 {
		t.Fatalf("got %v", c)
	}
}

func TestNormalizeClipping(t *testing.T) {
	// 10 x0 + 1 x1 >= 2 ⇒ coef 10 clipped to 2.
	c := Normalize([]Term{{10, PosLit(0)}, {1, PosLit(1)}}, 2)
	if c.Terms[0].Coef != 2 {
		t.Fatalf("not clipped: %v", c)
	}
}

func TestNormalizeSortsDescending(t *testing.T) {
	c := Normalize([]Term{{1, PosLit(0)}, {3, PosLit(1)}, {2, PosLit(2)}}, 3)
	for i := 1; i < len(c.Terms); i++ {
		if c.Terms[i].Coef > c.Terms[i-1].Coef {
			t.Fatalf("not sorted: %v", c)
		}
	}
}

// normalizePreservesSolutions: every assignment satisfies the raw constraint
// iff it satisfies the normalized one.
func TestNormalizePreservesSolutionSet(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(5)
		nt := 1 + rng.Intn(6)
		terms := make([]Term, nt)
		for i := range terms {
			terms[i] = Term{
				Coef: int64(rng.Intn(9) - 4),
				Lit:  MkLit(Var(rng.Intn(n)), rng.Intn(2) == 0),
			}
		}
		rhs := int64(rng.Intn(13) - 6)
		c := Normalize(append([]Term(nil), terms...), rhs)
		for mask := 0; mask < 1<<n; mask++ {
			values := make([]bool, n)
			for v := 0; v < n; v++ {
				values[v] = mask&(1<<v) != 0
			}
			var lhs int64
			for _, tm := range terms {
				if tm.Lit.Eval(values[tm.Lit.Var()]) {
					lhs += tm.Coef
				}
			}
			rawSat := lhs >= rhs
			normSat := c == nil || c.Eval(values)
			if rawSat != normSat {
				t.Fatalf("iter %d mask %b: raw=%v norm=%v (c=%v terms=%v rhs=%d)",
					iter, mask, rawSat, normSat, c, terms, rhs)
			}
		}
	}
}

func TestConstraintKind(t *testing.T) {
	cases := []struct {
		c    *Constraint
		want Kind
	}{
		{&Constraint{Degree: 0}, KindTrivial},
		{Normalize([]Term{{1, PosLit(0)}, {1, PosLit(1)}}, 1), KindClause},
		{Normalize([]Term{{1, PosLit(0)}, {1, PosLit(1)}, {1, PosLit(2)}}, 2), KindCardinality},
		{Normalize([]Term{{2, PosLit(0)}, {1, PosLit(1)}, {1, PosLit(2)}}, 3), KindGeneral},
		// 5x0 + 5x1 >= 3 clips to 3x0+3x1>=3: each alone satisfies ⇒ clause.
		{Normalize([]Term{{5, PosLit(0)}, {5, PosLit(1)}}, 3), KindClause},
	}
	for i, tc := range cases {
		if got := tc.c.Kind(); got != tc.want {
			t.Errorf("case %d: kind=%v want %v (%v)", i, got, tc.want, tc.c)
		}
	}
}

func TestCardinalityNeed(t *testing.T) {
	c := Normalize([]Term{{1, PosLit(0)}, {1, PosLit(1)}, {1, PosLit(2)}}, 2)
	if c.CardinalityNeed() != 2 {
		t.Fatalf("need=%d", c.CardinalityNeed())
	}
	c = Normalize([]Term{{3, PosLit(0)}, {2, PosLit(1)}, {2, PosLit(2)}}, 4)
	if got := c.CardinalityNeed(); got != 2 { // ceil(4/3)=2 literal minimum
		t.Fatalf("need=%d want 2", got)
	}
}

func TestAddConstraintLEandEQ(t *testing.T) {
	p := NewProblem(3)
	// x0 + x1 + x2 <= 1  ⇔  ¬x0+¬x1+¬x2 >= 2.
	if err := p.AddAtMost([]Lit{PosLit(0), PosLit(1), PosLit(2)}, 1); err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints) != 1 {
		t.Fatalf("constraints=%d", len(p.Constraints))
	}
	c := p.Constraints[0]
	if c.Degree != 2 || len(c.Terms) != 3 {
		t.Fatalf("got %v", c)
	}
	for _, tm := range c.Terms {
		if !tm.Lit.IsNeg() {
			t.Fatalf("expected negated literals: %v", c)
		}
	}

	p2 := NewProblem(2)
	if err := p2.AddExactlyOne(PosLit(0), PosLit(1)); err != nil {
		t.Fatal(err)
	}
	if len(p2.Constraints) != 2 {
		t.Fatalf("EQ should split into 2 constraints, got %d", len(p2.Constraints))
	}
	// Check semantics by brute force: only assignments with exactly one true.
	for mask := 0; mask < 4; mask++ {
		values := []bool{mask&1 != 0, mask&2 != 0}
		want := (mask == 1 || mask == 2)
		if got := p2.Feasible(values); got != want {
			t.Fatalf("mask=%d feasible=%v want %v", mask, got, want)
		}
	}
}

func TestAddConstraintUndefinedVar(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddClause(PosLit(5)); err == nil {
		t.Fatal("expected error for undefined variable")
	}
}

func TestProblemObjectiveAndOffset(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 3)
	p.SetCost(1, 5)
	p.CostOffset = 7
	if got := p.ObjectiveValue([]bool{true, false}); got != 10 {
		t.Fatalf("obj=%d want 10", got)
	}
	if got := p.ObjectiveValue([]bool{true, true}); got != 15 {
		t.Fatalf("obj=%d want 15", got)
	}
	if p.TotalCost() != 8 {
		t.Fatalf("total=%d", p.TotalCost())
	}
}

func TestSetCostNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := NewProblem(1)
	p.SetCost(0, -1)
}

func TestHasObjective(t *testing.T) {
	p := NewProblem(2)
	if p.HasObjective() {
		t.Fatal("empty cost should have no objective")
	}
	p.SetCost(1, 1)
	if !p.HasObjective() {
		t.Fatal("should have objective")
	}
}

func TestValidate(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 1)
	if err := p.AddClause(PosLit(0), NegLit(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	// Corrupt: duplicate variable.
	p.Constraints[0].Terms = append(p.Constraints[0].Terms, Term{1, PosLit(0)})
	p.Constraints[0].Degree = 2
	if err := p.Validate(); err == nil {
		t.Fatal("expected duplicate-variable error")
	}
}

func TestReduce(t *testing.T) {
	// 3x0 + 2x1 + 1¬x2 >= 4.
	c := Normalize([]Term{{3, PosLit(0)}, {2, PosLit(1)}, {1, NegLit(2)}}, 4)
	assigned := []bool{true, false, false}
	value := []bool{true, false, false}
	res, sat := c.Reduce(assigned, value)
	if sat {
		t.Fatal("should not be satisfied yet")
	}
	// x0=1 contributes 3 ⇒ residual 2x1 + 1¬x2 >= 1.
	if res.Degree != 1 || len(res.Terms) != 2 {
		t.Fatalf("residual %v", res)
	}
	// Coefs clipped to degree 1.
	for _, tm := range res.Terms {
		if tm.Coef != 1 {
			t.Fatalf("residual not clipped: %v", res)
		}
	}

	// Satisfying assignment of enough weight.
	assigned = []bool{true, true, false}
	value = []bool{true, true, false}
	if _, sat := c.Reduce(assigned, value); !sat {
		t.Fatal("should be satisfied (3+2 >= 4)")
	}
}

func TestReduceInfeasibleResidual(t *testing.T) {
	// x0 + x1 >= 2 with x0=0: residual x1 >= 2... after clip x1>=2 ⇒ coef
	// clipped to 2? Degree 2 > coefsum 1 ⇒ unsatisfiable residual.
	c := Normalize([]Term{{1, PosLit(0)}, {1, PosLit(1)}}, 2)
	res, sat := c.Reduce([]bool{true, false}, []bool{false, false})
	if sat {
		t.Fatal("not satisfied")
	}
	if res.CoefSum() >= res.Degree {
		t.Fatalf("expected infeasible residual, got %v", res)
	}
}

func TestBruteForceSimple(t *testing.T) {
	// min x0 + 2x1 s.t. x0 + x1 >= 1 ⇒ optimum 1 at x0=1.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	if err := p.AddClause(PosLit(0), PosLit(1)); err != nil {
		t.Fatal(err)
	}
	r := BruteForce(p)
	if !r.Feasible || r.Optimum != 1 || !r.Values[0] || r.Values[1] {
		t.Fatalf("got %+v", r)
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddClause(PosLit(0)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClause(NegLit(0)); err != nil {
		t.Fatal(err)
	}
	// x0 ∧ ¬x0 — need both ≥1 of single literal each: infeasible.
	r := BruteForce(p)
	if r.Feasible {
		t.Fatalf("expected infeasible, got %+v", r)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 1)
	_ = p.AddClause(PosLit(0), PosLit(1))
	q := p.Clone()
	q.Cost[0] = 99
	q.Constraints[0].Degree = 99
	if p.Cost[0] != 1 || p.Constraints[0].Degree == 99 {
		t.Fatal("clone aliases original")
	}
}

// Property: Normalize is idempotent — normalizing a normalized constraint's
// terms with its degree yields an equivalent constraint.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		nt := 1 + rng.Intn(5)
		terms := make([]Term, nt)
		for i := range terms {
			terms[i] = Term{Coef: int64(rng.Intn(7) - 3), Lit: MkLit(Var(rng.Intn(n)), rng.Intn(2) == 0)}
		}
		rhs := int64(rng.Intn(9) - 3)
		c := Normalize(terms, rhs)
		if c == nil {
			return true
		}
		c2 := Normalize(append([]Term(nil), c.Terms...), c.Degree)
		if c2 == nil {
			return false
		}
		if c2.Degree != c.Degree || len(c2.Terms) != len(c.Terms) {
			return false
		}
		for i := range c.Terms {
			if c.Terms[i] != c2.Terms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any normalized constraint, Slack < 0 implies no satisfying
// assignment exists.
func TestSlackInfeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		nt := 1 + rng.Intn(5)
		terms := make([]Term, nt)
		for i := range terms {
			terms[i] = Term{Coef: int64(1 + rng.Intn(5)), Lit: MkLit(Var(rng.Intn(n)), rng.Intn(2) == 0)}
		}
		rhs := int64(1 + rng.Intn(20))
		c := Normalize(terms, rhs)
		if c == nil {
			return true
		}
		anySat := false
		for mask := 0; mask < 1<<n; mask++ {
			values := make([]bool, n)
			for v := 0; v < n; v++ {
				values[v] = mask&(1<<v) != 0
			}
			if c.Eval(values) {
				anySat = true
				break
			}
		}
		if c.Slack() < 0 && anySat {
			return false
		}
		if c.Slack() >= 0 && !anySat {
			return false // normalized PB constraint with slack>=0 always satisfiable (set all lits true)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintString(t *testing.T) {
	c := Normalize([]Term{{2, PosLit(0)}, {1, NegLit(1)}}, 2)
	if got := c.String(); got != "+2 x0 +1 ~x1 >= 2" {
		t.Fatalf("got %q", got)
	}
}

func TestAddVar(t *testing.T) {
	p := NewProblem(0)
	v0 := p.AddVar(5)
	v1 := p.AddVar(0)
	if v0 != 0 || v1 != 1 || p.NumVars != 2 || p.Cost[0] != 5 || p.Cost[1] != 0 {
		t.Fatalf("AddVar wrong: %+v", p)
	}
}
