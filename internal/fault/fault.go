// Package fault is a lightweight fault-injection framework for resilience
// testing. Production code declares *named injection points* on its hot
// paths — fault.Fire("lpr.solve"), fault.Corrupt("lp.pivot", piv) — which
// are no-ops (a single atomic load) unless a test arms the point with a
// failure Spec. Armed points can inject
//
//   - panics (Kind Panic), to exercise the panic-isolation and fallback
//     ladders in core and portfolio;
//   - artificial delays (Kind Delay), to exercise deadline propagation into
//     the bound procedures;
//   - numeric corruption (Kind Corrupt), turning a float value into NaN (or
//     an overflow-scale value), to exercise the numerical-failure detection
//     in the simplex and the bound estimators.
//
// Arming is global to the process, so tests that arm points must not run in
// parallel with each other and should `defer fault.Reset()`. All operations
// are safe for concurrent use by the instrumented code (the portfolio runs
// solver workers on separate goroutines).
package fault

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed point injects when it fires.
type Kind int

const (
	// Panic makes the point panic with an *Injected value.
	KindPanic Kind = iota
	// Delay makes the point sleep for Spec.Delay.
	KindDelay
	// Corrupt makes Corrupt() return NaN (or Spec.Value when non-zero)
	// instead of the original value. Fire() treats Corrupt as a no-op.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return "corrupt"
	}
}

// Spec configures when and how an armed point fires.
type Spec struct {
	Kind Kind
	// Every fires the point on every k-th matching hit (1 = every hit).
	// When zero, Prob governs firing instead.
	Every int
	// Prob fires the point independently with this probability per matching
	// hit (used only when Every == 0). Deterministic under Seed.
	Prob float64
	// Seed seeds the per-point RNG used for Prob (0 = a fixed default).
	Seed int64
	// Delay is the sleep duration for Kind Delay.
	Delay time.Duration
	// Value replaces the input of Corrupt when the point fires; the zero
	// value means NaN.
	Value float64
	// Match restricts firing to hits that pass a matching key (see Fire's
	// variadic keys). Empty matches every hit.
	Match string
}

// Injected is the panic value used by Kind Panic, so recover sites can tell
// injected crashes from genuine ones.
type Injected struct {
	Point string
}

func (in *Injected) Error() string { return "fault: injected panic at " + in.Point }

type point struct {
	spec  Spec
	hits  int64 // matching hits observed
	fires int64 // hits that actually fired
	rng   *rand.Rand
}

var (
	mu     sync.Mutex
	armed  atomic.Int32 // number of armed points; fast-path gate
	points = map[string]*point{}
)

// Arm installs (or replaces) the failure spec for the named point.
func Arm(name string, s Spec) {
	if s.Every == 0 && s.Prob <= 0 {
		s.Every = 1 // arming with a zero spec means "always fire"
	}
	seed := s.Seed
	if seed == 0 {
		seed = 0x5eed + int64(len(name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{spec: s, rng: rand.New(rand.NewSource(seed))}
}

// Disarm removes the spec for the named point (no-op when not armed).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests that arm points should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
}

// Active reports whether any point is armed (cheap; used by instrumented
// code that wants to skip building Fire arguments).
func Active() bool { return armed.Load() != 0 }

// Counts returns how many matching hits the named point has observed and how
// many of them fired, since it was armed.
func Counts(name string) (hits, fires int64) {
	mu.Lock()
	defer mu.Unlock()
	if pt, ok := points[name]; ok {
		return pt.hits, pt.fires
	}
	return 0, 0
}

// shouldFire consults the named point. It returns the spec and true when the
// point fires. The zero Spec is returned for unarmed points.
func shouldFire(name string, keys []string) (Spec, bool) {
	mu.Lock()
	defer mu.Unlock()
	pt, ok := points[name]
	if !ok {
		return Spec{}, false
	}
	if pt.spec.Match != "" {
		matched := false
		for _, k := range keys {
			if k == pt.spec.Match {
				matched = true
				break
			}
		}
		if !matched {
			return Spec{}, false
		}
	}
	pt.hits++
	fire := false
	if pt.spec.Every > 0 {
		fire = pt.hits%int64(pt.spec.Every) == 0
	} else {
		fire = pt.rng.Float64() < pt.spec.Prob
	}
	if fire {
		pt.fires++
	}
	return pt.spec, fire
}

// Fire is the hot-path hook for panic and delay injection. It is a no-op
// (one atomic load) unless the named point is armed and fires. keys are
// matched against Spec.Match; a point armed without Match fires regardless.
func Fire(name string, keys ...string) {
	if armed.Load() == 0 {
		return
	}
	spec, fire := shouldFire(name, keys)
	if !fire {
		return
	}
	switch spec.Kind {
	case KindPanic:
		panic(&Injected{Point: name})
	case KindDelay:
		time.Sleep(spec.Delay)
	}
	// Corrupt specs are meaningful only for Corrupt(); ignore here.
}

// Corrupt passes v through unless the named point is armed with Kind
// Corrupt and fires, in which case it returns NaN (or Spec.Value). Points
// armed with Panic or Delay behave exactly like Fire.
func Corrupt(name string, v float64, keys ...string) float64 {
	if armed.Load() == 0 {
		return v
	}
	spec, fire := shouldFire(name, keys)
	if !fire {
		return v
	}
	switch spec.Kind {
	case KindPanic:
		panic(&Injected{Point: name})
	case KindDelay:
		time.Sleep(spec.Delay)
		return v
	default:
		if spec.Value != 0 {
			return spec.Value
		}
		return math.NaN()
	}
}

// IsInjected reports whether a recovered panic value originates from this
// package (useful for assertions and for re-panicking on genuine bugs).
func IsInjected(r any) bool {
	_, ok := r.(*Injected)
	return ok
}
