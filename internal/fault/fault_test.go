package fault

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Reset()
	Fire("nope")
	if v := Corrupt("nope", 3.5); v != 3.5 {
		t.Fatalf("Corrupt on unarmed point changed value: %v", v)
	}
	if Active() {
		t.Fatal("Active() true with no armed points")
	}
}

func TestEverySemantics(t *testing.T) {
	defer Reset()
	Arm("p", Spec{Kind: KindPanic, Every: 3})
	fires := 0
	for i := 0; i < 9; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !IsInjected(r) {
						t.Fatalf("panic value not Injected: %v", r)
					}
					fires++
				}
			}()
			Fire("p")
		}()
	}
	if fires != 3 {
		t.Fatalf("Every=3 over 9 hits fired %d times, want 3", fires)
	}
	hits, fired := Counts("p")
	if hits != 9 || fired != 3 {
		t.Fatalf("Counts = (%d,%d), want (9,3)", hits, fired)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	defer Reset()
	run := func() int64 {
		Arm("q", Spec{Kind: KindDelay, Prob: 0.5, Seed: 42})
		for i := 0; i < 100; i++ {
			Fire("q")
		}
		_, fires := Counts("q")
		Disarm("q")
		return fires
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fire counts: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("Prob=0.5 fired %d/100 times; want something in between", a)
	}
}

func TestMatchFilter(t *testing.T) {
	defer Reset()
	Arm("worker", Spec{Kind: KindCorrupt, Every: 1, Match: "lpr"})
	if v := Corrupt("worker", 1.0, "mis"); v != 1.0 {
		t.Fatalf("non-matching key fired: %v", v)
	}
	if v := Corrupt("worker", 1.0, "lpr"); !math.IsNaN(v) {
		t.Fatalf("matching key did not corrupt: %v", v)
	}
	hits, fires := Counts("worker")
	if hits != 1 || fires != 1 {
		t.Fatalf("non-matching hits counted: (%d,%d), want (1,1)", hits, fires)
	}
}

func TestCorruptValueOverride(t *testing.T) {
	defer Reset()
	Arm("c", Spec{Kind: KindCorrupt, Every: 1, Value: math.Inf(1)})
	if v := Corrupt("c", 2.0); !math.IsInf(v, 1) {
		t.Fatalf("Value override ignored: %v", v)
	}
}

func TestDelayActuallySleeps(t *testing.T) {
	defer Reset()
	Arm("d", Spec{Kind: KindDelay, Every: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	Fire("d")
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delay fired but only slept %v", el)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	defer Reset()
	Arm("race", Spec{Kind: KindDelay, Prob: 0.5, Delay: 0})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Fire("race")
				Corrupt("race2", 1.0)
			}
		}()
	}
	wg.Wait()
	hits, _ := Counts("race")
	if hits != 8000 {
		t.Fatalf("lost hits under concurrency: %d, want 8000", hits)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Arm("a", Spec{Kind: KindPanic, Every: 1})
	Arm("b", Spec{Kind: KindPanic, Every: 1})
	Reset()
	if Active() {
		t.Fatal("Active() after Reset")
	}
	Fire("a") // must not panic
	Fire("b")
}
