package lp

import (
	"math/rand"
	"testing"
)

func coveringLP(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{NumVars: n, Cost: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = float64(1 + rng.Intn(20))
	}
	for i := 0; i < m; i++ {
		var ents []Entry
		for j := 0; j < n; j++ {
			if rng.Intn(6) == 0 {
				ents = append(ents, Entry{j, float64(1 + rng.Intn(3))})
			}
		}
		if len(ents) == 0 {
			ents = []Entry{{rng.Intn(n), 1}}
		}
		p.Rows = append(p.Rows, Row{Entries: ents, RHS: float64(1 + rng.Intn(2))})
	}
	return p
}

// BenchmarkSimplexCovering measures the primal simplex on covering LPs of
// the size the LPR estimator meets at search nodes.
func BenchmarkSimplexCovering(b *testing.B) {
	for _, size := range []struct{ n, m int }{{50, 80}, {150, 250}, {300, 500}} {
		rng := rand.New(rand.NewSource(4))
		p := coveringLP(rng, size.n, size.m)
		b.Run(benchName(size.n, size.m), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, err := Solve(p)
				if err != nil || sol.Status != Optimal {
					b.Fatalf("status=%v err=%v", sol.Status, err)
				}
				iters += sol.Iterations
			}
			b.ReportMetric(float64(iters)/float64(b.N), "simplex-iters/op")
		})
	}
}

// lprNodeSequence builds the LP sequence an LPR estimator meets walking down
// a branch: a dual-shaped base problem followed by cumulative small
// perturbations (a row disappears when its variable is assigned, costs and
// RHS drift as degree clipping changes). Perturbations only weaken y rewards
// and degrees, so every problem in the chain stays bounded.
func lprNodeSequence(seed int64, m, n, steps int) (probs []*Problem, varKeys, rowKeys [][]int64) {
	rng := rand.New(rand.NewSource(seed))
	p := dualLPLike(rng, m, n)
	vk, rk := keysFor(p)
	probs = append(probs, p)
	varKeys = append(varKeys, vk)
	rowKeys = append(rowKeys, rk)
	for s := 0; s < steps; s++ {
		q := &Problem{NumVars: p.NumVars, Cost: append([]float64(nil), p.Cost...),
			Lo: p.Lo, Hi: p.Hi}
		qvk := append([]int64(nil), vk...)
		qrk := append([]int64(nil), rk...)
		for _, r := range p.Rows {
			q.Rows = append(q.Rows, Row{Entries: append([]Entry(nil), r.Entries...), RHS: r.RHS})
		}
		switch rng.Intn(4) {
		case 0:
			if len(q.Rows) > n/2 {
				i := rng.Intn(len(q.Rows))
				// Dropping row i removes column mass from every y it carries;
				// weaken those rewards by the lost coefficient so d ≤ Σ G
				// (boundedness) is preserved.
				for _, e := range q.Rows[i].Entries {
					if e.Var < m {
						q.Cost[e.Var] += -e.Coef // e.Coef is negative: reward shrinks
					}
				}
				q.Rows = append(q.Rows[:i], q.Rows[i+1:]...)
				qrk = append(qrk[:i], qrk[i+1:]...)
			}
		case 1:
			q.Cost[rng.Intn(m)] += 0.25 // weaken a y reward: stays bounded
		default:
			q.Rows[rng.Intn(len(q.Rows))].RHS += 0.5 // residual degree shrank
		}
		probs = append(probs, q)
		varKeys = append(varKeys, qvk)
		rowKeys = append(rowKeys, qrk)
		p, vk, rk = q, qvk, qrk
	}
	return
}

// BenchmarkLPRNodeLoopCold solves every LP in the node sequence from
// scratch — the pre-warm-start behaviour of the LPR column.
func BenchmarkLPRNodeLoopCold(b *testing.B) {
	probs, _, _ := lprNodeSequence(21, 40, 60, 30)
	var iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range probs {
			sol, err := Solve(p)
			if err != nil || sol.Status != Optimal {
				b.Fatalf("status=%v err=%v", sol.Status, err)
			}
			iters += sol.Iterations
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "simplex-iters/walk")
}

// BenchmarkLPRNodeLoopWarm chains SolveWarm across the identical sequence,
// reusing each solve's basis for the next. The speedup over the cold loop is
// the per-node win the persistent LPRState buys inside the search.
func BenchmarkLPRNodeLoopWarm(b *testing.B) {
	probs, varKeys, rowKeys := lprNodeSequence(21, 40, 60, 30)
	var iters, warm int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bas *Basis
		for k, p := range probs {
			sol, next, err := SolveWarm(p, varKeys[k], rowKeys[k], bas)
			if err != nil || sol.Status != Optimal {
				b.Fatalf("status=%v err=%v", sol.Status, err)
			}
			bas = next
			iters += sol.Iterations
			if sol.Warm {
				warm++
			}
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "simplex-iters/walk")
	b.ReportMetric(float64(warm)/float64(b.N*len(probs)), "warm-fraction")
}

func benchName(n, m int) string {
	return "n" + itobench(n) + "m" + itobench(m)
}

func itobench(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
