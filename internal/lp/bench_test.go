package lp

import (
	"math/rand"
	"testing"
)

func coveringLP(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{NumVars: n, Cost: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = float64(1 + rng.Intn(20))
	}
	for i := 0; i < m; i++ {
		var ents []Entry
		for j := 0; j < n; j++ {
			if rng.Intn(6) == 0 {
				ents = append(ents, Entry{j, float64(1 + rng.Intn(3))})
			}
		}
		if len(ents) == 0 {
			ents = []Entry{{rng.Intn(n), 1}}
		}
		p.Rows = append(p.Rows, Row{Entries: ents, RHS: float64(1 + rng.Intn(2))})
	}
	return p
}

// BenchmarkSimplexCovering measures the primal simplex on covering LPs of
// the size the LPR estimator meets at search nodes.
func BenchmarkSimplexCovering(b *testing.B) {
	for _, size := range []struct{ n, m int }{{50, 80}, {150, 250}, {300, 500}} {
		rng := rand.New(rand.NewSource(4))
		p := coveringLP(rng, size.n, size.m)
		b.Run(benchName(size.n, size.m), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, err := Solve(p)
				if err != nil || sol.Status != Optimal {
					b.Fatalf("status=%v err=%v", sol.Status, err)
				}
				iters += sol.Iterations
			}
			b.ReportMetric(float64(iters)/float64(b.N), "simplex-iters/op")
		})
	}
}

func benchName(n, m int) string {
	return "n" + itobench(n) + "m" + itobench(m)
}

func itobench(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
