// Package lp implements a dense bounded-variable two-phase primal simplex
// solver for linear programs of the form
//
//	minimize   c·x
//	subject to Σ_j A_ij·x_j ≥ b_i    for every row i
//	           lo_j ≤ x_j ≤ hi_j     (default 0 ≤ x_j ≤ 1)
//
// This is the LP-relaxation substrate (§3.1 of the paper): the pseudo-Boolean
// relaxation always has 0/1 variable bounds, and the MILP baseline reuses the
// same solver with tightened bounds during branching. The implementation is a
// classical tableau simplex with upper-bounded variables, Dantzig pricing
// with a Bland's-rule fallback against cycling, and periodic recomputation of
// the basic solution to limit numerical drift.
package lp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
)

// Entry is one nonzero coefficient of a row.
type Entry struct {
	Var  int
	Coef float64
}

// Row is the constraint Σ entries ≥ RHS.
type Row struct {
	Entries []Entry
	RHS     float64
}

// Problem is an LP instance. Lo and Hi may be nil, in which case every
// variable is bounded to [0,1].
type Problem struct {
	NumVars int
	Cost    []float64
	Rows    []Row
	Lo, Hi  []float64
	// MaxIter bounds the total number of simplex iterations (both phases).
	// Zero selects a size-dependent default.
	MaxIter int
	// Deadline, when non-zero, bounds wall-clock time: the solve returns
	// with Status IterLimit (the anytime outcome) as soon as the deadline is
	// observed, checked every few dozen iterations. This is how the search's
	// per-node bound budget propagates into the simplex.
	Deadline time.Time
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: an optimal basic solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no point within the bounds.
	Infeasible
	// Unbounded: the objective decreases without bound (cannot occur when
	// all variables have finite bounds).
	Unbounded
	// IterLimit: the iteration budget (or the wall-clock Deadline) was
	// exhausted before optimality.
	IterLimit
	// Numerical: floating-point corruption (NaN/Inf) was detected in the
	// working state; the solution is unusable. Callers should treat this as
	// a failed bound call and fall back to a cheaper procedure.
	Numerical
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Numerical:
		return "numerical"
	default:
		return "iterlimit"
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	// X is the primal solution (length NumVars).
	X []float64
	// Slack[i] = Σ A_ij·x_j − b_i for each row; a row is "tight" when its
	// slack is (numerically) zero.
	Slack []float64
	// Dual[i] is the dual multiplier of row i (≥ 0 at optimality for ≥ rows
	// in a minimization).
	Dual []float64
	// Iterations is the total simplex iteration count (including dual
	// simplex restoration steps on the warm-start path).
	Iterations int
	// Warm reports that the solve reused a previous basis (see SolveWarm);
	// false on the cold path, including warm attempts that fell back.
	Warm bool
}

const (
	epsPivot  = 1e-9
	epsCost   = 1e-7
	epsBound  = 1e-7
	epsPhase1 = 1e-6
)

type nbStatus uint8

const (
	atLower nbStatus = iota
	atUpper
)

type simplex struct {
	n, m    int // structural vars, rows
	nTot    int // n + m surplus + m artificial
	cost    []float64
	lo, hi  []float64
	tab     [][]float64 // m × nTot
	rhsB    []float64   // B^{-1} b (working rhs under the same row ops)
	beta    []float64   // current value of basic variable per row
	basis   []int
	inBasis []bool
	status  []nbStatus // nonbasic status per variable
	xval     []float64 // value of nonbasic variables (at a bound)
	iters    int
	maxIter  int
	deadline time.Time // zero = no wall-clock cap
}

// validate checks the problem for malformed input and materializes the
// variable bounds. A nil early result means "proceed"; a non-nil one is a
// terminal verdict (Infeasible on crossed bounds).
func validate(p *Problem) (lo, hi []float64, early *Solution, err error) {
	n := p.NumVars
	if len(p.Cost) != n {
		return nil, nil, nil, fmt.Errorf("lp: len(Cost)=%d != NumVars=%d", len(p.Cost), n)
	}
	lo = p.Lo
	hi = p.Hi
	if lo == nil {
		lo = make([]float64, n)
	}
	if hi == nil {
		hi = make([]float64, n)
		for i := range hi {
			hi[i] = 1
		}
	}
	if len(lo) != n || len(hi) != n {
		return nil, nil, nil, fmt.Errorf("lp: bounds length mismatch")
	}
	for j := 0; j < n; j++ {
		if lo[j] > hi[j]+epsBound {
			return nil, nil, &Solution{Status: Infeasible}, nil
		}
		if math.IsNaN(lo[j]) || math.IsNaN(hi[j]) || math.IsNaN(p.Cost[j]) {
			return nil, nil, nil, fmt.Errorf("lp: NaN in input")
		}
	}
	for i, r := range p.Rows {
		if math.IsNaN(r.RHS) {
			return nil, nil, nil, fmt.Errorf("lp: NaN rhs in row %d", i)
		}
		for _, e := range r.Entries {
			if e.Var < 0 || e.Var >= n {
				return nil, nil, nil, fmt.Errorf("lp: row %d references var %d out of range", i, e.Var)
			}
			if math.IsNaN(e.Coef) {
				return nil, nil, nil, fmt.Errorf("lp: NaN coefficient in row %d", i)
			}
		}
	}
	return lo, hi, nil, nil
}

// Solve solves the LP from scratch. It never panics on valid input;
// malformed input (entries out of range, NaN coefficients, lo > hi) yields
// an error. For re-solving a sequence of related LPs, see SolveWarm.
func Solve(p *Problem) (Solution, error) {
	lo, hi, early, err := validate(p)
	if err != nil {
		return Solution{}, err
	}
	if early != nil {
		return *early, nil
	}
	sol, _ := solveCold(p, lo, hi)
	return sol, nil
}

// solveCold runs the classical two-phase solve and returns the final simplex
// state alongside the solution (nil when the solve ended before phase 2
// produced a usable basis — infeasible, iteration-capped phase 1, or
// numerical corruption).
func solveCold(p *Problem, lo, hi []float64) (Solution, *simplex) {
	n, m := p.NumVars, len(p.Rows)
	s := &simplex{n: n, m: m, nTot: n + 2*m, deadline: p.Deadline}
	s.maxIter = p.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 100*(n+m) + 5000
	}
	s.lo = make([]float64, s.nTot)
	s.hi = make([]float64, s.nTot)
	copy(s.lo, lo)
	copy(s.hi, hi)
	for j := n; j < n+m; j++ { // surplus: [0, +inf)
		s.hi[j] = math.Inf(1)
	}
	for j := n + m; j < s.nTot; j++ { // artificial: [0, +inf) during phase 1
		s.hi[j] = math.Inf(1)
	}

	// Working rows: A_i x − s_i = b_i, possibly negated so the initial
	// artificial value is non-negative with every structural nonbasic at its
	// lower bound and surplus at 0.
	s.tab = make([][]float64, m)
	s.rhsB = make([]float64, m)
	s.beta = make([]float64, m)
	s.basis = make([]int, m)
	s.inBasis = make([]bool, s.nTot)
	s.status = make([]nbStatus, s.nTot)
	s.xval = make([]float64, s.nTot)
	for j := 0; j < n; j++ {
		s.xval[j] = lo[j]
	}

	// Slack-basis crash: a row whose residual (with every structural
	// variable at its bound) is non-positive starts with its surplus
	// variable basic and needs no artificial; only rows with positive
	// residual get a basic artificial. Dual-style LPs (c ≥ 0, rhs ≤ 0)
	// therefore skip phase 1 entirely.
	dense := make([]float64, n)
	needPhase1 := false
	for i, r := range p.Rows {
		for k := range dense {
			dense[k] = 0
		}
		for _, e := range r.Entries {
			dense[e.Var] += e.Coef
		}
		// Residual with nonbasic values plugged in.
		resid := r.RHS
		for j := 0; j < n; j++ {
			resid -= dense[j] * s.xval[j]
		}
		row := make([]float64, s.nTot)
		if resid > 0 {
			// Artificial basic (coefficient +1 keeps the unit-column
			// invariant); phase 1 must drive it out.
			for j := 0; j < n; j++ {
				row[j] = dense[j]
			}
			row[n+i] = -1.0  // surplus
			row[n+m+i] = 1.0 // artificial
			s.tab[i] = row
			s.rhsB[i] = r.RHS
			s.basis[i] = n + m + i
			s.inBasis[n+m+i] = true
			s.beta[i] = resid
			needPhase1 = true
		} else {
			// Surplus basic: negate the row so its column is +1 (the
			// Gauss-Jordan invariant requires basic columns to be unit
			// vectors). The surplus value −resid is non-negative, so the
			// basis is feasible and no artificial is ever needed.
			for j := 0; j < n; j++ {
				row[j] = -dense[j]
			}
			row[n+i] = 1.0    // surplus (negated from −1)
			row[n+m+i] = -1.0 // artificial (negated, permanently locked)
			s.tab[i] = row
			s.rhsB[i] = -r.RHS
			s.basis[i] = n + i
			s.inBasis[n+i] = true
			s.beta[i] = -resid
			s.hi[n+m+i] = 0
		}
	}

	// Phase 1: minimize the artificial sum (skipped when the slack basis is
	// already feasible).
	if needPhase1 {
		cost1 := make([]float64, s.nTot)
		for j := n + m; j < s.nTot; j++ {
			cost1[j] = 1
		}
		st := s.run(cost1)
		if st == IterLimit || st == Numerical {
			return Solution{Status: st, Iterations: s.iters}, nil
		}
		var art float64
		for i := 0; i < m; i++ {
			if s.basis[i] >= n+m {
				art += s.beta[i]
			}
		}
		for j := n + m; j < s.nTot; j++ {
			if !s.inBasis[j] {
				art += s.xval[j]
			}
		}
		if art > epsPhase1 {
			return Solution{Status: Infeasible, Iterations: s.iters}, nil
		}
	}
	// Lock artificials at zero for phase 2.
	for j := n + m; j < s.nTot; j++ {
		s.hi[j] = 0
		if !s.inBasis[j] {
			s.xval[j] = 0
			s.status[j] = atLower
		}
	}

	// Phase 2.
	s.cost = make([]float64, s.nTot)
	copy(s.cost, p.Cost)
	st := s.run(s.cost)
	if st == Unbounded || st == Numerical {
		return Solution{Status: st, Iterations: s.iters}, nil
	}
	return s.extractSolution(p, lo, hi, st), s
}

// extractSolution reads the primal point, objective, slacks and duals out of
// the final simplex state. st is the phase-2 outcome (Optimal or IterLimit —
// in the latter case the basis is still primal-feasible, so the extracted
// point and duals remain usable: the anytime behaviour).
func (s *simplex) extractSolution(p *Problem, lo, hi []float64, st Status) Solution {
	n, m := s.n, s.m
	sol := Solution{Status: Optimal, Iterations: s.iters}
	if st == IterLimit {
		// Anytime behaviour: the basis is still primal-feasible, so the
		// extracted point and duals remain usable (the objective is an
		// upper approximation of the optimum; the projected duals give a
		// valid Lagrangian bound).
		sol.Status = IterLimit
	}
	// Extract primal values.
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if !s.inBasis[j] {
			x[j] = s.xval[j]
		}
	}
	for i := 0; i < m; i++ {
		if b := s.basis[i]; b < n {
			x[b] = s.beta[i]
		}
	}
	// Clamp into bounds (numerical noise only).
	for j := 0; j < n; j++ {
		if x[j] < lo[j] {
			x[j] = lo[j]
		}
		if x[j] > hi[j] {
			x[j] = hi[j]
		}
	}
	sol.X = x
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.Cost[j] * x[j]
	}
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		// Corruption that slipped past the periodic checks (e.g. a NaN
		// introduced on the very last pivot): refuse to report a solution.
		return Solution{Status: Numerical, Iterations: s.iters}
	}
	sol.Objective = obj
	// Slacks from the original rows.
	sol.Slack = make([]float64, m)
	for i, r := range p.Rows {
		lhs := 0.0
		for _, e := range r.Entries {
			lhs += e.Coef * x[e.Var]
		}
		sol.Slack[i] = lhs - r.RHS
	}
	// Duals: the reduced cost of surplus variable i equals the dual of
	// original row i (sign conventions cancel; see package tests).
	sol.Dual = make([]float64, m)
	cB := make([]float64, m)
	for i := 0; i < m; i++ {
		cB[i] = s.cost[s.basis[i]]
	}
	for i := 0; i < m; i++ {
		d := 0.0 // cost of surplus var is 0
		col := n + i
		for k := 0; k < m; k++ {
			if cB[k] != 0 {
				d -= cB[k] * s.tab[k][col]
			}
		}
		if d < 0 && d > -epsCost {
			d = 0
		}
		sol.Dual[i] = d
	}
	return sol
}

// run optimizes the given cost vector from the current basis. Returns
// Optimal, Unbounded or IterLimit.
//
// Reduced costs are maintained incrementally across pivots (recomputed
// periodically to contain drift), and all column work is restricted to the
// active columns: variables whose bounds allow movement or that sit in the
// basis. Locked artificials disappear from phase 2 entirely.
func (s *simplex) run(cost []float64) Status {
	// Active columns for this phase. A column must stay active when its
	// variable is basic, can move, or sits nonbasic at a nonzero value
	// (refreshBeta reads its tableau entries).
	cols := make([]int, 0, s.nTot)
	for j := 0; j < s.nTot; j++ {
		if s.inBasis[j] || s.hi[j]-s.lo[j] >= epsBound || s.xval[j] != 0 {
			cols = append(cols, j)
		}
	}
	d := make([]float64, s.nTot)
	cB := make([]float64, s.m)
	recomputeD := func() {
		for i := 0; i < s.m; i++ {
			cB[i] = cost[s.basis[i]]
		}
		for _, j := range cols {
			d[j] = cost[j]
		}
		for i := 0; i < s.m; i++ {
			if cB[i] == 0 {
				continue
			}
			row := s.tab[i]
			c := cB[i]
			for _, j := range cols {
				d[j] -= c * row[j]
			}
		}
	}
	recomputeD()

	price := func(bland bool) int {
		enter := -1
		best := epsCost
		for _, j := range cols {
			if s.inBasis[j] || s.hi[j]-s.lo[j] < epsBound {
				continue
			}
			var viol float64
			if s.status[j] == atLower {
				viol = -d[j]
			} else {
				viol = d[j]
			}
			if viol > best {
				enter = j
				if bland {
					return j
				}
				best = viol
			}
		}
		return enter
	}

	blandAfter := s.maxIter / 2
	for ; s.iters < s.maxIter; s.iters++ {
		if s.iters%64 == 63 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			// Wall-clock budget exhausted: stop with the current (still
			// primal-feasible) basis — the anytime outcome.
			return IterLimit
		}
		if s.iters%256 == 255 {
			s.refreshBeta()
			recomputeD()
			if s.corrupted() {
				return Numerical
			}
		}
		bland := s.iters > blandAfter
		enter := price(bland)
		if enter == -1 {
			// Verify against exact reduced costs before declaring optimality
			// (d is maintained incrementally and may have drifted).
			recomputeD()
			if enter = price(bland); enter == -1 {
				return Optimal
			}
		}
		dir := 1.0
		if s.status[enter] == atUpper {
			dir = -1.0
		}
		// Ratio test.
		t := s.hi[enter] - s.lo[enter] // bound-to-bound move
		blocking := -1
		for i := 0; i < s.m; i++ {
			delta := -dir * s.tab[i][enter]
			bi := s.basis[i]
			var limit float64
			switch {
			case delta > epsPivot:
				if math.IsInf(s.hi[bi], 1) {
					continue
				}
				limit = (s.hi[bi] - s.beta[i]) / delta
			case delta < -epsPivot:
				limit = (s.beta[i] - s.lo[bi]) / -delta
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			if limit < t-epsPivot || (limit < t+epsPivot && blocking >= 0 && bland && bi < s.basis[blocking]) {
				t = limit
				blocking = i
			}
		}
		if math.IsInf(t, 1) {
			return Unbounded
		}
		// Apply the move.
		if t != 0 {
			for i := 0; i < s.m; i++ {
				s.beta[i] -= s.tab[i][enter] * dir * t
			}
		}
		if blocking == -1 {
			// Bound flip: no basis change, reduced costs unchanged.
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
				s.xval[enter] = s.hi[enter]
			} else {
				s.status[enter] = atLower
				s.xval[enter] = s.lo[enter]
			}
			continue
		}
		r := blocking
		leave := s.basis[r]
		// Which bound did the leaving variable hit?
		if -dir*s.tab[r][enter] > 0 {
			s.status[leave] = atUpper
			s.xval[leave] = s.hi[leave]
		} else {
			s.status[leave] = atLower
			s.xval[leave] = s.lo[leave]
		}
		s.inBasis[leave] = false
		enterVal := s.xval[enter] + dir*t
		s.inBasis[enter] = true
		s.basis[r] = enter
		s.beta[r] = enterVal
		// Gauss-Jordan elimination on column enter, pivot row r.
		// fault point "lp.pivot": tests corrupt the pivot (NaN/overflow) to
		// exercise the Numerical detection and the caller's fallback ladder.
		piv := fault.Corrupt("lp.pivot", s.tab[r][enter])
		if math.IsNaN(piv) || math.IsInf(piv, 0) {
			return Numerical
		}
		if math.Abs(piv) < epsPivot {
			// Numerically unusable pivot: refresh and retry next iteration.
			s.refreshBeta()
			recomputeD()
			continue
		}
		inv := 1.0 / piv
		rowR := s.tab[r]
		for _, j := range cols {
			rowR[j] *= inv
		}
		s.rhsB[r] *= inv
		for i := 0; i < s.m; i++ {
			if i == r {
				continue
			}
			f := s.tab[i][enter]
			if f == 0 {
				continue
			}
			rowI := s.tab[i]
			for _, j := range cols {
				rowI[j] -= f * rowR[j]
			}
			s.rhsB[i] -= f * s.rhsB[r]
		}
		// Incremental reduced-cost update: d' = d − d[enter]·rowR (rowR is
		// already the updated pivot row), using the true cost of the leaving
		// variable to restore its entry.
		dEnter := d[enter]
		if dEnter != 0 {
			for _, j := range cols {
				d[j] -= dEnter * rowR[j]
			}
		}
		d[enter] = 0
	}
	return IterLimit
}

// corrupted reports whether floating-point corruption (NaN/Inf) has reached
// the working basic solution. Called from the periodic refresh so the cost
// stays off the per-pivot path.
func (s *simplex) corrupted() bool {
	for i := 0; i < s.m; i++ {
		if math.IsNaN(s.beta[i]) || math.IsInf(s.beta[i], 0) ||
			math.IsNaN(s.rhsB[i]) || math.IsInf(s.rhsB[i], 0) {
			return true
		}
	}
	return false
}

// refreshBeta recomputes the basic variable values from rhsB and the
// nonbasic bound values, limiting incremental floating-point drift.
func (s *simplex) refreshBeta() {
	for i := 0; i < s.m; i++ {
		v := s.rhsB[i]
		row := s.tab[i]
		for j := 0; j < s.nTot; j++ {
			if s.inBasis[j] || s.xval[j] == 0 {
				continue
			}
			v -= row[j] * s.xval[j]
		}
		s.beta[i] = v
	}
}
