package lp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
)

// This file implements warm-started re-solving for sequences of related LPs
// (§3.1 usage pattern: one LP relaxation per search node, with consecutive
// nodes differing in a handful of assigned variables). The previous optimal
// basis is snapshotted under caller-stable integer identities, mapped onto
// the next problem's columns and rows, installed by a Gauss-Jordan crash,
// repaired to primal feasibility by a dual simplex pass, and polished by the
// ordinary primal simplex. Any step that fails — too few identities survive
// the node transition, a corrupted pivot, numerical trouble, a stalled dual
// pass — abandons the warm attempt and falls back to the classical cold
// solve, so warm starting is strictly an acceleration: it can never change
// the set of statuses the caller observes, only how fast Optimal is reached.
//
// Soundness note. The caller (bounds.LPR) never trusts the objective of a
// warm solution directly: it recomputes the bound from the returned duals via
// the weak-duality Lagrangian formula, which is valid for any y ≥ 0. A stale
// or badly mapped basis therefore yields a weaker bound, never an unsound
// one.

// basicID identifies the variable occupying a basis row, in caller-key space
// so it survives column/row renumbering between problems.
type basicID struct {
	// surplus marks the surplus variable of the row identified by key;
	// otherwise key identifies a structural variable.
	surplus bool
	key     int64
}

// Basis is an opaque snapshot of a simplex basis keyed by the caller's
// stable identities. It is produced by SolveWarm and fed back into the next
// SolveWarm call; callers never inspect it.
type Basis struct {
	// rows maps a row's key to the identity of its basic variable.
	rows map[int64]basicID
	// upper is the set of structural variable keys nonbasic at their upper
	// bound (empty when all upper bounds are infinite, as in the LPR dual).
	upper map[int64]bool
}

// Len returns the number of snapshotted basis rows (diagnostic only).
func (b *Basis) Len() int {
	if b == nil {
		return 0
	}
	return len(b.rows)
}

// SolveWarm solves p, reusing prev (a Basis returned by an earlier SolveWarm
// call on a related problem) as the starting basis when possible. varKeys[j]
// and rowKeys[i] are caller-chosen stable identities for column j and row i —
// the same logical variable/constraint must receive the same key across
// calls, and keys must be unique within a call. prev == nil (or an
// unmappable basis) degrades to the cold Solve path. The returned Basis
// snapshots the final state for the next call (nil when the solve ended
// without a usable basis). Solution.Warm reports whether the previous basis
// was actually reused; a caller that passed prev != nil and observes
// Warm == false has witnessed a cold fallback.
func SolveWarm(p *Problem, varKeys, rowKeys []int64, prev *Basis) (Solution, *Basis, error) {
	if len(varKeys) != p.NumVars {
		return Solution{}, nil, fmt.Errorf("lp: len(varKeys)=%d != NumVars=%d", len(varKeys), p.NumVars)
	}
	if len(rowKeys) != len(p.Rows) {
		return Solution{}, nil, fmt.Errorf("lp: len(rowKeys)=%d != len(Rows)=%d", len(rowKeys), len(p.Rows))
	}
	lo, hi, early, err := validate(p)
	if err != nil {
		return Solution{}, nil, err
	}
	if early != nil {
		return *early, nil, nil
	}

	cold := func() (Solution, *Basis, error) {
		sol, s := solveCold(p, lo, hi)
		var bas *Basis
		if s != nil && (sol.Status == Optimal || sol.Status == IterLimit) {
			bas = s.snapshot(varKeys, rowKeys)
		}
		return sol, bas, nil
	}

	if prev.Len() == 0 || len(p.Rows) == 0 {
		return cold()
	}

	s := buildWarm(p, lo, hi)
	if !s.crashBasis(varKeys, rowKeys, prev) {
		return cold()
	}
	s.refreshBeta()
	if s.corrupted() {
		return cold()
	}
	s.cost = make([]float64, s.nTot)
	copy(s.cost, p.Cost)
	// Dual pass: restore primal feasibility while (approximately) preserving
	// dual feasibility. Anything but Optimal means the mapped basis was not
	// worth keeping.
	if st := s.runDual(s.cost); st != Optimal {
		return cold()
	}
	// Polish with the true costs: the dual pass may have shifted costs to
	// stay well-defined, and the crash may have left mild dual
	// infeasibility; the primal simplex finishes from a primal-feasible
	// basis that is typically a handful of pivots from optimal.
	st := s.run(s.cost)
	if st == Unbounded || st == Numerical {
		return cold()
	}
	sol := s.extractSolution(p, lo, hi, st)
	if sol.Status == Numerical {
		return cold()
	}
	sol.Warm = true
	return sol, s.snapshot(varKeys, rowKeys), nil
}

// buildWarm constructs the simplex working state with rows in their natural
// (non-negated) orientation — A_i·x − s_i = b_i with the surplus column −1 —
// and artificials locked at zero from the start. Unlike the cold slack-basis
// crash, no row is negated: the basis comes from the previous solve, not
// from the sign of the initial residual. The dual-extraction identity
// d_surplus_i = y_i holds in this orientation too (the stored surplus column
// is B⁻¹·(−e_i), so −cB·B⁻¹·(−e_i) = y_i).
func buildWarm(p *Problem, lo, hi []float64) *simplex {
	n, m := p.NumVars, len(p.Rows)
	s := &simplex{n: n, m: m, nTot: n + 2*m, deadline: p.Deadline}
	s.maxIter = p.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 100*(n+m) + 5000
	}
	s.lo = make([]float64, s.nTot)
	s.hi = make([]float64, s.nTot)
	copy(s.lo, lo)
	copy(s.hi, hi)
	for j := n; j < n+m; j++ { // surplus: [0, +inf)
		s.hi[j] = math.Inf(1)
	}
	// Artificials stay locked at zero: the crash never needs them feasible,
	// only pivotable (their +1 entry is guaranteed intact when their row
	// comes up, see crashBasis).
	s.tab = make([][]float64, m)
	s.rhsB = make([]float64, m)
	s.beta = make([]float64, m)
	s.basis = make([]int, m)
	s.inBasis = make([]bool, s.nTot)
	s.status = make([]nbStatus, s.nTot)
	s.xval = make([]float64, s.nTot)
	for j := 0; j < n; j++ {
		s.xval[j] = lo[j]
	}
	for i, r := range p.Rows {
		row := make([]float64, s.nTot)
		for _, e := range r.Entries {
			row[e.Var] += e.Coef
		}
		row[n+i] = -1.0  // surplus
		row[n+m+i] = 1.0 // artificial (locked)
		s.tab[i] = row
		s.rhsB[i] = r.RHS
	}
	return s
}

// crashBasis maps prev onto the current problem and installs it by
// Gauss-Jordan pivots with partial pivoting. A basis is a column SET —
// which row a basic column ends up attached to is irrelevant to
// feasibility — so rather than tying each previous column to its previous
// row (whose pivot entry may have become zero in fixed-order elimination
// even though the set is nonsingular), the crash pivots each mapped column
// in whichever remaining row has the largest entry. For a nonsingular
// mapped set in exact arithmetic every column then finds a pivot, so on an
// unchanged problem the crash reconstructs the previous basis exactly and
// the dual pass confirms feasibility with zero iterations.
//
// Rows left unpivoted (unmapped rows, dependent or corrupted columns) fall
// back to their own surplus, then their own artificial. Both fallbacks have
// guaranteed unit-magnitude pivots: column n+r (resp. n+m+r) is nonzero
// only in row r of the initial tableau, and while row r remains unpivoted
// it is never used as a pivot row, so no elimination can spread that column
// into other rows or alter row r's own entry — tab[r][n+r] is still exactly
// −1 and tab[r][n+m+r] exactly +1 when row r's fallback turn comes.
//
// The crash declines (cold fallback) when fewer than half the rows map, in
// which case installing the remnant would cost more pivoting than it saves.
//
// fault point "lp.warmcrash": tests corrupt mapped pivot values to force the
// per-column fallback and, en masse, the cold fallback.
func (s *simplex) crashBasis(varKeys, rowKeys []int64, prev *Basis) bool {
	n, m := s.n, s.m
	varCol := make(map[int64]int, n)
	for j, k := range varKeys {
		varCol[k] = j
	}
	rowAt := make(map[int64]int, m)
	for i, k := range rowKeys {
		rowAt[k] = i
	}
	// The desired basic column set, deduplicated via inBasis as a scratch
	// "seen" marker (reset below before the pivots mark real basis members).
	cols := make([]int, 0, m)
	for i := 0; i < m; i++ {
		id, ok := prev.rows[rowKeys[i]]
		if !ok {
			continue
		}
		c := -1
		if id.surplus {
			if k, ok := rowAt[id.key]; ok {
				c = n + k
			}
		} else if j, ok := varCol[id.key]; ok {
			c = j
		}
		if c >= 0 && !s.inBasis[c] {
			s.inBasis[c] = true
			cols = append(cols, c)
		}
	}
	for _, c := range cols {
		s.inBasis[c] = false
	}
	if 2*len(cols) < m {
		return false // mapping too poor: the crash would mostly build a slack basis anyway
	}
	// Restore nonbasic-at-upper statuses (no-op when upper bounds are
	// infinite, as in the LPR dual LP).
	if len(prev.upper) > 0 {
		for j := 0; j < n; j++ {
			if prev.upper[varKeys[j]] && !math.IsInf(s.hi[j], 1) {
				s.status[j] = atUpper
				s.xval[j] = s.hi[j]
			}
		}
	}
	// Gauss-Jordan pivot on (r, col); unit-magnitude pivots and unit columns
	// (the common case for the LPR dual, whose w columns are unit vectors)
	// skip nearly all the work.
	pivot := func(r, col int, piv float64) {
		if inv := 1.0 / piv; inv != 1.0 {
			row := s.tab[r]
			for j := 0; j < s.nTot; j++ {
				row[j] *= inv
			}
			s.rhsB[r] *= inv
		}
		rowR := s.tab[r]
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := s.tab[i][col]
			if f == 0 {
				continue
			}
			rowI := s.tab[i]
			for j := 0; j < s.nTot; j++ {
				rowI[j] -= f * rowR[j]
			}
			s.rhsB[i] -= f * s.rhsB[r]
		}
		s.basis[r] = col
		s.inBasis[col] = true
	}
	pivoted := make([]bool, m)
	for _, col := range cols {
		best, bestAbs := -1, epsPivot
		for i := 0; i < m; i++ {
			if pivoted[i] {
				continue
			}
			if a := math.Abs(s.tab[i][col]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			continue // dependent or vanished column: its row falls back below
		}
		piv := fault.Corrupt("lp.warmcrash", s.tab[best][col])
		if math.IsNaN(piv) || math.IsInf(piv, 0) || math.Abs(piv) < epsPivot {
			continue
		}
		pivot(best, col, piv)
		pivoted[best] = true
	}
	for r := 0; r < m; r++ {
		if pivoted[r] {
			continue
		}
		if !s.inBasis[n+r] {
			pivot(r, n+r, s.tab[r][n+r]) // exactly −1 (see above)
		} else {
			pivot(r, n+m+r, s.tab[r][n+m+r]) // exactly +1
		}
	}
	return true
}

// runDual restores primal feasibility from a dual-reasonable basis by dual
// simplex steps: pick the most bound-violating basic variable, drive it to
// the violated bound, and bring in the nonbasic column that preserves dual
// feasibility at minimal reduced-cost ratio. Dual feasibility of the start
// is manufactured where needed by cost shifting (raising the working cost of
// a wrong-signed nonbasic column just past zero); shifts only distort the
// path, not the outcome, because the caller re-runs the primal simplex with
// the true costs afterwards. Returns Optimal when every basic variable is
// within bounds, Infeasible when a violated row has no eligible entering
// column (primal infeasible or hopeless mapping), IterLimit/Numerical on
// budget exhaustion or corruption — everything but Optimal sends the caller
// to the cold path.
func (s *simplex) runDual(cost []float64) Status {
	cols := make([]int, 0, s.nTot)
	for j := 0; j < s.nTot; j++ {
		if s.inBasis[j] || s.hi[j]-s.lo[j] >= epsBound || s.xval[j] != 0 {
			cols = append(cols, j)
		}
	}
	wcost := make([]float64, s.nTot)
	copy(wcost, cost)
	d := make([]float64, s.nTot)
	cB := make([]float64, s.m)
	recompute := func() {
		for i := 0; i < s.m; i++ {
			cB[i] = wcost[s.basis[i]]
		}
		for _, j := range cols {
			d[j] = wcost[j]
		}
		for i := 0; i < s.m; i++ {
			if cB[i] == 0 {
				continue
			}
			row := s.tab[i]
			c := cB[i]
			for _, j := range cols {
				d[j] -= c * row[j]
			}
		}
	}
	shift := func() {
		for _, j := range cols {
			if s.inBasis[j] {
				continue
			}
			if s.status[j] == atLower && d[j] < -epsCost {
				wcost[j] += -d[j] + epsCost
				d[j] = epsCost
			} else if s.status[j] == atUpper && d[j] > epsCost {
				wcost[j] += -epsCost - d[j]
				d[j] = -epsCost
			}
		}
	}
	recompute()
	shift()

	for ; s.iters < s.maxIter; s.iters++ {
		if s.iters%64 == 63 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return IterLimit
		}
		if s.iters%256 == 255 {
			s.refreshBeta()
			if s.corrupted() {
				return Numerical
			}
		}
		// Leaving row: most violated basic bound.
		r := -1
		worst := epsBound
		for i := 0; i < s.m; i++ {
			bi := s.basis[i]
			if v := s.lo[bi] - s.beta[i]; v > worst {
				worst = v
				r = i
			}
			if !math.IsInf(s.hi[bi], 1) {
				if v := s.beta[i] - s.hi[bi]; v > worst {
					worst = v
					r = i
				}
			}
		}
		if r == -1 {
			return Optimal // primal feasible
		}
		leave := s.basis[r]
		below := s.beta[r] < s.lo[leave]
		target := s.lo[leave]
		if !below {
			target = s.hi[leave]
		}
		// Entering column: dual ratio test. Moving nonbasic j off its bound
		// by t (direction dir_j) changes beta[r] by −α_j·dir_j·t; we need it
		// to move toward target. Among eligible columns, minimize the
		// reduced-cost ratio |d_j|/|α_j| (preserves dual feasibility), with
		// ties broken toward the largest pivot magnitude for stability.
		enter := -1
		bestRatio := math.Inf(1)
		bestAbs := 0.0
		row := s.tab[r]
		for _, j := range cols {
			if s.inBasis[j] || s.hi[j]-s.lo[j] < epsBound {
				continue
			}
			a := row[j]
			if math.Abs(a) < epsPivot {
				continue
			}
			var ok bool
			if s.status[j] == atLower { // dir +1: Δbeta[r] has sign −a
				ok = (a < 0) == below
			} else { // dir −1: Δbeta[r] has sign +a
				ok = (a > 0) == below
			}
			if !ok {
				continue
			}
			df := d[j]
			if s.status[j] == atUpper {
				df = -df
			}
			if df < 0 {
				df = 0 // numerically wrong-signed: treat as degenerate
			}
			abs := math.Abs(a)
			ratio := df / abs
			if ratio < bestRatio-epsPivot || (ratio < bestRatio+epsPivot && abs > bestAbs) {
				bestRatio = ratio
				bestAbs = abs
				enter = j
			}
		}
		if enter == -1 {
			return Infeasible // dual unbounded: no point salvaging this basis
		}
		piv := fault.Corrupt("lp.pivot", row[enter])
		if math.IsNaN(piv) || math.IsInf(piv, 0) {
			return Numerical
		}
		dir := 1.0
		if s.status[enter] == atUpper {
			dir = -1.0
		}
		t := (target - s.beta[r]) / (-piv * dir)
		if t < 0 {
			t = 0 // numerical noise; pivot is still the right basis change
		}
		for i := 0; i < s.m; i++ {
			s.beta[i] -= s.tab[i][enter] * dir * t
		}
		if below {
			s.status[leave] = atLower
			s.xval[leave] = s.lo[leave]
		} else {
			s.status[leave] = atUpper
			s.xval[leave] = s.hi[leave]
		}
		s.inBasis[leave] = false
		enterVal := s.xval[enter] + dir*t
		s.inBasis[enter] = true
		s.basis[r] = enter
		s.beta[r] = enterVal
		inv := 1.0 / piv
		rowR := s.tab[r]
		for _, j := range cols {
			rowR[j] *= inv
		}
		s.rhsB[r] *= inv
		for i := 0; i < s.m; i++ {
			if i == r {
				continue
			}
			f := s.tab[i][enter]
			if f == 0 {
				continue
			}
			rowI := s.tab[i]
			for _, j := range cols {
				rowI[j] -= f * rowR[j]
			}
			s.rhsB[i] -= f * s.rhsB[r]
		}
		// Full recompute per iteration: dual repair runs for a handful of
		// steps at a typical node transition, so simplicity beats the
		// incremental update here; shift keeps the next ratio test
		// well-defined against drift.
		recompute()
		shift()
	}
	return IterLimit
}

// snapshot records the final basis under the caller's stable keys for reuse
// by the next SolveWarm call. Rows whose basic variable is an artificial
// (possible only on degenerate cold solves) are simply omitted — the crash
// treats them as unmapped and installs their surplus.
func (s *simplex) snapshot(varKeys, rowKeys []int64) *Basis {
	b := &Basis{rows: make(map[int64]basicID, s.m)}
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		switch {
		case bi < s.n:
			b.rows[rowKeys[i]] = basicID{key: varKeys[bi]}
		case bi < s.n+s.m:
			b.rows[rowKeys[i]] = basicID{surplus: true, key: rowKeys[bi-s.n]}
		}
	}
	for j := 0; j < s.n; j++ {
		if !s.inBasis[j] && s.status[j] == atUpper {
			if b.upper == nil {
				b.upper = make(map[int64]bool)
			}
			b.upper[varKeys[j]] = true
		}
	}
	return b
}
