package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Dual-shaped LPs (rhs ≤ 0 with variables at zero) must skip phase 1
// entirely: the slack basis is feasible immediately.
func TestSlackBasisCrashSkipsPhase1(t *testing.T) {
	// min x0 + x1 s.t. −x0 − x1 ≥ −2 (always true at 0): solves at x = 0
	// in O(1) iterations.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Rows:    []Row{{Entries: []Entry{{0, -1}, {1, -1}}, RHS: -2}},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("%+v", sol)
	}
	if sol.Iterations > 2 {
		t.Fatalf("phase 1 not skipped: %d iterations", sol.Iterations)
	}
}

// Anytime behaviour: a phase-2 iteration limit must still return a usable
// (feasible, clamped) primal point.
func TestIterLimitReturnsFeasiblePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := 4 + rng.Intn(6)
		p := &Problem{NumVars: n, Cost: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Cost[j] = float64(1 + rng.Intn(9))
		}
		// Dual-shaped rows (rhs ≤ 0): feasible at zero, so any iteration
		// limit hits phase 2 and the anytime path.
		for i := 0; i < 3+rng.Intn(5); i++ {
			var ents []Entry
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					ents = append(ents, Entry{j, float64(rng.Intn(7) - 3)})
				}
			}
			if len(ents) == 0 {
				continue
			}
			p.Rows = append(p.Rows, Row{Entries: ents, RHS: float64(-rng.Intn(4))})
		}
		p.MaxIter = 2
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Infeasible || sol.Status == Unbounded {
			continue
		}
		if sol.X == nil {
			t.Fatalf("iter %d: no primal point on %v", iter, sol.Status)
		}
		for j, x := range sol.X {
			if x < -1e-9 || x > 1+1e-9 {
				t.Fatalf("iter %d: x%d=%v outside bounds", iter, j, x)
			}
		}
	}
}

// The incremental reduced costs must agree with the from-scratch optimum:
// solving twice (tight iteration cap vs unlimited) can differ, but the
// unlimited run must match a reference computed via brute-force vertex
// search on small problems.
func TestIncrementalReducedCostsStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		// Random 2-var problems checked against a fine grid (reuses the
		// approach of TestRandom2VarAgainstGrid but stressing the
		// incremental-d code path with many rows).
		p := &Problem{
			NumVars: 2,
			Cost:    []float64{float64(rng.Intn(9) - 4), float64(rng.Intn(9) - 4)},
		}
		m := 5 + rng.Intn(10)
		for i := 0; i < m; i++ {
			p.Rows = append(p.Rows, Row{
				Entries: []Entry{{0, float64(rng.Intn(9) - 4)}, {1, float64(rng.Intn(9) - 4)}},
				RHS:     float64(rng.Intn(5) - 2),
			})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteLP2(p)
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("iter %d: status=%v want infeasible", iter, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("iter %d: status=%v", iter, sol.Status)
		}
		if sol.Objective > want+0.1 || sol.Objective < want-0.15 {
			t.Fatalf("iter %d: obj=%v grid=%v", iter, sol.Objective, want)
		}
	}
}
