package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fault"
)

// keysFor builds the trivial identity keys for a standalone problem.
func keysFor(p *Problem) (varKeys, rowKeys []int64) {
	varKeys = make([]int64, p.NumVars)
	for j := range varKeys {
		varKeys[j] = int64(j)
	}
	rowKeys = make([]int64, len(p.Rows))
	for i := range rowKeys {
		rowKeys[i] = int64(1000 + i)
	}
	return
}

func TestWarmResolveSameProblem(t *testing.T) {
	p := &Problem{
		NumVars: 3,
		Cost:    []float64{1, 2, 3},
		Rows: []Row{
			{Entries: []Entry{{0, 2}, {1, 1}}, RHS: 1},
			{Entries: []Entry{{1, 1}, {2, 2}}, RHS: 1},
		},
	}
	vk, rk := keysFor(p)
	sol1, bas, err := SolveWarm(p, vk, rk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol1.Status != Optimal || sol1.Warm {
		t.Fatalf("cold solve: %+v", sol1)
	}
	if bas.Len() == 0 {
		t.Fatal("no basis snapshot from cold solve")
	}
	sol2, bas2, err := SolveWarm(p, vk, rk, bas)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal {
		t.Fatalf("warm solve status: %v", sol2.Status)
	}
	if !sol2.Warm {
		t.Fatal("identical re-solve did not take the warm path")
	}
	if math.Abs(sol2.Objective-sol1.Objective) > 1e-6 {
		t.Fatalf("warm objective %v != cold %v", sol2.Objective, sol1.Objective)
	}
	if bas2.Len() == 0 {
		t.Fatal("no basis snapshot from warm solve")
	}
	// The warm re-solve of an unchanged problem should need almost no pivots:
	// the crash installs the optimal basis, the dual pass finds it feasible,
	// and the polish confirms optimality without entering.
	if sol2.Iterations > sol1.Iterations {
		t.Fatalf("warm used %d iterations, cold used %d", sol2.Iterations, sol1.Iterations)
	}
}

// dualLPLike builds a random instance shaped like the LPR dual LP: m y-vars
// with negative costs, n w-vars with unit costs, one row per w with its unit
// entry plus negated y coefficients, all variables in [0, +inf).
// Boundedness: the instance is bounded below iff every ray u ≥ 0 in y-space
// pays at least its reward, which holds when d_i ≤ Σ_j G_ij (each y's reward
// does not exceed its column sum); the generator enforces that.
func dualLPLike(rng *rand.Rand, m, n int) *Problem {
	p := &Problem{NumVars: m + n}
	p.Cost = make([]float64, m+n)
	for j := 0; j < n; j++ {
		p.Cost[m+j] = 1
	}
	inf := math.Inf(1)
	p.Lo = make([]float64, m+n)
	p.Hi = make([]float64, m+n)
	for j := range p.Hi {
		p.Hi[j] = inf
	}
	colSum := make([]float64, m)
	for j := 0; j < n; j++ {
		row := Row{RHS: -float64(1 + rng.Intn(4))}
		row.Entries = append(row.Entries, Entry{Var: m + j, Coef: 1})
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.4 {
				c := float64(1 + rng.Intn(3))
				row.Entries = append(row.Entries, Entry{Var: i, Coef: -c})
				colSum[i] += c
			}
		}
		p.Rows = append(p.Rows, row)
	}
	for i := 0; i < m; i++ {
		if colSum[i] < 1 {
			// Ensure every y appears somewhere, or its reward must be zero.
			j := rng.Intn(n)
			p.Rows[j].Entries = append(p.Rows[j].Entries, Entry{Var: i, Coef: -1})
			colSum[i] += 1
		}
		p.Cost[i] = -float64(1 + rng.Intn(int(colSum[i])))
	}
	return p
}

// TestWarmMatchesColdAcrossPerturbations chains warm solves across a random
// walk of LPR-dual-shaped problems — dropping/adding rows and columns,
// nudging costs and RHS — and checks every warm objective against an
// independent cold solve. This is the node-to-node pattern of the search.
func TestWarmMatchesColdAcrossPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		m, n := 4+rng.Intn(3), 5+rng.Intn(4)
		p := dualLPLike(rng, m, n)
		vk, rk := keysFor(p)
		_, bas, err := SolveWarm(p, vk, rk, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			// Perturb: drop a random row (a variable got assigned), nudge a
			// random y cost (degree clipping changed), or drop a y column.
			q := &Problem{NumVars: p.NumVars, Cost: append([]float64(nil), p.Cost...),
				Lo: p.Lo, Hi: p.Hi}
			qvk := append([]int64(nil), vk...)
			qrk := append([]int64(nil), rk...)
			for _, r := range p.Rows {
				q.Rows = append(q.Rows, Row{Entries: append([]Entry(nil), r.Entries...), RHS: r.RHS})
			}
			switch rng.Intn(3) {
			case 0:
				if len(q.Rows) > 2 {
					i := rng.Intn(len(q.Rows))
					q.Rows = append(q.Rows[:i], q.Rows[i+1:]...)
					qrk = append(qrk[:i], qrk[i+1:]...)
				}
			case 1:
				j := rng.Intn(q.NumVars)
				q.Cost[j] += float64(rng.Intn(3) - 1)
			case 2:
				i := rng.Intn(len(q.Rows))
				q.Rows[i].RHS -= float64(rng.Intn(2))
			}
			warm, bas2, err := SolveWarm(q, qvk, qrk, bas)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Solve(q)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm status %v, cold %v", trial, step, warm.Status, cold.Status)
			}
			if cold.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-5 {
				t.Fatalf("trial %d step %d: warm obj %v, cold %v (warm=%v)",
					trial, step, warm.Objective, cold.Objective, warm.Warm)
			}
			p, vk, rk, bas = q, qvk, qrk, bas2
		}
	}
}

func TestWarmDualsStayNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := dualLPLike(rng, 5, 6)
	vk, rk := keysFor(p)
	_, bas, err := SolveWarm(p, vk, rk, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Cost[0] += 0.5 // weaken y_0's reward: the instance stays bounded
	sol, _, err := SolveWarm(p, vk, rk, bas)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for i, d := range sol.Dual {
		if d < -1e-7 {
			t.Fatalf("dual[%d]=%v negative", i, d)
		}
	}
}

func TestWarmFallbackOnAlienBasis(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 2},
		Rows:    []Row{{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 1}},
	}
	vk, rk := keysFor(p)
	// A basis snapshotted under keys that do not exist in this problem: the
	// mapping gate must reject it and fall back cold.
	alien := &Basis{rows: map[int64]basicID{
		rk[0]: {key: 999}, // row maps, but its basic variable's key does not
	}}
	sol, _, err := SolveWarm(p, vk, rk, alien)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Warm {
		t.Fatal("alien basis should not produce a warm solve")
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("fallback solve wrong: %+v", sol)
	}
}

func TestWarmKeyLengthValidation(t *testing.T) {
	p := &Problem{NumVars: 2, Cost: []float64{1, 1}}
	if _, _, err := SolveWarm(p, []int64{0}, nil, nil); err == nil {
		t.Fatal("short varKeys accepted")
	}
	if _, _, err := SolveWarm(p, []int64{0, 1}, []int64{5}, nil); err == nil {
		t.Fatal("short rowKeys accepted")
	}
}

// TestWarmCrashCorruptionFallsBackCold arms the lp.warmcrash fault point so
// every mapped crash pivot reads as NaN: the per-row ladder must degrade to
// surplus/artificial columns and the solve must still terminate with the
// correct optimum (warm or cold — corruption must never change the answer).
func TestWarmCrashCorruptionFallsBackCold(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(3))
	p := dualLPLike(rng, 4, 5)
	vk, rk := keysFor(p)
	_, bas, err := SolveWarm(p, vk, rk, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm("lp.warmcrash", fault.Spec{Kind: fault.KindCorrupt, Every: 1})
	sol, _, err := SolveWarm(p, vk, rk, bas)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-want.Objective) > 1e-6 {
		t.Fatalf("corrupted crash changed the answer: got %+v want obj %v", sol, want.Objective)
	}
	if hits, fires := fault.Counts("lp.warmcrash"); hits == 0 || fires == 0 {
		t.Fatalf("fault point never exercised: hits=%d fires=%d", hits, fires)
	}
}

// TestWarmEmptyProblemAndNoRows covers the degenerate shapes the search can
// produce (all rows satisfied at a node).
func TestWarmEmptyProblemAndNoRows(t *testing.T) {
	p := &Problem{NumVars: 1, Cost: []float64{1}}
	vk, rk := keysFor(p)
	sol, bas, err := SolveWarm(p, vk, rk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Feeding any basis into a rowless problem must stay on the cold path.
	sol2, _, err := SolveWarm(p, vk, rk, bas)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Warm {
		t.Fatal("rowless problem took warm path")
	}
}
