package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestTrivialNoRows(t *testing.T) {
	// min x0 − not expressible (costs can be negative here): min -x0 + x1
	// over [0,1]^2 ⇒ x0=1, x1=0, obj −1.
	p := &Problem{NumVars: 2, Cost: []float64{-1, 1}}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status=%v", sol.Status)
	}
	if math.Abs(sol.Objective-(-1)) > 1e-6 {
		t.Fatalf("obj=%v", sol.Objective)
	}
	if math.Abs(sol.X[0]-1) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Fatalf("x=%v", sol.X)
	}
}

func TestSingleConstraint(t *testing.T) {
	// min x0 + 2 x1 s.t. x0 + x1 >= 1 ⇒ x0=1, obj 1.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 2},
		Rows:    []Row{{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 1}},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("got %+v", sol)
	}
	if math.Abs(sol.Slack[0]) > 1e-6 {
		t.Fatalf("slack=%v want 0", sol.Slack)
	}
	if sol.Dual[0] < 0.5 {
		t.Fatalf("dual=%v want ~1", sol.Dual)
	}
}

func TestFractionalOptimum(t *testing.T) {
	// min x0 + x1 s.t. 2x0 + x1 >= 1, x0 + 2x1 >= 1.
	// LP optimum at x0=x1=1/3, obj 2/3 (integer optimum is 1).
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Rows: []Row{
			{Entries: []Entry{{0, 2}, {1, 1}}, RHS: 1},
			{Entries: []Entry{{0, 1}, {1, 2}}, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2.0/3.0) > 1e-6 {
		t.Fatalf("obj=%v want 2/3", sol.Objective)
	}
	if math.Abs(sol.X[0]-1.0/3.0) > 1e-6 || math.Abs(sol.X[1]-1.0/3.0) > 1e-6 {
		t.Fatalf("x=%v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x0 >= 1 and −x0 >= 0 (i.e. x0 ≤ 0): infeasible.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{0},
		Rows: []Row{
			{Entries: []Entry{{0, 1}}, RHS: 1},
			{Entries: []Entry{{0, -1}}, RHS: 0},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
}

func TestInfeasibleByBounds(t *testing.T) {
	// x0 + x1 >= 3 with x ∈ [0,1]^2: infeasible.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Rows:    []Row{{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 3}},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
}

func TestCustomBounds(t *testing.T) {
	// Fix x0 = 1 via bounds; min x0 + x1 s.t. x0 + x1 >= 1 ⇒ obj 1, x1 = 0.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Rows:    []Row{{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 1}},
		Lo:      []float64{1, 0},
		Hi:      []float64{1, 1},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[0]-1) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Fatalf("got %+v", sol)
	}
}

func TestNegativeRHS(t *testing.T) {
	// −x0 ≥ −1 (x0 ≤ 1): always true within bounds; min −x0 ⇒ x0 = 1.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{-1},
		Rows:    []Row{{Entries: []Entry{{0, -1}}, RHS: -1}},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[0]-1) > 1e-6 {
		t.Fatalf("got %+v", sol)
	}
}

func TestDuplicateEntriesMerged(t *testing.T) {
	// x0 + x0 >= 1 ⇔ 2x0 >= 1 ⇒ x0 = 0.5 at optimum of min x0.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{1},
		Rows:    []Row{{Entries: []Entry{{0, 1}, {0, 1}}, RHS: 1}},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-0.5) > 1e-6 {
		t.Fatalf("x=%v", sol.X)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 1, Cost: []float64{1, 2}}); err == nil {
		t.Fatal("expected cost length error")
	}
	if _, err := Solve(&Problem{NumVars: 1, Cost: []float64{1},
		Rows: []Row{{Entries: []Entry{{5, 1}}, RHS: 0}}}); err == nil {
		t.Fatal("expected var range error")
	}
	if _, err := Solve(&Problem{NumVars: 1, Cost: []float64{math.NaN()}}); err == nil {
		t.Fatal("expected NaN error")
	}
	sol, err := Solve(&Problem{NumVars: 1, Cost: []float64{1}, Lo: []float64{2}, Hi: []float64{1}})
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("crossed bounds: %+v %v", sol, err)
	}
}

// brute-force LP check on 0/1-bounded problems: sample the vertices of the
// hypercube plus a fine grid for 2-variable problems.
func bruteLP2(p *Problem) (best float64, feasible bool) {
	best = math.Inf(1)
	const steps = 200
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			x0, x1 := float64(i)/steps, float64(j)/steps
			ok := true
			for _, r := range p.Rows {
				lhs := 0.0
				for _, e := range r.Entries {
					v := x0
					if e.Var == 1 {
						v = x1
					}
					lhs += e.Coef * v
				}
				if lhs < r.RHS-1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			obj := p.Cost[0]*x0 + p.Cost[1]*x1
			if obj < best {
				best = obj
			}
		}
	}
	return best, feasible
}

func TestRandom2VarAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		p := &Problem{
			NumVars: 2,
			Cost:    []float64{float64(rng.Intn(11) - 5), float64(rng.Intn(11) - 5)},
		}
		m := 1 + rng.Intn(4)
		for i := 0; i < m; i++ {
			p.Rows = append(p.Rows, Row{
				Entries: []Entry{{0, float64(rng.Intn(9) - 4)}, {1, float64(rng.Intn(9) - 4)}},
				RHS:     float64(rng.Intn(7) - 3),
			})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteLP2(p)
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("iter %d: grid says infeasible, solver says %v", iter, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("iter %d: status %v (grid feasible, best %v)", iter, sol.Status, want)
		}
		// The grid is a coarse over-approximation: the simplex optimum must
		// not exceed the grid optimum by more than grid resolution error and
		// must not be significantly below the true optimum (grid best is
		// within ~0.1 of truth for our coefficient ranges).
		if sol.Objective > want+0.1 || sol.Objective < want-0.15 {
			t.Fatalf("iter %d: obj=%v grid=%v (%+v)", iter, sol.Objective, want, p)
		}
	}
}

// Property: on random covering-style LPs (non-negative coefficients) the
// optimum is a valid lower bound for every feasible 0/1 point.
func TestLPBoundsIntegerSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(5)
		p := &Problem{NumVars: n, Cost: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Cost[j] = float64(rng.Intn(10))
		}
		m := 1 + rng.Intn(5)
		for i := 0; i < m; i++ {
			var ents []Entry
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					ents = append(ents, Entry{j, float64(1 + rng.Intn(4))})
				}
			}
			if len(ents) == 0 {
				continue
			}
			p.Rows = append(p.Rows, Row{Entries: ents, RHS: float64(1 + rng.Intn(3))})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate 0/1 points.
		bestInt := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, r := range p.Rows {
				lhs := 0.0
				for _, e := range r.Entries {
					if mask&(1<<e.Var) != 0 {
						lhs += e.Coef
					}
				}
				if lhs < r.RHS {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.Cost[j]
				}
			}
			if obj < bestInt {
				bestInt = obj
			}
		}
		if math.IsInf(bestInt, 1) {
			continue // integer-infeasible; LP may or may not be feasible
		}
		if sol.Status != Optimal {
			t.Fatalf("iter %d: integer-feasible but LP status %v", iter, sol.Status)
		}
		if sol.Objective > bestInt+1e-6 {
			t.Fatalf("iter %d: LP obj %v exceeds integer optimum %v", iter, sol.Objective, bestInt)
		}
	}
}

// Duals: complementary slackness and sign at optimality on covering LPs.
func TestDualProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		p := &Problem{NumVars: n, Cost: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Cost[j] = float64(1 + rng.Intn(9))
		}
		m := 1 + rng.Intn(4)
		for i := 0; i < m; i++ {
			var ents []Entry
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					ents = append(ents, Entry{j, float64(1 + rng.Intn(3))})
				}
			}
			if len(ents) == 0 {
				ents = []Entry{{rng.Intn(n), 1}}
			}
			p.Rows = append(p.Rows, Row{Entries: ents, RHS: 1})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		for i := range sol.Dual {
			if sol.Dual[i] < -1e-6 {
				t.Fatalf("iter %d: negative dual %v", iter, sol.Dual[i])
			}
			// Complementary slackness: positive dual ⇒ tight row.
			if sol.Dual[i] > 1e-4 && sol.Slack[i] > 1e-4 {
				t.Fatalf("iter %d: dual %v with slack %v", iter, sol.Dual[i], sol.Slack[i])
			}
		}
		// Weak duality: Σ y_i b_i ≤ objective (for covering LPs with x ≤ 1
		// the bound needs the upper-bound duals; check only that the dual
		// value does not exceed the objective by more than tolerance when
		// no variable is at its upper bound).
		atUpper := false
		for j := 0; j < n; j++ {
			if sol.X[j] > 1-1e-7 {
				atUpper = true
			}
		}
		if !atUpper {
			dualVal := 0.0
			for i, r := range p.Rows {
				dualVal += sol.Dual[i] * r.RHS
			}
			if dualVal > sol.Objective+1e-5 {
				t.Fatalf("iter %d: dual value %v > primal %v", iter, dualVal, sol.Objective)
			}
		}
	}
}

func TestLargerCoveringLP(t *testing.T) {
	// A 50-var, 80-row random covering LP: must solve to optimality and give
	// a bound ≤ greedy integer solution.
	rng := rand.New(rand.NewSource(5))
	n, m := 50, 80
	p := &Problem{NumVars: n, Cost: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = float64(1 + rng.Intn(20))
	}
	for i := 0; i < m; i++ {
		var ents []Entry
		for j := 0; j < n; j++ {
			if rng.Intn(8) == 0 {
				ents = append(ents, Entry{j, float64(1 + rng.Intn(3))})
			}
		}
		if len(ents) == 0 {
			ents = []Entry{{rng.Intn(n), 1}}
		}
		p.Rows = append(p.Rows, Row{Entries: ents, RHS: 1})
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status=%v after %d iters", sol.Status, sol.Iterations)
	}
	// All-ones is feasible; objective must be ≤ total cost.
	var total float64
	for _, c := range p.Cost {
		total += c
	}
	if sol.Objective <= 0 || sol.Objective > total {
		t.Fatalf("objective %v outside (0,%v]", sol.Objective, total)
	}
	// Feasibility of the LP point.
	for i := range sol.Slack {
		if sol.Slack[i] < -1e-6 {
			t.Fatalf("row %d violated: slack %v", i, sol.Slack[i])
		}
	}
}

func TestEqualityViaTwoRows(t *testing.T) {
	// x0 + x1 = 1 expressed as >= and <= (negated >=): optimum of
	// min 3x0 + x1 is x1 = 1, obj 1.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{3, 1},
		Rows: []Row{
			{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 1},
			{Entries: []Entry{{0, -1}, {1, -1}}, RHS: -1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("got %+v", sol)
	}
}

func TestIterLimit(t *testing.T) {
	p := &Problem{
		NumVars: 3,
		Cost:    []float64{1, 1, 1},
		Rows: []Row{
			{Entries: []Entry{{0, 1}, {1, 1}}, RHS: 1},
			{Entries: []Entry{{1, 1}, {2, 1}}, RHS: 1},
		},
		MaxIter: 1,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status=%v want iterlimit", sol.Status)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iterlimit" {
		t.Fatal("status strings wrong")
	}
}
