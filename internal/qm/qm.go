// Package qm implements Quine–McCluskey prime implicant generation for
// single-output Boolean functions. It is the substrate for the MCNC-style
// two-level logic minimization benchmarks [17]: minimizing a sum-of-products
// cover is exactly the minimum-cost covering problem (a special case of PBO)
// that the paper's third benchmark family exercises.
package qm

import (
	"fmt"
	"math/bits"
	"sort"
)

// Implicant is a cube over n inputs: bit i of Mask set means input i is a
// don't-care in the cube; otherwise bit i of Value gives the required input
// value. An implicant covers minterm m iff (m &^ Mask) == (Value &^ Mask).
type Implicant struct {
	Value uint32
	Mask  uint32
}

// Covers reports whether the implicant covers minterm m.
func (im Implicant) Covers(m uint32) bool {
	return m&^im.Mask == im.Value&^im.Mask
}

// Literals returns the number of literals of the cube (non-don't-care
// inputs), given the total input count n.
func (im Implicant) Literals(n int) int {
	return n - bits.OnesCount32(im.Mask&((1<<uint(n))-1))
}

// String renders the cube as a {0,1,-} pattern, most significant input
// first.
func (im Implicant) StringN(n int) string {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		bit := uint32(1) << uint(n-1-i)
		switch {
		case im.Mask&bit != 0:
			out[i] = '-'
		case im.Value&bit != 0:
			out[i] = '1'
		default:
			out[i] = '0'
		}
	}
	return string(out)
}

// Primes computes all prime implicants of the function over n inputs whose
// ON-set is on and don't-care set is dc (minterm indices in [0, 2^n)).
// The returned primes are sorted deterministically (by mask, then value).
func Primes(n int, on, dc []uint32) ([]Implicant, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("qm: n=%d out of range [1,16]", n)
	}
	limit := uint32(1) << uint(n)
	seen := map[Implicant]bool{}
	var current []Implicant
	add := func(m uint32) error {
		if m >= limit {
			return fmt.Errorf("qm: minterm %d out of range for n=%d", m, n)
		}
		im := Implicant{Value: m}
		if !seen[im] {
			seen[im] = true
			current = append(current, im)
		}
		return nil
	}
	for _, m := range on {
		if err := add(m); err != nil {
			return nil, err
		}
	}
	for _, m := range dc {
		if err := add(m); err != nil {
			return nil, err
		}
	}
	if len(current) == 0 {
		return nil, nil
	}

	var primes []Implicant
	for len(current) > 0 {
		combined := map[Implicant]bool{}
		next := map[Implicant]bool{}
		// Pair cubes with identical masks differing in exactly one care bit.
		byMask := map[uint32][]Implicant{}
		for _, im := range current {
			byMask[im.Mask] = append(byMask[im.Mask], im)
		}
		for _, group := range byMask {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					a, b := group[i], group[j]
					diff := (a.Value ^ b.Value) &^ a.Mask
					if bits.OnesCount32(diff) != 1 {
						continue
					}
					merged := Implicant{Value: a.Value &^ diff, Mask: a.Mask | diff}
					next[merged] = true
					combined[a] = true
					combined[b] = true
				}
			}
		}
		for _, im := range current {
			if !combined[im] {
				primes = append(primes, im)
			}
		}
		current = current[:0]
		for im := range next {
			current = append(current, im)
		}
		// Deterministic iteration order for the next round.
		sort.Slice(current, func(i, j int) bool {
			if current[i].Mask != current[j].Mask {
				return current[i].Mask < current[j].Mask
			}
			return current[i].Value < current[j].Value
		})
	}
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].Mask != primes[j].Mask {
			return primes[i].Mask < primes[j].Mask
		}
		return primes[i].Value < primes[j].Value
	})
	return primes, nil
}

// CoverTable returns, for each ON-set minterm, the indices of the primes
// covering it. Minterms covered by no prime cannot occur (every ON minterm
// is itself the seed of some prime).
func CoverTable(on []uint32, primes []Implicant) [][]int {
	table := make([][]int, len(on))
	for i, m := range on {
		for pi, p := range primes {
			if p.Covers(m) {
				table[i] = append(table[i], pi)
			}
		}
	}
	return table
}
