package qm

import (
	"math/rand"
	"testing"
)

func TestXor2Primes(t *testing.T) {
	// XOR on 2 inputs: ON = {01, 10}; no merging possible ⇒ 2 primes.
	primes, err := Primes(2, []uint32{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 2 {
		t.Fatalf("primes=%d want 2 (%v)", len(primes), primes)
	}
	for _, p := range primes {
		if p.Literals(2) != 2 {
			t.Fatalf("xor prime should have 2 literals: %v", p)
		}
	}
}

func TestFullCubeCollapses(t *testing.T) {
	// All minterms ON ⇒ single prime covering everything (mask all ones).
	on := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	primes, err := Primes(3, on, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 1 || primes[0].Literals(3) != 0 {
		t.Fatalf("primes=%v", primes)
	}
	for _, m := range on {
		if !primes[0].Covers(m) {
			t.Fatalf("prime does not cover %d", m)
		}
	}
}

func TestClassicExample(t *testing.T) {
	// The canonical QM example: f(A,B,C,D) with ON = {4,8,10,11,12,15} and
	// DC = {9,14} has primes -100 (4,12), 10-- (8..11), 1--0 (8,10,12,14),
	// 1-1- (10,11,14,15), 11-- (12..15)… the exact prime set:
	// m(4,12)=−100, m(8,9,10,11)=10−−, m(8,10,12,14)=1−−0,
	// m(10,11,14,15)=1−1−, m(12,13,14,15)? 13 not in ON∪DC ⇒ no.
	on := []uint32{4, 8, 10, 11, 12, 15}
	dc := []uint32{9, 14}
	primes, err := Primes(4, on, dc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"-100": true, "10--": true, "1--0": true, "1-1-": true}
	got := map[string]bool{}
	for _, p := range primes {
		got[p.StringN(4)] = true
	}
	for s := range want {
		if !got[s] {
			t.Fatalf("missing prime %s (got %v)", s, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// Property: every ON minterm is covered by at least one prime, no prime
// covers an OFF minterm, and every prime is maximal (expanding any care bit
// to don't-care hits the OFF-set).
func TestPrimeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(4)
		limit := uint32(1) << uint(n)
		inSet := make(map[uint32]int) // 0 off, 1 on, 2 dc
		var on, dc []uint32
		for m := uint32(0); m < limit; m++ {
			switch rng.Intn(4) {
			case 0:
				on = append(on, m)
				inSet[m] = 1
			case 1:
				dc = append(dc, m)
				inSet[m] = 2
			}
		}
		if len(on) == 0 {
			continue
		}
		primes, err := Primes(n, on, dc)
		if err != nil {
			t.Fatal(err)
		}
		// Coverage of ON minterms.
		for _, m := range on {
			covered := false
			for _, p := range primes {
				if p.Covers(m) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: minterm %d uncovered", iter, m)
			}
		}
		for _, p := range primes {
			// No OFF minterm covered.
			for m := uint32(0); m < limit; m++ {
				if p.Covers(m) && inSet[m] == 0 {
					t.Fatalf("iter %d: prime %v covers OFF minterm %d", iter, p.StringN(n), m)
				}
			}
			// Maximality: flipping any care bit to don't-care must cover an
			// OFF minterm.
			for b := 0; b < n; b++ {
				bit := uint32(1) << uint(b)
				if p.Mask&bit != 0 {
					continue
				}
				bigger := Implicant{Value: p.Value &^ bit, Mask: p.Mask | bit}
				hitsOff := false
				for m := uint32(0); m < limit; m++ {
					if bigger.Covers(m) && inSet[m] == 0 {
						hitsOff = true
						break
					}
				}
				if !hitsOff {
					t.Fatalf("iter %d: prime %v not maximal in bit %d", iter, p.StringN(n), b)
				}
			}
		}
	}
}

func TestCoverTable(t *testing.T) {
	on := []uint32{1, 2}
	primes, err := Primes(2, on, nil)
	if err != nil {
		t.Fatal(err)
	}
	table := CoverTable(on, primes)
	for i, row := range table {
		if len(row) == 0 {
			t.Fatalf("minterm %d uncovered in table", on[i])
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Primes(0, nil, nil); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Primes(17, nil, nil); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Primes(2, []uint32{9}, nil); err == nil {
		t.Fatal("expected minterm range error")
	}
	primes, err := Primes(3, nil, nil)
	if err != nil || primes != nil {
		t.Fatalf("empty function: %v %v", primes, err)
	}
}

func TestStringN(t *testing.T) {
	im := Implicant{Value: 0b100, Mask: 0b010}
	if s := im.StringN(3); s != "1-0" {
		t.Fatalf("got %q", s)
	}
}
