// Package soft models weighted soft-constraint problems (partial weighted
// MaxSAT / soft pseudo-Boolean) on top of the PBO core, the standard
// modeling idiom in the EDA applications the paper targets: each soft
// constraint gets a relaxation variable whose weight is paid when the
// constraint is violated, and the compiled problem minimizes total penalty
// plus any native objective.
//
// Compilation is the textbook relaxation: a soft constraint
//
//	Σ a_j·l_j ≥ b     (weight w)
//
// becomes the hard constraint Σ a_j·l_j + b·r ≥ b with a fresh relaxation
// variable r of cost w — setting r = 1 satisfies the hard constraint at
// penalty w. Equalities split into two relaxed inequalities sharing one
// relaxation variable.
package soft

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pb"
)

// Builder accumulates hard and soft constraints and compiles them to a PBO
// instance.
type Builder struct {
	prob *pb.Problem
	// relax[i] is the relaxation variable of soft constraint i; originals
	// holds the pre-relaxation constraint for violation reporting.
	relax     []pb.Var
	originals []softCons
	err       error
}

type softCons struct {
	weight int64
	terms  []pb.Term
	cmp    pb.Cmp
	rhs    int64
}

// eval reports whether the original soft constraint holds under values.
func (sc softCons) eval(values []bool) bool {
	var lhs int64
	for _, t := range sc.terms {
		if t.Lit.Eval(values[t.Lit.Var()]) {
			lhs += t.Coef
		}
	}
	switch sc.cmp {
	case pb.GE:
		return lhs >= sc.rhs
	case pb.LE:
		return lhs <= sc.rhs
	default:
		return lhs == sc.rhs
	}
}

// NewBuilder returns a builder over n original variables.
func NewBuilder(n int) *Builder {
	return &Builder{prob: pb.NewProblem(n)}
}

// Var adds a fresh decision variable with the given native cost.
func (b *Builder) Var(cost int64) pb.Var {
	return b.prob.AddVar(cost)
}

// SetCost assigns a native objective coefficient to an original variable.
func (b *Builder) SetCost(v pb.Var, cost int64) {
	b.prob.SetCost(v, cost)
}

// Hard adds a mandatory constraint Σ terms cmp rhs.
func (b *Builder) Hard(terms []pb.Term, cmp pb.Cmp, rhs int64) {
	if b.err != nil {
		return
	}
	b.err = b.prob.AddConstraint(terms, cmp, rhs)
}

// HardClause adds a mandatory clause.
func (b *Builder) HardClause(lits ...pb.Lit) {
	if b.err != nil {
		return
	}
	b.err = b.prob.AddClause(lits...)
}

// relaxCoef computes the big-M relaxation coefficient for a soft constraint:
// M = Σ|a_j| + |rhs| (at least 1) makes an active relaxation variable satisfy
// the row for EVERY assignment of the other literals, including after
// normalization of negative coefficients. All arithmetic is overflow-checked:
// adversarial coefficients must surface pb.ErrOverflow instead of silently
// wrapping M into a too-small value that compiles a wrong relaxation.
func relaxCoef(terms []pb.Term, rhs int64) (int64, error) {
	var absSum int64
	for _, t := range terms {
		a := t.Coef
		if a < 0 {
			var err error
			if a, err = pb.CheckedNeg(a); err != nil {
				return 0, fmt.Errorf("soft: relaxation coefficient: %w", err)
			}
		}
		var err error
		if absSum, err = pb.CheckedAdd(absSum, a); err != nil {
			return 0, fmt.Errorf("soft: relaxation coefficient: %w", err)
		}
	}
	ar := rhs
	if ar < 0 {
		var err error
		if ar, err = pb.CheckedNeg(ar); err != nil {
			return 0, fmt.Errorf("soft: relaxation coefficient: %w", err)
		}
	}
	m, err := pb.CheckedAdd(absSum, ar)
	if err != nil {
		return 0, fmt.Errorf("soft: relaxation coefficient: %w", err)
	}
	return maxInt64(m, 1), nil
}

// Soft adds a violable constraint Σ terms cmp rhs with the given positive
// weight, returning its index (for Violated lookups on solutions). On failure
// (bad weight, unknown comparison, overflow in the relaxation coefficient,
// AddConstraint rejection) it returns -1 and poisons the builder: the error
// surfaces from Problem()/Solve(), and the soft-constraint bookkeeping is
// never left pointing at a half-added constraint.
func (b *Builder) Soft(weight int64, terms []pb.Term, cmp pb.Cmp, rhs int64) int {
	return b.SoftWithRelaxers(weight, terms, cmp, rhs)
}

// SoftWithRelaxers is Soft with additional pre-allocated relaxation
// ("blocking") variables: each relaxer receives the same big-M coefficient as
// the constraint's own fresh relaxation variable, so setting ANY of them
// satisfies the compiled row(s) outright. This is the WPM1 clone shape used
// by internal/wbo — a soft constraint that earlier unsat cores have extended
// with blocking variables — and it is why equalities work: both relaxed rows
// of an EQ share every relaxer with row-appropriate signs, which a caller
// appending a single signed term could not express.
//
// The relaxers must be existing variables of this builder's problem; their
// cost is left untouched (blocking-variable bookkeeping, e.g. at-most-one
// rows and core weights, belongs to the caller).
func (b *Builder) SoftWithRelaxers(weight int64, terms []pb.Term, cmp pb.Cmp, rhs int64, relaxers ...pb.Var) int {
	if b.err != nil {
		return -1
	}
	if weight <= 0 {
		b.err = fmt.Errorf("soft: weight must be positive, got %d", weight)
		return -1
	}
	switch cmp {
	case pb.GE, pb.LE, pb.EQ:
	default:
		b.err = fmt.Errorf("soft: unknown comparison %v", cmp)
		return -1
	}
	// Compute the relaxation coefficient (and fail) BEFORE any mutation, so
	// an overflowing soft constraint cannot leave a half-built row behind.
	m, err := relaxCoef(terms, rhs)
	if err != nil {
		b.err = err
		return -1
	}

	r := b.prob.AddVar(weight)
	addRow := func(c pb.Cmp) error {
		coef := m
		if c == pb.LE {
			coef = -m
		}
		aug := make([]pb.Term, 0, len(terms)+1+len(relaxers))
		aug = append(aug, terms...)
		aug = append(aug, pb.Term{Coef: coef, Lit: pb.PosLit(r)})
		for _, rv := range relaxers {
			aug = append(aug, pb.Term{Coef: coef, Lit: pb.PosLit(rv)})
		}
		return b.prob.AddConstraint(aug, c, rhs)
	}
	switch cmp {
	case pb.GE, pb.LE:
		b.err = addRow(cmp)
	case pb.EQ:
		if b.err = addRow(pb.GE); b.err == nil {
			b.err = addRow(pb.LE)
		}
	}
	if b.err != nil {
		// The problem may hold the orphaned relaxation variable (and, for a
		// failed EQ, its first row); the sticky error makes the builder
		// unusable, and relax/originals stay consistent with each other.
		return -1
	}
	idx := len(b.relax)
	b.relax = append(b.relax, r)
	b.originals = append(b.originals, softCons{
		weight: weight,
		terms:  append([]pb.Term(nil), terms...),
		cmp:    cmp,
		rhs:    rhs,
	})
	return idx
}

// NumSoft returns the number of successfully added soft constraints.
func (b *Builder) NumSoft() int { return len(b.relax) }

// RelaxVar returns the relaxation (selector) variable of soft constraint i:
// the compiled rows of soft i are satisfied outright whenever it is set, so
// assuming its negation asserts "soft i holds" — the selector literal the
// core-guided loop in internal/wbo passes as core.Options.Assumptions.
func (b *Builder) RelaxVar(i int) pb.Var { return b.relax[i] }

// Err returns the builder's sticky error (nil while usable).
func (b *Builder) Err() error { return b.err }

// SoftClause adds a violable clause with the given weight.
func (b *Builder) SoftClause(weight int64, lits ...pb.Lit) int {
	terms := make([]pb.Term, len(lits))
	for i, l := range lits {
		terms[i] = pb.Term{Coef: 1, Lit: l}
	}
	return b.Soft(weight, terms, pb.GE, 1)
}

// Problem compiles and returns the PBO instance (hard constraints plus
// relaxed soft constraints; objective = native costs + violation weights).
func (b *Builder) Problem() (*pb.Problem, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.prob, nil
}

// Solution interprets a core result against the builder's soft constraints.
type Solution struct {
	core.Result
	// Violated lists the indices of violated soft constraints.
	Violated []int
	// Penalty is the total violation weight paid.
	Penalty int64
	// HardUnsat reports that the HARD skeleton is infeasible: the compiled
	// problem (where every soft constraint can always be bought off by its
	// relaxation variable) has no solution at all. This is the categorical
	// difference between "there is no assignment" and "the optimum simply
	// pays every penalty" — a solution violating all softs has Status
	// Optimal, a positive Penalty and HardUnsat false.
	HardUnsat bool
}

// Solve compiles and solves with the given options.
func (b *Builder) Solve(opt core.Options) (Solution, error) {
	p, err := b.Problem()
	if err != nil {
		return Solution{}, err
	}
	res := core.Solve(p, opt)
	sol := Solution{Result: res}
	// Relaxation keeps every soft constraint satisfiable, so compiled UNSAT
	// can only come from the hard constraints (assumption-relative UNSAT is
	// different — but Solve passes no assumptions).
	if res.Status == core.StatusUnsat {
		sol.HardUnsat = true
	}
	if res.HasSolution {
		// Evaluate the original constraints rather than the relaxation
		// variables: on non-optimal incumbents a relaxation variable can be
		// 1 even though the constraint happens to hold.
		for i, sc := range b.originals {
			if !sc.eval(res.Values) {
				sol.Violated = append(sol.Violated, i)
				sol.Penalty += sc.weight
			}
		}
	}
	return sol, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
