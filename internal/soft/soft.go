// Package soft models weighted soft-constraint problems (partial weighted
// MaxSAT / soft pseudo-Boolean) on top of the PBO core, the standard
// modeling idiom in the EDA applications the paper targets: each soft
// constraint gets a relaxation variable whose weight is paid when the
// constraint is violated, and the compiled problem minimizes total penalty
// plus any native objective.
//
// Compilation is the textbook relaxation: a soft constraint
//
//	Σ a_j·l_j ≥ b     (weight w)
//
// becomes the hard constraint Σ a_j·l_j + b·r ≥ b with a fresh relaxation
// variable r of cost w — setting r = 1 satisfies the hard constraint at
// penalty w. Equalities split into two relaxed inequalities sharing one
// relaxation variable.
package soft

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pb"
)

// Builder accumulates hard and soft constraints and compiles them to a PBO
// instance.
type Builder struct {
	prob *pb.Problem
	// relax[i] is the relaxation variable of soft constraint i; originals
	// holds the pre-relaxation constraint for violation reporting.
	relax     []pb.Var
	originals []softCons
	err       error
}

type softCons struct {
	weight int64
	terms  []pb.Term
	cmp    pb.Cmp
	rhs    int64
}

// eval reports whether the original soft constraint holds under values.
func (sc softCons) eval(values []bool) bool {
	var lhs int64
	for _, t := range sc.terms {
		if t.Lit.Eval(values[t.Lit.Var()]) {
			lhs += t.Coef
		}
	}
	switch sc.cmp {
	case pb.GE:
		return lhs >= sc.rhs
	case pb.LE:
		return lhs <= sc.rhs
	default:
		return lhs == sc.rhs
	}
}

// NewBuilder returns a builder over n original variables.
func NewBuilder(n int) *Builder {
	return &Builder{prob: pb.NewProblem(n)}
}

// Var adds a fresh decision variable with the given native cost.
func (b *Builder) Var(cost int64) pb.Var {
	return b.prob.AddVar(cost)
}

// SetCost assigns a native objective coefficient to an original variable.
func (b *Builder) SetCost(v pb.Var, cost int64) {
	b.prob.SetCost(v, cost)
}

// Hard adds a mandatory constraint Σ terms cmp rhs.
func (b *Builder) Hard(terms []pb.Term, cmp pb.Cmp, rhs int64) {
	if b.err != nil {
		return
	}
	b.err = b.prob.AddConstraint(terms, cmp, rhs)
}

// HardClause adds a mandatory clause.
func (b *Builder) HardClause(lits ...pb.Lit) {
	if b.err != nil {
		return
	}
	b.err = b.prob.AddClause(lits...)
}

// Soft adds a violable constraint Σ terms cmp rhs with the given positive
// weight, returning its index (for Violated lookups on solutions).
func (b *Builder) Soft(weight int64, terms []pb.Term, cmp pb.Cmp, rhs int64) int {
	if b.err != nil {
		return -1
	}
	if weight <= 0 {
		b.err = fmt.Errorf("soft: weight must be positive, got %d", weight)
		return -1
	}
	r := b.prob.AddVar(weight)
	idx := len(b.relax)
	b.relax = append(b.relax, r)
	b.originals = append(b.originals, softCons{
		weight: weight,
		terms:  append([]pb.Term(nil), terms...),
		cmp:    cmp,
		rhs:    rhs,
	})

	// absSum bounds |Σ a·l| over all assignments.
	var absSum int64
	for _, t := range terms {
		a := t.Coef
		if a < 0 {
			a = -a
		}
		absSum += a
	}
	relaxTerm := func(ts []pb.Term, c pb.Cmp, rh int64) {
		if b.err != nil {
			return
		}
		// The relaxation coefficient must make r = 1 satisfy the hard
		// constraint for EVERY assignment of the other literals, including
		// after normalization of negative coefficients. The worst-case lhs
		// magnitude is absSum, so M = absSum + |rh| (at least 1) always
		// suffices in either direction.
		m := absSum
		if rh < 0 {
			m -= rh
		} else {
			m += rh
		}
		m = maxInt64(m, 1)
		switch c {
		case pb.GE:
			aug := append(append([]pb.Term(nil), ts...), pb.Term{Coef: m, Lit: pb.PosLit(r)})
			b.err = b.prob.AddConstraint(aug, pb.GE, rh)
		case pb.LE:
			aug := append(append([]pb.Term(nil), ts...), pb.Term{Coef: -m, Lit: pb.PosLit(r)})
			b.err = b.prob.AddConstraint(aug, pb.LE, rh)
		default:
			b.err = fmt.Errorf("soft: unsupported comparison %v in relaxTerm", c)
		}
	}

	switch cmp {
	case pb.GE, pb.LE:
		relaxTerm(terms, cmp, rhs)
	case pb.EQ:
		relaxTerm(terms, pb.GE, rhs)
		relaxTerm(terms, pb.LE, rhs)
	default:
		b.err = fmt.Errorf("soft: unknown comparison %v", cmp)
	}
	return idx
}

// SoftClause adds a violable clause with the given weight.
func (b *Builder) SoftClause(weight int64, lits ...pb.Lit) int {
	terms := make([]pb.Term, len(lits))
	for i, l := range lits {
		terms[i] = pb.Term{Coef: 1, Lit: l}
	}
	return b.Soft(weight, terms, pb.GE, 1)
}

// Problem compiles and returns the PBO instance (hard constraints plus
// relaxed soft constraints; objective = native costs + violation weights).
func (b *Builder) Problem() (*pb.Problem, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.prob, nil
}

// Solution interprets a core result against the builder's soft constraints.
type Solution struct {
	core.Result
	// Violated lists the indices of violated soft constraints.
	Violated []int
	// Penalty is the total violation weight paid.
	Penalty int64
}

// Solve compiles and solves with the given options.
func (b *Builder) Solve(opt core.Options) (Solution, error) {
	p, err := b.Problem()
	if err != nil {
		return Solution{}, err
	}
	res := core.Solve(p, opt)
	sol := Solution{Result: res}
	if res.HasSolution {
		// Evaluate the original constraints rather than the relaxation
		// variables: on non-optimal incumbents a relaxation variable can be
		// 1 even though the constraint happens to hold.
		for i, sc := range b.originals {
			if !sc.eval(res.Values) {
				sol.Violated = append(sol.Violated, i)
				sol.Penalty += sc.weight
			}
		}
	}
	return sol, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
