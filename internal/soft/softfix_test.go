package soft

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
)

func TestSoftBigMOverflowSurfaced(t *testing.T) {
	// Near-MaxInt64 coefficients must surface pb.ErrOverflow through the
	// builder instead of wrapping the big-M into a too-small (wrong)
	// relaxation coefficient. PR 4's fuzzer forced the same bug class in the
	// OPB parser; this pins the soft layer.
	cases := []struct {
		name  string
		terms []pb.Term
		rhs   int64
	}{
		{"absSum wraps", []pb.Term{
			{Coef: math.MaxInt64/2 + 10, Lit: pb.PosLit(0)},
			{Coef: math.MaxInt64/2 + 10, Lit: pb.PosLit(1)},
		}, 1},
		{"rhs pushes over", []pb.Term{
			{Coef: math.MaxInt64 - 5, Lit: pb.PosLit(0)},
		}, 100},
		{"MinInt64 coefficient", []pb.Term{
			{Coef: math.MinInt64, Lit: pb.PosLit(0)},
		}, 0},
		{"MinInt64 rhs", []pb.Term{
			{Coef: 1, Lit: pb.PosLit(0)},
		}, math.MinInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2)
			if idx := b.Soft(3, tc.terms, pb.GE, tc.rhs); idx != -1 {
				t.Fatalf("overflowing Soft returned index %d, want -1", idx)
			}
			if _, err := b.Problem(); !errors.Is(err, pb.ErrOverflow) {
				t.Fatalf("err=%v want pb.ErrOverflow", err)
			}
		})
	}
}

func TestSoftFailureLeavesBuilderConsistent(t *testing.T) {
	// A failed Soft must not leave bookkeeping pointing at a half-added
	// constraint: no new index, the sticky error poisons later calls, and
	// relax/originals stay in lockstep.
	b := NewBuilder(2)
	ok := b.SoftClause(2, pb.PosLit(0))
	if ok != 0 {
		t.Fatalf("first soft index=%d want 0", ok)
	}
	bad := b.Soft(5, []pb.Term{{Coef: math.MinInt64, Lit: pb.PosLit(1)}}, pb.GE, 0)
	if bad != -1 {
		t.Fatalf("failed Soft returned %d, want -1", bad)
	}
	if b.NumSoft() != 1 {
		t.Fatalf("NumSoft=%d want 1 (failed soft must not be recorded)", b.NumSoft())
	}
	if len(b.relax) != len(b.originals) {
		t.Fatalf("relax/originals out of lockstep: %d vs %d", len(b.relax), len(b.originals))
	}
	if b.Err() == nil {
		t.Fatal("builder must be poisoned after a failed Soft")
	}
	// Unusable: every later mutation is a no-op returning -1, and solving
	// surfaces the original error.
	if idx := b.SoftClause(1, pb.PosLit(0)); idx != -1 {
		t.Fatalf("post-failure SoftClause returned %d, want -1", idx)
	}
	if _, err := b.Problem(); !errors.Is(err, pb.ErrOverflow) {
		t.Fatalf("Problem err=%v want pb.ErrOverflow", err)
	}
	if _, err := b.Solve(core.Options{}); err == nil {
		t.Fatal("Solve must refuse a poisoned builder")
	}
}

func TestSoftHardUnsatVsAllPenaltiesPaid(t *testing.T) {
	// Hard skeleton infeasible: HardUnsat set, no solution.
	b := NewBuilder(1)
	b.HardClause(pb.PosLit(0))
	b.HardClause(pb.NegLit(0))
	b.SoftClause(4, pb.PosLit(0))
	sol, err := b.Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != core.StatusUnsat || !sol.HardUnsat {
		t.Fatalf("status=%v hardUnsat=%v want unsat/true", sol.Status, sol.HardUnsat)
	}

	// Every soft violated but the hards feasible: an optimum with full
	// penalty, categorically different from UNSAT.
	b2 := NewBuilder(1)
	b2.HardClause(pb.PosLit(0))
	b2.SoftClause(4, pb.NegLit(0))
	sol2, err := b2.Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != core.StatusOptimal || sol2.HardUnsat {
		t.Fatalf("status=%v hardUnsat=%v want optimal/false", sol2.Status, sol2.HardUnsat)
	}
	if sol2.Penalty != 4 || sol2.Best != 4 {
		t.Fatalf("penalty=%d best=%d want 4/4", sol2.Penalty, sol2.Best)
	}
}

func TestSoftWithRelaxersFreesBothEqualityRows(t *testing.T) {
	// A single blocking variable must buy off BOTH rows of a relaxed
	// equality — the reason SoftWithRelaxers exists instead of the caller
	// appending one signed term. Hard constraints force x0 = x1 = 1 so the
	// equality x0 + x1 = 1 is violated; with the zero-cost blocker available
	// the optimum is 0 (blocker on) rather than the selector weight 5.
	b := NewBuilder(2)
	blocker := b.Var(0)
	b.HardClause(pb.PosLit(0))
	b.HardClause(pb.PosLit(1))
	idx := b.SoftWithRelaxers(5,
		[]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}},
		pb.EQ, 1, blocker)
	if idx != 0 {
		t.Fatalf("idx=%d err=%v", idx, b.Err())
	}
	if got := b.RelaxVar(0); got == blocker {
		t.Fatal("selector must be a fresh variable, not the relaxer")
	}
	sol, err := b.Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != core.StatusOptimal || sol.Best != 0 {
		t.Fatalf("status=%v best=%d want optimal/0 (blocker should absorb the violation)",
			sol.Status, sol.Best)
	}
	if !sol.Values[blocker] {
		t.Fatal("blocker should be set in the witness")
	}
	// The original constraint is still reported violated: Violated tracks
	// the pre-relaxation semantics, not the compiled rows.
	if len(sol.Violated) != 1 || sol.Penalty != 5 {
		t.Fatalf("violated=%v penalty=%d want [0]/5", sol.Violated, sol.Penalty)
	}
}
