package soft

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
)

func TestSoftClauseBasics(t *testing.T) {
	// Hard: x0 ∨ x1. Soft: ¬x0 (weight 3), ¬x1 (weight 5). Optimum violates
	// the cheaper soft clause: penalty 3 with x0 = 1.
	b := NewBuilder(2)
	b.HardClause(pb.PosLit(0), pb.PosLit(1))
	i0 := b.SoftClause(3, pb.NegLit(0))
	i1 := b.SoftClause(5, pb.NegLit(1))
	sol, err := b.Solve(core.Options{LowerBound: core.LBLPR})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != core.StatusOptimal || sol.Best != 3 {
		t.Fatalf("status=%v best=%d want optimal/3", sol.Status, sol.Best)
	}
	if sol.Penalty != 3 || len(sol.Violated) != 1 || sol.Violated[0] != i0 {
		t.Fatalf("violated=%v penalty=%d (i0=%d i1=%d)", sol.Violated, sol.Penalty, i0, i1)
	}
}

func TestSoftWithNativeCosts(t *testing.T) {
	// Native cost 2 on x0; soft clause (x0) with weight 5: paying the
	// native cost beats the violation.
	b := NewBuilder(1)
	b.SetCost(0, 2)
	b.SoftClause(5, pb.PosLit(0))
	sol, err := b.Solve(core.Options{LowerBound: core.LBMIS})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Best != 2 || sol.Penalty != 0 {
		t.Fatalf("best=%d penalty=%d", sol.Best, sol.Penalty)
	}
}

func TestSoftEquality(t *testing.T) {
	// Soft: x0 + x1 = 1 (weight 4); hard: x0 = x1 (both or neither).
	// Violation is unavoidable: penalty 4.
	b := NewBuilder(2)
	b.HardClause(pb.NegLit(0), pb.PosLit(1))
	b.HardClause(pb.PosLit(0), pb.NegLit(1))
	b.Soft(4, []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.EQ, 1)
	sol, err := b.Solve(core.Options{LowerBound: core.LBLPR})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != core.StatusOptimal || sol.Best != 4 || sol.Penalty != 4 {
		t.Fatalf("%+v", sol)
	}
}

func TestSoftNegativeCoefficients(t *testing.T) {
	// Soft GE with a negative coefficient: −2x0 + x1 ≥ 1 (weight 7).
	// Hard: x0. The soft constraint then requires x1 with lhs = −2+1 = −1 <
	// 1: unsatisfiable given x0 ⇒ optimum pays 7. This exercises the
	// normalization-safe relaxation coefficient.
	b := NewBuilder(2)
	b.HardClause(pb.PosLit(0))
	b.Soft(7, []pb.Term{{Coef: -2, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 1)
	sol, err := b.Solve(core.Options{LowerBound: core.LBLPR})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != core.StatusOptimal {
		t.Fatalf("status=%v (relaxation must keep the instance feasible)", sol.Status)
	}
	if sol.Best != 7 || sol.Penalty != 7 {
		t.Fatalf("best=%d penalty=%d want 7/7", sol.Best, sol.Penalty)
	}
}

func TestSoftWeightValidation(t *testing.T) {
	b := NewBuilder(1)
	b.SoftClause(0, pb.PosLit(0))
	if _, err := b.Problem(); err == nil {
		t.Fatal("expected weight error")
	}
}

// Property: the compiled optimum equals the brute-force minimum of
// native cost + violated soft weight over all assignments.
func TestSoftAgainstDirectEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(272))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetCost(pb.Var(v), int64(rng.Intn(4)))
		}
		// A couple of hard clauses (kept satisfiable: positive literals).
		nHard := rng.Intn(3)
		var hards []softCons
		for i := 0; i < nHard; i++ {
			nt := 1 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: 1, Lit: pb.PosLit(pb.Var(rng.Intn(n)))}
			}
			b.Hard(terms, pb.GE, 1)
			hards = append(hards, softCons{terms: terms, cmp: pb.GE, rhs: 1})
		}
		// Random soft constraints with mixed signs and comparisons.
		nSoft := 1 + rng.Intn(4)
		var softs []softCons
		for i := 0; i < nSoft; i++ {
			nt := 1 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(rng.Intn(7) - 3),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
				if terms[k].Coef == 0 {
					terms[k].Coef = 1
				}
			}
			w := int64(1 + rng.Intn(6))
			cmp := pb.Cmp(rng.Intn(3))
			rhs := int64(rng.Intn(5) - 2)
			b.Soft(w, terms, cmp, rhs)
			softs = append(softs, softCons{weight: w, terms: terms, cmp: cmp, rhs: rhs})
		}
		sol, err := b.Solve(core.Options{LowerBound: core.LBLPR, MaxConflicts: 100000})
		if err != nil {
			t.Fatal(err)
		}
		// Direct enumeration over the original n variables.
		best := int64(1) << 40
		feasible := false
		for mask := 0; mask < 1<<n; mask++ {
			vals := make([]bool, n)
			for v := 0; v < n; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			ok := true
			for _, h := range hards {
				if !h.eval(vals) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			var cost int64
			for v := 0; v < n; v++ {
				if vals[v] {
					cost += int64FromBuilder(b, v)
				}
			}
			for _, sc := range softs {
				if !sc.eval(vals) {
					cost += sc.weight
				}
			}
			if cost < best {
				best = cost
			}
		}
		if !feasible {
			if sol.Status != core.StatusUnsat {
				t.Fatalf("iter %d: hard constraints unsat but solver says %v", iter, sol.Status)
			}
			continue
		}
		if sol.Status != core.StatusOptimal {
			t.Fatalf("iter %d: status=%v", iter, sol.Status)
		}
		if sol.Best != best {
			t.Fatalf("iter %d: best=%d want %d", iter, sol.Best, best)
		}
	}
}

// int64FromBuilder reads the native cost of original variable v (the
// builder's problem also holds relaxation variables beyond n).
func int64FromBuilder(b *Builder, v int) int64 {
	return b.prob.Cost[v]
}
