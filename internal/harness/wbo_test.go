package harness

import (
	"testing"

	"repro/internal/pb"
)

// TestWboFamilyMatrix runs the WBO family at test scale through the
// core-guided column, the mixed portfolio and a plain exact column: every
// cell must solve, and the three verdicts must agree with the brute-force
// optimum of the shared compilation.
func TestWboFamilyMatrix(t *testing.T) {
	insts, err := Instances([]Family{FamilyWbo}, Scale{WboVars: 7, PerFamily: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 {
		t.Fatalf("got %d instances, want 3", len(insts))
	}
	lim := Limits{MaxConflicts: 500000}
	for _, inst := range insts {
		if inst.WBO == nil {
			t.Fatalf("%s: missing WBO payload", inst.Name)
		}
		if inst.WBO.Offset != 0 {
			t.Fatalf("%s: generator produced nonzero offset %d — columns not comparable",
				inst.Name, inst.WBO.Offset)
		}
		want := pb.BruteForce(inst.Prob)
		if !want.Feasible {
			t.Fatalf("%s: compiled problem infeasible (relaxation bug)", inst.Name)
		}
		for _, id := range []SolverID{SolverCoreGuided, SolverPortfolioWbo, SolverMIS} {
			rr := Run(inst, id, lim)
			if rr.Err != "" {
				t.Fatalf("%s/%s: %s", inst.Name, id, rr.Err)
			}
			if !rr.Solved || rr.Best != want.Optimum {
				t.Fatalf("%s/%s: solved=%v best=%d want optimal/%d",
					inst.Name, id, rr.Solved, rr.Best, want.Optimum)
			}
		}
	}
}

// TestCoreGuidedColumnRefusesNonWboRows pins the guard: the core-guided
// columns are meaningless without the WBO payload and must fail the cell
// rather than silently solving nothing.
func TestCoreGuidedColumnRefusesNonWboRows(t *testing.T) {
	insts, err := Instances([]Family{FamilySynth}, Scale{SynthNodes: 6, PerFamily: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []SolverID{SolverCoreGuided, SolverPortfolioWbo} {
		rr := Run(insts[0], id, Limits{MaxConflicts: 1000})
		if rr.Err == "" || rr.Solved {
			t.Fatalf("%s on a non-wbo row: err=%q solved=%v want error cell", id, rr.Err, rr.Solved)
		}
	}
}
