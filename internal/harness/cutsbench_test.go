package harness

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/pb"
)

// lprGapInstance builds one instance of the synthetic LPR-gap family used by
// `make bench-cuts`: disjoint vertex-cover triangles (each an odd cycle whose
// LP relaxation sits at the half-integral 3/2 while the integer optimum is
// 2 — the canonical clique-cut gap) plus coefficient-heavy knapsack rows
// (3a+3b+2c >= 5) whose fractional vertices feed cover separation. The stock
// Table 1 families have near-tight LP relaxations at reproduction scale, so
// they cannot show what separation buys; this family has a real root gap by
// construction.
func lprGapInstance(nTri int, seed int64) *pb.Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 3 * nTri
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(3)))
	}
	for t := 0; t < nTri; t++ {
		a, b, c := pb.Var(3*t), pb.Var(3*t+1), pb.Var(3*t+2)
		for _, pr := range [][2]pb.Var{{a, b}, {b, c}, {a, c}} {
			_ = p.AddConstraint([]pb.Term{
				{Coef: 1, Lit: pb.PosLit(pr[0])},
				{Coef: 1, Lit: pb.PosLit(pr[1])},
			}, pb.GE, 1)
		}
	}
	for i := 0; i < nTri; i++ {
		terms := []pb.Term{
			{Coef: 3, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
			{Coef: 3, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
			{Coef: 2, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
		}
		_ = p.AddConstraint(terms, pb.GE, 5)
	}
	return p
}

// rootBound computes the root LPR bound of p, with or without a cut pool.
func rootBound(b *testing.B, p *pb.Problem, withCuts bool) int64 {
	b.Helper()
	e := engine.New(p)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		b.Fatal("unexpected root conflict in a generated instance")
	}
	red := bounds.Extract(e)
	est := bounds.LPR{}
	if withCuts {
		est.Cuts = cuts.NewPool(cuts.Config{})
	}
	res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, bounds.Budget{})
	if res.Failed || res.Incomplete {
		b.Fatal("root LPR estimate failed")
	}
	return res.Bound
}

func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// BenchmarkCutsSynth measures what cut separation buys on the synthetic
// LPR-gap family: the share of the root integrality gap closed by the
// separation fixpoint, and the median search effort (conflicts, nodes =
// decisions) to the proved optimum with cuts on vs off. Run via
// `make bench-cuts` with BENCHCOUNT>=6 and compare medians, never single
// runs.
func BenchmarkCutsSynth(b *testing.B) {
	const nTri, seeds = 16, 8
	for i := 0; i < b.N; i++ {
		var gapClosedPct float64
		var gapCells int
		var onConfl, offConfl, onNodes, offNodes []int64
		for seed := int64(0); seed < seeds; seed++ {
			p := lprGapInstance(nTri, seed)
			on := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 500000})
			off := core.Solve(p, core.Options{LowerBound: core.LBLPR, NoCuts: true, MaxConflicts: 500000})
			if on.Status != core.StatusOptimal || off.Status != core.StatusOptimal {
				b.Fatalf("seed %d: cell did not prove the optimum", seed)
			}
			if on.Best != off.Best {
				b.Fatalf("seed %d: cuts changed the optimum: %d vs %d", seed, on.Best, off.Best)
			}
			if on.Stats.Bounds.Cuts.Separated == 0 {
				b.Fatalf("seed %d: no cuts separated; the family no longer engages the pool", seed)
			}
			onConfl = append(onConfl, on.Stats.Conflicts+on.Stats.BoundConflicts)
			offConfl = append(offConfl, off.Stats.Conflicts+off.Stats.BoundConflicts)
			onNodes = append(onNodes, on.Stats.Decisions)
			offNodes = append(offNodes, off.Stats.Decisions)
			plain := rootBound(b, p, false)
			cut := rootBound(b, p, true)
			if gap := on.Best - plain; gap > 0 {
				gapCells++
				gapClosedPct += 100 * float64(cut-plain) / float64(gap)
			}
		}
		if gapCells > 0 {
			b.ReportMetric(gapClosedPct/float64(gapCells), "rootgap%")
		}
		b.ReportMetric(float64(median(onConfl)), "conflicts-cuts")
		b.ReportMetric(float64(median(offConfl)), "conflicts-nocuts")
		b.ReportMetric(float64(median(onNodes)), "nodes-cuts")
		b.ReportMetric(float64(median(offNodes)), "nodes-nocuts")
	}
}
