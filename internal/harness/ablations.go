package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/preprocess"
)

// AblationID names one of the DESIGN.md §4 ablation experiments.
type AblationID string

// The seven ablations (A1–A7).
const (
	AblationBoundConflicts AblationID = "A1-bound-conflicts"
	AblationLPBranching    AblationID = "A2-lp-branching"
	AblationKnapsack       AblationID = "A3-knapsack-cut"
	AblationCardInference  AblationID = "A4-card-inference"
	AblationLGRIterations  AblationID = "A5-lgr-convergence"
	AblationPreprocess     AblationID = "A6-preprocess"
	AblationLPRCuts        AblationID = "A7-lpr-cuts"
)

// Ablations lists all ablation ids in order.
func Ablations() []AblationID {
	return []AblationID{
		AblationBoundConflicts, AblationLPBranching, AblationKnapsack,
		AblationCardInference, AblationLGRIterations, AblationPreprocess,
		AblationLPRCuts,
	}
}

// AblationResult is one configuration's aggregate over the ablation suite.
type AblationResult struct {
	Ablation  AblationID
	Variant   string
	Solved    int
	Total     int
	Decisions int64
	Duration  time.Duration
}

// ablationVariant is one (variant label, solver options, preprocessing) cell.
type ablationVariant struct {
	name string
	opt  core.Options
	pre  bool
}

func ablationVariants(id AblationID) []ablationVariant {
	base := core.Options{LowerBound: core.LBLPR, CardinalityInference: true}
	switch id {
	case AblationBoundConflicts:
		chrono := base
		chrono.ChronologicalBounds = true
		return []ablationVariant{{"ncb", base, false}, {"chronological", chrono, false}}
	case AblationLPBranching:
		vsids := base
		vsids.NoLPBranching = true
		return []ablationVariant{{"lp-branching", base, false}, {"vsids-only", vsids, false}}
	case AblationKnapsack:
		noCut := base
		noCut.NoKnapsackCuts = true
		return []ablationVariant{{"knapsack-cut", base, false}, {"no-cut", noCut, false}}
	case AblationCardInference:
		on := core.Options{LowerBound: core.LBMIS, CardinalityInference: true}
		off := core.Options{LowerBound: core.LBMIS}
		return []ablationVariant{{"inference", on, false}, {"off", off, false}}
	case AblationLGRIterations:
		mk := func(iters int, cold bool) core.Options {
			return core.Options{LowerBound: core.LBLGR, CardinalityInference: true,
				LGRIterations: iters, LGRColdStart: cold}
		}
		return []ablationVariant{
			{"cold-10", mk(10, true), false},
			{"cold-50", mk(50, true), false},
			{"cold-200", mk(200, true), false},
			{"warm-10", mk(10, false), false},
			{"warm-50", mk(50, false), false},
		}
	case AblationPreprocess:
		return []ablationVariant{{"preprocess", base, true}, {"raw", base, false}}
	case AblationLPRCuts:
		noCuts := base
		noCuts.NoCuts = true
		return []ablationVariant{{"cuts", base, false}, {"no-cuts", noCuts, false}}
	default:
		return nil
	}
}

// RunAblation executes one ablation over the given instances with per-run
// budgets, returning one aggregate row per variant.
func RunAblation(id AblationID, insts []Instance, timeLimit time.Duration, maxConflicts int64) []AblationResult {
	var out []AblationResult
	for _, variant := range ablationVariants(id) {
		row := AblationResult{Ablation: id, Variant: variant.name}
		start := time.Now()
		for _, inst := range insts {
			prob := inst.Prob
			if variant.pre {
				if p2, info, err := preprocess.Apply(prob, preprocess.Options{
					Probing: true, Strengthening: true, Subsumption: true,
				}); err == nil && !info.ProvedUnsat {
					prob = p2
				}
			}
			opt := variant.opt
			opt.TimeLimit = timeLimit
			opt.MaxConflicts = maxConflicts
			res := core.Solve(prob, opt)
			row.Total++
			if res.Status == core.StatusOptimal || res.Status == core.StatusSatisfiable ||
				res.Status == core.StatusUnsat {
				row.Solved++
			}
			row.Decisions += res.Stats.Decisions
		}
		row.Duration = time.Since(start)
		out = append(out, row)
	}
	return out
}

// AblationInstances generates the default ablation suite (the optimization
// families at a reduced scale).
func AblationInstances(sc Scale) ([]Instance, error) {
	return Instances([]Family{FamilyGrout, FamilySynth, FamilyMcnc}, sc)
}

// FormatAblations renders ablation rows as an aligned table.
func FormatAblations(rows []AblationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-14s %8s %12s %10s\n",
		"ablation", "variant", "solved", "decisions", "time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %-14s %4d/%-3d %12d %10s\n",
			r.Ablation, r.Variant, r.Solved, r.Total, r.Decisions,
			r.Duration.Round(time.Millisecond))
	}
	return sb.String()
}
