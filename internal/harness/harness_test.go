package harness

import (
	"strings"
	"testing"
	"time"
)

func smallScale() Scale {
	return Scale{GroutNets: 4, SynthNodes: 6, McncInputs: 4, AccTeams: 4, PerFamily: 2}
}

func TestInstancesGenerate(t *testing.T) {
	insts, err := Instances(Families(), smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 8 {
		t.Fatalf("instances=%d want 8", len(insts))
	}
	for _, in := range insts {
		if err := in.Prob.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if in.Family == FamilyAcc && in.Prob.HasObjective() {
			t.Fatalf("%s: acc must have no objective", in.Name)
		}
		if in.Family != FamilyAcc && !in.Prob.HasObjective() {
			t.Fatalf("%s: optimization family without objective", in.Name)
		}
	}
}

func TestInstancesDeterministic(t *testing.T) {
	a, err := Instances([]Family{FamilyGrout}, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instances([]Family{FamilyGrout}, smallScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Prob.NumVars != b[i].Prob.NumVars ||
			len(a[i].Prob.Constraints) != len(b[i].Prob.Constraints) {
			t.Fatalf("instance %d not deterministic", i)
		}
	}
}

func TestRunMatrixSmall(t *testing.T) {
	insts, err := Instances(Families(), smallScale())
	if err != nil {
		t.Fatal(err)
	}
	lim := Limits{Time: 5 * time.Second, MaxConflicts: 100000, MilpNodes: 100000}
	results := RunMatrix(insts, Solvers(), lim)
	if len(results) != len(insts)*len(Solvers()) {
		t.Fatalf("results=%d", len(results))
	}
	// At this tiny scale everything must solve, and all solvers that solved
	// an instance must agree on the optimum.
	byInstance := map[string]int64{}
	for _, r := range results {
		if !r.Solved {
			t.Fatalf("%s/%s unsolved at tiny scale", r.Instance, r.Solver)
		}
		if r.Family == FamilyAcc {
			continue // satisfaction: no objective to compare
		}
		if prev, ok := byInstance[r.Instance]; ok {
			if prev != r.Best {
				t.Fatalf("%s: optimum disagreement %d vs %d (%s)", r.Instance, prev, r.Best, r.Solver)
			}
		} else {
			byInstance[r.Instance] = r.Best
		}
	}
}

func TestFormatTable(t *testing.T) {
	results := []RunResult{
		{Instance: "a", Solver: SolverPBS, Solved: true, Duration: 12 * time.Millisecond},
		{Instance: "a", Solver: SolverLPR, Solved: true, Duration: time.Second},
		{Instance: "b", Solver: SolverPBS, HasUB: true, Best: 42},
		{Instance: "b", Solver: SolverLPR, Solved: true, Duration: 100 * time.Microsecond},
	}
	out := FormatTable(results, []SolverID{SolverPBS, SolverLPR})
	if !strings.Contains(out, "ub 42") {
		t.Fatalf("missing ub entry:\n%s", out)
	}
	if !strings.Contains(out, "#Solved") {
		t.Fatalf("missing summary row:\n%s", out)
	}
	counts := SolvedCounts(results)
	if counts[SolverPBS] != 1 || counts[SolverLPR] != 2 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestFormatCSV(t *testing.T) {
	results := []RunResult{
		{Instance: "a", Family: FamilyGrout, Solver: SolverLPR, Solved: true, HasUB: true, Best: 7, Duration: 1500 * time.Microsecond},
		{Instance: "b", Family: FamilyAcc, Solver: SolverPBS},
	}
	out := FormatCSV(results)
	if !strings.Contains(out, "a,grout,lpr,true,7,1.50") {
		t.Fatalf("csv wrong:\n%s", out)
	}
	if !strings.Contains(out, "b,acc,pbs,false,,") {
		t.Fatalf("csv wrong:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Fatalf("lines=%d want 3 (header + 2 rows)", lines)
	}
}

func TestRunAblationSmall(t *testing.T) {
	insts, err := AblationInstances(Scale{GroutNets: 4, SynthNodes: 6, McncInputs: 4, PerFamily: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range Ablations() {
		rows := RunAblation(id, insts, 5*time.Second, 100000)
		if len(rows) < 2 {
			t.Fatalf("%s: %d variants", id, len(rows))
		}
		for _, r := range rows {
			if r.Total != len(insts) {
				t.Fatalf("%s/%s: total=%d want %d", id, r.Variant, r.Total, len(insts))
			}
			if r.Solved != r.Total {
				t.Fatalf("%s/%s: tiny suite must solve fully (%d/%d)", id, r.Variant, r.Solved, r.Total)
			}
		}
	}
	out := FormatAblations(RunAblation(AblationKnapsack, insts, 5*time.Second, 100000))
	if !strings.Contains(out, "knapsack-cut") || !strings.Contains(out, "no-cut") {
		t.Fatalf("format missing variants:\n%s", out)
	}
}

func TestSatFamilyAndLSColumns(t *testing.T) {
	insts, err := Instances([]Family{FamilySat}, Scale{SatNodes: 10, PerFamily: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances=%d want 2", len(insts))
	}
	for _, in := range insts {
		if err := in.Prob.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if !in.Prob.HasObjective() {
			t.Fatalf("%s: sat family is an optimization family", in.Name)
		}
	}
	// Note the short clock: a standalone UB-only worker has nothing to prove
	// and therefore always runs out its budget.
	lim := Limits{Time: time.Second, MaxConflicts: 50000}
	solvers := []SolverID{SolverLPR, SolverLS, SolverPortfolioLS}
	results := RunMatrix(insts, solvers, lim)
	opt := map[string]int64{}
	for _, r := range results {
		if r.Solver == SolverLPR {
			if !r.Solved {
				t.Fatalf("%s/lpr unsolved at tiny scale", r.Instance)
			}
			opt[r.Instance] = r.Best
		}
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s/%s: %s", r.Instance, r.Solver, r.Err)
		}
		switch r.Solver {
		case SolverLS:
			// UB-only: never "solved" on an optimization instance, but the
			// tiny always-feasible instances must yield an incumbent, and it
			// must never undercut the exact optimum.
			if r.Solved {
				t.Fatalf("%s/ls claims solved on an optimization instance", r.Instance)
			}
			if !r.HasUB {
				t.Fatalf("%s/ls found no incumbent on a feasible instance", r.Instance)
			}
			if r.Best < opt[r.Instance] {
				t.Fatalf("%s/ls incumbent %d undercuts optimum %d", r.Instance, r.Best, opt[r.Instance])
			}
			if r.Flips == 0 {
				t.Fatalf("%s/ls reports zero flips", r.Instance)
			}
			if r.FirstIncumbent <= 0 {
				t.Fatalf("%s/ls has an incumbent but no first-incumbent stamp", r.Instance)
			}
		case SolverPortfolioLS:
			if !r.Solved || r.Best != opt[r.Instance] {
				t.Fatalf("%s/portfolio-ls: solved=%t best=%d want optimum %d",
					r.Instance, r.Solved, r.Best, opt[r.Instance])
			}
			if r.Members != 5 {
				t.Fatalf("%s/portfolio-ls: members=%d want 5", r.Instance, r.Members)
			}
			if r.FirstIncumbent <= 0 {
				t.Fatalf("%s/portfolio-ls solved but has no first-incumbent stamp", r.Instance)
			}
		}
	}
	// The new CSV columns round-trip: an ls row carries ttfiMs and flips.
	csv := FormatCSV(results)
	if !strings.Contains(csv, ",ttfiMs,flips\n") {
		t.Fatalf("csv header missing incumbent-latency columns:\n%s", csv)
	}
	for _, r := range results {
		row := r.BenchRow()
		if time.Duration(r.FirstIncumbent) > 0 && row.TtfiMs <= 0 {
			t.Fatalf("%s/%s: BenchRow dropped ttfi", r.Instance, r.Solver)
		}
		if row.Flips != r.Flips {
			t.Fatalf("%s/%s: BenchRow flips=%d want %d", r.Instance, r.Solver, row.Flips, r.Flips)
		}
	}
}
