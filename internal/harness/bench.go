package harness

import (
	"time"

	"repro/internal/obs"
)

// BenchRow converts one table cell into the versioned bench-snapshot schema
// (obs.BenchSnapshot / BENCH_<family>_<date>.json). The conversion lives
// here so obs stays a stdlib-only leaf.
func (r *RunResult) BenchRow() obs.BenchRow {
	row := obs.BenchRow{
		Instance:    r.Instance,
		Family:      string(r.Family),
		Solver:      string(r.Solver),
		Solved:      r.Solved,
		WallMs:      ms(r.Duration),
		Err:         r.Err,
		Conflicts:   r.Conflicts,
		Decisions:   r.Decisions,
		BoundCalls:  r.BoundCalls(),
		BoundMs:     ms(r.BoundTime()),
		LPWarm:      r.Bounds.WarmSolves,
		LPCold:      r.Bounds.ColdSolves,
		FixedVars:   r.FixedVars,
		PropsPerSec: r.PropsPerSec(),
		CutsSep:     r.Bounds.Cuts.Separated,
		CutsActive:  r.Bounds.Cuts.Active,
		CutsPruned:  r.Bounds.Cuts.Pruned,
		Members:     r.Members,
		ShPub:       r.ShClausesPub,
		ShImp:       r.ShClausesImp,
		ShPrunes:    r.ShForeignPrunes,
		TtfiMs:      ms(r.FirstIncumbent),
		Flips:       r.Flips,
	}
	if r.HasUB {
		b := r.Best
		row.Best = &b
	}
	return row
}

// BenchSnapshot folds a matrix run into one versioned snapshot document:
// the families and wall-clock limit that produced it, plus one BenchRow per
// (instance, solver) cell in run order. meta carries free-form run labels
// (scale, host, flags); limit is the per-cell wall-clock budget.
func BenchSnapshot(results []RunResult, families []Family, limit time.Duration, meta map[string]string) *obs.BenchSnapshot {
	fams := make([]string, len(families))
	for i, f := range families {
		fams[i] = string(f)
	}
	snap := obs.NewBenchSnapshot(fams, ms(limit))
	snap.Meta = meta
	snap.Rows = make([]obs.BenchRow, len(results))
	for i := range results {
		snap.Rows[i] = results[i].BenchRow()
	}
	return snap
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
