// Package harness assembles the paper's Table 1: it generates the four
// benchmark families at a reproducible scale, runs the seven solver columns
// (pbs, galena, the MILP stand-in, and bsolo with plain/MIS/LGR/LPR lower
// bounding), and formats the results in the paper's layout, including "ub"
// entries for budget-exhausted runs and the #Solved summary row.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ls"
	"repro/internal/milp"
	"repro/internal/pb"
	"repro/internal/portfolio"
	"repro/internal/preprocess"
	"repro/internal/soft"
	"repro/internal/wbo"
)

// Family identifies a Table 1 benchmark family.
type Family string

// The four families of Table 1.
const (
	FamilyGrout Family = "grout" // FPGA routing [2]
	FamilySynth Family = "synth" // mixed PTL/CMOS synthesis [18]
	FamilyMcnc  Family = "mcnc"  // MCNC two-level minimization [17]
	FamilyAcc   Family = "acc"   // scheduling satisfaction [16]
)

// FamilySat (beyond Table 1) is a satisfiable synthesis family sized so that
// finding *any* feasible assignment takes the B&B columns a while: buffered
// incompatibilities keep every instance feasible while the larger node count
// pushes the first incumbent deep into the search. It exists for the
// local-search columns (time-to-first-incumbent benchmarks, make bench-ls)
// and is not part of Families() — select it explicitly (pbbench -family sat).
const FamilySat Family = "sat"

// FamilyWbo (beyond Table 1) is a Weighted Boolean Optimization family:
// a feasible hard clause skeleton plus weighted soft constraints of mixed
// shapes (clauses, PB inequalities, equalities). It exists for the
// core-guided columns (make bench-wbo) and is not part of Families() —
// select it explicitly (pbbench -family wbo). Its instances carry the WBO
// payload alongside the soft-relaxed compilation, so both the core-guided
// and the branch-and-bound columns run on the same problem.
const FamilyWbo Family = "wbo"

// Families lists all families in Table 1 order.
func Families() []Family {
	return []Family{FamilyGrout, FamilySynth, FamilyMcnc, FamilyAcc}
}

// Instance is one benchmark row.
type Instance struct {
	Name   string
	Family Family
	Prob   *pb.Problem
	// WBO is the Weighted Boolean Optimization payload of a FamilyWbo row
	// (nil otherwise). Prob is its Builder() compilation, so the exact
	// columns and the core-guided columns report comparable incumbents
	// (the generator keeps Offset at 0).
	WBO *wbo.Instance
}

// Scale adjusts instance sizes: 1 is the default reproduction scale
// (seconds per solver column); smaller values shrink instances for tests.
type Scale struct {
	// GroutNets, SynthNodes, McncInputs, AccTeams, SatNodes override the
	// per-family size knobs when nonzero.
	GroutNets  int
	SynthNodes int
	McncInputs int
	AccTeams   int
	SatNodes   int
	WboVars    int
	// PerFamily is the number of instances per family (default 10, as in
	// Table 1).
	PerFamily int
}

// DefaultScale returns the reproduction-scale configuration.
func DefaultScale() Scale {
	return Scale{GroutNets: 22, SynthNodes: 36, McncInputs: 8, AccTeams: 12, SatNodes: 420, WboVars: 24, PerFamily: 10}
}

// Instances generates the benchmark suite for the given families.
func Instances(families []Family, sc Scale) ([]Instance, error) {
	if sc.PerFamily == 0 {
		sc.PerFamily = 10
	}
	d := DefaultScale()
	if sc.GroutNets == 0 {
		sc.GroutNets = d.GroutNets
	}
	if sc.SynthNodes == 0 {
		sc.SynthNodes = d.SynthNodes
	}
	if sc.McncInputs == 0 {
		sc.McncInputs = d.McncInputs
	}
	if sc.AccTeams == 0 {
		sc.AccTeams = d.AccTeams
	}
	if sc.SatNodes == 0 {
		sc.SatNodes = d.SatNodes
	}
	if sc.WboVars == 0 {
		sc.WboVars = d.WboVars
	}
	var out []Instance
	for _, fam := range families {
		for k := 0; k < sc.PerFamily; k++ {
			seed := int64(1000*k + 7)
			var p *pb.Problem
			var err error
			var name string
			var wi *wbo.Instance
			switch fam {
			case FamilyGrout:
				// Net count ramps across the family (like the paper's
				// grout-4-3-1..10 mix of easy and hard rows). Capacity 2
				// forces congestion detours: the per-net one-hot rows alone
				// (all MIS can use) under-estimate the cost, while the LP
				// relaxation sees the capacity interaction.
				nets := sc.GroutNets - 6 + (k*12)/sc.PerFamily
				if nets < 4 {
					nets = 4
				}
				name = fmt.Sprintf("grout-%d-%d", nets, k+1)
				p, err = gen.Grout(gen.GroutConfig{
					Width: 5, Height: 5,
					Nets:        nets,
					PathsPerNet: 6,
					Capacity:    2,
					Seed:        seed,
				})
			case FamilySynth:
				// High incompatibility drives the optimum above the sum of
				// per-node minima — the regime where lower bound quality
				// dominates (the paper's synthesis rows). Node count ramps
				// mildly across the family.
				nodes := sc.SynthNodes - 4 + k
				if nodes < 4 {
					nodes = 4
				}
				name = fmt.Sprintf("synth-%d-%d", nodes, k+1)
				p, err = gen.Synthesis(gen.SynthesisConfig{
					Nodes:    nodes,
					Impls:    4,
					Fanout:   2.0,
					Incompat: 0.5,
					Seed:     seed,
				})
			case FamilyMcnc:
				// Input count ramps: the first rows are mid-size, the later
				// rows larger; the last is deliberately out of reach for
				// every solver (the paper's alu4.b / e64.b rows).
				inputs := sc.McncInputs
				switch {
				case sc.McncInputs >= 8 && k >= sc.PerFamily-1:
					inputs = sc.McncInputs + 2
				case sc.McncInputs >= 8 && k >= sc.PerFamily/2:
					inputs = sc.McncInputs + 1
				}
				name = fmt.Sprintf("mcnc-%d-%d", inputs, k+1)
				p, err = gen.MinCover(gen.MinCoverConfig{
					Inputs:    inputs,
					OnDensity: 0.3,
					DcDensity: 0.1,
					Seed:      seed,
				})
			case FamilySat:
				// Always feasible (planted witness), but a dense random core
				// near the satisfiability threshold: a branch-and-bound dive
				// cannot reach a feasible leaf by propagation alone and
				// conflicts its way toward the first incumbent, while local
				// search walks to one quickly — the regime the LS columns
				// are measured in. SatNodes is the variable count.
				vars := sc.SatNodes - 10 + 5*k
				if vars < 12 {
					vars = 12
				}
				name = fmt.Sprintf("sat-%d-%d", vars, k+1)
				p, err = gen.Planted(gen.PlantedConfig{
					Vars: vars,
					Seed: seed,
				})
			case FamilyWbo:
				// Variable count ramps across the family; soft density and
				// the weight range stay fixed so the rows differ in search
				// depth, not in character. The compiled problem is the
				// Builder() relaxation of the SAME instance the core-guided
				// columns solve — both report comparable incumbents.
				vars := sc.WboVars - 4 + k
				if vars < 6 {
					vars = 6
				}
				name = fmt.Sprintf("wbo-%d-%d", vars, k+1)
				wi, err = gen.WBO(gen.WBOConfig{Vars: vars, Seed: seed})
				if err == nil {
					var b *soft.Builder
					if b, err = wi.Builder(); err == nil {
						p, err = b.Problem()
					}
				}
			case FamilyAcc:
				name = fmt.Sprintf("acc-tight-%d-%d", sc.AccTeams, k+1)
				p, err = gen.ACC(gen.ACCConfig{
					Teams:            sc.AccTeams,
					FixedMatches:     2 + k%4,
					ForbiddenMatches: 6 + 2*k,
					Seed:             seed,
				})
			default:
				return nil, fmt.Errorf("harness: unknown family %q", fam)
			}
			if err != nil {
				return nil, fmt.Errorf("harness: generating %s: %w", name, err)
			}
			out = append(out, Instance{Name: name, Family: fam, Prob: p, WBO: wi})
		}
	}
	return out, nil
}

// SolverID names a Table 1 solver column.
type SolverID string

// The seven Table 1 columns.
const (
	SolverPBS    SolverID = "pbs"
	SolverGalena SolverID = "galena"
	SolverMILP   SolverID = "milp" // the paper's cplex column
	SolverPlain  SolverID = "plain"
	SolverMIS    SolverID = "mis"
	SolverLGR    SolverID = "lgr"
	SolverLPR    SolverID = "lpr"
)

// The portfolio columns (beyond Table 1): the cooperative four-member race
// and its sharing-ablated twin. Not part of Solvers() — select explicitly
// (pbbench -solvers portfolio,portfolio-iso).
const (
	// SolverPortfolio races the four bsolo members cooperatively (shared
	// incumbents + clause exchange; see internal/share).
	SolverPortfolio SolverID = "portfolio"
	// SolverPortfolioIso is the same race with sharing disconnected — the
	// isolated baseline the sharing columns are compared against.
	SolverPortfolioIso SolverID = "portfolio-iso"
	// SolverLS runs the stochastic local-search worker alone (internal/ls).
	// UB-only: the cell can report an incumbent (and SAT on objective-free
	// instances) but never proves optimality or infeasibility.
	SolverLS SolverID = "ls"
	// SolverPortfolioLS is the cooperative race extended with one LS member:
	// the mixed portfolio the first-incumbent benchmarks (make bench-ls)
	// compare against SolverPortfolio.
	SolverPortfolioLS SolverID = "portfolio-ls"
	// SolverCoreGuided runs the core-guided WBO loop alone (internal/wbo).
	// Valid only on FamilyWbo rows (the cell needs the WBO payload).
	SolverCoreGuided SolverID = "core-guided"
	// SolverPortfolioWbo is the cooperative race extended with one
	// core-guided member: the mixed portfolio the WBO benchmarks
	// (make bench-wbo) compare against SolverPortfolio. FamilyWbo only.
	SolverPortfolioWbo SolverID = "portfolio-wbo"
)

// Solvers lists the columns in Table 1 order.
func Solvers() []SolverID {
	return []SolverID{SolverPBS, SolverGalena, SolverMILP, SolverPlain, SolverMIS, SolverLGR, SolverLPR}
}

// Limits bounds each solver run.
type Limits struct {
	Time         time.Duration
	MaxConflicts int64
	MilpNodes    int64
	// NoIncrementalReduce / NoWarmLP run the bsolo columns with the
	// incremental bound pipeline disabled (ablation; see core.Options).
	NoIncrementalReduce bool
	NoWarmLP            bool
	// NoCuts disables LPR cutting-plane separation; CutRounds / CutMaxPool
	// override the separation fixpoint cap and pool capacity (0 = defaults).
	NoCuts     bool
	CutRounds  int
	CutMaxPool int
	// Presolve runs preprocess.FixVariables on each instance before the
	// solver (all columns): variables fixed at the root are eliminated and
	// the solver sees the reduced, renumbered problem. Incumbents stay
	// comparable — the reduced CostOffset absorbs fixed-true costs. The
	// presolve time counts toward the cell's wall clock.
	Presolve bool
}

// RunResult is one cell of the table.
type RunResult struct {
	Instance string
	Family   Family
	Solver   SolverID
	Solved   bool // proved optimal (or SAT for satisfaction instances)
	HasUB    bool
	Best     int64 // incumbent (upper bound when !Solved)
	Duration time.Duration
	// Err is non-empty when the solver crashed (recovered panic) or ended
	// in core.StatusError; the cell renders as "crash" and never counts as
	// solved. One crashing column must not abort a whole table run.
	Err string
	// Bounds is the bound-pipeline profile of the run (bsolo columns only:
	// reduction mode/cost, per-estimator call/time aggregates, LP warm-start
	// counters). Zero for the baselines and the MILP column.
	Bounds bounds.Stats
	// Conflicts / Decisions measure search effort: BCP + bound conflicts and
	// decisions (summed across members for the portfolio columns; zero for
	// the MILP column). The sharing benchmarks compare these between the
	// cooperative and isolated portfolio columns.
	Conflicts int64
	Decisions int64
	// FixedVars counts the variables presolve eliminated before the run
	// (0 unless Limits.Presolve).
	FixedVars int
	// Propagations counts engine propagation steps (bsolo columns; summed
	// across members for the portfolio columns). PropsPerSec derives the
	// node-throughput rate the data-oriented engine work is gated on.
	Propagations int64
	// Members is the member count of a portfolio run (0 for single solvers);
	// Winner names the member that produced the verdict.
	Members int
	Winner  string
	// Sharing counters of a cooperative portfolio run: clauses accepted into
	// the exchange, clauses imported into member engines, and nodes pruned
	// while a foreign incumbent was in force. All zero for single solvers
	// and for portfolio-iso.
	ShClausesPub    int64
	ShClausesImp    int64
	ShForeignPrunes int64
	// FirstIncumbent is the wall-clock from run start to the first incumbent
	// reported by any member (0 = no incumbent was ever reported). The LS
	// benchmarks (make bench-ls) compare this column between the mixed and
	// the B&B-only portfolios.
	FirstIncumbent time.Duration
	// Flips counts local-search flips (ls column; summed across members for
	// the mixed portfolio; 0 for the exact columns).
	Flips int64
}

// PropsPerSec returns the propagation rate of the run (0 when unmeasured).
func (r *RunResult) PropsPerSec() float64 {
	if r.Duration <= 0 || r.Propagations == 0 {
		return 0
	}
	return float64(r.Propagations) / r.Duration.Seconds()
}

// BoundCalls returns the total estimation calls of the run.
func (r *RunResult) BoundCalls() int64 { return r.Bounds.TotalCalls() }

// BoundTime returns the wall-clock the run spent in the bound pipeline
// (reduction + estimation).
func (r *RunResult) BoundTime() time.Duration { return r.Bounds.TotalTime() }

// Run executes one solver on one instance. The solver runs behind a panic
// barrier: a crash is reported in RunResult.Err instead of tearing down the
// matrix run.
func Run(inst Instance, id SolverID, lim Limits) RunResult {
	start := time.Now()
	rr := RunResult{Instance: inst.Name, Family: inst.Family, Solver: id}
	bl := baseline.Limits{TimeLimit: lim.Time, MaxConflicts: lim.MaxConflicts,
		NoIncrementalReduce: lim.NoIncrementalReduce, NoWarmLP: lim.NoWarmLP,
		NoCuts: lim.NoCuts, CutRounds: lim.CutRounds, CutMaxPool: lim.CutMaxPool}
	// Time-to-first-incumbent capture: any member (B&B or LS) reporting its
	// first incumbent stamps the wall-clock once. Concurrent members race on
	// the stamp, hence the CAS; presolve time counts (it is part of the cell).
	var firstInc atomic.Int64 // ns since start; 0 = none yet
	noteInc := func(int64) {
		ns := int64(time.Since(start))
		if ns < 1 {
			ns = 1
		}
		firstInc.CompareAndSwap(0, ns)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rr.Solved, rr.HasUB = false, false
				rr.Err = fmt.Sprintf("panic: %v", r)
			}
		}()
		prob := inst.Prob
		if lim.Presolve {
			fx, err := preprocess.FixVariables(prob, preprocess.DefaultFixOptions)
			if err != nil {
				rr.Err = "presolve: " + err.Error()
				return
			}
			prob = fx.Problem
			rr.FixedVars = fx.NumFixed()
		}
		switch id {
		case SolverPBS:
			fill(&rr, baseline.PBS(prob, bl))
		case SolverGalena:
			fill(&rr, baseline.Galena(prob, bl))
		case SolverMILP:
			nodes := lim.MilpNodes
			if nodes == 0 {
				nodes = 2_000_000
			}
			m := milp.Solve(prob, milp.Options{TimeLimit: lim.Time, MaxNodes: nodes})
			rr.Solved = m.Status == milp.StatusOptimal || m.Status == milp.StatusInfeasible
			rr.HasUB = m.HasSolution
			rr.Best = m.Best
		case SolverPlain:
			fill(&rr, baseline.Bsolo(prob, core.LBNone, bl))
		case SolverMIS:
			fill(&rr, baseline.Bsolo(prob, core.LBMIS, bl))
		case SolverLGR:
			fill(&rr, baseline.Bsolo(prob, core.LBLGR, bl))
		case SolverLPR:
			fill(&rr, baseline.Bsolo(prob, core.LBLPR, bl))
		case SolverPortfolio:
			fillPortfolio(&rr, runPortfolio(prob, lim, false, false, noteInc))
		case SolverPortfolioIso:
			fillPortfolio(&rr, runPortfolio(prob, lim, true, false, noteInc))
		case SolverPortfolioLS:
			fillPortfolio(&rr, runPortfolio(prob, lim, false, true, noteInc))
		case SolverCoreGuided:
			if inst.WBO == nil {
				rr.Err = "core-guided requires a wbo-family instance"
				return
			}
			fillWBO(&rr, wbo.Solve(inst.WBO, wbo.Options{
				TimeLimit: lim.Time, MaxConflicts: lim.MaxConflicts}))
		case SolverPortfolioWbo:
			if inst.WBO == nil {
				rr.Err = "portfolio-wbo requires a wbo-family instance"
				return
			}
			// The mixed race pairs the core-guided member with the exact
			// members on the ORIGINAL compilation: presolve would renumber
			// the compiled problem away from the WBO instance's extended
			// space and break the witness mapping.
			fillPortfolio(&rr, runPortfolioWbo(inst, lim, noteInc))
		case SolverLS:
			fillLS(&rr, ls.Solve(prob, ls.Options{
				Seed:        1,
				TimeLimit:   lim.Time,
				MaxFlips:    lsFlipBudget(lim),
				OnIncumbent: noteInc,
			}))
		}
	}()
	rr.Duration = time.Since(start)
	rr.FirstIncumbent = time.Duration(firstInc.Load())
	// Enforce the wall-clock budget strictly (the paper's 1h cutoff): a
	// solver that only finished after the deadline does not count as
	// having solved the instance within it.
	if lim.Time > 0 && rr.Duration > lim.Time+lim.Time/10 && rr.Solved {
		rr.Solved = false
	}
	return rr
}

func fill(rr *RunResult, res core.Result) {
	rr.Solved = res.Status == core.StatusOptimal ||
		res.Status == core.StatusSatisfiable ||
		res.Status == core.StatusUnsat
	rr.HasUB = res.HasSolution
	rr.Best = res.Best
	rr.Bounds = res.Stats.Bounds
	rr.Conflicts = res.Stats.Conflicts + res.Stats.BoundConflicts
	rr.Decisions = res.Stats.Decisions
	rr.Propagations = res.Stats.Propagations
	if res.Status == core.StatusError {
		rr.Solved, rr.HasUB = false, false
		if res.Err != nil {
			rr.Err = res.Err.Error()
		} else {
			rr.Err = "error"
		}
	}
}

// runPortfolio runs the default four-member race under the harness limits,
// cooperatively or isolated; withLS appends one UB-only local-search member
// (the portfolio-ls column). noteInc receives every member's incumbent
// reports for the FirstIncumbent column.
func runPortfolio(p *pb.Problem, lim Limits, isolated, withLS bool, noteInc func(int64)) portfolio.Result {
	configs := portfolio.DefaultConfigs()
	for i := range configs {
		configs[i].Options.TimeLimit = lim.Time
		configs[i].Options.MaxConflicts = lim.MaxConflicts
		configs[i].Options.NoIncrementalReduce = lim.NoIncrementalReduce
		configs[i].Options.NoWarmLP = lim.NoWarmLP
		configs[i].Options.NoCuts = lim.NoCuts
		configs[i].Options.CutRounds = lim.CutRounds
		configs[i].Options.CutMaxPool = lim.CutMaxPool
		configs[i].Options.OnIncumbent = noteInc
	}
	if withLS {
		cfg := portfolio.LSConfig("ls", 101, lsFlipBudget(lim))
		cfg.LS.TimeLimit = lim.Time
		cfg.LS.OnIncumbent = noteInc
		// The LS member goes FIRST: with spare cores the order is
		// irrelevant (everyone races concurrently), but when members are
		// serialized (MaxConcurrent or GOMAXPROCS caps, single-core CI) the
		// UB-only worker must run before the exact members so its incumbent
		// is already on the board warming their pruning — the reverse order
		// would delay the first incumbent to the very end of the race.
		configs = append([]portfolio.Config{cfg}, configs...)
	}
	return portfolio.SolveOpts(p, configs, portfolio.Options{NoSharing: isolated})
}

// runPortfolioWbo runs the default four-member race plus one core-guided
// member on a FamilyWbo instance. The race operates on the instance's
// Builder() compilation (inst.Prob), which is exactly the space the
// core-guided member's ExtendedWitness maps into.
func runPortfolioWbo(inst Instance, lim Limits, noteInc func(int64)) portfolio.Result {
	configs := portfolio.DefaultConfigs()
	for i := range configs {
		configs[i].Options.TimeLimit = lim.Time
		configs[i].Options.MaxConflicts = lim.MaxConflicts
		configs[i].Options.NoIncrementalReduce = lim.NoIncrementalReduce
		configs[i].Options.NoWarmLP = lim.NoWarmLP
		configs[i].Options.NoCuts = lim.NoCuts
		configs[i].Options.CutRounds = lim.CutRounds
		configs[i].Options.CutMaxPool = lim.CutMaxPool
		configs[i].Options.OnIncumbent = noteInc
	}
	cg := portfolio.Config{CoreGuided: &portfolio.CoreGuided{
		Instance: inst.WBO,
		Options:  wbo.Options{TimeLimit: lim.Time, MaxConflicts: lim.MaxConflicts},
	}}
	configs = append([]portfolio.Config{cg}, configs...)
	// Core-guided must genuinely race the exact members, not replace them:
	// on a single-CPU box the default concurrency (GOMAXPROCS) serializes
	// the members, and whichever strategy happens to run first would
	// monopolize the cell. A floor of two keeps the core-guided member and
	// at least one B&B member timesharing, so the faster strategy wins the
	// row either way.
	conc := runtime.GOMAXPROCS(0)
	if conc < 2 {
		conc = 2
	}
	return portfolio.SolveOpts(inst.Prob, configs, portfolio.Options{MaxConcurrent: conc})
}

// fillWBO maps a core-guided outcome onto the table cell. Optimal and
// hard-UNSAT verdicts both count as solved — the core-guided loop is a
// complete method, unlike the UB-only LS column.
func fillWBO(rr *RunResult, res wbo.Result) {
	rr.Solved = res.Status == core.StatusOptimal || res.Status == core.StatusUnsat
	rr.HasUB = res.HasSolution
	rr.Best = res.Best
	rr.Conflicts = res.Conflicts
	if res.Status == core.StatusError {
		rr.Solved, rr.HasUB = false, false
		if res.Err != nil {
			rr.Err = res.Err.Error()
		} else {
			rr.Err = "error"
		}
	}
}

// lsFlipBudget bounds a local-search member when the cell has no wall-clock
// limit: LS has no conflict budget of its own, so the B&B conflict limit is
// scaled into a flip limit (flips are far cheaper than conflicts). With a
// time limit the clock governs and flips stay unlimited.
func lsFlipBudget(lim Limits) int64 {
	if lim.Time > 0 || lim.MaxConflicts == 0 {
		return 0
	}
	return 256 * lim.MaxConflicts
}

// fillLS maps a standalone local-search outcome onto the table cell. LS is
// UB-only: the cell counts as solved only for the verified SAT witness on an
// objective-free instance, never for optimality or infeasibility.
func fillLS(rr *RunResult, res ls.Result) {
	rr.Solved = res.Satisfiable
	rr.HasUB = res.HasSolution
	rr.Best = res.Best
	rr.Flips = res.Stats.Flips
	if res.Err != nil {
		rr.Solved, rr.HasUB = false, false
		rr.Err = res.Err.Error()
	}
}

// fillPortfolio maps a portfolio outcome onto the table cell: the verdict and
// incumbent come from the race result, the effort counters are summed across
// every member, and the sharing columns aggregate the member-side counters
// plus the board's accepted-clause total.
func fillPortfolio(rr *RunResult, res portfolio.Result) {
	fill(rr, res.Result)
	rr.Winner = res.Winner
	rr.Members = len(res.Members)
	rr.Conflicts = res.TotalConflicts()
	rr.Decisions = res.TotalDecisions()
	rr.ShClausesPub = res.Board.ClausesPublished
	rr.Propagations = 0
	for _, m := range res.Members {
		rr.ShClausesImp += m.Stats.ImportedClauses
		rr.ShForeignPrunes += m.Stats.Sharing.ForeignUBPrunes
		rr.Propagations += m.Stats.Propagations
		rr.Flips += m.Stats.Flips
	}
}

// RunMatrix runs every solver on every instance.
func RunMatrix(insts []Instance, solvers []SolverID, lim Limits) []RunResult {
	var out []RunResult
	for _, inst := range insts {
		for _, id := range solvers {
			out = append(out, Run(inst, id, lim))
		}
	}
	return out
}

// FormatTable renders results in the paper's Table 1 layout: one row per
// instance, one column per solver; solved cells show the time, unsolved
// cells show "ub <value>" (or "—" with no incumbent), and a #Solved summary
// row closes the table.
func FormatTable(results []RunResult, solvers []SolverID) string {
	byInstance := map[string]map[SolverID]RunResult{}
	var order []string
	for _, r := range results {
		m, ok := byInstance[r.Instance]
		if !ok {
			m = map[SolverID]RunResult{}
			byInstance[r.Instance] = m
			order = append(order, r.Instance)
		}
		m[r.Solver] = r
	}
	sort.Strings(order)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s", "Benchmark")
	for _, s := range solvers {
		fmt.Fprintf(&sb, " %12s", s)
	}
	sb.WriteByte('\n')
	solved := map[SolverID]int{}
	for _, name := range order {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, s := range solvers {
			r, ok := byInstance[name][s]
			switch {
			case !ok:
				fmt.Fprintf(&sb, " %12s", "-")
			case r.Solved:
				solved[s]++
				fmt.Fprintf(&sb, " %12s", fmtDur(r.Duration))
			case r.Err != "":
				fmt.Fprintf(&sb, " %12s", "crash")
			case r.HasUB:
				fmt.Fprintf(&sb, " %12s", fmt.Sprintf("ub %d", r.Best))
			default:
				fmt.Fprintf(&sb, " %12s", "time")
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-18s", "#Solved")
	for _, s := range solvers {
		fmt.Fprintf(&sb, " %12d", solved[s])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// SolvedCounts aggregates the #Solved row.
func SolvedCounts(results []RunResult) map[SolverID]int {
	out := map[SolverID]int{}
	for _, r := range results {
		if r.Solved {
			out[r.Solver]++
		}
	}
	return out
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FormatCSV renders results machine-readably: one line per (instance,
// solver) cell with status, incumbent, wall time in milliseconds, the
// bound-pipeline profile (estimation calls, milliseconds spent estimating,
// LP warm/cold solve counts — zero for the non-bsolo columns), the search
// effort (conflicts, decisions — summed across members for the portfolio
// columns), the cut-pool counters (cuts separated/live/evicted — zero unless
// the LPR column ran with cuts), the sharing counters (members, clauses
// published/imported, foreign-UB prunes — zero outside the cooperative
// portfolio column), and the incumbent-latency columns (ttfiMs: wall-clock
// milliseconds to the first incumbent any member reported, empty when none;
// flips: local-search flips, zero for the exact columns).
func FormatCSV(results []RunResult) string {
	var sb strings.Builder
	sb.WriteString("instance,family,solver,solved,best,ms,boundCalls,boundMs,lpWarm,lpCold," +
		"cutsSep,cutsActive,cutsPruned," +
		"conflicts,decisions,fixedVars,propsPerSec,members,shPub,shImp,shPrunes,ttfiMs,flips\n")
	for _, r := range results {
		best := ""
		if r.HasUB {
			best = fmt.Sprint(r.Best)
		}
		ttfi := ""
		if r.FirstIncumbent > 0 {
			ttfi = fmt.Sprintf("%.2f", float64(r.FirstIncumbent.Microseconds())/1000)
		}
		fmt.Fprintf(&sb, "%s,%s,%s,%t,%s,%.2f,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%d,%d,%d,%d,%s,%d\n",
			r.Instance, r.Family, r.Solver, r.Solved, best,
			float64(r.Duration.Microseconds())/1000,
			r.BoundCalls(), float64(r.BoundTime().Microseconds())/1000,
			r.Bounds.WarmSolves, r.Bounds.ColdSolves,
			r.Bounds.Cuts.Separated, r.Bounds.Cuts.Active, r.Bounds.Cuts.Pruned,
			r.Conflicts, r.Decisions,
			r.FixedVars, r.PropsPerSec(),
			r.Members, r.ShClausesPub, r.ShClausesImp, r.ShForeignPrunes,
			ttfi, r.Flips)
	}
	return sb.String()
}

// FormatBoundProfile renders the bound-pipeline timing columns aggregated
// per solver: estimator call volume, mean per-call cost, total share of the
// run, and the LP warm-start ratio where applicable. Rows for solvers that
// never estimated a bound (pbs, galena, milp, plain) are omitted.
func FormatBoundProfile(results []RunResult) string {
	type agg struct {
		calls, warm, cold, fallbacks, incomplete, failed int64
		time, wall                                       time.Duration
		reduces                                          int64
		reduceTime                                       time.Duration
	}
	bysolver := map[SolverID]*agg{}
	var order []SolverID
	for _, r := range results {
		if r.Bounds.TotalCalls() == 0 && r.Bounds.Reduces == 0 {
			continue
		}
		a, ok := bysolver[r.Solver]
		if !ok {
			a = &agg{}
			bysolver[r.Solver] = a
			order = append(order, r.Solver)
		}
		a.calls += r.Bounds.TotalCalls()
		a.warm += r.Bounds.WarmSolves
		a.cold += r.Bounds.ColdSolves
		a.fallbacks += r.Bounds.WarmFallbacks
		a.reduces += r.Bounds.Reduces
		a.reduceTime += r.Bounds.ReduceTime
		for _, p := range r.Bounds.Per {
			a.time += p.Time
			a.incomplete += p.Incomplete
			a.failed += p.Failed
		}
		a.wall += r.Duration
	}
	if len(order) == 0 {
		return ""
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %12s %12s %8s %18s %10s\n",
		"solver", "boundCalls", "boundTime", "meanCall", "share", "lpWarm/cold(fb)", "reduceTime")
	for _, s := range order {
		a := bysolver[s]
		mean := time.Duration(0)
		if a.calls > 0 {
			mean = a.time / time.Duration(a.calls)
		}
		share := 0.0
		if a.wall > 0 {
			share = float64(a.time+a.reduceTime) / float64(a.wall) * 100
		}
		warmcold := "-"
		if a.warm+a.cold > 0 {
			warmcold = fmt.Sprintf("%d/%d(%d)", a.warm, a.cold, a.fallbacks)
		}
		fmt.Fprintf(&sb, "%-8s %10d %12v %12v %7.1f%% %18s %10v\n",
			s, a.calls, a.time.Round(time.Microsecond), mean.Round(time.Microsecond),
			share, warmcold, a.reduceTime.Round(time.Microsecond))
	}
	return sb.String()
}
