// Package share is the cooperative layer of the parallel portfolio: a Board
// shared by every portfolio member that turns N independent races into one
// cooperative search.
//
// Two things are exchanged:
//
//   - Incumbents. The board keeps the best solution found by any member as an
//     atomic upper bound plus a copy of the achieving assignment and the name
//     of the member that produced it. Members publish every local improvement
//     and poll the atomic value at bound-check sites, so any member's solution
//     instantly tightens the paper's `path + lower ≥ upper` pruning in all
//     others (§4 of the paper gets strictly stronger the earlier a tight upper
//     bound is known).
//
//   - Learned clauses. A bounded exchange ring of short, low-LBD clauses:
//     members publish after conflict analysis (length filter lock-free, LBD
//     filter and hash dedup under a short mutex), and drain foreign clauses at
//     restart/backjump-to-root boundaries, where the engine can import them
//     soundly (engine.ImportClause).
//
// Soundness (see DESIGN.md §9 for the full argument): every shared clause is
// implied by problem ∧ (cost ≤ u−1), where u is the publishing member's upper
// bound at learn time, and the board always holds a feasible solution of cost
// ≤ u before such a clause can enter the ring (members publish incumbents
// before learning under them). An importing member may therefore only lose
// solutions that are no better than an incumbent already on the board; a
// final board poll before a member reports "optimal" makes its claim exact.
//
// The board is safe for concurrent use; the per-member handles (Member) are
// not (each belongs to one solver goroutine, matching the engine they feed).
package share

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/pb"
)

// noUB is the board's "no incumbent yet" sentinel (internal cost space).
const noUB = int64(math.MaxInt64 / 2)

// Config sizes the board. The zero value selects the defaults.
type Config struct {
	// Capacity is the clause ring size in slots (default 4096). A slow
	// drainer that falls more than Capacity clauses behind loses the
	// overwritten ones — sharing is best-effort, never required for
	// soundness.
	Capacity int
	// MaxLen drops published clauses longer than this many literals
	// (default 8). The length check is lock-free.
	MaxLen int
	// MaxLBD drops published clauses whose literal-block distance (number of
	// distinct decision levels at learn time) exceeds this (default 4).
	MaxLBD int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 8
	}
	if c.MaxLBD <= 0 {
		c.MaxLBD = 4
	}
	return c
}

type entry struct {
	lits  []pb.Lit
	owner int32
}

// Board is the shared state of one cooperative portfolio run.
type Board struct {
	cfg Config

	// ub is the global internal upper bound (excluding the problem's
	// CostOffset), noUB when no incumbent exists. Read lock-free at every
	// bound-check site of every member.
	ub atomic.Int64
	// seq is the total number of clauses ever accepted into the ring;
	// read lock-free by Member.DrainClauses to skip empty drains.
	seq atomic.Uint64

	// mu guards the incumbent certificate.
	mu         sync.Mutex
	bestVals   []bool
	bestOwner  string
	incumbents int64 // accepted global-best improvements

	// cmu guards the clause ring and the dedup set.
	cmu  sync.Mutex
	ring []entry
	seen map[uint64]uint64 // clause hash -> publish seq (dedup window)

	members atomic.Int32
	// clauseMembers counts the members participating in clause exchange.
	// UB-only members (local search, the warm-incumbent seeder) join via
	// JoinNoClauses and are excluded: they never drain, so including them in
	// ring cursor/lap accounting would charge every ring overwrite to a
	// consumer that was never going to consume (the stats would claim massive
	// clause loss on perfectly healthy boards).
	clauseMembers atomic.Int32

	// filter counters (atomic: the length filter rejects without cmu).
	tooLong atomic.Int64
	highLBD atomic.Int64
	dup     atomic.Int64
	lapped  atomic.Int64 // clauses lost to slow drainers (ring overwrite)
}

// NewBoard creates a board for one portfolio run.
func NewBoard(cfg Config) *Board {
	b := &Board{cfg: cfg.withDefaults()}
	b.ub.Store(noUB)
	b.ring = make([]entry, b.cfg.Capacity)
	b.seen = make(map[uint64]uint64, b.cfg.Capacity)
	return b
}

// Join registers a new member and returns its handle. The name labels the
// member in the incumbent certificate and the stats.
func (b *Board) Join(name string) *Member {
	b.clauseMembers.Add(1)
	id := b.members.Add(1) - 1
	return &Member{board: b, id: id, name: name}
}

// JoinNoClauses registers a member with clause participation opted out:
// PublishClause rejects, DrainClauses is a no-op, and the member is excluded
// from clause cursor/lap accounting (Stats.ClauseMembers). Incumbent exchange
// is unaffected. For UB-only members — local search, the warm-incumbent
// seeder — that neither learn nor consume clauses.
func (b *Board) JoinNoClauses(name string) *Member {
	id := b.members.Add(1) - 1
	return &Member{board: b, id: id, name: name, noClauses: true}
}

// BestUB returns the current global internal upper bound (one atomic load).
func (b *Board) BestUB() (int64, bool) {
	v := b.ub.Load()
	return v, v < noUB
}

// BestSolution returns a copy of the global best solution, its internal cost
// and the member that produced it.
func (b *Board) BestSolution() (cost int64, values []bool, owner string, ok bool) {
	if b.ub.Load() >= noUB {
		return 0, nil, "", false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bestVals == nil {
		return 0, nil, "", false
	}
	return b.ub.Load(), append([]bool(nil), b.bestVals...), b.bestOwner, true
}

// publishIncumbent records a new incumbent if it beats the current best.
func (b *Board) publishIncumbent(owner string, cost int64, values []bool) bool {
	if cost >= b.ub.Load() {
		return false // fast reject without the lock
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cost >= b.ub.Load() {
		return false // lost the race
	}
	b.bestVals = append(b.bestVals[:0], values...)
	b.bestOwner = owner
	b.incumbents++
	// Store last: a reader that sees the new ub and takes mu is guaranteed
	// to find values at least as good already copied in.
	b.ub.Store(cost)
	return true
}

// publishClause offers a clause to the ring. It returns true when the clause
// was accepted (passed the length/LBD filters and was not a duplicate).
// The literals are copied; the caller keeps ownership of lits.
func (b *Board) publishClause(owner int32, lits []pb.Lit, lbd int) bool {
	if len(lits) == 0 {
		return false
	}
	if len(lits) > b.cfg.MaxLen {
		b.tooLong.Add(1)
		return false
	}
	if lbd > b.cfg.MaxLBD {
		b.highLBD.Add(1)
		return false
	}
	// Canonicalize outside the lock: sorted copy, hashed.
	cp := append(make([]pb.Lit, 0, len(lits)), lits...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	h := hashLits(cp)

	b.cmu.Lock()
	defer b.cmu.Unlock()
	next := b.seq.Load()
	if prev, ok := b.seen[h]; ok && prev+uint64(b.cfg.Capacity) > next {
		// Same hash published within the live window: duplicate. (Hash
		// collisions merely drop a shareable clause — harmless.)
		b.dup.Add(1)
		return false
	}
	b.seen[h] = next
	if len(b.seen) > 8*b.cfg.Capacity {
		b.pruneSeenLocked(next)
	}
	b.ring[next%uint64(len(b.ring))] = entry{lits: cp, owner: owner}
	b.seq.Store(next + 1)
	return true
}

// pruneSeenLocked drops dedup entries that fell out of the ring window.
func (b *Board) pruneSeenLocked(next uint64) {
	for h, s := range b.seen {
		if s+uint64(b.cfg.Capacity) <= next {
			delete(b.seen, h)
		}
	}
}

// drainSince copies out the clauses published in (cursor, seq) by members
// other than selfID, advancing *cursor to seq. Clauses overwritten before the
// caller drained them are counted as lapped and lost.
func (b *Board) drainSince(cursor *uint64, selfID int32) [][]pb.Lit {
	b.cmu.Lock()
	defer b.cmu.Unlock()
	next := b.seq.Load()
	start := *cursor
	cap64 := uint64(len(b.ring))
	if next > cap64 && start < next-cap64 {
		b.lapped.Add(int64(next - cap64 - start))
		start = next - cap64
	}
	var out [][]pb.Lit
	for s := start; s < next; s++ {
		e := b.ring[s%cap64]
		if e.owner == selfID {
			continue
		}
		out = append(out, e.lits)
	}
	*cursor = next
	return out
}

// hashLits is FNV-1a over the canonical (sorted) literal sequence.
func hashLits(lits []pb.Lit) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, l := range lits {
		v := uint32(l)
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	return h
}

// Stats is a point-in-time snapshot of the board's global counters.
type Stats struct {
	// Members is the number of handles issued by Join/JoinNoClauses.
	Members int
	// ClauseMembers is the number of members participating in clause
	// exchange (Join only); UB-only members are excluded.
	ClauseMembers int
	// ClausesPublished counts clauses accepted into the ring.
	ClausesPublished int64
	// ClausesTooLong / ClausesHighLBD / ClausesDuplicate count publisher-side
	// filter rejections.
	ClausesTooLong   int64
	ClausesHighLBD   int64
	ClausesDuplicate int64
	// ClausesLapped counts clauses a slow drainer lost to ring overwrite.
	ClausesLapped int64
	// Incumbents counts accepted global-best improvements; BestOwner names
	// the member holding the final certificate; BestCost is its internal
	// cost, valid when HasIncumbent.
	Incumbents   int64
	HasIncumbent bool
	BestCost     int64
	BestOwner    string
}

// Snapshot returns the board's current global counters.
func (b *Board) Snapshot() Stats {
	st := Stats{
		Members:          int(b.members.Load()),
		ClauseMembers:    int(b.clauseMembers.Load()),
		ClausesPublished: int64(b.seq.Load()),
		ClausesTooLong:   b.tooLong.Load(),
		ClausesHighLBD:   b.highLBD.Load(),
		ClausesDuplicate: b.dup.Load(),
		ClausesLapped:    b.lapped.Load(),
	}
	b.mu.Lock()
	st.Incumbents = b.incumbents
	st.BestOwner = b.bestOwner
	b.mu.Unlock()
	if ub, ok := b.BestUB(); ok {
		st.HasIncumbent = true
		st.BestCost = ub
	}
	return st
}

// Member is one solver's handle on the board. It implements core.Sharer
// (asserted in internal/portfolio to keep the import direction one-way).
// A Member belongs to a single solver goroutine and is not safe for
// concurrent use; all cross-member synchronization lives in the Board.
type Member struct {
	board  *Board
	id     int32
	name   string
	cursor uint64 // next ring seq to drain
	// noClauses opts the member out of clause exchange (JoinNoClauses): its
	// cursor never moves, so it must never reach drainSince — a permanently
	// stalled cursor would count every ring overwrite as a lapped loss.
	noClauses bool
}

// Name returns the member's label.
func (m *Member) Name() string { return m.name }

// PublishIncumbent offers a solution (internal cost, excluding CostOffset).
// It returns true when the solution became the new global best.
func (m *Member) PublishIncumbent(cost int64, values []bool) bool {
	return m.board.publishIncumbent(m.name, cost, values)
}

// BestUB returns the global internal upper bound (one atomic load; safe at
// any frequency).
func (m *Member) BestUB() (int64, bool) { return m.board.BestUB() }

// BestIncumbent returns a copy of the global best solution when its cost
// beats below.
func (m *Member) BestIncumbent(below int64) (cost int64, values []bool, ok bool) {
	if m.board.ub.Load() >= below {
		return 0, nil, false // fast path: one atomic load per poll site
	}
	c, vals, _, ok := m.board.BestSolution()
	if !ok || c >= below {
		return 0, nil, false
	}
	return c, vals, true
}

// PublishClause offers a learned clause with its LBD; returns true when the
// exchange accepted it.
func (m *Member) PublishClause(lits []pb.Lit, lbd int) bool {
	if m.noClauses {
		return false // opted out: not a filter rejection, no counter noise
	}
	return m.board.publishClause(m.id, lits, lbd)
}

// DrainClauses delivers every clause published by other members since the
// last drain. The delivered slices are shared read-only snapshots; callers
// must not mutate them.
func (m *Member) DrainClauses(fn func(lits []pb.Lit)) {
	if m.noClauses {
		return // opted out: the stalled cursor must not reach lap accounting
	}
	if m.board.seq.Load() == m.cursor {
		return // nothing new: one atomic load, no lock
	}
	fault.Fire("share.drain", m.name)
	for _, lits := range m.board.drainSince(&m.cursor, m.id) {
		fn(chaosCorrupt(lits))
	}
}

// chaosCounter cycles the corruption shape injected by the "share.import"
// fault point, so a single armed spec exercises every rejection path.
var chaosCounter atomic.Uint64

// chaosCorrupt is the import-side fault hook: with the "share.import" point
// armed (Kind Corrupt), delivered clauses are structurally mangled — an
// out-of-range literal, a duplicated literal, a tautological pair, or an
// empty clause — to exercise the engine's import validation. The original
// ring entry is never mutated. Unarmed, this is one atomic load.
func chaosCorrupt(lits []pb.Lit) []pb.Lit {
	if !fault.Active() {
		return lits
	}
	v := fault.Corrupt("share.import", 0)
	if v == 0 {
		return lits // point not armed, or did not fire
	}
	mode := chaosCounter.Add(1)
	if !math.IsNaN(v) && v > 0 {
		mode = uint64(v) // a Spec.Value pins one corruption shape
	}
	out := append([]pb.Lit(nil), lits...)
	switch mode % 4 {
	case 1: // out-of-range literal (bit flip on the wire)
		out[0] = pb.Lit(1 << 30)
	case 2: // duplicated literal
		out = append(out, out[0])
	case 3: // tautological pair
		out = append(out, out[0].Neg())
	default: // truncated to empty
		out = out[:0]
	}
	return out
}
