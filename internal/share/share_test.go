package share

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/pb"
)

func lits(vs ...int) []pb.Lit {
	out := make([]pb.Lit, len(vs))
	for i, v := range vs {
		if v < 0 {
			out[i] = pb.NegLit(pb.Var(-v - 1))
		} else {
			out[i] = pb.PosLit(pb.Var(v))
		}
	}
	return out
}

func TestIncumbentBoard(t *testing.T) {
	b := NewBoard(Config{})
	a, c := b.Join("a"), b.Join("c")
	if _, ok := b.BestUB(); ok {
		t.Fatal("fresh board has an upper bound")
	}
	if !a.PublishIncumbent(10, []bool{true, false}) {
		t.Fatal("first incumbent rejected")
	}
	if ub, ok := b.BestUB(); !ok || ub != 10 {
		t.Fatalf("ub=%d ok=%t", ub, ok)
	}
	if c.PublishIncumbent(12, []bool{false, false}) {
		t.Fatal("worse incumbent accepted")
	}
	if c.PublishIncumbent(10, []bool{false, false}) {
		t.Fatal("equal incumbent accepted")
	}
	if !c.PublishIncumbent(7, []bool{false, true}) {
		t.Fatal("better incumbent rejected")
	}
	// BestIncumbent only reports strictly below the caller's threshold.
	if _, _, ok := a.BestIncumbent(7); ok {
		t.Fatal("BestIncumbent(7) should be empty at ub=7")
	}
	cost, vals, ok := a.BestIncumbent(8)
	if !ok || cost != 7 || len(vals) != 2 || vals[0] || !vals[1] {
		t.Fatalf("BestIncumbent: cost=%d vals=%v ok=%t", cost, vals, ok)
	}
	// The returned slice is a private copy.
	vals[0] = true
	if _, v2, _, _ := b.BestSolution(); v2[0] {
		t.Fatal("BestIncumbent returned a shared slice")
	}
	st := b.Snapshot()
	if st.Members != 2 || st.Incumbents != 2 || !st.HasIncumbent ||
		st.BestCost != 7 || st.BestOwner != "c" {
		t.Fatalf("snapshot: %+v", st)
	}
}

func TestClauseFiltersAndDedup(t *testing.T) {
	b := NewBoard(Config{MaxLen: 3, MaxLBD: 2})
	m := b.Join("m")
	if m.PublishClause(lits(0, 1, 2, 3), 1) {
		t.Fatal("over-length clause accepted")
	}
	if m.PublishClause(lits(0, 1), 3) {
		t.Fatal("high-LBD clause accepted")
	}
	if !m.PublishClause(lits(0, 1), 2) {
		t.Fatal("good clause rejected")
	}
	// Same literal set in a different order is a duplicate.
	if m.PublishClause(lits(1, 0), 2) {
		t.Fatal("reordered duplicate accepted")
	}
	// Different polarity is a different clause.
	if !m.PublishClause(lits(-1, 0), 2) {
		t.Fatal("distinct clause rejected as duplicate")
	}
	st := b.Snapshot()
	if st.ClausesPublished != 2 || st.ClausesTooLong != 1 ||
		st.ClausesHighLBD != 1 || st.ClausesDuplicate != 1 {
		t.Fatalf("snapshot: %+v", st)
	}
}

func TestDrainSkipsOwnAndDeliversForeign(t *testing.T) {
	b := NewBoard(Config{})
	a, c := b.Join("a"), b.Join("c")
	a.PublishClause(lits(0, 1), 1)
	c.PublishClause(lits(2, 3), 1)
	var got [][]pb.Lit
	a.DrainClauses(func(l []pb.Lit) { got = append(got, l) })
	if len(got) != 1 || got[0][0] != pb.PosLit(2) {
		t.Fatalf("a drained %v", got)
	}
	// Cursor advanced: nothing new on a second drain.
	got = nil
	a.DrainClauses(func(l []pb.Lit) { got = append(got, l) })
	if len(got) != 0 {
		t.Fatalf("second drain delivered %v", got)
	}
	// A member joining late sees the full live window.
	var late [][]pb.Lit
	b.Join("late").DrainClauses(func(l []pb.Lit) { late = append(late, l) })
	if len(late) != 2 {
		t.Fatalf("late drain got %d clauses", len(late))
	}
}

func TestRingLapAccounting(t *testing.T) {
	b := NewBoard(Config{Capacity: 4})
	pub := b.Join("pub")
	slow := b.Join("slow")
	for v := 0; v < 10; v++ {
		if !pub.PublishClause(lits(v, v+20), 1) {
			t.Fatalf("publish %d rejected", v)
		}
	}
	var got [][]pb.Lit
	slow.DrainClauses(func(l []pb.Lit) { got = append(got, l) })
	if len(got) != 4 {
		t.Fatalf("slow drain got %d clauses, want the live window 4", len(got))
	}
	if st := b.Snapshot(); st.ClausesLapped != 6 {
		t.Fatalf("lapped=%d want 6", st.ClausesLapped)
	}
}

func TestDedupWindowReopensAfterLap(t *testing.T) {
	b := NewBoard(Config{Capacity: 4})
	m := b.Join("m")
	if !m.PublishClause(lits(0, 1), 1) {
		t.Fatal("initial publish rejected")
	}
	for v := 2; v < 8; v++ { // push the first clause out of the window
		m.PublishClause(lits(v, v+20), 1)
	}
	if !m.PublishClause(lits(0, 1), 1) {
		t.Fatal("clause outside the live window still counted as duplicate")
	}
}

func TestConcurrentPublishDrain(t *testing.T) {
	b := NewBoard(Config{Capacity: 128})
	const members = 4
	var wg sync.WaitGroup
	for id := 0; id < members; id++ {
		m := b.Join("m")
		wg.Add(1)
		go func(id int, m *Member) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.PublishIncumbent(int64(1000-i), []bool{i%2 == 0})
				m.PublishClause(lits(id*200+i, id*200+i+1000), 2)
				m.DrainClauses(func(l []pb.Lit) {
					if len(l) != 2 {
						t.Error("corrupt drained clause")
					}
				})
				if ub, ok := m.BestUB(); ok && ub > 1000 {
					t.Error("upper bound went backwards")
				}
			}
		}(id, m)
	}
	wg.Wait()
	st := b.Snapshot()
	if st.ClausesPublished == 0 || !st.HasIncumbent {
		t.Fatalf("snapshot after concurrent run: %+v", st)
	}
	if st.BestCost != 801 {
		t.Fatalf("final ub=%d want 801", st.BestCost)
	}
}

func TestChaosCorruptShapes(t *testing.T) {
	defer fault.Reset()
	b := NewBoard(Config{})
	pub, sub := b.Join("pub"), b.Join("sub")

	check := func(value float64, wantLen int, desc string) {
		t.Helper()
		fault.Arm("share.import", fault.Spec{Kind: fault.KindCorrupt, Value: value})
		defer fault.Disarm("share.import")
		pub.PublishClause(lits(int(value)*2, int(value)*2+100), 1)
		var got [][]pb.Lit
		sub.DrainClauses(func(l []pb.Lit) { got = append(got, l) })
		if len(got) != 1 {
			t.Fatalf("%s: drained %d clauses", desc, len(got))
		}
		if len(got[0]) != wantLen {
			t.Fatalf("%s: corrupted clause %v has %d lits, want %d", desc, got[0], len(got[0]), wantLen)
		}
	}
	check(1, 2, "out-of-range literal") // same length, first lit mangled
	check(2, 3, "duplicated literal")
	check(3, 3, "tautological pair")
	// Shape 4 % 4 == 0: truncated to empty.
	fault.Arm("share.import", fault.Spec{Kind: fault.KindCorrupt, Value: 4})
	pub.PublishClause(lits(40, 41), 1)
	var got [][]pb.Lit
	sub.DrainClauses(func(l []pb.Lit) { got = append(got, l) })
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty-shape corruption: %v", got)
	}
	fault.Reset()

	// The ring entry itself is never mutated: a fresh member drains the
	// original clauses intact.
	var clean [][]pb.Lit
	b.Join("fresh").DrainClauses(func(l []pb.Lit) { clean = append(clean, l) })
	for _, c := range clean {
		if len(c) != 2 {
			t.Fatalf("ring entry was mutated by chaos corruption: %v", c)
		}
	}
}

func TestNoClausesMemberExcludedFromLapAccounting(t *testing.T) {
	b := NewBoard(Config{Capacity: 4})
	pub := b.Join("pub")
	ub := b.JoinNoClauses("ls")
	drainer := b.Join("drainer")
	for v := 0; v < 12; v++ {
		if !pub.PublishClause(lits(v, v+20), 1) {
			t.Fatalf("publish %d rejected", v)
		}
	}
	// The opted-out member neither publishes nor drains, and — crucially —
	// its permanently stalled cursor must not be charged as lapped loss.
	if ub.PublishClause(lits(0, 1), 1) {
		t.Fatal("no-clauses member published a clause")
	}
	ub.DrainClauses(func([]pb.Lit) { t.Fatal("no-clauses member received a clause") })
	if st := b.Snapshot(); st.ClausesLapped != 0 {
		t.Fatalf("lapped=%d before any real drain, want 0", st.ClausesLapped)
	}
	// The real drainer's window loss is still counted exactly: 12 published
	// into a 4-slot ring from cursor 0 → 8 lost, 4 delivered.
	n := 0
	drainer.DrainClauses(func([]pb.Lit) { n++ })
	if n != 4 {
		t.Fatalf("drained %d clauses, want the live window 4", n)
	}
	st := b.Snapshot()
	if st.ClausesLapped != 8 {
		t.Fatalf("lapped=%d want exactly 8", st.ClausesLapped)
	}
	if st.ClausesPublished != 12 || st.ClausesTooLong != 0 || st.ClausesHighLBD != 0 || st.ClausesDuplicate != 0 {
		t.Fatalf("opt-out publish leaked into filter counters: %+v", st)
	}
	if st.Members != 3 || st.ClauseMembers != 2 {
		t.Fatalf("members=%d clauseMembers=%d, want 3/2", st.Members, st.ClauseMembers)
	}
	// Incumbent exchange is unaffected by the opt-out.
	if !ub.PublishIncumbent(5, []bool{true}) {
		t.Fatal("no-clauses member's incumbent rejected")
	}
	if got, ok := drainer.BestUB(); !ok || got != 5 {
		t.Fatalf("incumbent did not reach the board: ub=%d ok=%t", got, ok)
	}
}
