package verify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/opb"
	"repro/internal/pb"
)

func sample(t *testing.T) *pb.Problem {
	t.Helper()
	p, err := opb.ParseString("min: +3 a +1 b ;\n+1 a +1 b >= 1 ;\n+1 a +1 c <= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseValueLine(t *testing.T) {
	p := sample(t)
	a, err := ParseValueLine(p, "v -a b c")
	if err != nil {
		t.Fatal(err)
	}
	if a.Values[0] || !a.Values[1] || !a.Values[2] {
		t.Fatalf("values=%v", a.Values)
	}
	if a.Missing != 0 {
		t.Fatalf("missing=%d", a.Missing)
	}
	// Partial line: omitted variables default to false and are counted.
	a, err = ParseValueLine(p, "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Missing != 2 || !a.Values[1] {
		t.Fatalf("%+v", a)
	}
	if _, err := ParseValueLine(p, "frob"); err == nil {
		t.Fatal("expected unknown-variable error")
	}
}

func TestScanValueLine(t *testing.T) {
	p := sample(t)
	in := strings.NewReader("c noise\no 1\nv b -a -c\ns OPTIMUM FOUND\n")
	a, err := ScanValueLine(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Values[1] || a.Values[0] {
		t.Fatalf("%+v", a)
	}
	if _, err := ScanValueLine(p, strings.NewReader("no value line")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckReportsViolation(t *testing.T) {
	p := sample(t)
	rep := Check(p, []bool{true, false, true}) // a ∧ c violates a+c ≤ 1
	if rep.Feasible || rep.ViolatedIdx < 0 || rep.Violated == nil {
		t.Fatalf("%+v", rep)
	}
	rep = Check(p, []bool{false, true, false})
	if !rep.Feasible || rep.Objective != 1 {
		t.Fatalf("%+v", rep)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p := sample(t)
	vals := []bool{true, false, false}
	line := FormatValueLine(p, vals)
	a, err := ParseValueLine(p, line)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if a.Values[i] != vals[i] {
			t.Fatalf("round trip changed values: %v vs %v", a.Values, vals)
		}
	}
}

// End-to-end: solver output must verify, and its objective must match the
// reported optimum, across random instances.
func TestSolverModelsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 80; iter++ {
		n := 3 + rng.Intn(7)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(8)))
		}
		for i := 0; i < 2+rng.Intn(7); i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(1 + rng.Intn(4)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(5)))
		}
		res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 100000})
		if res.Status != core.StatusOptimal {
			continue
		}
		line := FormatValueLine(p, res.Values)
		a, err := ParseValueLine(p, line)
		if err != nil {
			t.Fatal(err)
		}
		rep := Check(p, a.Values)
		if !rep.Feasible {
			t.Fatalf("iter %d: solver model fails verification: %v", iter, rep.Violated)
		}
		if rep.Objective != res.Best {
			t.Fatalf("iter %d: objective %d != reported %d", iter, rep.Objective, res.Best)
		}
	}
}
