package verify_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/opb"
	"repro/internal/pb"
	"repro/internal/verify"
)

func sample(t *testing.T) *pb.Problem {
	t.Helper()
	p, err := opb.ParseString("min: +3 a +1 b ;\n+1 a +1 b >= 1 ;\n+1 a +1 c <= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseValueLine(t *testing.T) {
	p := sample(t)
	a, err := verify.ParseValueLine(p, "v -a b c")
	if err != nil {
		t.Fatal(err)
	}
	if a.Values[0] || !a.Values[1] || !a.Values[2] {
		t.Fatalf("values=%v", a.Values)
	}
	if a.Missing != 0 {
		t.Fatalf("missing=%d", a.Missing)
	}
	// Partial line: omitted variables default to false and are counted.
	a, err = verify.ParseValueLine(p, "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Missing != 2 || !a.Values[1] {
		t.Fatalf("%+v", a)
	}
	if _, err := verify.ParseValueLine(p, "frob"); err == nil {
		t.Fatal("expected unknown-variable error")
	}
}

func TestScanValueLine(t *testing.T) {
	p := sample(t)
	in := strings.NewReader("c noise\no 1\nv b -a -c\ns OPTIMUM FOUND\n")
	a, err := verify.ScanValueLine(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Values[1] || a.Values[0] {
		t.Fatalf("%+v", a)
	}
	if _, err := verify.ScanValueLine(p, strings.NewReader("no value line")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckReportsViolation(t *testing.T) {
	p := sample(t)
	rep := verify.Check(p, []bool{true, false, true}) // a ∧ c violates a+c ≤ 1
	if rep.Feasible || rep.ViolatedIdx < 0 || rep.Violated == nil {
		t.Fatalf("%+v", rep)
	}
	rep = verify.Check(p, []bool{false, true, false})
	if !rep.Feasible || rep.Objective != 1 {
		t.Fatalf("%+v", rep)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p := sample(t)
	vals := []bool{true, false, false}
	line := verify.FormatValueLine(p, vals)
	a, err := verify.ParseValueLine(p, line)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if a.Values[i] != vals[i] {
			t.Fatalf("round trip changed values: %v vs %v", a.Values, vals)
		}
	}
}

func TestParseValueLineContradiction(t *testing.T) {
	p := sample(t)
	if _, err := verify.ParseValueLine(p, "v a -a"); err == nil {
		t.Fatal("contradictory tokens must be an error")
	}
	if _, err := verify.ParseValueLine(p, "v -b a b"); err == nil {
		t.Fatal("contradictory tokens must be an error (reordered)")
	}
	// Duplicate same-polarity tokens are harmless.
	a, err := verify.ParseValueLine(p, "v a a -b")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Values[0] || a.Values[1] {
		t.Fatalf("%+v", a)
	}
}

func TestScanValueLineWrapped(t *testing.T) {
	p := sample(t)
	// PB-competition output may wrap the value line across several "v" lines.
	in := strings.NewReader("c noise\nv -a\nv b\nv -c\ns OPTIMUM FOUND\n")
	a, err := verify.ScanValueLine(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Values[0] || !a.Values[1] || a.Values[2] || a.Missing != 0 {
		t.Fatalf("%+v", a)
	}
	// A bare "v" line is valid for zero-variable instances.
	empty := &pb.Problem{}
	if _, err := verify.ScanValueLine(empty, strings.NewReader("s SATISFIABLE\nv\n")); err != nil {
		t.Fatalf("bare v line: %v", err)
	}
	// Contradictions across wrapped lines are caught after concatenation.
	if _, err := verify.ScanValueLine(p, strings.NewReader("v a\nv -a\n")); err == nil {
		t.Fatal("cross-line contradiction must be an error")
	}
}

// Negative objective coefficients are normalized by internal/opb into a
// synthetic "_n<name>" complement variable carrying the cost. A value line
// from an external tool only mentions the original variables; the Missing
// defaults must respect that normalization (zero-cost = base true /
// complement false, partners derived as y = ¬x), not blanket-false.
func TestMissingDefaultsRespectNegativeCostNormalization(t *testing.T) {
	p, err := opb.ParseString("min: -5 a +1 b ;\n+1 a +1 b >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	// Both a and its complement missing: the zero-cost pair is a=1, _na=0.
	a, err := verify.ParseValueLine(p, "v -b")
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Check(p, a.Values)
	if !rep.Feasible {
		t.Fatalf("zero-cost defaults must satisfy the linking clauses: %v", rep.Violated)
	}
	if rep.Objective != -5 {
		t.Fatalf("objective=%d want -5 (a defaults to its zero-cost polarity true)", rep.Objective)
	}
	// Base given, complement missing: derived as ¬a, keeping feasibility and
	// the exact original-space objective.
	a, err = verify.ParseValueLine(p, "v -a b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Derived == 0 {
		t.Fatalf("complement should be derived: %+v", a)
	}
	rep = verify.Check(p, a.Values)
	if !rep.Feasible || rep.Objective != 1 {
		t.Fatalf("feasible=%v objective=%d want true/1", rep.Feasible, rep.Objective)
	}
}

// The cached Index parses identically to the package-level function and can
// be reused across many lines.
func TestIndexReuse(t *testing.T) {
	p := sample(t)
	ix := verify.NewIndex(p)
	for _, line := range []string{"v a b -c", "v -a -b -c", "b"} {
		got, err := ix.ParseValueLine(line)
		if err != nil {
			t.Fatal(err)
		}
		want, err := verify.ParseValueLine(p, line)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("line %q: index parse diverged", line)
			}
		}
		if got.Missing != want.Missing || got.Derived != want.Derived {
			t.Fatalf("line %q: %+v vs %+v", line, got, want)
		}
	}
}

// End-to-end: solver output must verify, and its objective must match the
// reported optimum, across random instances.
func TestSolverModelsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 80; iter++ {
		n := 3 + rng.Intn(7)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(8)))
		}
		for i := 0; i < 2+rng.Intn(7); i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(1 + rng.Intn(4)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(5)))
		}
		res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 100000})
		if res.Status != core.StatusOptimal {
			continue
		}
		line := verify.FormatValueLine(p, res.Values)
		a, err := verify.ParseValueLine(p, line)
		if err != nil {
			t.Fatal(err)
		}
		rep := verify.Check(p, a.Values)
		if !rep.Feasible {
			t.Fatalf("iter %d: solver model fails verification: %v", iter, rep.Violated)
		}
		if rep.Objective != res.Best {
			t.Fatalf("iter %d: objective %d != reported %d", iter, rep.Objective, res.Best)
		}
	}
}
