// Package verify checks solver output against a problem instance: it parses
// PB-competition-style value lines ("v x1 -x2 …"), maps names back to
// variables, and reports feasibility, objective value, and the first
// violated constraint on failure. cmd/pbcheck is a thin wrapper around it;
// tests use it to validate solver models end-to-end.
package verify

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/pb"
)

// Assignment is a parsed value line.
type Assignment struct {
	// Values is the per-variable assignment (length NumVars).
	Values []bool
	// Missing counts variables absent from the value line (defaulted to
	// false, the zero-cost polarity).
	Missing int
}

// Report is the outcome of checking an assignment.
type Report struct {
	Feasible bool
	// Objective is the assignment's objective value (CostOffset included);
	// meaningful even when infeasible.
	Objective int64
	// ViolatedIdx is the index of the first violated constraint (-1 when
	// feasible); Violated is that constraint.
	ViolatedIdx int
	Violated    *pb.Constraint
}

// VarName returns the external name of v (OPB 1-based x<k> fallback).
func VarName(p *pb.Problem, v pb.Var) string {
	if int(v) < len(p.Names) && p.Names[v] != "" {
		return p.Names[v]
	}
	return fmt.Sprintf("x%d", int(v)+1)
}

// ParseValueLine parses a whitespace-separated list of literals
// ("x1 -x2 x3"); a leading "v " marker is accepted and stripped. Unknown
// variable names are an error.
func ParseValueLine(p *pb.Problem, line string) (Assignment, error) {
	line = strings.TrimSpace(line)
	line = strings.TrimPrefix(line, "v ")
	byName := make(map[string]pb.Var, p.NumVars)
	for v := 0; v < p.NumVars; v++ {
		byName[VarName(p, pb.Var(v))] = pb.Var(v)
	}
	out := Assignment{Values: make([]bool, p.NumVars)}
	seen := make([]bool, p.NumVars)
	for _, tok := range strings.Fields(line) {
		val := true
		name := tok
		if strings.HasPrefix(tok, "-") {
			val = false
			name = tok[1:]
		}
		v, ok := byName[name]
		if !ok {
			return Assignment{}, fmt.Errorf("verify: unknown variable %q", name)
		}
		out.Values[v] = val
		seen[v] = true
	}
	for v := 0; v < p.NumVars; v++ {
		if !seen[v] {
			out.Missing++
		}
	}
	return out, nil
}

// ScanValueLine reads lines from r until a "v " line is found and parses it.
func ScanValueLine(p *pb.Problem, r io.Reader) (Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		txt := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(txt, "v ") {
			return ParseValueLine(p, txt)
		}
	}
	if err := sc.Err(); err != nil {
		return Assignment{}, err
	}
	return Assignment{}, fmt.Errorf("verify: no 'v' line found")
}

// Check evaluates the assignment against every constraint.
func Check(p *pb.Problem, values []bool) Report {
	rep := Report{Feasible: true, ViolatedIdx: -1, Objective: p.ObjectiveValue(values)}
	for i, c := range p.Constraints {
		if !c.Eval(values) {
			rep.Feasible = false
			rep.ViolatedIdx = i
			rep.Violated = c
			return rep
		}
	}
	return rep
}

// FormatValueLine renders an assignment as a PB-competition value line.
func FormatValueLine(p *pb.Problem, values []bool) string {
	var sb strings.Builder
	sb.WriteString("v")
	for v := 0; v < p.NumVars; v++ {
		sb.WriteByte(' ')
		if !values[v] {
			sb.WriteByte('-')
		}
		sb.WriteString(VarName(p, pb.Var(v)))
	}
	return sb.String()
}
