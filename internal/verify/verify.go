// Package verify checks solver output against a problem instance: it parses
// PB-competition-style value lines ("v x1 -x2 …"), maps names back to
// variables, and reports feasibility, objective value, and the first
// violated constraint on failure. cmd/pbcheck is a thin wrapper around it;
// tests use it to validate solver models end-to-end, and the in-search
// invariant auditor (internal/audit) uses Check to re-verify every adopted
// incumbent.
package verify

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/pb"
)

// Assignment is a parsed value line.
type Assignment struct {
	// Values is the per-variable assignment (length NumVars).
	Values []bool
	// Missing counts variables absent from the value line. Each missing
	// variable defaults to its zero-cost polarity: plain variables (all
	// normalized costs are ≥ 0 on x=1) default to false, while variables
	// carrying the negative-cost normalization of internal/opb — a base
	// variable paired with a synthetic "_n<name>" complement — default so
	// that the costed complement stays false (base true, complement false),
	// and an absent partner is always derived from the present one so the
	// y = ¬x linking clauses hold. CostOffset bookkeeping then makes the
	// reported objective exact in the original (pre-normalization) space.
	Missing int
	// Derived counts the subset of Missing filled in from a negative-cost
	// partner (complement set to the negation of its base or vice versa)
	// rather than by the blanket zero-cost default.
	Derived int
}

// Report is the outcome of checking an assignment.
type Report struct {
	Feasible bool
	// Objective is the assignment's objective value (CostOffset included);
	// meaningful even when infeasible.
	Objective int64
	// ViolatedIdx is the index of the first violated constraint (-1 when
	// feasible); Violated is that constraint.
	ViolatedIdx int
	Violated    *pb.Constraint
}

// VarName returns the external name of v (OPB 1-based x<k> fallback).
func VarName(p *pb.Problem, v pb.Var) string {
	if int(v) < len(p.Names) && p.Names[v] != "" {
		return p.Names[v]
	}
	return fmt.Sprintf("x%d", int(v)+1)
}

// Index is the cached name→variable map of one problem, hoisting the
// per-call map rebuild out of ParseValueLine. Build it once per problem and
// reuse it across value lines (ScanValueLine does this internally; long-lived
// checkers like cmd/pbcheck and the fuzzer's differential loop hold one).
type Index struct {
	p      *pb.Problem
	byName map[string]pb.Var
	// baseOf maps a synthetic negative-cost complement ("_n<name>", created
	// by internal/opb's objective normalization) to its base variable;
	// compOf is the inverse. Used to derive absent partners (y = ¬x) and to
	// pick the zero-cost default for absent pairs.
	baseOf map[pb.Var]pb.Var
	compOf map[pb.Var]pb.Var
}

// NewIndex builds the cached index for p.
func NewIndex(p *pb.Problem) *Index {
	ix := &Index{p: p, byName: make(map[string]pb.Var, p.NumVars)}
	for v := 0; v < p.NumVars; v++ {
		ix.byName[VarName(p, pb.Var(v))] = pb.Var(v)
	}
	for v := 0; v < p.NumVars; v++ {
		name := VarName(p, pb.Var(v))
		if !strings.HasPrefix(name, "_n") {
			continue
		}
		base, ok := ix.byName[name[len("_n"):]]
		if !ok {
			continue
		}
		if ix.baseOf == nil {
			ix.baseOf = map[pb.Var]pb.Var{}
			ix.compOf = map[pb.Var]pb.Var{}
		}
		ix.baseOf[pb.Var(v)] = base
		ix.compOf[base] = pb.Var(v)
	}
	return ix
}

// ParseValueLine parses a whitespace-separated list of literals
// ("x1 -x2 x3"); a leading "v" marker is accepted and stripped (including a
// bare "v" for zero-variable instances). Unknown variable names and
// contradictory tokens for the same variable ("x1 -x1") are errors.
func (ix *Index) ParseValueLine(line string) (Assignment, error) {
	p := ix.p
	line = strings.TrimSpace(line)
	if line == "v" {
		line = ""
	} else {
		line = strings.TrimPrefix(line, "v ")
	}
	out := Assignment{Values: make([]bool, p.NumVars)}
	seen := make([]bool, p.NumVars)
	for _, tok := range strings.Fields(line) {
		val := true
		name := tok
		if strings.HasPrefix(tok, "-") {
			val = false
			name = tok[1:]
		}
		v, ok := ix.byName[name]
		if !ok {
			return Assignment{}, fmt.Errorf("verify: unknown variable %q", name)
		}
		if seen[v] && out.Values[v] != val {
			return Assignment{}, fmt.Errorf("verify: contradictory assignment for %q", name)
		}
		out.Values[v] = val
		seen[v] = true
	}
	for v := 0; v < p.NumVars; v++ {
		if seen[v] {
			continue
		}
		out.Missing++
		vv := pb.Var(v)
		if base, ok := ix.lookupBase(vv); ok {
			// Missing complement: derive y = ¬x from the base (present or
			// itself defaulted — bases are numbered before their synthetic
			// complements, so Values[base] is final by the time we get here).
			out.Values[v] = !out.Values[base]
			out.Derived++
			continue
		}
		if comp, ok := ix.lookupComp(vv); ok {
			// Missing base of a negative-cost pair: the zero-cost polarity is
			// true (the costed "_n" complement then stays false — matching
			// the original objective, where this variable's coefficient was
			// negative and x=1 is the cheap side). If the complement was
			// given explicitly, stay consistent with it instead.
			if seen[comp] {
				out.Values[v] = !out.Values[comp]
				out.Derived++
			} else {
				out.Values[v] = true
			}
			continue
		}
		// Plain variable: false is the zero-cost polarity (normalized costs
		// are non-negative on x=1).
		out.Values[v] = false
	}
	return out, nil
}

func (ix *Index) lookupBase(comp pb.Var) (pb.Var, bool) {
	if ix.baseOf == nil {
		return 0, false
	}
	b, ok := ix.baseOf[comp]
	return b, ok
}

func (ix *Index) lookupComp(base pb.Var) (pb.Var, bool) {
	if ix.compOf == nil {
		return 0, false
	}
	c, ok := ix.compOf[base]
	return c, ok
}

// ParseValueLine parses one value line against p. Callers parsing many lines
// against the same problem should build an Index once and use its method.
func ParseValueLine(p *pb.Problem, line string) (Assignment, error) {
	return NewIndex(p).ParseValueLine(line)
}

// ScanValueLine reads lines from r, concatenating every "v" line (the
// PB-competition format allows the value line to wrap across several "v"
// lines), and parses the combined assignment. A bare "v" line is accepted
// for zero-variable instances. The name index is built once and shared by
// all lines.
func ScanValueLine(p *pb.Problem, r io.Reader) (Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var parts []string
	found := false
	for sc.Scan() {
		txt := strings.TrimSpace(sc.Text())
		switch {
		case txt == "v":
			found = true
		case strings.HasPrefix(txt, "v "):
			found = true
			parts = append(parts, txt[len("v "):])
		}
	}
	if err := sc.Err(); err != nil {
		return Assignment{}, err
	}
	if !found {
		return Assignment{}, fmt.Errorf("verify: no 'v' line found")
	}
	return NewIndex(p).ParseValueLine(strings.Join(parts, " "))
}

// Check evaluates the assignment against every constraint.
func Check(p *pb.Problem, values []bool) Report {
	rep := Report{Feasible: true, ViolatedIdx: -1, Objective: p.ObjectiveValue(values)}
	for i, c := range p.Constraints {
		if !c.Eval(values) {
			rep.Feasible = false
			rep.ViolatedIdx = i
			rep.Violated = c
			return rep
		}
	}
	return rep
}

// FormatValueLine renders an assignment as a PB-competition value line.
func FormatValueLine(p *pb.Problem, values []bool) string {
	var sb strings.Builder
	sb.WriteString("v")
	for v := 0; v < p.NumVars; v++ {
		sb.WriteByte(' ')
		if !values[v] {
			sb.WriteByte('-')
		}
		sb.WriteString(VarName(p, pb.Var(v)))
	}
	return sb.String()
}
