package ls

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/opb"
	"repro/internal/pb"
	"repro/internal/share"
)

func randomPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(7)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(6)))
	}
	return p
}

func parse(t *testing.T, text string) *pb.Problem {
	t.Helper()
	p, err := opb.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkSolution verifies a result's certificate against the original problem.
func checkSolution(t *testing.T, p *pb.Problem, res Result) {
	t.Helper()
	if !res.HasSolution {
		return
	}
	if len(res.Values) != p.NumVars {
		t.Fatalf("values length %d, want %d", len(res.Values), p.NumVars)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("reported solution is infeasible")
	}
	if got := p.ObjectiveValue(res.Values); got != res.Best {
		t.Fatalf("reported Best=%d but values cost %d", res.Best, got)
	}
}

// TestFindsOptimumOnSmallInstances: with a generous flip budget, restarts and
// tiny instances, local search lands on the brute-force optimum. The run is
// fully deterministic (fixed seeds, no board), so this is a stable assertion,
// not a probabilistic one.
func TestFindsOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	found, feasible := 0, 0
	for iter := 0; iter < 40; iter++ {
		p := randomPBO(rng, 2+rng.Intn(8), 1+rng.Intn(8))
		want := pb.BruteForce(p)
		aud := audit.New(p)
		res := Solve(p, Options{Seed: int64(iter + 1), MaxFlips: 60_000, Audit: aud})
		if rep := aud.Snapshot(); !rep.Ok() {
			t.Fatalf("iter %d: audit: %v", iter, rep.Violations)
		}
		checkSolution(t, p, res)
		if !want.Feasible {
			if res.HasSolution || res.Satisfiable {
				t.Fatalf("iter %d: solution claimed on an UNSAT instance", iter)
			}
			continue
		}
		feasible++
		if !res.HasSolution {
			t.Fatalf("iter %d: no solution on a feasible %d-var instance after %d flips",
				iter, p.NumVars, res.Stats.Flips)
		}
		if res.Best < want.Optimum {
			t.Fatalf("iter %d: Best=%d undercuts brute-force optimum %d", iter, res.Best, want.Optimum)
		}
		if res.Best == want.Optimum {
			found++
		}
		if res.Stats.LiftRejected != 0 {
			t.Fatalf("iter %d: %d incumbents failed lift verification without presolve",
				iter, res.Stats.LiftRejected)
		}
	}
	// Tiny instances + 60k flips: local search hits the exact optimum on
	// every feasible instance of this fixed, deterministic batch — a
	// regression in the scoring/flip logic shows up as a hard drop here.
	if feasible == 0 {
		t.Fatal("generator produced no feasible instances")
	}
	if found < feasible {
		t.Fatalf("optimum found on only %d/%d feasible instances", found, feasible)
	}
}

// TestDeterministicUnderFixedSeed: the explicit-randomness rule — two runs
// with the same seed and no board are identical, a different seed diverges.
func TestDeterministicUnderFixedSeed(t *testing.T) {
	p := randomPBO(rand.New(rand.NewSource(7)), 8, 7)
	a := Solve(p, Options{Seed: 3, MaxFlips: 20_000})
	b := Solve(p, Options{Seed: 3, MaxFlips: 20_000})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestSatisfiableWitnessOnObjectiveFree: an objective-free instance ends with
// a verified SAT witness — the one conclusive verdict a UB-only member may
// produce.
func TestSatisfiableWitnessOnObjectiveFree(t *testing.T) {
	p := parse(t, "+1 a +1 b >= 1 ;\n+2 a +1 c >= 2 ;")
	aud := audit.New(p)
	res := Solve(p, Options{Seed: 1, MaxFlips: 10_000, Audit: aud})
	if !res.Satisfiable || !res.HasSolution {
		t.Fatalf("satisfiable instance: %+v", res)
	}
	checkSolution(t, p, res)
	if rep := aud.Snapshot(); !rep.Ok() {
		t.Fatalf("audit: %v", rep.Violations)
	}
}

// TestUnsatMakesNoClaim: on infeasible instances the worker finds nothing and
// claims nothing — Result has no UNSAT verdict to fake, and the auditor sees
// no termination claim at all.
func TestUnsatMakesNoClaim(t *testing.T) {
	p := parse(t, "min: +1 a ;\n+1 a >= 1 ;\n+1 ~a >= 1 ;")
	for _, presolve := range []bool{false, true} {
		aud := audit.New(p)
		res := Solve(p, Options{Seed: 1, MaxFlips: 5_000, Presolve: presolve, Audit: aud})
		if res.HasSolution || res.Satisfiable {
			t.Fatalf("presolve=%t: claimed a solution on an UNSAT instance: %+v", presolve, res)
		}
		if res.Err != nil {
			t.Fatalf("presolve=%t: err=%v", presolve, res.Err)
		}
		if rep := aud.Snapshot(); !rep.Ok() {
			t.Fatalf("presolve=%t: audit: %v", presolve, rep.Violations)
		}
	}
}

// recPool is a fake board recording everything the worker publishes.
type recPool struct {
	mu    sync.Mutex
	costs []int64
	vals  [][]bool
	// imp, when non-nil, is served by BestIncumbent with impCost.
	imp     []bool
	impCost int64
}

func (r *recPool) PublishIncumbent(cost int64, values []bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.costs = append(r.costs, cost)
	r.vals = append(r.vals, append([]bool(nil), values...))
	return true
}

func (r *recPool) BestUB() (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.imp == nil {
		return 0, false
	}
	return r.impCost, true
}

func (r *recPool) BestIncumbent(below int64) (int64, []bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.imp == nil || r.impCost >= below {
		return 0, nil, false
	}
	return r.impCost, append([]bool(nil), r.imp...), true
}

// TestPresolvePublishesExternalSpace is the lifting regression test: with
// presolve fixing variables, every incumbent reaching the board must be in
// the ORIGINAL variable space and feasible there. Before the lift, the
// reduced-space assignment (shorter, renumbered — variable "b" occupying
// slot 0 after "a" is fixed) would corrupt the shared certificate exactly
// like the PR 4 value-line bug.
func TestPresolvePublishesExternalSpace(t *testing.T) {
	// Probing fixes a=1 (the unit row); the reduced problem keeps only b, c
	// renumbered from 0.
	p := parse(t, "min: +2 a +1 b +1 c ;\n+1 a >= 1 ;\n+1 a +1 b +1 c >= 2 ;")
	pool := &recPool{}
	aud := audit.New(p)
	res := Solve(p, Options{Seed: 5, MaxFlips: 20_000, Presolve: true, Share: pool, Audit: aud})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.PresolveFixed == 0 {
		t.Skip("presolve fixed nothing — instance no longer exercises the lift")
	}
	if !res.HasSolution {
		t.Fatal("no solution on a trivially satisfiable instance")
	}
	checkSolution(t, p, res)
	if res.Stats.LiftRejected != 0 {
		t.Fatalf("%d incumbents failed lift verification", res.Stats.LiftRejected)
	}
	if len(pool.vals) == 0 {
		t.Fatal("nothing published to the board")
	}
	for i, vals := range pool.vals {
		if len(vals) != p.NumVars {
			t.Fatalf("publication %d: %d values on the board, original problem has %d vars",
				i, len(vals), p.NumVars)
		}
		if !p.Feasible(vals) {
			t.Fatalf("publication %d: board assignment infeasible in the original space", i)
		}
		var cost int64
		for v, c := range p.Cost {
			if c != 0 && vals[v] {
				cost += c
			}
		}
		if cost != pool.costs[i] {
			t.Fatalf("publication %d: claimed internal cost %d, assignment costs %d",
				i, pool.costs[i], cost)
		}
	}
	// Brute-force cross-check: published best equals the external optimum.
	want := pb.BruteForce(p)
	if res.Best != want.Optimum {
		t.Fatalf("Best=%d, brute-force optimum %d", res.Best, want.Optimum)
	}
	if rep := aud.Snapshot(); !rep.Ok() {
		t.Fatalf("audit: %v", rep.Violations)
	}
}

// TestRestartImportsBoardIncumbent drives the restart path directly: a board
// incumbent strictly better than the solver's best is projected into the
// search space (dropping presolve-fixed variables) and the incremental state
// stays exact; a malformed entry falls back to perturbation without tearing.
func TestRestartImportsBoardIncumbent(t *testing.T) {
	p := parse(t, "min: +2 a +1 b +1 c ;\n+1 a >= 1 ;\n+1 a +1 b +1 c >= 2 ;")
	// Original-space optimum: a=1, one of b/c=1 → internal cost 3.
	pool := &recPool{imp: []bool{true, true, false}, impCost: 3}
	for _, presolve := range []bool{false, true} {
		s, _ := newSolver(p, Options{Seed: 2, Presolve: presolve, Share: pool})
		if s == nil {
			t.Fatalf("presolve=%t: solver not built", presolve)
		}
		s.restart()
		if s.stats.BoardImports != 1 {
			t.Fatalf("presolve=%t: imports=%d want 1", presolve, s.stats.BoardImports)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("presolve=%t: state torn after import: %v", presolve, err)
		}
		// The projected assignment must mirror the board's on every
		// searched variable.
		for nv := 0; nv < s.prob.NumVars; nv++ {
			ov := nv
			if s.fx != nil {
				ov = int(s.fx.NewToOld[nv])
			}
			if s.values[nv] != pool.imp[ov] {
				t.Fatalf("presolve=%t: var %d not adopted from the board", presolve, nv)
			}
		}

		// Malformed (wrong-length) board entry: no tear, perturb fallback.
		bad := &recPool{imp: []bool{true}, impCost: 1}
		s2, _ := newSolver(p, Options{Seed: 3, Presolve: presolve, Share: bad})
		s2.restart()
		if err := s2.CheckInvariants(); err != nil {
			t.Fatalf("presolve=%t: malformed import tore the state: %v", presolve, err)
		}
	}
}

// TestBoardScrambleDuringRestarts is the -race pin for the restart-import
// path (mirrors TestImportClauseInternsLiterals for clause imports): a
// scrambler goroutine floods a real share.Board with ever-better garbage
// incumbents while the worker restarts aggressively. The worker may adopt
// any of them as restart points, but its own published certificates and its
// final result must stay verified, and its incremental state exact.
func TestBoardScrambleDuringRestarts(t *testing.T) {
	p := randomPBO(rand.New(rand.NewSource(9)), 10, 8)
	board := share.NewBoard(share.Config{})
	worker := board.JoinNoClauses("ls")
	scrambler := board.Join("scrambler")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		cost := int64(1 << 40) // descending garbage: each accepted, then beaten
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals := make([]bool, p.NumVars)
			for v := range vals {
				vals[v] = rng.Intn(2) == 0
			}
			scrambler.PublishIncumbent(cost, vals)
			cost--
		}
	}()

	s, _ := newSolver(p, Options{Seed: 4, MaxFlips: 200_000, RestartInterval: 64, Share: worker})
	if s == nil {
		t.Fatal("solver not built")
	}
	s.run()
	close(stop)
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("state torn under board scramble: %v", err)
	}
	res := s.finish()
	checkSolution(t, p, res)
	// The worker's own certificate never degrades to garbage: every
	// publication was lift-verified, so zero rejections means zero corrupt
	// candidates even under a hostile board.
	if res.Stats.LiftRejected != 0 {
		t.Fatalf("%d self-publications failed verification", res.Stats.LiftRejected)
	}
}

// TestCancelStopsTheRun: Options.Cancel ends an unbounded run promptly.
func TestCancelStopsTheRun(t *testing.T) {
	p := randomPBO(rand.New(rand.NewSource(3)), 10, 8)
	cancel := make(chan struct{})
	done := make(chan Result, 1)
	go func() { done <- Solve(p, Options{Seed: 1, Cancel: cancel}) }()
	close(cancel)
	select {
	case res := <-done:
		checkSolution(t, p, res)
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not stop the run")
	}
}
