package ls

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/pb"
)

// checkState recomputes the incremental scorer state (per-row lhs, the
// violated set, the objective cost) from scratch and returns the first
// inconsistency found. Used by the solver's CheckInvariants test hook; kept
// free of solver fields so tests can also validate snapshots directly.
func checkState(rows *engine.ScoreRows, values []bool, lhs []int64, unsat []int32, pos []int32, p *pb.Problem, cost int64) error {
	if len(values) != p.NumVars {
		return fmt.Errorf("values length %d, problem has %d vars", len(values), p.NumVars)
	}
	inUnsat := make(map[int32]bool, len(unsat))
	for i, ri := range unsat {
		if inUnsat[ri] {
			return fmt.Errorf("row %d appears twice in the violated set", ri)
		}
		inUnsat[ri] = true
		if pos[ri] != int32(i) {
			return fmt.Errorf("row %d: pos says %d, violated set says %d", ri, pos[ri], i)
		}
	}
	for i := int32(0); i < int32(rows.NumRows()); i++ {
		want := rows.TrueSum(i, values)
		if lhs[i] != want {
			return fmt.Errorf("row %d: incremental lhs %d, recomputed %d", i, lhs[i], want)
		}
		viol := want < rows.Degree[i]
		if viol != inUnsat[i] {
			return fmt.Errorf("row %d: violated=%v but inUnsat=%v", i, viol, inUnsat[i])
		}
		if !viol && pos[i] != -1 {
			return fmt.Errorf("row %d: satisfied but pos=%d", i, pos[i])
		}
	}
	var want int64
	for v, c := range p.Cost {
		if c != 0 && values[v] {
			want += c
		}
	}
	if cost != want {
		return fmt.Errorf("incremental cost %d, recomputed %d", cost, want)
	}
	return nil
}
