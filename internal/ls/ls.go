// Package ls is the stochastic local-search portfolio member: a score-based
// PBO worker in the spirit of ParLS-PBO (see PAPERS.md) that searches for
// good feasible assignments by flipping variables, never by proving bounds.
//
// The solver keeps the problem's normalized rows in the engine's flat SoA
// layout (engine.ScoreRows) and maintains, per row, the true-literal
// coefficient sum; a row is violated when that sum falls short of its degree,
// and the violation *amount* — weighted by a dynamically adapted per-row
// weight — is what flip selection scores. Each step picks a violated row
// (or, once hard-feasible, the objective treated as a soft row cost ≤ best−1),
// and flips either the best-scoring variable of that row or, with the noise
// probability, a random one (WalkSAT-style); stuck steps bump the weights of
// everything currently violated (PAWS-style), so frequently violated rows
// dominate later scores. All randomness comes from one explicitly seeded RNG,
// matching the engine's explicit-randomness rule: a run with a fixed Seed and
// no board attached is bit-reproducible.
//
// As a portfolio member the worker is UB-only: it publishes every strictly
// improving incumbent to the sharing board — instantly tightening every
// branch-and-bound member's `path + lower ≥ upper` pruning and interrupting
// their in-flight bound estimations via bounds.Budget.Interrupt — and imports
// the board's best incumbent as a restart point (ParLS-PBO's solution-pool
// coupling). It can witness satisfiability (a verified feasible assignment IS
// a certificate on objective-free instances) but never exhaustion: Result has
// no "optimal" or "unsat" verdict at all, and the portfolio layer additionally
// refuses such claims from UB-only members (see internal/portfolio).
//
// With Options.Presolve the worker fixes variables first and searches the
// reduced space (fewer variables = cheaper flips), but every externally
// visible artifact — published incumbents, Result.Values, audit claims — is
// lifted back to the ORIGINAL variable space via preprocess.Lift and
// re-verified there before anyone can see it: a reduced-space assignment on a
// shared board whose other members solve the original problem would corrupt
// the shared certificate (the PR 4 value-line bug class).
package ls

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pb"
	"repro/internal/preprocess"
)

// Pool is the board surface the LS member uses: incumbent exchange only.
// share.Member implements it (asserted in internal/portfolio, keeping the
// import direction one-way); the clause half of core.Sharer is deliberately
// absent — an LS member neither learns nor consumes clauses, and joins the
// board with clause participation opted out.
type Pool interface {
	// PublishIncumbent offers a feasible solution (internal cost, excluding
	// CostOffset); true when it became the new global best.
	PublishIncumbent(cost int64, values []bool) bool
	// BestUB returns the global internal upper bound (one atomic load).
	BestUB() (int64, bool)
	// BestIncumbent returns a private copy of the global best solution when
	// its cost is strictly below the threshold.
	BestIncumbent(below int64) (cost int64, values []bool, ok bool)
}

// Options configures one local-search run. The zero value searches forever
// (bound it with MaxFlips, TimeLimit, or Cancel).
type Options struct {
	// Seed seeds the solver's explicit RNG. Runs with the same Seed and no
	// board are bit-reproducible; portfolio members carry distinct seeds.
	Seed int64
	// MaxFlips bounds the total number of flips (0 = unlimited).
	MaxFlips int64
	// TimeLimit bounds wall-clock time (0 = unlimited).
	TimeLimit time.Duration
	// Cancel, when non-nil, stops the search as soon as it is closed.
	Cancel <-chan struct{}
	// Noise is the probability of a random (non-greedy) flip inside the
	// selected row (0 = default 0.12; negative = greedy only).
	Noise float64
	// RestartInterval is the number of flips without a new best incumbent
	// before the solver restarts — from the board's incumbent when one
	// strictly better than its own exists, otherwise by perturbing its best
	// known assignment (0 = default 4096; negative disables restarts).
	RestartInterval int64
	// Presolve runs preprocess.FixVariables first and searches the reduced
	// space; incumbents are lifted back to the original variable space
	// before publication (see the package comment).
	Presolve bool
	// Share, when non-nil, connects the worker to a portfolio board.
	Share Pool
	// Audit, when non-nil, re-verifies every incumbent and the terminal
	// upper-bound claim against the original problem.
	Audit *audit.Auditor
	// Trace, when non-nil, records lifecycle events (start/end, incumbents,
	// restarts, board publications).
	Trace *obs.Tracer
	// Live, when non-nil, receives periodic metrics snapshots (flips,
	// restarts, incumbent) plus one terminal publish.
	Live *obs.Live
	// OnIncumbent, when non-nil, is invoked with the external objective
	// (including CostOffset) at every strict improvement.
	OnIncumbent func(best int64)
}

// Result is the outcome of a local-search run. There is deliberately no
// optimal/unsat verdict: the worker contributes upper bounds and SAT
// witnesses only.
type Result struct {
	// HasSolution reports whether any feasible assignment was found.
	HasSolution bool
	// Best is the external objective (including CostOffset) of the best
	// solution; meaningful only with HasSolution.
	Best int64
	// Values is the best assignment in the ORIGINAL variable space.
	Values []bool
	// Satisfiable is set when the instance has no objective and a verified
	// feasible assignment was found — a sound SAT certificate.
	Satisfiable bool
	// Stats of the run.
	Stats Stats
	// Err reports a setup failure (presolve error); the search itself does
	// not fail.
	Err error
}

// Stats counts local-search events.
type Stats struct {
	Flips        int64
	Restarts     int64
	Improvements int64 // strict local incumbent improvements
	StuckSteps   int64 // steps that bumped constraint weights
	// BoardImports counts restarts seeded from a board incumbent;
	// BoardPublished/BoardWon the incumbents offered to/accepted by the
	// board.
	BoardImports   int64
	BoardPublished int64
	BoardWon       int64
	// LiftRejected counts incumbents dropped because the lifted assignment
	// failed re-verification against the original problem (always 0 unless
	// a presolve mapping bug is present — the defensive check that keeps a
	// corrupt assignment off the shared board).
	LiftRejected int64
	// PresolveFixed is the number of variables presolve eliminated.
	PresolveFixed int
}

// upperInf mirrors core's "no incumbent" sentinel.
const upperInf = int64(math.MaxInt64 / 2)

const (
	defaultNoise           = 0.12
	defaultRestartInterval = 4096
	// checkEvery is the flip cadence of the deadline/cancel/board-UB poll.
	checkEvery = 256
	// liveEvery is the flip cadence of Live metric publishes.
	liveEvery = 4096
	// maxWeight caps the dynamic row weights (bounds score magnitudes).
	maxWeight = 1 << 20
	// perturbFrac is the fraction of variables flipped when a restart
	// perturbs the best known assignment instead of importing one.
	perturbFrac = 8
)

type solver struct {
	orig *pb.Problem        // original problem: verification + lift target
	prob *pb.Problem        // searched problem (== orig unless Presolve)
	fx   *preprocess.Fixing // nil unless Presolve
	rows *engine.ScoreRows
	opt  Options
	rng  *rand.Rand

	values []bool  // current assignment, prob space
	lhs    []int64 // per-row true-coef sum
	weight []int64 // per-row dynamic weight
	unsat  []int32 // violated rows
	pos    []int32 // row -> index in unsat (-1 = satisfied)

	cost      int64 // internal objective of prob (excluding CostOffset)
	objWeight int64
	offDelta  int64 // prob.CostOffset − orig.CostOffset (absorbed fixed costs)

	best     int64  // best internal cost found locally (prob space)
	bestVals []bool // prob-space copy of the best assignment
	// extBest/extVals are the lifted, re-verified certificate of best: the
	// only form that ever leaves the solver (board, Result, audit).
	extBest int64
	extVals []bool

	boardUB int64 // last polled board UB, mapped into prob space

	// hopeless marks an instance with a row whose coefficient sum falls
	// short of its degree: no assignment satisfies it (normalization can
	// even leave such a row with no literals at all), so flipping is
	// pointless and the run ends immediately — with no claim, as always.
	hopeless bool

	stats        Stats
	sinceImprove int64
	deadline     time.Time
	hasDeadline  bool
	expired      bool
	satisfiable  bool

	trace *obs.Tracer
}

// Solve runs local search on p under the given options.
func Solve(p *pb.Problem, opt Options) Result {
	s, early := newSolver(p, opt)
	if s == nil {
		return early
	}
	s.trace.Emit(obs.EvSolveStart, "ls", int64(s.prob.NumVars), int64(s.rows.NumRows()), "")
	s.run()
	return s.finish()
}

// newSolver builds a ready-to-run solver, or (nil, result) when the run is
// already decided (presolve error / presolve-proved-UNSAT). Split from Solve
// so package tests can drive the flip loop and invariants directly.
func newSolver(p *pb.Problem, opt Options) (*solver, Result) {
	s := &solver{orig: p, prob: p, opt: opt, best: upperInf, boardUB: upperInf}
	if opt.Noise == 0 {
		s.opt.Noise = defaultNoise
	} else if opt.Noise < 0 {
		s.opt.Noise = 0
	}
	if opt.RestartInterval == 0 {
		s.opt.RestartInterval = defaultRestartInterval
	}
	if opt.TimeLimit > 0 {
		s.deadline = time.Now().Add(opt.TimeLimit)
		s.hasDeadline = true
	}
	s.trace = opt.Trace
	s.rng = rand.New(rand.NewSource(mixSeed(opt.Seed)))

	if opt.Presolve {
		fx, err := preprocess.FixVariables(p, preprocess.DefaultFixOptions)
		if err != nil {
			return nil, Result{Err: err, Stats: s.stats}
		}
		s.stats.PresolveFixed = fx.NumFixed()
		if fx.ProvedUnsat {
			// A UB-only worker has no UNSAT verdict to report; it simply
			// finds nothing. The proof belongs to the proof-capable members.
			return nil, Result{Stats: s.stats}
		}
		s.fx = fx
		s.prob = fx.Problem
		s.offDelta = fx.Problem.CostOffset - p.CostOffset
	}

	s.rows = engine.NewScoreRows(s.prob)
	n := s.prob.NumVars
	s.values = make([]bool, n)
	s.lhs = make([]int64, s.rows.NumRows())
	s.weight = make([]int64, s.rows.NumRows())
	s.pos = make([]int32, s.rows.NumRows())
	for i := range s.weight {
		s.weight[i] = 1
	}
	s.objWeight = 1
	for i := int32(0); i < int32(s.rows.NumRows()); i++ {
		var sum int64
		for _, c := range s.rows.RowCoefs(i) {
			sum += c
		}
		if sum < s.rows.Degree[i] {
			s.hopeless = true
			break
		}
	}
	s.initAssignment()
	s.rebuild()
	return s, Result{}
}

// mixSeed keeps seed 0 usable (a zero rand source is legal but correlates
// members that forgot to set seeds; the mix keeps distinct seeds distinct).
func mixSeed(seed int64) int64 {
	if seed == 0 {
		return 0x6c73 // "ls"
	}
	return seed
}

// initAssignment starts from the objective-greedy corner: every costed
// variable false (cost 0), free variables biased by their occurrence
// polarity so fewer rows start violated.
func (s *solver) initAssignment() {
	for v := 0; v < s.prob.NumVars; v++ {
		if s.prob.Cost[v] != 0 {
			s.values[v] = false
			continue
		}
		var up, down int64
		for _, ref := range s.rows.RefsOf(pb.Var(v)) {
			if ref.Delta > 0 {
				up += ref.Delta
			} else {
				down -= ref.Delta
			}
		}
		s.values[v] = up >= down
	}
}

// rebuild recomputes lhs, the violated set and the cost from values.
func (s *solver) rebuild() {
	s.unsat = s.unsat[:0]
	for i := int32(0); i < int32(s.rows.NumRows()); i++ {
		s.lhs[i] = s.rows.TrueSum(i, s.values)
		if s.lhs[i] < s.rows.Degree[i] {
			s.pos[i] = int32(len(s.unsat))
			s.unsat = append(s.unsat, i)
		} else {
			s.pos[i] = -1
		}
	}
	s.cost = 0
	for v, c := range s.prob.Cost {
		if c != 0 && s.values[v] {
			s.cost += c
		}
	}
}

// target is the internal cost the objective row demands: one below the best
// incumbent known anywhere (local or board). upperInf-1 when none is known
// (the objective exerts no pressure yet).
func (s *solver) target() int64 {
	t := s.best
	if s.boardUB < t {
		t = s.boardUB
	}
	return t - 1
}

func (s *solver) run() {
	if s.hopeless {
		return
	}
	for {
		if s.stats.Flips%checkEvery == 0 && s.stopNow() {
			return
		}
		if s.opt.MaxFlips > 0 && s.stats.Flips >= s.opt.MaxFlips {
			return
		}
		if len(s.unsat) == 0 {
			if !s.hardFeasibleStep() {
				return
			}
			continue
		}
		if s.opt.RestartInterval > 0 && s.sinceImprove >= s.opt.RestartInterval {
			s.restart()
			continue
		}
		s.violatedStep()
	}
}

// stopNow polls the deadline, the cancel channel, the board upper bound and
// the Live cadence. Sticky once true.
func (s *solver) stopNow() bool {
	if s.expired {
		return true
	}
	if s.hasDeadline && time.Now().After(s.deadline) {
		s.expired = true
		return true
	}
	if s.opt.Cancel != nil {
		select {
		case <-s.opt.Cancel:
			s.expired = true
			return true
		default:
		}
	}
	if s.opt.Share != nil {
		if ub, ok := s.opt.Share.BestUB(); ok {
			if mapped := ub - s.offDelta; mapped < s.boardUB {
				s.boardUB = mapped
			}
		}
	}
	if s.opt.Live != nil && s.stats.Flips%liveEvery == 0 {
		s.publishLive("")
	}
	return false
}

// hardFeasibleStep handles a state with every hard row satisfied: record the
// incumbent if it improves, then either stop (nothing left to optimize) or
// put pressure on the objective row. Returns false to end the run.
func (s *solver) hardFeasibleStep() bool {
	if s.cost < s.best {
		s.recordIncumbent()
		if s.satisfiable {
			return false // objective-free: the witness is the whole job
		}
	}
	if s.best == 0 {
		// Internal cost 0 is the floor of a normal-form objective; no
		// strictly better incumbent exists to search for. Stop flipping —
		// the proof that 0 is optimal belongs to the B&B members.
		return false
	}
	if s.cost <= s.target() {
		// Matching the board's best without beating it: perturb away.
		s.perturb()
		return true
	}
	s.objectiveStep()
	return true
}

// recordIncumbent lifts, re-verifies and publishes the current (hard-
// feasible) assignment as the new best incumbent.
func (s *solver) recordIncumbent() {
	ext := s.values
	if s.fx != nil {
		ext = s.fx.Lift(s.values)
	}
	// Defensive re-verification in the ORIGINAL space before anything
	// escapes: a Lift/offset bug must quarantine the assignment, not
	// poison the board, the auditor, or the caller.
	var extCost int64
	for v, c := range s.orig.Cost {
		if c != 0 && ext[v] {
			extCost += c
		}
	}
	if !s.orig.Feasible(ext) || extCost != s.cost+s.offDelta {
		s.stats.LiftRejected++
		return
	}
	s.best = s.cost
	s.bestVals = append(s.bestVals[:0], s.values...)
	s.extBest = extCost + s.orig.CostOffset
	s.extVals = append([]bool(nil), ext...)
	s.stats.Improvements++
	s.sinceImprove = 0
	if !s.orig.HasObjective() {
		s.satisfiable = true
	}
	s.trace.Emit(obs.EvIncumbent, "ls", s.extBest, s.stats.Flips, "local")
	s.opt.Audit.Incumbent(s.extBest, s.extVals)
	if s.opt.OnIncumbent != nil {
		s.opt.OnIncumbent(s.extBest)
	}
	if s.opt.Share != nil {
		s.stats.BoardPublished++
		if s.opt.Share.PublishIncumbent(extCost, s.extVals) {
			s.stats.BoardWon++
			s.trace.Emit(obs.EvSharePublish, "incumbent", s.extBest, 0, "won")
		} else {
			s.trace.Emit(obs.EvSharePublish, "incumbent", s.extBest, 0, "lost")
		}
		if ub, ok := s.opt.Share.BestUB(); ok {
			if mapped := ub - s.offDelta; mapped < s.boardUB {
				s.boardUB = mapped
			}
		}
	}
}

// violation is the amount by which a row misses its degree (0 = satisfied).
func violation(lhs, degree int64) int64 {
	if lhs >= degree {
		return 0
	}
	return degree - lhs
}

// flipGain scores flipping v: the weighted decrease in total violation
// (hard rows) plus the weighted objective relief. Positive = improving.
func (s *solver) flipGain(v pb.Var, tgt int64) int64 {
	toTrue := !s.values[v]
	var gain int64
	for _, ref := range s.rows.RefsOf(v) {
		d := ref.Delta
		if !toTrue {
			d = -d
		}
		old := s.lhs[ref.Row]
		deg := s.rows.Degree[ref.Row]
		gain += s.weight[ref.Row] * (violation(old, deg) - violation(old+d, deg))
	}
	if c := s.prob.Cost[v]; c != 0 {
		dc := c
		if !toTrue {
			dc = -c
		}
		gain += s.objWeight * (objViolation(s.cost, tgt) - objViolation(s.cost+dc, tgt))
	}
	return gain
}

// objViolation is how far the cost exceeds the target (the soft objective
// row cost ≤ target), 0 before any incumbent exists.
func objViolation(cost, tgt int64) int64 {
	if tgt >= upperInf-1 || cost <= tgt {
		return 0
	}
	return cost - tgt
}

// violatedStep makes one flip driven by a random violated row.
func (s *solver) violatedStep() {
	ri := s.unsat[s.rng.Intn(len(s.unsat))]
	lits := s.rows.RowLits(ri)
	if s.opt.Noise > 0 && s.rng.Float64() < s.opt.Noise {
		s.flip(lits[s.rng.Intn(len(lits))].Var())
		return
	}
	tgt := s.target()
	bestVar := pb.Var(-1)
	bestGain := int64(math.MinInt64)
	picks := 0
	for _, l := range lits {
		v := l.Var()
		g := s.flipGain(v, tgt)
		switch {
		case g > bestGain:
			bestGain, bestVar, picks = g, v, 1
		case g == bestGain:
			// Reservoir tie-break keeps selection uniform among the best.
			picks++
			if s.rng.Intn(picks) == 0 {
				bestVar = v
			}
		}
	}
	if bestGain <= 0 {
		// Local optimum for this row: reweight everything currently
		// violated so the landscape tilts, then take the move anyway
		// (sideways/downhill escape).
		s.bumpWeights()
	}
	s.flip(bestVar)
}

// objectiveStep makes one flip driven by the objective row: turn off a
// costed true variable, preferring flips that keep hard rows satisfied.
func (s *solver) objectiveStep() {
	tgt := s.target()
	bestVar := pb.Var(-1)
	bestGain := int64(math.MinInt64)
	picks := 0
	for v := 0; v < s.prob.NumVars; v++ {
		if !s.values[v] || s.prob.Cost[v] == 0 {
			continue
		}
		g := s.flipGain(pb.Var(v), tgt)
		switch {
		case g > bestGain:
			bestGain, bestVar, picks = g, pb.Var(v), 1
		case g == bestGain:
			picks++
			if s.rng.Intn(picks) == 0 {
				bestVar = pb.Var(v)
			}
		}
	}
	if bestVar < 0 {
		// No costed variable is on, yet cost > target: impossible (costs are
		// non-negative); treat as converged.
		s.perturb()
		return
	}
	if bestGain <= 0 {
		s.bumpWeights()
		if s.opt.Noise > 0 && s.rng.Float64() < s.opt.Noise {
			// Noise escape: a random costed true variable instead.
			var cands []pb.Var
			for v := 0; v < s.prob.NumVars; v++ {
				if s.values[v] && s.prob.Cost[v] != 0 {
					cands = append(cands, pb.Var(v))
				}
			}
			bestVar = cands[s.rng.Intn(len(cands))]
		}
	}
	s.flip(bestVar)
}

// bumpWeights increments the weight of every violated row (and the
// objective's when the cost exceeds the target), PAWS-style.
func (s *solver) bumpWeights() {
	s.stats.StuckSteps++
	for _, ri := range s.unsat {
		if s.weight[ri] < maxWeight {
			s.weight[ri]++
		}
	}
	if objViolation(s.cost, s.target()) > 0 && s.objWeight < maxWeight {
		s.objWeight++
	}
}

// flip applies one variable flip and updates lhs, the violated set and the
// cost incrementally.
func (s *solver) flip(v pb.Var) {
	toTrue := !s.values[v]
	s.values[v] = toTrue
	for _, ref := range s.rows.RefsOf(v) {
		d := ref.Delta
		if !toTrue {
			d = -d
		}
		old := s.lhs[ref.Row]
		now := old + d
		s.lhs[ref.Row] = now
		deg := s.rows.Degree[ref.Row]
		wasViol := old < deg
		isViol := now < deg
		switch {
		case isViol && !wasViol:
			s.pos[ref.Row] = int32(len(s.unsat))
			s.unsat = append(s.unsat, ref.Row)
		case wasViol && !isViol:
			s.removeUnsat(ref.Row)
		}
	}
	if c := s.prob.Cost[v]; c != 0 {
		if toTrue {
			s.cost += c
		} else {
			s.cost -= c
		}
	}
	s.stats.Flips++
	s.sinceImprove++
}

// removeUnsat drops row ri from the violated set (swap-with-last).
func (s *solver) removeUnsat(ri int32) {
	i := s.pos[ri]
	last := s.unsat[len(s.unsat)-1]
	s.unsat[i] = last
	s.pos[last] = i
	s.unsat = s.unsat[:len(s.unsat)-1]
	s.pos[ri] = -1
}

// restart reseeds the assignment: from the board's incumbent when one
// strictly better than our best exists (imported at a restart boundary only,
// into a private copy — the working assignment is never overwritten
// mid-flip-batch), otherwise by perturbing the best known assignment.
func (s *solver) restart() {
	s.stats.Restarts++
	s.sinceImprove = 0
	detail := "perturb"
	if s.opt.Share != nil {
		// BestIncumbent returns a snapshot copied under the board lock; the
		// board may improve concurrently, but this copy is immutable and
		// internally consistent (cost matches values).
		if c, vals, ok := s.opt.Share.BestIncumbent(s.best + s.offDelta); ok {
			s.adoptBoard(c, vals)
			detail = "board-import"
		}
	}
	if detail == "perturb" {
		s.perturb()
	}
	s.trace.Emit(obs.EvRestart, "ls", s.stats.Restarts, s.stats.Flips, detail)
}

// adoptBoard projects a board incumbent (original variable space) into the
// search space and restarts from it. With presolve active the projection
// simply drops the fixed variables: the result need not be feasible or cost
// what the board claims — it is only a restart point, and nothing is
// published back without the usual lift-and-verify.
func (s *solver) adoptBoard(cost int64, vals []bool) {
	s.stats.BoardImports++
	if mapped := cost - s.offDelta; mapped < s.boardUB {
		s.boardUB = mapped
	}
	if len(vals) != s.orig.NumVars {
		// A malformed board entry (wrong problem?) must not tear the
		// assignment arrays; keep our own state and perturb instead.
		s.perturb()
		return
	}
	if s.fx != nil {
		for nv := 0; nv < s.prob.NumVars; nv++ {
			s.values[nv] = vals[s.fx.NewToOld[nv]]
		}
	} else {
		copy(s.values, vals)
	}
	s.rebuild()
}

// perturb random-flips a fraction of the variables starting from the best
// known assignment (or the current one before any incumbent exists).
func (s *solver) perturb() {
	if s.bestVals != nil {
		copy(s.values, s.bestVals)
	}
	n := s.prob.NumVars
	if n == 0 {
		return
	}
	k := n/perturbFrac + 1
	for i := 0; i < k; i++ {
		v := s.rng.Intn(n)
		s.values[v] = !s.values[v]
	}
	s.rebuild()
	s.sinceImprove = 0
}

// finish assembles the result and the terminal claims.
func (s *solver) finish() Result {
	res := Result{Stats: s.stats}
	if s.extVals != nil {
		res.HasSolution = true
		res.Best = s.extBest
		res.Values = append([]bool(nil), s.extVals...)
		res.Satisfiable = s.satisfiable
	}
	switch {
	case res.Satisfiable:
		s.opt.Audit.Termination(audit.Claim{Satisfiable: true})
	case res.HasSolution:
		s.opt.Audit.Termination(audit.Claim{UpperBound: true, Best: res.Best})
	}
	status := "limit"
	if res.Satisfiable {
		status = "satisfiable"
	}
	s.trace.Emit(obs.EvSolveEnd, "ls", s.stats.Flips, s.stats.Improvements, status)
	s.publishLive(status)
	return res
}

// publishLive pushes a metrics snapshot (status "" while running).
func (s *solver) publishLive(status string) {
	if s.opt.Live == nil {
		return
	}
	m := obs.SolverMetrics{
		Status:    status,
		Flips:     s.stats.Flips,
		Restarts:  s.stats.Restarts,
		Solutions: s.stats.Improvements,
	}
	if s.extVals != nil {
		b := s.extBest
		m.Best = &b
	}
	if s.opt.Share != nil {
		m.Sharing = &obs.SharingMetrics{
			IncumbentsPublished: s.stats.BoardPublished,
			IncumbentsWon:       s.stats.BoardWon,
			ForeignIncumbents:   s.stats.BoardImports,
		}
	}
	s.opt.Live.Publish(m)
}

// CheckInvariants recomputes the scorer's incremental state from scratch and
// reports the first inconsistency (nil = consistent). Test hook: the race
// and fuzz tests call it after scrambling the board mid-run.
func (s *solver) CheckInvariants() error {
	return checkState(s.rows, s.values, s.lhs, s.unsat, s.pos, s.prob, s.cost)
}
