package portfolio

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pb"
)

// TestPanickingMemberDoesNotPreventWin is the ISSUE's portfolio acceptance
// property: with the "lpr" member armed to panic on entry, a surviving
// member must still win the race with the brute-force optimum, and the
// crash must be reported in Errors rather than aborting the portfolio.
func TestPanickingMemberDoesNotPreventWin(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(31337))
	sawCrash := false
	for iter := 0; iter < 40; iter++ {
		p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("portfolio.worker", fault.Spec{Kind: fault.KindPanic, Every: 1, Match: "lpr"})
		res := Solve(p, DefaultConfigs())
		fault.Reset()

		if want.Feasible {
			if res.Status != core.StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: status=%v best=%d want optimal %d",
					iter, res.Status, res.Best, want.Optimum)
			}
			if !p.Feasible(res.Values) {
				t.Fatalf("iter %d: winner returned infeasible values", iter)
			}
		} else if res.Status != core.StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
		if res.Winner == "lpr" {
			t.Fatalf("iter %d: the crashed member cannot win", iter)
		}
		if err, ok := res.Errors["lpr"]; ok {
			sawCrash = true
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("iter %d: crash error missing panic context: %v", iter, err)
			}
		}
	}
	if !sawCrash {
		t.Fatal("the armed member never crashed: the test exercised nothing")
	}
}

// TestAllMembersCrashReportsEveryError arms the worker point without a
// Match key so every member panics: the portfolio must degrade to a
// solution-less StatusLimit with all four crashes recorded.
func TestAllMembersCrashReportsEveryError(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(99))
	p := randomPBO(rng, 6, 6)
	fault.Arm("portfolio.worker", fault.Spec{Kind: fault.KindPanic, Every: 1})
	res := Solve(p, DefaultConfigs())
	fault.Reset()
	if res.Status != core.StatusLimit {
		t.Fatalf("status=%v want limit", res.Status)
	}
	if res.HasSolution {
		t.Fatal("no member survived yet a solution was reported")
	}
	if len(res.Errors) != 4 {
		t.Fatalf("got %d errors, want 4: %v", len(res.Errors), res.Errors)
	}
	for _, name := range []string{"plain", "mis", "lgr", "lpr"} {
		if res.Errors[name] == nil {
			t.Fatalf("member %q crash not recorded", name)
		}
	}
}

// TestSolveWithCancelStitchesIncumbent closes the external stop channel
// after the first incumbent callback: the race must unwind with the best
// incumbent found so far instead of hanging on un-budgeted members.
func TestSolveWithCancelStitchesIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	sawLimit := false
	for iter := 0; iter < 20 && !sawLimit; iter++ {
		p := randomPBO(rng, 12+rng.Intn(6), 10+rng.Intn(8))
		stop := make(chan struct{})
		var once sync.Once
		configs := DefaultConfigs()
		for i := range configs {
			configs[i].Options.OnIncumbent = func(int64) {
				once.Do(func() { close(stop) })
			}
		}
		res := SolveWithCancel(p, configs, stop)
		switch res.Status {
		case core.StatusLimit:
			sawLimit = true
			if res.HasSolution && !p.Feasible(res.Values) {
				t.Fatalf("iter %d: stitched incumbent infeasible", iter)
			}
		case core.StatusOptimal, core.StatusUnsat:
			// A member finished before the stop propagated — legal.
		default:
			t.Fatalf("iter %d: unexpected status %v", iter, res.Status)
		}
	}
	// Racy by nature: members may always finish before the stop lands, so
	// sawLimit is best-effort. The test still asserts no wrong statuses.
}
