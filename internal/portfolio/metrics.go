package portfolio

import (
	"repro/internal/obs"
	"repro/internal/share"
)

// BoardMetrics converts the board's global counters into the unified
// snapshot schema. The conversion lives here (not in share) to keep obs a
// stdlib-only leaf and share free of observability concerns.
func BoardMetrics(st share.Stats) obs.BoardMetrics {
	return obs.BoardMetrics{
		Members:          st.Members,
		ClauseMembers:    st.ClauseMembers,
		ClausesPublished: st.ClausesPublished,
		ClausesTooLong:   st.ClausesTooLong,
		ClausesHighLBD:   st.ClausesHighLBD,
		ClausesDuplicate: st.ClausesDuplicate,
		ClausesLapped:    st.ClausesLapped,
		Incumbents:       st.Incumbents,
		HasIncumbent:     st.HasIncumbent,
		BestCost:         st.BestCost,
		BestOwner:        st.BestOwner,
	}
}

// Metrics converts the portfolio outcome into the per-member metrics blocks
// of the unified schema (terminal counters, one entry per member in config
// order), for end-of-run snapshot writers that ran without a live registry.
func (r *Result) Metrics() []obs.SolverMetrics {
	out := make([]obs.SolverMetrics, len(r.Members))
	for i, m := range r.Members {
		out[i] = m.Result.Metrics(m.Name)
	}
	return out
}
