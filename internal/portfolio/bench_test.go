package portfolio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pb"
	"repro/internal/share"
)

func newHotPathBoard(withUB bool) *share.Board {
	bd := share.NewBoard(share.Config{})
	if withUB {
		bd.Join("seed").PublishIncumbent(42, []bool{true})
	}
	return bd
}

// benchInstances builds a small suite of generator-backed instances that are
// hard enough for the members to conflict and share, yet solved to optimality
// in well under a second per member.
func benchInstances(b *testing.B) []*pb.Problem {
	b.Helper()
	var out []*pb.Problem
	for k := 0; k < 2; k++ {
		p, err := gen.Synthesis(gen.SynthesisConfig{
			Nodes: 13 + 2*k, Impls: 4, Fanout: 2.0, Incompat: 0.5,
			Seed: int64(1000*k + 7),
		})
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	p, err := gen.MinCover(gen.MinCoverConfig{
		Inputs: 6, OnDensity: 0.3, DcDensity: 0.1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return append(out, p)
}

// BenchmarkPortfolioSharedVsIsolated runs every default member to a full
// optimality proof on the same instances — cooperatively (one shared board
// per instance) and isolated — and reports total conflicts/op and
// decisions/op across all members, the work measure the sharing layer is
// supposed to reduce (wall-clock alone is too noisy at test scale, and the
// racing driver's winner-cancellation would hide cooperation on few-core
// machines: cancelled members do no measurable work either way). Run via
// `make bench-portfolio`.
func BenchmarkPortfolioSharedVsIsolated(b *testing.B) {
	insts := benchInstances(b)
	configs := DefaultConfigs()
	for _, mode := range []struct {
		name string
		iso  bool
	}{{"shared", false}, {"isolated", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var conflicts, decisions int64
			for i := 0; i < b.N; i++ {
				for _, p := range insts {
					var board *share.Board
					if !mode.iso {
						board = share.NewBoard(share.Config{})
					}
					var optimum int64
					for mi, cfg := range configs {
						opt := cfg.Options
						if board != nil {
							opt.Share = board.Join(cfg.Name)
						}
						res := core.Solve(p, opt)
						if res.Status != core.StatusOptimal && res.Status != core.StatusUnsat {
							b.Fatalf("%s: status=%v", cfg.Name, res.Status)
						}
						if mi == 0 {
							optimum = res.Best
						} else if res.Status == core.StatusOptimal && res.Best != optimum {
							b.Fatalf("%s: optimum %d disagrees with %d", cfg.Name, res.Best, optimum)
						}
						conflicts += res.Stats.Conflicts + res.Stats.BoundConflicts
						decisions += res.Stats.Decisions
					}
				}
			}
			b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
			b.ReportMetric(float64(decisions)/float64(b.N), "decisions/op")
		})
	}
}

// BenchmarkPortfolioRace is the end-to-end racing driver on the same
// instances (winner cancellation included), shared vs isolated: the
// wall-clock figure of merit on multi-core machines.
func BenchmarkPortfolioRace(b *testing.B) {
	insts := benchInstances(b)
	for _, mode := range []struct {
		name string
		iso  bool
	}{{"shared", false}, {"isolated", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range insts {
					res := SolveOpts(p, nil, Options{NoSharing: mode.iso})
					if res.Status != core.StatusOptimal && res.Status != core.StatusUnsat {
						b.Fatalf("status=%v", res.Status)
					}
				}
			}
		})
	}
}

// BenchmarkBoardHotPath measures the per-node cost of the sharing fast paths
// (the atomic upper-bound poll and an empty drain) — these sit on every
// search node of every member and must stay in the nanosecond range.
func BenchmarkBoardHotPath(b *testing.B) {
	bench := func(b *testing.B, withUB bool) {
		bd := newHotPathBoard(withUB)
		m := bd.Join("probe")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ub, ok := m.BestUB(); ok && ub < 0 {
				b.Fatal("impossible")
			}
			m.DrainClauses(func([]pb.Lit) { b.Fatal("unexpected clause") })
		}
	}
	b.Run("empty-board", func(b *testing.B) { bench(b, false) })
	b.Run("with-incumbent", func(b *testing.B) { bench(b, true) })
}
