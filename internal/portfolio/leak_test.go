package portfolio

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestNoGoroutineLeakOnEarlyCancel pins the library-layer leak audit: 100
// portfolio solves cancelled immediately must leave no goroutine behind —
// every member, the drainer and the incumbent-forwarding plumbing must join
// even when Stop fires before the members have really started.
func TestNoGoroutineLeakOnEarlyCancel(t *testing.T) {
	p, err := gen.Synthesis(gen.SynthesisConfig{Nodes: 8, Impls: 3, Fanout: 1.5, Incompat: 0.3, Seed: 5})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	// Warm-up: pull lazy initialization (LP scratch pools etc.) out of the
	// measurement.
	SolveOpts(p, nil, Options{})

	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			SolveOpts(p, nil, Options{Stop: stop})
		}()
		// Alternate between cancelling instantly and after a short beat, so
		// both the not-yet-started and mid-search paths are exercised.
		if i%2 == 1 {
			time.Sleep(200 * time.Microsecond)
		}
		close(stop)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: cancelled solve never returned", i)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d after=%d — leak across 100 cancelled solves\n%s",
				before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
