package portfolio

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pb"
	"repro/internal/share"
)

// TestSharingNeverChangesOptimum is the differential acceptance test of the
// cooperative layer: for every lower-bound method, the optimum with sharing
// enabled is bit-identical to the isolated run and to brute force. Imported
// clauses and adopted incumbents may change *how fast* the race finishes,
// never *what* it proves.
func TestSharingNeverChangesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 40; iter++ {
		p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
		want := pb.BruteForce(p)
		shared := SolveOpts(p, nil, Options{})
		isolated := SolveOpts(p, nil, Options{NoSharing: true})
		for name, res := range map[string]Result{"shared": shared, "isolated": isolated} {
			if want.Feasible {
				if res.Status != core.StatusOptimal {
					t.Fatalf("iter %d %s: status=%v want optimal", iter, name, res.Status)
				}
				if res.Best != want.Optimum {
					t.Fatalf("iter %d %s: best=%d want %d (winner %s)",
						iter, name, res.Best, want.Optimum, res.Winner)
				}
				if !p.Feasible(res.Values) {
					t.Fatalf("iter %d %s: reported values infeasible", iter, name)
				}
			} else if res.Status != core.StatusUnsat {
				t.Fatalf("iter %d %s: status=%v want unsat", iter, name, res.Status)
			}
		}
		if shared.Best != isolated.Best || shared.Status != isolated.Status {
			t.Fatalf("iter %d: sharing changed the verdict: %v/%d vs %v/%d",
				iter, shared.Status, shared.Best, isolated.Status, isolated.Best)
		}
		if !shared.Sharing || isolated.Sharing {
			t.Fatalf("iter %d: Sharing flags wrong: %t/%t", iter, shared.Sharing, isolated.Sharing)
		}
	}
}

// TestSharingPerMethodAgainstBruteForce runs each lower-bound method as a
// two-member portfolio (the method + plain) with sharing on, so the method
// under test both imports and exports, and checks the optimum against brute
// force.
func TestSharingPerMethodAgainstBruteForce(t *testing.T) {
	methods := []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR}
	rng := rand.New(rand.NewSource(99))
	for _, m := range methods {
		configs := []Config{
			{Name: "probe-" + m.String(), Options: core.Options{LowerBound: m, CardinalityInference: true, Seed: 9, RandomBranchFreq: 0.05}},
			{Name: "mate", Options: core.Options{LowerBound: core.LBNone, Seed: 10, RandomBranchFreq: 0.05}},
		}
		for iter := 0; iter < 15; iter++ {
			p := randomPBO(rng, 2+rng.Intn(6), 1+rng.Intn(8))
			want := pb.BruteForce(p)
			res := SolveOpts(p, configs, Options{Share: share.Config{MaxLen: 6, MaxLBD: 3}})
			if want.Feasible {
				if res.Status != core.StatusOptimal || res.Best != want.Optimum {
					t.Fatalf("%s iter %d: %v/%d want optimal/%d",
						m, iter, res.Status, res.Best, want.Optimum)
				}
			} else if res.Status != core.StatusUnsat {
				t.Fatalf("%s iter %d: status=%v want unsat", m, iter, res.Status)
			}
		}
	}
}

// TestChaosCorruptImportsStaySound arms the "share.import" corruption point
// so every drained clause is structurally mangled (cycling through
// out-of-range literals, duplicates, tautologies and empty clauses) and
// checks the race still returns the brute-force optimum: the engine-side
// import validation must reject or normalize every corrupt clause, and an
// empty *corrupted* clause must not be mistaken for a root conflict.
func TestChaosCorruptImportsStaySound(t *testing.T) {
	defer fault.Reset()
	fault.Arm("share.import", fault.Spec{Kind: fault.KindCorrupt, Every: 1})
	rng := rand.New(rand.NewSource(515))
	var rejected, dropped int64
	for iter := 0; iter < 30; iter++ {
		p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
		want := pb.BruteForce(p)
		res := SolveOpts(p, nil, Options{})
		if want.Feasible {
			if res.Status != core.StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: corrupt imports changed the answer: %v/%d want optimal/%d",
					iter, res.Status, res.Best, want.Optimum)
			}
		} else if res.Status != core.StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
		for _, m := range res.Members {
			rejected += m.Stats.Sharing.ImportsRejected
			dropped += m.Stats.Sharing.ImportsDropped
		}
	}
	if rejected == 0 && dropped == 0 {
		t.Log("no corrupt clause reached an import site (races finished before any drain); soundness still verified")
	}
}

// TestDeterministicSequentialMode: MaxConcurrent=1 + NoSharing replays the
// exact same race — member order, verdict, and every member's search stats.
func TestDeterministicSequentialMode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	opts := Options{NoSharing: true, MaxConcurrent: 1}
	for iter := 0; iter < 10; iter++ {
		p := randomPBO(rng, 3+rng.Intn(6), 2+rng.Intn(8))
		a := SolveOpts(p, nil, opts)
		b := SolveOpts(p, nil, opts)
		if a.Status != b.Status || a.Best != b.Best || a.Winner != b.Winner {
			t.Fatalf("iter %d: runs diverged: %v/%d/%s vs %v/%d/%s",
				iter, a.Status, a.Best, a.Winner, b.Status, b.Best, b.Winner)
		}
		if len(a.Members) != len(b.Members) {
			t.Fatalf("iter %d: member counts differ", iter)
		}
		for i := range a.Members {
			sa, sb := a.Members[i].Stats, b.Members[i].Stats
			if sa.Decisions != sb.Decisions || sa.Conflicts != sb.Conflicts ||
				sa.BoundConflicts != sb.BoundConflicts ||
				sa.RandomDecisions != sb.RandomDecisions {
				t.Fatalf("iter %d member %s: stats diverged: d=%d/%d c=%d/%d bc=%d/%d r=%d/%d",
					iter, a.Members[i].Name,
					sa.Decisions, sb.Decisions, sa.Conflicts, sb.Conflicts,
					sa.BoundConflicts, sb.BoundConflicts,
					sa.RandomDecisions, sb.RandomDecisions)
			}
		}
		if a.Concurrency != 1 {
			t.Fatalf("iter %d: concurrency=%d want 1", iter, a.Concurrency)
		}
	}
}

// TestMembersAndConcurrencyCap: every member is reported in config order and
// the concurrency never exceeds GOMAXPROCS or the explicit cap.
func TestMembersAndConcurrencyCap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomPBO(rng, 6, 8)
	res := SolveOpts(p, nil, Options{})
	if len(res.Members) != 4 {
		t.Fatalf("members=%d want 4", len(res.Members))
	}
	wantOrder := []string{"plain", "mis", "lgr", "lpr"}
	for i, m := range res.Members {
		if m.Name != wantOrder[i] {
			t.Fatalf("member %d = %s, want %s (config order)", i, m.Name, wantOrder[i])
		}
	}
	if res.Concurrency > runtime.GOMAXPROCS(0) || res.Concurrency > 4 || res.Concurrency < 1 {
		t.Fatalf("concurrency=%d (GOMAXPROCS=%d)", res.Concurrency, runtime.GOMAXPROCS(0))
	}
	capped := SolveOpts(p, nil, Options{MaxConcurrent: 2})
	if capped.Concurrency > 2 {
		t.Fatalf("explicit cap ignored: %d", capped.Concurrency)
	}
	if res.TotalDecisions() < 0 || res.TotalConflicts() < 0 {
		t.Fatal("negative totals")
	}
}

// TestSharingCrashedMemberDegrades: a member crash under sharing still leaves
// a sound race (the survivors prove the optimum) — the cooperative layer must
// not turn panic isolation into a shared-state hazard.
func TestSharingCrashedMemberDegrades(t *testing.T) {
	defer fault.Reset()
	fault.Arm("portfolio.worker", fault.Spec{Kind: fault.KindPanic, Match: "lpr"})
	rng := rand.New(rand.NewSource(31))
	p := randomPBO(rng, 6, 8)
	want := pb.BruteForce(p)
	res := SolveOpts(p, nil, Options{})
	if len(res.Errors) == 0 {
		t.Fatal("injected member crash not reported")
	}
	if want.Feasible && (res.Status != core.StatusOptimal || res.Best != want.Optimum) {
		t.Fatalf("crashed member broke the race: %v/%d want optimal/%d",
			res.Status, res.Best, want.Optimum)
	}
}
