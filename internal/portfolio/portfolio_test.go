package portfolio

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pb"
)

func randomPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(7)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(6)))
	}
	return p
}

func TestPortfolioAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 60; iter++ {
		p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
		want := pb.BruteForce(p)
		res := Solve(p, nil) // default four-member portfolio
		if want.Feasible {
			if res.Status != core.StatusOptimal {
				t.Fatalf("iter %d: status=%v want optimal", iter, res.Status)
			}
			if res.Best != want.Optimum {
				t.Fatalf("iter %d: best=%d want %d (winner %s)", iter, res.Best, want.Optimum, res.Winner)
			}
			if res.Winner == "" {
				t.Fatalf("iter %d: no winner recorded", iter)
			}
		} else if res.Status != core.StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
	}
}

func TestPortfolioAllLimitsReturnsIncumbent(t *testing.T) {
	// A large covering instance with a 1-conflict budget per member: nobody
	// proves optimality, but incumbents exist.
	rng := rand.New(rand.NewSource(2))
	const n = 40
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(9)))
	}
	for i := 0; i < 80; i++ {
		var lits []pb.Lit
		for v := 0; v < n; v++ {
			if rng.Intn(8) == 0 {
				lits = append(lits, pb.PosLit(pb.Var(v)))
			}
		}
		if len(lits) == 0 {
			lits = append(lits, pb.PosLit(pb.Var(rng.Intn(n))))
		}
		_ = p.AddClause(lits...)
	}
	configs := DefaultConfigs()
	for i := range configs {
		configs[i].Options.MaxConflicts = 1
	}
	res := Solve(p, configs)
	if res.Status == core.StatusOptimal {
		return // solved before the first conflict: acceptable
	}
	if res.Status != core.StatusLimit {
		t.Fatalf("status=%v", res.Status)
	}
	if !res.HasSolution {
		t.Fatal("expected an incumbent from at least one member")
	}
	if !p.Feasible(res.Values) {
		t.Fatal("incumbent infeasible")
	}
}

func TestPortfolioCancellationStopsLosers(t *testing.T) {
	// One instant member (tiny instance budgeted generously) plus one
	// hopeless member (huge budget but cancelled): the call must return
	// promptly rather than wait out the loser.
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	configs := []Config{
		{Name: "fast", Options: core.Options{LowerBound: core.LBNone}},
		{Name: "slow", Options: core.Options{LowerBound: core.LBLPR, TimeLimit: 30 * time.Second}},
	}
	start := time.Now()
	res := Solve(p, configs)
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the losing member promptly")
	}
}

func TestConfigNameFallback(t *testing.T) {
	c := Config{Options: core.Options{LowerBound: core.LBLGR}}
	if c.name() != "lgr" {
		t.Fatalf("name=%q", c.name())
	}
}
