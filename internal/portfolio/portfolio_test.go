package portfolio

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/pb"
)

func randomPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(7)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(6)))
	}
	return p
}

func TestPortfolioAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 60; iter++ {
		p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
		want := pb.BruteForce(p)
		res := Solve(p, nil) // default four-member portfolio
		if want.Feasible {
			if res.Status != core.StatusOptimal {
				t.Fatalf("iter %d: status=%v want optimal", iter, res.Status)
			}
			if res.Best != want.Optimum {
				t.Fatalf("iter %d: best=%d want %d (winner %s)", iter, res.Best, want.Optimum, res.Winner)
			}
			if res.Winner == "" {
				t.Fatalf("iter %d: no winner recorded", iter)
			}
		} else if res.Status != core.StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
	}
}

func TestPortfolioAllLimitsReturnsIncumbent(t *testing.T) {
	// A large covering instance with a 1-conflict budget per member: nobody
	// proves optimality, but incumbents exist.
	rng := rand.New(rand.NewSource(2))
	const n = 40
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(9)))
	}
	for i := 0; i < 80; i++ {
		var lits []pb.Lit
		for v := 0; v < n; v++ {
			if rng.Intn(8) == 0 {
				lits = append(lits, pb.PosLit(pb.Var(v)))
			}
		}
		if len(lits) == 0 {
			lits = append(lits, pb.PosLit(pb.Var(rng.Intn(n))))
		}
		_ = p.AddClause(lits...)
	}
	configs := DefaultConfigs()
	for i := range configs {
		configs[i].Options.MaxConflicts = 1
	}
	res := Solve(p, configs)
	if res.Status == core.StatusOptimal {
		return // solved before the first conflict: acceptable
	}
	if res.Status != core.StatusLimit {
		t.Fatalf("status=%v", res.Status)
	}
	if !res.HasSolution {
		t.Fatal("expected an incumbent from at least one member")
	}
	if !p.Feasible(res.Values) {
		t.Fatal("incumbent infeasible")
	}
}

func TestPortfolioCancellationStopsLosers(t *testing.T) {
	// One instant member (tiny instance budgeted generously) plus one
	// hopeless member (huge budget but cancelled): the call must return
	// promptly rather than wait out the loser.
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	configs := []Config{
		{Name: "fast", Options: core.Options{LowerBound: core.LBNone}},
		{Name: "slow", Options: core.Options{LowerBound: core.LBLPR, TimeLimit: 30 * time.Second}},
	}
	start := time.Now()
	res := Solve(p, configs)
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the losing member promptly")
	}
}

func TestConfigNameFallback(t *testing.T) {
	c := Config{Options: core.Options{LowerBound: core.LBLGR}}
	if c.name() != "lgr" {
		t.Fatalf("name=%q", c.name())
	}
}

// TestMixedPortfolioAgreesWithBruteForce is the acceptance gate for the
// local-search member: one UB-only LS worker racing one B&B member per
// lower-bound method (shared board), under the auditor, must prove exactly
// the brute-force verdict — the LS member accelerates the incumbent but can
// never fake the proof.
func TestMixedPortfolioAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, lb := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
		for iter := 0; iter < 8; iter++ {
			p := randomPBO(rng, 2+rng.Intn(7), 1+rng.Intn(8))
			want := pb.BruteForce(p)
			aud := audit.New(p)
			members := []Config{
				{Name: lb.String(), Options: core.Options{LowerBound: lb,
					Seed: 1, RandomBranchFreq: 0.02}},
				LSConfig("ls", 7, 0),
			}
			res := SolveOpts(p, members, Options{MaxConcurrent: 2, Audit: aud})
			if rep := aud.Snapshot(); !rep.Ok() {
				t.Fatalf("%s iter %d: audit: %v", lb, iter, rep.Violations)
			}
			if want.Feasible {
				if res.Status != core.StatusOptimal {
					t.Fatalf("%s iter %d: status=%v want optimal (winner %q)", lb, iter, res.Status, res.Winner)
				}
				if res.Best != want.Optimum {
					t.Fatalf("%s iter %d: best=%d want %d", lb, iter, res.Best, want.Optimum)
				}
				if res.Winner == "ls" {
					t.Fatalf("%s iter %d: UB-only member declared the optimality winner", lb, iter)
				}
				if !p.Feasible(res.Values) {
					t.Fatalf("%s iter %d: infeasible certificate", lb, iter)
				}
			} else if res.Status != core.StatusUnsat {
				t.Fatalf("%s iter %d: status=%v want unsat", lb, iter, res.Status)
			}
			// Roster bookkeeping: the LS member is flagged UB-only and its
			// status is never an exhaustion verdict.
			var sawLS bool
			for _, m := range res.Members {
				if m.Name == "ls" {
					sawLS = true
					if !m.UBOnly {
						t.Fatalf("%s iter %d: ls member not flagged UBOnly", lb, iter)
					}
					if m.Status == core.StatusOptimal || m.Status == core.StatusUnsat {
						t.Fatalf("%s iter %d: UB-only member reported %v", lb, iter, m.Status)
					}
				}
			}
			if !sawLS {
				t.Fatalf("%s iter %d: ls member missing from roster", lb, iter)
			}
		}
	}
}

// TestLSOnlyPortfolioNeverConcludes: a portfolio of only UB-only members on
// an objective instance can deliver an incumbent but never a verdict.
func TestLSOnlyPortfolioNeverConcludes(t *testing.T) {
	p := randomPBO(rand.New(rand.NewSource(77)), 8, 6)
	want := pb.BruteForce(p)
	if !want.Feasible {
		t.Skip("generator produced an UNSAT instance")
	}
	res := SolveOpts(p, []Config{LSConfig("ls", 3, 30_000)}, Options{MaxConcurrent: 1})
	if res.Status != core.StatusLimit {
		t.Fatalf("status=%v, a UB-only portfolio must end at StatusLimit", res.Status)
	}
	if !res.HasSolution {
		t.Fatal("no incumbent from the LS member")
	}
	if res.Best < want.Optimum {
		t.Fatalf("incumbent %d undercuts the optimum %d", res.Best, want.Optimum)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible incumbent")
	}
}

// TestLSOnlyPortfolioSatWitness: on objective-free instances a verified LS
// witness IS a sound conclusive answer.
func TestLSOnlyPortfolioSatWitness(t *testing.T) {
	p := pb.NewProblem(3)
	_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 1)
	_ = p.AddConstraint([]pb.Term{{Coef: 2, Lit: pb.PosLit(2)}}, pb.GE, 2)
	aud := audit.New(p)
	res := SolveOpts(p, []Config{LSConfig("ls", 1, 20_000)}, Options{MaxConcurrent: 1, Audit: aud})
	if rep := aud.Snapshot(); !rep.Ok() {
		t.Fatalf("audit: %v", rep.Violations)
	}
	if res.Status != core.StatusSatisfiable {
		t.Fatalf("status=%v want satisfiable", res.Status)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("witness infeasible")
	}
}

// TestSanitizeUBOnly pins the defense-in-depth demotion: exhaustion verdicts
// and unverifiable SAT claims from a UB-only member collapse to StatusLimit.
func TestSanitizeUBOnly(t *testing.T) {
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 1)
	feas := []bool{true, false}
	cases := []struct {
		name string
		in   core.Result
		want core.Status
	}{
		{"optimal demoted", core.Result{Status: core.StatusOptimal, HasSolution: true, Best: 1, Values: feas}, core.StatusLimit},
		{"unsat demoted", core.Result{Status: core.StatusUnsat}, core.StatusLimit},
		{"sat with objective demoted", core.Result{Status: core.StatusSatisfiable, HasSolution: true, Best: 1, Values: feas}, core.StatusLimit},
		{"limit passes through", core.Result{Status: core.StatusLimit, HasSolution: true, Best: 1, Values: feas}, core.StatusLimit},
		{"error passes through", core.Result{Status: core.StatusError}, core.StatusError},
	}
	for _, tc := range cases {
		if got := sanitizeUBOnly(p, tc.in); got.Status != tc.want {
			t.Errorf("%s: status=%v want %v", tc.name, got.Status, tc.want)
		}
	}
	// Objective-free: a verified witness survives, a bogus one does not.
	pf := pb.NewProblem(2)
	_ = pf.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, pb.GE, 1)
	ok := core.Result{Status: core.StatusSatisfiable, HasSolution: true, Values: []bool{true, false}}
	if got := sanitizeUBOnly(pf, ok); got.Status != core.StatusSatisfiable {
		t.Errorf("verified witness demoted: %v", got.Status)
	}
	bad := core.Result{Status: core.StatusSatisfiable, HasSolution: true, Values: []bool{false, false}}
	if got := sanitizeUBOnly(pf, bad); got.Status != core.StatusLimit {
		t.Errorf("infeasible witness not demoted: %v", got.Status)
	}
}
