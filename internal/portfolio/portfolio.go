// Package portfolio runs several bsolo configurations concurrently on the
// same instance and returns the first conclusive answer — the natural
// fine-tuning direction the paper's conclusion gestures at: no single lower
// bound method wins everywhere (Table 1's per-family spread), so racing
// them hedges the choice at the price of cores.
//
// Every worker receives its own engine state; the input problem is shared
// read-only. When a worker proves optimality (or unsatisfiability, or
// satisfiability for objective-free instances) the others are cancelled.
// If every worker hits its budget, the best incumbent across workers is
// returned.
//
// Workers are panic-isolated: a member that crashes (a genuine bug, or an
// injected fault in tests) ends as core.StatusError and merely degrades the
// race — the surviving members still produce the answer. Crash details are
// reported in Result.Errors.
package portfolio

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pb"
)

// Config is one portfolio member.
type Config struct {
	// Name labels the member in the result.
	Name string
	// Options configures the member's solver. Cancel is managed by Solve
	// and must be nil.
	Options core.Options
}

// DefaultConfigs returns the paper's four bsolo columns as portfolio
// members.
func DefaultConfigs() []Config {
	return []Config{
		{Name: "plain", Options: core.Options{LowerBound: core.LBNone}},
		{Name: "mis", Options: core.Options{LowerBound: core.LBMIS, CardinalityInference: true}},
		{Name: "lgr", Options: core.Options{LowerBound: core.LBLGR, CardinalityInference: true}},
		{Name: "lpr", Options: core.Options{LowerBound: core.LBLPR, CardinalityInference: true}},
	}
}

// Result is the portfolio outcome.
type Result struct {
	core.Result
	// Winner names the member that produced the result ("" when no member
	// finished and the best incumbent was stitched together).
	Winner string
	// Errors maps member names to their crash (recovered panic) when they
	// ended in core.StatusError. Nil when every member ran to completion.
	Errors map[string]error
}

// Solve races the given configurations. Limits in each member's Options
// still apply individually (set a common TimeLimit to bound the whole run).
func Solve(p *pb.Problem, configs []Config) Result {
	return SolveWithCancel(p, configs, nil)
}

// SolveWithCancel is Solve with an external stop channel: closing stop
// cancels every member, and the best incumbent found so far is stitched
// together (StatusLimit), exactly as when all members hit their budgets.
// Used by the CLI's SIGINT/SIGTERM handler.
func SolveWithCancel(p *pb.Problem, configs []Config, stop <-chan struct{}) Result {
	if len(configs) == 0 {
		configs = DefaultConfigs()
	}
	type outcome struct {
		name string
		res  core.Result
	}
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	closeCancel := func() { cancelOnce.Do(func() { close(cancel) }) }
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				closeCancel()
			case <-done:
			}
		}()
	}
	results := make(chan outcome, len(configs))
	var wg sync.WaitGroup
	for _, cfg := range configs {
		wg.Add(1)
		go func(cfg Config) {
			defer wg.Done()
			results <- outcome{cfg.name(), runMember(p, cfg, cancel)}
		}(cfg)
	}

	var best Result
	gotBest := false
	conclusive := func(s core.Status) bool {
		return s == core.StatusOptimal || s == core.StatusSatisfiable || s == core.StatusUnsat
	}
	var winner *outcome
	var errs map[string]error
	for i := 0; i < len(configs); i++ {
		oc := <-results
		if oc.res.Status == core.StatusError {
			// Panic isolation: record the crash and keep consuming results —
			// the race degrades instead of aborting.
			if errs == nil {
				errs = map[string]error{}
			}
			errs[oc.name] = oc.res.Err
			continue
		}
		if winner == nil && conclusive(oc.res.Status) {
			winner = &oc
			closeCancel() // stop the rest
		}
		// Track the best incumbent for the all-limits case.
		if oc.res.HasSolution && (!gotBest || !best.HasSolution || oc.res.Best < best.Best) {
			best = Result{Result: oc.res, Winner: oc.name}
			gotBest = true
		}
	}
	wg.Wait()
	if winner != nil {
		return Result{Result: winner.res, Winner: winner.name, Errors: errs}
	}
	if gotBest {
		best.Status = core.StatusLimit
		best.Errors = errs
		return best
	}
	return Result{Result: core.Result{Status: core.StatusLimit}, Errors: errs}
}

// runMember executes one configuration behind a panic barrier, so a member
// crash (including one injected at the "portfolio.worker" fault point,
// keyed by member name) becomes a StatusError outcome.
func runMember(p *pb.Problem, cfg Config, cancel <-chan struct{}) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				Status: core.StatusError,
				Err:    fmt.Errorf("portfolio: member %q panicked: %v\n%s", cfg.name(), r, debug.Stack()),
			}
		}
	}()
	fault.Fire("portfolio.worker", cfg.name())
	opt := cfg.Options
	opt.Cancel = cancel
	return core.Solve(p, opt)
}

func (c Config) name() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Options.LowerBound.String()
}
