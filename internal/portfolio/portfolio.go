// Package portfolio runs several bsolo configurations concurrently on the
// same instance and returns the first conclusive answer — the natural
// fine-tuning direction the paper's conclusion gestures at: no single lower
// bound method wins everywhere (Table 1's per-family spread), so racing
// them hedges the choice at the price of cores.
//
// By default the race is *cooperative* (see internal/share and DESIGN.md §9):
// members publish every incumbent to a shared board — instantly tightening
// the paper's `path + lower ≥ upper` pruning in every other member — and
// exchange short, low-LBD learned clauses through a bounded ring, imported at
// restart/backjump-to-root boundaries. Options.NoSharing restores the
// pre-cooperative isolated race, which combined with MaxConcurrent=1 is fully
// deterministic (members run sequentially in config order, and each member's
// search contains no other nondeterminism).
//
// Every worker receives its own engine state; the input problem is shared
// read-only. When a worker proves optimality (or unsatisfiability, or
// satisfiability for objective-free instances) the others are cancelled.
// If every worker hits its budget, the best incumbent across workers is
// returned.
//
// Workers are panic-isolated: a member that crashes (a genuine bug, or an
// injected fault in tests) ends as core.StatusError and merely degrades the
// race — the surviving members still produce the answer. Crash details are
// reported in Result.Errors.
package portfolio

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ls"
	"repro/internal/obs"
	"repro/internal/pb"
	"repro/internal/share"
	"repro/internal/wbo"
)

// The share.Member handle is the concrete Sharer the portfolio hands to each
// member's solver — and the concrete incumbent Pool it hands to local-search
// members; asserting both here keeps the import direction one-way
// (portfolio → core + ls + share, never core/ls → share).
var (
	_ core.Sharer = (*share.Member)(nil)
	_ ls.Pool     = (*share.Member)(nil)
)

// Config is one portfolio member.
type Config struct {
	// Name labels the member in the result.
	Name string
	// Options configures the member's solver. Cancel and Share are managed
	// by Solve and must be nil. Ignored when LS is set.
	Options core.Options
	// LS, when non-nil, makes this member a stochastic local-search worker
	// (internal/ls) instead of a branch-and-bound solver: a UB-only member
	// that contributes incumbents (and, on objective-free instances, a
	// verified SAT witness) but can never prove optimality or
	// unsatisfiability — the winner logic treats its outcomes accordingly.
	// Share/Cancel/Audit/Trace/Live are managed by Solve and must be nil.
	LS *ls.Options
	// CoreGuided, when non-nil, makes this member a core-guided WBO solver
	// (internal/wbo) racing the branch-and-bound members. The portfolio's
	// problem MUST be the instance's Builder() compilation (original
	// variables first, then one selector per soft constraint, in order):
	// witnesses are mapped into that space via Instance.ExtendedWitness and
	// re-verified against the compiled problem before they can win the race
	// or reach the board — an inconsistent instance/problem pair demotes
	// every claim to the inconclusive StatusLimit instead of poisoning the
	// race (the same defense-in-depth discipline as sanitizeUBOnly).
	// Cancel is managed by Solve; the board's Share handle is used only for
	// verified incumbent publication and is never passed into the wbo
	// sub-solves.
	CoreGuided *CoreGuided
}

// CoreGuided configures a core-guided portfolio member.
type CoreGuided struct {
	// Instance is the WBO instance whose Builder() compilation the
	// portfolio is racing on.
	Instance *wbo.Instance
	// Options configure the core-guided loop. Cancel is managed by Solve
	// and must be nil.
	Options wbo.Options
}

// UBOnly reports whether the member can contribute only upper bounds
// (no exhaustion proofs).
func (c Config) UBOnly() bool { return c.LS != nil }

// DefaultConfigs returns the paper's four bsolo columns as portfolio
// members. Each member carries an explicit distinct seed and a small random
// branching frequency: the seeds diversify the race (members explore
// different regions even on instances where the bound methods behave alike)
// while keeping every run of the same member bit-reproducible across
// processes — the engine contains no other randomness.
func DefaultConfigs() []Config {
	const diversify = 0.02
	return []Config{
		{Name: "plain", Options: core.Options{LowerBound: core.LBNone,
			Seed: 1, RandomBranchFreq: diversify}},
		{Name: "mis", Options: core.Options{LowerBound: core.LBMIS, CardinalityInference: true,
			Seed: 2, RandomBranchFreq: diversify}},
		{Name: "lgr", Options: core.Options{LowerBound: core.LBLGR, CardinalityInference: true,
			Seed: 3, RandomBranchFreq: diversify}},
		{Name: "lpr", Options: core.Options{LowerBound: core.LBLPR, CardinalityInference: true,
			Seed: 4, RandomBranchFreq: diversify}},
	}
}

// LSConfig returns one local-search member for a mixed portfolio. The seed
// diversifies it from other LS members; maxFlips bounds its work (0 = run
// until cancelled — the usual mixed-portfolio setting, where a B&B member's
// proof ends the race).
func LSConfig(name string, seed int64, maxFlips int64) Config {
	if name == "" {
		name = "ls"
	}
	return Config{Name: name, LS: &ls.Options{Seed: seed, MaxFlips: maxFlips}}
}

// Options configures the portfolio run as a whole (per-member limits live in
// each Config's core.Options). The zero value is the default cooperative
// race: sharing on, concurrency capped at GOMAXPROCS.
type Options struct {
	// NoSharing disconnects the board entirely: members race in isolation
	// (the pre-cooperative behaviour). Required for the deterministic mode
	// and for sharing-ablation benchmarks.
	NoSharing bool
	// Share sizes the cooperative board (zero value = share defaults:
	// capacity 4096, clause length ≤ 8, LBD ≤ 4). Ignored with NoSharing.
	Share share.Config
	// MaxConcurrent caps how many members run simultaneously; 0 selects
	// GOMAXPROCS. Members beyond the cap wait their turn in config order.
	// MaxConcurrent=1 runs the members strictly sequentially in config
	// order, which with NoSharing is fully deterministic.
	MaxConcurrent int
	// Stop, when non-nil, cancels every member as soon as the channel is
	// closed (the CLI's SIGINT/SIGTERM handler).
	Stop <-chan struct{}
	// Audit, when non-nil, attaches the invariant auditor to every member:
	// each solver replays its learned clauses, bound conflicts, imports and
	// incumbents against the original problem into this (internally locked)
	// auditor. Expensive; meant for the differential fuzzer and debugging.
	Audit *audit.Auditor
	// Trace, when non-nil, records structured search events from every
	// member into the shared ring, each stamped with the member's name
	// (obs.Tracer.Named). Nil keeps the members' hot paths trace-free.
	Trace *obs.Tracer
	// Registry, when non-nil, receives one live metrics source per member
	// (registered under the member name, in config order) plus the board's
	// snapshot function, so a concurrent scraper (`bsolo -debug-addr`) sees
	// the full roster and tear-free per-member counters mid-race.
	Registry *obs.Registry
	// WarmIncumbent, when non-nil, seeds the board with a known-feasible
	// solution before any member starts — the serving layer's solve-session
	// cache hands back the previous submission's incumbent so every member
	// begins with its upper bound (and the eq. 10 cut it implies) instead of
	// rediscovering it. The assignment is verified against p and its cost
	// recomputed from the values before publication; an infeasible or
	// wrong-length seed (a corrupted cache entry) is silently dropped and the
	// race starts cold — seeding can degrade to nothing but never poison the
	// board. Ignored with NoSharing (there is no board to seed).
	WarmIncumbent []bool
}

// MemberResult is one member's outcome, reported in config order.
type MemberResult struct {
	// Name is the member's label (Config.Name or the lower-bound method).
	Name string
	// UBOnly marks a member that can contribute only upper bounds (local
	// search): its terminal status is never an exhaustion proof.
	UBOnly bool
	core.Result
}

// Result is the portfolio outcome.
type Result struct {
	core.Result
	// Winner names the member that produced the result ("" when no member
	// finished and the best incumbent was stitched together).
	Winner string
	// Errors maps member names to their crash (recovered panic) when they
	// ended in core.StatusError. Nil when every member ran to completion.
	Errors map[string]error
	// Members holds every member's individual outcome, in config order —
	// including the losers, whose stats carry the sharing counters.
	Members []MemberResult
	// Concurrency is the member-level parallelism the run actually used
	// (min of MaxConcurrent, GOMAXPROCS and the member count).
	Concurrency int
	// Sharing reports whether the cooperative board was connected.
	Sharing bool
	// Board is the board's final global snapshot (zero when !Sharing). Its
	// BestOwner names the member whose solution the certificate carries —
	// distinct from Winner when the prover adopted a foreign incumbent.
	Board share.Stats
}

// TotalConflicts sums BCP + bound conflicts across every member — the
// portfolio-level work measure the sharing benchmarks compare.
func (r *Result) TotalConflicts() int64 {
	var n int64
	for _, m := range r.Members {
		n += m.Stats.Conflicts + m.Stats.BoundConflicts
	}
	return n
}

// TotalDecisions sums decisions across every member.
func (r *Result) TotalDecisions() int64 {
	var n int64
	for _, m := range r.Members {
		n += m.Stats.Decisions
	}
	return n
}

// Solve races the given configurations cooperatively with default options.
// Limits in each member's Options still apply individually (set a common
// TimeLimit to bound the whole run).
func Solve(p *pb.Problem, configs []Config) Result {
	return SolveOpts(p, configs, Options{})
}

// SolveWithCancel is Solve with an external stop channel: closing stop
// cancels every member, and the best incumbent found so far is stitched
// together (StatusLimit), exactly as when all members hit their budgets.
func SolveWithCancel(p *pb.Problem, configs []Config, stop <-chan struct{}) Result {
	return SolveOpts(p, configs, Options{Stop: stop})
}

// SolveOpts races the given configurations under the given portfolio
// options.
func SolveOpts(p *pb.Problem, configs []Config, opts Options) Result {
	if len(configs) == 0 {
		configs = DefaultConfigs()
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = runtime.GOMAXPROCS(0)
	}
	if maxConc > len(configs) {
		maxConc = len(configs)
	}
	if maxConc < 1 {
		maxConc = 1
	}

	// The board and the per-member handles are created up front, in config
	// order, so member ids are deterministic and every member can see
	// incumbents published before it was scheduled.
	var board *share.Board
	var handles []*share.Member
	if !opts.NoSharing {
		board = share.NewBoard(opts.Share)
		handles = make([]*share.Member, len(configs))
		for i, cfg := range configs {
			if cfg.UBOnly() || cfg.CoreGuided != nil {
				// UB-only and core-guided members neither publish nor drain
				// clauses; joining with clauses opted out keeps the ring's
				// cursor/lap stats scoped to actual consumers.
				handles[i] = board.JoinNoClauses(cfg.name())
			} else {
				handles[i] = board.Join(cfg.name())
			}
		}
		SeedIncumbent(board, p, opts.WarmIncumbent)
	}

	// Observability wiring: one live metrics source per member (registered
	// up front so scrapers see the full roster before any member publishes),
	// the board's snapshot function, and a name-stamped tracer handle each.
	var lives []*obs.Live
	if opts.Registry != nil {
		lives = make([]*obs.Live, len(configs))
		for i, cfg := range configs {
			lives[i] = &obs.Live{}
			opts.Registry.RegisterSolver(cfg.name(), lives[i])
		}
		if board != nil {
			opts.Registry.RegisterBoard(func() obs.BoardMetrics {
				return BoardMetrics(board.Snapshot())
			})
		}
	}

	cancel := make(chan struct{})
	var cancelOnce sync.Once
	closeCancel := func() { cancelOnce.Do(func() { close(cancel) }) }
	if opts.Stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-opts.Stop:
				closeCancel()
			case <-done:
			}
		}()
	}

	type outcome struct {
		idx  int
		name string
		res  core.Result
	}
	results := make(chan outcome, len(configs))

	// A fixed pool of maxConc workers pulls member indices from an ordered
	// queue: with maxConc=1 the members run strictly sequentially in config
	// order (the deterministic mode); with more workers the queue merely
	// bounds the parallelism at the configured cap.
	queue := make(chan int, len(configs))
	for i := range configs {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < maxConc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				cfg := configs[i]
				var m *share.Member
				if handles != nil {
					m = handles[i]
				}
				var live *obs.Live
				if lives != nil {
					live = lives[i]
				}
				switch {
				case cfg.CoreGuided != nil:
					results <- outcome{i, cfg.name(), runCoreGuidedMember(p, cfg, cancel, m, opts.Audit)}
				case cfg.UBOnly():
					results <- outcome{i, cfg.name(), runLSMember(p, cfg, cancel, m, opts.Audit,
						opts.Trace.Named(cfg.name()), live)}
				default:
					results <- outcome{i, cfg.name(), runMember(p, cfg, cancel, m, opts.Audit,
						opts.Trace.Named(cfg.name()), live)}
				}
			}
		}()
	}

	var best Result
	gotBest := false
	conclusive := func(s core.Status) bool {
		return s == core.StatusOptimal || s == core.StatusSatisfiable || s == core.StatusUnsat
	}
	var winner *outcome
	var errs map[string]error
	members := make([]MemberResult, len(configs))
	for i := 0; i < len(configs); i++ {
		oc := <-results
		if configs[oc.idx].UBOnly() {
			oc.res = sanitizeUBOnly(p, oc.res)
		}
		members[oc.idx] = MemberResult{Name: oc.name, UBOnly: configs[oc.idx].UBOnly(), Result: oc.res}
		if oc.res.Status == core.StatusError {
			// Panic isolation: record the crash and keep consuming results —
			// the race degrades instead of aborting.
			if errs == nil {
				errs = map[string]error{}
			}
			errs[oc.name] = oc.res.Err
			continue
		}
		if winner == nil && conclusive(oc.res.Status) {
			winner = &oc
			closeCancel() // stop the rest
		}
		// Track the best incumbent for the all-limits case.
		if oc.res.HasSolution && (!gotBest || !best.HasSolution || oc.res.Best < best.Best) {
			best = Result{Result: oc.res, Winner: oc.name}
			gotBest = true
		}
	}
	wg.Wait()
	closeCancel()

	finalize := func(r Result) Result {
		r.Errors = errs
		r.Members = members
		r.Concurrency = maxConc
		if board != nil {
			r.Sharing = true
			r.Board = board.Snapshot()
		}
		return r
	}
	if winner != nil {
		return finalize(Result{Result: winner.res, Winner: winner.name})
	}
	if gotBest {
		best.Status = core.StatusLimit
		return finalize(best)
	}
	return finalize(Result{Result: core.Result{Status: core.StatusLimit}})
}

// SeedIncumbent publishes a cached incumbent to the board under a "warm"
// member identity. Defensive by construction: the assignment must have the
// right length and satisfy every constraint, and the published cost is
// recomputed from the values (internal space, excluding CostOffset) — a
// corrupted cache entry fails verification and the board stays empty.
func SeedIncumbent(board *share.Board, p *pb.Problem, values []bool) bool {
	if board == nil || values == nil || len(values) != p.NumVars || !p.Feasible(values) {
		return false
	}
	var cost int64
	for v, c := range p.Cost {
		if c != 0 && values[v] {
			cost += c
		}
	}
	// The seeder is incumbent-only: were it a clause member, its permanently
	// stalled ring cursor would (wrongly) show up in the lap accounting.
	return board.JoinNoClauses("warm").PublishIncumbent(cost, values)
}

// sanitizeUBOnly enforces the UB-only contract on a local-search member's
// outcome before the winner logic can see it: an exhaustion verdict
// (optimal/unsat) is structurally impossible for a member that merely
// samples assignments, and a satisfiability claim is accepted only as a
// verified witness on an objective-free instance. Anything else is demoted
// to the inconclusive StatusLimit — defense in depth so that no future ls
// change can turn an upper bound into a fake proof.
func sanitizeUBOnly(p *pb.Problem, res core.Result) core.Result {
	switch res.Status {
	case core.StatusOptimal, core.StatusUnsat:
		res.Status = core.StatusLimit
	case core.StatusSatisfiable:
		if p.HasObjective() || !res.HasSolution || len(res.Values) != p.NumVars || !p.Feasible(res.Values) {
			res.Status = core.StatusLimit
		}
	}
	return res
}

// runLSMember executes one local-search configuration behind the same panic
// barrier as runMember and maps its UB-only outcome into the core.Result
// shape the portfolio aggregates: a verified SAT witness on an
// objective-free instance is conclusive (StatusSatisfiable); everything else
// is StatusLimit, carrying the best incumbent when one was found.
func runLSMember(p *pb.Problem, cfg Config, cancel <-chan struct{}, m *share.Member, aud *audit.Auditor, trace *obs.Tracer, live *obs.Live) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				Status: core.StatusError,
				Err:    fmt.Errorf("portfolio: member %q panicked: %v\n%s", cfg.name(), r, debug.Stack()),
			}
		}
	}()
	fault.Fire("portfolio.worker", cfg.name())
	opt := *cfg.LS
	opt.Cancel = cancel
	if m != nil {
		opt.Share = m
	}
	if aud != nil {
		opt.Audit = aud
	}
	opt.Trace = trace
	if live != nil {
		opt.Live = live
	}
	lr := ls.Solve(p, opt)
	if lr.Err != nil {
		return core.Result{Status: core.StatusError, Err: lr.Err}
	}
	res = core.Result{
		Status:      core.StatusLimit,
		HasSolution: lr.HasSolution,
		Best:        lr.Best,
		Values:      lr.Values,
	}
	if lr.Satisfiable {
		res.Status = core.StatusSatisfiable
	}
	res.Stats.Restarts = lr.Stats.Restarts
	res.Stats.Solutions = lr.Stats.Improvements
	res.Stats.Flips = lr.Stats.Flips
	if m != nil {
		res.Stats.Sharing.IncumbentsPublished = lr.Stats.BoardPublished
		res.Stats.Sharing.IncumbentsWon = lr.Stats.BoardWon
		res.Stats.Sharing.ForeignIncumbents = lr.Stats.BoardImports
	}
	return res
}

// sanitizeCoreGuided maps a core-guided outcome into the compiled problem's
// space under the same defense-in-depth discipline as sanitizeUBOnly: the
// witness is lifted via ExtendedWitness and re-verified against p, and an
// optimality claim survives only when the verified compiled cost matches the
// claimed optimum (minus the instance offset, which lives outside the
// compiled objective). A hard-UNSAT verdict passes through — the compiled
// problem's soft rows are always satisfiable via their selectors, so its
// infeasibility is exactly the hard skeleton's. Anything that fails
// verification is demoted to the inconclusive StatusLimit.
func sanitizeCoreGuided(p *pb.Problem, in *wbo.Instance, r wbo.Result) core.Result {
	res := core.Result{Status: core.StatusLimit, Err: r.Err}
	res.Stats.Conflicts = r.Conflicts
	if r.HasSolution && len(r.Values) >= in.NumVars {
		ext := in.ExtendedWitness(r.Values)
		if len(ext) == p.NumVars && p.Feasible(ext) {
			res.HasSolution = true
			res.Values = ext
			res.Best = p.ObjectiveValue(ext)
		}
	}
	switch r.Status {
	case core.StatusOptimal:
		if res.HasSolution && res.Best == r.Best-in.Offset {
			res.Status = core.StatusOptimal
		}
	case core.StatusUnsat:
		if r.HardUnsat {
			res.Status = core.StatusUnsat
		}
	case core.StatusError:
		res.Status = core.StatusError
	}
	return res
}

// runCoreGuidedMember executes one core-guided configuration behind the same
// panic barrier as runMember. The board handle is used only to publish the
// verified terminal incumbent — the wbo sub-solves never see the board, so
// no foreign clause or incumbent can leak into the core extraction — and
// every claim is audited against the compiled problem after sanitization.
func runCoreGuidedMember(p *pb.Problem, cfg Config, cancel <-chan struct{}, m *share.Member, aud *audit.Auditor) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				Status: core.StatusError,
				Err:    fmt.Errorf("portfolio: member %q panicked: %v\n%s", cfg.name(), r, debug.Stack()),
			}
		}
	}()
	fault.Fire("portfolio.worker", cfg.name())
	cg := cfg.CoreGuided
	opt := cg.Options
	opt.Cancel = cancel
	res = sanitizeCoreGuided(p, cg.Instance, wbo.Solve(cg.Instance, opt))
	if res.HasSolution {
		aud.Incumbent(res.Best, res.Values)
		if m != nil && m.PublishIncumbent(res.Best, res.Values) {
			res.Stats.Sharing.IncumbentsPublished++
		}
	}
	switch res.Status {
	case core.StatusOptimal:
		aud.Termination(audit.Claim{Optimal: true, Best: res.Best})
	case core.StatusUnsat:
		aud.Termination(audit.Claim{Unsat: true})
	case core.StatusLimit:
		if res.HasSolution {
			aud.Termination(audit.Claim{UpperBound: true, Best: res.Best})
		}
	}
	return res
}

// runMember executes one configuration behind a panic barrier, so a member
// crash (including one injected at the "portfolio.worker" fault point,
// keyed by member name) becomes a StatusError outcome.
func runMember(p *pb.Problem, cfg Config, cancel <-chan struct{}, m *share.Member, aud *audit.Auditor, trace *obs.Tracer, live *obs.Live) (res core.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{
				Status: core.StatusError,
				Err:    fmt.Errorf("portfolio: member %q panicked: %v\n%s", cfg.name(), r, debug.Stack()),
			}
		}
	}()
	fault.Fire("portfolio.worker", cfg.name())
	opt := cfg.Options
	opt.Cancel = cancel
	if m != nil {
		opt.Share = m
	}
	if aud != nil {
		opt.Audit = aud
	}
	opt.Trace = trace
	if live != nil {
		// The registry-managed source wins; otherwise a Live handle set on
		// the member's own Options (the serving layer's per-job watchdog
		// heartbeat) is left in place instead of being clobbered with nil.
		opt.Live = live
	}
	return core.Solve(p, opt)
}

func (c Config) name() string {
	if c.Name != "" {
		return c.Name
	}
	if c.LS != nil {
		return "ls"
	}
	if c.CoreGuided != nil {
		return "core-guided"
	}
	return c.Options.LowerBound.String()
}
