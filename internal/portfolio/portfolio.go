// Package portfolio runs several bsolo configurations concurrently on the
// same instance and returns the first conclusive answer — the natural
// fine-tuning direction the paper's conclusion gestures at: no single lower
// bound method wins everywhere (Table 1's per-family spread), so racing
// them hedges the choice at the price of cores.
//
// Every worker receives its own engine state; the input problem is shared
// read-only. When a worker proves optimality (or unsatisfiability, or
// satisfiability for objective-free instances) the others are cancelled.
// If every worker hits its budget, the best incumbent across workers is
// returned.
package portfolio

import (
	"sync"

	"repro/internal/core"
	"repro/internal/pb"
)

// Config is one portfolio member.
type Config struct {
	// Name labels the member in the result.
	Name string
	// Options configures the member's solver. Cancel is managed by Solve
	// and must be nil.
	Options core.Options
}

// DefaultConfigs returns the paper's four bsolo columns as portfolio
// members.
func DefaultConfigs() []Config {
	return []Config{
		{Name: "plain", Options: core.Options{LowerBound: core.LBNone}},
		{Name: "mis", Options: core.Options{LowerBound: core.LBMIS, CardinalityInference: true}},
		{Name: "lgr", Options: core.Options{LowerBound: core.LBLGR, CardinalityInference: true}},
		{Name: "lpr", Options: core.Options{LowerBound: core.LBLPR, CardinalityInference: true}},
	}
}

// Result is the portfolio outcome.
type Result struct {
	core.Result
	// Winner names the member that produced the result ("" when no member
	// finished and the best incumbent was stitched together).
	Winner string
}

// Solve races the given configurations. Limits in each member's Options
// still apply individually (set a common TimeLimit to bound the whole run).
func Solve(p *pb.Problem, configs []Config) Result {
	if len(configs) == 0 {
		configs = DefaultConfigs()
	}
	type outcome struct {
		name string
		res  core.Result
	}
	cancel := make(chan struct{})
	results := make(chan outcome, len(configs))
	var wg sync.WaitGroup
	for _, cfg := range configs {
		wg.Add(1)
		go func(cfg Config) {
			defer wg.Done()
			opt := cfg.Options
			opt.Cancel = cancel
			results <- outcome{cfg.name(), core.Solve(p, opt)}
		}(cfg)
	}

	var best Result
	gotBest := false
	conclusive := func(s core.Status) bool {
		return s == core.StatusOptimal || s == core.StatusSatisfiable || s == core.StatusUnsat
	}
	var winner *outcome
	for i := 0; i < len(configs); i++ {
		oc := <-results
		if winner == nil && conclusive(oc.res.Status) {
			winner = &oc
			close(cancel) // stop the rest
		}
		// Track the best incumbent for the all-limits case.
		if oc.res.HasSolution && (!gotBest || !best.HasSolution || oc.res.Best < best.Best) {
			best = Result{Result: oc.res, Winner: oc.name}
			gotBest = true
		}
	}
	wg.Wait()
	if winner != nil {
		return Result{Result: winner.res, Winner: winner.name}
	}
	if gotBest {
		best.Status = core.StatusLimit
		return best
	}
	return Result{Result: core.Result{Status: core.StatusLimit}}
}

func (c Config) name() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Options.LowerBound.String()
}
