package portfolio

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/wbo"
)

func randomWBO(rng *rand.Rand) *wbo.Instance {
	n := 2 + rng.Intn(4)
	in := &wbo.Instance{NumVars: n}
	clause := func() []pb.Term {
		nt := 1 + rng.Intn(3)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{Coef: 1, Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
		}
		return terms
	}
	for i := rng.Intn(3); i > 0; i-- {
		in.Hard = append(in.Hard, wbo.HardCons{Terms: clause(), Cmp: pb.GE, Rhs: 1})
	}
	for i := 1 + rng.Intn(4); i > 0; i-- {
		in.Soft = append(in.Soft, wbo.SoftCons{
			Weight: int64(1 + rng.Intn(9)), Terms: clause(), Cmp: pb.GE, Rhs: 1})
	}
	return in
}

// TestMixedPortfolioCoreGuided races the core-guided member against
// branch-and-bound on random WBO instances under the exhaustive auditor:
// both must prove the same optimum (or agree on hard-UNSAT), and every
// published incumbent and terminal claim must survive the audit.
func TestMixedPortfolioCoreGuided(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 40; iter++ {
		in := randomWBO(rng)
		b, err := in.Builder()
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Problem()
		if err != nil {
			t.Fatal(err)
		}
		want := pb.BruteForce(p)

		aud := audit.New(p)
		configs := []Config{
			{Name: "core-guided", CoreGuided: &CoreGuided{Instance: in}},
			{Name: "mis", Options: core.Options{LowerBound: core.LBMIS, Seed: 2}},
		}
		res := SolveOpts(p, configs, Options{Audit: aud})
		if !want.Feasible {
			if res.Status != core.StatusUnsat {
				t.Fatalf("iter %d: status=%v want unsat (winner %s)", iter, res.Status, res.Winner)
			}
		} else if res.Status != core.StatusOptimal || res.Best != want.Optimum {
			t.Fatalf("iter %d: got %v/%d want optimal/%d (winner %s)",
				iter, res.Status, res.Best, want.Optimum, res.Winner)
		}
		if rep := aud.Snapshot(); !rep.Ok() {
			t.Fatalf("iter %d: audit violations:\n%s", iter, rep.String())
		}
	}
}

// TestCoreGuidedMemberAloneProvesOptimum pins the member in isolation: it
// must win the race outright (no B&B member present) with a verified
// compiled-space witness.
func TestCoreGuidedMemberAloneProvesOptimum(t *testing.T) {
	in := &wbo.Instance{
		NumVars: 2,
		Hard:    []wbo.HardCons{{Terms: []pb.Term{{Coef: 1, Lit: pb.NegLit(0)}, {Coef: 1, Lit: pb.NegLit(1)}}, Cmp: pb.GE, Rhs: 1}},
		Soft: []wbo.SoftCons{
			{Weight: 7, Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, Cmp: pb.GE, Rhs: 1},
			{Weight: 2, Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(1)}}, Cmp: pb.GE, Rhs: 1},
		},
	}
	b, err := in.Builder()
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Problem()
	if err != nil {
		t.Fatal(err)
	}
	res := SolveOpts(p, []Config{{CoreGuided: &CoreGuided{Instance: in}}}, Options{})
	if res.Status != core.StatusOptimal || res.Best != 2 {
		t.Fatalf("got %v/%d want optimal/2", res.Status, res.Best)
	}
	if res.Winner != "core-guided" {
		t.Fatalf("winner=%q want core-guided", res.Winner)
	}
	if !res.HasSolution || !p.Feasible(res.Values) {
		t.Fatal("winner must carry a feasible compiled-space witness")
	}
}

// TestSanitizeCoreGuidedDemotesBogusClaims drives the sanitizer directly
// with claims a buggy (or mismatched) core-guided member could emit: an
// optimal verdict without a witness, with an infeasible witness, or with a
// cost that does not match the claim must all demote to StatusLimit.
func TestSanitizeCoreGuidedDemotesBogusClaims(t *testing.T) {
	in := &wbo.Instance{
		NumVars: 1,
		Soft: []wbo.SoftCons{
			{Weight: 3, Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, Cmp: pb.GE, Rhs: 1}},
	}
	b, err := in.Builder()
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Problem()
	if err != nil {
		t.Fatal(err)
	}

	// No witness at all.
	r := sanitizeCoreGuided(p, in, wbo.Result{Status: core.StatusOptimal, Best: 0})
	if r.Status != core.StatusLimit || r.HasSolution {
		t.Fatalf("witnessless optimal: got %v/%v want limit without solution", r.Status, r.HasSolution)
	}

	// Witness feasible but the claimed optimum disagrees with its cost:
	// x0=0 violates the soft (compiled cost 3) while the claim says 0.
	r = sanitizeCoreGuided(p, in, wbo.Result{
		Status: core.StatusOptimal, Best: 0, HasSolution: true, Values: []bool{false}})
	if r.Status != core.StatusLimit {
		t.Fatalf("cost-mismatched optimal: status=%v want limit", r.Status)
	}
	if !r.HasSolution || r.Best != 3 {
		t.Fatalf("verified witness should survive as an incumbent: sol=%v best=%d", r.HasSolution, r.Best)
	}

	// Unsat without the HardUnsat marker (assumption-relative refusal) must
	// not become an unsatisfiability verdict for the compiled problem.
	r = sanitizeCoreGuided(p, in, wbo.Result{Status: core.StatusUnsat})
	if r.Status != core.StatusLimit {
		t.Fatalf("non-hard unsat: status=%v want limit", r.Status)
	}

	// A consistent optimal claim passes through.
	r = sanitizeCoreGuided(p, in, wbo.Result{
		Status: core.StatusOptimal, Best: 0, HasSolution: true, Values: []bool{true}})
	if r.Status != core.StatusOptimal || r.Best != 0 {
		t.Fatalf("consistent optimal: got %v/%d want optimal/0", r.Status, r.Best)
	}
}
