package portfolio

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/share"
)

// TestPortfolioLiveScrapeDuringSolve races registry scrapes against a full
// cooperative portfolio solve: a scraper goroutine snapshots the registry
// continuously while the four members run and publish. Under -race this is
// the torn-read regression test for the live metrics path — before the
// atomic-snapshot registry, a scraper reading a member's counters while the
// member mutated them was a data race and could observe counters mixed
// across assembly points. The invariants checked per scrape: the full member
// roster is visible from the very first snapshot, every published block
// carries monotonically plausible counters, and the board block is present.
func TestPortfolioLiveScrapeDuringSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	p := randomPBO(rng, 22, 60)

	reg := obs.NewRegistry()
	reg.SetMeta("mode", "test")
	tr := obs.NewTracer(1 << 12)

	stopScrape := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		for {
			snap := reg.Snapshot()
			// Registration appends members one at a time under the mutex,
			// so a scrape may legitimately see a partial roster while
			// SolveOpts is still setting up — but never more than the four
			// members, and never an unnamed or corrupt block.
			if len(snap.Solvers) > 4 {
				t.Errorf("scrape saw %d members, want <= 4", len(snap.Solvers))
				return
			}
			for _, m := range snap.Solvers {
				if m.Name == "" {
					t.Error("scrape saw unnamed member block")
					return
				}
				if m.Decisions < 0 || m.Conflicts < 0 || m.BoundCalls < 0 {
					t.Errorf("scrape saw corrupt counters: %+v", m)
					return
				}
			}
			if first {
				first = false
				close(started)
			}
			select {
			case <-stopScrape:
				return
			default:
			}
		}
	}()
	<-started // at least one concurrent scrape is guaranteed

	res := SolveOpts(p, nil, Options{Registry: reg, Trace: tr, Share: share.Config{}})
	close(stopScrape)
	wg.Wait()

	if res.Status != core.StatusOptimal && res.Status != core.StatusUnsat {
		t.Fatalf("solve status=%v", res.Status)
	}

	// Terminal snapshot: every member must have published its final block
	// with a terminal status, and the board block must be attached.
	snap := reg.Snapshot()
	if len(snap.Solvers) != 4 {
		t.Fatalf("final roster has %d members, want 4", len(snap.Solvers))
	}
	names := map[string]bool{}
	for _, m := range snap.Solvers {
		names[m.Name] = true
		if m.Status == "" {
			t.Errorf("member %s: no terminal status published", m.Name)
		}
	}
	for _, want := range []string{"plain", "mis", "lgr", "lpr"} {
		if !names[want] {
			t.Errorf("member %s missing from final snapshot", want)
		}
	}
	if snap.Board == nil {
		t.Fatal("board block missing from cooperative-run snapshot")
	}
	if snap.Board.Members != 4 {
		t.Fatalf("board members=%d want 4", snap.Board.Members)
	}
	if snap.Schema != obs.SchemaVersion {
		t.Fatalf("schema %q", snap.Schema)
	}

	// The trace ring must carry name-stamped lifecycle events from the
	// members (at minimum each member's solve_start/solve_end pair).
	events := tr.Snapshot()
	starts := map[string]bool{}
	ends := map[string]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case obs.EvSolveStart:
			starts[ev.Member] = true
		case obs.EvSolveEnd:
			ends[ev.Member] = true
		}
	}
	for _, want := range []string{"plain", "mis", "lgr", "lpr"} {
		if !starts[want] || !ends[want] {
			t.Errorf("member %s: missing traced lifecycle (start=%v end=%v)",
				want, starts[want], ends[want])
		}
	}
}

// TestPortfolioMetricsConversion checks the terminal Result→schema
// conversion used by end-of-run snapshot writers.
func TestPortfolioMetricsConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomPBO(rng, 10, 16)
	res := Solve(p, nil)
	ms := res.Metrics()
	if len(ms) != 4 {
		t.Fatalf("got %d member blocks, want 4", len(ms))
	}
	for i, m := range ms {
		if m.Name != res.Members[i].Name {
			t.Fatalf("block %d name %q want %q", i, m.Name, res.Members[i].Name)
		}
		if m.Status == "" {
			t.Fatalf("block %d: empty status", i)
		}
	}
	bm := BoardMetrics(res.Board)
	if bm.Members != 4 {
		t.Fatalf("board members=%d want 4", bm.Members)
	}
}
