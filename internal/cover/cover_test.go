package cover

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/pb"
)

func TestEssentialColumn(t *testing.T) {
	// Row {x0} forces x0; row {x0, x1} is then satisfied and removed.
	p := pb.NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 1)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	out, info, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.EssentialColumns != 1 {
		t.Fatalf("essentials=%d want 1", info.EssentialColumns)
	}
	r := pb.BruteForce(out)
	if !r.Feasible || r.Optimum != 2 {
		t.Fatalf("optimum=%d want 2", r.Optimum)
	}
}

func TestRowDominance(t *testing.T) {
	p := pb.NewProblem(3)
	for v := 0; v < 3; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1), pb.PosLit(2)) // dominated
	out, info, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.DominatedRows != 1 {
		t.Fatalf("dominated rows=%d want 1", info.DominatedRows)
	}
	if pb.BruteForce(out).Optimum != pb.BruteForce(p).Optimum {
		t.Fatal("optimum changed")
	}
}

func TestColumnDominance(t *testing.T) {
	// x0 covers rows {r0, r1}; x1 covers only r1 at higher cost ⇒ x1
	// dominated, excluded.
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	p.SetCost(1, 5)
	p.SetCost(2, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(2))
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	out, info, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.DominatedColumns == 0 {
		t.Fatal("expected a dominated column")
	}
	r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
	if r1.Optimum != r2.Optimum {
		t.Fatalf("optimum changed %d → %d", r1.Optimum, r2.Optimum)
	}
}

func TestBinateRowsUntouched(t *testing.T) {
	// A variable occurring in a binate row must not participate in column
	// dominance even when it looks dominated within the unate part.
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	p.SetCost(1, 5)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.NegLit(1), pb.PosLit(2)) // binate: uses ¬x1
	out, _, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
	if r1.Optimum != r2.Optimum || r1.Feasible != r2.Feasible {
		t.Fatalf("semantics changed: %+v vs %+v", r1, r2)
	}
}

// Property: reductions preserve feasibility and optimum on random unate
// covering instances.
func TestReducePreservesOptimumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(6)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(9)))
		}
		m := 2 + rng.Intn(8)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(4)
			seen := map[pb.Var]bool{}
			var lits []pb.Lit
			for k := 0; k < nt; k++ {
				v := pb.Var(rng.Intn(n))
				if !seen[v] {
					seen[v] = true
					lits = append(lits, pb.PosLit(v))
				}
			}
			_ = p.AddClause(lits...)
		}
		// Mix in an occasional binate row.
		if rng.Intn(3) == 0 {
			_ = p.AddClause(pb.NegLit(pb.Var(rng.Intn(n))), pb.PosLit(pb.Var(rng.Intn(n))))
		}
		out, _, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
		if r1.Feasible != r2.Feasible {
			t.Fatalf("iter %d: feasibility changed", iter)
		}
		if r1.Feasible && r1.Optimum != r2.Optimum {
			t.Fatalf("iter %d: optimum changed %d → %d", iter, r1.Optimum, r2.Optimum)
		}
	}
}

func TestReduceOnMinCoverInstances(t *testing.T) {
	// The mcnc family is exactly the unate covering shape the reductions
	// target; they should fire and preserve the optimum.
	for seed := int64(0); seed < 5; seed++ {
		p, err := gen.MinCover(gen.MinCoverConfig{Inputs: 5, OnDensity: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out, info, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.DominatedRows+info.DominatedColumns+info.EssentialColumns == 0 {
			continue // some instances are irreducible; fine
		}
		if p.NumVars > 22 {
			continue // keep brute force cheap
		}
		r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
		if r1.Optimum != r2.Optimum {
			t.Fatalf("seed %d: optimum changed %d → %d", seed, r1.Optimum, r2.Optimum)
		}
	}
}

func TestIdempotent(t *testing.T) {
	p := pb.NewProblem(4)
	for v := 0; v < 4; v++ {
		p.SetCost(pb.Var(v), int64(v+1))
	}
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2), pb.PosLit(3))
	out1, _, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	out2, info2, err := Reduce(out1)
	if err != nil {
		t.Fatal(err)
	}
	// A second pass must converge immediately with no further removals.
	if info2.DominatedRows != 0 || info2.DominatedColumns != 0 {
		t.Fatalf("second pass still reduced: %+v", info2)
	}
	if len(out2.Constraints) != len(out1.Constraints) {
		t.Fatal("constraint count changed on second pass")
	}
}
