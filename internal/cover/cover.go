// Package cover implements the classical covering-problem reductions from
// the binate-covering literature the paper builds on (§2; Coudert [5],
// Villa et al. [15], Manquinho & Marques-Silva [9]):
//
//   - essential columns: a unate row with a single column forces that
//     column into every solution;
//   - row dominance: a row whose column set contains another row's is
//     implied by it and can be removed (clause subsumption);
//   - column dominance: a column whose row set is contained in a cheaper
//     (or equal-cost) column's can be excluded from some optimal solution.
//
// The reductions are applied to the *unate part* of a PBO instance — clause
// rows with only positive literals whose variables appear nowhere else —
// and iterate to fixpoint, since each kind of reduction can enable the
// others. Essential selections and column exclusions are materialized as
// unit clauses (the variable numbering is preserved), so any downstream
// solver sees a strictly easier problem with the same optimum.
package cover

import (
	"sort"

	"repro/internal/pb"
)

// Info reports what the reduction loop did.
type Info struct {
	EssentialColumns int
	DominatedRows    int
	DominatedColumns int
	Iterations       int
}

// Reduce returns a reduced copy of p with the same variable numbering and
// the same optimum. Row dominance preserves the full solution set; column
// dominance and essential-column selection preserve at least one optimal
// solution (the standard covering-problem argument).
func Reduce(p *pb.Problem) (*pb.Problem, Info, error) {
	out := p.Clone()
	var info Info
	seenEssential := map[pb.Var]bool{}

	for {
		info.Iterations++
		changed := false

		// Identify the unate sub-problem: clause rows with only positive
		// literals, over variables appearing exclusively in such rows.
		type rowInfo struct {
			idx  int
			cols map[pb.Var]bool
		}
		occElsewhere := make([]bool, out.NumVars)
		var unate []rowInfo
		// forcedKnown marks variables already pinned by unit rows: they are
		// neither re-selected as essential nor eligible for column dominance.
		forcedKnown := map[pb.Var]bool{}
		for i, c := range out.Constraints {
			isUnate := c.Kind() == pb.KindClause
			if isUnate {
				for _, t := range c.Terms {
					if t.Lit.IsNeg() {
						isUnate = false
						break
					}
				}
			}
			if !isUnate {
				for _, t := range c.Terms {
					occElsewhere[t.Lit.Var()] = true
				}
				continue
			}
			cols := make(map[pb.Var]bool, len(c.Terms))
			for _, t := range c.Terms {
				cols[t.Lit.Var()] = true
			}
			if len(c.Terms) == 1 {
				forcedKnown[c.Terms[0].Lit.Var()] = true
			}
			unate = append(unate, rowInfo{idx: i, cols: cols})
		}

		// Essential columns: unit unate rows select their column; rows
		// containing a selected column are satisfied and dropped.
		selected := map[pb.Var]bool{}
		for _, r := range unate {
			if len(r.cols) != 1 {
				continue
			}
			for v := range r.cols {
				selected[v] = true
				if !seenEssential[v] {
					seenEssential[v] = true
					info.EssentialColumns++
				}
			}
		}
		removeRow := map[int]bool{}
		if len(selected) > 0 {
			for _, r := range unate {
				if len(r.cols) == 1 {
					continue // keep the unit row: it IS the selection
				}
				for v := range r.cols {
					if selected[v] {
						removeRow[r.idx] = true
						changed = true
						break
					}
				}
			}
		}

		// Row dominance among remaining unate rows: subset removes superset.
		live := unate[:0]
		for _, r := range unate {
			if !removeRow[r.idx] {
				live = append(live, r)
			}
		}
		sort.Slice(live, func(a, b int) bool { return len(live[a].cols) < len(live[b].cols) })
		for i := 0; i < len(live); i++ {
			if removeRow[live[i].idx] {
				continue
			}
			for j := i + 1; j < len(live); j++ {
				if removeRow[live[j].idx] || len(live[j].cols) <= len(live[i].cols) {
					continue
				}
				subset := true
				for v := range live[i].cols {
					if !live[j].cols[v] {
						subset = false
						break
					}
				}
				if subset {
					removeRow[live[j].idx] = true
					info.DominatedRows++
					changed = true
				}
			}
		}

		// Column dominance: among variables appearing only in live unate
		// rows, column a dominates b when rows(a) ⊇ rows(b) and
		// cost(a) ≤ cost(b); b can be excluded.
		rowsOf := map[pb.Var]map[int]bool{}
		for _, r := range live {
			if removeRow[r.idx] {
				continue
			}
			for v := range r.cols {
				if occElsewhere[v] {
					continue
				}
				if rowsOf[v] == nil {
					rowsOf[v] = map[int]bool{}
				}
				rowsOf[v][r.idx] = true
			}
		}
		var cols []pb.Var
		for v := range rowsOf {
			if !selected[v] && !forcedKnown[v] {
				cols = append(cols, v)
			}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		excluded := map[pb.Var]bool{}
		for _, b := range cols {
			if excluded[b] {
				continue
			}
			for _, a := range cols {
				if a == b || excluded[a] || out.Cost[a] > out.Cost[b] {
					continue
				}
				// Equal-cost symmetric pairs: only the higher index may be
				// excluded, or both would vanish.
				if out.Cost[a] == out.Cost[b] && len(rowsOf[a]) == len(rowsOf[b]) && a > b {
					continue
				}
				dominates := true
				for ri := range rowsOf[b] {
					if !rowsOf[a][ri] {
						dominates = false
						break
					}
				}
				if dominates {
					excluded[b] = true
					info.DominatedColumns++
					changed = true
					break
				}
			}
		}

		// Materialize: drop dominated/satisfied rows, add unit clauses for
		// essential selections and column exclusions.
		if !changed {
			break
		}
		var kept []*pb.Constraint
		for i, c := range out.Constraints {
			if !removeRow[i] {
				kept = append(kept, c)
			}
		}
		out.Constraints = kept
		for _, v := range sortedVars(selected) {
			if !forcedKnown[v] {
				if err := out.AddClause(pb.PosLit(v)); err != nil {
					return nil, info, err
				}
			}
		}
		for _, v := range sortedVars(excluded) {
			if err := out.AddClause(pb.NegLit(v)); err != nil {
				return nil, info, err
			}
		}
		if info.Iterations > 100 {
			break // safety: should converge in a handful of rounds
		}
	}
	return out, info, nil
}

func sortedVars(m map[pb.Var]bool) []pb.Var {
	out := make([]pb.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
