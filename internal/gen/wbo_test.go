package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/wbo"
)

func TestWBOHardFeasibleAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in, err := WBO(WBOConfig{Vars: 10, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(in.Soft) == 0 || len(in.Hard) == 0 {
			t.Fatalf("seed %d: degenerate instance hard=%d soft=%d", seed, len(in.Hard), len(in.Soft))
		}
		// The hard skeleton must be feasible (planted witness): the
		// core-guided loop must never report HardUnsat on this family.
		res := wbo.Solve(in, wbo.Options{MaxConflicts: 200000})
		if res.HardUnsat {
			t.Fatalf("seed %d: generated instance is hard-UNSAT", seed)
		}
		if res.Status != core.StatusOptimal {
			t.Fatalf("seed %d: status=%v want optimal", seed, res.Status)
		}

		// Same seed, same instance (bit-reproducible benchmarks).
		again, err := WBO(WBOConfig{Vars: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Hard) != len(in.Hard) || len(again.Soft) != len(in.Soft) {
			t.Fatalf("seed %d: regeneration differs", seed)
		}
		for i := range in.Soft {
			if again.Soft[i].Weight != in.Soft[i].Weight || again.Soft[i].Rhs != in.Soft[i].Rhs {
				t.Fatalf("seed %d: soft row %d differs across regenerations", seed, i)
			}
		}
	}
}

func TestWBOMixedSoftShapes(t *testing.T) {
	in, err := WBO(WBOConfig{Vars: 20, SoftRows: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[pb.Cmp]int{}
	clause := 0
	for i := range in.Soft {
		sc := &in.Soft[i]
		shapes[sc.Cmp]++
		if sc.Cmp == pb.GE && sc.Rhs == 1 {
			clause++
		}
	}
	if clause == 0 {
		t.Fatal("no soft clauses generated")
	}
	if shapes[pb.LE]+shapes[pb.EQ] == 0 {
		t.Fatal("no PB-shaped soft rows generated — family degenerates to weighted MaxSAT")
	}
}

func TestWBORejectsBadConfig(t *testing.T) {
	if _, err := WBO(WBOConfig{Vars: 2}); err == nil {
		t.Fatal("accepted 2-variable config")
	}
	if _, err := WBO(WBOConfig{Vars: 5, SoftRows: -1}); err == nil {
		t.Fatal("accepted negative soft row count")
	}
}
