// Adversarial instance family for the differential fuzzer (internal/fuzz,
// cmd/pbfuzz): small OPB instances deliberately shaped around the solver
// stack's historical weak spots —
//
//   - negative objective coefficients (exercising internal/opb's complement
//     normalization and CostOffset bookkeeping),
//   - negative and near-int64 constraint coefficients (exercising the
//     checked normalization of internal/pb and the parser's pb.ErrOverflow
//     surfacing),
//   - duplicate literals for the same variable within one row (coefficient
//     merging, including x together with ~x),
//   - trivially UNSAT rows (degree above the achievable maximum) and
//     tautological rows (degree ≤ 0 after normalization),
//   - "=" rows (expanded into a ≥/≤ pair) and "<=" rows (negation path).
//
// Unlike the benchmark families (ACC, Grout, Sym, MinCover, Synthesis) the
// adversarial generator emits OPB *text*, not a pb.Problem: half the point
// is to drive the parser and its overflow rejections; instances that fail to
// parse are themselves a meaningful outcome (the fuzzer checks the error is
// a structured rejection, never a panic or silent wrap).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// AdversarialConfig parameterizes the hostile generator. The zero value
// (plus a seed) yields brute-forceable instances: Vars ≤ 8 keeps the
// variable count — even after complement normalization doubles it — inside
// pb.BruteForce's 24-variable limit and the auditor's exhaustive gate.
type AdversarialConfig struct {
	// Vars is the number of distinct variables (default 6).
	Vars int
	// Rows is the number of constraint rows (default 5).
	Rows int
	// HugeProb is the probability that a coefficient is near ±MaxInt64
	// (default 0.03): such instances must be *rejected* by the parser with
	// pb.ErrOverflow, never wrapped into a wrong optimum.
	HugeProb float64
	// NegObjProb is the probability that an objective coefficient is
	// negative (default 0.3), routing through the complement normalization.
	NegObjProb float64
	Seed       int64
}

func (c *AdversarialConfig) defaults() {
	if c.Vars <= 0 {
		c.Vars = 6
	}
	if c.Rows <= 0 {
		c.Rows = 5
	}
	if c.HugeProb <= 0 {
		c.HugeProb = 0.03
	}
	if c.NegObjProb <= 0 {
		c.NegObjProb = 0.3
	}
}

// AdversarialOPB renders one adversarial instance as OPB text.
func AdversarialOPB(cfg AdversarialConfig) string {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	fmt.Fprintf(&sb, "* adversarial seed=%d vars=%d rows=%d\n", cfg.Seed, cfg.Vars, cfg.Rows)

	coef := func(small int) int64 {
		if rng.Float64() < cfg.HugeProb {
			// Near the int64 edge: alone it parses, summed it must overflow
			// into a structured rejection.
			v := math.MaxInt64 - int64(rng.Intn(1024))
			if rng.Intn(2) == 0 {
				return -v
			}
			return v
		}
		v := int64(1 + rng.Intn(small))
		if rng.Intn(3) == 0 {
			return -v
		}
		return v
	}

	// Objective: most variables costed, with negative coefficients at
	// NegObjProb (the opb complement-normalization path).
	if rng.Intn(6) != 0 { // occasionally objective-free (pure feasibility)
		sb.WriteString("min:")
		for v := 1; v <= cfg.Vars; v++ {
			if rng.Intn(4) == 0 {
				continue
			}
			c := int64(1 + rng.Intn(9))
			if rng.Float64() < cfg.NegObjProb {
				c = -c
			}
			if rng.Float64() < cfg.HugeProb {
				c = math.MaxInt64 - int64(rng.Intn(1024))
			}
			fmt.Fprintf(&sb, " %+d x%d", c, v)
			if rng.Intn(8) == 0 {
				// Duplicate objective mention of the same variable: the
				// parser must merge (and overflow-check the merge).
				fmt.Fprintf(&sb, " %+d x%d", c, v)
			}
		}
		sb.WriteString(" ;\n")
	}

	for r := 0; r < cfg.Rows; r++ {
		nt := 1 + rng.Intn(4)
		var sum int64
		for k := 0; k < nt; k++ {
			c := coef(6)
			v := 1 + rng.Intn(cfg.Vars) // with replacement: duplicates likely
			neg := ""
			if rng.Intn(4) == 0 {
				neg = "~" // mixed polarities, including x alongside ~x
			}
			fmt.Fprintf(&sb, "%+d %s%s ", c, neg, fmt.Sprintf("x%d", v))
			if c > 0 && sum < math.MaxInt64-c {
				sum += c
			}
		}
		op := ">="
		switch rng.Intn(6) {
		case 0:
			op = "<="
		case 1:
			op = "="
		}
		rhs := int64(rng.Intn(7)) - 2
		switch rng.Intn(10) {
		case 0:
			// Trivially UNSAT row: degree above the achievable maximum.
			rhs = sum + 1 + int64(rng.Intn(5))
			op = ">="
		case 1:
			// Tautological row: degree ≤ 0 after normalization.
			rhs = -1 - int64(rng.Intn(4))
			op = ">="
		}
		fmt.Fprintf(&sb, "%s %d ;\n", op, rhs)
	}
	return sb.String()
}
