package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
	"repro/internal/qm"
)

// MinCoverConfig parameterizes an MCNC-style two-level minimization
// instance [17]: a random single-output truth table whose prime implicants
// (from internal/qm) form the columns of a minimum-literal covering problem.
type MinCoverConfig struct {
	// Inputs is the number of function inputs (≤ 12 keeps QM fast).
	Inputs int
	// OnDensity is the fraction of minterms in the ON-set.
	OnDensity float64
	// DcDensity is the fraction of minterms in the don't-care set.
	DcDensity float64
	Seed      int64
}

// MinCover generates the covering instance: one variable per prime
// implicant with cost = literal count + 1 (gate input cost plus the
// OR-plane connection, the usual two-level cost model), one clause per
// ON-set minterm requiring a covering prime. Instances are always feasible
// (every ON minterm seeds a prime).
func MinCover(cfg MinCoverConfig) (*pb.Problem, error) {
	if cfg.Inputs < 2 || cfg.Inputs > 12 {
		return nil, fmt.Errorf("gen: mincover inputs=%d out of range [2,12]", cfg.Inputs)
	}
	if cfg.OnDensity <= 0 {
		cfg.OnDensity = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	limit := uint32(1) << uint(cfg.Inputs)
	var on, dc []uint32
	for m := uint32(0); m < limit; m++ {
		r := rng.Float64()
		switch {
		case r < cfg.OnDensity:
			on = append(on, m)
		case r < cfg.OnDensity+cfg.DcDensity:
			dc = append(dc, m)
		}
	}
	if len(on) == 0 {
		on = append(on, uint32(rng.Intn(int(limit))))
	}
	primes, err := qm.Primes(cfg.Inputs, on, dc)
	if err != nil {
		return nil, err
	}
	prob := pb.NewProblem(len(primes))
	for i, p := range primes {
		prob.SetCost(pb.Var(i), int64(p.Literals(cfg.Inputs)+1))
	}
	for _, row := range qm.CoverTable(on, primes) {
		lits := make([]pb.Lit, len(row))
		for k, pi := range row {
			lits[k] = pb.PosLit(pb.Var(pi))
		}
		if err := prob.AddClause(lits...); err != nil {
			return nil, err
		}
	}
	return prob, nil
}
