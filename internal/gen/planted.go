package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
)

// PlantedConfig parameterizes a planted-solution random pseudo-Boolean
// instance: random at-least-d-of-k constraints near the satisfiability
// threshold, every one repaired to agree with a hidden planted assignment.
// Feasibility is guaranteed by construction, but the instance carries none
// of the per-node structure (one-hot rows, topological order) that lets a
// branch-and-bound dive reach a feasible leaf by propagation alone — a
// systematic solver conflicts its way through the dense random core before
// it sees its first incumbent, while a stochastic local search walks to one
// quickly. This is exactly the regime the local-search portfolio member
// (internal/ls) exists for, and the harness "sat" family is built from it.
type PlantedConfig struct {
	// Vars is the number of Boolean variables.
	Vars int
	// Ratio is the number of constraints per variable (0 = default 4.2,
	// near the random-3-SAT threshold where systematic search is slowest).
	Ratio float64
	// K is the number of literals per constraint (0 = default 3).
	K int
	// AtLeast2Frac is the fraction of rows that demand two satisfied
	// literals from K+1 instead of one from K (0 = default 0.2) — the
	// pseudo-Boolean twist that keeps the family from being plain CNF.
	AtLeast2Frac float64
	// CostFrac is the fraction of variables that carry objective weight
	// (0 = default 0.5; negative = no objective, a pure satisfaction
	// instance). Costs are uniform in [1, MaxCost].
	CostFrac float64
	// MaxCost bounds the per-variable objective weight (0 = default 9).
	MaxCost int64
	Seed    int64
}

// Planted generates the instance. The planted assignment is sampled
// uniformly; each constraint samples its literal set uniformly and, when the
// planted assignment would violate it, flips the polarity of randomly chosen
// literals until it is satisfied. The objective is independent of the
// planted witness, so the planted assignment is feasible but rarely optimal.
func Planted(cfg PlantedConfig) (*pb.Problem, error) {
	if cfg.Vars < 3 {
		return nil, fmt.Errorf("gen: planted needs ≥3 variables, got %d", cfg.Vars)
	}
	if cfg.Ratio <= 0 {
		cfg.Ratio = 4.2
	}
	if cfg.K == 0 {
		cfg.K = 3
	}
	if cfg.K < 2 || cfg.K >= cfg.Vars {
		return nil, fmt.Errorf("gen: planted needs 2 ≤ K < Vars, got K=%d", cfg.K)
	}
	if cfg.AtLeast2Frac == 0 {
		cfg.AtLeast2Frac = 0.2
	}
	if cfg.CostFrac == 0 {
		cfg.CostFrac = 0.5
	}
	if cfg.MaxCost <= 0 {
		cfg.MaxCost = 9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	prob := pb.NewProblem(cfg.Vars)
	witness := make([]bool, cfg.Vars)
	for v := range witness {
		witness[v] = rng.Intn(2) == 0
	}
	if cfg.CostFrac > 0 {
		for v := 0; v < cfg.Vars; v++ {
			if rng.Float64() < cfg.CostFrac {
				prob.SetCost(pb.Var(v), 1+rng.Int63n(cfg.MaxCost))
			}
		}
	}

	litTrue := func(l pb.Lit) bool { return witness[l.Var()] != l.IsNeg() }
	rows := int(cfg.Ratio * float64(cfg.Vars))
	if rows < 1 {
		rows = 1
	}
	scratch := make([]pb.Term, 0, cfg.K+1)
	for r := 0; r < rows; r++ {
		k, degree := cfg.K, int64(1)
		if rng.Float64() < cfg.AtLeast2Frac && cfg.K+1 < cfg.Vars {
			k, degree = cfg.K+1, 2
		}
		scratch = scratch[:0]
		seen := map[pb.Var]bool{}
		for len(scratch) < k {
			v := pb.Var(rng.Intn(cfg.Vars))
			if seen[v] {
				continue
			}
			seen[v] = true
			l := pb.PosLit(v)
			if rng.Intn(2) == 0 {
				l = pb.NegLit(v)
			}
			scratch = append(scratch, pb.Term{Coef: 1, Lit: l})
		}
		// Repair toward the planted witness: flip random literals' polarity
		// until the row is satisfied by it.
		for {
			var sat int64
			for _, t := range scratch {
				if litTrue(t.Lit) {
					sat++
				}
			}
			if sat >= degree {
				break
			}
			i := rng.Intn(len(scratch))
			if !litTrue(scratch[i].Lit) {
				scratch[i].Lit = scratch[i].Lit.Neg()
			}
		}
		if err := prob.AddConstraint(scratch, pb.GE, degree); err != nil {
			return nil, fmt.Errorf("gen: planted row %d: %w", r, err)
		}
	}
	if !prob.Feasible(witness) {
		// Cannot happen by construction; fail loudly rather than hand a
		// possibly-infeasible instance to a benchmark that assumes SAT.
		return nil, fmt.Errorf("gen: planted witness infeasible (generator bug)")
	}
	return prob, nil
}
