package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
)

// SynthesisConfig parameterizes a mixed PTL/CMOS technology-selection
// instance in the style of [18]: a netlist where each node chooses one of
// several implementations (pass-transistor-logic or static CMOS variants of
// differing area), with interface-compatibility constraints between driver
// and fanout implementations.
type SynthesisConfig struct {
	// Nodes is the number of logic nodes in the netlist.
	Nodes int
	// Impls is the number of implementation variants per node (≥ 2; the
	// first half are "PTL-style", the rest "CMOS-style").
	Impls int
	// Fanout is the average number of successors per node (DAG edges).
	Fanout float64
	// Incompat is the probability that a (driver impl, sink impl) pair of
	// different families needs a level-restoring buffer and is forbidden
	// without one.
	Incompat float64
	// BufferArea, when positive, softens incompatibilities: a cross-family
	// pair flagged incompatible may still be used if the edge's
	// level-restoring buffer (a fresh variable of this area) is inserted.
	// Buffer clauses overlap heavily on the shared buffer variable, which
	// is precisely the structure where the MIS lower bound collapses but
	// LP/Lagrangian relaxations keep pruning (the paper's synthesis rows).
	BufferArea int64
	Seed       int64
}

// Synthesis generates the instance. Variables x_{n,i} select implementation
// i for node n (exactly one per node); incompatible choices across DAG edges
// are excluded by binary clauses; the objective is total area. Instances are
// always feasible: implementation 0 of every node is mutually compatible.
func Synthesis(cfg SynthesisConfig) (*pb.Problem, error) {
	if cfg.Nodes < 1 || cfg.Impls < 2 {
		return nil, fmt.Errorf("gen: synthesis needs ≥1 node and ≥2 impls")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 1.5
	}
	if cfg.Incompat <= 0 {
		cfg.Incompat = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	prob := pb.NewProblem(cfg.Nodes * cfg.Impls)
	v := func(n, i int) pb.Var { return pb.Var(n*cfg.Impls + i) }
	// Buffer variables are created lazily per DAG edge.
	bufferVar := map[[2]int]pb.Var{}
	getBuffer := func(n, m int) pb.Var {
		key := [2]int{n, m}
		if b, ok := bufferVar[key]; ok {
			return b
		}
		b := prob.AddVar(cfg.BufferArea)
		bufferVar[key] = b
		return b
	}

	// Areas: PTL variants are smaller but "risky" (interface-constrained);
	// CMOS variants larger. Wide cost spread as in the paper's instances.
	for n := 0; n < cfg.Nodes; n++ {
		lits := make([]pb.Lit, cfg.Impls)
		for i := 0; i < cfg.Impls; i++ {
			var area int64
			if i < cfg.Impls/2 {
				area = int64(20 + rng.Intn(120)) // PTL-ish
			} else {
				area = int64(90 + rng.Intn(400)) // CMOS-ish
			}
			prob.SetCost(v(n, i), area)
			lits[i] = pb.PosLit(v(n, i))
		}
		if err := prob.AddExactlyOne(lits...); err != nil {
			return nil, err
		}
	}

	// DAG edges n → m (n < m) with compatibility clauses.
	for n := 0; n < cfg.Nodes; n++ {
		fan := int(cfg.Fanout)
		if rng.Float64() < cfg.Fanout-float64(fan) {
			fan++
		}
		for k := 0; k < fan; k++ {
			if n+1 >= cfg.Nodes {
				break
			}
			m := n + 1 + rng.Intn(cfg.Nodes-n-1)
			for i := 0; i < cfg.Impls; i++ {
				for j := 0; j < cfg.Impls; j++ {
					if i == 0 && j == 0 {
						continue // impl 0 pairs always compatible: feasibility anchor
					}
					ptlI := i < cfg.Impls/2
					ptlJ := j < cfg.Impls/2
					if ptlI == ptlJ {
						continue // same family: compatible
					}
					if rng.Float64() < cfg.Incompat {
						if cfg.BufferArea > 0 {
							// Allowed with a level-restoring buffer on the edge.
							b := getBuffer(n, m)
							if err := prob.AddClause(pb.NegLit(v(n, i)), pb.NegLit(v(m, j)), pb.PosLit(b)); err != nil {
								return nil, err
							}
						} else if err := prob.AddClause(pb.NegLit(v(n, i)), pb.NegLit(v(m, j))); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return prob, nil
}
