package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
)

// ACCConfig parameterizes a round-robin sports-scheduling satisfaction
// instance in the style of Walser's ACC (Atlantic Coast Conference
// basketball) 0-1 benchmarks [16]: no cost function, tightly constrained.
type ACCConfig struct {
	// Teams is the (even) number of teams; the schedule has Teams−1 rounds.
	Teams int
	// FixedMatches pre-assigns this many (pair, round) matches taken from a
	// valid circle-method schedule, tightening the instance while keeping it
	// satisfiable.
	FixedMatches int
	// ForbiddenMatches adds this many constraints forbidding a (pair, round)
	// combination that the circle-method schedule does not use (still
	// satisfiable, further tightened).
	ForbiddenMatches int
	// HomeAway, when set, adds home/away orientation variables h_{i,j,r}
	// (team i hosts j in round r) with balance constraints: every team
	// hosts between ⌊(T−1)/2⌋ and ⌈(T−1)/2⌉ of its games — the balance
	// side of Walser's original ACC model. Instances remain satisfiable
	// (the circle-method schedule admits a balanced orientation).
	HomeAway bool
	Seed     int64
}

// ACC generates the instance. Variables x_{i,j,r} (i<j) mean teams i and j
// meet in round r. Constraints: every pair meets exactly once; every team
// plays exactly once per round. The instance is satisfiable by construction
// (the circle-method schedule witnesses it).
func ACC(cfg ACCConfig) (*pb.Problem, error) {
	t := cfg.Teams
	if t < 4 || t%2 != 0 {
		return nil, fmt.Errorf("gen: acc needs an even team count ≥ 4, got %d", t)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rounds := t - 1

	// Variable indexing for pairs i<j and rounds.
	pairIdx := map[[2]int]int{}
	var pairs [][2]int
	for i := 0; i < t; i++ {
		for j := i + 1; j < t; j++ {
			pairIdx[[2]int{i, j}] = len(pairs)
			pairs = append(pairs, [2]int{i, j})
		}
	}
	v := func(i, j, r int) pb.Var {
		if i > j {
			i, j = j, i
		}
		return pb.Var(pairIdx[[2]int{i, j}]*rounds + r)
	}
	prob := pb.NewProblem(len(pairs) * rounds)

	// Every pair meets exactly once across the rounds.
	for _, pr := range pairs {
		lits := make([]pb.Lit, rounds)
		for r := 0; r < rounds; r++ {
			lits[r] = pb.PosLit(v(pr[0], pr[1], r))
		}
		if err := prob.AddExactlyOne(lits...); err != nil {
			return nil, err
		}
	}
	// Every team plays exactly once per round.
	for i := 0; i < t; i++ {
		for r := 0; r < rounds; r++ {
			var lits []pb.Lit
			for j := 0; j < t; j++ {
				if j == i {
					continue
				}
				lits = append(lits, pb.PosLit(v(i, j, r)))
			}
			if err := prob.AddExactlyOne(lits...); err != nil {
				return nil, err
			}
		}
	}

	// Circle-method witness schedule: in round r, team t−1 plays team r;
	// remaining teams pair as (r+k) vs (r−k) mod t−1.
	type match struct{ i, j, r int }
	var witness []match
	usedInWitness := map[[3]int]bool{}
	for r := 0; r < rounds; r++ {
		witness = append(witness, match{t - 1, r, r})
		usedInWitness[[3]int{min(t-1, r), max(t-1, r), r}] = true
		for k := 1; k < t/2; k++ {
			a := (r + k) % (t - 1)
			b := (r - k + (t - 1)) % (t - 1)
			witness = append(witness, match{a, b, r})
			usedInWitness[[3]int{min(a, b), max(a, b), r}] = true
		}
	}

	// Fix some witness matches (unit clauses).
	perm := rng.Perm(len(witness))
	for k := 0; k < cfg.FixedMatches && k < len(witness); k++ {
		m := witness[perm[k]]
		if err := prob.AddClause(pb.PosLit(v(m.i, m.j, m.r))); err != nil {
			return nil, err
		}
	}
	// Forbid some non-witness combinations.
	forbidden := 0
	for guard := 0; forbidden < cfg.ForbiddenMatches && guard < cfg.ForbiddenMatches*20; guard++ {
		pi := rng.Intn(len(pairs))
		r := rng.Intn(rounds)
		pr := pairs[pi]
		if usedInWitness[[3]int{pr[0], pr[1], r}] {
			continue
		}
		if err := prob.AddClause(pb.NegLit(v(pr[0], pr[1], r))); err != nil {
			return nil, err
		}
		forbidden++
	}

	// Home/away orientation with balance (optional): h_pair = 1 means the
	// lower-numbered team hosts. Every team hosts between ⌊(T−1)/2⌋ and
	// ⌈(T−1)/2⌉ games; a near-regular tournament orientation always exists,
	// so the instance stays satisfiable.
	if cfg.HomeAway {
		h := make([]pb.Var, len(pairs))
		for pi := range pairs {
			h[pi] = prob.AddVar(0)
		}
		low := int64((t - 1) / 2)
		high := int64(t / 2) // T even ⇒ ⌈(T−1)/2⌉ = T/2
		for team := 0; team < t; team++ {
			var terms []pb.Term
			for pi, pr := range pairs {
				switch {
				case pr[0] == team:
					terms = append(terms, pb.Term{Coef: 1, Lit: pb.PosLit(h[pi])})
				case pr[1] == team:
					terms = append(terms, pb.Term{Coef: 1, Lit: pb.NegLit(h[pi])})
				}
			}
			if err := prob.AddConstraint(terms, pb.GE, low); err != nil {
				return nil, err
			}
			if err := prob.AddConstraint(terms, pb.LE, high); err != nil {
				return nil, err
			}
		}
	}
	return prob, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
