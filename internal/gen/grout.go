// Package gen generates the four EDA benchmark families of the paper's
// Table 1 as seeded, deterministic PBO instances (see DESIGN.md §2 for the
// substitution rationale):
//
//   - Grout: FPGA global routing — one-hot path selection per net under
//     edge-capacity constraints, minimizing total wirelength [2].
//   - Synthesis: mixed PTL/CMOS technology selection — per-node
//     implementation choice with interface-compatibility clauses,
//     minimizing area [18].
//   - MinCover: MCNC-style two-level logic minimization — minimum-literal
//     prime-implicant covering built on internal/qm [17].
//   - ACC: tightly constrained round-robin sports-scheduling satisfaction
//     instances with no cost function [16].
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
)

// GroutConfig parameterizes a routing instance.
type GroutConfig struct {
	// Width and Height are the routing grid dimensions (nodes).
	Width, Height int
	// Nets is the number of two-pin nets to route.
	Nets int
	// PathsPerNet is the number of candidate paths enumerated per net
	// (the two L-shaped monotone routes plus random staircases).
	PathsPerNet int
	// Capacity is the per-edge routing capacity.
	Capacity int
	// MultiPinFraction, when positive, converts that fraction of the nets
	// into three-pin nets: each candidate route is the union of two
	// two-pin routes through the third terminal (a degenerate Steiner
	// tree), as in real global routing netlists.
	MultiPinFraction float64
	Seed             int64
}

// edge is an undirected grid edge keyed canonically.
type edge struct{ a, b int }

func mkEdge(a, b int) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

// Grout generates a global routing PBO instance. Variables select one
// candidate path per net; each edge admits at most Capacity nets; the cost
// of a path is its length.
//
// Feasibility is guaranteed by construction: while generating, a witness
// assignment is routed greedily (each net takes the candidate that keeps
// the maximum edge usage lowest), and the effective capacity is raised to
// the witness's maximum usage when the configured Capacity is lower. The
// instance is therefore always satisfiable, and the optimization question —
// can congestion detours be traded for shorter total wirelength within
// capacity — remains hard.
func Grout(cfg GroutConfig) (*pb.Problem, error) {
	if cfg.Width < 2 || cfg.Height < 2 {
		return nil, fmt.Errorf("gen: grout grid %dx%d too small", cfg.Width, cfg.Height)
	}
	if cfg.Nets < 1 || cfg.PathsPerNet < 1 || cfg.Capacity < 1 {
		return nil, fmt.Errorf("gen: grout needs nets, paths and capacity ≥ 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	node := func(x, y int) int { return y*cfg.Width + x }

	type path struct {
		edges []edge
	}
	var prob *pb.Problem
	var pathsByNet [][]path

	for netID := 0; netID < cfg.Nets; netID++ {
		// Random distinct terminals.
		var sx, sy, tx, ty int
		for {
			sx, sy = rng.Intn(cfg.Width), rng.Intn(cfg.Height)
			tx, ty = rng.Intn(cfg.Width), rng.Intn(cfg.Height)
			if sx != tx || sy != ty {
				break
			}
		}
		seen := map[string]bool{}
		var paths []path
		addPath := func(p path) {
			if hasDuplicateEdge(p.edges) {
				return // degenerate back-and-forth route
			}
			key := fmt.Sprint(p.edges)
			if !seen[key] {
				seen[key] = true
				paths = append(paths, p)
			}
		}
		if cfg.MultiPinFraction > 0 && rng.Float64() < cfg.MultiPinFraction {
			// Three-pin net: route s→u→t through a third terminal u; every
			// candidate is a degenerate Steiner tree (union of two legs).
			var ux, uy int
			for {
				ux, uy = rng.Intn(cfg.Width), rng.Intn(cfg.Height)
				if (ux != sx || uy != sy) && (ux != tx || uy != ty) {
					break
				}
			}
			for k := 0; len(paths) < cfg.PathsPerNet && k < cfg.PathsPerNet*8; k++ {
				leg1 := staircase(sx, sy, ux, uy, rng, node)
				leg2 := staircase(ux, uy, tx, ty, rng, node)
				addPath(path{edges: append(append([]edge{}, leg1.edges...), leg2.edges...)})
			}
			if len(paths) == 0 {
				// Fallback: the L-route union, and if even that degenerates
				// (u on the s→t route making the legs overlap), fall back to
				// the plain two-pin route so the net stays routable.
				l1 := lPath(sx, sy, ux, uy, true, node)
				l2 := lPath(ux, uy, tx, ty, true, node)
				addPath(path{edges: append(append([]edge{}, l1.edges...), l2.edges...)})
				if len(paths) == 0 {
					addPath(path(lPath(sx, sy, tx, ty, true, node)))
				}
			}
			pathsByNet = append(pathsByNet, paths)
			continue
		}
		// Two L-shaped monotone routes (minimum length), then a mix of
		// random monotone staircases (same length) and waypoint detours
		// (longer, but relieving congestion) — the length spread is what
		// makes the wirelength objective non-trivial.
		addPath(path(lPath(sx, sy, tx, ty, true, node)))
		addPath(path(lPath(sx, sy, tx, ty, false, node)))
		for k := 0; len(paths) < cfg.PathsPerNet && k < cfg.PathsPerNet*6; k++ {
			if k%2 == 0 {
				addPath(path(staircase(sx, sy, tx, ty, rng, node)))
				continue
			}
			wx, wy := rng.Intn(cfg.Width), rng.Intn(cfg.Height)
			if (wx == sx && wy == sy) || (wx == tx && wy == ty) {
				continue
			}
			leg1 := staircase(sx, sy, wx, wy, rng, node)
			leg2 := staircase(wx, wy, tx, ty, rng, node)
			addPath(path{edges: append(append([]edge{}, leg1.edges...), leg2.edges...)})
		}
		if len(paths) == 0 {
			addPath(path(lPath(sx, sy, tx, ty, true, node)))
		}
		pathsByNet = append(pathsByNet, paths)
	}

	// Greedy witness routing: per net, pick the candidate that keeps the
	// maximum edge usage lowest (ties: shorter path). The effective capacity
	// is the larger of the configured capacity and the witness requirement.
	witnessUse := map[edge]int{}
	for _, ps := range pathsByNet {
		bestIdx, bestMax, bestLen := -1, 1<<30, 1<<30
		for pi, p := range ps {
			maxU := 0
			for _, e := range p.edges {
				if u := witnessUse[e] + 1; u > maxU {
					maxU = u
				}
			}
			if maxU < bestMax || (maxU == bestMax && len(p.edges) < bestLen) {
				bestIdx, bestMax, bestLen = pi, maxU, len(p.edges)
			}
		}
		for _, e := range ps[bestIdx].edges {
			witnessUse[e]++
		}
	}
	capacity := cfg.Capacity
	for _, u := range witnessUse {
		if u > capacity {
			capacity = u
		}
	}

	// Count variables.
	total := 0
	for _, ps := range pathsByNet {
		total += len(ps)
	}
	prob = pb.NewProblem(total)

	varIdx := 0
	edgeUse := map[edge][]pb.Term{}
	for _, ps := range pathsByNet {
		lits := make([]pb.Lit, len(ps))
		for pi, p := range ps {
			v := pb.Var(varIdx)
			varIdx++
			prob.SetCost(v, int64(len(p.edges)))
			lits[pi] = pb.PosLit(v)
			for _, e := range p.edges {
				edgeUse[e] = append(edgeUse[e], pb.Term{Coef: 1, Lit: pb.PosLit(v)})
			}
		}
		if err := prob.AddAtLeast(lits, 1); err != nil {
			return nil, err
		}
	}
	// Deterministic edge ordering.
	for _, e := range sortedEdges(edgeUse) {
		terms := edgeUse[e]
		if len(terms) <= capacity {
			continue
		}
		if err := prob.AddConstraint(terms, pb.LE, int64(capacity)); err != nil {
			return nil, err
		}
	}
	return prob, nil
}

func hasDuplicateEdge(edges []edge) bool {
	seen := map[edge]bool{}
	for _, e := range edges {
		if seen[e] {
			return true
		}
		seen[e] = true
	}
	return false
}

func sortedEdges(m map[edge][]pb.Term) []edge {
	out := make([]edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	// Sort by (a,b).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].a < out[j-1].a || (out[j].a == out[j-1].a && out[j].b < out[j-1].b)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lPath builds an L-shaped route: horizontal-then-vertical or the reverse.
func lPath(sx, sy, tx, ty int, horizFirst bool, node func(x, y int) int) struct{ edges []edge } {
	var p struct{ edges []edge }
	x, y := sx, sy
	step := func(nx, ny int) {
		p.edges = append(p.edges, mkEdge(node(x, y), node(nx, ny)))
		x, y = nx, ny
	}
	moveH := func() {
		for x != tx {
			if x < tx {
				step(x+1, y)
			} else {
				step(x-1, y)
			}
		}
	}
	moveV := func() {
		for y != ty {
			if y < ty {
				step(x, y+1)
			} else {
				step(x, y-1)
			}
		}
	}
	if horizFirst {
		moveH()
		moveV()
	} else {
		moveV()
		moveH()
	}
	return p
}

// staircase builds a random monotone route from (sx,sy) to (tx,ty).
func staircase(sx, sy, tx, ty int, rng *rand.Rand, node func(x, y int) int) struct{ edges []edge } {
	var p struct{ edges []edge }
	x, y := sx, sy
	for x != tx || y != ty {
		canH := x != tx
		canV := y != ty
		var horiz bool
		switch {
		case canH && canV:
			horiz = rng.Intn(2) == 0
		case canH:
			horiz = true
		default:
			horiz = false
		}
		nx, ny := x, y
		if horiz {
			if x < tx {
				nx = x + 1
			} else {
				nx = x - 1
			}
		} else {
			if y < ty {
				ny = y + 1
			} else {
				ny = y - 1
			}
		}
		p.edges = append(p.edges, mkEdge(node(x, y), node(nx, ny)))
		x, y = nx, ny
	}
	return p
}
