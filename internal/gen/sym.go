package gen

import (
	"fmt"
	"math/bits"

	"repro/internal/pb"
	"repro/internal/qm"
)

// SymConfig parameterizes a symmetric-function two-level minimization
// instance. Symmetric functions are the one part of the MCNC suite that can
// be reconstructed *exactly* from their definition: the classic 9sym.b
// benchmark (Table 1, row 22 of the paper) is the function over 9 inputs
// that is true iff between 3 and 6 inputs are set.
type SymConfig struct {
	// Inputs is the number of function inputs.
	Inputs int
	// LowK and HighK bound the popcount range on which the function is 1.
	LowK, HighK int
}

// NineSym returns the exact 9sym function configuration.
func NineSym() SymConfig { return SymConfig{Inputs: 9, LowK: 3, HighK: 6} }

// Sym generates the minimum-literal prime-implicant covering instance of
// the symmetric function. Unlike the random MinCover family this instance
// is fully determined — no seed.
func Sym(cfg SymConfig) (*pb.Problem, error) {
	if cfg.Inputs < 2 || cfg.Inputs > 12 {
		return nil, fmt.Errorf("gen: sym inputs=%d out of range [2,12]", cfg.Inputs)
	}
	if cfg.LowK < 0 || cfg.HighK < cfg.LowK || cfg.HighK > cfg.Inputs {
		return nil, fmt.Errorf("gen: sym bad popcount range [%d,%d]", cfg.LowK, cfg.HighK)
	}
	limit := uint32(1) << uint(cfg.Inputs)
	var on []uint32
	for m := uint32(0); m < limit; m++ {
		if pc := bits.OnesCount32(m); pc >= cfg.LowK && pc <= cfg.HighK {
			on = append(on, m)
		}
	}
	if len(on) == 0 {
		return nil, fmt.Errorf("gen: sym function is constant 0")
	}
	primes, err := qm.Primes(cfg.Inputs, on, nil)
	if err != nil {
		return nil, err
	}
	prob := pb.NewProblem(len(primes))
	for i, p := range primes {
		prob.SetCost(pb.Var(i), int64(p.Literals(cfg.Inputs)+1))
	}
	for _, row := range qm.CoverTable(on, primes) {
		lits := make([]pb.Lit, len(row))
		for k, pi := range row {
			lits[k] = pb.PosLit(pb.Var(pi))
		}
		if err := prob.AddClause(lits...); err != nil {
			return nil, err
		}
	}
	return prob, nil
}
