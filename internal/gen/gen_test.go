package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/pb"
)

func TestGroutGeneratesValidInstance(t *testing.T) {
	p, err := Grout(GroutConfig{Width: 4, Height: 4, Nets: 6, PathsPerNet: 4, Capacity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.HasObjective() {
		t.Fatal("grout must have a wirelength objective")
	}
	if p.NumVars == 0 || len(p.Constraints) == 0 {
		t.Fatalf("degenerate instance: %d vars %d cons", p.NumVars, len(p.Constraints))
	}
}

func TestGroutDeterministic(t *testing.T) {
	cfg := GroutConfig{Width: 4, Height: 4, Nets: 5, PathsPerNet: 3, Capacity: 2, Seed: 42}
	p1, err1 := Grout(cfg)
	p2, err2 := Grout(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1.NumVars != p2.NumVars || len(p1.Constraints) != len(p2.Constraints) {
		t.Fatal("generator not deterministic")
	}
	for i := range p1.Constraints {
		if p1.Constraints[i].String() != p2.Constraints[i].String() {
			t.Fatalf("constraint %d differs", i)
		}
	}
}

func TestGroutSolvable(t *testing.T) {
	p, err := Grout(GroutConfig{Width: 3, Height: 3, Nets: 4, PathsPerNet: 3, Capacity: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 200000})
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible routing")
	}
	// Optimum agrees with the MILP baseline.
	m := milp.Solve(p, milp.Options{MaxNodes: 100000})
	if m.Status != milp.StatusOptimal || m.Best != res.Best {
		t.Fatalf("milp=%v/%d core=%d", m.Status, m.Best, res.Best)
	}
}

func TestGroutConfigValidation(t *testing.T) {
	if _, err := Grout(GroutConfig{Width: 1, Height: 4, Nets: 1, PathsPerNet: 1, Capacity: 1}); err == nil {
		t.Fatal("expected grid error")
	}
	if _, err := Grout(GroutConfig{Width: 3, Height: 3, Nets: 0, PathsPerNet: 1, Capacity: 1}); err == nil {
		t.Fatal("expected nets error")
	}
}

func TestSynthesisFeasibleAndSolvable(t *testing.T) {
	p, err := Synthesis(SynthesisConfig{Nodes: 8, Impls: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// All nodes choosing implementation 0 is feasible by construction.
	vals := make([]bool, p.NumVars)
	for n := 0; n < 8; n++ {
		vals[n*4] = true
	}
	if !p.Feasible(vals) {
		t.Fatal("witness assignment infeasible")
	}
	res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 500000})
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Best > p.ObjectiveValue(vals) {
		t.Fatalf("optimum %d worse than witness %d", res.Best, p.ObjectiveValue(vals))
	}
}

func TestSynthesisConfigValidation(t *testing.T) {
	if _, err := Synthesis(SynthesisConfig{Nodes: 0, Impls: 2}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Synthesis(SynthesisConfig{Nodes: 3, Impls: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMinCoverSolvableAndAgrees(t *testing.T) {
	p, err := MinCover(MinCoverConfig{Inputs: 5, OnDensity: 0.3, DcDensity: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every clause is positive-unate ⇒ all-ones feasible.
	all := make([]bool, p.NumVars)
	for i := range all {
		all[i] = true
	}
	if !p.Feasible(all) {
		t.Fatal("all-primes cover infeasible?!")
	}
	res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 500000})
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	m := milp.Solve(p, milp.Options{MaxNodes: 200000})
	if m.Status != milp.StatusOptimal || m.Best != res.Best {
		t.Fatalf("milp=%v/%d core=%d", m.Status, m.Best, res.Best)
	}
}

func TestMinCoverConfigValidation(t *testing.T) {
	if _, err := MinCover(MinCoverConfig{Inputs: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := MinCover(MinCoverConfig{Inputs: 20}); err == nil {
		t.Fatal("expected error")
	}
}

func TestACCSatisfiable(t *testing.T) {
	p, err := ACC(ACCConfig{Teams: 6, FixedMatches: 4, ForbiddenMatches: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HasObjective() {
		t.Fatal("acc must be a pure satisfaction instance")
	}
	res := core.Solve(p, core.Options{MaxConflicts: 500000})
	if res.Status != core.StatusSatisfiable {
		t.Fatalf("status=%v (acc instances are satisfiable by construction)", res.Status)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible schedule")
	}
}

func TestACCWitnessScheduleValid(t *testing.T) {
	// With every witness match fixed, the instance must still be SAT (the
	// circle-method schedule itself).
	teams := 6
	p, err := ACC(ACCConfig{Teams: teams, FixedMatches: teams * (teams - 1) / 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{MaxConflicts: 500000})
	if res.Status != core.StatusSatisfiable {
		t.Fatalf("fully fixed witness schedule unsatisfiable: %v", res.Status)
	}
}

func TestACCConfigValidation(t *testing.T) {
	if _, err := ACC(ACCConfig{Teams: 5}); err == nil {
		t.Fatal("expected even-team error")
	}
	if _, err := ACC(ACCConfig{Teams: 2}); err == nil {
		t.Fatal("expected size error")
	}
}

func TestAllGeneratorsRoundTripOPB(t *testing.T) {
	// Generated instances must survive the OPB writer/parser (used by the
	// cmd tools); spot-check constraint and variable counts.
	ps := map[string]*pb.Problem{}
	if p, err := Grout(GroutConfig{Width: 3, Height: 3, Nets: 3, PathsPerNet: 2, Capacity: 2, Seed: 1}); err == nil {
		ps["grout"] = p
	}
	if p, err := Synthesis(SynthesisConfig{Nodes: 5, Impls: 3, Seed: 1}); err == nil {
		ps["synth"] = p
	}
	if p, err := MinCover(MinCoverConfig{Inputs: 4, Seed: 1}); err == nil {
		ps["mincover"] = p
	}
	if p, err := ACC(ACCConfig{Teams: 4, Seed: 1}); err == nil {
		ps["acc"] = p
	}
	if len(ps) != 4 {
		t.Fatalf("generators failed: %v", ps)
	}
	for name, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSymSmallExact(t *testing.T) {
	// 4-input symmetric function, popcount in [1,3]: small enough to verify
	// against brute force.
	p, err := Sym(SymConfig{Inputs: 4, LowK: 1, HighK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 500000})
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if p.NumVars <= 20 {
		want := pb.BruteForce(p)
		if res.Best != want.Optimum {
			t.Fatalf("optimum %d want %d", res.Best, want.Optimum)
		}
	}
}

func TestSymDeterministic(t *testing.T) {
	p1, err := Sym(NineSym())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Sym(NineSym())
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumVars != p2.NumVars || len(p1.Constraints) != len(p2.Constraints) {
		t.Fatal("not deterministic")
	}
	// The real 9sym has 420 ON-set minterms; each becomes a covering row.
	if len(p1.Constraints) != 420 {
		t.Fatalf("constraints=%d want 420 (the 9sym ON-set)", len(p1.Constraints))
	}
}

func TestSymConfigValidation(t *testing.T) {
	if _, err := Sym(SymConfig{Inputs: 1, LowK: 0, HighK: 1}); err == nil {
		t.Fatal("expected inputs error")
	}
	if _, err := Sym(SymConfig{Inputs: 4, LowK: 3, HighK: 1}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Sym(SymConfig{Inputs: 4, LowK: 5, HighK: 6}); err == nil {
		t.Fatal("expected constant-0 error")
	}
}

func TestGroutMultiPinNets(t *testing.T) {
	p, err := Grout(GroutConfig{
		Width: 5, Height: 5, Nets: 12, PathsPerNet: 5, Capacity: 3,
		MultiPinFraction: 0.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{LowerBound: core.LBLPR, MaxConflicts: 500000})
	if res.Status != core.StatusOptimal {
		t.Fatalf("status=%v (multi-pin instances must stay feasible)", res.Status)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible routing")
	}
}

func TestGroutMultiPinDeterministic(t *testing.T) {
	cfg := GroutConfig{Width: 4, Height: 4, Nets: 8, PathsPerNet: 4, Capacity: 2,
		MultiPinFraction: 0.4, Seed: 5}
	p1, _ := Grout(cfg)
	p2, _ := Grout(cfg)
	if p1.NumVars != p2.NumVars || len(p1.Constraints) != len(p2.Constraints) {
		t.Fatal("not deterministic")
	}
}

func TestACCHomeAwaySatisfiable(t *testing.T) {
	p, err := ACC(ACCConfig{Teams: 8, FixedMatches: 3, ForbiddenMatches: 8, HomeAway: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{MaxConflicts: 1000000})
	if res.Status != core.StatusSatisfiable {
		t.Fatalf("home/away instance unsatisfiable: %v", res.Status)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible schedule")
	}
	// Verify the balance property directly on the model.
	const teams = 8
	pairs := 0
	for i := 0; i < teams; i++ {
		for j := i + 1; j < teams; j++ {
			pairs++
		}
	}
	rounds := teams - 1
	hBase := pairs * rounds // h vars appended after the x vars
	pi := 0
	hosted := make([]int, teams)
	for i := 0; i < teams; i++ {
		for j := i + 1; j < teams; j++ {
			if res.Values[hBase+pi] {
				hosted[i]++
			} else {
				hosted[j]++
			}
			pi++
		}
	}
	for team, hcount := range hosted {
		if hcount < (teams-1)/2 || hcount > teams/2 {
			t.Fatalf("team %d hosts %d games, want within [%d,%d]", team, hcount, (teams-1)/2, teams/2)
		}
	}
}

func TestPlantedAlwaysFeasibleAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p, err := Planted(PlantedConfig{Vars: 40, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The generator verifies the planted witness itself; cross-check
		// feasibility independently with a solve.
		res := core.Solve(p, core.Options{LowerBound: core.LBMIS, MaxConflicts: 200_000})
		if res.Status != core.StatusOptimal {
			t.Fatalf("seed %d: planted instance not proved feasible-optimal: %v", seed, res.Status)
		}
	}
	a, _ := Planted(PlantedConfig{Vars: 40, Seed: 3})
	b, _ := Planted(PlantedConfig{Vars: 40, Seed: 3})
	if a.NumVars != b.NumVars || len(a.Constraints) != len(b.Constraints) {
		t.Fatal("planted generation not deterministic")
	}
	for i := range a.Constraints {
		if a.Constraints[i].String() != b.Constraints[i].String() {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
	if _, err := Planted(PlantedConfig{Vars: 2}); err == nil {
		t.Fatal("want error for too-few variables")
	}
	sat, err := Planted(PlantedConfig{Vars: 40, Seed: 5, CostFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sat.HasObjective() {
		t.Fatal("CostFrac<0 must yield a pure satisfaction instance")
	}
}
