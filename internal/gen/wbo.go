package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/pb"
	"repro/internal/wbo"
)

// WBOConfig parameterizes a random Weighted Boolean Optimization instance:
// a hard clause skeleton repaired against a planted witness (so the hard
// constraints are feasible by construction — a WBO benchmark that is
// hard-UNSAT measures nothing) plus weighted soft constraints that the
// witness deliberately does NOT have to satisfy. Mixed soft shapes (clauses,
// pseudo-Boolean inequalities, equalities) keep the family exercising the
// full relaxation machinery rather than plain weighted MaxSAT.
type WBOConfig struct {
	// Vars is the number of Boolean variables.
	Vars int
	// HardRows is the hard clause count (0 = default 2·Vars).
	HardRows int
	// SoftRows is the soft constraint count (0 = default 3·Vars).
	SoftRows int
	// MaxWeight bounds soft weights, uniform in [1, MaxWeight] (0 = 9).
	// Repeated weights are likely by design: WPM1's weight splitting only
	// engages when cores mix distinct weights, and its AMO bookkeeping only
	// when they do not — the family needs both.
	MaxWeight int64
	// PBFrac is the fraction of soft rows that are pseudo-Boolean
	// inequalities or equalities instead of clauses (0 = default 0.3).
	PBFrac float64
	Seed   int64
}

// WBO generates the instance.
func WBO(cfg WBOConfig) (*wbo.Instance, error) {
	if cfg.Vars < 3 {
		return nil, fmt.Errorf("gen: wbo needs ≥3 variables, got %d", cfg.Vars)
	}
	if cfg.HardRows == 0 {
		cfg.HardRows = 2 * cfg.Vars
	}
	if cfg.SoftRows == 0 {
		cfg.SoftRows = 3 * cfg.Vars
	}
	if cfg.SoftRows < 1 {
		return nil, fmt.Errorf("gen: wbo needs ≥1 soft row, got %d", cfg.SoftRows)
	}
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 9
	}
	if cfg.PBFrac == 0 {
		cfg.PBFrac = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	in := &wbo.Instance{NumVars: cfg.Vars}
	witness := make([]bool, cfg.Vars)
	for v := range witness {
		witness[v] = rng.Intn(2) == 0
	}
	litTrue := func(l pb.Lit) bool { return witness[l.Var()] != l.IsNeg() }

	sampleLits := func(k int) []pb.Term {
		terms := make([]pb.Term, 0, k)
		seen := map[pb.Var]bool{}
		for len(terms) < k {
			v := pb.Var(rng.Intn(cfg.Vars))
			if seen[v] {
				continue
			}
			seen[v] = true
			terms = append(terms, pb.Term{Coef: 1, Lit: pb.MkLit(v, rng.Intn(2) == 0)})
		}
		return terms
	}

	for r := 0; r < cfg.HardRows; r++ {
		terms := sampleLits(2 + rng.Intn(2))
		// Repair toward the planted witness so the hard skeleton stays
		// feasible.
		sat := false
		for _, t := range terms {
			if litTrue(t.Lit) {
				sat = true
				break
			}
		}
		if !sat {
			i := rng.Intn(len(terms))
			terms[i].Lit = terms[i].Lit.Neg()
		}
		in.Hard = append(in.Hard, wbo.HardCons{Terms: terms, Cmp: pb.GE, Rhs: 1})
	}

	for r := 0; r < cfg.SoftRows; r++ {
		w := 1 + rng.Int63n(cfg.MaxWeight)
		if rng.Float64() < cfg.PBFrac {
			// Pseudo-Boolean soft row: mixed coefficients, GE/LE/EQ.
			terms := sampleLits(2 + rng.Intn(3))
			var sum int64
			for i := range terms {
				terms[i].Coef = int64(1 + rng.Intn(4))
				sum += terms[i].Coef
			}
			in.Soft = append(in.Soft, wbo.SoftCons{
				Weight: w,
				Terms:  terms,
				Cmp:    pb.Cmp(rng.Intn(3)),
				Rhs:    rng.Int63n(sum + 1),
			})
			continue
		}
		in.Soft = append(in.Soft, wbo.SoftCons{
			Weight: w, Terms: sampleLits(1 + rng.Intn(3)), Cmp: pb.GE, Rhs: 1})
	}

	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("gen: wbo: %w", err)
	}
	if p, _ := in.Penalty(witness); p < 0 {
		return nil, fmt.Errorf("gen: wbo witness penalty negative (generator bug)")
	}
	for i := range in.Hard {
		h := &in.Hard[i]
		var lhs int64
		for _, t := range h.Terms {
			if litTrue(t.Lit) {
				lhs += t.Coef
			}
		}
		if lhs < h.Rhs {
			return nil, fmt.Errorf("gen: wbo planted witness violates hard row %d (generator bug)", i)
		}
	}
	return in, nil
}
