package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pb"
)

// stubSharer is a deterministic in-process Sharer: a fixed foreign incumbent
// plus a queue of clauses to deliver, recording everything the solver
// publishes.
type stubSharer struct {
	ubCost int64
	ubVals []bool
	hasUB  bool

	deliver [][]pb.Lit // drained once, in order

	pubIncumbents []int64
	pubClauses    [][]pb.Lit
}

func (s *stubSharer) PublishIncumbent(cost int64, values []bool) bool {
	s.pubIncumbents = append(s.pubIncumbents, cost)
	if !s.hasUB || cost < s.ubCost {
		s.ubCost = cost
		s.ubVals = append([]bool(nil), values...)
		s.hasUB = true
		return true
	}
	return false
}

func (s *stubSharer) BestUB() (int64, bool) { return s.ubCost, s.hasUB }

func (s *stubSharer) BestIncumbent(below int64) (int64, []bool, bool) {
	if !s.hasUB || s.ubCost >= below {
		return 0, nil, false
	}
	return s.ubCost, append([]bool(nil), s.ubVals...), true
}

func (s *stubSharer) PublishClause(lits []pb.Lit, lbd int) bool {
	s.pubClauses = append(s.pubClauses, append([]pb.Lit(nil), lits...))
	return true
}

func (s *stubSharer) DrainClauses(fn func(lits []pb.Lit)) {
	for _, c := range s.deliver {
		fn(c)
	}
	s.deliver = nil
}

// TestSharerAdoptForeignIncumbent: a board already holding the optimum lets
// the solver adopt it and still prove optimality.
func TestSharerAdoptForeignIncumbent(t *testing.T) {
	// minimize 3a+2b subject to a+b >= 1: optimum 2 at b.
	p := pb.NewProblem(2)
	p.SetCost(0, 3)
	p.SetCost(1, 2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	sh := &stubSharer{ubCost: 2, ubVals: []bool{false, true}, hasUB: true}
	res := Solve(p, Options{LowerBound: LBMIS, Share: sh})
	if res.Status != StatusOptimal || res.Best != 2 {
		t.Fatalf("status=%v best=%d", res.Status, res.Best)
	}
	if res.Stats.Sharing.ForeignIncumbents == 0 {
		t.Fatal("foreign incumbent was not adopted")
	}
	if !reflect.DeepEqual(res.Values, []bool{false, true}) {
		t.Fatalf("values=%v", res.Values)
	}
}

// TestSharerPublishesIncumbentsAndClauses: the solver offers every local
// improvement and its learned clauses to the board.
func TestSharerPublishesIncumbentsAndClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sh := &stubSharer{}
	total := 0
	for iter := 0; iter < 20; iter++ {
		p := randomPBO(rng, 6, 10)
		res := Solve(p, Options{LowerBound: LBMIS, Share: sh})
		if res.HasSolution {
			total++
		}
	}
	if len(sh.pubIncumbents) == 0 {
		t.Fatal("no incumbents were published")
	}
	if total > 0 && len(sh.pubClauses) == 0 {
		t.Fatal("no clauses were published over 20 random solves")
	}
	for _, c := range sh.pubClauses {
		if len(c) == 0 || len(c) > shareMaxPublishLen {
			t.Fatalf("published clause of length %d", len(c))
		}
	}
	if res := sh.pubIncumbents; res[len(res)-1] < 0 {
		t.Fatalf("negative incumbent cost published: %v", res)
	}
}

// TestSharerImportedUnitsRestrictSearch: delivered unit clauses are imported
// at the root; when they exhaust the feasible space below the board's upper
// bound, the final board poll still yields the exact optimum.
func TestSharerImportedUnitsRestrictSearch(t *testing.T) {
	// minimize a+b subject to a+b >= 1: optimum 1.
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	// The board holds the optimum and delivers the clauses implied by
	// cost <= 0 (i.e. "neither variable is set") — importing both conflicts
	// at the root, proving exhaustion; adoptFinal must then surface the
	// board incumbent rather than reporting unsat.
	sh := &stubSharer{
		ubCost: 1, ubVals: []bool{true, false}, hasUB: true,
		deliver: [][]pb.Lit{{pb.NegLit(0)}, {pb.NegLit(1)}},
	}
	res := Solve(p, Options{LowerBound: LBNone, Share: sh})
	if res.Status != StatusOptimal || res.Best != 1 {
		t.Fatalf("status=%v best=%d (imports must not fake unsat)", res.Status, res.Best)
	}
	if res.Stats.Sharing.ImportedUnits == 0 && res.Stats.Sharing.ImportConflicts == 0 {
		t.Fatalf("no imports recorded: %+v", res.Stats.Sharing)
	}
}

// TestSharerNilIsInert: Share=nil must leave every sharing counter zero.
func TestSharerNilIsInert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPBO(rng, 6, 8)
	res := Solve(p, Options{LowerBound: LBLPR})
	if res.Stats.Sharing.Active() || res.Stats.ImportedClauses != 0 {
		t.Fatalf("sharing counters nonzero without a Sharer: %+v", res.Stats.Sharing)
	}
}

// TestSolveDeterministicLPR: two identical LPR solves must replay the exact
// same search — this pins the order-independence of the LP-guided branching
// tie-break (Go map iteration is randomized per run) and the absence of any
// unseeded randomness. The cooperative portfolio's deterministic mode
// (sequential members, no sharing) rests on this.
func TestSolveDeterministicLPR(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		p := randomPBO(rng, 8, 12)
		opt := Options{LowerBound: LBLPR, CardinalityInference: true}
		a := Solve(p, opt)
		b := Solve(p, opt)
		if a.Status != b.Status || a.Best != b.Best {
			t.Fatalf("iter %d: verdicts diverged: %v/%d vs %v/%d",
				iter, a.Status, a.Best, b.Status, b.Best)
		}
		if a.Stats.Decisions != b.Stats.Decisions ||
			a.Stats.Conflicts != b.Stats.Conflicts ||
			a.Stats.BoundConflicts != b.Stats.BoundConflicts ||
			a.Stats.BoundCalls != b.Stats.BoundCalls {
			t.Fatalf("iter %d: search diverged: %+v vs %+v", iter,
				statsTuple(a.Stats), statsTuple(b.Stats))
		}
	}
}

// TestSolveDeterministicSeededRandom: the explicit RNG is reproducible for a
// fixed seed and diverges across seeds.
func TestSolveDeterministicSeededRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randomPBO(rng, 10, 14)
	opt := Options{LowerBound: LBMIS, Seed: 5, RandomBranchFreq: 0.5}
	a := Solve(p, opt)
	b := Solve(p, opt)
	if statsTuple(a.Stats) != statsTuple(b.Stats) || a.Best != b.Best {
		t.Fatalf("same seed diverged: %+v vs %+v", statsTuple(a.Stats), statsTuple(b.Stats))
	}
	if a.Stats.RandomDecisions == 0 && a.Stats.Decisions > 0 {
		t.Fatal("RandomBranchFreq=0.5 made no random decisions")
	}
}

type searchTuple struct {
	Decisions, Conflicts, BoundConflicts, BoundCalls, Random int64
}

func statsTuple(s Stats) searchTuple {
	return searchTuple{s.Decisions, s.Conflicts, s.BoundConflicts, s.BoundCalls, s.RandomDecisions}
}
