package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pb"
)

// ExampleSolve demonstrates the basic API: build a weighted covering
// problem, solve it with LP-relaxation lower bounding, and read the result.
func ExampleSolve() {
	p := pb.NewProblem(3)
	p.SetCost(0, 3)
	p.SetCost(1, 1)
	p.SetCost(2, 2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1)) // x0 ∨ x1
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2)) // x1 ∨ x2

	res := core.Solve(p, core.Options{LowerBound: core.LBLPR})
	fmt.Println(res.Status, res.Best, res.Values)
	// Output: optimal 1 [false true false]
}

// ExampleSolve_linearSearch shows the PBS/Galena-style search organization:
// each incumbent adds cost ≤ upper−1 and the search restarts.
func ExampleSolve_linearSearch() {
	p := pb.NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 5)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))

	res := core.Solve(p, core.Options{Strategy: core.StrategyLinearSearch})
	fmt.Println(res.Status, res.Best)
	// Output: optimal 2
}

// ExampleSolve_satisfaction shows a pure satisfaction instance (no
// objective), the shape of the paper's acc-tight family: lower bounding is
// never invoked and the solver stops at the first solution.
func ExampleSolve_satisfaction() {
	p := pb.NewProblem(3)
	_ = p.AddExactlyOne(pb.PosLit(0), pb.PosLit(1), pb.PosLit(2))

	res := core.Solve(p, core.Options{LowerBound: core.LBLPR})
	fmt.Println(res.Status, res.Stats.BoundCalls)
	// Output: satisfiable 0
}
