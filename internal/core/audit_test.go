package core

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/pb"
)

// randomAuditProblem builds a small random instance within the auditor's
// exhaustive replay gate.
func randomAuditProblem(rng *rand.Rand, n int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(9)))
	}
	m := 2 + rng.Intn(2*n)
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(5)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		cmp := pb.GE
		if rng.Intn(5) == 0 {
			cmp = pb.LE
		}
		_ = p.AddConstraint(terms, cmp, int64(1+rng.Intn(6)))
	}
	return p
}

// Every artifact of every configuration must replay cleanly against the
// original problem on random small instances — the auditor acting as a
// white-box oracle over the full solver matrix.
func TestAuditedSolvesAreClean(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	methods := []Method{LBNone, LBMIS, LBLGR, LBLPR}
	for iter := 0; iter < 30; iter++ {
		p := randomAuditProblem(rng, 4+rng.Intn(7))
		want := pb.BruteForce(p)
		for _, m := range methods {
			for _, opt := range []Options{
				{LowerBound: m, MaxConflicts: 200000},
				{LowerBound: m, Strategy: StrategyLinearSearch, MaxConflicts: 200000},
				{LowerBound: m, CardinalityInference: true, PBLearning: true, MaxConflicts: 200000},
			} {
				a := audit.New(p)
				opt.Audit = a
				res := Solve(p, opt)
				rep := a.Snapshot()
				if !rep.Ok() {
					t.Fatalf("iter %d lb=%v strat=%v: audit violations:\n%s\nstatus=%v",
						iter, m, opt.Strategy, rep.String(), res.Status)
				}
				if res.Status == StatusOptimal && res.Best != want.Optimum {
					t.Fatalf("iter %d lb=%v: optimum %d != brute %d", iter, m, res.Best, want.Optimum)
				}
				if res.Status == StatusUnsat && want.Feasible {
					t.Fatalf("iter %d lb=%v: claimed unsat, brute found cost %d", iter, m, want.Optimum)
				}
				if rep.Counts.Terminations == 0 && res.Status != StatusLimit {
					t.Fatalf("iter %d lb=%v: conclusive solve did not audit its termination", iter, m)
				}
			}
		}
	}
}

// The auditor must catch a deliberately corrupted artifact — a canary that
// the hooks are actually live, not silently skipped.
func TestAuditCatchesInjectedUnsoundClause(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for tries := 0; tries < 50; tries++ {
		p := randomAuditProblem(rng, 5)
		want := pb.BruteForce(p)
		if !want.Feasible {
			continue
		}
		a := audit.New(p)
		// Forge a "learned" unit clause that excludes the brute optimum.
		var bad pb.Lit
		found := false
		for v := 0; v < p.NumVars; v++ {
			cand := pb.MkLit(pb.Var(v), want.Values[v]) // negation of the optimum's value
			bad = cand
			found = true
			break
		}
		if !found {
			continue
		}
		a.LearnedClause([]pb.Lit{bad}, 0, false)
		// The clause eliminates the optimum; unless another optimum satisfies
		// it, the auditor must flag it. Verify only when uniquely optimal.
		alt := false
		n := p.NumVars
		vals := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for v := 0; v < n; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			if p.Feasible(vals) && p.ObjectiveValue(vals) == want.Optimum && bad.Eval(vals[bad.Var()]) {
				alt = true
				break
			}
		}
		if alt {
			continue
		}
		if a.Ok() {
			t.Fatalf("auditor missed a clause excluding the unique optimum (try %d)", tries)
		}
		return
	}
	t.Skip("no uniquely-optimal instance generated")
}

// A shared auditor across portfolio-style concurrent solves must stay clean
// and race-free (exercised further by internal/fuzz and -race CI).
func TestAuditSharedAcrossSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomAuditProblem(rng, 8)
	a := audit.New(p)
	done := make(chan Result, 4)
	for _, m := range []Method{LBNone, LBMIS, LBLGR, LBLPR} {
		go func(m Method) {
			done <- Solve(p, Options{LowerBound: m, MaxConflicts: 100000, Audit: a})
		}(m)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if rep := a.Snapshot(); !rep.Ok() {
		t.Fatalf("shared auditor violations:\n%s", rep.String())
	}
}
