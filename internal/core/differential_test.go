package core

import (
	"math/rand"
	"testing"

	"repro/internal/milp"
	"repro/internal/pb"
)

// Differential testing beyond brute-force reach: on mid-size instances
// (up to ~40 variables) the PBO solver, the MILP solver and the
// linear-search solver are three essentially independent implementations;
// any disagreement on optimum or feasibility indicates a bug in one of
// them. Sizes are chosen so all three finish comfortably.
func TestDifferentialMidSize(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 60; iter++ {
		n := 15 + rng.Intn(25)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(12)))
		}
		m := n/2 + rng.Intn(n)
		for i := 0; i < m; i++ {
			nt := 2 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(5)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
				}
			}
			cmp := pb.GE
			if rng.Intn(5) == 0 {
				cmp = pb.LE
			}
			_ = p.AddConstraint(terms, cmp, int64(1+rng.Intn(7)))
		}

		lpr := Solve(p, Options{LowerBound: LBLPR, MaxConflicts: 500000})
		lin := Solve(p, Options{Strategy: StrategyLinearSearch, PBLearning: true, MaxConflicts: 500000})
		mi := milp.Solve(p, milp.Options{MaxNodes: 2000000})

		if lpr.Status == StatusLimit || lin.Status == StatusLimit || mi.Status == milp.StatusLimit {
			continue // budget-bound: no verdict
		}
		lprFeas := lpr.Status == StatusOptimal
		linFeas := lin.Status == StatusOptimal
		miFeas := mi.Status == milp.StatusOptimal
		if lprFeas != linFeas || lprFeas != miFeas {
			t.Fatalf("iter %d: feasibility disagreement lpr=%v lin=%v milp=%v",
				iter, lpr.Status, lin.Status, mi.Status)
		}
		if !lprFeas {
			continue
		}
		if lpr.Best != lin.Best || lpr.Best != mi.Best {
			t.Fatalf("iter %d: optimum disagreement lpr=%d lin=%d milp=%d",
				iter, lpr.Best, lin.Best, mi.Best)
		}
		if !p.Feasible(lpr.Values) || p.ObjectiveValue(lpr.Values) != lpr.Best {
			t.Fatalf("iter %d: lpr solution inconsistent", iter)
		}
	}
}
