package core

import (
	"time"

	"repro/internal/bounds"
	"repro/internal/obs"
)

// This file converts the solver's native counter blocks into the unified
// obs schema (obs.SolverMetrics) and implements the solver's live-publish
// hooks. The conversion lives here, not in obs, to keep the dependency
// one-way: obs imports only the standard library.

// ms renders a duration as float64 milliseconds (the schema's unit).
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Metrics flattens the Stats block into the unified snapshot schema. The
// Name/Status/Best fields are left for the caller to stamp (the solver knows
// its incumbent; the registry knows the member name).
func (st *Stats) Metrics() obs.SolverMetrics {
	m := obs.SolverMetrics{
		Decisions:      st.Decisions,
		Conflicts:      st.Conflicts,
		BoundConflicts: st.BoundConflicts,
		BoundCalls:     st.BoundCalls,
		BoundPrunes:    st.BoundPrunes,
		Solutions:      st.Solutions,
		Restarts:       st.Restarts,
		KnapsackCuts:   st.KnapsackCuts,
		CardCuts:       st.CardCuts,
		NCBSavedLevels: st.NCBSavedLevels,
		Propagations:   st.Propagations,
		LearnedClauses: st.LearnedClauses,
		PBLearned:      st.PBLearned,

		BoundFailures:  st.BoundFailures,
		BoundPanics:    st.BoundPanics,
		BoundFallbacks: st.BoundFallbacks,
		BoundDemotions: st.BoundDemotions,
		BoundTimeouts:  st.BoundTimeouts,

		ImportedClauses: st.ImportedClauses,
		RandomDecisions: st.RandomDecisions,
		Flips:           st.Flips,

		Bounds: boundsMetrics(&st.Bounds),
	}
	if st.Sharing.Active() {
		sh := st.Sharing
		m.Sharing = &obs.SharingMetrics{
			IncumbentsPublished: sh.IncumbentsPublished,
			IncumbentsWon:       sh.IncumbentsWon,
			ForeignIncumbents:   sh.ForeignIncumbents,
			ForeignRejected:     sh.ForeignRejected,
			ForeignUBPrunes:     sh.ForeignUBPrunes,
			UBInterrupts:        sh.UBInterrupts,
			ClausesPublished:    sh.ClausesPublished,
			ClausesRejected:     sh.ClausesRejected,
			ClausesImported:     sh.ClausesImported,
			ImportedUnits:       sh.ImportedUnits,
			ImportsDropped:      sh.ImportsDropped,
			ImportsRejected:     sh.ImportsRejected,
			ImportConflicts:     sh.ImportConflicts,
		}
	}
	return m
}

func boundsMetrics(bs *bounds.Stats) obs.BoundsMetrics {
	bm := obs.BoundsMetrics{
		Incremental:   bs.Incremental,
		Reduces:       bs.Reduces,
		ReduceMs:      ms(bs.ReduceTime),
		WarmSolves:    bs.WarmSolves,
		ColdSolves:    bs.ColdSolves,
		WarmFallbacks: bs.WarmFallbacks,
	}
	if c := bs.Cuts; c.Rounds > 0 || c.Separated > 0 {
		bm.Cuts = &obs.CutMetrics{
			Separated:  c.Separated,
			Duplicates: c.Duplicates,
			Rounds:     c.Rounds,
			Applied:    c.Applied,
			Active:     c.Active,
			Pruned:     c.Pruned,
			SepMs:      ms(c.SepTime),
		}
	}
	if len(bs.Per) > 0 {
		bm.Per = make(map[string]obs.ProcMetrics, len(bs.Per))
		for name, p := range bs.Per {
			bm.Per[name] = obs.ProcMetrics{
				Calls:      p.Calls,
				TimeMs:     ms(p.Time),
				BoundSum:   p.BoundSum,
				MaxBound:   p.MaxBound,
				Infinite:   p.Infinite,
				Incomplete: p.Incomplete,
				Failed:     p.Failed,
				Panics:     p.Panics,
				Prunes:     p.Prunes,
			}
		}
	}
	return bm
}

// Metrics converts a finished Result into a solver metrics block, stamping
// the terminal status and incumbent. name labels the solver column.
func (r *Result) Metrics(name string) obs.SolverMetrics {
	m := r.Stats.Metrics()
	m.Name = name
	m.Status = r.Status.String()
	if r.HasSolution {
		b := r.Best
		m.Best = &b
	}
	return m
}

// publishLive pushes a fresh metrics snapshot to the live registry handle.
// Called from the 16th-node budget checkpoint; the liveInterval throttle
// keeps the snapshot-assembly cost (a Stats deep copy plus the schema
// conversion) off the hot path. No-op without Options.Live.
func (s *solver) publishLive() {
	if s.opt.Live == nil {
		return
	}
	now := time.Now()
	if now.Sub(s.lastLive) < liveInterval {
		return
	}
	s.lastLive = now
	st := s.snapshotStats()
	m := st.Metrics()
	if s.bestVals != nil {
		b := s.upper + s.prob.CostOffset
		m.Best = &b
	}
	s.opt.Live.Publish(m)
}

// publishFinal pushes the terminal snapshot (status + final counters),
// bypassing the throttle so scrapers always see the finished state.
func (s *solver) publishFinal(res *Result) {
	if s.opt.Live == nil {
		return
	}
	m := res.Stats.Metrics()
	m.Status = res.Status.String()
	if res.HasSolution {
		b := res.Best
		m.Best = &b
	}
	s.opt.Live.Publish(m)
}
