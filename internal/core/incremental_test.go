package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pb"
)

// TestIncrementalPipelineOptimaUnchanged asserts the incremental bound
// pipeline (persistent Reducer + LP warm starting) is a pure optimization:
// for every lower-bound method, solving with the pipeline enabled and
// disabled must agree on feasibility and on the optimum.
func TestIncrementalPipelineOptimaUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	methods := []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR}
	names := []string{"plain", "mis", "lgr", "lpr"}
	var totalWarm int64
	for iter := 0; iter < 8; iter++ {
		// Mix the paper's global-routing family (deep branch-and-bound trees,
		// so warm starting genuinely engages) with random covering-flavoured
		// instances for structural variety.
		var p *pb.Problem
		if iter < 4 {
			var err error
			p, err = gen.Grout(gen.GroutConfig{
				Width: 5, Height: 5, Nets: 8 + iter, PathsPerNet: 4,
				Capacity: 2, Seed: int64(100 + iter),
			})
			if err != nil {
				t.Fatalf("iter %d: grout: %v", iter, err)
			}
		} else {
			n := 14 + rng.Intn(12)
			p = pb.NewProblem(n)
			for v := 0; v < n; v++ {
				p.SetCost(pb.Var(v), int64(rng.Intn(10)))
			}
			m := n/2 + rng.Intn(n)
			for i := 0; i < m; i++ {
				nt := 2 + rng.Intn(4)
				terms := make([]pb.Term, nt)
				for k := range terms {
					terms[k] = pb.Term{
						Coef: int64(1 + rng.Intn(5)),
						Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
					}
				}
				_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(6)))
			}
		}
		for mi, method := range methods {
			on := core.Solve(p, core.Options{LowerBound: method, MaxConflicts: 500000})
			off := core.Solve(p, core.Options{LowerBound: method, MaxConflicts: 500000,
				NoIncrementalReduce: true, NoWarmLP: true})
			if on.Status == core.StatusLimit || off.Status == core.StatusLimit {
				continue
			}
			if on.Status != off.Status {
				t.Fatalf("iter %d %s: status disagreement incremental=%v rebuild=%v",
					iter, names[mi], on.Status, off.Status)
			}
			if on.Status != core.StatusOptimal {
				continue
			}
			if on.Best != off.Best {
				t.Fatalf("iter %d %s: optimum disagreement incremental=%d rebuild=%d",
					iter, names[mi], on.Best, off.Best)
			}
			if !p.Feasible(on.Values) || p.ObjectiveValue(on.Values) != on.Best {
				t.Fatalf("iter %d %s: incremental solution inconsistent", iter, names[mi])
			}
			totalWarm += on.Stats.Bounds.WarmSolves
			if off.Stats.Bounds.WarmSolves != 0 {
				t.Fatalf("iter %d %s: warm solves recorded with warm starting disabled", iter, names[mi])
			}
			if off.Stats.Bounds.Incremental {
				t.Fatalf("iter %d %s: incremental flag set with reducer disabled", iter, names[mi])
			}
		}
	}
	if totalWarm == 0 {
		t.Fatalf("no warm LP solves happened across the whole run; warm starting is not engaging")
	}
}
