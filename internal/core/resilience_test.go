package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pb"
)

// coverPBO builds a feasible min-cost covering instance: every constraint
// demands one or two of a handful of positive literals, so setting all
// variables true satisfies everything and the optimizer has real
// branch-and-bound work to do. randomPBO's uniform instances are mostly
// root-level UNSAT, which never exercises the bound machinery.
func coverPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(9)))
	}
	for i := 0; i < m; i++ {
		nt := 2 + rng.Intn(3)
		seen := make(map[int]bool, nt)
		var terms []pb.Term
		for len(terms) < nt {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			terms = append(terms, pb.Term{Coef: 1, Lit: pb.MkLit(pb.Var(v), false)})
		}
		rhs := int64(1)
		if nt > 2 && rng.Intn(3) == 0 {
			rhs = 2
		}
		_ = p.AddConstraint(terms, pb.GE, rhs)
	}
	return p
}

// TestLPRFaultFallbackMatchesUnfaulted is the headline resilience property:
// with the LPR path panicking on roughly 1-in-10 bound calls, the solver
// must return exactly the same answer as the unfaulted run — the MIS
// fallback keeps every node's pruning sound — and the stats must account
// for the recovered panics and fallbacks.
func TestLPRFaultFallbackMatchesUnfaulted(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(4242))
	var totalPanics, totalFallbacks int64
	for iter := 0; iter < 40; iter++ {
		var p *pb.Problem
		if iter%2 == 0 {
			p = coverPBO(rng, 10+rng.Intn(6), 12+rng.Intn(10))
		} else {
			p = randomPBO(rng, 4+rng.Intn(9), 3+rng.Intn(12))
		}
		want := pb.BruteForce(p)

		fault.Reset()
		clean := Solve(p, Options{LowerBound: LBLPR})

		fault.Arm("lpr.solve", fault.Spec{Kind: fault.KindPanic, Prob: 0.1, Seed: int64(iter + 1)})
		faulted := Solve(p, Options{LowerBound: LBLPR})
		fault.Reset()

		if faulted.Status != clean.Status {
			t.Fatalf("iter %d: faulted status=%v clean=%v", iter, faulted.Status, clean.Status)
		}
		if want.Feasible {
			if faulted.Status != StatusOptimal {
				t.Fatalf("iter %d: faulted status=%v want optimal", iter, faulted.Status)
			}
			if faulted.Best != want.Optimum || clean.Best != want.Optimum {
				t.Fatalf("iter %d: best faulted=%d clean=%d brute=%d",
					iter, faulted.Best, clean.Best, want.Optimum)
			}
			if !p.Feasible(faulted.Values) {
				t.Fatalf("iter %d: faulted run returned infeasible values", iter)
			}
		} else if faulted.Status != StatusUnsat {
			t.Fatalf("iter %d: faulted status=%v want unsat", iter, faulted.Status)
		}
		if faulted.Stats.BoundPanics != faulted.Stats.BoundFailures {
			t.Fatalf("iter %d: panics=%d failures=%d (all failures here are panics)",
				iter, faulted.Stats.BoundPanics, faulted.Stats.BoundFailures)
		}
		totalPanics += faulted.Stats.BoundPanics
		totalFallbacks += faulted.Stats.BoundFallbacks
	}
	if totalPanics == 0 {
		t.Fatal("fault never fired: the test exercised nothing")
	}
	if totalFallbacks == 0 {
		t.Fatal("no MIS fallbacks recorded despite LPR panics")
	}
}

// TestCircuitBreakerDemotesToMIS arms the LPR path to panic on every call:
// after FallbackAfter consecutive failures the solver must demote to MIS
// outright (BoundDemotions=1), stop paying for the panicking procedure, and
// still prove the same optimum.
func TestCircuitBreakerDemotesToMIS(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(777))
	demoted := false
	for iter := 0; iter < 30 && !demoted; iter++ {
		p := coverPBO(rng, 12+rng.Intn(5), 14+rng.Intn(10))
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("lpr.solve", fault.Spec{Kind: fault.KindPanic, Every: 1})
		res := Solve(p, Options{LowerBound: LBLPR, FallbackAfter: 4})
		fault.Reset()

		if want.Feasible {
			if res.Status != StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: status=%v best=%d want optimal %d",
					iter, res.Status, res.Best, want.Optimum)
			}
		} else if res.Status != StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
		if res.Stats.BoundDemotions > 0 {
			demoted = true
			if res.Stats.BoundPanics < 4 {
				t.Fatalf("demoted after only %d panics (threshold 4)", res.Stats.BoundPanics)
			}
			// After demotion the primary *is* MIS: no further failures
			// should accumulate beyond the breaker window.
			if res.Stats.BoundFailures > res.Stats.BoundPanics {
				t.Fatalf("failures=%d > panics=%d", res.Stats.BoundFailures, res.Stats.BoundPanics)
			}
		}
	}
	if !demoted {
		t.Fatal("no run performed enough bound calls to trip the circuit breaker")
	}
}

// TestNumericCorruptionFallsBack corrupts the simplex pivot with NaN on
// every call: LPR must report a numerical failure (not garbage bounds), and
// the search must still reach the brute-force optimum via the fallback.
func TestNumericCorruptionFallsBack(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(909))
	var failures int64
	for iter := 0; iter < 25; iter++ {
		p := randomPBO(rng, 5+rng.Intn(8), 4+rng.Intn(10))
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("lp.pivot", fault.Spec{Kind: fault.KindCorrupt, Every: 1})
		res := Solve(p, Options{LowerBound: LBLPR})
		fault.Reset()

		if want.Feasible {
			if res.Status != StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: status=%v best=%d want optimal %d",
					iter, res.Status, res.Best, want.Optimum)
			}
		} else if res.Status != StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
		failures += res.Stats.BoundFailures
		if res.Stats.BoundPanics != 0 {
			t.Fatalf("iter %d: corruption should fail soft, got %d panics", iter, res.Stats.BoundPanics)
		}
	}
	if failures == 0 {
		t.Fatal("pivot corruption never surfaced as a bound failure")
	}
}

// TestCancelMidSearchKeepsIncumbent closes Cancel from the OnIncumbent
// callback: the search must unwind with StatusLimit and the incumbent
// intact (feasible, objective matching the reported value).
func TestCancelMidSearchKeepsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	sawLimit := false
	for iter := 0; iter < 40; iter++ {
		p := coverPBO(rng, 20+rng.Intn(6), 26+rng.Intn(10))
		cancel := make(chan struct{})
		closed := false
		var reported int64
		opt := Options{
			LowerBound: LBMIS,
			Cancel:     cancel,
			OnIncumbent: func(best int64) {
				reported = best
				if !closed {
					closed = true
					close(cancel)
				}
			},
		}
		res := Solve(p, opt)
		switch res.Status {
		case StatusLimit:
			sawLimit = true
			if !res.HasSolution {
				t.Fatalf("iter %d: cancelled after an incumbent but HasSolution=false", iter)
			}
			if !p.Feasible(res.Values) {
				t.Fatalf("iter %d: cancelled incumbent infeasible", iter)
			}
			if got := p.ObjectiveValue(res.Values); got != res.Best {
				t.Fatalf("iter %d: Values objective %d != Best %d", iter, got, res.Best)
			}
			if res.Best > reported {
				t.Fatalf("iter %d: Best %d worse than last reported incumbent %d",
					iter, res.Best, reported)
			}
		case StatusOptimal, StatusUnsat:
			// The search finished before the next budget check — legal.
		default:
			t.Fatalf("iter %d: unexpected status %v", iter, res.Status)
		}
	}
	if !sawLimit {
		t.Fatal("cancellation never interrupted a search; instances too easy")
	}
}

// TestCancelBeforeSolveReturnsQuickly: a Cancel channel closed up front
// stops the search within the first granularity window even with no
// TimeLimit set.
func TestCancelBeforeSolveReturnsQuickly(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	p := randomPBO(rng, 18, 24)
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	res := Solve(p, Options{LowerBound: LBLPR, Cancel: cancel})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("pre-cancelled solve ran %v", el)
	}
	if res.Status != StatusLimit && res.Status != StatusOptimal &&
		res.Status != StatusUnsat && res.Status != StatusSatisfiable {
		t.Fatalf("unexpected status %v", res.Status)
	}
}

// TestSafeSolveConvertsPanicToStatusError: a panic escaping the search
// becomes a StatusError result with the stack attached, instead of killing
// the caller.
func TestSafeSolveConvertsPanicToStatusError(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(12))
	p := randomPBO(rng, 8, 8)
	fault.Arm("core.solve", fault.Spec{Kind: fault.KindPanic, Every: 1})
	res := SafeSolve(p, Options{LowerBound: LBLPR})
	fault.Reset()
	if res.Status != StatusError {
		t.Fatalf("status=%v want error", res.Status)
	}
	if res.Err == nil {
		t.Fatal("StatusError without Err")
	}
	// And the unfaulted SafeSolve still behaves like Solve.
	res = SafeSolve(p, Options{LowerBound: LBLPR})
	if res.Status == StatusError {
		t.Fatalf("unfaulted SafeSolve errored: %v", res.Err)
	}
}

// TestDeadlineRespectedOnPropagationHeavyRuns: the deadline must hold
// within a small grace window even when individual nodes are expensive
// (bound calls are slowed with an injected delay).
func TestDeadlineRespectedOnPropagationHeavyRuns(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(3333))
	p := randomPBO(rng, 20, 30)
	fault.Arm("lgr.solve", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 2 * time.Millisecond})
	start := time.Now()
	res := Solve(p, Options{LowerBound: LBLGR, TimeLimit: 150 * time.Millisecond, LGRIterations: 10000})
	fault.Reset()
	el := time.Since(start)
	if el > 2*time.Second {
		t.Fatalf("TimeLimit=150ms but the solve ran %v", el)
	}
	_ = res
}

// TestWarmStartCorruptionStaysSound is the chaos property for the
// incremental bound pipeline: with the warm-start crash pivots randomly
// corrupted (NaN injection at "lp.warmcrash"), the solver must still prove
// the exact brute-force optimum — a poisoned basis may only cost pivots
// (per-column fallback, cold re-solves), never soundness, because the LPR
// bound is recomputed from the returned duals via weak duality. The second
// arm corrupts every crash pivot, degenerating every warm attempt.
func TestWarmStartCorruptionStaysSound(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(8888))
	specs := []fault.Spec{
		{Kind: fault.KindCorrupt, Prob: 0.4},
		{Kind: fault.KindCorrupt, Every: 1},
	}
	var totalWarm, totalCold, fires int64
	for iter := 0; iter < 24; iter++ {
		p := coverPBO(rng, 12+rng.Intn(6), 14+rng.Intn(10))
		want := pb.BruteForce(p)

		fault.Reset()
		clean := Solve(p, Options{LowerBound: LBLPR})

		spec := specs[iter%len(specs)]
		spec.Seed = int64(iter + 1)
		fault.Arm("lp.warmcrash", spec)
		faulted := Solve(p, Options{LowerBound: LBLPR})
		_, f := fault.Counts("lp.warmcrash")
		fires += f
		fault.Reset()

		if faulted.Status != clean.Status {
			t.Fatalf("iter %d: faulted status=%v clean=%v", iter, faulted.Status, clean.Status)
		}
		if want.Feasible {
			if faulted.Status != StatusOptimal || faulted.Best != want.Optimum {
				t.Fatalf("iter %d: faulted status=%v best=%d, brute optimum=%d",
					iter, faulted.Status, faulted.Best, want.Optimum)
			}
			if !p.Feasible(faulted.Values) {
				t.Fatalf("iter %d: faulted run returned infeasible values", iter)
			}
		} else if faulted.Status != StatusUnsat {
			t.Fatalf("iter %d: faulted status=%v want unsat", iter, faulted.Status)
		}
		totalWarm += faulted.Stats.Bounds.WarmSolves
		totalCold += faulted.Stats.Bounds.ColdSolves
	}
	if fires == 0 {
		t.Fatal("corruption never fired: the test exercised nothing")
	}
	if totalWarm+totalCold == 0 {
		t.Fatal("no LP solves with persistent state recorded: warm pipeline not engaged")
	}
	if totalCold == 0 {
		t.Fatal("no cold solves despite injected crash corruption")
	}
}
