package core

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// allConfigs enumerates the solver configurations exercised by the
// cross-validation tests: the four bsolo lower-bound variants (with and
// without the §4/§5 techniques) plus the linear-search strategy.
func allConfigs() map[string]Options {
	return map[string]Options{
		"plain":           {LowerBound: LBNone},
		"mis":             {LowerBound: LBMIS},
		"lgr":             {LowerBound: LBLGR},
		"lpr":             {LowerBound: LBLPR},
		"lpr-nobranch":    {LowerBound: LBLPR, NoLPBranching: true},
		"lpr-nocuts":      {LowerBound: LBLPR, NoKnapsackCuts: true},
		"lpr-chrono":      {LowerBound: LBLPR, ChronologicalBounds: true},
		"mis-chrono":      {LowerBound: LBMIS, ChronologicalBounds: true},
		"lgr-alpha":       {LowerBound: LBLGR, LGRIterations: 20},
		"lpr-alphafilter": {LowerBound: LBLPR, LPRAlphaFilter: true},
		"lpr-cardinf":     {LowerBound: LBLPR, CardinalityInference: true},
		"lgr-cardinf":     {LowerBound: LBLGR, CardinalityInference: true},
		"linear":          {Strategy: StrategyLinearSearch},
		"linear-mis":      {Strategy: StrategyLinearSearch, LowerBound: LBMIS},
		"plain-norestart": {LowerBound: LBNone, RestartBase: -1},
		"lpr-every3":      {LowerBound: LBLPR, BoundEvery: 3},
		"pb-learning":     {LowerBound: LBNone, PBLearning: true},
		"linear-pblearn":  {Strategy: StrategyLinearSearch, PBLearning: true},
		"lpr-pblearn":     {LowerBound: LBLPR, PBLearning: true},
		"lgr-coldstart":   {LowerBound: LBLGR, LGRColdStart: true},
		"lpr-zeroslack":   {LowerBound: LBLPR, LPRZeroSlack: true},
	}
}

func randomPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(8)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		cmp := pb.GE
		if rng.Intn(4) == 0 {
			cmp = pb.LE
		}
		_ = p.AddConstraint(terms, cmp, int64(rng.Intn(6)))
	}
	return p
}

// TestAllConfigsAgreeWithBruteForce is the central correctness test: every
// configuration must find the exact optimum (or prove unsatisfiability) of
// random small instances.
func TestAllConfigsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	configs := allConfigs()
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(7)
		p := randomPBO(rng, n, 1+rng.Intn(8))
		want := pb.BruteForce(p)
		for name, opt := range configs {
			opt.MaxConflicts = 200000
			res := Solve(p, opt)
			if want.Feasible {
				if res.Status != StatusOptimal {
					t.Fatalf("iter %d %s: status=%v want optimal (brute=%+v)", iter, name, res.Status, want)
				}
				if res.Best != want.Optimum {
					t.Fatalf("iter %d %s: best=%d want %d\nproblem: %v", iter, name, res.Best, want.Optimum, p.Constraints)
				}
				if !p.Feasible(res.Values) {
					t.Fatalf("iter %d %s: returned infeasible assignment", iter, name)
				}
				if p.ObjectiveValue(res.Values) != res.Best {
					t.Fatalf("iter %d %s: assignment cost %d != reported %d",
						iter, name, p.ObjectiveValue(res.Values), res.Best)
				}
			} else {
				if res.Status != StatusUnsat {
					t.Fatalf("iter %d %s: status=%v want unsat", iter, name, res.Status)
				}
			}
		}
	}
}

// Pure satisfaction instances (no cost function): all bsolo variants must
// behave identically — lower bounding is never invoked (paper footnote a).
func TestPureSatisfactionSkipsLowerBounding(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.Intn(6)
		p := pb.NewProblem(n) // all costs zero
		for i := 0; i < 2+rng.Intn(6); i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(1 + rng.Intn(3)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(4)))
		}
		want := pb.BruteForce(p)
		for _, lb := range []Method{LBNone, LBMIS, LBLGR, LBLPR} {
			res := Solve(p, Options{LowerBound: lb, MaxConflicts: 100000})
			if want.Feasible {
				if res.Status != StatusSatisfiable {
					t.Fatalf("iter %d lb=%v: status=%v want satisfiable", iter, lb, res.Status)
				}
				if !p.Feasible(res.Values) {
					t.Fatalf("iter %d lb=%v: infeasible assignment", iter, lb)
				}
			} else if res.Status != StatusUnsat {
				t.Fatalf("iter %d lb=%v: status=%v want unsat", iter, lb, res.Status)
			}
			if res.Stats.BoundCalls != 0 {
				t.Fatalf("iter %d lb=%v: lower bounding invoked on a pure satisfaction instance", iter, lb)
			}
		}
	}
}

func TestSimpleOptimum(t *testing.T) {
	// min 3x0 + x1 + 2x2 s.t. x0+x1 >= 1, x1+x2 >= 1 ⇒ x1=1, optimum 1.
	p := pb.NewProblem(3)
	p.SetCost(0, 3)
	p.SetCost(1, 1)
	p.SetCost(2, 2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2))
	for _, lb := range []Method{LBNone, LBMIS, LBLGR, LBLPR} {
		res := Solve(p, Options{LowerBound: lb})
		if res.Status != StatusOptimal || res.Best != 1 {
			t.Fatalf("lb=%v: %+v", lb, res)
		}
		if !res.Values[1] || res.Values[0] || res.Values[2] {
			t.Fatalf("lb=%v: values=%v", lb, res.Values)
		}
	}
}

func TestUnsatInstance(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.NegLit(0))
	res := Solve(p, Options{})
	if res.Status != StatusUnsat {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestCostOffsetPropagates(t *testing.T) {
	p := pb.NewProblem(1)
	p.SetCost(0, 5)
	p.CostOffset = 100
	_ = p.AddClause(pb.PosLit(0))
	res := Solve(p, Options{LowerBound: LBLPR})
	if res.Status != StatusOptimal || res.Best != 105 {
		t.Fatalf("%+v", res)
	}
}

func TestConflictBudgetReturnsLimit(t *testing.T) {
	// Pigeonhole 6→5 with costs: hard enough that 3 conflicts won't finish.
	const P, H = 6, 5
	p := pb.NewProblem(P * H)
	for pi := 0; pi < P; pi++ {
		lits := make([]pb.Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = pb.PosLit(pb.Var(pi*H + h))
			p.SetCost(pb.Var(pi*H+h), 1)
		}
		_ = p.AddAtLeast(lits, 1)
	}
	for h := 0; h < H; h++ {
		lits := make([]pb.Lit, P)
		for pi := 0; pi < P; pi++ {
			lits[pi] = pb.PosLit(pb.Var(pi*H + h))
		}
		_ = p.AddAtMost(lits, 1)
	}
	res := Solve(p, Options{MaxConflicts: 3})
	if res.Status != StatusLimit {
		t.Fatalf("status=%v want limit", res.Status)
	}
}

func TestDecisionBudget(t *testing.T) {
	p := pb.NewProblem(20)
	for v := 0; v < 20; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	for v := 0; v < 19; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.PosLit(pb.Var(v+1)))
	}
	res := Solve(p, Options{MaxDecisions: 2, LowerBound: LBNone})
	if res.Status != StatusLimit && res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
}

// Non-chronological backtracking on bound conflicts must actually engage on
// a structured instance: two independent blocks where the second block's
// cost explains the conflict, letting the search skip the first block's
// levels.
func TestBoundConflictNonChronological(t *testing.T) {
	// Block A: 6 free variables with zero cost (padding decisions).
	// Block B: clause (y0 ∨ y1) with costs 5, 6; optimum picks y0.
	p := pb.NewProblem(8)
	p.SetCost(6, 5)
	p.SetCost(7, 6)
	_ = p.AddClause(pb.PosLit(6), pb.PosLit(7))
	res := Solve(p, Options{LowerBound: LBLPR})
	if res.Status != StatusOptimal || res.Best != 5 {
		t.Fatalf("%+v", res)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomPBO(rng, 8, 10)
	res := Solve(p, Options{LowerBound: LBLPR, MaxConflicts: 100000})
	if res.Status == StatusOptimal && res.Stats.Decisions == 0 && res.Stats.Solutions == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

func TestKnapsackCutCounted(t *testing.T) {
	// An instance with several successively better solutions exercises
	// eq. 10 cut generation.
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 20; iter++ {
		p := randomPBO(rng, 8, 6)
		if !pb.BruteForce(p).Feasible {
			continue
		}
		res := Solve(p, Options{LowerBound: LBMIS, MaxConflicts: 100000})
		if res.Status != StatusOptimal {
			t.Fatalf("iter %d: %v", iter, res.Status)
		}
		if res.Stats.Solutions > 1 && res.Stats.KnapsackCuts == 0 {
			t.Fatalf("iter %d: %d solutions but no knapsack cuts", iter, res.Stats.Solutions)
		}
	}
}

func TestCardinalityInferenceGeneratesCuts(t *testing.T) {
	// Σ x0..x3 ≥ 2 with positive costs ⇒ V > 0 ⇒ eq. 13 cuts on incumbents.
	p := pb.NewProblem(6)
	for v := 0; v < 6; v++ {
		p.SetCost(pb.Var(v), int64(v+1))
	}
	_ = p.AddAtLeast([]pb.Lit{pb.PosLit(0), pb.PosLit(1), pb.PosLit(2), pb.PosLit(3)}, 2)
	_ = p.AddClause(pb.PosLit(4), pb.PosLit(5))
	res := Solve(p, Options{LowerBound: LBMIS, CardinalityInference: true})
	if res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	// optimum: x0+x1 (1+2) + x4 (5) = 8.
	if res.Best != 8 {
		t.Fatalf("best=%d want 8", res.Best)
	}
	if res.Stats.CardCuts == 0 {
		t.Fatal("no cardinality cuts generated")
	}
}

func TestMethodAndStatusStrings(t *testing.T) {
	if LBNone.String() != "plain" || LBMIS.String() != "mis" ||
		LBLGR.String() != "lgr" || LBLPR.String() != "lpr" {
		t.Fatal("method strings")
	}
	if StatusOptimal.String() != "optimal" || StatusSatisfiable.String() != "satisfiable" ||
		StatusUnsat.String() != "unsatisfiable" || StatusLimit.String() != "limit" {
		t.Fatal("status strings")
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Fatalf("luby(%d)=%d want %d", i, got, w)
		}
	}
}

// Larger structured instance: weighted set cover where LPR should prune
// dramatically better than plain; both must agree on the optimum.
func TestWeightedSetCoverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const elems = 12
	const sets = 14
	p := pb.NewProblem(sets)
	covers := make([][]pb.Lit, elems)
	for s := 0; s < sets; s++ {
		p.SetCost(pb.Var(s), int64(1+rng.Intn(9)))
		for e := 0; e < elems; e++ {
			if rng.Intn(3) == 0 {
				covers[e] = append(covers[e], pb.PosLit(pb.Var(s)))
			}
		}
	}
	for e := 0; e < elems; e++ {
		if len(covers[e]) == 0 {
			covers[e] = []pb.Lit{pb.PosLit(pb.Var(rng.Intn(sets)))}
		}
		_ = p.AddClause(covers[e]...)
	}
	resPlain := Solve(p, Options{LowerBound: LBNone, MaxConflicts: 500000})
	resLPR := Solve(p, Options{LowerBound: LBLPR, MaxConflicts: 500000})
	if resPlain.Status != StatusOptimal || resLPR.Status != StatusOptimal {
		t.Fatalf("status plain=%v lpr=%v", resPlain.Status, resLPR.Status)
	}
	if resPlain.Best != resLPR.Best {
		t.Fatalf("optimum mismatch: plain=%d lpr=%d", resPlain.Best, resLPR.Best)
	}
	if resLPR.Stats.BoundPrunes == 0 {
		t.Fatal("LPR never pruned on a set-cover instance")
	}
}

// The α-filtered LGR explanation must stay sound under stress: dense random
// instances with large costs, many decisions deep.
func TestLGRAlphaFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 150; iter++ {
		n := 4 + rng.Intn(6)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(50)))
		}
		for i := 0; i < 2+rng.Intn(8); i++ {
			nt := 2 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(1 + rng.Intn(5)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(7)))
		}
		want := pb.BruteForce(p)
		res := Solve(p, Options{LowerBound: LBLGR, LGRIterations: 30, MaxConflicts: 200000})
		if want.Feasible {
			if res.Status != StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: got %v/%d want optimal/%d", iter, res.Status, res.Best, want.Optimum)
			}
		} else if res.Status != StatusUnsat {
			t.Fatalf("iter %d: got %v want unsat", iter, res.Status)
		}
	}
}
