package core

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// Branch-and-bound and linear search must agree on the optimum for every
// lower-bound method — the two search organizations of §3 explore the same
// solution space.
func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for iter := 0; iter < 100; iter++ {
		p := randomPBO(rng, 3+rng.Intn(6), 2+rng.Intn(7))
		bb := Solve(p, Options{Strategy: StrategyBranchBound, LowerBound: LBMIS, MaxConflicts: 100000})
		lin := Solve(p, Options{Strategy: StrategyLinearSearch, MaxConflicts: 100000})
		if bb.Status != lin.Status {
			t.Fatalf("iter %d: status %v vs %v", iter, bb.Status, lin.Status)
		}
		if bb.Status == StatusOptimal && bb.Best != lin.Best {
			t.Fatalf("iter %d: best %d vs %d", iter, bb.Best, lin.Best)
		}
	}
}

// Non-chronological backtracking on bound conflicts must actually save
// levels on instances with independent blocks (the §4 motivation): zero
// saved levels across a structured batch would mean the mechanism never
// engages.
func TestNCBEngagesOnBlockStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var saved int64
	for iter := 0; iter < 30; iter++ {
		// Two independent covering blocks: decisions interleave, so bound
		// conflicts in one block can jump over the other block's levels.
		const blockVars = 8
		p := pb.NewProblem(2 * blockVars)
		for b := 0; b < 2; b++ {
			base := b * blockVars
			for i := 0; i < 6; i++ {
				var lits []pb.Lit
				for v := 0; v < blockVars; v++ {
					if rng.Intn(3) == 0 {
						lits = append(lits, pb.PosLit(pb.Var(base+v)))
					}
				}
				if len(lits) == 0 {
					lits = append(lits, pb.PosLit(pb.Var(base+rng.Intn(blockVars))))
				}
				_ = p.AddClause(lits...)
			}
			for v := 0; v < blockVars; v++ {
				p.SetCost(pb.Var(base+v), int64(1+rng.Intn(9)))
			}
		}
		res := Solve(p, Options{LowerBound: LBMIS, MaxConflicts: 100000})
		if res.Status != StatusOptimal {
			t.Fatalf("iter %d: %v", iter, res.Status)
		}
		saved += res.Stats.NCBSavedLevels
	}
	if saved == 0 {
		t.Fatal("non-chronological bound backjumps never saved a level on block-structured instances")
	}
}

// The chronological ablation must also stay exact (it only weakens
// explanations, never soundness).
func TestChronologicalAblationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		p := randomPBO(rng, 3+rng.Intn(5), 2+rng.Intn(6))
		want := pb.BruteForce(p)
		res := Solve(p, Options{LowerBound: LBMIS, ChronologicalBounds: true, MaxConflicts: 200000})
		if want.Feasible {
			if res.Status != StatusOptimal || res.Best != want.Optimum {
				t.Fatalf("iter %d: got %v/%d want optimal/%d", iter, res.Status, res.Best, want.Optimum)
			}
		} else if res.Status != StatusUnsat {
			t.Fatalf("iter %d: got %v want unsat", iter, res.Status)
		}
	}
}
