package core

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/pb"
)

// TestTracingIsBehaviorNeutral is the tracer on/off differential: the same
// instances solved with and without a tracer attached must produce the
// identical verdict and optimum (tracing is pure observation and must never
// perturb the search), and the traced runs must record a well-formed
// lifecycle (solve_start first, solve_end last, bound events between).
func TestTracingIsBehaviorNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		p := randomPBO(rng, 2+rng.Intn(8), 1+rng.Intn(9))
		for _, lb := range []Method{LBNone, LBMIS, LBLGR, LBLPR} {
			base := Solve(p, Options{LowerBound: lb})

			tr := obs.NewTracer(1 << 12)
			traced := Solve(p, Options{LowerBound: lb, Trace: tr.Named("t")})

			if base.Status != traced.Status || base.HasSolution != traced.HasSolution {
				t.Fatalf("iter %d lb=%v: tracing changed verdict: %v/%v vs %v/%v",
					iter, lb, base.Status, base.HasSolution, traced.Status, traced.HasSolution)
			}
			if base.HasSolution && base.Best != traced.Best {
				t.Fatalf("iter %d lb=%v: tracing changed optimum: %d vs %d",
					iter, lb, base.Best, traced.Best)
			}
			if base.Stats.Decisions != traced.Stats.Decisions ||
				base.Stats.Conflicts != traced.Stats.Conflicts ||
				base.Stats.BoundConflicts != traced.Stats.BoundConflicts {
				t.Fatalf("iter %d lb=%v: tracing perturbed the search: %+v vs %+v",
					iter, lb, base.Stats, traced.Stats)
			}

			events := tr.Snapshot()
			if len(events) < 2 {
				t.Fatalf("iter %d lb=%v: only %d events traced", iter, lb, len(events))
			}
			if events[0].Kind != obs.EvSolveStart {
				t.Fatalf("iter %d lb=%v: first event %v, want solve_start", iter, lb, events[0].Kind)
			}
			if last := events[len(events)-1]; last.Kind != obs.EvSolveEnd {
				t.Fatalf("iter %d lb=%v: last event %v, want solve_end", iter, lb, last.Kind)
			}
			if lb != LBNone {
				bounds := 0
				for _, ev := range events {
					if ev.Kind == obs.EvBound {
						bounds++
					}
				}
				if int64(bounds) != traced.Stats.BoundCalls {
					t.Fatalf("iter %d lb=%v: %d bound events, stats say %d calls",
						iter, lb, bounds, traced.Stats.BoundCalls)
				}
			}
		}
	}
}

// TestDisabledObservabilityAllocatesNothing pins the zero-cost-when-disabled
// contract on the solver's own hot-path hooks: with a nil tracer every Emit
// the solver issues is one nil check, and with a nil Live handle publishLive
// is a nil check too — neither may allocate.
func TestDisabledObservabilityAllocatesNothing(t *testing.T) {
	var tr *obs.Tracer
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(obs.EvBound, "lpr", 7, 3, "ok")
	}); n != 0 {
		t.Fatalf("nil tracer Emit allocates %.1f/op", n)
	}
	var live *obs.Live
	if n := testing.AllocsPerRun(1000, func() {
		live.Publish(obs.SolverMetrics{})
	}); n != 0 {
		t.Fatalf("nil Live Publish allocates %.1f/op", n)
	}
}

// TestLiveMetricsDuringSolve scrapes the live handle while a single solve
// runs and checks the final publish: the terminal snapshot must carry the
// Result's status, incumbent and counters exactly (satellite 2: stats are
// assembled at one point, so the published block can never disagree with
// the returned Result).
func TestLiveMetricsDuringSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 20; iter++ {
		p := randomPBO(rng, 3+rng.Intn(8), 2+rng.Intn(8))
		live := &obs.Live{}
		res := Solve(p, Options{LowerBound: LBLPR, Live: live})

		m, ok := live.Load()
		if !ok {
			t.Fatalf("iter %d: no terminal publish", iter)
		}
		if m.Status != res.Status.String() {
			t.Fatalf("iter %d: published status %q, result %q", iter, m.Status, res.Status)
		}
		if res.HasSolution != (m.Best != nil) {
			t.Fatalf("iter %d: incumbent mismatch: hasSolution=%v best=%v", iter, res.HasSolution, m.Best)
		}
		if res.HasSolution && *m.Best != res.Best {
			t.Fatalf("iter %d: published best %d, result %d", iter, *m.Best, res.Best)
		}
		if m.Decisions != res.Stats.Decisions || m.Conflicts != res.Stats.Conflicts ||
			m.BoundCalls != res.Stats.BoundCalls {
			t.Fatalf("iter %d: published counters disagree with Result:\n pub %+v\n res %+v",
				iter, m, res.Stats)
		}
	}
}

// TestCancelStatsConsistency pins the interruption path of satellite 2: a
// solve stopped by Cancel (the CLI's SIGINT route) must still return a
// complete Stats block — the engine counters and the bound-pipeline block
// assembled at the same single point as a clean exit, with the per-estimator
// totals matching the recorded calls.
func TestCancelStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	checked := 0
	for iter := 0; iter < 50 && checked < 5; iter++ {
		p := coverPBO(rng, 20+rng.Intn(6), 26+rng.Intn(10))
		cancel := make(chan struct{})
		cancelled := false
		onInc := func(int64) {
			// Cancel as soon as the first incumbent lands: the solve is
			// mid-search with live counters when it unwinds.
			if !cancelled {
				cancelled = true
				close(cancel)
			}
		}
		res := Solve(p, Options{LowerBound: LBMIS, Cancel: cancel, OnIncumbent: onInc})
		if !cancelled || res.Status != StatusLimit {
			continue // root-infeasible or solved before the first incumbent
		}
		checked++
		st := res.Stats
		if st.Decisions == 0 || !res.HasSolution {
			t.Fatalf("iter %d: interrupted solve returned torn stats: decisions=%d hasSolution=%v",
				iter, st.Decisions, res.HasSolution)
		}
		var perCalls int64
		for _, name := range st.Bounds.Names() {
			perCalls += st.Bounds.Per[name].Calls
		}
		if st.BoundCalls > 0 && perCalls != st.BoundCalls {
			t.Fatalf("iter %d: bound pipeline block inconsistent on the cancel path: calls=%d per-sum=%d",
				iter, st.BoundCalls, perCalls)
		}
	}
	if checked == 0 {
		t.Fatal("no instance exercised the cancel path; enlarge the generator")
	}
}

var _ = pb.Var(0) // keep the import when build tags trim tests
