package core

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func TestAssumptionsSatisfiable(t *testing.T) {
	// x0 ∨ x1, assume ¬x0: the witness must set x1 and respect the
	// assumption.
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	res := Solve(p, Options{Assumptions: []pb.Lit{pb.NegLit(0)}})
	if res.Status != StatusSatisfiable || !res.HasSolution {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Values[0] || !res.Values[1] {
		t.Fatalf("values=%v violate the assumption", res.Values)
	}
	if len(res.FailedAssumptions) != 0 {
		t.Fatalf("unexpected core %v", res.FailedAssumptions)
	}
}

func TestAssumptionsUnsatCore(t *testing.T) {
	// x0 ∨ x1, assume ¬x0 and ¬x1: UNSAT with both assumptions in the core.
	p := pb.NewProblem(3)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	as := []pb.Lit{pb.PosLit(2), pb.NegLit(0), pb.NegLit(1)}
	res := Solve(p, Options{Assumptions: as})
	if res.Status != StatusUnsat {
		t.Fatalf("status=%v want unsat", res.Status)
	}
	if len(res.FailedAssumptions) == 0 {
		t.Fatal("expected a non-empty failed-assumption core")
	}
	inAs := map[pb.Lit]bool{}
	for _, a := range as {
		inAs[a] = true
	}
	seen := map[pb.Lit]bool{}
	for _, l := range res.FailedAssumptions {
		if !inAs[l] {
			t.Fatalf("core literal %v is not an assumption", l)
		}
		seen[l] = true
	}
	if seen[pb.PosLit(2)] {
		t.Fatalf("irrelevant assumption x2 in core %v", res.FailedAssumptions)
	}
	if !seen[pb.NegLit(0)] || !seen[pb.NegLit(1)] {
		t.Fatalf("core=%v want {¬x0, ¬x1}", res.FailedAssumptions)
	}
}

func TestAssumptionsHardUnsatEmptyCore(t *testing.T) {
	// Contradictory unit clauses: hard UNSAT regardless of assumptions, and
	// the empty core distinguishes it from an assumption-relative refutation.
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.NegLit(0))
	res := Solve(p, Options{Assumptions: []pb.Lit{pb.PosLit(1)}})
	if res.Status != StatusUnsat {
		t.Fatalf("status=%v want unsat", res.Status)
	}
	if len(res.FailedAssumptions) != 0 {
		t.Fatalf("hard UNSAT must carry an empty core, got %v", res.FailedAssumptions)
	}
}

func TestAssumptionsRootFalsified(t *testing.T) {
	// A root-level unit entails ¬x0; assuming x0 yields the singleton core.
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.NegLit(0))
	_ = p.AddClause(pb.PosLit(1))
	res := Solve(p, Options{Assumptions: []pb.Lit{pb.PosLit(0)}})
	if res.Status != StatusUnsat {
		t.Fatalf("status=%v want unsat", res.Status)
	}
	if len(res.FailedAssumptions) != 1 || res.FailedAssumptions[0] != pb.PosLit(0) {
		t.Fatalf("core=%v want {x0}", res.FailedAssumptions)
	}
}

func TestAssumptionsWithObjective(t *testing.T) {
	// min x0 subject to x0 ∨ x1. Unrestricted optimum is 0 (take x1);
	// assuming ¬x1 forces x0, so the optimum under the assumption is 1.
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	res := Solve(p, Options{LowerBound: LBMIS, Assumptions: []pb.Lit{pb.NegLit(1)}})
	if res.Status != StatusOptimal || res.Best != 1 {
		t.Fatalf("status=%v best=%d want optimal/1", res.Status, res.Best)
	}
	if res.Values[1] {
		t.Fatalf("values=%v violate the assumption", res.Values)
	}
}

func TestAssumptionsSweepAgainstRestrictedBruteForce(t *testing.T) {
	// Differential check: on small random satisfiable-or-not instances, the
	// assumption answer must agree with brute force over the restricted
	// space, and every reported core must really be jointly contradictory.
	rng := rand.New(rand.NewSource(411))
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(4)
		p := pb.NewProblem(n)
		nc := 1 + rng.Intn(5)
		for i := 0; i < nc; i++ {
			var lits []pb.Lit
			nl := 1 + rng.Intn(3)
			for k := 0; k < nl; k++ {
				lits = append(lits, pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0))
			}
			_ = p.AddClause(lits...)
		}
		na := 1 + rng.Intn(3)
		var as []pb.Lit
		used := map[pb.Var]bool{}
		for len(as) < na {
			v := pb.Var(rng.Intn(n))
			if used[v] {
				continue
			}
			used[v] = true
			as = append(as, pb.MkLit(v, rng.Intn(2) == 0))
		}
		res := Solve(p, Options{Assumptions: as, MaxConflicts: 100000})

		feasible := false
		for mask := 0; mask < 1<<n; mask++ {
			vals := make([]bool, n)
			for v := 0; v < n; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			ok := p.Feasible(vals)
			for _, a := range as {
				if vals[a.Var()] == a.IsNeg() {
					ok = false
					break
				}
			}
			if ok {
				feasible = true
				break
			}
		}
		switch {
		case feasible && res.Status != StatusSatisfiable:
			t.Fatalf("iter %d: feasible under assumptions but status=%v", iter, res.Status)
		case !feasible && res.Status != StatusUnsat:
			t.Fatalf("iter %d: infeasible under assumptions but status=%v", iter, res.Status)
		}
		if res.Status == StatusUnsat && len(res.FailedAssumptions) > 0 {
			// The core must itself be contradictory with the constraints.
			for mask := 0; mask < 1<<n; mask++ {
				vals := make([]bool, n)
				for v := 0; v < n; v++ {
					vals[v] = mask&(1<<v) != 0
				}
				if !p.Feasible(vals) {
					continue
				}
				ok := true
				for _, l := range res.FailedAssumptions {
					if vals[l.Var()] == l.IsNeg() {
						ok = false
						break
					}
				}
				if ok {
					t.Fatalf("iter %d: reported core %v is satisfiable with the constraints",
						iter, res.FailedAssumptions)
				}
			}
		}
	}
}
