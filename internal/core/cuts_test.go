package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pb"
)

// TestCutsOptimaUnchanged asserts cutting-plane separation is a pure
// strengthening: for every lower-bound method, solving with cuts enabled and
// disabled must agree on feasibility and on the optimum. (Only core.LBLPR actually
// separates — the other methods are included to pin that the flag is inert
// for them.)
func TestCutsOptimaUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	methods := []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR}
	names := []string{"plain", "mis", "lgr", "lpr"}
	var totalSeparated int64
	for iter := 0; iter < 8; iter++ {
		var p *pb.Problem
		if iter < 4 {
			var err error
			p, err = gen.Grout(gen.GroutConfig{
				Width: 5, Height: 5, Nets: 8 + iter, PathsPerNet: 4,
				Capacity: 2, Seed: int64(900 + iter),
			})
			if err != nil {
				t.Fatalf("iter %d: grout: %v", iter, err)
			}
		} else {
			// Odd-cycle (triangle) clauses have half-integral LP optima, so
			// clique separation genuinely fires; the coefficient-heavy rows
			// feed cover separation.
			nTri := 3 + iter - 4
			n := 3 * nTri
			p = pb.NewProblem(n)
			for v := 0; v < n; v++ {
				p.SetCost(pb.Var(v), int64(1+rng.Intn(3)))
			}
			for tri := 0; tri < nTri; tri++ {
				a, b, c := pb.Var(3*tri), pb.Var(3*tri+1), pb.Var(3*tri+2)
				for _, pr := range [][2]pb.Var{{a, b}, {b, c}, {a, c}} {
					_ = p.AddConstraint([]pb.Term{
						{Coef: 1, Lit: pb.PosLit(pr[0])},
						{Coef: 1, Lit: pb.PosLit(pr[1])},
					}, pb.GE, 1)
				}
			}
			for i := 0; i < nTri; i++ {
				terms := []pb.Term{
					{Coef: 3, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
					{Coef: 3, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
					{Coef: 2, Lit: pb.PosLit(pb.Var(rng.Intn(n)))},
				}
				_ = p.AddConstraint(terms, pb.GE, 5)
			}
		}
		for mi, method := range methods {
			on := core.Solve(p, core.Options{LowerBound: method, MaxConflicts: 500000})
			off := core.Solve(p, core.Options{LowerBound: method, MaxConflicts: 500000,
				NoCuts: true})
			if on.Status == core.StatusLimit || off.Status == core.StatusLimit {
				continue
			}
			if on.Status != off.Status {
				t.Fatalf("iter %d %s: status disagreement cuts=%v nocuts=%v",
					iter, names[mi], on.Status, off.Status)
			}
			if on.Status != core.StatusOptimal {
				continue
			}
			if on.Best != off.Best {
				t.Fatalf("iter %d %s: optimum disagreement cuts=%d nocuts=%d",
					iter, names[mi], on.Best, off.Best)
			}
			if !p.Feasible(on.Values) || p.ObjectiveValue(on.Values) != on.Best {
				t.Fatalf("iter %d %s: cuts-on solution inconsistent", iter, names[mi])
			}
			if off.Stats.Bounds.Cuts.Separated != 0 {
				t.Fatalf("iter %d %s: cuts separated with NoCuts set", iter, names[mi])
			}
			if method != core.LBLPR && on.Stats.Bounds.Cuts.Separated != 0 {
				t.Fatalf("iter %d %s: non-LPR method separated cuts", iter, names[mi])
			}
			totalSeparated += on.Stats.Bounds.Cuts.Separated
		}
	}
	if totalSeparated == 0 {
		t.Fatalf("no cuts separated across the whole run; separation is not engaging")
	}
}

// TestCardinalityNormalizationEngages pins the learned-constraint
// cardinality rewrite: with PB learning on, runs over coefficient-heavy
// instances must both normalize some learned constraints and keep the
// optimum identical to a plain run.
func TestCardinalityNormalizationEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	var normalized int64
	for iter := 0; iter < 12; iter++ {
		n := 10 + rng.Intn(8)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(1+rng.Intn(4)))
		}
		m := n + rng.Intn(n)
		for i := 0; i < m; i++ {
			nt := 3 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			// Equal coefficients > 1 with a degree that is a multiple: the
			// cutting-plane derivations over these rows frequently land on
			// semantic cardinality constraints in disguise.
			c := int64(1 + rng.Intn(3))
			for k := range terms {
				terms[k] = pb.Term{
					Coef: c,
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, c*int64(1+rng.Intn(2)))
		}
		pbRes := core.Solve(p, core.Options{LowerBound: core.LBMIS, PBLearning: true, MaxConflicts: 500000})
		plain := core.Solve(p, core.Options{LowerBound: core.LBMIS, MaxConflicts: 500000})
		if pbRes.Status == core.StatusLimit || plain.Status == core.StatusLimit {
			continue
		}
		if pbRes.Status != plain.Status {
			t.Fatalf("iter %d: status disagreement pb=%v plain=%v", iter, pbRes.Status, plain.Status)
		}
		if pbRes.Status == core.StatusOptimal && pbRes.Best != plain.Best {
			t.Fatalf("iter %d: optimum disagreement pb=%d plain=%d", iter, pbRes.Best, plain.Best)
		}
		normalized += pbRes.Stats.PBCardNormalized
	}
	if normalized == 0 {
		t.Fatalf("no learned constraints were cardinality-normalized; detection is not engaging")
	}
}
