// Package core implements bsolo, the paper's pseudo-Boolean optimizer: a
// branch-and-bound search built on a SAT-style engine (boolean constraint
// propagation, conflict-based learning, non-chronological backtracking),
// extended with
//
//   - lower bound estimation at every search node (§3): plain (none), MIS,
//     linear-programming relaxation, or Lagrangian relaxation;
//   - bound-based conflicts (§4): when path + lower ≥ upper, the clause
//     ω_bc = ω_pp ∪ ω_pl is built from the assignments responsible for the
//     path cost and for the lower bound, and analyzed like an ordinary
//     conflict, enabling non-chronological backtracking;
//   - the additional techniques of §5: LP-guided branching, the incumbent
//     knapsack constraint (eq. 10) and cardinality-based cost inference
//     (eqs. 11–13).
//
// The same search loop, run with StrategyLinearSearch, reproduces the
// SAT-based linear search on the cost function used by PBS and Galena
// (§3, [2,4]): each solution adds the constraint cost ≤ upper−1 and search
// restarts, until unsatisfiability proves the last solution optimal.
package core

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/bounds"
	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pb"
)

// Method selects the lower bound estimation procedure (§3).
type Method int

const (
	// LBNone disables lower bounding (the paper's "plain" column).
	LBNone Method = iota
	// LBMIS uses the maximum-independent-set approximation.
	LBMIS
	// LBLGR uses Lagrangian relaxation.
	LBLGR
	// LBLPR uses linear-programming relaxation.
	LBLPR
)

func (m Method) String() string {
	switch m {
	case LBNone:
		return "plain"
	case LBMIS:
		return "mis"
	case LBLGR:
		return "lgr"
	default:
		return "lpr"
	}
}

// Strategy selects the overall search organization.
type Strategy int

const (
	// StrategyBranchBound is bsolo's branch-and-bound: solutions update the
	// incumbent in-place and search continues from a bound conflict.
	StrategyBranchBound Strategy = iota
	// StrategyLinearSearch is the PBS/Galena organization: each solution
	// adds cost ≤ upper−1 and the search restarts from the root.
	StrategyLinearSearch
)

// Options configures a solve. The zero value is bsolo-plain with no limits.
type Options struct {
	LowerBound Method
	Strategy   Strategy

	// MaxConflicts bounds the total number of conflicts (BCP + bound);
	// 0 means unlimited.
	MaxConflicts int64
	// MaxDecisions bounds the number of decisions; 0 means unlimited.
	MaxDecisions int64
	// TimeLimit bounds wall-clock time; 0 means unlimited.
	TimeLimit time.Duration

	// ChronologicalBounds disables §4's conflict analysis on bound
	// conflicts: the explanation degrades to the full set of decision
	// assignments, forcing chronological backtracking (ablation A1).
	ChronologicalBounds bool
	// NoLPBranching disables the §5 branching heuristic (branch on the LP
	// variable closest to 0.5) even when LowerBound is LBLPR.
	NoLPBranching bool
	// NoKnapsackCuts disables the eq. 10 incumbent constraint.
	NoKnapsackCuts bool
	// CardinalityInference enables the eq. 11–13 inference on new
	// incumbents.
	CardinalityInference bool

	// BoundEvery computes the lower bound only at every k-th eligible node
	// (default 1 = every node). Higher values trade pruning for speed.
	BoundEvery int

	// PBLearning additionally derives a cutting-plane (pseudo-Boolean)
	// constraint at every conflict, Galena-style [4], alongside the 1UIP
	// clause: the clause drives the backjump, the cutting plane adds
	// pruning power.
	PBLearning bool
	// MaxPBLearned caps how many cutting-plane constraints are retained
	// (default 20000); beyond the cap only clauses are learned.
	MaxPBLearned int64

	// LGRIterations bounds subgradient iterations per bound call
	// (default 50; ablation A5).
	LGRIterations int
	// LGRColdStart disables the greedy dual-ascent warm start of the
	// Lagrangian multipliers, leaving the plain subgradient scheme of the
	// paper's reference [12] — whose slow convergence the paper reports
	// (ablation A5).
	LGRColdStart bool
	// LPRAlphaFilter applies the §4.3 α-filter to LP duals as well.
	LPRAlphaFilter bool
	// LPRZeroSlack uses the paper's literal §4.2 responsible set (all
	// zero-slack rows of the LP solution) instead of the stronger
	// positive-dual subset.
	LPRZeroSlack bool

	// RestartBase is the Luby restart unit in conflicts (default 128;
	// 0 uses the default, negative disables restarts).
	RestartBase int

	// OnIncumbent, when non-nil, is invoked with the objective value
	// (including CostOffset) each time a better solution is found —
	// matching the "ub" progress reporting of the paper's Table 1.
	OnIncumbent func(best int64)

	// Cancel, when non-nil, aborts the search (StatusLimit with the best
	// incumbent) as soon as the channel is closed. Used by the portfolio
	// driver to stop the losing configurations and by the CLI's signal
	// handler. The channel is polled between nodes and, via the engine's
	// Interrupt hook, inside long propagation fixpoints.
	Cancel <-chan struct{}

	// BoundBudget caps the wall-clock time of a single lower-bound
	// estimation (threaded into the LP simplex and the LGR subgradient
	// loop). Zero derives a budget from the remaining TimeLimit — an eighth
	// of what is left, clamped to [5ms, 500ms] — so one cycling LP cannot
	// eat the whole node budget; negative disables the per-call cap.
	BoundBudget time.Duration

	// FallbackAfter is the circuit-breaker threshold: after this many
	// consecutive *failed* primary bound calls (panics or numerical
	// failures) the solver demotes LowerBound to MIS for the remainder of
	// the run. Zero selects the default (8); negative disables demotion.
	// Individual failed calls always fall back to MIS for that node
	// regardless of the breaker state.
	FallbackAfter int

	// NoIncrementalReduce disables the persistent incremental Reducer and
	// rebuilds the reduced problem from scratch at every node
	// (bounds.Extract) — the pre-incremental behaviour, kept for ablation
	// and as a differential-testing oracle.
	NoIncrementalReduce bool
	// NoWarmLP disables LP warm starting for LBLPR: every node's LP is
	// solved cold. Kept for ablation; warm starts never change results
	// (see bounds.LPRState), only node cost.
	NoWarmLP bool
	// NoCuts disables cutting-plane separation for LBLPR: node LPs are
	// solved over the reduced rows alone, with no pool. Cuts are on by
	// default for LBLPR (mirroring warm starts); the flag exists for
	// ablation and differential testing — cuts tighten bounds but never
	// change optima (every pooled cut is implied by the problem; the
	// auditor's PooledCut hook replays that claim).
	NoCuts bool
	// CutRounds overrides the root separation fixpoint cap (0 = the
	// internal/cuts default).
	CutRounds int
	// CutMaxPool overrides the cut pool capacity (0 = the internal/cuts
	// default).
	CutMaxPool int

	// LPRState, when non-nil, supplies a persistent LP warm-start state that
	// outlives this solve: the serving layer's solve-session cache hands the
	// previous submission's state back in, so an incremental re-solve of the
	// same (or a near-identical) problem starts from the cached basis instead
	// of the slack crash. Purely an accelerator — lp.SolveWarm maps the basis
	// under search-stable keys and falls back to a cold solve whenever the
	// mapping is poor or numerically suspect, so a stale or corrupted cached
	// basis costs one cold solve, never a wrong bound. Ignored unless
	// LowerBound is LBLPR and NoWarmLP is false. Not safe for concurrent use:
	// the caller must hand one state to at most one running solve at a time.
	LPRState *bounds.LPRState

	// Share, when non-nil, connects this solve to a cooperative-portfolio
	// board (see Sharer): incumbents are published and adopted, learned
	// clauses exchanged, and bound estimations interrupted by foreign upper
	// bounds. nil (the default) is the fully isolated — and deterministic —
	// mode.
	Share Sharer

	// Audit, when non-nil, replays every soundness-critical artifact of the
	// search — learned clauses, §4 bound conflicts, sharing imports, adopted
	// incumbents and the terminal claim — against the original problem
	// (see internal/audit). Violations are recorded in the auditor's Report,
	// never panicked on. Expensive (exhaustive replay per event on small
	// instances): meant for the differential fuzzer, `bsolo -audit`, and
	// debugging, not production solves. One auditor may be shared by every
	// member of a portfolio (it locks internally). nil = zero overhead.
	Audit *audit.Auditor

	// Trace, when non-nil, receives structured search lifecycle events
	// (restarts, ReduceDB, bound estimations with method/value/outcome,
	// prunes, bound conflicts, incumbent updates, sharing traffic,
	// fallback-ladder demotions) into a bounded ring; see internal/obs.
	// nil (the default) is zero cost: every emission site is one nil check.
	// Portfolio members receive Named handles of one shared tracer.
	Trace *obs.Tracer

	// Live, when non-nil, receives complete, internally consistent metrics
	// snapshots (the unified obs schema) at solver checkpoints — every
	// 16th node at a ≥50ms cadence, plus one terminal publish carrying the
	// verdict. Concurrent scrapers (the -debug-addr endpoint) read through
	// one atomic pointer, so they can never observe a torn counter block
	// while the search mutates its stats. nil (the default) is zero cost.
	Live *obs.Live

	// Seed seeds the engine's explicit RNG; meaningful only with a positive
	// RandomBranchFreq. Runs are reproducible for a fixed (Seed,
	// RandomBranchFreq) pair — the engine contains no other randomness, and
	// portfolio members receive explicit per-member seeds so repeated runs
	// are deterministic across processes.
	Seed int64
	// RandomBranchFreq is the probability that a decision branches on a
	// random unassigned variable instead of the VSIDS maximum (portfolio
	// diversification). 0 (the default) disables randomization entirely.
	RandomBranchFreq float64

	// Assumptions are literals the search must satisfy on top of the
	// problem's constraints. They are placed as decisions, in order, before
	// any real branching, and re-placed after every backjump that unassigns
	// them — so whenever the search branches, every assumption already holds.
	// If the constraints entail the negation of some assumption, Solve
	// returns StatusUnsat with Result.FailedAssumptions carrying an unsat
	// core: a subset of the assumptions that is jointly contradictory with
	// the constraints (engine.AnalyzeFinal). StatusUnsat with an empty
	// FailedAssumptions means the constraints alone are unsatisfiable.
	//
	// Assumption solving is meant for feasibility queries (the core-guided
	// WBO loop in internal/wbo): combining Assumptions with an objective is
	// supported but a proved optimum is then "optimal under the assumptions",
	// and the terminal audit claim is suppressed for assumption-relative
	// UNSAT answers because they are not claims about the bare problem.
	Assumptions []pb.Lit
}

// Status reports how a solve ended.
type Status int

const (
	// StatusOptimal: an optimal solution was found and proved.
	StatusOptimal Status = iota
	// StatusSatisfiable: the instance has no objective and a satisfying
	// assignment was found.
	StatusSatisfiable
	// StatusUnsat: the constraints are unsatisfiable.
	StatusUnsat
	// StatusLimit: a budget expired; Result carries the best incumbent.
	StatusLimit
	// StatusError: the solve crashed (a panic was recovered by SafeSolve);
	// Result.Err carries the panic value and stack. A portfolio member
	// ending in StatusError degrades the race instead of aborting it.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusSatisfiable:
		return "satisfiable"
	case StatusUnsat:
		return "unsatisfiable"
	case StatusError:
		return "error"
	default:
		return "limit"
	}
}

// Stats counts solver events.
type Stats struct {
	Decisions      int64
	Conflicts      int64 // BCP conflicts
	BoundConflicts int64 // §4 bound conflicts
	BoundCalls     int64 // lower bound estimations
	BoundPrunes    int64 // estimations that triggered a bound conflict
	Solutions      int64
	Restarts       int64
	KnapsackCuts   int64
	CardCuts       int64
	// NCBSavedLevels accumulates, over bound conflicts, how many decision
	// levels each backjump skipped beyond the chronological single level.
	NCBSavedLevels int64
	Propagations   int64
	LearnedClauses int64
	// PBLearned counts cutting-plane constraints derived by PB learning.
	PBLearned int64
	// PBCardNormalized counts learned PB constraints recognized as semantic
	// cardinality constraints and rewritten with unit coefficients
	// (cuts.DetectCardinality): e.g. 3x+3y+2z ≥ 5 becomes x+y+z ≥ 2.
	PBCardNormalized int64

	// Resilience counters (the fallback ladder of the bound procedures).
	//
	// BoundFailures counts primary bound calls that failed hard: a panic
	// recovered inside the estimation, a numerical failure (NaN/Inf), or an
	// LP solver error.
	BoundFailures int64
	// BoundPanics counts the subset of BoundFailures that were recovered
	// panics (genuine or injected via internal/fault).
	BoundPanics int64
	// BoundFallbacks counts nodes whose bound was rescued by the MIS
	// fallback after the primary procedure failed or returned no usable
	// bound within its budget.
	BoundFallbacks int64
	// BoundDemotions counts circuit-breaker trips: after FallbackAfter
	// consecutive failures the primary method is demoted to MIS for the
	// rest of the run (at most 1 per run today; kept a counter for the
	// portfolio's aggregated stats).
	BoundDemotions int64
	// BoundTimeouts counts bound calls that exhausted their per-node
	// wall-clock budget (sound anytime bound used; not a failure).
	BoundTimeouts int64

	// Bounds is the bound-pipeline observability block: reduction mode and
	// cost, per-estimator call/time/strength aggregates, and the LP
	// warm-start counters (see bounds.Stats).
	Bounds bounds.Stats

	// Sharing counts cooperative-portfolio events (all zero when
	// Options.Share is nil): incumbents published/adopted, clauses
	// exchanged, pruning attributable to foreign upper bounds.
	Sharing SharingStats

	// ImportedClauses mirrors the engine's count of installed foreign
	// clauses (units + watched).
	ImportedClauses int64
	// RandomDecisions counts seeded-RNG branch picks (Options.Seed /
	// RandomBranchFreq).
	RandomDecisions int64

	// Flips counts local-search moves; always 0 for branch-and-bound
	// members, set when a portfolio maps an internal/ls worker's outcome
	// into this shape.
	Flips int64
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// HasSolution reports whether any feasible assignment was found.
	HasSolution bool
	// Best is the objective value (including the problem's CostOffset) of
	// the best solution found; only meaningful when HasSolution.
	Best int64
	// Values is the best assignment (length NumVars).
	Values []bool
	Stats  Stats
	// Err is set with StatusError: the recovered panic value and stack of a
	// crashed solve (see SafeSolve).
	Err error
	// FailedAssumptions, set only with StatusUnsat under Options.Assumptions,
	// is an unsat core: a subset of the assumptions jointly contradictory
	// with the constraints. Empty with StatusUnsat means the constraints are
	// unsatisfiable on their own (hard UNSAT).
	FailedAssumptions []pb.Lit
}

const upperInf = int64(math.MaxInt64 / 2)

type solver struct {
	prob *pb.Problem
	opt  Options
	eng  *engine.Engine
	est  bounds.Estimator
	// fallback is the cheaper rung of the lower-bound ladder (MIS when the
	// primary is LPR/LGR; nil otherwise). consecFails counts consecutive
	// failed primary calls toward the FallbackAfter circuit breaker.
	fallback    bounds.Estimator
	consecFails int

	// reducer is the persistent incremental reduced-problem builder (nil
	// with Options.NoIncrementalReduce or LBNone: Extract per node instead).
	reducer *bounds.Reducer
	// lprState carries the LP warm-start basis between LPR calls (nil
	// unless LowerBound is LBLPR and warm starts are enabled). The lpr*0
	// baselines subtract counter history carried in by an injected
	// persistent state (Options.LPRState), so Stats reports this solve's
	// own warm/cold/fallback counts.
	lprState *bounds.LPRState
	lprWarm0 int64
	lprCold0 int64
	lprFB0   int64
	// cutPool is the managed cut store threaded into LPR (nil unless
	// LowerBound is LBLPR and cuts are enabled). One pool per solve: pooled
	// cuts are derived from THIS problem's rows and must not leak across
	// instances.
	cutPool *cuts.Pool
	// bstats aggregates the bound pipeline's observability (surfaced as
	// Stats.Bounds). lastEst names the estimator whose result the last
	// estimate() call returned, for per-estimator prune attribution.
	bstats  bounds.Stats
	lastEst string

	upper    int64 // best objective found so far, excluding CostOffset
	bestVals []bool
	// upperForeign marks an incumbent adopted from the sharing board (reset
	// whenever a locally found solution takes over); prunes under a foreign
	// incumbent are attributed to sharing in the stats.
	upperForeign bool

	stats        Stats
	deadline     time.Time
	hasDeadline  bool
	expired      bool  // sticky: deadline passed or Cancel closed
	lastPropSeen int64 // engine propagation count at the last wall-clock check
	nodeCounter  int
	restartIdx   int64
	conflictsCur int64 // conflicts since last restart
	lastReduceAt int64 // Stats.Learned at the last ReduceDB

	// cardinality sets precomputed for eq. 11–13.
	cardSets []cardSet

	// knapCut is the engine index of the eq. 10 incumbent constraint
	// (created at the first incumbent, tightened in place afterwards;
	// -1 until created). cardCutIdx likewise for the eq. 13 cuts.
	knapCut    int
	cardCutIdx []int

	// aud is the optional invariant auditor (Options.Audit; nil = off).
	// minImportUB tracks the weakest cost assumption any sharing import may
	// have carried (the board UB at the time of each drain): clauses learned
	// after an import are implied by problem ∧ cost < min(upper, minImportUB),
	// which is the bound the auditor replays them under. Maintained only when
	// auditing.
	aud         *audit.Auditor
	minImportUB int64

	// trace is the structured event sink (Options.Trace; nil = disabled —
	// every emit is one nil check inside obs.Tracer). lastLive throttles
	// live metrics publishes to the liveInterval cadence.
	trace    *obs.Tracer
	lastLive time.Time
}

// liveInterval is the minimum spacing between mid-run live metrics
// publishes (each publish deep-copies the stats block; 50ms keeps that off
// hot profiles while staying far below human scrape granularity).
const liveInterval = 50 * time.Millisecond

type cardSet struct {
	inK []bool // per variable
	v   int64  // sum of the U smallest costs within K
	// sumOutside is Σ c_j over j ∉ K (the eq. 13 left-hand side total).
	sumOutside int64
}

// Solve runs the configured search on p and returns the result. The input
// problem is not modified.
//
// Solve does not recover panics; callers that must survive a crashing
// configuration (the portfolio, the harness, services) should use SafeSolve.
func Solve(p *pb.Problem, opt Options) Result {
	// fault point "core.solve", keyed by the lower-bound method: lets tests
	// crash one portfolio member while the others race on.
	fault.Fire("core.solve", opt.LowerBound.String())
	// Refuse instances whose achievable objective can reach the engine's
	// sentinel values (upperInf, bounds.InfBound): on such inputs the "no
	// incumbent yet" state is indistinguishable from a real upper bound and
	// the search prunes every feasible solution into a wrong UNSAT (found by
	// the differential fuzzer; see pb.MaxObjective and testdata/fuzz-corpus).
	// pb.Validate — called by opb.Parse — rejects these at the input layer;
	// this guard turns a bypassing caller's silent unsoundness into a loud
	// error.
	if tc := p.TotalCost(); tc > pb.MaxObjective {
		return Result{Status: StatusError,
			Err: fmt.Errorf("core: worst-case objective %d exceeds solver headroom %d: %w",
				tc, pb.MaxObjective, pb.ErrOverflow)}
	}
	if opt.BoundEvery <= 0 {
		opt.BoundEvery = 1
	}
	s := &solver{prob: p, opt: opt, upper: upperInf, knapCut: -1,
		aud: opt.Audit, minImportUB: upperInf, trace: opt.Trace}
	s.trace.Emit(obs.EvSolveStart, opt.LowerBound.String(), int64(p.NumVars), int64(len(p.Constraints)), "")
	if opt.TimeLimit > 0 {
		s.deadline = time.Now().Add(opt.TimeLimit)
		s.hasDeadline = true
	}
	switch opt.LowerBound {
	case LBMIS:
		s.est = bounds.MIS{}
	case LBLGR:
		s.est = bounds.LGR{Iterations: opt.LGRIterations, WarmStart: !opt.LGRColdStart}
		s.fallback = bounds.MIS{}
	case LBLPR:
		if !opt.NoWarmLP {
			if opt.LPRState != nil {
				s.lprState = opt.LPRState
			} else {
				s.lprState = &bounds.LPRState{}
			}
		}
		if s.lprState != nil {
			s.lprWarm0 = s.lprState.WarmSolves()
			s.lprCold0 = s.lprState.ColdSolves()
			s.lprFB0 = s.lprState.WarmFallbacks()
		}
		if !opt.NoCuts {
			s.cutPool = cuts.NewPool(cuts.Config{
				MaxRounds: opt.CutRounds,
				MaxPool:   opt.CutMaxPool,
			})
			// Every cut accepted into the pool is observable (trace) and
			// replayable (audit): the pool feeds every subsequent node LP, so
			// an invalid cut here corrupts the whole run — exactly what the
			// auditor's PooledCut hook exists to catch.
			s.cutPool.OnAdd = func(terms []pb.Term, degree int64) {
				s.trace.Emit(obs.EvCut, "cut", int64(len(terms)), degree, "")
				if s.aud != nil {
					s.aud.PooledCut(terms, degree)
				}
			}
		}
		s.est = bounds.LPR{AlphaFilter: opt.LPRAlphaFilter, ZeroSlackExplanations: opt.LPRZeroSlack,
			State: s.lprState, Cuts: s.cutPool}
		s.fallback = bounds.MIS{}
	default:
		s.est = bounds.None{}
	}
	s.eng = engine.New(p)
	if opt.RandomBranchFreq > 0 {
		seed := opt.Seed
		if seed == 0 {
			seed = 1 // explicit default: randomized runs stay reproducible
		}
		s.eng.SeedRandom(seed, opt.RandomBranchFreq)
	}
	if !opt.NoIncrementalReduce && opt.LowerBound != LBNone {
		// Persistent incremental reduction: track satisfaction transitions
		// from the trail instead of re-scanning the constraint store at every
		// node. Attached after engine.New so the initial resync sees the full
		// problem.
		s.reducer = bounds.NewReducer(s.eng)
		s.bstats.Incremental = true
	}
	if s.hasDeadline || opt.Cancel != nil {
		// Reach propagation-heavy nodes: the engine polls this inside long
		// BCP fixpoints, so a single huge propagation cascade cannot
		// overshoot TimeLimit by seconds.
		s.eng.Interrupt = s.timeUp
	}
	if opt.CardinalityInference {
		s.prepareCardSets()
	}
	res := s.search()
	if s.reducer != nil {
		s.reducer.Detach()
	}
	// Single-point stats assembly: every terminal path (optimal, unsat,
	// TimeLimit, SIGINT/Cancel) and every live publish goes through the one
	// snapshot function, so consumers never see counters mixed across
	// assembly points.
	res.Stats = s.snapshotStats()
	s.publishFinal(&res)
	var traceBest int64
	if res.HasSolution {
		traceBest = res.Best
	}
	s.trace.Emit(obs.EvSolveEnd, s.opt.LowerBound.String(), traceBest, 0, res.Status.String())
	s.auditTermination(res)
	return res
}

// snapshotStats assembles one complete, internally consistent Stats value:
// the solver-side counters, a deep copy of the bound-pipeline block (so the
// caller's copy is frozen while the search keeps recording), the LP
// warm-start counters, and the engine counters — all read at a single point
// from the solver's own goroutine. Both the terminal Result and every live
// metrics publish use this; nothing else reads s.eng.Stats piecemeal.
func (s *solver) snapshotStats() Stats {
	st := s.stats
	bs := s.bstats.Clone()
	if s.lprState != nil {
		bs.WarmSolves = s.lprState.WarmSolves() - s.lprWarm0
		bs.ColdSolves = s.lprState.ColdSolves() - s.lprCold0
		bs.WarmFallbacks = s.lprState.WarmFallbacks() - s.lprFB0
	}
	if s.cutPool != nil {
		bs.Cuts = s.cutPool.Counters()
	}
	st.Bounds = bs
	es := s.eng.Stats
	st.Decisions = es.Decisions
	st.Conflicts = es.Conflicts
	st.Propagations = es.Propagations
	st.LearnedClauses = es.Learned
	st.ImportedClauses = es.Imported
	st.RandomDecisions = es.RandomDecisions
	return st
}

// --- invariant-auditor hooks (all no-ops when Options.Audit is nil) ---

// auditLearnt replays a just-learned clause: implied by
// problem ∧ cost < min(upper, weakest import assumption).
func (s *solver) auditLearnt(lits []pb.Lit) {
	if s.aud == nil {
		return
	}
	ub := s.upper
	if s.minImportUB < ub {
		ub = s.minImportUB
	}
	s.aud.LearnedClause(lits, ub, ub < upperInf)
}

// auditBound replays a §4 bound conflict's claim — every feasible completion
// of the current trail costs ≥ path + lower — before the trail is unwound by
// the backjump.
func (s *solver) auditBound(path, lower int64) {
	if s.aud == nil {
		return
	}
	trail := make([]pb.Lit, s.eng.TrailSize())
	for i := range trail {
		trail[i] = s.eng.TrailLit(i)
	}
	s.aud.BoundConflict(trail, path, lower)
}

// auditIncumbent re-verifies the currently adopted solution (local or
// foreign) against the original constraints.
func (s *solver) auditIncumbent() {
	if s.aud == nil || s.bestVals == nil {
		return
	}
	s.aud.Incumbent(s.upper+s.prob.CostOffset, s.bestVals)
}

// auditTermination replays the terminal claim (inconclusive outcomes carry
// no claim).
func (s *solver) auditTermination(res Result) {
	if s.aud == nil {
		return
	}
	switch res.Status {
	case StatusOptimal:
		// An optimum under assumptions is only optimal for the restricted
		// space; claim no more than the (still valid) upper bound.
		if len(s.opt.Assumptions) > 0 {
			s.aud.Termination(audit.Claim{UpperBound: true, Best: res.Best})
			return
		}
		s.aud.Termination(audit.Claim{Optimal: true, Best: res.Best})
	case StatusSatisfiable:
		s.aud.Termination(audit.Claim{Satisfiable: true})
	case StatusUnsat:
		// UNSAT relative to Options.Assumptions is not a claim about the
		// bare problem (which may well be satisfiable) — only hard UNSAT
		// (empty core) is replayed against the auditor's problem.
		if len(res.FailedAssumptions) == 0 {
			s.aud.Termination(audit.Claim{Unsat: true})
		}
	}
}

// SafeSolve is Solve behind a panic barrier: a crash anywhere in the search
// (a genuine bug, or an injected fault that escaped the bound-level
// recovery) is converted into a StatusError result carrying the panic value
// and stack instead of tearing down the process. The portfolio driver and
// the benchmark harness run every configuration through this wrapper so one
// crashing config degrades the race rather than aborting it.
func SafeSolve(p *pb.Problem, opt Options) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{
				Status: StatusError,
				Err:    fmt.Errorf("core: solve panicked: %v\n%s", r, debug.Stack()),
			}
		}
	}()
	return Solve(p, opt)
}

func (s *solver) pathCost() int64 {
	var c int64
	for i := 0; i < s.eng.TrailSize(); i++ {
		l := s.eng.TrailLit(i)
		if !l.IsNeg() {
			c += s.prob.Cost[l.Var()]
		}
	}
	return c
}

// timeUp checks the wall-clock deadline and the Cancel channel; the result
// is sticky. It doubles as the engine's mid-propagation Interrupt hook.
func (s *solver) timeUp() bool {
	if s.expired {
		return true
	}
	if s.hasDeadline && time.Now().After(s.deadline) {
		s.expired = true
		return true
	}
	if s.opt.Cancel != nil {
		select {
		case <-s.opt.Cancel:
			s.expired = true
			return true
		default:
		}
	}
	return false
}

func (s *solver) budgetExpired() bool {
	if s.expired {
		return true
	}
	if s.opt.MaxConflicts > 0 && s.stats.BoundConflicts+s.eng.Stats.Conflicts >= s.opt.MaxConflicts {
		return true
	}
	if s.opt.MaxDecisions > 0 && s.eng.Stats.Decisions >= s.opt.MaxDecisions {
		return true
	}
	if !s.hasDeadline && s.opt.Cancel == nil && s.opt.Live == nil {
		return false
	}
	// Wall-clock / cancellation granularity: consult the clock every 16
	// nodes, and additionally whenever propagation has advanced far since
	// the last check — so propagation-heavy nodes cannot ride a cheap node
	// counter past the deadline. (The engine Interrupt hook covers a single
	// huge fixpoint; this covers many medium ones.) Live metrics publishes
	// piggyback on the same checkpoint so unlimited runs remain inspectable
	// without adding a second clock site.
	if s.nodeCounter%16 == 0 || s.eng.Stats.Propagations-s.lastPropSeen >= 2048 {
		s.lastPropSeen = s.eng.Stats.Propagations
		s.publishLive()
		return s.timeUp()
	}
	return false
}

// boundBudget derives the wall-clock budget for one lower-bound estimation:
// an explicit Options.BoundBudget wins; otherwise an eighth of the remaining
// TimeLimit, clamped to [5ms, 500ms]. The budget never extends past the
// run's own deadline, and carries the Cancel channel so a cancelled search
// does not sit inside a subgradient loop.
func (s *solver) boundBudget() bounds.Budget {
	bud := bounds.Budget{Cancel: s.opt.Cancel}
	bb := s.opt.BoundBudget
	if bb < 0 {
		bb = 0 // explicitly uncapped
	} else if bb == 0 && s.hasDeadline {
		rem := time.Until(s.deadline)
		if rem < 0 {
			rem = 0
		}
		bb = rem / 8
		if bb > 500*time.Millisecond {
			bb = 500 * time.Millisecond
		}
		if bb < 5*time.Millisecond {
			bb = 5 * time.Millisecond
		}
	}
	if bb > 0 {
		bud.Deadline = time.Now().Add(bb)
	}
	if s.hasDeadline && (bud.Deadline.IsZero() || s.deadline.Before(bud.Deadline)) {
		bud.Deadline = s.deadline
	}
	s.shareInterruptBudget(&bud)
	return bud
}

// reduce builds the reduced problem for the current node: incrementally via
// the persistent Reducer when attached, from scratch otherwise. Construction
// cost is folded into the bound-pipeline stats either way.
func (s *solver) reduce() *bounds.Reduced {
	start := time.Now()
	var red *bounds.Reduced
	if s.reducer != nil {
		red = s.reducer.Reduce()
	} else {
		red = bounds.Extract(s.eng)
	}
	s.bstats.Reduces++
	s.bstats.ReduceTime += time.Since(start)
	return red
}

// estimate runs the lower-bound ladder at one node (see estimateInner) and
// traces the outcome: one EvBound event per estimation with the estimator
// that produced the returned bound, its value, the prune target, and the
// outcome class.
func (s *solver) estimate(red *bounds.Reduced, target int64) bounds.Result {
	res := s.estimateInner(red, target)
	if s.trace != nil {
		outcome := "ok"
		switch {
		case res.Failed:
			outcome = "failed"
		case res.Bound >= bounds.InfBound:
			outcome = "infeasible"
		case res.Incomplete:
			outcome = "incomplete"
		}
		s.trace.Emit(obs.EvBound, s.lastEst, res.Bound, target, outcome)
	}
	return res
}

// estimateInner runs the lower-bound ladder at one node: the primary
// procedure behind a panic barrier, then — if the primary failed (panic,
// numerical corruption, solver error) or produced no usable bound within its
// budget — the MIS fallback, so the node still prunes with eq. 8/eq. 9 bound
// conflicts where possible. After FallbackAfter consecutive hard failures
// the circuit breaker demotes the primary to MIS for the rest of the run.
func (s *solver) estimateInner(red *bounds.Reduced, target int64) bounds.Result {
	bud := s.boundBudget()
	s.lastEst = s.est.Name()
	ubi0 := s.stats.Sharing.UBInterrupts
	res, failed := s.tryEstimate(s.est, red, target, bud)
	if res.Incomplete {
		s.stats.BoundTimeouts++
	}
	if !failed {
		s.consecFails = 0
		// An estimation cut short by a foreign incumbent is not worth
		// rescuing: the caller is about to adopt a tighter upper bound and
		// re-check the prune — skip the fallback rung.
		if s.stats.Sharing.UBInterrupts != ubi0 {
			return res
		}
		// A budget-limited call that produced nothing still deserves the
		// cheap fallback — without feeding the circuit breaker.
		if res.Incomplete && res.Bound <= 0 && s.fallback != nil {
			if fres, ffailed := s.tryEstimate(s.fallback, red, target, bud); !ffailed && fres.Bound > 0 {
				s.stats.BoundFallbacks++
				s.lastEst = s.fallback.Name()
				s.trace.Emit(obs.EvFallback, s.fallback.Name(), fres.Bound, target, "timeout-rescue")
				return fres
			}
		}
		return res
	}
	s.stats.BoundFailures++
	s.consecFails++
	// A hard failure voids any trust in carried-over LP state (a panicked
	// solve may have published a corrupt basis snapshot): drop it so the
	// next LPR call starts cold. Nil-safe.
	s.lprState.Invalidate()
	if s.fallback != nil {
		if fres, ffailed := s.tryEstimate(s.fallback, red, target, bud); !ffailed {
			s.stats.BoundFallbacks++
			s.lastEst = s.fallback.Name()
			s.trace.Emit(obs.EvFallback, s.fallback.Name(), fres.Bound, target, "failure-rescue")
			res = fres
		}
	}
	threshold := s.opt.FallbackAfter
	if threshold == 0 {
		threshold = 8
	}
	if threshold > 0 && s.consecFails >= threshold && s.fallback != nil {
		// Demote: the primary procedure is persistently failing; stop
		// paying for it (and for its panics) at every node. The warm-start
		// state dies with the demoted estimator — but its warm/cold solve
		// counters must be folded into the stats block first, or a demoted
		// LPR run reports lp warm/cold = 0/0 even though hundreds of LP
		// solves happened before the circuit breaker tripped (the
		// accounting bug this PR's metrics snapshots surfaced).
		s.trace.Emit(obs.EvDemotion, s.est.Name(), int64(s.stats.BoundFailures), 0, s.fallback.Name())
		s.est = s.fallback
		s.fallback = nil
		s.consecFails = 0
		s.stats.BoundDemotions++
		if s.lprState != nil {
			s.lprState.Invalidate()
			s.bstats.WarmSolves = s.lprState.WarmSolves() - s.lprWarm0
			s.bstats.ColdSolves = s.lprState.ColdSolves() - s.lprCold0
			s.bstats.WarmFallbacks = s.lprState.WarmFallbacks() - s.lprFB0
			s.lprState = nil
		}
	}
	return res
}

// tryEstimate runs one estimator behind a recover barrier and sanitizes the
// outcome. failed reports a hard failure: the result carries no usable
// information and the call counts toward the circuit breaker.
func (s *solver) tryEstimate(est bounds.Estimator, red *bounds.Reduced, target int64, bud bounds.Budget) (res bounds.Result, failed bool) {
	start := time.Now()
	defer func() {
		panicked := false
		if r := recover(); r != nil {
			s.stats.BoundPanics++
			res = bounds.Result{Failed: true}
			failed = true
			panicked = true
		}
		s.bstats.Record(est.Name(), res, time.Since(start), panicked)
	}()
	res = est.Estimate(s.eng, red, s.prob.Cost, target, bud)
	if res.Failed || res.Bound < 0 {
		return bounds.Result{Failed: true}, true
	}
	return res, false
}

// finish converts the incumbent state into a terminal result. The terminal
// board poll (adoptFinal) runs first: a member whose imports assumed foreign
// incumbents must account for the board's best solution before claiming
// "optimal" or "unsatisfiable" (DESIGN.md §9).
func (s *solver) finish(proved bool) Result {
	s.adoptFinal()
	if s.bestVals != nil {
		status := StatusLimit
		if proved {
			status = StatusOptimal
			if !s.prob.HasObjective() {
				status = StatusSatisfiable
			}
		}
		return Result{
			Status:      status,
			HasSolution: true,
			Best:        s.upper + s.prob.CostOffset,
			Values:      s.bestVals,
		}
	}
	if proved {
		return Result{Status: StatusUnsat}
	}
	return Result{Status: StatusLimit}
}

func (s *solver) search() Result {
	if s.eng.SeedUnits() < 0 {
		return Result{Status: StatusUnsat}
	}
	hasObjective := s.prob.HasObjective()
	var fracX map[pb.Var]float64

	for {
		s.nodeCounter++
		if s.budgetExpired() {
			return s.finish(false)
		}

		// Cooperative portfolio: adopt a strictly better foreign incumbent
		// (one atomic load when there is nothing new) and, at the root,
		// install clauses learned by other members. An import conflicting at
		// the root proves the space below the board's assumptions empty —
		// finish(true) with adoptFinal supplying the matching incumbent.
		if s.opt.Share != nil {
			if hasObjective {
				s.adoptShared()
			}
			if !s.importShared() {
				return s.finish(true)
			}
		}

		if confl := s.eng.Propagate(); confl >= 0 {
			if !s.resolveConstraintConflict(confl) {
				return s.finish(true)
			}
			s.maybeRestart()
			continue
		}

		// Assumption placement: before any real branching, every assumption
		// must hold. Scan in order at the propagation fixpoint of every node
		// (backjumps may have unassigned some): a True assumption is done, an
		// Unassigned one becomes the next decision, a False one is refuted by
		// the constraints plus the assumptions decided so far — extract the
		// failed subset and answer UNSAT-under-assumptions. Because this scan
		// precedes pickBranch, the trail's decisions are all assumptions until
		// the scan completes, which is the invariant AnalyzeFinal relies on to
		// read NoReason decisions as assumption literals.
		if len(s.opt.Assumptions) > 0 {
			decided := false
			for _, a := range s.opt.Assumptions {
				switch s.eng.LitValue(a) {
				case engine.True:
					continue
				case engine.Unassigned:
					s.eng.Decide(a)
					decided = true
				default: // False: refuted
					// With an incumbent in hand, the refutation may rest on
					// clauses learned under the cost bound (bound conflicts),
					// so it proves "no solution under the assumptions beats
					// the incumbent" — optimality, not infeasibility. The
					// incumbent itself was found with every assumption held
					// (this scan precedes the solution check), so it is the
					// optimum of the restricted space.
					if hasObjective && s.bestVals != nil {
						return s.finish(true)
					}
					// No incumbent: every learned clause is implied by the
					// constraints alone, so the failed subset is a genuine
					// unsat core over the assumptions.
					return Result{Status: StatusUnsat,
						FailedAssumptions: s.eng.AnalyzeFinal(a)}
				}
				break
			}
			if decided {
				continue // propagate the new assumption before scanning on
			}
		}

		// Propagation fixpoint.
		path := int64(0)
		if hasObjective {
			path = s.pathCost()
			if path >= s.upper {
				if s.upperForeign {
					s.stats.Sharing.ForeignUBPrunes++
				}
				s.trace.Emit(obs.EvPrune, "path", path, s.upper, "")
				s.auditBound(path, 0)
				if !s.boundConflict(nil, nil, nil) {
					return s.finish(true)
				}
				continue
			}
		}

		// Lower bound estimation (§3) and bound conflict detection (§4).
		fracX = nil
		if hasObjective && s.upper < upperInf && s.opt.LowerBound != LBNone &&
			s.nodeCounter%s.opt.BoundEvery == 0 {
			red := s.reduce()
			s.stats.BoundCalls++
			res := s.estimate(red, s.upper-path)
			// Make a mid-estimation foreign incumbent pay off immediately:
			// adopt it before the prune comparison, so an estimation cut
			// short by Budget.Interrupt still gets its node pruned against
			// the tighter upper bound.
			s.adoptShared()
			if path+res.Bound >= s.upper {
				s.stats.BoundPrunes++
				s.bstats.Proc(s.lastEst).Prunes++
				if s.upperForeign {
					s.stats.Sharing.ForeignUBPrunes++
				}
				s.trace.Emit(obs.EvPrune, s.lastEst, path, res.Bound, "")
				s.auditBound(path, res.Bound)
				if !s.boundConflict(res.Responsible, res.ResponsibleLits, res.ExcludedVars) {
					return s.finish(true)
				}
				continue
			}
			fracX = res.FracX
		}

		// Solution? Every problem constraint satisfied; unassigned variables
		// take value 0, the cheapest polarity, so the cost is exactly path.
		if s.eng.NumUnsatisfied() == 0 {
			s.stats.Solutions++
			if !hasObjective {
				s.upper = 0
				s.bestVals = s.eng.Values()
				s.auditIncumbent()
				return s.finish(true)
			}
			if path < s.upper {
				s.upper = path
				s.bestVals = s.eng.Values()
				s.upperForeign = false
				s.trace.Emit(obs.EvIncumbent, "", s.upper+s.prob.CostOffset, 0, "local")
				s.auditIncumbent()
				// Publish before any clause learned under the new bound can
				// reach the exchange — the ordering the sharing soundness
				// argument rests on (DESIGN.md §9).
				s.publishIncumbent()
				if s.opt.OnIncumbent != nil {
					s.opt.OnIncumbent(s.upper + s.prob.CostOffset)
				}
				s.addIncumbentCuts()
			}
			if s.opt.Strategy == StrategyLinearSearch {
				// addIncumbentCuts restarted the search from the root; the
				// eq. 10 constraint now drives it toward a cheaper solution.
				continue
			}
			// Branch-and-bound: the incumbent now equals the path, so raise
			// a bound conflict with the path explanation ω_pp (lower = 0).
			s.auditBound(path, 0)
			if !s.boundConflict(nil, nil, nil) {
				return s.finish(true)
			}
			continue
		}

		// Branch.
		lit := s.pickBranch(fracX)
		if lit == pb.NoLit {
			// All variables assigned yet constraints remain unsatisfied:
			// propagation must have caught this. Defensive.
			return s.finish(false)
		}
		s.eng.Decide(lit)
	}
}

// resolveConstraintConflict analyzes a BCP conflict; returns false when the
// search space is exhausted.
func (s *solver) resolveConstraintConflict(confl int) bool {
	for round := 0; ; round++ {
		var cpTerms []pb.Term
		var cpDegree int64
		maxPB := s.opt.MaxPBLearned
		if maxPB == 0 {
			maxPB = 20000
		}
		if s.opt.PBLearning && s.stats.PBLearned < maxPB {
			cpTerms, cpDegree = s.eng.AnalyzeCuttingPlane(confl)
			// Cardinality detection: when the derived constraint is
			// semantically a cardinality constraint (every solution set
			// unchanged), normalize the coefficients to 1. The unit form
			// propagates identically but is cheaper to watch and is what the
			// clique-graph builder recognizes exactly.
			if cpTerms != nil {
				if need, ok := cuts.DetectCardinality(cpTerms, cpDegree); ok && !allUnitCoefs(cpTerms) {
					cpTerms = cuts.UnitTerms(cpTerms)
					cpDegree = int64(need)
					s.stats.PBCardNormalized++
				}
			}
		}
		res := s.eng.AnalyzeConstraint(confl)
		if res.Unsat {
			return false
		}
		idx := s.eng.LearnAndBackjump(res)
		if idx < 0 {
			return false
		}
		s.publishLearnt(res.Learnt)
		s.auditLearnt(res.Learnt)
		// Install the cutting plane after the backjump (it is usually a
		// strict strengthening of the clause) and schedule it for an
		// immediate propagation check.
		if cpTerms != nil && !dominatedByClause(cpTerms, cpDegree, res.Learnt) {
			ci := s.eng.AddCons(cpTerms, cpDegree, true)
			s.eng.ScheduleCheck(ci)
			s.stats.PBLearned++
		}
		if s.eng.LitValue(res.Learnt[0]) != engine.False {
			return true
		}
		// The learned clause is still conflicting (can happen when a seed
		// had several literals at its maximum level); analyze it in turn.
		confl = idx
		if round > 1000 {
			panic("core: conflict resolution did not converge")
		}
	}
}

// boundConflict handles path + lower ≥ upper (§4): build ω_bc = ω_pp ∪ ω_pl,
// backtrack non-chronologically, learn, and continue. responsible lists the
// engine constraints explaining the lower bound (nil when lower = 0);
// responsibleLits carries the currently-false literals of pooled cut rows
// that participated in the bound — a cut has no engine constraint index, so
// its literals enter ω_pl directly.
// Returns false when the search space below the incumbent is exhausted —
// the incumbent is optimal (or the instance unsatisfiable).
func (s *solver) boundConflict(responsible []int, responsibleLits []pb.Lit, excluded map[pb.Var]bool) bool {
	s.stats.BoundConflicts++
	curLevel := s.eng.DecisionLevel()
	if curLevel == 0 {
		return false
	}

	var seed []pb.Lit
	inSeed := map[pb.Lit]bool{}
	add := func(l pb.Lit) {
		if !inSeed[l] {
			inSeed[l] = true
			seed = append(seed, l)
		}
	}

	if s.opt.ChronologicalBounds {
		// The "straightforward approach" of §4.1: blame every decision.
		for lvl := 1; lvl <= curLevel; lvl++ {
			add(s.eng.DecisionLit(lvl).Neg())
		}
	} else {
		// ω_pp (eq. 8): positive-cost variables assigned 1.
		for i := 0; i < s.eng.TrailSize(); i++ {
			l := s.eng.TrailLit(i)
			if l.IsNeg() {
				continue
			}
			v := l.Var()
			if s.prob.Cost[v] > 0 && s.eng.Level(v) > 0 {
				add(pb.NegLit(v))
			}
		}
		// ω_pl (eq. 9): false literals of the responsible constraints,
		// minus the §4.3 α-filtered variables.
		for _, ci := range responsible {
			c := s.eng.Cons(ci)
			for _, l := range c.Lits {
				if s.eng.LitValue(l) != engine.False {
					continue
				}
				v := l.Var()
				if s.eng.Level(v) == 0 {
					continue // root assignments never unassign; sound to drop
				}
				if excluded != nil && excluded[v] {
					continue
				}
				add(l)
			}
		}
		// ω_pl contribution of pooled cuts: cuts are implied by the original
		// problem, so their false literals stand in for a constraint's exactly
		// as in eq. 9. The α-filter never excludes them — cut rows were part
		// of the LP the filter was computed against, but the filter's
		// exclusion set is keyed to problem rows only.
		for _, l := range responsibleLits {
			if s.eng.LitValue(l) != engine.False {
				continue
			}
			if s.eng.Level(l.Var()) == 0 {
				continue
			}
			add(l)
		}
	}

	if len(seed) == 0 {
		// The bound holds under no assumptions: nothing below the incumbent.
		return false
	}

	// Non-chronological jump: first return to the highest level mentioned by
	// the explanation, then run standard conflict analysis from ω_bc.
	maxLevel := 0
	for _, l := range seed {
		if lvl := s.eng.Level(l.Var()); lvl > maxLevel {
			maxLevel = lvl
		}
	}
	if maxLevel == 0 {
		return false
	}
	if maxLevel < curLevel {
		s.eng.BacktrackTo(maxLevel)
	}
	res := s.eng.AnalyzeClause(seed)
	if res.Unsat {
		return false
	}
	idx := s.eng.LearnAndBackjump(res)
	if idx < 0 {
		return false
	}
	s.publishLearnt(res.Learnt)
	s.auditLearnt(res.Learnt)
	s.trace.Emit(obs.EvBoundConflict, s.lastEst, int64(curLevel), int64(res.BackLevel), "")
	// Chronological backtracking would have returned to curLevel−1; levels
	// skipped beyond that are the §4 non-chronological saving.
	if saved := int64(curLevel-1) - int64(res.BackLevel); saved > 0 {
		s.stats.NCBSavedLevels += saved
	}
	if s.eng.LitValue(res.Learnt[0]) == engine.False {
		// Still conflicting: resolve through the regular path.
		return s.resolveConstraintConflict(idx)
	}
	return true
}

// allUnitCoefs reports whether every coefficient is already 1.
func allUnitCoefs(terms []pb.Term) bool {
	for _, t := range terms {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

// dominatedByClause reports whether the derived cutting plane is no
// stronger than the learned clause (same-or-fewer pruning power when it is
// itself a clause over a superset of the clause's literals).
func dominatedByClause(terms []pb.Term, degree int64, clause []pb.Lit) bool {
	if degree != 1 {
		return false
	}
	for _, t := range terms {
		if t.Coef != 1 {
			return false
		}
	}
	// A clause-shaped cut with degree 1: it dominates the learned clause
	// only if its literal set is a subset; a superset is weaker. Cheap
	// approximation: keep only if strictly shorter than the clause.
	return len(terms) >= len(clause)
}

// pickBranch selects the next decision literal: the §5 LP-guided heuristic
// when fractional values are available, otherwise VSIDS with saved phases.
func (s *solver) pickBranch(fracX map[pb.Var]float64) pb.Lit {
	if fracX != nil && !s.opt.NoLPBranching && s.opt.LowerBound == LBLPR {
		// Two passes over the (unordered) map, so the selection is
		// independent of Go's randomized map iteration order: pass 1 finds
		// the exact minimum distance to 0.5, pass 2 picks the winner among
		// everything within numerical noise of it by (activity, then
		// smallest variable index) — both order-free criteria. Portfolio
		// members must replay identically across processes for the
		// deterministic mode to mean anything.
		const intEps = 1e-6
		bestDist := math.Inf(1)
		for v, x := range fracX {
			if s.eng.Value(v) != engine.Unassigned {
				continue
			}
			if x < intEps || x > 1-intEps {
				continue // integral in the LP: not a §5 candidate
			}
			if d := math.Abs(x - 0.5); d < bestDist {
				bestDist = d
			}
		}
		if !math.IsInf(bestDist, 1) {
			best := pb.Var(-1)
			for v, x := range fracX {
				if s.eng.Value(v) != engine.Unassigned {
					continue
				}
				if x < intEps || x > 1-intEps {
					continue
				}
				if math.Abs(x-0.5) > bestDist+1e-9 {
					continue
				}
				// Ties broken by the VSIDS heuristic of Chaff (§5), then by
				// variable index.
				if best < 0 || s.eng.Activity(v) > s.eng.Activity(best) ||
					(s.eng.Activity(v) == s.eng.Activity(best) && v < best) {
					best = v
				}
			}
			return pb.MkLit(best, fracX[best] < 0.5)
		}
	}
	v := s.eng.PickBranchVar()
	if v < 0 {
		return pb.NoLit
	}
	return pb.MkLit(v, s.eng.PreferredPhase(v) == engine.False)
}

// addIncumbentCuts installs the eq. 10 knapsack constraint and, when
// enabled, the eq. 11–13 cardinality inferences for the new upper bound.
// In linear-search mode the eq. 10 constraint *is* the search mechanism.
func (s *solver) addIncumbentCuts() {
	if s.opt.Strategy == StrategyLinearSearch {
		s.addCostUpperBoundCut()
		// PBS/Galena restart from scratch after each solution. The jump to
		// the root breaks the node-to-node continuity the warm-start basis
		// assumes, so drop it (nil-safe).
		s.eng.BacktrackTo(0)
		s.stats.Restarts++
		s.trace.Emit(obs.EvRestart, "", s.stats.Restarts, s.eng.Stats.Conflicts, "linear-search")
		s.lprState.Invalidate()
		return
	}
	if !s.opt.NoKnapsackCuts {
		s.addCostUpperBoundCut()
	}
	if s.opt.CardinalityInference {
		s.addCardinalityCuts()
	}
}

// addCostUpperBoundCut maintains Σ c_j·x_j ≤ upper − 1 (eq. 10), expressed
// in normal form as Σ c_j·¬x_j ≥ (Σ c_j) − upper + 1. The constraint is
// created once at the first incumbent and tightened in place afterwards —
// each improvement dominates the previous cut, and replacing beats
// accumulating dense constraints.
func (s *solver) addCostUpperBoundCut() {
	degree := s.prob.TotalCost() - s.upper + 1
	if s.knapCut >= 0 {
		s.eng.UpdateDegree(s.knapCut, degree)
		s.stats.KnapsackCuts++
		return
	}
	terms := costTerms(s.prob.Cost, nil)
	if len(terms) == 0 {
		return
	}
	s.knapCut = s.eng.AddCons(terms, degree, true)
	s.eng.Protect(s.knapCut)
	s.stats.KnapsackCuts++
}

// costTerms builds Σ c_j·¬x_j over positive-cost variables outside the
// excluded set, sorted by descending coefficient (the engine's propagation
// scan relies on that order). The terms are deliberately NOT clipped against
// any degree so the degree can be tightened in place later.
func costTerms(cost []int64, exclude []bool) []pb.Term {
	var terms []pb.Term
	for v, c := range cost {
		if c > 0 && (exclude == nil || !exclude[v]) {
			terms = append(terms, pb.Term{Coef: c, Lit: pb.NegLit(pb.Var(v))})
		}
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Coef != terms[j].Coef {
			return terms[i].Coef > terms[j].Coef
		}
		return terms[i].Lit < terms[j].Lit
	})
	return terms
}

// prepareCardSets scans the original constraints for positive cardinality
// constraints Σ_{j∈K} x_j ≥ U (eq. 11) and precomputes V, the sum of the U
// smallest costs in K (eq. 12).
func (s *solver) prepareCardSets() {
	for _, c := range s.prob.Constraints {
		kind := c.Kind()
		if kind != pb.KindCardinality && kind != pb.KindClause {
			continue
		}
		u := c.CardinalityNeed()
		if u <= 0 {
			continue
		}
		inK := make([]bool, s.prob.NumVars)
		var costs []int64
		allPositive := true
		for _, t := range c.Terms {
			if t.Lit.IsNeg() {
				allPositive = false
				break
			}
			inK[t.Lit.Var()] = true
			costs = append(costs, s.prob.Cost[t.Lit.Var()])
		}
		if !allPositive {
			continue
		}
		sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
		var v int64
		for i := int64(0); i < u && i < int64(len(costs)); i++ {
			v += costs[i]
		}
		if v <= 0 {
			continue // eq. 13 would be no stronger than eq. 10
		}
		var sumOutside int64
		for vv, c := range s.prob.Cost {
			if c > 0 && !inK[vv] {
				sumOutside += c
			}
		}
		s.cardSets = append(s.cardSets, cardSet{inK: inK, v: v, sumOutside: sumOutside})
	}
	// Keep only the strongest sets (largest V): each cut is a dense
	// constraint touching every costed variable's occurrence list.
	sort.Slice(s.cardSets, func(a, b int) bool { return s.cardSets[a].v > s.cardSets[b].v })
	const maxCardSets = 16
	if len(s.cardSets) > maxCardSets {
		s.cardSets = s.cardSets[:maxCardSets]
	}
}

// addCardinalityCuts maintains Σ_{j∈N−K} c_j·x_j ≤ upper − 1 − V (eq. 13)
// for every precomputed cardinality set, in normal form
// Σ_{j∈N−K} c_j·¬x_j ≥ sumOutside − upper + 1 + V. Cuts are created at the
// first incumbent and tightened in place afterwards.
func (s *solver) addCardinalityCuts() {
	if s.cardCutIdx == nil {
		s.cardCutIdx = make([]int, len(s.cardSets))
		for i, cs := range s.cardSets {
			terms := costTerms(s.prob.Cost, cs.inK)
			if len(terms) == 0 {
				s.cardCutIdx[i] = -1
				continue
			}
			s.cardCutIdx[i] = s.eng.AddCons(terms, cs.sumOutside-s.upper+1+cs.v, true)
			s.eng.Protect(s.cardCutIdx[i])
			s.stats.CardCuts++
		}
		return
	}
	for i, cs := range s.cardSets {
		if s.cardCutIdx[i] < 0 {
			continue
		}
		s.eng.UpdateDegree(s.cardCutIdx[i], cs.sumOutside-s.upper+1+cs.v)
		s.stats.CardCuts++
	}
}

// maybeRestart applies Luby restarts after BCP conflicts.
func (s *solver) maybeRestart() {
	if s.opt.RestartBase < 0 {
		return
	}
	base := int64(s.opt.RestartBase)
	if base == 0 {
		base = 128
	}
	s.conflictsCur++
	if s.conflictsCur >= luby(s.restartIdx)*base {
		s.conflictsCur = 0
		s.restartIdx++
		if s.eng.DecisionLevel() > 0 {
			s.eng.BacktrackTo(0)
			s.stats.Restarts++
			s.trace.Emit(obs.EvRestart, "", s.stats.Restarts, s.eng.Stats.Conflicts, "luby")
			// A restart teleports the search to an unrelated region; the
			// previous node's LP basis is no longer a useful hint. (Ordinary
			// backjumps keep it: the next node shares most of its columns.)
			s.lprState.Invalidate()
		}
		// Garbage-collect learned constraints when the database has grown
		// past the threshold since the last collection.
		if s.eng.Stats.Learned-s.lastReduceAt > 4000 {
			s.eng.ReduceDB()
			s.lastReduceAt = s.eng.Stats.Learned
			s.trace.Emit(obs.EvReduceDB, "", s.eng.Stats.Learned, 0, "")
			s.lprState.Invalidate()
		}
	}
}

// luby returns the i-th element of the Luby restart sequence
// (1,1,2,1,1,2,4,…).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i+1 == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i+1 < (int64(1) << k) {
			return luby(i + 1 - (int64(1) << (k - 1)))
		}
	}
}
