package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/pb"
)

func TestOnIncumbentMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 30; iter++ {
		p := randomPBO(rng, 8, 8)
		if !pb.BruteForce(p).Feasible {
			continue
		}
		var seen []int64
		res := Solve(p, Options{
			LowerBound:  LBMIS,
			OnIncumbent: func(best int64) { seen = append(seen, best) },
		})
		if res.Status != StatusOptimal {
			t.Fatalf("iter %d: %v", iter, res.Status)
		}
		if len(seen) == 0 {
			t.Fatalf("iter %d: no incumbent reported", iter)
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] >= seen[i-1] {
				t.Fatalf("iter %d: incumbents not strictly improving: %v", iter, seen)
			}
		}
		if seen[len(seen)-1] != res.Best {
			t.Fatalf("iter %d: last incumbent %d != final best %d", iter, seen[len(seen)-1], res.Best)
		}
	}
}

func TestTimeLimitHonored(t *testing.T) {
	// An mcnc-like covering instance too big to solve in a millisecond.
	rng := rand.New(rand.NewSource(12))
	const n = 60
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(20)))
	}
	for i := 0; i < 120; i++ {
		var lits []pb.Lit
		for v := 0; v < n; v++ {
			if rng.Intn(10) == 0 {
				lits = append(lits, pb.PosLit(pb.Var(v)))
			}
		}
		if len(lits) == 0 {
			lits = append(lits, pb.PosLit(pb.Var(rng.Intn(n))))
		}
		_ = p.AddClause(lits...)
	}
	start := time.Now()
	res := Solve(p, Options{LowerBound: LBNone, TimeLimit: 50 * time.Millisecond})
	elapsed := time.Since(start)
	if res.Status == StatusLimit && elapsed > 2*time.Second {
		t.Fatalf("time limit ignored: ran %v", elapsed)
	}
	// Whatever the status, any reported solution must be feasible.
	if res.HasSolution && !p.Feasible(res.Values) {
		t.Fatal("reported infeasible incumbent")
	}
}

func TestPBLearningStatsCounted(t *testing.T) {
	// Conflict-rich 3-SAT near the phase transition mixed with PB budget
	// rows: the cutting-plane analysis fires and retains constraints.
	rng := rand.New(rand.NewSource(44))
	var totalPB int64
	for iter := 0; iter < 40; iter++ {
		n := 12
		p := pb.NewProblem(n)
		for i := 0; i < 52; i++ {
			lits := make([]pb.Lit, 3)
			for k := range lits {
				lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
			}
			_ = p.AddClause(lits...)
		}
		for i := 0; i < 3; i++ {
			terms := make([]pb.Term, 5)
			var sum int64
			for k := range terms {
				c := int64(1 + rng.Intn(4))
				sum += c
				terms[k] = pb.Term{Coef: c, Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, 1+rng.Int63n(sum-1))
		}
		res := Solve(p, Options{PBLearning: true, MaxConflicts: 50000})
		totalPB += res.Stats.PBLearned
	}
	if totalPB == 0 {
		t.Fatal("PB learning never derived a constraint across 40 instances")
	}
}

func TestMaxPBLearnedCap(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for iter := 0; iter < 20; iter++ {
		p := randomPBO(rng, 10, 14)
		res := Solve(p, Options{PBLearning: true, MaxPBLearned: 3, MaxConflicts: 50000})
		if res.Stats.PBLearned > 3 {
			t.Fatalf("cap violated: %d", res.Stats.PBLearned)
		}
	}
}

func TestValuesLengthAlwaysNumVars(t *testing.T) {
	p := pb.NewProblem(5)
	p.SetCost(0, 1)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	res := Solve(p, Options{LowerBound: LBLPR})
	if res.Status != StatusOptimal || len(res.Values) != 5 {
		t.Fatalf("values=%v", res.Values)
	}
}
