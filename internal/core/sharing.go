// Cooperative-portfolio hooks: the solver side of the sharing layer.
//
// core deliberately defines only the *interface* it needs (Sharer) and counts
// its own member-side events (SharingStats); the concrete board lives in
// internal/share and the wiring in internal/portfolio, keeping the import
// direction one-way (portfolio → core + share).
//
// Soundness in one paragraph (full argument in DESIGN.md §9): every clause
// this solver learns is implied by problem ∧ (cost ≤ upper−1), because the
// incumbent cuts (eq. 10/13) participate in conflict analysis. A clause is
// therefore only published *after* the incumbent justifying its assumptions
// was published to the board, so at any moment the board holds a feasible
// solution at least as good as the assumptions behind every clause in the
// ring. An importing member can consequently lose only solutions that are no
// better than a board incumbent, and finish() performs one final board poll
// so the member's terminal claim ("this incumbent is optimal" / "unsat")
// accounts for everything its imports assumed.
package core

import (
	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pb"
)

// Sharer connects one Solve call to a cooperative-portfolio board. All
// methods are invoked from the solver's own goroutine; implementations
// synchronize internally (see share.Member / share.Board). Costs are in the
// internal objective space (excluding pb.Problem.CostOffset); all members of
// a portfolio solve the identical problem, so internal costs are comparable.
type Sharer interface {
	// PublishIncumbent offers a feasible solution; it returns true when the
	// solution became the new global best. The implementation copies values.
	PublishIncumbent(cost int64, values []bool) bool
	// BestUB returns the current global upper bound (false when no member
	// has found a solution yet). Must be cheap: it is polled per node and
	// inside bound estimations.
	BestUB() (int64, bool)
	// BestIncumbent returns a private copy of the global best solution when
	// its cost is strictly below the given threshold.
	BestIncumbent(below int64) (cost int64, values []bool, ok bool)
	// PublishClause offers a learned clause with its LBD; it returns true
	// when the exchange accepted it (filters and dedup applied inside).
	PublishClause(lits []pb.Lit, lbd int) bool
	// DrainClauses delivers clauses published by other members since the
	// last drain. Delivered slices are read-only.
	DrainClauses(fn func(lits []pb.Lit))
}

// SharingStats counts one member's cooperative events (zero when
// Options.Share is nil).
type SharingStats struct {
	// IncumbentsPublished counts local incumbents offered to the board;
	// IncumbentsWon the subset that became the global best.
	IncumbentsPublished int64
	IncumbentsWon       int64
	// ForeignIncumbents counts upper bounds adopted from other members.
	ForeignIncumbents int64
	// ForeignRejected counts board incumbents that failed re-verification
	// (infeasible, wrong length, or a cost mismatch) and were NOT adopted.
	// Always 0 on a healthy board: a nonzero count means a member published
	// a corrupt certificate — with UB-only members in the portfolio this
	// check is what keeps a bad incumbent from ever becoming part of an
	// exhaustion proof.
	ForeignRejected int64
	// ForeignUBPrunes counts nodes pruned (path or bound conflicts) while
	// the incumbent in force was a foreign adoption — pruning this member
	// only got because another member found the solution.
	ForeignUBPrunes int64
	// UBInterrupts counts bound estimations cut short because a foreign
	// incumbent dropped the target mid-call (bounds.Budget.Interrupt).
	UBInterrupts int64
	// ClausesPublished / ClausesRejected count the exchange's verdicts on
	// this member's learned clauses (rejected = length/LBD filter or dup).
	ClausesPublished int64
	ClausesRejected  int64
	// ClausesImported counts foreign clauses installed into the engine
	// (ImportedUnits is the subset that arrived as root units).
	ClausesImported int64
	ImportedUnits   int64
	// ImportsDropped counts imports that were already satisfied or
	// tautological; ImportsRejected counts structurally invalid (corrupt)
	// imports; ImportConflicts counts imports conflicting at the root
	// (converted into exhaustion proofs).
	ImportsDropped  int64
	ImportsRejected int64
	ImportConflicts int64
}

// Active reports whether any sharing event was recorded.
func (s *SharingStats) Active() bool {
	return s.IncumbentsPublished != 0 || s.ForeignIncumbents != 0 ||
		s.ClausesPublished != 0 || s.ClausesRejected != 0 ||
		s.ClausesImported != 0 || s.ImportsDropped != 0 ||
		s.ImportsRejected != 0 || s.ImportConflicts != 0 ||
		s.ForeignUBPrunes != 0 || s.UBInterrupts != 0 ||
		s.ForeignRejected != 0
}

// verifyForeign re-verifies a board incumbent against the member's own
// problem before adoption: right length, feasible, and the claimed internal
// cost matches the assignment. Members trust the board for *pruning speed*
// (BestUB tightens budgets without a certificate) but never for *proofs*:
// an adopted incumbent becomes part of this member's terminal claim, so a
// corrupt one — a torn write, a UB-only member with a lifting bug — must be
// quarantined here rather than laundered into an "optimal"/"unsat" verdict.
func (s *solver) verifyForeign(cost int64, vals []bool) bool {
	if len(vals) != s.prob.NumVars || !s.prob.Feasible(vals) {
		return false
	}
	var c int64
	for v, cv := range s.prob.Cost {
		if cv != 0 && vals[v] {
			c += cv
		}
	}
	return c == cost
}

// publishIncumbent offers the freshly improved local incumbent to the board.
// Called with s.upper/s.bestVals already updated; must run before any clause
// learned under the new bound can be published (the ordering DESIGN.md §9's
// soundness argument rests on).
func (s *solver) publishIncumbent() {
	if s.opt.Share == nil {
		return
	}
	s.stats.Sharing.IncumbentsPublished++
	if s.opt.Share.PublishIncumbent(s.upper, s.bestVals) {
		s.stats.Sharing.IncumbentsWon++
		s.trace.Emit(obs.EvSharePublish, "incumbent", s.upper+s.prob.CostOffset, 0, "won")
	} else {
		s.trace.Emit(obs.EvSharePublish, "incumbent", s.upper+s.prob.CostOffset, 0, "lost")
	}
}

// adoptShared polls the board and, when another member holds a strictly
// better incumbent, adopts it: upper bound, assignment copy, and the
// incumbent cuts are all tightened exactly as for a locally found solution.
// One atomic load when there is nothing to adopt.
func (s *solver) adoptShared() {
	sh := s.opt.Share
	if sh == nil {
		return
	}
	cost, vals, ok := sh.BestIncumbent(s.upper)
	if !ok {
		return
	}
	if !s.verifyForeign(cost, vals) {
		s.stats.Sharing.ForeignRejected++
		s.trace.Emit(obs.EvIncumbent, "", cost+s.prob.CostOffset, 0, "foreign-rejected")
		return
	}
	s.upper = cost
	s.bestVals = vals
	s.upperForeign = true
	s.stats.Sharing.ForeignIncumbents++
	s.trace.Emit(obs.EvIncumbent, "", cost+s.prob.CostOffset, 0, "foreign")
	s.auditIncumbent()
	if s.opt.OnIncumbent != nil {
		s.opt.OnIncumbent(cost + s.prob.CostOffset)
	}
	// Tighten eq. 10/13 in place (and, in linear-search mode, restart from
	// the root with the tightened cost constraint — same as local finds).
	s.addIncumbentCuts()
}

// adoptFinal is the terminal board poll (see the package comment): before the
// solver reports its verdict, any strictly better board incumbent replaces
// the local one, making optimality claims exact and preventing a member whose
// imports assumed foreign incumbents from reporting "unsatisfiable" on a
// satisfiable instance.
func (s *solver) adoptFinal() {
	sh := s.opt.Share
	if sh == nil {
		return
	}
	if cost, vals, ok := sh.BestIncumbent(s.upper); ok {
		if !s.verifyForeign(cost, vals) {
			s.stats.Sharing.ForeignRejected++
			s.trace.Emit(obs.EvIncumbent, "", cost+s.prob.CostOffset, 0, "foreign-rejected")
			return
		}
		s.upper = cost
		s.bestVals = vals
		s.upperForeign = true
		s.trace.Emit(obs.EvIncumbent, "", cost+s.prob.CostOffset, 0, "foreign-final")
		s.stats.Sharing.ForeignIncumbents++
		s.auditIncumbent()
	}
}

// importShared drains the exchange ring into the engine. Called only at
// decision level 0 (restarts, root backjumps, and the first node). It
// returns false when an import conflicts at the root: the search space below
// the imports' cost assumptions is empty and the caller finishes with an
// exhaustion proof (adoptFinal supplies the matching incumbent).
func (s *solver) importShared() bool {
	sh := s.opt.Share
	if sh == nil || s.eng.DecisionLevel() != 0 {
		return true
	}
	// Audit support: the board's upper bound at drain time under-approximates
	// every cost assumption behind the drained clauses (publishers put their
	// incumbents on the board before their clauses enter the ring, and the
	// board UB only decreases), so imported clauses are replayed — and the
	// solver's own later learned clauses checked — under it.
	var boardUB int64
	var boardHasUB bool
	if s.aud != nil {
		boardUB, boardHasUB = sh.BestUB()
	}
	auditImport := func(lits []pb.Lit) {
		if s.aud == nil {
			return
		}
		s.aud.ImportedClause(lits, boardUB, boardHasUB)
		if boardHasUB && boardUB < s.minImportUB {
			s.minImportUB = boardUB
		}
	}
	ok := true
	installed0 := s.stats.Sharing.ClausesImported
	conflicts0 := s.stats.Sharing.ImportConflicts
	sh.DrainClauses(func(lits []pb.Lit) {
		switch s.eng.ImportClause(lits) {
		case engine.ImportAdded:
			s.stats.Sharing.ClausesImported++
			auditImport(lits)
		case engine.ImportUnit:
			s.stats.Sharing.ClausesImported++
			s.stats.Sharing.ImportedUnits++
			auditImport(lits)
		case engine.ImportSatisfied:
			s.stats.Sharing.ImportsDropped++
		case engine.ImportInvalid:
			s.stats.Sharing.ImportsRejected++
		case engine.ImportConflict:
			s.stats.Sharing.ImportConflicts++
			auditImport(lits)
			ok = false
		}
	})
	installed := s.stats.Sharing.ClausesImported - installed0
	conflicts := s.stats.Sharing.ImportConflicts - conflicts0
	if installed != 0 || conflicts != 0 {
		s.trace.Emit(obs.EvShareImport, "clause", installed, conflicts, "")
	}
	return ok
}

// shareMaxPublishLen caps the clauses considered for publication before the
// LBD computation; the exchange applies its own (typically much tighter)
// length filter on top. Keeps the per-conflict publication cost bounded.
const shareMaxPublishLen = 32

// publishLearnt offers a just-learned clause to the exchange. Runs after
// LearnAndBackjump, when every literal of the clause is assigned, so the LBD
// (distinct decision levels) is computable in one pass.
func (s *solver) publishLearnt(lits []pb.Lit) {
	sh := s.opt.Share
	if sh == nil || len(lits) == 0 {
		return
	}
	if len(lits) > shareMaxPublishLen {
		s.stats.Sharing.ClausesRejected++
		return
	}
	lbd := s.clauseLBD(lits)
	if sh.PublishClause(lits, lbd) {
		s.stats.Sharing.ClausesPublished++
		s.trace.Emit(obs.EvSharePublish, "clause", int64(len(lits)), int64(lbd), "accepted")
	} else {
		s.stats.Sharing.ClausesRejected++
		s.trace.Emit(obs.EvSharePublish, "clause", int64(len(lits)), int64(lbd), "rejected")
	}
}

// clauseLBD counts the distinct decision levels among the clause's literals
// (all assigned when called). Allocation-free for the short clauses that
// pass the publish cap.
func (s *solver) clauseLBD(lits []pb.Lit) int {
	var levels [shareMaxPublishLen]int
	n := 0
outer:
	for _, l := range lits {
		lvl := s.eng.Level(l.Var())
		for i := 0; i < n; i++ {
			if levels[i] == lvl {
				continue outer
			}
		}
		if n < len(levels) {
			levels[n] = lvl
			n++
		}
	}
	return n
}

// shareInterruptBudget arms bud with the UB-aware interrupt: the estimation
// stops early (sound, Incomplete) as soon as the board's upper bound drops
// below the upper this node's target was computed from.
func (s *solver) shareInterruptBudget(bud *bounds.Budget) {
	sh := s.opt.Share
	if sh == nil {
		return
	}
	base := s.upper
	bud.Interrupt = func() bool {
		if ub, ok := sh.BestUB(); ok && ub < base {
			s.stats.Sharing.UBInterrupts++
			return true
		}
		return false
	}
}
