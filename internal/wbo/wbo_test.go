package wbo

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
)

func softClause(w int64, lits ...pb.Lit) SoftCons {
	terms := make([]pb.Term, len(lits))
	for i, l := range lits {
		terms[i] = pb.Term{Coef: 1, Lit: l}
	}
	return SoftCons{Weight: w, Terms: terms, Cmp: pb.GE, Rhs: 1}
}

func hardClause(lits ...pb.Lit) HardCons {
	terms := make([]pb.Term, len(lits))
	for i, l := range lits {
		terms[i] = pb.Term{Coef: 1, Lit: l}
	}
	return HardCons{Terms: terms, Cmp: pb.GE, Rhs: 1}
}

func TestCoreGuidedBasics(t *testing.T) {
	// Hard: x0 ∨ x1. Softs: ¬x0 (3), ¬x1 (5). Optimum pays 3.
	in := &Instance{
		NumVars: 2,
		Hard:    []HardCons{hardClause(pb.PosLit(0), pb.PosLit(1))},
		Soft:    []SoftCons{softClause(3, pb.NegLit(0)), softClause(5, pb.NegLit(1))},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusOptimal || res.Best != 3 {
		t.Fatalf("status=%v best=%d err=%v want optimal/3", res.Status, res.Best, res.Err)
	}
	if res.LowerBound != 3 {
		t.Fatalf("lb=%d want 3", res.LowerBound)
	}
	if len(res.Violated) != 1 || res.Violated[0] != 0 {
		t.Fatalf("violated=%v want [0]", res.Violated)
	}
	if res.Cores == 0 {
		t.Fatal("expected at least one extracted core")
	}
}

func TestCoreGuidedWeightSplit(t *testing.T) {
	// Both softs conflict pairwise with weight asymmetry: the WPM1 split
	// must leave residual weight behind. x0 forced; softs ¬x0 (7) and ¬x0
	// (2) — two cores or one, either way optimum = 9.
	in := &Instance{
		NumVars: 1,
		Hard:    []HardCons{hardClause(pb.PosLit(0))},
		Soft:    []SoftCons{softClause(7, pb.NegLit(0)), softClause(2, pb.NegLit(0))},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusOptimal || res.Best != 9 {
		t.Fatalf("status=%v best=%d err=%v want optimal/9", res.Status, res.Best, res.Err)
	}
}

func TestCoreGuidedHardUnsat(t *testing.T) {
	in := &Instance{
		NumVars: 1,
		Hard:    []HardCons{hardClause(pb.PosLit(0)), hardClause(pb.NegLit(0))},
		Soft:    []SoftCons{softClause(4, pb.PosLit(0))},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusUnsat || !res.HardUnsat {
		t.Fatalf("status=%v hardUnsat=%v want unsat/true", res.Status, res.HardUnsat)
	}
	if res.HasSolution {
		t.Fatal("hard-UNSAT must carry no witness")
	}
}

func TestCoreGuidedAllSoftsViolated(t *testing.T) {
	// Hards feasible but every soft violated: optimum with full penalty,
	// NOT HardUnsat — the distinction satellite.
	in := &Instance{
		NumVars: 2,
		Hard:    []HardCons{hardClause(pb.PosLit(0)), hardClause(pb.PosLit(1))},
		Soft:    []SoftCons{softClause(3, pb.NegLit(0)), softClause(5, pb.NegLit(1))},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusOptimal || res.Best != 8 || res.HardUnsat {
		t.Fatalf("status=%v best=%d hardUnsat=%v want optimal/8/false", res.Status, res.Best, res.HardUnsat)
	}
}

func TestCoreGuidedEqualityAndPBSofts(t *testing.T) {
	// Soft equality x0 + x1 = 1 (weight 4) with hards forcing x0 = x1:
	// unavoidable penalty 4. Exercises EQ selector rows in the assumption
	// loop and the blocker-frees-both-rows clone shape.
	in := &Instance{
		NumVars: 2,
		Hard: []HardCons{
			hardClause(pb.NegLit(0), pb.PosLit(1)),
			hardClause(pb.PosLit(0), pb.NegLit(1)),
		},
		Soft: []SoftCons{{Weight: 4,
			Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}},
			Cmp:   pb.EQ, Rhs: 1}},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusOptimal || res.Best != 4 {
		t.Fatalf("status=%v best=%d err=%v want optimal/4", res.Status, res.Best, res.Err)
	}
}

func TestCoreGuidedOffset(t *testing.T) {
	in := &Instance{
		NumVars: 1,
		Offset:  10,
		Hard:    []HardCons{hardClause(pb.PosLit(0))},
		Soft:    []SoftCons{softClause(2, pb.NegLit(0))},
	}
	res := Solve(in, Options{})
	if res.Status != core.StatusOptimal || res.Best != 12 || res.LowerBound != 12 {
		t.Fatalf("status=%v best=%d lb=%d want optimal/12/12", res.Status, res.Best, res.LowerBound)
	}
}

func TestCoreGuidedRejectsBadInstances(t *testing.T) {
	if res := Solve(&Instance{NumVars: 1, Soft: []SoftCons{softClause(0, pb.PosLit(0))}}, Options{}); res.Status != core.StatusError {
		t.Fatalf("zero weight accepted: %v", res.Status)
	}
	if res := Solve(&Instance{NumVars: 1, Soft: []SoftCons{softClause(1, pb.PosLit(3))}}, Options{}); res.Status != core.StatusError {
		t.Fatalf("out-of-range literal accepted: %v", res.Status)
	}
}

// randInstance builds a small random WBO instance with mixed clause / PB /
// equality softs.
func randInstance(rng *rand.Rand) *Instance {
	n := 2 + rng.Intn(4)
	in := &Instance{NumVars: n}
	nh := rng.Intn(3)
	for i := 0; i < nh; i++ {
		var lits []pb.Lit
		nl := 1 + rng.Intn(3)
		for k := 0; k < nl; k++ {
			lits = append(lits, pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0))
		}
		in.Hard = append(in.Hard, hardClause(lits...))
	}
	ns := 1 + rng.Intn(4)
	for i := 0; i < ns; i++ {
		nt := 1 + rng.Intn(3)
		terms := make([]pb.Term, nt)
		for k := range terms {
			c := int64(rng.Intn(5) - 2)
			if c == 0 {
				c = 1
			}
			terms[k] = pb.Term{Coef: c, Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
		}
		in.Soft = append(in.Soft, SoftCons{
			Weight: int64(1 + rng.Intn(6)),
			Terms:  terms,
			Cmp:    pb.Cmp(rng.Intn(3)),
			Rhs:    int64(rng.Intn(4) - 1),
		})
	}
	return in
}

// TestCoreGuidedAgainstBruteForce is the package's own differential gate:
// the core-guided optimum must equal the brute-force minimum penalty over
// all hard-feasible assignments, on instances mixing clause, PB and
// equality softs (the fuzz matrix repeats this against B&B at scale).
func TestCoreGuidedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(929))
	for iter := 0; iter < 200; iter++ {
		in := randInstance(rng)
		res := Solve(in, Options{MaxConflicts: 200000})
		if res.Status == core.StatusLimit {
			t.Fatalf("iter %d: budget blown on a tiny instance (err=%v)", iter, res.Err)
		}

		best := int64(-1)
		n := in.NumVars
		for mask := 0; mask < 1<<n; mask++ {
			vals := make([]bool, n)
			for v := 0; v < n; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			feasible := true
			for hi := range in.Hard {
				h := HardCons(in.Hard[hi])
				sc := SoftCons{Weight: 1, Terms: h.Terms, Cmp: h.Cmp, Rhs: h.Rhs}
				if !sc.eval(vals) {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			p, _ := in.Penalty(vals)
			if best < 0 || p < best {
				best = p
			}
		}

		if best < 0 {
			if res.Status != core.StatusUnsat || !res.HardUnsat {
				t.Fatalf("iter %d: hard-infeasible but status=%v hardUnsat=%v", iter, res.Status, res.HardUnsat)
			}
			continue
		}
		if res.Status != core.StatusOptimal {
			t.Fatalf("iter %d: status=%v err=%v want optimal", iter, res.Status, res.Err)
		}
		if res.Best != best {
			t.Fatalf("iter %d: best=%d want %d", iter, res.Best, best)
		}
		// The witness must achieve the claimed cost.
		p, _ := in.Penalty(res.Values)
		if p != best {
			t.Fatalf("iter %d: witness penalty %d != claimed %d", iter, p, best)
		}
		// And the extended witness must be feasible for the compiled
		// (B&B-path) problem at the same cost.
		b, err := in.Builder()
		if err != nil {
			t.Fatal(err)
		}
		cp, _ := b.Problem()
		ext := in.ExtendedWitness(res.Values)
		if !cp.Feasible(ext) {
			t.Fatalf("iter %d: extended witness infeasible in compiled space", iter)
		}
		if got := cp.ObjectiveValue(ext); got != best {
			t.Fatalf("iter %d: extended witness cost %d want %d", iter, got, best)
		}
	}
}

func TestCoreGuidedMatchesBranchAndBound(t *testing.T) {
	// The portfolio-facing property: core-guided and B&B (over the compiled
	// relaxation) prove the same optimum.
	rng := rand.New(rand.NewSource(1213))
	for iter := 0; iter < 60; iter++ {
		in := randInstance(rng)
		cg := Solve(in, Options{MaxConflicts: 200000})
		b, err := in.Builder()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := b.Solve(core.Options{LowerBound: core.LBMIS, MaxConflicts: 200000})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case sol.HardUnsat:
			if cg.Status != core.StatusUnsat || !cg.HardUnsat {
				t.Fatalf("iter %d: B&B hard-unsat, core-guided %v", iter, cg.Status)
			}
		case sol.Status == core.StatusOptimal:
			if cg.Status != core.StatusOptimal || cg.Best != sol.Best {
				t.Fatalf("iter %d: core-guided %v/%d, B&B optimal/%d", iter, cg.Status, cg.Best, sol.Best)
			}
		}
	}
}

func TestCoreGuidedIterationLimit(t *testing.T) {
	// A chain of pairwise conflicts needs multiple cores; a 1-iteration cap
	// must come back as StatusLimit with a sound lower bound.
	in := &Instance{
		NumVars: 2,
		Hard:    []HardCons{hardClause(pb.PosLit(0)), hardClause(pb.PosLit(1))},
		Soft:    []SoftCons{softClause(3, pb.NegLit(0)), softClause(5, pb.NegLit(1))},
	}
	res := Solve(in, Options{MaxIterations: 1})
	if res.Status != core.StatusLimit {
		t.Fatalf("status=%v want limit", res.Status)
	}
	if res.LowerBound > 8 {
		t.Fatalf("lb=%d exceeds optimum 8", res.LowerBound)
	}
}

func TestCoreGuidedCardRewrite(t *testing.T) {
	// A hard constraint that is a semantic cardinality constraint
	// (3x0 + 3x1 + 2x2 ≥ 5 ⟺ at least 2 of {x0,x1,x2}) must be rewritten
	// to unit coefficients by the normalization pass — and the pass must
	// stay off when disabled — without changing the answer. (Clause softs
	// need no rewrite: coefficient clipping already normalizes their big-M
	// rows to uniform form.)
	in := &Instance{
		NumVars: 3,
		Hard: []HardCons{{Terms: []pb.Term{
			{Coef: 3, Lit: pb.PosLit(0)},
			{Coef: 3, Lit: pb.PosLit(1)},
			{Coef: 2, Lit: pb.PosLit(2)},
		}, Cmp: pb.GE, Rhs: 5}},
		Soft: []SoftCons{softClause(3, pb.NegLit(0), pb.NegLit(1))},
	}
	on := Solve(in, Options{})
	off := Solve(in, Options{NoCardRewrite: true})
	if on.Status != core.StatusOptimal || off.Status != core.StatusOptimal || on.Best != off.Best {
		t.Fatalf("on=%v/%d off=%v/%d", on.Status, on.Best, off.Status, off.Best)
	}
	if on.CardRewrites == 0 {
		t.Fatal("expected cardinality rewrites on clause softs")
	}
	if off.CardRewrites != 0 {
		t.Fatal("NoCardRewrite must disable the pass")
	}
}
