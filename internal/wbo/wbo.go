// Package wbo implements Weighted Boolean Optimization — partial weighted
// MaxSAT over pseudo-Boolean constraints — with core-guided search, the
// Fu–Malik/WPM1 algorithm of Manquinho, Marques-Silva and Planes
// ("Algorithms for Weighted Boolean Optimization"): instead of branch-and-
// bound over the soft-relaxed compilation, iteratively ask the engine for a
// satisfying assignment in which EVERY soft constraint holds (selector
// variables assumed off, core.Options.Assumptions), and use each refusal's
// unsat core to relax exactly the constraints that provably cannot all hold:
//
//  1. Solve hard ∧ soft-rows under assumptions {¬sel_i}.
//  2. SAT → the lower bound accumulated so far is the optimum; the witness
//     achieves it (see the soundness note below).
//  3. UNSAT with an empty core → the HARD constraints are infeasible.
//  4. UNSAT with core K ⊆ softs: let wmin = min weight in K. Add wmin to the
//     lower bound. For every soft s ∈ K: keep a residual copy at weight
//     w_s − wmin (if positive), and add a CLONE at weight wmin extended with
//     a fresh blocking variable b_s (soft.SoftWithRelaxers — the blocker
//     buys the clone off completely, both rows of an equality). Add the
//     hard at-most-one constraint Σ_{s∈K} b_s ≤ 1 and iterate.
//
// Soundness sketch (DESIGN.md §16): the core proves every hard-feasible
// assignment violates ≥ 1 member of K, i.e. pays ≥ wmin, so the optimum of
// the transformed instance is exactly wmin less — the AMO row lets one
// violated member be "paid for" by its blocker while every additional
// violated member still pays its residual + clone in full. By induction the
// accumulated lower bound is always ≤ the optimum, and at the terminal SAT
// the witness's penalty over the ORIGINAL soft constraints equals it:
// a soft can only be violated in the witness when its weight was fully
// consumed by cores, each violated soft needs one blocker per consuming
// core, and each core's AMO funds at most one violated soft — so the
// witness penalty is ≤ Σ wmin = lb ≤ optimum ≤ witness penalty. The solver
// still verifies penalty == lb defensively and degrades the claim to an
// upper bound (StatusLimit) on any mismatch rather than asserting a wrong
// optimum.
package wbo

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cuts"
	"repro/internal/pb"
	"repro/internal/soft"
)

// HardCons is a mandatory constraint Σ Terms Cmp Rhs.
type HardCons struct {
	Terms []pb.Term
	Cmp   pb.Cmp
	Rhs   int64
}

// SoftCons is a violable constraint with a positive violation weight.
type SoftCons struct {
	Weight int64
	Terms  []pb.Term
	Cmp    pb.Cmp
	Rhs    int64
}

// Instance is a WBO problem: hard constraints plus weighted soft constraints
// over NumVars original variables. The objective is the total weight of
// violated soft constraints plus Offset.
type Instance struct {
	NumVars int
	// Names optionally maps variables to external names (value lines).
	Names []string
	Hard  []HardCons
	Soft  []SoftCons
	// Offset is a constant added to every reported cost (e.g. from soft
	// constraints that can never be satisfied, folded away by a reader).
	Offset int64
}

// eval reports whether the soft constraint holds under values.
func (sc *SoftCons) eval(values []bool) bool {
	var lhs int64
	for _, t := range sc.Terms {
		if t.Lit.Eval(values[t.Lit.Var()]) {
			lhs += t.Coef
		}
	}
	switch sc.Cmp {
	case pb.GE:
		return lhs >= sc.Rhs
	case pb.LE:
		return lhs <= sc.Rhs
	default:
		return lhs == sc.Rhs
	}
}

// Validate checks weights, variable ranges and objective headroom.
func (in *Instance) Validate() error {
	if in.NumVars < 0 {
		return fmt.Errorf("wbo: negative variable count %d", in.NumVars)
	}
	check := func(terms []pb.Term) error {
		for _, t := range terms {
			if v := int(t.Lit.Var()); v < 0 || v >= in.NumVars {
				return fmt.Errorf("wbo: literal %v out of range [0,%d)", t.Lit, in.NumVars)
			}
		}
		return nil
	}
	for i := range in.Hard {
		if err := check(in.Hard[i].Terms); err != nil {
			return err
		}
	}
	total := in.Offset
	if total < 0 {
		var err error
		if total, err = pb.CheckedNeg(total); err != nil {
			return fmt.Errorf("wbo: offset: %w", err)
		}
	}
	for i := range in.Soft {
		sc := &in.Soft[i]
		if sc.Weight <= 0 {
			return fmt.Errorf("wbo: soft constraint %d: weight must be positive, got %d", i, sc.Weight)
		}
		if err := check(sc.Terms); err != nil {
			return err
		}
		var err error
		if total, err = pb.CheckedAdd(total, sc.Weight); err != nil {
			return fmt.Errorf("wbo: total soft weight: %w", err)
		}
	}
	if total > pb.MaxObjective {
		return fmt.Errorf("wbo: total soft weight %d exceeds solver headroom %d: %w",
			total, pb.MaxObjective, pb.ErrOverflow)
	}
	return nil
}

// Penalty evaluates the witness against the original soft constraints:
// the total violated weight (excluding Offset) and the violated indices.
func (in *Instance) Penalty(values []bool) (int64, []int) {
	var p int64
	var violated []int
	for i := range in.Soft {
		if !in.Soft[i].eval(values) {
			p += in.Soft[i].Weight
			violated = append(violated, i)
		}
	}
	return p, violated
}

// Builder compiles the instance through soft.Builder for the branch-and-
// bound path: every soft constraint becomes its big-M relaxation with the
// violation weight on the selector variable (selector of soft i =
// b.RelaxVar(i) = variable NumVars+i). The compiled problem's optimum equals
// the WBO optimum minus Offset.
func (in *Instance) Builder() (*soft.Builder, error) {
	b := soft.NewBuilder(in.NumVars)
	for i := range in.Hard {
		b.Hard(in.Hard[i].Terms, in.Hard[i].Cmp, in.Hard[i].Rhs)
	}
	for i := range in.Soft {
		b.Soft(in.Soft[i].Weight, in.Soft[i].Terms, in.Soft[i].Cmp, in.Soft[i].Rhs)
	}
	if _, err := b.Problem(); err != nil {
		return nil, err
	}
	return b, nil
}

// ExtendedWitness maps an original-variable witness into the compiled
// (Builder) space: selectors are set exactly on the violated softs, which
// keeps the compiled rows feasible and the compiled cost equal to the
// penalty. Used to replay core-guided incumbents against an auditor or a
// share board scoped to the compiled problem.
func (in *Instance) ExtendedWitness(values []bool) []bool {
	out := make([]bool, in.NumVars+len(in.Soft))
	copy(out, values[:in.NumVars])
	for i := range in.Soft {
		out[in.NumVars+i] = !in.Soft[i].eval(values)
	}
	return out
}

// Options configure a core-guided solve.
type Options struct {
	// TimeLimit bounds total wall clock across all iterations (0 = none).
	TimeLimit time.Duration
	// Cancel, when closed, stops the solve at the next iteration boundary
	// (and mid-iteration through the engine's interrupt hook).
	Cancel <-chan struct{}
	// MaxConflicts bounds the total BCP conflicts across iterations (0 =
	// none); each sub-solve receives the remaining budget.
	MaxConflicts int64
	// MaxIterations bounds relaxation rounds (0 = none); mostly for tests.
	MaxIterations int
	// NoCardRewrite disables the semantic-cardinality normalization pass
	// (cuts.DetectCardinality) on the compiled rows of each iteration.
	NoCardRewrite bool
	// OnIterate, when non-nil, observes each extracted core: iteration
	// number, core size, and the lower bound after accounting it (including
	// the instance Offset).
	OnIterate func(iter, coreSize int, lb int64)
}

// Result is the outcome of a core-guided solve.
type Result struct {
	// Status: StatusOptimal (penalty optimum proved), StatusUnsat (hard
	// skeleton infeasible — see HardUnsat), StatusLimit (budget exhausted;
	// LowerBound still valid, Values/Best carry a witness only if the
	// terminal penalty check failed), or StatusError.
	Status core.Status
	// HardUnsat distinguishes "the hard constraints are infeasible" from
	// "the optimum pays penalties": it is set exactly when Status is
	// StatusUnsat, and a fully-violated-softs instance instead reports
	// StatusOptimal with Best = total weight + Offset.
	HardUnsat   bool
	HasSolution bool
	// Best is the witness penalty + Offset (with HasSolution).
	Best int64
	// Values is the witness over the ORIGINAL variables.
	Values []bool
	// Violated lists violated original soft-constraint indices.
	Violated []int
	// LowerBound is the proved optimum lower bound + Offset; valid on every
	// status except StatusError (on StatusOptimal it equals Best).
	LowerBound int64
	// Iterations counts engine sub-solves; Cores counts extracted unsat
	// cores (Iterations = Cores + 1 on a clean optimal run).
	Iterations int
	Cores      int
	// CardRewrites counts compiled rows normalized to cardinality form.
	CardRewrites int64
	// Conflicts totals BCP conflicts across sub-solves.
	Conflicts int64
	Err       error
}

// workSoft is a soft constraint in the working (relaxed) instance: the
// original terms plus the blocking variables accumulated from the cores it
// participated in. Blockers live in the extended variable space [NumVars, nv).
type workSoft struct {
	weight   int64
	terms    []pb.Term
	cmp      pb.Cmp
	rhs      int64
	blockers []pb.Var
}

// Solve runs the core-guided loop. The instance is not modified.
func Solve(in *Instance, opt Options) Result {
	if err := in.Validate(); err != nil {
		return Result{Status: core.StatusError, Err: err}
	}
	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	nv := in.NumVars
	hards := append([]HardCons(nil), in.Hard...)
	work := make([]*workSoft, 0, len(in.Soft))
	for i := range in.Soft {
		sc := &in.Soft[i]
		work = append(work, &workSoft{weight: sc.Weight, terms: sc.Terms, cmp: sc.Cmp, rhs: sc.Rhs})
	}

	res := Result{LowerBound: in.Offset}
	lb := int64(0) // accumulated core weight, excluding Offset

	for {
		if opt.MaxIterations > 0 && res.Iterations >= opt.MaxIterations {
			res.Status = core.StatusLimit
			return res
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			res.Status = core.StatusLimit
			return res
		}
		if cancelled(opt.Cancel) {
			res.Status = core.StatusLimit
			return res
		}

		// Compile the working instance: hards (original + accumulated AMO
		// rows) and the working softs with their blockers. Selector costs
		// are zeroed — the sub-query is pure feasibility; the weights live
		// in the core arithmetic, not the compiled objective.
		b := soft.NewBuilder(nv)
		for i := range hards {
			b.Hard(hards[i].Terms, hards[i].Cmp, hards[i].Rhs)
		}
		sel := make(map[pb.Var]int, len(work)) // selector var -> work index
		assumptions := make([]pb.Lit, 0, len(work))
		for i, ws := range work {
			idx := b.SoftWithRelaxers(ws.weight, ws.terms, ws.cmp, ws.rhs, ws.blockers...)
			if idx < 0 {
				res.Status, res.Err = core.StatusError, b.Err()
				return res
			}
			v := b.RelaxVar(idx)
			sel[v] = i
			assumptions = append(assumptions, pb.NegLit(v))
		}
		p, err := b.Problem()
		if err != nil {
			res.Status, res.Err = core.StatusError, err
			return res
		}
		for i := range p.Cost {
			p.Cost[i] = 0
		}
		if !opt.NoCardRewrite {
			res.CardRewrites += normalizeCardinality(p)
		}

		sub := core.Options{Assumptions: assumptions, Cancel: opt.Cancel}
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				res.Status = core.StatusLimit
				return res
			}
			sub.TimeLimit = rem
		}
		if opt.MaxConflicts > 0 {
			rem := opt.MaxConflicts - res.Conflicts
			if rem <= 0 {
				res.Status = core.StatusLimit
				return res
			}
			sub.MaxConflicts = rem
		}
		r := core.Solve(p, sub)
		res.Iterations++
		res.Conflicts += r.Stats.Conflicts

		switch r.Status {
		case core.StatusSatisfiable:
			vals := append([]bool(nil), r.Values[:in.NumVars]...)
			penalty, violated := in.Penalty(vals)
			res.HasSolution = true
			res.Values = vals
			res.Violated = violated
			res.Best = penalty + in.Offset
			res.LowerBound = lb + in.Offset
			if penalty != lb {
				// The WPM1 invariant (witness penalty == accumulated core
				// weight) failed — a bug, not a property of the instance.
				// Degrade to an upper bound instead of claiming a wrong
				// optimum; LowerBound stays sound.
				res.Status = core.StatusLimit
				res.Err = fmt.Errorf("wbo: witness penalty %d != proved lower bound %d (degrading to upper bound)",
					penalty, lb)
				return res
			}
			res.Status = core.StatusOptimal
			return res

		case core.StatusUnsat:
			if len(r.FailedAssumptions) == 0 {
				res.Status = core.StatusUnsat
				res.HardUnsat = true
				res.LowerBound = lb + in.Offset
				return res
			}
			coreIdx := make([]int, 0, len(r.FailedAssumptions))
			seen := make(map[int]bool, len(r.FailedAssumptions))
			for _, l := range r.FailedAssumptions {
				i, ok := sel[l.Var()]
				if !ok || seen[i] {
					continue
				}
				seen[i] = true
				coreIdx = append(coreIdx, i)
			}
			if len(coreIdx) == 0 {
				// Cannot happen (assumptions are exactly the selectors);
				// defensive: refuse to loop forever.
				res.Status = core.StatusError
				res.Err = fmt.Errorf("wbo: unsat core %v contains no selector", r.FailedAssumptions)
				return res
			}
			wmin := work[coreIdx[0]].weight
			for _, i := range coreIdx[1:] {
				if work[i].weight < wmin {
					wmin = work[i].weight
				}
			}
			if lb, err = pb.CheckedAdd(lb, wmin); err != nil {
				res.Status, res.Err = core.StatusError, fmt.Errorf("wbo: lower bound: %w", err)
				return res
			}
			res.Cores++

			if len(coreIdx) == 1 {
				// Singleton core: the constraint can never hold given the
				// hards — its remaining weight is paid unconditionally and
				// it leaves the working set (a clone would just carry a
				// blocker forced on forever).
				work = removeWork(work, coreIdx[0])
			} else {
				amo := make([]pb.Term, 0, len(coreIdx))
				var clones []*workSoft
				drop := make(map[int]bool, len(coreIdx))
				for _, i := range coreIdx {
					ws := work[i]
					blocker := pb.Var(nv)
					nv++
					amo = append(amo, pb.Term{Coef: 1, Lit: pb.PosLit(blocker)})
					clone := &workSoft{
						weight:   wmin,
						terms:    ws.terms,
						cmp:      ws.cmp,
						rhs:      ws.rhs,
						blockers: append(append([]pb.Var(nil), ws.blockers...), blocker),
					}
					clones = append(clones, clone)
					if ws.weight > wmin {
						ws.weight -= wmin // residual keeps its blockers as-is
					} else {
						drop[i] = true
					}
				}
				kept := work[:0]
				for i, ws := range work {
					if !drop[i] {
						kept = append(kept, ws)
					}
				}
				work = append(kept, clones...)
				hards = append(hards, HardCons{Terms: amo, Cmp: pb.LE, Rhs: 1})
			}
			if opt.OnIterate != nil {
				opt.OnIterate(res.Iterations, len(coreIdx), lb+in.Offset)
			}

		case core.StatusLimit:
			res.Status = core.StatusLimit
			res.LowerBound = lb + in.Offset
			return res

		default: // StatusError (or unexpected StatusOptimal on a cost-free problem)
			res.Status = core.StatusError
			res.Err = r.Err
			if res.Err == nil {
				res.Err = fmt.Errorf("wbo: unexpected sub-solve status %v", r.Status)
			}
			return res
		}
	}
}

// removeWork deletes index i preserving order (indices in sel maps are
// rebuilt every iteration, so renumbering is safe here).
func removeWork(work []*workSoft, i int) []*workSoft {
	return append(work[:i], work[i+1:]...)
}

// normalizeCardinality rewrites compiled rows that are semantic cardinality
// constraints (cuts.DetectCardinality) into unit-coefficient form: big-M
// clause relaxations like x1+…+xk + (k+1)·sel + (k+1)·b ≥ 1 propagate
// identically but count and watch far better as x1+…+xk + sel + b ≥ 1.
// Returns the number of rewritten rows.
func normalizeCardinality(p *pb.Problem) int64 {
	var n int64
	for _, c := range p.Constraints {
		uniform := true
		for _, t := range c.Terms {
			if t.Coef != c.Terms[0].Coef {
				uniform = false
				break
			}
		}
		if uniform {
			continue // already cardinality-shaped
		}
		if need, ok := cuts.DetectCardinality(c.Terms, c.Degree); ok {
			c.Terms = cuts.UnitTerms(c.Terms)
			c.Degree = int64(need)
			n++
		}
	}
	return n
}

func cancelled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
