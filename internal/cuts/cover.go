package cuts

import (
	"math"
	"sort"

	"repro/internal/pb"
)

// Separator-side size caps: rows longer than maxCoverRow are skipped (cover
// separation is quadratic-ish in the row length), at most maxLift variables
// are lifted into one cover, and the lifting DP's profit axis is capped at
// maxLiftProfit (profits are the cut coefficients; the DP is
// min-weight-per-profit, so the cap bounds its table, not its soundness —
// lifting just stops early).
const (
	maxCoverRow   = 128
	maxLift       = 16
	maxLiftProfit = 256
)

// separateCover derives one lifted knapsack-cover cut from an original row
// Σ a_j·l_j ≥ d, violated by the LP point frac, or reports ok=false.
//
// The derivation works in the complemented space y_j = ¬l_j, where the row
// reads Σ a_j·y_j ≤ b with b = Σa − d (the row's slack). A cover is a set C
// with Σ_C a_j > b: its literals cannot all be false, so Σ_C y_j ≤ |C|−1 is
// valid. The greedy picks complements closest to 1 at the LP point (the
// most violated direction), then minimalizes the cover.
//
// Sequential lifting then strengthens the cover inequality with non-cover
// terms β_t·y_t. Each β_t is the *exact* maximal valid coefficient
//
//	β_t = R − max{ Σ_{C∪L} profit_j·y_j : Σ a_j·y_j ≤ b − a_t }
//
// (R = |C|−1, L = previously lifted, profit = 1 on C and β_k on L),
// computed by a min-weight-per-profit knapsack DP over the small item set —
// exactness matters because an overestimated β is an invalid cut, and the
// fuzz auditor replays every pooled cut against the original problem.
// Candidates are visited in descending-coefficient order (the engine's
// stored span order), which is the classical lifting order.
//
// Back in literal space (y = 1−l) the lifted cut is
//
//	Σ_C l_j + Σ_L β_t·l_t ≥ 1 + Σ_L β_t.
func separateCover(src Source, frac func(pb.Lit) float64, minViol float64) (Cut, bool) {
	n := len(src.Lits)
	if n < 2 || n > maxCoverRow || src.Degree <= 0 {
		return Cut{}, false
	}
	b := src.slack()
	if b <= 0 {
		// Zero slack: every literal is forced true — propagation's business,
		// and the complemented knapsack admits no cover structure.
		return Cut{}, false
	}

	// LP values of the complements, the greedy's sort key.
	ys := make([]float64, n)
	for j, l := range src.Lits {
		ys[j] = clamp01(1 - frac(l))
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, c int) bool {
		if ys[order[a]] != ys[order[c]] {
			return ys[order[a]] > ys[order[c]]
		}
		return src.Coefs[order[a]] > src.Coefs[order[c]]
	})

	// Greedy cover: most-violated complements first until the weight
	// exceeds the capacity.
	var cover []int
	var wsum int64
	for _, j := range order {
		cover = append(cover, j)
		wsum += src.Coefs[j]
		if wsum > b {
			break
		}
	}
	if wsum <= b {
		return Cut{}, false // the whole row fits: no cover exists
	}
	// Minimalize from the least-violated end: drop members the cover
	// property survives without.
	for k := len(cover) - 1; k >= 0 && len(cover) > 1; k-- {
		if wsum-src.Coefs[cover[k]] > b {
			wsum -= src.Coefs[cover[k]]
			cover = append(cover[:k], cover[k+1:]...)
		}
	}
	r := int64(len(cover) - 1)
	if r < 1 {
		// A singleton cover means one literal is forced true; leave that to
		// propagation rather than pooling a unit cut.
		return Cut{}, false
	}

	inCover := make([]bool, n)
	for _, j := range cover {
		inCover[j] = true
	}

	// Min-weight-per-profit DP state over C ∪ L. minw[p] = least knapsack
	// weight attaining profit exactly p; maxProfit tracks the attainable
	// total so β queries never read junk.
	minw := make([]int64, maxLiftProfit+1)
	for p := range minw {
		minw[p] = math.MaxInt64
	}
	minw[0] = 0
	maxProfit := 0
	addItem := func(weight, profit int64) {
		top := maxProfit + int(profit)
		if top > maxLiftProfit {
			top = maxLiftProfit
		}
		for p := top; p >= int(profit); p-- {
			if prev := minw[p-int(profit)]; prev != math.MaxInt64 && prev+weight < minw[p] {
				minw[p] = prev + weight
			}
		}
		maxProfit = top
	}
	// maxPack(W) = max profit packable within weight W.
	maxPack := func(w int64) int64 {
		for p := maxProfit; p > 0; p-- {
			if minw[p] <= w {
				return int64(p)
			}
		}
		return 0
	}
	for _, j := range cover {
		addItem(src.Coefs[j], 1)
	}

	type lifted struct {
		j    int
		beta int64
	}
	var lifts []lifted
	var betaSum int64
	if int(r) < maxLiftProfit {
		// Lifting order: descending coefficient across the non-cover span.
		cand := make([]int, 0, n-len(cover))
		for j := 0; j < n; j++ {
			if !inCover[j] {
				cand = append(cand, j)
			}
		}
		sort.Slice(cand, func(a, c int) bool { return src.Coefs[cand[a]] > src.Coefs[cand[c]] })
		for _, j := range cand {
			if len(lifts) >= maxLift {
				break
			}
			a := src.Coefs[j]
			if a > b {
				// y_j = 1 alone overflows the knapsack: l_j is forced true by
				// the row itself; propagation handles it.
				continue
			}
			beta := r - maxPack(b-a)
			if beta < 1 {
				continue
			}
			if maxProfit+int(beta) > maxLiftProfit {
				break // DP table exhausted; stop lifting (still valid)
			}
			lifts = append(lifts, lifted{j, beta})
			betaSum += beta
			addItem(a, beta)
		}
	}

	// Violation test at the LP point, in y-space: the cut reads
	// Σ_C y + Σ_L β·y ≤ r, so it separates iff the lhs exceeds r.
	lhs := 0.0
	for _, j := range cover {
		lhs += ys[j]
	}
	for _, lf := range lifts {
		lhs += float64(lf.beta) * ys[lf.j]
	}
	if lhs <= float64(r)+minViol {
		return Cut{}, false
	}

	terms := make([]pb.Term, 0, len(cover)+len(lifts))
	for _, j := range cover {
		terms = append(terms, pb.Term{Coef: 1, Lit: src.Lits[j]})
	}
	for _, lf := range lifts {
		terms = append(terms, pb.Term{Coef: lf.beta, Lit: src.Lits[lf.j]})
	}
	sortTerms(terms)
	return Cut{Terms: terms, Degree: 1 + betaSum}, true
}
