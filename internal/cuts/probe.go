package cuts

// This file is the per-node separation fast path: every LPR estimation that
// does NOT separate pays exactly one Probe (and typically one Len) call.
// Both must stay inlinable and allocation-free — `make escape-check` greps
// the compiler's -m output for this file.

// Probe reports whether this estimation should run a separation round:
// always at the root (depth 0, where LPR separates to a fixpoint), and at
// every cfg.Every-th deep estimation otherwise. Nil-safe.
func (p *Pool) Probe(depth int) bool {
	if p == nil {
		return false
	}
	if depth == 0 {
		return true
	}
	p.est++
	return p.est%int64(p.cfg.Every) == 0
}

// Len returns the number of live cuts. Nil-safe.
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.live)
}
