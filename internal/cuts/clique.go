package cuts

import (
	"sort"

	"repro/internal/pb"
)

// Conflict-graph caps: vertices (distinct complemented literals), pairs
// absorbed per general row, and the row length up to which a detected
// cardinality row contributes its full pairwise clique.
const (
	maxGraphVerts  = 4096
	maxRowPairs    = 256
	maxCardCliqueN = 32
)

// conflictGraph is the lazily-built incompatibility graph over complemented
// literals: vertices are literals ¬l_i appearing in some original row, an
// edge (u, v) records that u and v cannot both be true in any solution.
//
// From a normal-form row Σ a_j·l_j ≥ d with slack b = Σa − d, complements
// ¬l_i and ¬l_j are incompatible exactly when a_i + a_j > b: making both
// literals false removes more weight than the row can spare. Rows detected
// as semantic cardinalities are analyzed in their unit-coefficient view
// first — equivalence means the unit view's incompatibilities (all pairs,
// when need ≥ n−1) subsume whatever the raw coefficients reveal.
//
// Rows are absorbed at most once (by engine index); the graph grows
// lazily as the search's reduced problems surface rows to the separator.
type conflictGraph struct {
	seen map[int]bool
	adj  map[pb.Lit]map[pb.Lit]bool
}

func (g *conflictGraph) init() {
	if g.seen == nil {
		g.seen = make(map[int]bool)
		g.adj = make(map[pb.Lit]map[pb.Lit]bool)
	}
}

func (g *conflictGraph) addEdge(u, v pb.Lit) {
	if u == v || u.Var() == v.Var() {
		return
	}
	if len(g.adj) >= maxGraphVerts {
		if _, ok := g.adj[u]; !ok {
			return
		}
		if _, ok := g.adj[v]; !ok {
			return
		}
	}
	for _, pair := range [2][2]pb.Lit{{u, v}, {v, u}} {
		m := g.adj[pair[0]]
		if m == nil {
			m = make(map[pb.Lit]bool)
			g.adj[pair[0]] = m
		}
		m[pair[1]] = true
	}
}

// absorb folds unseen rows' incompatibilities into the graph.
func (g *conflictGraph) absorb(rows []Source) {
	g.init()
	for _, src := range rows {
		if g.seen[src.EngIdx] {
			continue
		}
		g.seen[src.EngIdx] = true
		n := len(src.Lits)
		if n < 2 {
			continue
		}
		if need, ok := cardNeed(src.Coefs, src.Degree); ok {
			// Semantic cardinality Σ l ≥ need: at most n−need literals may be
			// false, so complements are pairwise incompatible iff need ≥ n−1.
			if need >= n-1 && n <= maxCardCliqueN {
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						g.addEdge(src.Lits[i].Neg(), src.Lits[j].Neg())
					}
				}
			}
			continue
		}
		// General row: coefficients are stored descending, so for each j the
		// incompatible partners form a prefix i < p_j with a_i + a_j > b.
		b := src.slack()
		pairs := 0
		for j := 1; j < n && pairs < maxRowPairs; j++ {
			for i := 0; i < j; i++ {
				if src.Coefs[i]+src.Coefs[j] <= b {
					break // prefix exhausted (coefs descending)
				}
				g.addEdge(src.Lits[i].Neg(), src.Lits[j].Neg())
				if pairs++; pairs >= maxRowPairs {
					break
				}
			}
		}
	}
}

// separate grows violated cliques greedily from the LP point: vertices are
// visited in descending y* (the complement's LP value), each seeding a
// clique extended by the highest-y* compatible neighbors. A clique Q yields
// "at most one of Q true", i.e. the cut Σ_{u∈Q} ¬u ≥ |Q|−1 in literal
// space, violated iff Σ_Q y* > 1.
func (g *conflictGraph) separate(frac func(pb.Lit) float64, minViol float64, maxCuts int) []Cut {
	if len(g.adj) == 0 || maxCuts <= 0 {
		return nil
	}
	type vert struct {
		l pb.Lit
		y float64
	}
	verts := make([]vert, 0, len(g.adj))
	for u := range g.adj {
		if y := clamp01(frac(u)); y > 0.1 {
			verts = append(verts, vert{u, y})
		}
	}
	sort.Slice(verts, func(a, b int) bool {
		if verts[a].y != verts[b].y {
			return verts[a].y > verts[b].y
		}
		return verts[a].l < verts[b].l
	})
	yOf := make(map[pb.Lit]float64, len(verts))
	for _, v := range verts {
		yOf[v.l] = v.y
	}
	used := make(map[pb.Lit]bool)
	var out []Cut
	for _, seed := range verts {
		if len(out) >= maxCuts {
			break
		}
		if used[seed.l] {
			continue
		}
		// Candidates: the seed's neighborhood (every clique member must be
		// adjacent to the seed anyway), highest y* first.
		cands := make([]vert, 0, len(g.adj[seed.l]))
		for nb := range g.adj[seed.l] {
			if y, ok := yOf[nb]; ok && !used[nb] {
				cands = append(cands, vert{nb, y})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].y != cands[b].y {
				return cands[a].y > cands[b].y
			}
			return cands[a].l < cands[b].l
		})
		clique := []pb.Lit{seed.l}
		ysum := seed.y
		for _, cand := range cands {
			compatible := true
			for _, q := range clique[1:] {
				if !g.adj[q][cand.l] {
					compatible = false
					break
				}
			}
			if compatible {
				clique = append(clique, cand.l)
				ysum += cand.y
			}
		}
		if len(clique) < 2 || ysum <= 1+minViol {
			continue
		}
		terms := make([]pb.Term, len(clique))
		for i, u := range clique {
			terms[i] = pb.Term{Coef: 1, Lit: u.Neg()}
			used[u] = true
		}
		sortTerms(terms)
		out = append(out, Cut{Terms: terms, Degree: int64(len(clique) - 1)})
	}
	return out
}
