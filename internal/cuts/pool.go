package cuts

import (
	"time"

	"repro/internal/pb"
)

// activityDecay is applied to every live cut's activity at each separation
// round; Bump resets a useful cut to the current scale. With the default
// pool size a cut that never again earns a positive LP multiplier decays
// below any bumped cut within ~90 rounds and becomes the eviction victim.
const activityDecay = 0.95

// Pool is the managed cut store: a bounded set of globally valid cuts with
// duplicate hashing, activity-based aging, and the per-node separation
// budget (Probe). It is not safe for concurrent use, matching the
// single-threaded search loop that owns it.
type Pool struct {
	cfg  Config
	est  int64 // non-root estimation ordinal (Probe cadence)
	next int64 // next cut id (stable across evictions, never reused)

	live   []poolCut
	byHash map[uint64]int // hash → index in live
	byID   map[int64]int  // id → index in live

	graph conflictGraph
	ctr   Counters

	// OnAdd, when non-nil, observes every cut accepted into the pool (the
	// solver wires the audit hook and the trace emitter here). Called before
	// Separate returns, with slices the receiver must not mutate.
	OnAdd func(terms []pb.Term, degree int64)
}

type poolCut struct {
	id       int64
	terms    []pb.Term
	degree   int64
	hash     uint64
	activity float64
}

// NewPool returns an empty pool with cfg's defaults applied.
func NewPool(cfg Config) *Pool {
	return &Pool{
		cfg:    cfg.withDefaults(),
		byHash: make(map[uint64]int),
		byID:   make(map[int64]int),
	}
}

// MaxRounds returns the configured root fixpoint cap.
func (p *Pool) MaxRounds() int {
	if p == nil {
		return 0
	}
	return p.cfg.MaxRounds
}

// Counters returns a snapshot of the pool's observability block.
func (p *Pool) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	c := p.ctr
	c.Active = int64(len(p.live))
	return c
}

// Separate runs one separation round against the LP point frac: lifted
// covers from each source row, then clique cuts from the (lazily grown)
// conflict graph. Returns the number of cuts newly accepted into the pool.
func (p *Pool) Separate(rows []Source, frac func(pb.Lit) float64) int {
	start := time.Now()
	p.ctr.Rounds++
	for i := range p.live {
		p.live[i].activity *= activityDecay
	}
	added := 0
	for _, src := range rows {
		if added >= p.cfg.MaxPerRound {
			break
		}
		if cut, ok := separateCover(src, frac, p.cfg.MinViolation); ok {
			if p.add(cut) {
				added++
			}
		}
	}
	if added < p.cfg.MaxPerRound {
		p.graph.absorb(rows)
		for _, cut := range p.graph.separate(frac, p.cfg.MinViolation, p.cfg.MaxPerRound-added) {
			if p.add(cut) {
				added++
			}
		}
	}
	p.ctr.SepTime += time.Since(start)
	return added
}

// Add offers one externally derived cut to the pool (tests, and callers that
// prove a cut by other means). The caller vouches for its global validity —
// the same contract the separators meet. Reports whether the cut was
// accepted (false = duplicate).
func (p *Pool) Add(c Cut) bool {
	if p == nil {
		return false
	}
	return p.add(c)
}

// add accepts one separated cut unless an identical cut is already pooled;
// when the pool is full the lowest-activity cut is evicted first. New cuts
// start at activity 1 (the same scale Bump restores), so a fresh cut is not
// the immediate eviction victim.
func (p *Pool) add(c Cut) bool {
	h := hashCut(c.Terms, c.Degree)
	if i, ok := p.byHash[h]; ok {
		p.ctr.Duplicates++
		p.live[i].activity = 1 // still violated somewhere: keep it around
		return false
	}
	for len(p.live) >= p.cfg.MaxPool {
		victim := 0
		for i := 1; i < len(p.live); i++ {
			if p.live[i].activity < p.live[victim].activity {
				victim = i
			}
		}
		p.removeAt(victim)
		p.ctr.Pruned++
	}
	pc := poolCut{id: p.next, terms: c.Terms, degree: c.Degree, hash: h, activity: 1}
	p.next++
	p.byHash[h] = len(p.live)
	p.byID[pc.id] = len(p.live)
	p.live = append(p.live, pc)
	p.ctr.Separated++
	if p.OnAdd != nil {
		p.OnAdd(c.Terms, c.Degree)
	}
	return true
}

// removeAt drops live[i] by swapping the tail in, keeping both indexes
// consistent.
func (p *Pool) removeAt(i int) {
	pc := p.live[i]
	delete(p.byHash, pc.hash)
	delete(p.byID, pc.id)
	last := len(p.live) - 1
	if i != last {
		p.live[i] = p.live[last]
		p.byHash[p.live[i].hash] = i
		p.byID[p.live[i].id] = i
	}
	p.live = p.live[:last]
}

// Each visits every live cut. The visited slices must not be mutated; the
// id is stable for the cut's lifetime and never reused after eviction (the
// LP warm-start keys rely on that).
func (p *Pool) Each(fn func(id int64, terms []pb.Term, degree int64)) {
	if p == nil {
		return
	}
	for i := range p.live {
		fn(p.live[i].id, p.live[i].terms, p.live[i].degree)
	}
}

// Bump marks a cut useful: it earned a positive multiplier in an LP solve.
// Unknown ids (evicted between install and solve) are ignored.
func (p *Pool) Bump(id int64) {
	if p == nil {
		return
	}
	if i, ok := p.byID[id]; ok {
		p.live[i].activity = 1
	}
}

// NoteApplied records n cut columns installed into one node LP.
func (p *Pool) NoteApplied(n int) {
	if p != nil {
		p.ctr.Applied += int64(n)
	}
}

// hashCut is FNV-1a over the degree and the normalized term list, the
// pool's duplicate key.
func hashCut(terms []pb.Term, degree int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(degree))
	for _, t := range terms {
		mix(uint64(t.Coef))
		mix(uint64(t.Lit))
	}
	return h
}
