package cuts

import (
	"sort"

	"repro/internal/pb"
)

// DetectCardinality reports whether the pseudo-Boolean constraint
// Σ coef_j·lit_j ≥ degree is *semantically* the cardinality constraint
// Σ lit_j ≥ need: the two have exactly the same 0/1 solution set even
// though the coefficients differ. The classic example is
// 3x + 3y + 2z ≥ 5 ≡ x + y + z ≥ 2.
//
// The characterization (Le Berre–Wallon): with coefficients sorted
// descending and prefix sums μ_k = a_1 + … + a_k, let need be the smallest k
// with μ_k ≥ degree (fewer than need true literals cannot reach the degree
// even with the largest coefficients). The constraint is cardinality(need)
// iff ANY need literals suffice — i.e. the sum of the need smallest
// coefficients also reaches the degree. Both directions are immediate:
// the two conditions make "≥ need literals true" necessary and sufficient.
//
// Terms need not be pre-sorted; coefficients must be positive (engine /
// pb normal form). Returns ok=false for empty or trivially satisfied
// (degree ≤ 0) constraints and for constraints no assignment satisfies.
func DetectCardinality(terms []pb.Term, degree int64) (need int, ok bool) {
	if degree <= 0 || len(terms) == 0 {
		return 0, false
	}
	coefs := make([]int64, len(terms))
	for i, t := range terms {
		if t.Coef <= 0 {
			return 0, false
		}
		coefs[i] = t.Coef
	}
	sort.Slice(coefs, func(i, j int) bool { return coefs[i] > coefs[j] })
	return cardNeed(coefs, degree)
}

// cardNeed is DetectCardinality's core on a descending coefficient slice.
func cardNeed(coefs []int64, degree int64) (need int, ok bool) {
	if degree <= 0 || len(coefs) == 0 {
		return 0, false
	}
	// need = smallest k with (sum of k largest) ≥ degree.
	var sum int64
	need = -1
	for k, a := range coefs {
		sum += a
		if sum >= degree {
			need = k + 1
			break
		}
	}
	if need < 0 {
		return 0, false // unsatisfiable even with everything true
	}
	// Sufficiency: the need *smallest* coefficients must reach the degree
	// too, otherwise some need-subset fails and the constraint is genuinely
	// weighted.
	sum = 0
	for i := len(coefs) - need; i < len(coefs); i++ {
		sum += coefs[i]
	}
	if sum < degree {
		return 0, false
	}
	return need, true
}

// UnitTerms rewrites terms to coefficient 1 in normal order (ascending
// literal — all coefficients equal), for installing a detected cardinality
// constraint. The input slice is not modified.
func UnitTerms(terms []pb.Term) []pb.Term {
	out := make([]pb.Term, len(terms))
	for i, t := range terms {
		out[i] = pb.Term{Coef: 1, Lit: t.Lit}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lit < out[j].Lit })
	return out
}
