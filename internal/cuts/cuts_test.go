package cuts

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// evalCut reports whether assignment m (bit v = value of var v) satisfies
// Σ terms ≥ degree.
func evalCut(terms []pb.Term, degree int64, m uint) bool {
	var lhs int64
	for _, t := range terms {
		if t.Lit.Eval(m&(1<<uint(t.Lit.Var())) != 0) {
			lhs += t.Coef
		}
	}
	return lhs >= degree
}

// randomSource builds a random normal-form row over vars [0,n).
func randomSource(rng *rand.Rand, n int, engIdx int) Source {
	k := 2 + rng.Intn(n-1)
	perm := rng.Perm(n)[:k]
	lits := make([]pb.Lit, k)
	coefs := make([]int64, k)
	var sum int64
	for i, v := range perm {
		lits[i] = pb.MkLit(pb.Var(v), rng.Intn(3) == 0)
		coefs[i] = int64(1 + rng.Intn(9))
		sum += coefs[i]
	}
	degree := int64(1 + rng.Intn(int(sum)))
	for i := range coefs {
		if coefs[i] > degree {
			coefs[i] = degree
		}
	}
	// Engine normal order: descending coefficient.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if coefs[j] > coefs[i] {
				coefs[i], coefs[j] = coefs[j], coefs[i]
				lits[i], lits[j] = lits[j], lits[i]
			}
		}
	}
	return Source{EngIdx: engIdx, Lits: lits, Coefs: coefs, Degree: degree}
}

// TestCoverCutsValidAndViolated brute-forces the soundness contract of the
// cover separator: every assignment satisfying the source row satisfies the
// lifted cut, and the cut is genuinely violated at the LP point it was
// separated from.
func TestCoverCutsValidAndViolated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10
	emitted := 0
	for iter := 0; iter < 3000; iter++ {
		src := randomSource(rng, n, iter)
		frac := make([]float64, n)
		for v := range frac {
			frac[v] = rng.Float64()
		}
		fracOf := func(l pb.Lit) float64 {
			x := frac[l.Var()]
			if l.IsNeg() {
				return 1 - x
			}
			return x
		}
		cut, ok := separateCover(src, fracOf, 0.02)
		if !ok {
			continue
		}
		emitted++
		// Violation at the LP point (x-space).
		var lhs float64
		for _, tm := range cut.Terms {
			lhs += float64(tm.Coef) * fracOf(tm.Lit)
		}
		if lhs >= float64(cut.Degree) {
			t.Fatalf("iter %d: cut not violated at its own LP point: lhs=%.4f degree=%d", iter, lhs, cut.Degree)
		}
		// Validity: src-feasible ⇒ cut-feasible, over all 2^n assignments.
		for m := uint(0); m < 1<<n; m++ {
			var rowLhs int64
			for j, l := range src.Lits {
				if l.Eval(m&(1<<uint(l.Var())) != 0) {
					rowLhs += src.Coefs[j]
				}
			}
			if rowLhs >= src.Degree && !evalCut(cut.Terms, cut.Degree, m) {
				t.Fatalf("iter %d: invalid cover cut %v ≥ %d (row %v/%v ≥ %d, witness %b)",
					iter, cut.Terms, cut.Degree, src.Lits, src.Coefs, src.Degree, m)
			}
		}
	}
	if emitted < 50 {
		t.Fatalf("cover separator barely engaged: %d cuts over 3000 rows", emitted)
	}
}

// TestCoverLiftingStrengthens pins a case where sequential lifting must
// produce a coefficient ≥ 1: knapsack 5¬a+5¬b+5¬c ≤ 5 (row 5a+5b+5c ≥ 10)
// with a cover {¬a,¬b}; lifting ¬c is exact and must yield β=1, degree 2.
func TestCoverLiftingStrengthens(t *testing.T) {
	src := Source{
		EngIdx: 0,
		Lits:   []pb.Lit{pb.PosLit(0), pb.PosLit(1), pb.PosLit(2)},
		Coefs:  []int64{5, 5, 5},
		Degree: 10,
	}
	// LP point x = (0.5, 0.5, 0.5): complements y = 0.5 each; cover {0,1}
	// has Σy = 1.0 ≤ 1, but the lifted cut Σy ≤ 1 over all three has
	// Σy = 1.5 > 1 — only lifting makes this separable.
	fracOf := func(l pb.Lit) float64 {
		if l.IsNeg() {
			return 0.5
		}
		return 0.5
	}
	cut, ok := separateCover(src, fracOf, 0.02)
	if !ok {
		t.Fatalf("no cut separated")
	}
	if len(cut.Terms) != 3 || cut.Degree != 2 {
		t.Fatalf("lifting did not engage: got %v ≥ %d, want 3 unit terms ≥ 2", cut.Terms, cut.Degree)
	}
	for _, tm := range cut.Terms {
		if tm.Coef != 1 || tm.Lit.IsNeg() {
			t.Fatalf("unexpected lifted term %v", tm)
		}
	}
}

// TestCliqueCutsValid brute-forces clique-cut validity: assignments feasible
// for ALL absorbed rows must satisfy every separated clique cut.
func TestCliqueCutsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 9
	emitted := 0
	for iter := 0; iter < 800; iter++ {
		var g conflictGraph
		nrows := 1 + rng.Intn(4)
		srcs := make([]Source, nrows)
		for i := range srcs {
			srcs[i] = randomSource(rng, n, iter*10+i)
		}
		g.absorb(srcs)
		frac := make([]float64, n)
		for v := range frac {
			frac[v] = rng.Float64()
		}
		fracOf := func(l pb.Lit) float64 {
			if l.IsNeg() {
				return 1 - frac[l.Var()]
			}
			return frac[l.Var()]
		}
		for _, cut := range g.separate(fracOf, 0.02, 8) {
			emitted++
			for m := uint(0); m < 1<<n; m++ {
				feasible := true
				for _, src := range srcs {
					var lhs int64
					for j, l := range src.Lits {
						if l.Eval(m&(1<<uint(l.Var())) != 0) {
							lhs += src.Coefs[j]
						}
					}
					if lhs < src.Degree {
						feasible = false
						break
					}
				}
				if feasible && !evalCut(cut.Terms, cut.Degree, m) {
					t.Fatalf("iter %d: invalid clique cut %v ≥ %d (witness %b)", iter, cut.Terms, cut.Degree, m)
				}
			}
		}
	}
	if emitted == 0 {
		t.Fatalf("clique separator never engaged")
	}
}

// TestDetectCardinality checks detection against brute-force solution-set
// equivalence on random rows.
func TestDetectCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	detected := 0
	for iter := 0; iter < 4000; iter++ {
		src := randomSource(rng, n, iter)
		terms := make([]pb.Term, len(src.Lits))
		for i := range terms {
			terms[i] = pb.Term{Coef: src.Coefs[i], Lit: src.Lits[i]}
		}
		need, ok := DetectCardinality(terms, src.Degree)
		// Brute-force the semantic cardinality: is "≥ k literals true"
		// equivalent to the row for some k? Compare solution sets directly.
		for m := uint(0); m < 1<<n; m++ {
			var lhs int64
			cnt := 0
			for j, l := range src.Lits {
				if l.Eval(m&(1<<uint(l.Var())) != 0) {
					lhs += src.Coefs[j]
					cnt++
				}
			}
			rowSat := lhs >= src.Degree
			if ok {
				cardSat := cnt >= need
				if rowSat != cardSat {
					t.Fatalf("iter %d: DetectCardinality(%v/%v ≥ %d)=%d but mask %b: row=%v card=%v",
						iter, src.Lits, src.Coefs, src.Degree, need, m, rowSat, cardSat)
				}
			}
		}
		if ok {
			detected++
		}
	}
	if detected < 100 {
		t.Fatalf("cardinality detection barely engaged: %d/4000", detected)
	}
	// The headline example: 3x + 3y + 2z ≥ 5 ≡ x + y + z ≥ 2.
	terms := []pb.Term{
		{Coef: 3, Lit: pb.PosLit(0)}, {Coef: 3, Lit: pb.PosLit(1)}, {Coef: 2, Lit: pb.PosLit(2)},
	}
	if need, ok := DetectCardinality(terms, 5); !ok || need != 2 {
		t.Fatalf("3x+3y+2z≥5: got (%d,%v), want (2,true)", need, ok)
	}
	// A genuinely weighted row must NOT be detected: 3x + 1y + 1z ≥ 3.
	terms = []pb.Term{
		{Coef: 3, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.PosLit(2)},
	}
	if _, ok := DetectCardinality(terms, 3); ok {
		t.Fatalf("3x+y+z≥3 wrongly detected as cardinality")
	}
}

// TestPoolDedupAgingEviction exercises the pool mechanics: duplicate
// hashing, the MaxPool eviction of the lowest-activity cut, id stability,
// and the OnAdd hook.
func TestPoolDedupAgingEviction(t *testing.T) {
	p := NewPool(Config{MaxPool: 3, MaxPerRound: 100})
	var seen []int64
	p.OnAdd = func(terms []pb.Term, degree int64) { seen = append(seen, degree) }
	mk := func(v int) Cut {
		return Cut{Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(pb.Var(v))}, {Coef: 1, Lit: pb.PosLit(pb.Var(v + 1))}}, Degree: 1}
	}
	if !p.add(mk(0)) || !p.add(mk(2)) || !p.add(mk(4)) {
		t.Fatalf("fresh cuts rejected")
	}
	if p.add(mk(0)) {
		t.Fatalf("duplicate accepted")
	}
	if c := p.Counters(); c.Separated != 3 || c.Duplicates != 1 || c.Active != 3 {
		t.Fatalf("counters: %+v", c)
	}
	// Bump 0 and 2; decay happens in Separate, emulate via activities: add a
	// 4th cut — the eviction victim must be the unbumped third cut (id 2).
	p.live[0].activity, p.live[1].activity, p.live[2].activity = 1, 1, 0.1
	evictedID := p.live[2].id
	if !p.add(mk(6)) {
		t.Fatalf("add after eviction failed")
	}
	if c := p.Counters(); c.Pruned != 1 || c.Active != 3 {
		t.Fatalf("eviction counters: %+v", c)
	}
	if _, ok := p.byID[evictedID]; ok {
		t.Fatalf("evicted id still live")
	}
	ids := map[int64]bool{}
	p.Each(func(id int64, terms []pb.Term, degree int64) { ids[id] = true })
	if len(ids) != 3 || ids[evictedID] {
		t.Fatalf("live ids wrong: %v (evicted %d)", ids, evictedID)
	}
	if len(seen) != 4 {
		t.Fatalf("OnAdd saw %d cuts, want 4", len(seen))
	}
	p.Bump(evictedID) // must be a no-op, not a panic
}

// TestProbeCadence pins the fast path: root always separates; deep nodes
// every cfg.Every-th estimation; nil pool never.
func TestProbeCadence(t *testing.T) {
	var nilPool *Pool
	if nilPool.Probe(0) || nilPool.Len() != 0 {
		t.Fatalf("nil pool must be inert")
	}
	p := NewPool(Config{Every: 4})
	if !p.Probe(0) || !p.Probe(0) {
		t.Fatalf("root estimations must always probe true")
	}
	hits := 0
	for i := 0; i < 16; i++ {
		if p.Probe(3) {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("deep cadence: %d hits over 16 probes with Every=4", hits)
	}
}

// TestSeparateRoundEndToEnd drives Pool.Separate on a row family where both
// separators engage, and checks the MaxPerRound budget holds.
func TestSeparateRoundEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPool(Config{MaxPerRound: 5})
	var srcs []Source
	for i := 0; i < 40; i++ {
		srcs = append(srcs, randomSource(rng, 10, i))
	}
	frac := make([]float64, 10)
	for v := range frac {
		frac[v] = 0.3 + 0.4*rng.Float64()
	}
	fracOf := func(l pb.Lit) float64 {
		if l.IsNeg() {
			return 1 - frac[l.Var()]
		}
		return frac[l.Var()]
	}
	added := p.Separate(srcs, fracOf)
	if added == 0 {
		t.Fatalf("no cuts separated from 40 random rows")
	}
	if added > 5 {
		t.Fatalf("MaxPerRound violated: %d", added)
	}
	c := p.Counters()
	if c.Rounds != 1 || c.Separated != int64(added) || c.SepTime <= 0 {
		t.Fatalf("counters: %+v", c)
	}
}
