// Package cuts implements cutting-plane separation for the LPR bound
// pipeline (DESIGN.md §14): lifted knapsack-cover inequalities and clique
// cuts from a lazily-built conflict graph, managed by a bounded cut pool
// with duplicate hashing and activity-based aging.
//
// Every cut produced here is *globally valid*: it is implied by a single
// original problem constraint (covers) or by a set of pairwise
// incompatibilities each read off one original constraint (cliques), never
// by learned constraints or the current incumbent. Global validity is what
// makes the pool reusable across search nodes — a cut separated at one node
// may be residualized against any other node's partial assignment — and is
// what the audit hook (audit.PooledCut) re-verifies exhaustively on small
// instances.
//
// The package depends only on pb. The bounds package residualizes pooled
// cuts per node and installs them into the LP as extra dual columns; see
// bounds.LPR.
package cuts

import (
	"sort"
	"time"

	"repro/internal/pb"
)

// Source is one original problem constraint offered to the separators:
// Σ Coefs[j]·Lits[j] ≥ Degree in engine normal form (coefficients positive,
// descending, clipped at the degree). The slices are views into the engine's
// store and must not be retained past the separation call.
type Source struct {
	// EngIdx identifies the constraint in the engine store (used to absorb
	// each row into the conflict graph exactly once).
	EngIdx int
	Lits   []pb.Lit
	Coefs  []int64
	Degree int64
}

// slack returns Σ Coefs − Degree: the capacity of the complemented knapsack
// Σ a_j·¬l_j ≤ slack, the quantity both separators reason over.
func (s Source) slack() int64 {
	var sum int64
	for _, a := range s.Coefs {
		sum += a
	}
	return sum - s.Degree
}

// Cut is one pooled cutting plane: Σ Terms ≥ Degree over original problem
// literals, implied by the original constraints alone.
type Cut struct {
	Terms  []pb.Term
	Degree int64
}

// Config tunes the pool and the separators. The zero value selects the
// defaults noted per field; NewPool applies them.
type Config struct {
	// MaxRounds caps separation rounds per root estimation (the root
	// separates to a fixpoint or this cap, whichever first). Default 8.
	MaxRounds int
	// Every is the deep-node separation period: one separation round every
	// Every-th non-root estimation. Default 16.
	Every int
	// MaxPool caps live cuts; beyond it the lowest-activity cut is evicted.
	// Default 256.
	MaxPool int
	// MaxPerRound caps cuts accepted per separation round. Default 32.
	MaxPerRound int
	// MinViolation is the minimal LP violation (in the complemented
	// y-space) for a separated cut to be worth pooling. Default 0.02.
	MinViolation float64
}

func (c Config) withDefaults() Config {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 8
	}
	if c.Every <= 0 {
		c.Every = 16
	}
	if c.MaxPool <= 0 {
		c.MaxPool = 256
	}
	if c.MaxPerRound <= 0 {
		c.MaxPerRound = 32
	}
	if c.MinViolation <= 0 {
		c.MinViolation = 0.02
	}
	return c
}

// Counters is the cut-pipeline observability block, snapshotted into
// bounds.Stats.Cuts and from there into the obs metrics schema and the CSV
// columns.
type Counters struct {
	// Separated counts cuts accepted into the pool.
	Separated int64
	// Duplicates counts separated cuts rejected by the duplicate hash
	// (the violated inequality was already pooled).
	Duplicates int64
	// Rounds counts separation rounds run.
	Rounds int64
	// Applied counts cut columns installed into node LPs (summed over
	// estimations: 3 live cuts over 10 nodes ⇒ 30).
	Applied int64
	// Active is the live pool size at snapshot time.
	Active int64
	// Pruned counts cuts evicted by activity aging.
	Pruned int64
	// SepTime is the wall clock spent inside separation rounds.
	SepTime time.Duration
}

// sortTerms puts cut terms into the engine's normal order: descending
// coefficient, ties by ascending literal.
func sortTerms(terms []pb.Term) {
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Coef != terms[j].Coef {
			return terms[i].Coef > terms[j].Coef
		}
		return terms[i].Lit < terms[j].Lit
	})
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
