package milp

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func TestSimpleOptimum(t *testing.T) {
	p := pb.NewProblem(3)
	p.SetCost(0, 3)
	p.SetCost(1, 1)
	p.SetCost(2, 2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2))
	res := Solve(p, Options{})
	if res.Status != StatusOptimal || res.Best != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestInfeasible(t *testing.T) {
	p := pb.NewProblem(1)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.NegLit(0))
	res := Solve(p, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("%+v", res)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(7)))
		}
		for i := 0; i < 1+rng.Intn(7); i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
				}
			}
			cmp := pb.GE
			if rng.Intn(4) == 0 {
				cmp = pb.LE
			}
			_ = p.AddConstraint(terms, cmp, int64(rng.Intn(6)))
		}
		want := pb.BruteForce(p)
		res := Solve(p, Options{MaxNodes: 500000})
		if want.Feasible {
			if res.Status != StatusOptimal {
				t.Fatalf("iter %d: status=%v want optimal", iter, res.Status)
			}
			if res.Best != want.Optimum {
				t.Fatalf("iter %d: best=%d want %d", iter, res.Best, want.Optimum)
			}
			if !p.Feasible(res.Values) {
				t.Fatalf("iter %d: infeasible values", iter)
			}
		} else if res.Status != StatusInfeasible {
			t.Fatalf("iter %d: status=%v want infeasible", iter, res.Status)
		}
	}
}

func TestCostOffset(t *testing.T) {
	p := pb.NewProblem(1)
	p.SetCost(0, 5)
	p.CostOffset = 10
	_ = p.AddClause(pb.PosLit(0))
	res := Solve(p, Options{})
	if res.Status != StatusOptimal || res.Best != 15 {
		t.Fatalf("%+v", res)
	}
}

func TestNodeLimit(t *testing.T) {
	// Fractional root LP (x = (2/3, 2/3)) forces branching; a single-node
	// budget must therefore end in StatusLimit.
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	_ = p.AddConstraint([]pb.Term{{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 2)
	_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 2, Lit: pb.PosLit(1)}}, pb.GE, 2)
	res := Solve(p, Options{MaxNodes: 1})
	if res.Status != StatusLimit {
		t.Fatalf("status=%v want limit", res.Status)
	}
}

func TestPureSatisfactionSolvable(t *testing.T) {
	// Feasible zero-objective instance: MILP should still find a solution.
	p := pb.NewProblem(4)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddAtLeast([]pb.Lit{pb.PosLit(1), pb.PosLit(2), pb.PosLit(3)}, 2)
	res := Solve(p, Options{})
	if res.Status != StatusOptimal || !res.HasSolution {
		t.Fatalf("%+v", res)
	}
	if !p.Feasible(res.Values) {
		t.Fatal("infeasible assignment")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" || StatusLimit.String() != "limit" {
		t.Fatal("strings")
	}
}

func TestStrongBranchingAgreesAndSavesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var plainNodes, strongNodes int64
	for iter := 0; iter < 60; iter++ {
		n := 6 + rng.Intn(8)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(1+rng.Intn(9)))
		}
		for i := 0; i < n; i++ {
			var lits []pb.Lit
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					lits = append(lits, pb.PosLit(pb.Var(v)))
				}
			}
			if len(lits) == 0 {
				lits = append(lits, pb.PosLit(pb.Var(rng.Intn(n))))
			}
			terms := make([]pb.Term, len(lits))
			for k, l := range lits {
				terms[k] = pb.Term{Coef: 1, Lit: l}
			}
			_ = p.AddConstraint(terms, pb.GE, 1)
		}
		a := Solve(p, Options{MaxNodes: 500000})
		b := Solve(p, Options{MaxNodes: 500000, StrongBranching: true})
		if a.Status != b.Status {
			t.Fatalf("iter %d: status %v vs %v", iter, a.Status, b.Status)
		}
		if a.Status == StatusOptimal && a.Best != b.Best {
			t.Fatalf("iter %d: best %d vs %d", iter, a.Best, b.Best)
		}
		plainNodes += a.Nodes
		strongNodes += b.Nodes
	}
	if strongNodes > plainNodes {
		t.Logf("strong branching used more nodes (%d vs %d) on this suite", strongNodes, plainNodes)
	}
}
