// Package milp implements a generic LP-based branch-and-bound solver for 0-1
// integer programs — the reproduction's stand-in for the commercial MILP
// solver (CPLEX 7.5) the paper compares against. It exhibits the same
// structural behaviour the paper reports: strong pruning from LP relaxation
// bounds on optimization instances, and weak, enumeration-like search on
// pure satisfaction instances whose LP relaxation carries no objective
// information (the acc-tight rows of Table 1).
//
// The algorithm is textbook [11]: best-bound node selection, most-fractional
// branching, an LP-rounding primal heuristic at the root, and integer bound
// tightening (the objective is integral, so a node with
// ⌈z_lp⌉ ≥ incumbent is pruned).
package milp

import (
	"container/heap"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/pb"
)

// Options configures a solve.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes (0 = 1e6).
	MaxNodes int64
	// TimeLimit bounds wall-clock time (0 = unlimited).
	TimeLimit time.Duration
	// LPIter bounds simplex iterations per node LP (0 = solver default).
	LPIter int
	// StrongBranching evaluates the child LPs of the most fractional
	// candidates (up to StrongCandidates of them) and branches on the
	// variable with the best worst-child bound — fewer nodes at a higher
	// per-node cost, the classic MILP trade.
	StrongBranching bool
	// StrongCandidates caps how many fractional variables strong branching
	// probes per node (default 4).
	StrongCandidates int
}

// Status reports how the solve ended.
type Status int

const (
	// StatusOptimal: proved optimal (or proved infeasible with no solution).
	StatusOptimal Status = iota
	// StatusInfeasible: the instance has no 0-1 solution.
	StatusInfeasible
	// StatusLimit: node or time budget expired.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "limit"
	}
}

// Result is the outcome of Solve.
type Result struct {
	Status      Status
	HasSolution bool
	// Best is the objective of the best solution (includes CostOffset).
	Best   int64
	Values []bool
	Nodes  int64
}

const intTol = 1e-6

// node is a subproblem: a chain of variable fixings from the root.
type node struct {
	parent *node
	fixVar int
	fixVal float64
	bound  float64 // LP bound of the parent (priority key)
	depth  int
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Solve runs branch-and-bound on the 0-1 program p.
func Solve(p *pb.Problem, opt Options) Result {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	var deadline time.Time
	hasDeadline := opt.TimeLimit > 0
	if hasDeadline {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	base := buildLP(p, opt.LPIter)
	n := p.NumVars

	res := Result{Status: StatusLimit, Best: math.MaxInt64}
	incumbent := int64(math.MaxInt64 / 2)

	lo := make([]float64, n)
	hi := make([]float64, n)
	q := &nodeQueue{}
	heap.Push(q, &node{bound: math.Inf(-1)})

	for q.Len() > 0 {
		if res.Nodes >= maxNodes {
			return finishLimit(res, incumbent, p)
		}
		if hasDeadline && time.Now().After(deadline) {
			return finishLimit(res, incumbent, p)
		}
		nd := heap.Pop(q).(*node)
		// Best-bound pruning against the incumbent before solving.
		if nd.bound > -math.Inf(1) && ceilInt(nd.bound) >= incumbent {
			continue
		}
		res.Nodes++

		materialize(nd, lo, hi, n)
		base.Lo, base.Hi = lo, hi
		sol, err := lp.Solve(base)
		if err != nil || sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status != lp.Optimal {
			// Iteration limit: keep the node alive conservatively by
			// branching on its first free variable without a bound.
			if v := firstFree(lo, hi, n); v >= 0 {
				pushChildren(q, nd, v, math.Inf(-1))
			}
			continue
		}
		nodeBound := ceilInt(sol.Objective)
		if nodeBound >= incumbent {
			continue
		}
		// Primal rounding heuristic at the root: round the LP point and
		// keep it when feasible — an early incumbent makes best-bound
		// pruning effective from the start.
		if nd.depth == 0 {
			vals := make([]bool, n)
			for j := 0; j < n; j++ {
				vals[j] = sol.X[j] >= 0.5
			}
			if p.Feasible(vals) {
				if obj := p.ObjectiveValue(vals) - p.CostOffset; obj < incumbent {
					incumbent = obj
					res.HasSolution = true
					res.Best = obj + p.CostOffset
					res.Values = vals
				}
			}
		}
		// Integral?
		branchVar, dist := -1, -1.0
		var fracVars []int
		for j := 0; j < n; j++ {
			f := sol.X[j] - math.Floor(sol.X[j])
			frac := math.Min(f, 1-f)
			if frac > intTol {
				fracVars = append(fracVars, j)
				if frac > dist {
					dist = frac
					branchVar = j
				}
			}
		}
		if opt.StrongBranching && len(fracVars) > 1 {
			if v := strongBranch(base, lo, hi, fracVars, sol.X, opt); v >= 0 {
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integral LP solution: round and validate.
			vals := make([]bool, n)
			for j := 0; j < n; j++ {
				vals[j] = sol.X[j] > 0.5
			}
			if p.Feasible(vals) {
				obj := p.ObjectiveValue(vals) - p.CostOffset
				if obj < incumbent {
					incumbent = obj
					res.HasSolution = true
					res.Best = obj + p.CostOffset
					res.Values = vals
				}
			}
			continue
		}
		pushChildren(q, nd, branchVar, sol.Objective)
	}

	if res.HasSolution {
		res.Status = StatusOptimal
	} else {
		res.Status = StatusInfeasible
	}
	return res
}

// strongBranch probes the most fractional candidates: for each, solve both
// child LPs and score by the worse child's objective (the bound improvement
// a branch guarantees). Returns the best candidate, or -1 to fall back to
// most-fractional.
func strongBranch(base *lp.Problem, lo, hi []float64, fracVars []int, x []float64, opt Options) int {
	cands := opt.StrongCandidates
	if cands <= 0 {
		cands = 4
	}
	// Order candidates by fractionality, keep the top few.
	sortByFrac(fracVars, x)
	if len(fracVars) > cands {
		fracVars = fracVars[:cands]
	}
	best, bestScore := -1, math.Inf(-1)
	for _, j := range fracVars {
		score := math.Inf(1)
		for _, fix := range []float64{0, 1} {
			saveLo, saveHi := lo[j], hi[j]
			lo[j], hi[j] = fix, fix
			sol, err := lp.Solve(base)
			lo[j], hi[j] = saveLo, saveHi
			if err != nil {
				return -1
			}
			child := math.Inf(1) // infeasible child: the branch fully decides j
			if sol.Status == lp.Optimal {
				child = sol.Objective
			} else if sol.Status == lp.IterLimit {
				child = sol.Objective // anytime estimate
			}
			if child < score {
				score = child
			}
		}
		if score > bestScore {
			bestScore = score
			best = j
		}
	}
	return best
}

func sortByFrac(vars []int, x []float64) {
	frac := func(j int) float64 {
		f := x[j] - math.Floor(x[j])
		return math.Min(f, 1-f)
	}
	for i := 1; i < len(vars); i++ {
		for k := i; k > 0 && frac(vars[k]) > frac(vars[k-1]); k-- {
			vars[k], vars[k-1] = vars[k-1], vars[k]
		}
	}
}

func pushChildren(q *nodeQueue, parent *node, v int, bound float64) {
	heap.Push(q, &node{parent: parent, fixVar: v, fixVal: 0, bound: bound, depth: parent.depth + 1})
	heap.Push(q, &node{parent: parent, fixVar: v, fixVal: 1, bound: bound, depth: parent.depth + 1})
}

func firstFree(lo, hi []float64, n int) int {
	for j := 0; j < n; j++ {
		if hi[j]-lo[j] > 0.5 {
			return j
		}
	}
	return -1
}

func finishLimit(res Result, incumbent int64, p *pb.Problem) Result {
	res.Status = StatusLimit
	if res.HasSolution {
		res.Best = incumbent + p.CostOffset
	}
	return res
}

func ceilInt(v float64) int64 {
	return int64(math.Ceil(v - 1e-6))
}

// materialize walks the fixing chain into dense bounds.
func materialize(nd *node, lo, hi []float64, n int) {
	for j := 0; j < n; j++ {
		lo[j], hi[j] = 0, 1
	}
	for cur := nd; cur != nil && cur.parent != nil; cur = cur.parent {
		lo[cur.fixVar] = cur.fixVal
		hi[cur.fixVar] = cur.fixVal
	}
}

// buildLP converts the PB problem's constraints to an x-space LP.
func buildLP(p *pb.Problem, maxIter int) *lp.Problem {
	prob := &lp.Problem{
		NumVars: p.NumVars,
		Cost:    make([]float64, p.NumVars),
		MaxIter: maxIter,
	}
	for v, c := range p.Cost {
		prob.Cost[v] = float64(c)
	}
	for _, c := range p.Constraints {
		row := lp.Row{RHS: float64(c.Degree)}
		for _, t := range c.Terms {
			a := float64(t.Coef)
			if t.Lit.IsNeg() {
				row.Entries = append(row.Entries, lp.Entry{Var: int(t.Lit.Var()), Coef: -a})
				row.RHS -= a
			} else {
				row.Entries = append(row.Entries, lp.Entry{Var: int(t.Lit.Var()), Coef: a})
			}
		}
		prob.Rows = append(prob.Rows, row)
	}
	return prob
}
