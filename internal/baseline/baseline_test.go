package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
)

func randomPBO(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(7)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(6)))
	}
	return p
}

// All solvers must agree with brute force (and hence each other).
func TestBaselinesAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lim := Limits{MaxConflicts: 200000}
	for iter := 0; iter < 150; iter++ {
		p := randomPBO(rng, 2+rng.Intn(6), 1+rng.Intn(7))
		want := pb.BruteForce(p)
		solvers := map[string]func() core.Result{
			"pbs":       func() core.Result { return PBS(p, lim) },
			"galena":    func() core.Result { return Galena(p, lim) },
			"bsolo-lpr": func() core.Result { return Bsolo(p, core.LBLPR, lim) },
			"bsolo-mis": func() core.Result { return Bsolo(p, core.LBMIS, lim) },
		}
		for name, run := range solvers {
			res := run()
			if want.Feasible {
				if res.Status != core.StatusOptimal {
					t.Fatalf("iter %d %s: status=%v want optimal", iter, name, res.Status)
				}
				if res.Best != want.Optimum {
					t.Fatalf("iter %d %s: best=%d want %d", iter, name, res.Best, want.Optimum)
				}
			} else if res.Status != core.StatusUnsat {
				t.Fatalf("iter %d %s: status=%v want unsat", iter, name, res.Status)
			}
		}
	}
}

// Galena's preprocessing must not change results on pure satisfaction
// instances either.
func TestGalenaPureSatisfaction(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.Intn(5)
		p := pb.NewProblem(n)
		for i := 0; i < 2+rng.Intn(6); i++ {
			nt := 1 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: 1, Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, 1)
		}
		want := pb.BruteForce(p)
		res := Galena(p, Limits{MaxConflicts: 100000})
		if want.Feasible && res.Status != core.StatusSatisfiable {
			t.Fatalf("iter %d: status=%v want satisfiable", iter, res.Status)
		}
		if !want.Feasible && res.Status != core.StatusUnsat {
			t.Fatalf("iter %d: status=%v want unsat", iter, res.Status)
		}
	}
}

func TestPBSReportsIncumbentOnLimit(t *testing.T) {
	// A solvable instance with a tiny conflict budget either solves or
	// reports limit; with budget 1 on a nontrivial optimization it reports
	// the first incumbent as an "ub" entry (Table 1 style).
	rng := rand.New(rand.NewSource(3))
	p := randomPBO(rng, 10, 12)
	res := PBS(p, Limits{MaxConflicts: 1})
	if res.Status == core.StatusOptimal {
		return // solved within one conflict; fine
	}
	if res.Status != core.StatusLimit && res.Status != core.StatusUnsat {
		t.Fatalf("status=%v", res.Status)
	}
}
