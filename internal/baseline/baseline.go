// Package baseline packages the two published PBO solvers the paper compares
// bsolo against, reconstructed on top of the shared CDCL engine (see the
// substitution table in DESIGN.md):
//
//   - PBS (Aloul et al. [2]): SAT-based linear search on the cost function
//     with clause learning — no lower bounding, no preprocessing, restarts
//     only when a new solution tightens the cost constraint.
//   - Galena (Chai & Kuehlmann [4]): the same linear-search organization but
//     with pseudo-Boolean-aware strengthening — probing-based preprocessing,
//     implication strengthening, clause subsumption — and Luby restarts.
//
// Both add the eq. 10 constraint Σ c_j·x_j ≤ upper−1 after each solution and
// restart, so the search is the classic "next solution must be cheaper"
// linear sweep of [3].
package baseline

import (
	"time"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/preprocess"
)

// Limits bounds a baseline run.
type Limits struct {
	MaxConflicts int64
	MaxDecisions int64
	TimeLimit    time.Duration
	// NoIncrementalReduce / NoWarmLP disable the incremental bound pipeline
	// (per-node Extract, cold LP solves) for ablation runs; they affect only
	// the bsolo columns, which are the only users of lower bounding.
	NoIncrementalReduce bool
	NoWarmLP            bool
	// NoCuts disables LPR cutting-plane separation; CutRounds / CutMaxPool
	// override the separation fixpoint cap and pool capacity (0 = defaults).
	NoCuts     bool
	CutRounds  int
	CutMaxPool int
}

// PBS runs the PBS-style linear-search solver.
func PBS(p *pb.Problem, lim Limits) core.Result {
	return core.Solve(p, core.Options{
		Strategy:     core.StrategyLinearSearch,
		LowerBound:   core.LBNone,
		MaxConflicts: lim.MaxConflicts,
		MaxDecisions: lim.MaxDecisions,
		TimeLimit:    lim.TimeLimit,
		RestartBase:  -1, // no Luby restarts; restart only on new solutions
	})
}

// Galena runs the Galena-style linear-search solver with preprocessing.
func Galena(p *pb.Problem, lim Limits) core.Result {
	pre, info, err := preprocess.Apply(p, preprocess.Options{
		Probing:       true,
		Strengthening: true,
		Subsumption:   true,
		MaxProbeVars:  2000,
	})
	if err != nil {
		// Preprocessing failure falls back to the raw instance.
		pre = p
	} else if info.ProvedUnsat {
		return core.Result{Status: core.StatusUnsat}
	}
	return core.Solve(pre, core.Options{
		Strategy:     core.StrategyLinearSearch,
		LowerBound:   core.LBNone,
		PBLearning:   true, // Galena's distinguishing cutting-plane learning
		MaxConflicts: lim.MaxConflicts,
		MaxDecisions: lim.MaxDecisions,
		TimeLimit:    lim.TimeLimit,
	})
}

// Bsolo runs the paper's solver with the given lower-bound method and the
// §4–§5 techniques enabled (the Table 1 bsolo columns).
func Bsolo(p *pb.Problem, method core.Method, lim Limits) core.Result {
	return core.Solve(p, core.Options{
		Strategy:             core.StrategyBranchBound,
		LowerBound:           method,
		MaxConflicts:         lim.MaxConflicts,
		MaxDecisions:         lim.MaxDecisions,
		TimeLimit:            lim.TimeLimit,
		CardinalityInference: true,
		NoIncrementalReduce:  lim.NoIncrementalReduce,
		NoWarmLP:             lim.NoWarmLP,
		NoCuts:               lim.NoCuts,
		CutRounds:            lim.CutRounds,
		CutMaxPool:           lim.CutMaxPool,
	})
}
