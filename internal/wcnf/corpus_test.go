package wcnf

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/wbo"
)

// wcnfWant records the ground truth for every committed WCNF reproducer in
// testdata/fuzz-corpus (cross-checked against branch-and-bound inside the
// test, so the literal values guard against parser/offset drift).
var wcnfWant = map[string]struct {
	hardUnsat bool
	optimum   int64
}{
	"wcnf-soft-empty-offset.wcnf":  {optimum: 5},
	"wcnf-weight-split-cores.wcnf": {optimum: 5},
	"wcnf-hard-empty-unsat.wcnf":   {hardUnsat: true},
}

// TestWCNFCorpus replays every committed WCNF reproducer through both
// solving paths: the core-guided loop and branch-and-bound over the
// soft-relaxed compilation must agree with each other and with the table.
func TestWCNFCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "fuzz-corpus")
	files, err := filepath.Glob(filepath.Join(dir, "*.wcnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("want at least 2 WCNF reproducers in %s, found %d", dir, len(files))
	}
	seen := 0
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			want, ok := wcnfWant[filepath.Base(f)]
			if !ok {
				t.Fatalf("reproducer %s has no recorded ground truth", filepath.Base(f))
			}
			seen++
			fh, err := os.Open(f)
			if err != nil {
				t.Fatal(err)
			}
			defer fh.Close()
			in, err := Parse(fh)
			if err != nil {
				t.Fatal(err)
			}

			cg := wbo.Solve(in, wbo.Options{})
			if want.hardUnsat {
				if cg.Status != core.StatusUnsat || !cg.HardUnsat {
					t.Fatalf("core-guided: status=%v hardUnsat=%v want unsat/true", cg.Status, cg.HardUnsat)
				}
			} else if cg.Status != core.StatusOptimal || cg.Best != want.optimum {
				t.Fatalf("core-guided: got %v/%d want optimal/%d", cg.Status, cg.Best, want.optimum)
			}

			b, err := in.Builder()
			if err != nil {
				t.Fatal(err)
			}
			sol, err := b.Solve(core.Options{LowerBound: core.LBMIS})
			if err != nil {
				t.Fatal(err)
			}
			if want.hardUnsat {
				if sol.Status != core.StatusUnsat || !sol.HardUnsat {
					t.Fatalf("b&b: status=%v hardUnsat=%v want unsat/true", sol.Status, sol.HardUnsat)
				}
				return
			}
			if sol.Status != core.StatusOptimal || sol.Best+in.Offset != want.optimum {
				t.Fatalf("b&b: got %v/%d (+offset %d) want optimal/%d",
					sol.Status, sol.Best, in.Offset, want.optimum)
			}
		})
	}
	if seen != len(wcnfWant) {
		t.Fatalf("corpus has %d reproducers, table has %d", seen, len(wcnfWant))
	}
}
