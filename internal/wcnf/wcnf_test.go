package wcnf

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/verify"
	"repro/internal/wbo"
)

func parse(t *testing.T, text string) *wbo.Instance {
	t.Helper()
	in, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func parseErr(t *testing.T, text, wantSub string) {
	t.Helper()
	_, err := Parse(strings.NewReader(text))
	if err == nil {
		t.Fatalf("parse succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("err=%q want substring %q", err, wantSub)
	}
}

func TestParseTopWeightIsHard(t *testing.T) {
	in := parse(t, `c weighted instance
p wcnf 3 4 10
10 1 2 0
15 -1 3 0
4 -2 0
1 3 0
`)
	if in.NumVars != 3 {
		t.Fatalf("NumVars=%d want 3", in.NumVars)
	}
	// Weights ≥ top (10 and 15) are hard, the rest soft.
	if len(in.Hard) != 2 || len(in.Soft) != 2 {
		t.Fatalf("hard=%d soft=%d want 2/2", len(in.Hard), len(in.Soft))
	}
	if in.Soft[0].Weight != 4 || in.Soft[1].Weight != 1 {
		t.Fatalf("soft weights %d,%d want 4,1", in.Soft[0].Weight, in.Soft[1].Weight)
	}
	// Hard clause 2 is ¬x1 ∨ x3.
	h := in.Hard[1]
	if h.Cmp != pb.GE || h.Rhs != 1 || len(h.Terms) != 2 {
		t.Fatalf("hard[1] malformed: %+v", h)
	}
	if h.Terms[0].Lit != pb.NegLit(0) || h.Terms[1].Lit != pb.PosLit(2) {
		t.Fatalf("hard[1] literals %v,%v", h.Terms[0].Lit, h.Terms[1].Lit)
	}
}

func TestParseNoTopMeansAllSoft(t *testing.T) {
	in := parse(t, "p wcnf 2 2\n7 1 0\n9 -1 2 0\n")
	if len(in.Hard) != 0 || len(in.Soft) != 2 {
		t.Fatalf("hard=%d soft=%d want 0/2", len(in.Hard), len(in.Soft))
	}
}

func TestParseRejectsNonPositiveWeights(t *testing.T) {
	parseErr(t, "p wcnf 1 1 5\n0 1 0\n", "weight must be positive")
	parseErr(t, "p wcnf 1 1 5\n-3 1 0\n", "weight must be positive")
	parseErr(t, "p wcnf 1 1 0\n1 1 0\n", "bad top weight")
}

func TestParseEmptyClauses(t *testing.T) {
	// Hard empty clause: instance is hard-UNSAT.
	in := parse(t, "p wcnf 1 2 9\n9 0\n1 1 0\n")
	if len(in.Hard) != 1 || len(in.Hard[0].Terms) != 0 {
		t.Fatalf("hard empty clause not preserved: %+v", in.Hard)
	}
	res := wbo.Solve(in, wbo.Options{})
	if !res.HardUnsat {
		t.Fatalf("hard empty clause must make the instance hard-UNSAT, got %+v", res)
	}

	// Soft empty clause: its weight is unconditionally paid via the offset.
	in2 := parse(t, "p wcnf 1 2 9\n3 0\n9 1 0\n")
	if in2.Offset != 3 || len(in2.Soft) != 0 {
		t.Fatalf("offset=%d softs=%d want 3/0", in2.Offset, len(in2.Soft))
	}
	res2 := wbo.Solve(in2, wbo.Options{})
	if res2.Status != core.StatusOptimal || res2.Best != 3 {
		t.Fatalf("got %v/%d want optimal/3", res2.Status, res2.Best)
	}
}

func TestParseDuplicateAndTautologicalLiterals(t *testing.T) {
	// Duplicates collapse to one occurrence; l ∨ ¬l clauses vanish entirely.
	in := parse(t, "p wcnf 2 2 9\n9 1 1 2 0\n4 1 -1 0\n")
	if len(in.Hard) != 1 || len(in.Hard[0].Terms) != 2 {
		t.Fatalf("duplicate literal not collapsed: %+v", in.Hard)
	}
	if len(in.Soft) != 0 {
		t.Fatalf("tautological soft clause kept: %+v", in.Soft)
	}
}

func TestParseTrailingZeroRequired(t *testing.T) {
	parseErr(t, "p wcnf 2 1 9\n9 1 2\n", "unterminated clause")
	// A clause may span lines until its terminating 0.
	in := parse(t, "p wcnf 3 1 9\n9 1\n2 3 0\n")
	if len(in.Hard) != 1 || len(in.Hard[0].Terms) != 3 {
		t.Fatalf("multi-line clause mis-parsed: %+v", in.Hard)
	}
}

func TestParseStructuralErrors(t *testing.T) {
	parseErr(t, "1 1 0\n", "clause before header")
	parseErr(t, "p cnf 1 1\n", "bad header")
	parseErr(t, "p wcnf 1 1 9\n9 2 0\n", "exceeds declared")
	parseErr(t, "p wcnf 1 9 9\np wcnf 1 9 9\n", "duplicate header")
	parseErr(t, "", "missing \"p wcnf\" header")
	parseErr(t, "p wcnf 2 1 9\n9 1 x 0\n", "bad literal")
}

func TestParseValueLineRoundTrip(t *testing.T) {
	// Solve the compiled instance and push the witness through the
	// competition value-line format: formatting then re-parsing must
	// reproduce the assignment bit for bit.
	in := parse(t, `p wcnf 3 5 20
20 1 2 0
20 -1 -2 0
5 1 0
3 2 0
1 3 0
`)
	b, err := in.Builder()
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Problem()
	if err != nil {
		t.Fatal(err)
	}
	res := core.Solve(p, core.Options{})
	if res.Status != core.StatusOptimal || !res.HasSolution {
		t.Fatalf("status=%v want optimal with witness", res.Status)
	}
	line := verify.FormatValueLine(p, res.Values)
	asg, err := verify.ParseValueLine(p, line)
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", line, err)
	}
	if len(asg.Values) != p.NumVars {
		t.Fatalf("round-trip lost variables: %d vs %d", len(asg.Values), p.NumVars)
	}
	for v := range asg.Values {
		if asg.Values[v] != res.Values[v] {
			t.Fatalf("value of %s changed across round-trip", verify.VarName(p, pb.Var(v)))
		}
	}
}

func TestParseWBO(t *testing.T) {
	in, err := ParseWBO(strings.NewReader(`* soft OPB example
soft: 11 ;
[2] +1 x1 +1 x2 >= 2 ;
[3] +1 x3 = 0 ;
+1 x1 +1 x3 >= 1 ;
`))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumVars != 3 || len(in.Hard) != 1 || len(in.Soft) != 2 {
		t.Fatalf("vars=%d hard=%d soft=%d want 3/1/2", in.NumVars, len(in.Hard), len(in.Soft))
	}
	if in.Soft[0].Weight != 2 || in.Soft[1].Weight != 3 || in.Soft[1].Cmp != pb.EQ {
		t.Fatalf("soft constraints mis-parsed: %+v", in.Soft)
	}
	if in.Names[0] != "x1" || in.Names[2] != "x3" {
		t.Fatalf("names %v", in.Names)
	}
	// x1=1,x2=1,x3=0 satisfies everything: optimum 0.
	res := wbo.Solve(in, wbo.Options{})
	if res.Status != core.StatusOptimal || res.Best != 0 {
		t.Fatalf("got %v/%d want optimal/0", res.Status, res.Best)
	}
}

func TestParseWBOObjectiveBecomesUnitSofts(t *testing.T) {
	// min: +2 x1 -3 x2 ⟹ pay 2 when x1, pay 3 when ¬x2, offset −3.
	in, err := ParseWBO(strings.NewReader(`soft: 100 ;
min: +2 x1 -3 x2 ;
+1 x1 +1 x2 >= 1 ;
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Soft) != 2 || in.Offset != -3 {
		t.Fatalf("soft=%d offset=%d want 2/-3", len(in.Soft), in.Offset)
	}
	res := wbo.Solve(in, wbo.Options{})
	// Optimum x1=0, x2=1: cost 0 + offset −3.
	if res.Status != core.StatusOptimal || res.Best != -3 {
		t.Fatalf("got %v/%d want optimal/-3", res.Status, res.Best)
	}
}

func TestParseWBOErrors(t *testing.T) {
	cases := []struct{ text, sub string }{
		{"[2] +1 x1 >= 1 ;\n", "missing \"soft:\" header"},
		{"soft: 5 ;\n[5] +1 x1 >= 1 ;\n", "not below the top cost"},
		{"soft: 5 ;\n[0] +1 x1 >= 1 ;\n", "positive integer"},
		{"soft: 5 ;\n[2 +1 x1 >= 1 ;\n", "unterminated weight prefix"},
		{"soft: 5 ;\n+1 x1 ;\n", "without relational operator"},
		{"soft: 5 ;\nmax: +1 x1 ;\n", "not supported"},
		{"soft: 5 ;\n+1 1bad >= 1 ;\n", "bad variable name"},
	}
	for _, tc := range cases {
		_, err := ParseWBO(strings.NewReader(tc.text))
		if err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%q: err=%v want substring %q", tc.text, err, tc.sub)
		}
	}
}

func TestParseWBOTopZeroMeansNoLimit(t *testing.T) {
	// "soft: ;" (no cost given) allows arbitrary soft weights.
	in, err := ParseWBO(strings.NewReader("soft: ;\n[1000000] +1 x1 >= 1 ;\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Soft) != 1 || in.Soft[0].Weight != 1000000 {
		t.Fatalf("soft=%+v", in.Soft)
	}
}
