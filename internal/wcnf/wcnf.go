// Package wcnf reads Weighted Boolean Optimization instances: the weighted
// CNF (WCNF) format of the MaxSAT evaluation series and the soft-OPB (.wbo)
// extension of the pseudo-Boolean competition format. Both parse into a
// wbo.Instance, which compiles through internal/soft for branch-and-bound or
// solves core-guided through internal/wbo.
//
// WCNF:
//
//	c comments
//	p wcnf <nvars> <nclauses> [<top>]
//	<weight> <lit> <lit> ... 0
//
// A clause whose weight is ≥ top is hard; with no top every clause is soft
// (plain weighted MaxSAT). Weights must be positive. Clauses may span lines;
// the terminating 0 is mandatory.
//
// Soft OPB (.wbo):
//
//	* comments
//	soft: <top> ;
//	[<weight>] +1 x1 +2 x2 >= 2 ;      (soft constraint)
//	+1 x1 +1 x3 >= 1 ;                 (hard constraint)
//
// An optional "min:" objective line is accepted and converted to unit soft
// constraints (a coefficient a on literal l becomes a soft constraint
// "l is false" of weight |a|, with sign handling through the instance
// offset), so plain OPB objectives round-trip through the WBO pipeline.
package wcnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/pb"
	"repro/internal/wbo"
)

// hardEmpty is the canonical encoding of a hard empty clause: 0 ≥ 1 is
// unconditionally false, so the instance is hard-UNSAT, matching MaxSAT
// evaluation semantics for an empty hard clause.
func hardEmpty() wbo.HardCons {
	return wbo.HardCons{Terms: nil, Cmp: pb.GE, Rhs: 1}
}

// Parse reads a WCNF instance from r.
func Parse(r io.Reader) (*wbo.Instance, error) {
	in := &wbo.Instance{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	var (
		sawHeader bool
		hasTop    bool
		top       int64
		declared  int
		lineNo    int
	)
	// Clause accumulator: weight then literals until a terminating 0.
	var (
		inClause bool
		weight   int64
		lits     []pb.Lit
		seen     map[pb.Lit]bool
	)

	endClause := func() error {
		inClause = false
		hard := hasTop && weight >= top
		// Duplicate literals in a clause are harmless repetition; tautological
		// pairs l, ¬l make the clause always true. Deduplicate here so the
		// GE-1 constraint below is well-formed for the solver core.
		uniq := lits[:0]
		taut := false
		for _, l := range lits {
			if seen[l] {
				continue
			}
			if seen[l.Neg()] {
				taut = true
			}
			seen[l] = true
			uniq = append(uniq, l)
		}
		lits = uniq
		if taut {
			return nil
		}
		if len(lits) == 0 {
			if hard {
				in.Hard = append(in.Hard, hardEmpty())
				return nil
			}
			// A soft empty clause can never be satisfied: its weight is an
			// unconditional part of every solution's cost.
			var err error
			if in.Offset, err = pb.CheckedAdd(in.Offset, weight); err != nil {
				return fmt.Errorf("wcnf: line %d: offset: %w", lineNo, err)
			}
			return nil
		}
		terms := make([]pb.Term, len(lits))
		for i, l := range lits {
			terms[i] = pb.Term{Coef: 1, Lit: l}
		}
		if hard {
			in.Hard = append(in.Hard, wbo.HardCons{Terms: terms, Cmp: pb.GE, Rhs: 1})
		} else {
			in.Soft = append(in.Soft, wbo.SoftCons{Weight: weight, Terms: terms, Cmp: pb.GE, Rhs: 1})
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		if line[0] == 'p' {
			if sawHeader {
				return nil, fmt.Errorf("wcnf: line %d: duplicate header", lineNo)
			}
			if inClause {
				return nil, fmt.Errorf("wcnf: line %d: header inside clause", lineNo)
			}
			f := strings.Fields(line)
			if len(f) < 4 || len(f) > 5 || f[1] != "wcnf" {
				return nil, fmt.Errorf("wcnf: line %d: bad header %q (want \"p wcnf nvars nclauses [top]\")", lineNo, line)
			}
			nv, err := strconv.Atoi(f[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("wcnf: line %d: bad variable count %q", lineNo, f[2])
			}
			nc, err := strconv.Atoi(f[3])
			if err != nil || nc < 0 {
				return nil, fmt.Errorf("wcnf: line %d: bad clause count %q", lineNo, f[3])
			}
			declared = nc
			if len(f) == 5 {
				top, err = strconv.ParseInt(f[4], 10, 64)
				if err != nil || top <= 0 {
					return nil, fmt.Errorf("wcnf: line %d: bad top weight %q", lineNo, f[4])
				}
				hasTop = true
			}
			in.NumVars = nv
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("wcnf: line %d: clause before header", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			if !inClause {
				w, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("wcnf: line %d: bad clause weight %q", lineNo, tok)
				}
				if w <= 0 {
					return nil, fmt.Errorf("wcnf: line %d: clause weight must be positive, got %d", lineNo, w)
				}
				inClause = true
				weight = w
				lits = lits[:0]
				if seen == nil {
					seen = map[pb.Lit]bool{}
				} else {
					clear(seen)
				}
				continue
			}
			lv, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("wcnf: line %d: bad literal %q", lineNo, tok)
			}
			if lv == 0 {
				if err := endClause(); err != nil {
					return nil, err
				}
				continue
			}
			v := lv
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if v > in.NumVars {
				return nil, fmt.Errorf("wcnf: line %d: literal %d exceeds declared %d variables", lineNo, lv, in.NumVars)
			}
			lits = append(lits, pb.MkLit(pb.Var(v-1), neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wcnf: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("wcnf: missing \"p wcnf\" header")
	}
	if inClause {
		return nil, fmt.Errorf("wcnf: unterminated clause at end of input (missing 0)")
	}
	if got := len(in.Hard) + len(in.Soft); declared > 0 && got > declared {
		return nil, fmt.Errorf("wcnf: %d clauses parsed but header declared %d", got, declared)
	}
	for v := 0; v < in.NumVars; v++ {
		in.Names = append(in.Names, "x"+strconv.Itoa(v+1))
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// ParseWBO reads a soft-OPB (.wbo) instance from r.
func ParseWBO(r io.Reader) (*wbo.Instance, error) {
	in := &wbo.Instance{}
	vars := map[string]pb.Var{}
	getVar := func(name string) (pb.Var, error) {
		if v, ok := vars[name]; ok {
			return v, nil
		}
		if !validName(name) {
			return 0, fmt.Errorf("wbo: bad variable name %q", name)
		}
		v := pb.Var(in.NumVars)
		in.NumVars++
		in.Names = append(in.Names, name)
		vars[name] = v
		return v, nil
	}

	var (
		hasTop       bool
		top          int64
		sawObjective bool
		lineNo       int
		pending      []string
	)

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		toks := pending
		pending = nil

		if strings.EqualFold(toks[0], "soft:") {
			if hasTop {
				return fmt.Errorf("wbo: line %d: duplicate soft: header", lineNo)
			}
			if len(toks) > 2 {
				return fmt.Errorf("wbo: line %d: bad soft: header %v", lineNo, toks)
			}
			hasTop = true
			if len(toks) == 2 {
				t, err := strconv.ParseInt(toks[1], 10, 64)
				if err != nil || t <= 0 {
					return fmt.Errorf("wbo: line %d: bad top cost %q", lineNo, toks[1])
				}
				top = t
			}
			return nil
		}
		if strings.EqualFold(toks[0], "min:") {
			if sawObjective {
				return fmt.Errorf("wbo: line %d: duplicate objective", lineNo)
			}
			sawObjective = true
			return addObjective(in, toks[1:], getVar, lineNo)
		}
		if strings.EqualFold(toks[0], "max:") {
			return fmt.Errorf("wbo: line %d: max: objectives are not supported (negate to min:)", lineNo)
		}

		// Soft constraints carry a "[w]" weight prefix.
		var weight int64
		isSoft := false
		if w, ok := strings.CutPrefix(toks[0], "["); ok {
			body, ok := strings.CutSuffix(w, "]")
			if !ok {
				return fmt.Errorf("wbo: line %d: unterminated weight prefix %q", lineNo, toks[0])
			}
			wv, err := strconv.ParseInt(body, 10, 64)
			if err != nil || wv <= 0 {
				return fmt.Errorf("wbo: line %d: soft weight must be a positive integer, got %q", lineNo, body)
			}
			if hasTop && top > 0 && wv >= top {
				return fmt.Errorf("wbo: line %d: soft weight %d is not below the top cost %d", lineNo, wv, top)
			}
			weight, isSoft = wv, true
			toks = toks[1:]
		}

		relIdx := -1
		var cmp pb.Cmp
		for i, t := range toks {
			switch t {
			case ">=":
				relIdx, cmp = i, pb.GE
			case "<=":
				relIdx, cmp = i, pb.LE
			case "=":
				relIdx, cmp = i, pb.EQ
			}
			if relIdx >= 0 {
				break
			}
		}
		if relIdx < 0 {
			return fmt.Errorf("wbo: line %d: constraint without relational operator", lineNo)
		}
		rhsToks := toks[relIdx+1:]
		if len(rhsToks) != 1 {
			return fmt.Errorf("wbo: line %d: expected single right-hand side, got %v", lineNo, rhsToks)
		}
		rhs, err := strconv.ParseInt(rhsToks[0], 10, 64)
		if err != nil {
			return fmt.Errorf("wbo: line %d: bad right-hand side %q", lineNo, rhsToks[0])
		}
		terms, err := parseTerms(toks[:relIdx], getVar, lineNo)
		if err != nil {
			return err
		}
		if isSoft {
			in.Soft = append(in.Soft, wbo.SoftCons{Weight: weight, Terms: terms, Cmp: cmp, Rhs: rhs})
		} else {
			in.Hard = append(in.Hard, wbo.HardCons{Terms: terms, Cmp: cmp, Rhs: rhs})
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '*'); i >= 0 {
			line = line[:i]
		}
		for _, field := range strings.Fields(line) {
			for {
				semi := strings.IndexByte(field, ';')
				if semi < 0 {
					pending = append(pending, field)
					break
				}
				if semi > 0 {
					pending = append(pending, field[:semi])
				}
				if err := flush(); err != nil {
					return nil, err
				}
				field = field[semi+1:]
				if field == "" {
					break
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wbo: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if !hasTop {
		return nil, fmt.Errorf("wbo: missing \"soft:\" header")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// addObjective converts a "min:" objective into unit soft constraints:
// +a·x is a soft constraint x = 0 of weight a (pay a when x is true), and
// −a·x is the substitution a·x − a + a·(1−x): offset −a plus a soft
// constraint x = 1 of weight a. Coefficient 0 terms are dropped.
func addObjective(in *wbo.Instance, toks []string, getVar func(string) (pb.Var, error), lineNo int) error {
	terms, err := parseTerms(toks, getVar, lineNo)
	if err != nil {
		return err
	}
	for _, t := range terms {
		coef := t.Coef
		lit := t.Lit
		if coef == 0 {
			continue
		}
		if coef < 0 {
			// coef·[l] = coef + |coef|·[¬l]: fold the constant into the
			// offset and pay |coef| when l is false.
			if in.Offset, err = pb.CheckedAdd(in.Offset, coef); err != nil {
				return fmt.Errorf("wbo: line %d: objective offset: %w", lineNo, err)
			}
			if coef, err = pb.CheckedNeg(coef); err != nil {
				return fmt.Errorf("wbo: line %d: objective coefficient: %w", lineNo, err)
			}
			lit = lit.Neg()
		}
		// Soft constraint "lit is false": violated (paying coef) iff lit true.
		in.Soft = append(in.Soft, wbo.SoftCons{
			Weight: coef,
			Terms:  []pb.Term{{Coef: 1, Lit: lit}},
			Cmp:    pb.LE,
			Rhs:    0,
		})
	}
	return nil
}

// parseTerms parses an alternating coefficient/literal token sequence.
// Literals are x<k> or identifiers, with '~' negation; a missing coefficient
// defaults to +1 (some generators emit bare literals in objectives).
func parseTerms(toks []string, getVar func(string) (pb.Var, error), lineNo int) ([]pb.Term, error) {
	var terms []pb.Term
	i := 0
	for i < len(toks) {
		coef := int64(1)
		tok := toks[i]
		if c, err := strconv.ParseInt(tok, 10, 64); err == nil {
			coef = c
			i++
			if i >= len(toks) {
				return nil, fmt.Errorf("wbo: line %d: coefficient %d without literal", lineNo, coef)
			}
			tok = toks[i]
		}
		neg := false
		if strings.HasPrefix(tok, "~") {
			neg = true
			tok = tok[1:]
		}
		v, err := getVar(tok)
		if err != nil {
			return nil, fmt.Errorf("wbo: line %d: %w", lineNo, err)
		}
		terms = append(terms, pb.Term{Coef: coef, Lit: pb.MkLit(v, neg)})
		i++
	}
	return terms, nil
}

// validName matches OPB identifiers: a letter or '_' followed by letters,
// digits or '_'.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
