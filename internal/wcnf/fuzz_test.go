package wcnf

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/wbo"
)

// FuzzWCNFParse exercises the WCNF reader with hostile input: it must never
// panic, every accepted instance must validate and compile through
// soft.Builder, and on tiny instances the core-guided optimum must match the
// brute-force optimum of the compiled problem. (Run with
// `go test -fuzz=FuzzWCNFParse ./internal/wcnf` for a live session; the seed
// corpus runs in ordinary `go test`.)
func FuzzWCNFParse(f *testing.F) {
	seeds := []string{
		"p wcnf 2 2 9\n9 1 2 0\n4 -1 0\n",
		"p wcnf 2 2\n7 1 0\n9 -1 2 0\n",
		"p wcnf 1 2 9\n9 0\n1 1 0\n",
		"p wcnf 1 1 9\n3 0\n",
		"p wcnf 2 2 9\n9 1 1 2 0\n4 1 -1 0\n",
		"p wcnf 3 1 9\n9 1\n2 3 0\n",
		"c comment\np wcnf 1 1 5\n5 1 0\n",
		"p wcnf 1 1 5\n0 1 0\n",
		"p wcnf 1 1 5\n9223372036854775807 1 0\n",
		"p wcnf 1 1\n",
		"p wcnf 0 0 2\n",
		"p cnf 1 1\n1 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		in, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected: fine
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails validation: %v\ninput: %q", err, input)
		}
		b, err := in.Builder()
		if err != nil {
			// Compilation may legitimately refuse (e.g. big-M overflow on
			// near-MaxInt64 weights); it must do so with an error, not a
			// panic, and the core-guided path must refuse identically.
			res := wbo.Solve(in, wbo.Options{MaxIterations: 4})
			if res.Status != core.StatusError {
				t.Fatalf("Builder rejected (%v) but core-guided returned %v\ninput: %q",
					err, res.Status, input)
			}
			return
		}
		p, err := b.Problem()
		if err != nil {
			t.Fatalf("builder compiled but Problem failed: %v\ninput: %q", err, input)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("compiled problem fails validation: %v\ninput: %q", err, input)
		}
		if p.NumVars > 12 || len(in.Soft) > 6 {
			return // keep the differential cheap
		}
		ref := pb.BruteForce(p)
		res := wbo.Solve(in, wbo.Options{MaxConflicts: 200000})
		switch {
		case !ref.Feasible:
			if !res.HardUnsat {
				t.Fatalf("brute force says hard-UNSAT, core-guided says %v\ninput: %q",
					res.Status, input)
			}
		case res.Status == core.StatusOptimal:
			want := ref.Optimum + in.Offset
			if res.Best != want {
				t.Fatalf("core-guided optimum %d, brute force %d\ninput: %q",
					res.Best, want, input)
			}
			penalty, _ := in.Penalty(res.Values)
			if penalty+in.Offset != res.Best {
				t.Fatalf("witness penalty %d does not match claimed optimum %d\ninput: %q",
					penalty+in.Offset, res.Best, input)
			}
		}
	})
}
