package preprocess

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func TestFailedLiteralProbing(t *testing.T) {
	// x0 ∨ x1, x0 ∨ ¬x1 ⇒ probing ¬x0 conflicts ⇒ x0 fixed.
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(0), pb.NegLit(1))
	out, info, err := Apply(p, Options{Probing: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.FixedLiterals == 0 {
		t.Fatal("expected a fixed literal")
	}
	// Semantics preserved.
	r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
	if r1.Feasible != r2.Feasible {
		t.Fatalf("feasibility changed: %v vs %v", r1.Feasible, r2.Feasible)
	}
}

func TestProbingProvesUnsat(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(0), pb.NegLit(1))
	_ = p.AddClause(pb.NegLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.NegLit(0), pb.NegLit(1))
	out, info, err := Apply(p, Options{Probing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !info.ProvedUnsat {
		t.Fatal("expected ProvedUnsat")
	}
	if pb.BruteForce(out).Feasible {
		t.Fatal("output should be unsatisfiable")
	}
}

func TestStrengtheningAddsImplications(t *testing.T) {
	// x0 ⇒ x1 via clause (¬x0 ∨ x1) is already there; use a PB constraint
	// where implication is only visible to propagation:
	// 2x1 + 1x2 >= 2 forces x1; probing ¬x1 conflicts. Instead craft:
	// 2¬x0 + 2x1 + 1x2 >= 3: assigning x0 ⇒ need 2x1+x2 >= 3 ⇒ x1 and x2.
	p := pb.NewProblem(3)
	if err := p.AddConstraint([]pb.Term{
		{Coef: 2, Lit: pb.NegLit(0)}, {Coef: 2, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.PosLit(2)},
	}, pb.GE, 3); err != nil {
		t.Fatal(err)
	}
	out, info, err := Apply(p, Options{Strengthening: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Implications == 0 {
		t.Fatal("expected implications")
	}
	// Semantics preserved on all assignments.
	for mask := 0; mask < 8; mask++ {
		vals := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if p.Feasible(vals) != out.Feasible(vals) {
			t.Fatalf("mask %d: semantics changed", mask)
		}
	}
}

func TestSubsumption(t *testing.T) {
	p := pb.NewProblem(3)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1), pb.PosLit(2)) // subsumed
	_ = p.AddClause(pb.NegLit(2))                             // unrelated unit
	out, info, err := Apply(p, Options{Subsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.SubsumedRemoved != 1 {
		t.Fatalf("removed=%d want 1", info.SubsumedRemoved)
	}
	if len(out.Constraints) != 2 {
		t.Fatalf("constraints=%d want 2", len(out.Constraints))
	}
}

func TestPreprocessingPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(5)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(6)))
		}
		for i := 0; i < 2+rng.Intn(7); i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(1 + rng.Intn(3)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(4)))
		}
		out, _, err := Apply(p, Options{Probing: true, Strengthening: true, Subsumption: true})
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := pb.BruteForce(p), pb.BruteForce(out)
		if r1.Feasible != r2.Feasible {
			t.Fatalf("iter %d: feasibility changed %v→%v", iter, r1.Feasible, r2.Feasible)
		}
		if r1.Feasible && r1.Optimum != r2.Optimum {
			t.Fatalf("iter %d: optimum changed %d→%d", iter, r1.Optimum, r2.Optimum)
		}
	}
}

func TestMaxProbeVarsCap(t *testing.T) {
	p := pb.NewProblem(10)
	for v := 0; v < 9; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.PosLit(pb.Var(v+1)))
	}
	_, _, err := Apply(p, Options{Probing: true, MaxProbeVars: 2})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoOptionsIsIdentity(t *testing.T) {
	p := pb.NewProblem(2)
	p.SetCost(0, 3)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	out, info, err := Apply(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info != (Info{}) {
		t.Fatalf("info=%+v want zero", info)
	}
	if len(out.Constraints) != len(p.Constraints) || out.NumVars != p.NumVars {
		t.Fatal("problem changed")
	}
}
