package preprocess

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func randomFixProblem(rng *rand.Rand, n int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(6)))
	}
	for i := 0; i < 2+rng.Intn(7); i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{Coef: int64(1 + rng.Intn(3)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(4)))
	}
	return p
}

// TestFixVariablesPreservesOptimum is the core soundness property: solving
// the reduced problem and lifting must reproduce the original optimum, and
// the lifted optimum witness must be feasible for the ORIGINAL problem.
func TestFixVariablesPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(456))
	fixedTotal := 0
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(5)
		p := randomFixProblem(rng, n)
		orig := pb.BruteForce(p)
		f, err := FixVariables(p, DefaultFixOptions)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		fixedTotal += f.NumFixed()
		red := pb.BruteForce(f.Problem)
		if orig.Feasible != red.Feasible {
			t.Fatalf("iter %d: feasibility changed %v→%v (fixed=%d unsat=%v)",
				iter, orig.Feasible, red.Feasible, f.NumFixed(), f.ProvedUnsat)
		}
		if !orig.Feasible {
			if !f.ProvedUnsat && f.Problem.NumVars == 0 {
				// Presolve may legitimately leave an UNSAT instance to search;
				// only a 0-var reduced problem must carry the proof.
				t.Fatalf("iter %d: empty reduced problem without ProvedUnsat", iter)
			}
			continue
		}
		if f.ProvedUnsat {
			t.Fatalf("iter %d: ProvedUnsat on feasible instance", iter)
		}
		// BruteForce optima include CostOffset, so they must agree directly.
		if red.Optimum != orig.Optimum {
			t.Fatalf("iter %d: optimum changed %d→%d (fixed=%d)",
				iter, orig.Optimum, red.Optimum, f.NumFixed())
		}
		lifted := f.Lift(red.Values)
		if len(lifted) != n {
			t.Fatalf("iter %d: lifted length %d want %d", iter, len(lifted), n)
		}
		if !p.Feasible(lifted) {
			t.Fatalf("iter %d: lifted witness infeasible for original", iter)
		}
		if got := p.ObjectiveValue(lifted); got != orig.Optimum {
			t.Fatalf("iter %d: lifted witness cost %d want %d", iter, got, orig.Optimum)
		}
	}
	if fixedTotal == 0 {
		t.Fatal("presolve never fixed a variable across 300 random instances")
	}
}

// TestFixVariablesMapping checks the NewToOld/OldToNew inverse relationship
// and FixedValue consistency with Lift.
func TestFixVariablesMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(789))
	for iter := 0; iter < 100; iter++ {
		p := randomFixProblem(rng, 4+rng.Intn(4))
		f, err := FixVariables(p, DefaultFixOptions)
		if err != nil {
			t.Fatal(err)
		}
		if f.ProvedUnsat {
			continue
		}
		if len(f.NewToOld) != f.Problem.NumVars {
			t.Fatalf("NewToOld len %d vs NumVars %d", len(f.NewToOld), f.Problem.NumVars)
		}
		if p.NumVars-f.NumFixed() != f.Problem.NumVars {
			t.Fatalf("fixed=%d orig=%d reduced=%d inconsistent",
				f.NumFixed(), p.NumVars, f.Problem.NumVars)
		}
		for nv, ov := range f.NewToOld {
			if f.OldToNew[ov] != int32(nv) {
				t.Fatalf("OldToNew[%d]=%d want %d", ov, f.OldToNew[ov], nv)
			}
			if _, fixed := f.FixedValue(ov); fixed {
				t.Fatalf("surviving var %d reported fixed", ov)
			}
			if f.Problem.Cost[nv] != p.Cost[ov] {
				t.Fatalf("cost mismatch for new %d / old %d", nv, ov)
			}
		}
		// Lift must agree with FixedValue on fixed vars regardless of the
		// reduced assignment.
		vals := make([]bool, f.Problem.NumVars)
		for i := range vals {
			vals[i] = rng.Intn(2) == 0
		}
		lifted := f.Lift(vals)
		for v := 0; v < p.NumVars; v++ {
			if fv, fixed := f.FixedValue(pb.Var(v)); fixed {
				if lifted[v] != fv {
					t.Fatalf("lifted[%d]=%v but FixedValue=%v", v, lifted[v], fv)
				}
			} else if lifted[v] != vals[f.OldToNew[v]] {
				t.Fatalf("lifted[%d] does not copy reduced value", v)
			}
		}
	}
}

// TestFixVariablesPersistency pins the two persistency rules on hand-built
// instances.
func TestFixVariablesPersistency(t *testing.T) {
	// v1 appears only negatively (and costs 2): must be fixed to 0.
	// v2 appears only positively with cost 0: must be fixed to 1, satisfying
	// its row, which in turn frees v0's row... here v0 stays (mixed polarity).
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.SetCost(2, 0)
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.NegLit(1)},
	}, pb.GE, 1)
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.NegLit(0)}, {Coef: 1, Lit: pb.PosLit(2)},
	}, pb.GE, 1)
	f, err := FixVariables(p, FixOptions{Persistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.FixedValue(1); !ok || v {
		t.Fatalf("v1: fixed=%v val=%v want fixed false", ok, v)
	}
	if v, ok := f.FixedValue(2); !ok || !v {
		t.Fatalf("v2: fixed=%v val=%v want fixed true", ok, v)
	}
	// With ¬v1 true and v2 true both rows are satisfied; v0 becomes pure
	// (appears in no active row) and is fixed to its free polarity 0.
	if v, ok := f.FixedValue(0); !ok || v {
		t.Fatalf("v0: fixed=%v val=%v want fixed false (cascade)", ok, v)
	}
	if f.Problem.NumVars != 0 {
		t.Fatalf("reduced NumVars=%d want 0", f.Problem.NumVars)
	}
	if f.Problem.CostOffset != 0 {
		t.Fatalf("CostOffset=%d want 0 (only cost-0 var fixed true)", f.Problem.CostOffset)
	}
}

// TestFixVariablesCostOffset: fixing a costly variable to true via probing
// must surface its cost in CostOffset.
func TestFixVariablesCostOffset(t *testing.T) {
	// Unit row forces v0 true; v0 costs 7.
	p := pb.NewProblem(2)
	p.SetCost(0, 7)
	p.SetCost(1, 1)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.NegLit(0)},
	}, pb.GE, 1)
	f, err := FixVariables(p, DefaultFixOptions)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.FixedValue(0); !ok || !v {
		t.Fatalf("v0 not fixed true: fixed=%v val=%v", ok, v)
	}
	// With v0=1 the second row is unit on x1, so root propagation fixes v1
	// true as well: CostOffset carries both costs (7 + 1).
	if f.Problem.CostOffset != 8 {
		t.Fatalf("CostOffset=%d want 8", f.Problem.CostOffset)
	}
	red := pb.BruteForce(f.Problem)
	orig := pb.BruteForce(p)
	if !red.Feasible || red.Optimum != orig.Optimum {
		t.Fatalf("reduced optimum %d (feasible=%v) want %d", red.Optimum, red.Feasible, orig.Optimum)
	}
}

// TestFixVariablesUnsat: presolve must prove root-level infeasibility and
// return an explicitly contradictory problem.
func TestFixVariablesUnsat(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(0), pb.NegLit(1))
	_ = p.AddClause(pb.NegLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.NegLit(0), pb.NegLit(1))
	f, err := FixVariables(p, DefaultFixOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ProvedUnsat {
		t.Fatal("expected ProvedUnsat")
	}
	if pb.BruteForce(f.Problem).Feasible {
		t.Fatal("reduced problem should be unsatisfiable")
	}
}

// TestFixVariablesNamesPreserved: surviving variables keep their names.
func TestFixVariablesNamesPreserved(t *testing.T) {
	p := pb.NewProblem(3)
	p.Names = []string{"a", "b", "c"}
	p.SetCost(1, 3)
	// v0 forced true; v1, v2 survive (mixed polarity keeps them unfixed).
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.NegLit(2)},
	}, pb.GE, 1)
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.NegLit(1)}, {Coef: 1, Lit: pb.PosLit(2)},
	}, pb.GE, 1)
	f, err := FixVariables(p, FixOptions{Probing: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.FixedValue(0); !ok {
		t.Fatal("v0 should be fixed")
	}
	for nv, ov := range f.NewToOld {
		want := p.Names[ov]
		if nv >= len(f.Problem.Names) || f.Problem.Names[nv] != want {
			t.Fatalf("name for new var %d: got %q want %q", nv, f.Problem.Names, want)
		}
	}
}
