// Package preprocess implements the preprocessing techniques the paper's
// experimental section mentions (§6): probing for necessary assignments and
// constraint strengthening in the style of Savelsbergh [14] and Dixon &
// Ginsberg [6], plus the covering-style simplification (clause subsumption)
// used on the synthesis benchmark set [7,15].
//
// All transformations are solution-preserving:
//
//   - Failed-literal probing: assigning l and propagating to a conflict
//     proves ¬l; the literal is fixed with a unit constraint.
//   - Implication strengthening: if propagating l forces q, the binary
//     clause ¬l ∨ q is entailed; adding it strengthens unit propagation
//     (the engine's counter propagation does not otherwise see the
//     implication until l is assigned).
//   - Subsumption: a clause whose literal set is a subset of another
//     clause's implies it; the superset clause is removed. General PB rows
//     are left untouched.
package preprocess

import (
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/pb"
)

// Options selects preprocessing steps. The zero value applies nothing.
type Options struct {
	// Probing enables failed-literal detection (necessary assignments).
	Probing bool
	// Strengthening adds binary implication clauses discovered by probing.
	Strengthening bool
	// Subsumption removes clauses subsumed by shorter ones.
	Subsumption bool
	// MaxProbeVars caps how many variables are probed (0 = all). Variables
	// are probed in order of descending occurrence count.
	MaxProbeVars int
	// MaxImplications caps how many implication clauses may be added
	// (default 4× the constraint count; negative = unlimited).
	MaxImplications int
	// CoverReductions applies the covering-problem reductions of
	// internal/cover (essential columns, row/column dominance) to the unate
	// part of the instance before probing. Optimum-preserving but not
	// solution-set-preserving (column dominance may exclude some optima).
	CoverReductions bool
	// CardinalityDetect rewrites input rows that are semantically
	// cardinality constraints (identical solution set) to unit coefficients
	// — e.g. 3x+3y+2z ≥ 5 becomes x+y+z ≥ 2. Solution-set-preserving; the
	// unit form is cheaper to propagate and is recognized exactly by the LPR
	// clique-cut separator.
	CardinalityDetect bool
}

// Info reports what preprocessing did.
type Info struct {
	FixedLiterals   int
	Implications    int
	SubsumedRemoved int
	// CardinalityNormalized counts rows rewritten to unit coefficients by
	// CardinalityDetect.
	CardinalityNormalized int
	ProvedUnsat           bool
	// Cover reports the covering-reduction statistics when CoverReductions
	// was enabled.
	Cover cover.Info
}

// Apply returns a preprocessed copy of p (same variable numbering; solutions
// map 1:1) together with statistics. When the instance is proved
// unsatisfiable during probing, Info.ProvedUnsat is set and the returned
// problem contains an explicit contradiction so downstream solvers agree.
func Apply(p *pb.Problem, opt Options) (*pb.Problem, Info, error) {
	out := p.Clone()
	var info Info

	if opt.CoverReductions {
		reduced, cinfo, err := cover.Reduce(out)
		if err != nil {
			return nil, info, err
		}
		out = reduced
		info.Cover = cinfo
	}

	if opt.CardinalityDetect {
		// Before subsumption: normalized degree-1 rows become clauses and
		// join the subsumption pass.
		info.CardinalityNormalized = normalizeCardinalities(out)
	}

	if opt.Subsumption {
		info.SubsumedRemoved = subsume(out)
	}

	if opt.Probing || opt.Strengthening {
		if err := probe(out, opt, &info); err != nil {
			return nil, info, err
		}
	}
	return out, info, nil
}

// normalizeCardinalities rewrites semantically-cardinality rows in place to
// unit coefficients (cuts.DetectCardinality certifies the solution set is
// unchanged). Returns the number of rows rewritten. Already-unit rows are
// left alone.
func normalizeCardinalities(p *pb.Problem) int {
	n := 0
	for _, c := range p.Constraints {
		unit := true
		for _, t := range c.Terms {
			if t.Coef != 1 {
				unit = false
				break
			}
		}
		if unit {
			continue
		}
		need, ok := cuts.DetectCardinality(c.Terms, c.Degree)
		if !ok {
			continue
		}
		for i := range c.Terms {
			c.Terms[i].Coef = 1
		}
		c.Degree = int64(need)
		n++
	}
	return n
}

// subsume removes clauses whose literal set is a superset of another
// clause's. Returns the number of removed constraints.
func subsume(p *pb.Problem) int {
	type clauseInfo struct {
		idx  int
		lits map[pb.Lit]bool
	}
	var clauses []clauseInfo
	for i, c := range p.Constraints {
		if c.Kind() != pb.KindClause {
			continue
		}
		m := make(map[pb.Lit]bool, len(c.Terms))
		for _, t := range c.Terms {
			m[t.Lit] = true
		}
		clauses = append(clauses, clauseInfo{i, m})
	}
	sort.Slice(clauses, func(a, b int) bool { return len(clauses[a].lits) < len(clauses[b].lits) })
	removed := map[int]bool{}
	for i := 0; i < len(clauses); i++ {
		if removed[clauses[i].idx] {
			continue
		}
		small := clauses[i]
		for j := i + 1; j < len(clauses); j++ {
			big := clauses[j]
			if removed[big.idx] || len(big.lits) <= len(small.lits) {
				continue
			}
			subset := true
			for l := range small.lits {
				if !big.lits[l] {
					subset = false
					break
				}
			}
			if subset {
				removed[big.idx] = true
			}
		}
	}
	if len(removed) == 0 {
		return 0
	}
	var kept []*pb.Constraint
	for i, c := range p.Constraints {
		if !removed[i] {
			kept = append(kept, c)
		}
	}
	p.Constraints = kept
	return len(removed)
}

// probe runs failed-literal probing and implication strengthening.
func probe(p *pb.Problem, opt Options, info *Info) error {
	maxImpl := opt.MaxImplications
	if maxImpl == 0 {
		maxImpl = 4 * len(p.Constraints)
	}

	// Probe order: variables by descending occurrence count.
	occ := make([]int, p.NumVars)
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			occ[t.Lit.Var()]++
		}
	}
	order := make([]pb.Var, p.NumVars)
	for v := range order {
		order[v] = pb.Var(v)
	}
	sort.Slice(order, func(a, b int) bool {
		if occ[order[a]] != occ[order[b]] {
			return occ[order[a]] > occ[order[b]]
		}
		return order[a] < order[b]
	})
	if opt.MaxProbeVars > 0 && len(order) > opt.MaxProbeVars {
		order = order[:opt.MaxProbeVars]
	}

	e := engine.New(p)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		info.ProvedUnsat = true
		markUnsat(p)
		return nil
	}

	type implication struct{ from, to pb.Lit }
	var impls []implication
	var fixed []pb.Lit

	for _, v := range order {
		if e.Value(v) != engine.Unassigned {
			continue
		}
		for _, probeLit := range []pb.Lit{pb.PosLit(v), pb.NegLit(v)} {
			if e.Value(v) != engine.Unassigned {
				break
			}
			base := e.TrailSize()
			e.Decide(probeLit)
			if e.Propagate() >= 0 {
				// Failed literal: ¬probeLit is necessary.
				e.BacktrackTo(0)
				if opt.Probing {
					if !e.Enqueue(probeLit.Neg(), engine.NoReason) {
						info.ProvedUnsat = true
						markUnsat(p)
						return nil
					}
					if e.Propagate() >= 0 {
						info.ProvedUnsat = true
						markUnsat(p)
						return nil
					}
					fixed = append(fixed, probeLit.Neg())
					info.FixedLiterals++
				}
				continue
			}
			if opt.Strengthening && len(impls) < maxImpl {
				for i := base + 1; i < e.TrailSize(); i++ {
					impls = append(impls, implication{probeLit, e.TrailLit(i)})
					if len(impls) >= maxImpl {
						break
					}
				}
			}
			e.BacktrackTo(0)
		}
	}

	for _, l := range fixed {
		if err := p.AddClause(l); err != nil {
			return fmt.Errorf("preprocess: fixing literal: %w", err)
		}
	}
	for _, im := range impls {
		if err := p.AddClause(im.from.Neg(), im.to); err != nil {
			return fmt.Errorf("preprocess: implication clause: %w", err)
		}
		info.Implications++
	}
	return nil
}

// markUnsat appends an explicit contradiction (empty constraint of positive
// degree is not expressible through AddConstraint, so use x ∧ ¬x on var 0,
// creating a variable when the problem has none).
func markUnsat(p *pb.Problem) {
	if p.NumVars == 0 {
		p.AddVar(0)
	}
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.NegLit(0))
}
