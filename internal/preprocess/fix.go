// Presolve variable fixing: permanently fix variables before search and
// rewrite the problem over the survivors, in the spirit of roof-duality /
// persistency preprocessing (strong persistencies of the QPBO literature,
// the technique dwave-preprocessing applies to QUBOs) combined with
// failed-literal probing. Unlike the same-numbering transformations in
// Apply, FixVariables *eliminates* the fixed variables: the returned problem
// is densely renumbered and strictly smaller, and the Fixing carries the
// verified mapping back to the original variable space (Lift) so value
// lines, verify.Check and the in-search auditor all operate on original
// variables.
//
// Two classes of fixes are applied, both optimum-preserving on problems in
// normal form (GE rows, positive coefficients, non-negative costs):
//
//   - Necessary assignments: root unit propagation plus failed-literal
//     probing (assigning l and propagating to a conflict proves ¬l). These
//     are entailed by the constraints — every feasible assignment agrees —
//     so fixing them is even solution-preserving.
//   - Costed persistencies (the roof-duality-style rule): a variable that
//     never appears positively in an active row can be fixed to 0 — every
//     remaining literal of it is ¬v, which only gains from v=0, and v=0 is
//     the free polarity (costs are non-negative). Dually, a variable with
//     cost 0 that never appears negatively can be fixed to 1. These
//     preserve at least one optimum (any solution can be moved to the fixed
//     polarity without raising its cost or breaking a constraint) but not
//     the full solution set, so downstream verification must Lift back and
//     check against the *original* problem — which the fuzz matrix does.
package preprocess

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/pb"
)

// FixOptions selects presolve fixing steps. The zero value applies only the
// free root-propagation fixes; DefaultFixOptions enables everything.
type FixOptions struct {
	// Probing enables failed-literal probing (necessary assignments).
	Probing bool
	// Persistency enables the costed pure-polarity (roof-duality-style)
	// fixing rule, iterated to fixpoint with row deactivation.
	Persistency bool
	// MaxProbeVars caps how many variables are probed (0 = all). Variables
	// are probed in order of descending occurrence count.
	MaxProbeVars int
}

// DefaultFixOptions enables probing and persistency fixing, unbounded.
var DefaultFixOptions = FixOptions{Probing: true, Persistency: true}

// Fixing is the result of FixVariables: the rewritten problem plus the
// mapping back to the original variable space.
type Fixing struct {
	// Problem is the reduced problem over the unfixed variables, densely
	// renumbered, with CostOffset accumulated so that the optimum of
	// Problem equals the optimum of the original instance. When ProvedUnsat
	// is set it contains an explicit contradiction instead.
	Problem *pb.Problem
	// ProvedUnsat reports that presolve proved the instance infeasible.
	ProvedUnsat bool

	// NewToOld maps each variable of Problem to its original index.
	NewToOld []pb.Var
	// OldToNew maps original variables to reduced indices (-1 when fixed).
	OldToNew []int32

	// ProbeFixed counts variables fixed by propagation/probing;
	// PersistencyFixed those fixed by the costed persistency rule;
	// Rounds the persistency fixpoint iterations.
	ProbeFixed       int
	PersistencyFixed int
	Rounds           int

	// fixedVal[v] is the fixed polarity of original variable v: 0, 1, or
	// -1 when v survived into Problem.
	fixedVal []int8
	origVars int
}

// NumFixed returns how many original variables were eliminated.
func (f *Fixing) NumFixed() int { return f.ProbeFixed + f.PersistencyFixed }

// FixedValue reports the fixed polarity of original variable v (ok=false
// when v survived into the reduced problem).
func (f *Fixing) FixedValue(v pb.Var) (bool, bool) {
	if f.fixedVal[v] < 0 {
		return false, false
	}
	return f.fixedVal[v] == 1, true
}

// Lift maps an assignment of the reduced problem back to the original
// variable space: fixed variables take their fixed polarity, survivors copy
// their reduced value. values must have length Problem.NumVars.
func (f *Fixing) Lift(values []bool) []bool {
	out := make([]bool, f.origVars)
	for v := 0; v < f.origVars; v++ {
		switch {
		case f.fixedVal[v] >= 0:
			out[v] = f.fixedVal[v] == 1
		default:
			out[v] = values[f.OldToNew[v]]
		}
	}
	return out
}

// FixVariables runs the presolve fixing pipeline on p (which is not
// modified) and returns the reduced problem plus the variable mapping.
func FixVariables(p *pb.Problem, opt FixOptions) (*Fixing, error) {
	f := &Fixing{
		fixedVal: make([]int8, p.NumVars),
		origVars: p.NumVars,
	}
	for v := range f.fixedVal {
		f.fixedVal[v] = -1
	}

	// Phase 1: necessary assignments via root propagation + probing. All
	// fixes land on the engine's root trail, in original numbering.
	e := engine.New(p)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		return f.provedUnsat(), nil
	}
	if opt.Probing {
		for _, v := range probeOrder(p, opt.MaxProbeVars) {
			if e.Value(v) != engine.Unassigned {
				continue
			}
			for _, probeLit := range []pb.Lit{pb.PosLit(v), pb.NegLit(v)} {
				if e.Value(v) != engine.Unassigned {
					break
				}
				e.Decide(probeLit)
				conflict := e.Propagate() >= 0
				e.BacktrackTo(0)
				if !conflict {
					continue
				}
				// Failed literal: ¬probeLit is necessary at the root.
				if !e.Enqueue(probeLit.Neg(), engine.NoReason) || e.Propagate() >= 0 {
					return f.provedUnsat(), nil
				}
			}
		}
	}
	for i := 0; i < e.TrailSize(); i++ {
		l := e.TrailLit(i)
		if l.IsNeg() {
			f.fixedVal[l.Var()] = 0
		} else {
			f.fixedVal[l.Var()] = 1
		}
		f.ProbeFixed++
	}

	// Phase 2: costed persistency fixpoint. A row is active while its
	// residual degree (degree minus fixed-true contributions) is positive;
	// only active rows pin variables.
	if opt.Persistency {
		pos := make([]int, p.NumVars)
		neg := make([]int, p.NumVars)
		for {
			f.Rounds++
			for v := range pos {
				pos[v], neg[v] = 0, 0
			}
			for _, c := range p.Constraints {
				residual, infeasible := residualDegree(c, f.fixedVal)
				if infeasible {
					return f.provedUnsat(), nil
				}
				if residual <= 0 {
					continue
				}
				for _, t := range c.Terms {
					if f.fixedVal[t.Lit.Var()] >= 0 {
						continue
					}
					if t.Lit.IsNeg() {
						neg[t.Lit.Var()]++
					} else {
						pos[t.Lit.Var()]++
					}
				}
			}
			changed := false
			for v := 0; v < p.NumVars; v++ {
				if f.fixedVal[v] >= 0 {
					continue
				}
				switch {
				case pos[v] == 0:
					// Only ¬v remains (or v is unconstrained): v=0 helps
					// every active row and pays nothing (cost ≥ 0).
					f.fixedVal[v] = 0
					f.PersistencyFixed++
					changed = true
				case neg[v] == 0 && p.Cost[v] == 0:
					// Only v remains and raising it is free.
					f.fixedVal[v] = 1
					f.PersistencyFixed++
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	// Phase 3: rewrite over the survivors with dense renumbering.
	f.OldToNew = make([]int32, p.NumVars)
	for v := 0; v < p.NumVars; v++ {
		if f.fixedVal[v] >= 0 {
			f.OldToNew[v] = -1
			continue
		}
		f.OldToNew[v] = int32(len(f.NewToOld))
		f.NewToOld = append(f.NewToOld, pb.Var(v))
	}
	q := pb.NewProblem(len(f.NewToOld))
	q.CostOffset = p.CostOffset
	for nv, ov := range f.NewToOld {
		q.SetCost(pb.Var(nv), p.Cost[ov])
		if ov < pb.Var(len(p.Names)) {
			for len(q.Names) < nv {
				q.Names = append(q.Names, "")
			}
			q.Names = append(q.Names, p.Names[ov])
		}
	}
	for v := 0; v < p.NumVars; v++ {
		if f.fixedVal[v] == 1 {
			q.CostOffset += p.Cost[v]
		}
	}
	var terms []pb.Term
	for _, c := range p.Constraints {
		residual, infeasible := residualDegree(c, f.fixedVal)
		if infeasible {
			return f.provedUnsat(), nil
		}
		if residual <= 0 {
			continue
		}
		terms = terms[:0]
		var liveSum int64
		for _, t := range c.Terms {
			nv := f.OldToNew[t.Lit.Var()]
			if nv < 0 {
				continue // fixed: true literals already reduced the degree
			}
			terms = append(terms, pb.Term{Coef: t.Coef, Lit: pb.MkLit(pb.Var(nv), t.Lit.IsNeg())})
			liveSum += t.Coef
		}
		if liveSum < residual {
			return f.provedUnsat(), nil
		}
		if err := q.AddConstraint(terms, pb.GE, residual); err != nil {
			return nil, fmt.Errorf("preprocess: rewriting constraint: %w", err)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("preprocess: reduced problem invalid: %w", err)
	}
	f.Problem = q
	return f, nil
}

// provedUnsat finalizes f as an infeasibility proof: the reduced problem is
// an explicit contradiction so downstream solvers agree without special
// casing, and no variable mapping is needed (Lift is never called on UNSAT).
func (f *Fixing) provedUnsat() *Fixing {
	f.ProvedUnsat = true
	q := pb.NewProblem(0)
	markUnsat(q)
	f.Problem = q
	f.NewToOld = nil
	f.OldToNew = nil
	return f
}

// residualDegree computes c's degree minus the contributions of fixed-true
// literals. infeasible reports a row every literal of which is fixed false
// while the residual stays positive.
func residualDegree(c *pb.Constraint, fixedVal []int8) (residual int64, infeasible bool) {
	residual = c.Degree
	anyLive := false
	for _, t := range c.Terms {
		switch fv := fixedVal[t.Lit.Var()]; {
		case fv < 0:
			anyLive = true
		case (fv == 1) != t.Lit.IsNeg():
			residual -= t.Coef
		}
	}
	return residual, residual > 0 && !anyLive
}

// probeOrder returns variables ordered by descending occurrence count,
// optionally truncated.
func probeOrder(p *pb.Problem, maxVars int) []pb.Var {
	occ := make([]int, p.NumVars)
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			occ[t.Lit.Var()]++
		}
	}
	order := make([]pb.Var, p.NumVars)
	for v := range order {
		order[v] = pb.Var(v)
	}
	sort.Slice(order, func(a, b int) bool {
		if occ[order[a]] != occ[order[b]] {
			return occ[order[a]] > occ[order[b]]
		}
		return order[a] < order[b]
	})
	if maxVars > 0 && len(order) > maxVars {
		order = order[:maxVars]
	}
	return order
}
