package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pb"
)

// TestChaosAcceptance is the PR's acceptance test (run under -race in CI):
// a saturated queue with panics, cache corruption and a hard straggler
// injected all at once must
//
//   - shed with 429, never hang a client;
//   - answer every admitted job with an audited-correct optimum or an
//     explicit cancelled/shed/timeout/stalled/error status — never a torn
//     result, never an audit violation;
//   - rescue at least one stuck job via the watchdog;
//   - drain cleanly on shutdown, resolving all in-flight jobs and flushing
//     the final metrics snapshot.
func TestChaosAcceptance(t *testing.T) {
	defer fault.Reset()

	// Reference optima, computed clean before any fault is armed.
	pool := loadPool(6, 42)
	optima := make([]int64, len(pool))
	for i, p := range pool {
		res := core.SafeSolve(p, core.Options{LowerBound: core.LBLPR, CardinalityInference: true, TimeLimit: 20 * time.Second})
		if res.Status != core.StatusOptimal {
			t.Fatalf("reference solve %d: %v", i, res.Status)
		}
		optima[i] = res.Best
	}

	// The storm: occasional admission crashes, frequent solve crashes,
	// corrupted cache reuses, and every MIS solve stalling hard inside an
	// uncancellable sleep.
	fault.Arm("serve.admit", fault.Spec{Kind: fault.KindPanic, Every: 23})
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindPanic, Prob: 0.12, Seed: 7})
	fault.Arm("serve.cache", fault.Spec{Kind: fault.KindCorrupt, Prob: 0.5, Seed: 11, Value: 1})
	fault.Arm("mis.estimate", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 3 * time.Second})

	reg := obs.NewRegistry()
	s := New(Config{
		Workers:      4,
		QueueCap:     4, // tiny on purpose: saturation must shed
		TenantMax:    8,
		StallTimeout: 150 * time.Millisecond,
		StallGrace:   100 * time.Millisecond,
		Audit:        true,
		Registry:     reg,
	})

	type outcome struct {
		job  *Job
		pool int
	}
	var (
		mu       sync.Mutex
		admitted []outcome
		shed     int
		rejected int
	)
	const (
		clients = 12
		perC    = 10
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perC; k++ {
				i := (c*perC + k) % len(pool)
				solver := []string{"lpr", "plain", "lgr"}[k%3]
				if c == 0 && k < 3 {
					solver = "mis" // the dedicated stragglers
				}
				j, aerr := s.Submit(pool[i], SubmitOptions{
					Tenant:  fmt.Sprintf("t%d", c%5),
					Solver:  solver,
					Timeout: 2 * time.Second,
				})
				if aerr != nil {
					mu.Lock()
					if aerr.Code == 429 {
						shed++
					} else {
						rejected++
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				admitted = append(admitted, outcome{j, i})
				mu.Unlock()
				if c%2 == 0 {
					// Half the clients long-poll their job: keeps the queue
					// both saturated (shedding) and draining (solving).
					waitDone(j, 10*time.Second, nil)
				}
			}
		}(c)
	}
	// All submissions return promptly even against a saturated queue: the
	// driver goroutines themselves are the hang detector.
	submitDone := make(chan struct{})
	go func() { wg.Wait(); close(submitDone) }()
	select {
	case <-submitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("submission storm hung — admission blocked instead of shedding")
	}

	// Every admitted job reaches a terminal status within a bounded wait.
	for _, o := range admitted {
		select {
		case <-o.job.done:
		case <-time.After(15 * time.Second):
			t.Fatalf("job %s never resolved (status %v)", o.job.ID, o.job.view().Status)
		}
	}

	// Verdicts: only exact audited optima or explicit degradations.
	statuses := map[JobStatus]int{}
	for _, o := range admitted {
		v := o.job.view()
		statuses[v.Status]++
		p, want := pool[o.pool], optima[o.pool]
		switch v.Status {
		case JobOptimal:
			if v.Best == nil || *v.Best != want {
				t.Fatalf("%s: claimed optimum %v, reference %d", v.ID, v.Best, want)
			}
			checkWhole(t, p, v)
		case JobSatisfiable, JobTimeout, JobCancelled, JobStalled:
			// Degraded answers may carry an incumbent; it must be whole and
			// can never beat the true optimum.
			if v.Best != nil {
				if *v.Best < want {
					t.Fatalf("%s: incumbent %d beats the true optimum %d", v.ID, *v.Best, want)
				}
				if v.Values != "" {
					checkWhole(t, p, v)
				}
			}
		case JobError:
			// Only injected crashes are tolerable errors; an audit violation
			// means the envelope served (or almost served) a wrong answer.
			if strings.Contains(v.Err, "audit:") {
				t.Fatalf("%s: audit violation surfaced: %s", v.ID, v.Err)
			}
		default:
			t.Fatalf("%s: non-terminal status %v after done", v.ID, v.Status)
		}
	}

	st := s.Stats()
	if shed == 0 || st.ShedQueue == 0 {
		t.Fatalf("saturated queue never shed (client sheds %d, stats %d)", shed, st.ShedQueue)
	}
	if statuses[JobStalled] == 0 || st.WatchdogRescues == 0 {
		t.Fatalf("no watchdog rescue observed (statuses %v, stats rescues %d)", statuses, st.WatchdogRescues)
	}
	if st.PanicsIsolated == 0 {
		t.Fatal("no panic was isolated — the injection did not exercise the barrier")
	}

	// Shutdown under the same storm: everything resolves, metrics flush.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Drain(ctx)
	if !rep.Clean {
		t.Fatalf("drain not clean: %+v", rep)
	}
	if !rep.MetricsFlushed || rep.FinalSnapshot.Schema == "" {
		t.Fatalf("final metrics snapshot not flushed: %+v", rep)
	}
	t.Logf("chaos: %d admitted %v, %d shed, %d rejected; rescues=%d panics=%d cacheFalls=%d",
		len(admitted), statuses, shed, rejected, st.WatchdogRescues, st.PanicsIsolated, st.CacheFallbacks)
}

func checkWhole(t *testing.T, p *pb.Problem, v JobView) {
	t.Helper()
	vals := ParseBitstring(v.Values)
	if len(vals) != p.NumVars || !p.Feasible(vals) {
		t.Fatalf("%s: infeasible assignment served", v.ID)
	}
	if got := p.ObjectiveValue(vals); got != *v.Best {
		t.Fatalf("%s: torn result: best=%d but assignment costs %d", v.ID, *v.Best, got)
	}
}
