package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/pb"
)

// ProblemKey fingerprints a problem's mathematical content — variable count,
// costs, offset, and every normalized constraint — so syntactic noise in the
// submitted OPB text (whitespace, comments, variable names) maps to the same
// session. Used as the solve-session cache key.
func ProblemKey(p *pb.Problem) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(int64(p.NumVars))
	w(p.CostOffset)
	for _, c := range p.Cost {
		w(c)
	}
	for _, c := range p.Constraints {
		w(c.Degree)
		w(int64(len(c.Terms)))
		for _, t := range c.Terms {
			w(t.Coef)
			w(int64(t.Lit))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sessionEntry is one cached solve session: the best known feasible
// assignment and the persistent LP warm-start state of the last solve.
// Ownership discipline: at most one running job holds an entry (inUse);
// concurrent submissions of the same problem run cold rather than sharing
// mutable warm state.
type sessionEntry struct {
	key      string
	inUse    bool
	values   []bool
	cost     int64 // internal cost (excluding CostOffset), informational
	lpr      *bounds.LPRState
	hits     int64
	lastUsed time.Time
}

// session is a caller's lease on an entry. Exactly one of release/discard
// must be called when the job finishes (discard when the solve was abandoned
// to a runaway goroutine that may still touch the warm state).
type session struct {
	c     *sessionCache
	entry *sessionEntry
	// warm is the seedable incumbent (nil when the entry held none).
	warm []bool
	lpr  *bounds.LPRState
}

type sessionCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*sessionEntry
}

func newSessionCache(capacity int) *sessionCache {
	if capacity <= 0 {
		return nil
	}
	return &sessionCache{cap: capacity, entries: make(map[string]*sessionEntry)}
}

// acquire leases the session for key, creating it on first sight. hit
// reports whether previous-session state (incumbent or warm basis) was
// available. Returns nil when the cache is disabled or the entry is leased
// to a concurrently running job (the caller solves cold).
func (c *sessionCache) acquire(key string) (s *session, hit bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= c.cap {
			c.evictLocked()
		}
		e = &sessionEntry{key: key}
		c.entries[key] = e
	}
	if e.inUse {
		return nil, false
	}
	e.inUse = true
	e.hits++
	e.lastUsed = time.Now()
	s = &session{c: c, entry: e, warm: e.values, lpr: e.lpr}
	return s, e.values != nil || e.lpr != nil
}

// evictLocked drops the least-recently-used idle entry.
func (c *sessionCache) evictLocked() {
	var victim *sessionEntry
	for _, e := range c.entries {
		if e.inUse {
			continue
		}
		if victim == nil || e.lastUsed.Before(victim.lastUsed) {
			victim = e
		}
	}
	if victim != nil {
		delete(c.entries, victim.key)
	}
}

// release returns the lease, storing the finished solve's state: values
// (when a feasible solution is known) and the LP warm-start state used by
// the solve. Passing values=nil keeps the previous incumbent.
func (s *session) release(values []bool, cost int64, lpr *bounds.LPRState) {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	e := s.entry
	e.inUse = false
	e.lastUsed = time.Now()
	if values != nil {
		e.values = append([]bool(nil), values...)
		e.cost = cost
	}
	if lpr != nil {
		e.lpr = lpr
	}
}

// discard drops the entry entirely: the job that held the lease was
// abandoned (watchdog demotion or forced drain) and its runaway goroutine
// may still be mutating the warm state, so nothing in it can ever be reused.
func (s *session) discard() {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	delete(s.c.entries, s.entry.key)
}

// invalidate clears the entry's stored state but keeps the (leased) entry:
// the corruption-safe path when a cached incumbent fails re-verification.
func (s *session) invalidate() {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.entry.values = nil
	s.entry.cost = 0
	s.entry.lpr = nil
	s.warm = nil
	s.lpr = nil
}

// len reports the number of cached sessions (stats endpoint).
func (c *sessionCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
