package serve

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DrainOnSignal arms the daemon's shutdown path: when one of the signals
// arrives (default SIGTERM/SIGINT), the server drains with the given budget
// and the report is delivered on the returned channel. The signal handler is
// released after the first signal, so a second SIGTERM kills the process the
// default way — an operator's escape hatch from a misbehaving drain.
//
// cmd/bsolvd and the load-smoke test share this exact wiring, so the test's
// syscall.Kill(SIGTERM) exercises the same path production shutdown takes.
func (s *Server) DrainOnSignal(budget time.Duration, signals ...os.Signal) <-chan DrainReport {
	if len(signals) == 0 {
		signals = []os.Signal{syscall.SIGTERM, syscall.SIGINT}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, signals...)
	out := make(chan DrainReport, 1)
	go func() {
		<-ch
		signal.Stop(ch)
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		defer cancel()
		out <- s.Drain(ctx)
	}()
	return out
}
