// Package serve is bsolvd's robustness envelope: it turns the solver
// libraries (core, portfolio, share, bounds, obs) into a long-running
// PBO-as-a-service daemon that survives overload, stragglers, poisoned
// instances and member crashes without ever corrupting an answer.
//
// The envelope, layer by layer (DESIGN.md §12):
//
//   - Admission control: a bounded job queue plus per-tenant concurrency
//     quotas. When either is full the daemon sheds load with 429 and a
//     Retry-After hint instead of queueing unboundedly — latency stays
//     bounded under overload, and one hot tenant cannot starve the rest.
//   - Deadline propagation: every job carries a wall-clock deadline fixed at
//     admission. Time spent waiting in the queue is charged against it, the
//     remainder is threaded into core.Options.TimeLimit (and from there into
//     every bounds.Budget), and a job whose deadline expired while queued is
//     answered "timeout" without wasting a solve.
//   - Per-job panic isolation: each solve runs behind its own recover
//     barrier (on top of core.SafeSolve and the portfolio's member
//     isolation), so a poisoned instance crashes one job, never the daemon.
//   - Watchdog demotion: a job whose solve stops making observable progress
//     (live-metrics fingerprint and incumbent stream both frozen) is
//     cancelled, given a grace period, and — if it still will not return —
//     demoted to its best incumbent ("stalled") while the runaway goroutine
//     is abandoned and its worker slot reclaimed. Clients never hang on a
//     stuck solve.
//   - Graceful drain: SIGTERM stops admission (503), lets in-flight and
//     queued jobs finish within the drain budget, cancels what remains,
//     force-resolves anything stuck, flushes metrics, and exits with zero
//     lost jobs — every admitted job reaches a terminal status.
//   - Solve-session cache: re-submissions of the same problem (keyed by a
//     content hash) are seeded with the previous solve's incumbent and LP
//     warm-start state. Every reuse path re-verifies before trusting: a
//     corrupted cached incumbent fails feasibility re-checking and the solve
//     falls back to cold — cache trouble can cost speed, never correctness.
//
// Fault-injection points ("serve.admit", "serve.queue", "serve.job",
// "serve.cache") cover the admission, dequeue, solve and cache-reuse paths;
// the chaos suite arms them all at once and asserts the acceptance
// invariants above.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pb"
	"repro/internal/portfolio"
	"repro/internal/share"
)

// Config sizes the robustness envelope. The zero value selects defaults
// suitable for tests and small deployments.
type Config struct {
	// QueueCap bounds the number of admitted-but-not-yet-running jobs
	// (default 64). A full queue sheds new submissions with 429.
	QueueCap int
	// Workers is the solver worker-pool size (default GOMAXPROCS).
	Workers int
	// TenantMax caps one tenant's queued+running jobs (default 16;
	// negative = unlimited). Beyond it the tenant is shed with 429.
	TenantMax int
	// DefaultDeadline is the per-job wall-clock budget when the submission
	// names none (default 10s). MaxDeadline clamps client-requested budgets
	// (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// StallTimeout is how long a running job may show no observable progress
	// before the watchdog intervenes (default 2s). StallGrace is how long a
	// cancelled-by-watchdog solve gets to unwind before the job is demoted
	// to its incumbent and the goroutine abandoned (default StallTimeout/2).
	StallTimeout time.Duration
	StallGrace   time.Duration
	// CacheCap bounds the solve-session cache in entries (default 256;
	// negative disables caching).
	CacheCap int
	// JobsCap bounds retained terminal jobs for status queries (default
	// 4096; oldest terminal jobs are evicted beyond it).
	JobsCap int
	// MaxBodyBytes bounds the submitted OPB size (default 8 MiB).
	MaxBodyBytes int64
	// Audit attaches an invariant auditor to every job and converts audit
	// violations into "error" statuses. Expensive; meant for the chaos suite
	// and debugging, not production serving.
	Audit bool
	// Registry, when non-nil, receives service metadata and serves the
	// unified metrics document on the daemon's /metrics endpoint.
	Registry *obs.Registry
	// Trace, when non-nil, records structured search events from every job
	// (Named per job ID) into the shared ring.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.TenantMax == 0 {
		c.TenantMax = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.StallGrace <= 0 {
		c.StallGrace = c.StallTimeout / 2
	}
	if c.CacheCap == 0 {
		c.CacheCap = 256
	}
	if c.JobsCap <= 0 {
		c.JobsCap = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// counters is the serve-level metrics block (all atomics: scraped live).
type counters struct {
	submitted     atomic.Int64
	admitted      atomic.Int64
	badRequests   atomic.Int64
	shedQueue     atomic.Int64
	shedTenant    atomic.Int64
	drainRejected atomic.Int64

	completed   atomic.Int64
	optimal     atomic.Int64
	satisfiable atomic.Int64
	unsat       atomic.Int64
	timeouts    atomic.Int64
	cancelled   atomic.Int64
	stalled     atomic.Int64
	errors      atomic.Int64

	panicsIsolated  atomic.Int64
	memberCrashes   atomic.Int64
	watchdogKicks   atomic.Int64
	watchdogRescues atomic.Int64
	abandoned       atomic.Int64
	drainForced     atomic.Int64

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheFallback atomic.Int64
	cacheStores   atomic.Int64
}

// Server is one bsolvd instance.
type Server struct {
	cfg   Config
	start time.Time

	mu           sync.Mutex
	draining     bool
	queue        chan *Job
	jobs         map[string]*Job
	order        []string // insertion order, for terminal-job eviction
	tenantActive map[string]int
	seq          int64

	wg        sync.WaitGroup // workers
	watchStop chan struct{}
	watchDone chan struct{}
	cache     *sessionCache

	drainOnce   sync.Once
	drainDone   chan struct{}
	drainReport DrainReport

	ctr counters

	latMu    sync.Mutex
	latCount int64
	latSumMs float64
	latMaxMs float64
}

// Config reports the server's effective configuration — the caller's
// Config with every zero field replaced by its default.
func (s *Server) Config() Config { return s.cfg }

// New starts a server: the worker pool and the stall watchdog begin
// immediately. Stop it with Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		start:        time.Now(),
		queue:        make(chan *Job, cfg.QueueCap),
		jobs:         make(map[string]*Job),
		tenantActive: make(map[string]int),
		watchStop:    make(chan struct{}),
		watchDone:    make(chan struct{}),
		drainDone:    make(chan struct{}),
		cache:        newSessionCache(cfg.CacheCap),
	}
	if cfg.Registry != nil {
		cfg.Registry.SetMeta("service", "bsolvd")
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go s.watchdog()
	return s
}

// SubmitOptions parameterizes one submission.
type SubmitOptions struct {
	// Tenant is the quota bucket ("" = "anon").
	Tenant string
	// Solver selects the engine: plain|mis|lgr|lpr|portfolio ("" = lpr).
	Solver string
	// Timeout is the requested wall-clock budget (clamped to MaxDeadline;
	// 0 = DefaultDeadline). The clock starts at admission: queue wait is
	// charged against it.
	Timeout time.Duration
}

// AdmitError is a rejected submission: an HTTP status code, a reason, and —
// for load sheds — a Retry-After hint in seconds.
type AdmitError struct {
	Code       int
	Reason     string
	RetryAfter int
}

func (e *AdmitError) Error() string { return fmt.Sprintf("%d %s", e.Code, e.Reason) }

// Submit admits (or sheds) one parsed problem. Admission is panic-isolated:
// a crash in the admission path (e.g. the "serve.admit" fault point) is
// converted into a 500 rejection instead of taking down the daemon.
func (s *Server) Submit(prob *pb.Problem, opts SubmitOptions) (j *Job, aerr *AdmitError) {
	s.ctr.submitted.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.ctr.panicsIsolated.Add(1)
			j, aerr = nil, &AdmitError{Code: 500, Reason: fmt.Sprintf("admission panic isolated: %v", r)}
		}
	}()
	fault.Fire("serve.admit", opts.Tenant)
	if _, _, err := solverMode(opts.Solver); err != nil {
		s.ctr.badRequests.Add(1)
		return nil, &AdmitError{Code: 400, Reason: err.Error()}
	}
	if err := prob.Validate(); err != nil {
		s.ctr.badRequests.Add(1)
		return nil, &AdmitError{Code: 400, Reason: "invalid problem: " + firstLine(err.Error())}
	}
	tenant := opts.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultDeadline
	}
	if timeout > s.cfg.MaxDeadline {
		timeout = s.cfg.MaxDeadline
	}
	now := time.Now()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.ctr.drainRejected.Add(1)
		return nil, &AdmitError{Code: 503, Reason: "draining: not admitting new jobs"}
	}
	if s.cfg.TenantMax > 0 && s.tenantActive[tenant] >= s.cfg.TenantMax {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.ctr.shedTenant.Add(1)
		return nil, &AdmitError{Code: 429, Reason: "tenant concurrency quota exhausted", RetryAfter: retry}
	}
	s.seq++
	job := &Job{
		ID:     fmt.Sprintf("j%06d", s.seq),
		Tenant: tenant,
		Solver: canonSolver(opts.Solver),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
		live:   &obs.Live{},
		prob:   prob,
	}
	job.status = JobQueued
	job.submitted = now
	job.deadline = now.Add(timeout)
	job.lastBeat = now
	select {
	case s.queue <- job:
	default:
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.ctr.shedQueue.Add(1)
		return nil, &AdmitError{Code: 429, Reason: "job queue full", RetryAfter: retry}
	}
	s.tenantActive[tenant]++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictLocked()
	s.mu.Unlock()
	s.ctr.admitted.Add(1)
	return job, nil
}

// retryAfterLocked estimates when shedding is likely to stop: one queue
// drain's worth of seconds, clamped to [1, 30].
func (s *Server) retryAfterLocked() int {
	secs := 1 + len(s.queue)/s.cfg.Workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// evictLocked drops the oldest terminal jobs beyond JobsCap.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.JobsCap && len(s.order) > 0 {
		evicted := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			j.mu.Lock()
			terminal := j.status.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live; never evict live jobs
		}
	}
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs are finalized
// immediately; running jobs unwind at the solver's next cancellation poll
// (or are demoted by the watchdog if they refuse to).
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.requestCancel(true)
	// A queued job has no worker to resolve it: finalize here so the client
	// sees "cancelled" without waiting for a dequeue.
	j.mu.Lock()
	queued := j.status == JobQueued
	j.mu.Unlock()
	if queued {
		s.finalizeJob(j, JobCancelled, nil, nil, "")
	}
	return true
}

// --- workers ---

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// solveOutcome is what the (possibly abandoned) solve goroutine delivers.
type solveOutcome struct {
	res      core.Result
	auditErr string
}

func (s *Server) runJob(j *Job) {
	if !j.markRunning() {
		return // finalized while queued (client cancel or drain force)
	}
	fault.Fire("serve.queue", j.Tenant)
	now := time.Now()
	if !now.Before(j.deadline) {
		// The deadline died in the queue: answer without burning a solve.
		s.finalizeJob(j, JobTimeout, nil, nil, "deadline expired while queued")
		return
	}
	select {
	case <-j.cancel:
		s.finalizeJob(j, JobCancelled, nil, nil, "")
		return
	default:
	}

	var sess *session
	if s.cache != nil {
		key := ProblemKey(j.prob)
		var hit bool
		sess, hit = s.cache.acquire(key)
		if hit {
			s.ctr.cacheHits.Add(1)
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
		} else {
			s.ctr.cacheMisses.Add(1)
		}
	}

	solveDone := make(chan solveOutcome, 1)
	go func() { solveDone <- s.solveGuarded(j, sess) }()
	select {
	case out := <-solveDone:
		s.completeJob(j, sess, out)
	case <-j.done:
		// The watchdog (or the drain deadline) already resolved the job
		// while the solve refuses to return: reclaim the worker slot,
		// abandon the goroutine, and poison the cache lease — the runaway
		// may still be mutating the warm state, so none of it is reusable.
		s.ctr.abandoned.Add(1)
		sess.discard()
	}
}

// solveGuarded runs one job's solve behind the per-job panic barrier.
func (s *Server) solveGuarded(j *Job, sess *session) (out solveOutcome) {
	defer func() {
		if r := recover(); r != nil {
			s.ctr.panicsIsolated.Add(1)
			out = solveOutcome{res: core.Result{
				Status: core.StatusError,
				Err:    fmt.Errorf("serve: job %s panicked: %v", j.ID, r),
			}}
		}
	}()
	fault.Fire("serve.job", j.Tenant, j.Solver)

	// Deadline propagation: whatever the queue wait left over becomes the
	// solver's TimeLimit, which core further subdivides into per-call
	// bounds.Budget deadlines.
	rem := time.Until(j.deadline)
	if rem <= 0 {
		return solveOutcome{res: core.Result{Status: core.StatusLimit}}
	}

	// Session-cache seeding, verified before trusted. The "serve.cache"
	// fault point simulates a corrupted cache entry; corruption is caught by
	// the feasibility re-check and degrades to a cold solve.
	var warm []bool
	if sess != nil && sess.warm != nil {
		warm = sess.warm
		if v := fault.Corrupt("serve.cache", 0, j.Tenant); v != 0 {
			warm = corruptValues(warm)
		}
		if len(warm) != j.prob.NumVars || !j.prob.Feasible(warm) {
			sess.invalidate()
			s.ctr.cacheFallback.Add(1)
			warm = nil
		}
	}

	var aud *audit.Auditor
	if s.cfg.Audit {
		aud = audit.New(j.prob)
	}

	method, isPortfolio, _ := solverMode(j.Solver)
	if isPortfolio {
		configs := portfolio.DefaultConfigs()
		for i := range configs {
			configs[i].Options.TimeLimit = rem
			configs[i].Options.OnIncumbent = j.recordIncumbent
			configs[i].Options.Live = j.live
		}
		pres := portfolio.SolveOpts(j.prob, configs, portfolio.Options{
			Stop:          j.cancel,
			Audit:         aud,
			WarmIncumbent: warm,
			Trace:         s.cfg.Trace.Named(j.ID),
		})
		s.ctr.memberCrashes.Add(int64(len(pres.Errors)))
		out.res = pres.Result
	} else {
		opt := core.Options{
			LowerBound:           method,
			TimeLimit:            rem,
			Cancel:               j.cancel,
			CardinalityInference: true,
			OnIncumbent:          j.recordIncumbent,
			Live:                 j.live,
			Audit:                aud,
			Trace:                s.cfg.Trace.Named(j.ID),
		}
		// A private one-member board makes the solver's incumbents (values
		// included) observable mid-run: the watchdog's demotion answer and
		// the cache seed both read it.
		board := share.NewBoard(share.Config{})
		if warm != nil {
			portfolio.SeedIncumbent(board, j.prob, warm)
		}
		j.setBoard(board)
		opt.Share = board.Join(j.ID)
		if method == core.LBLPR && sess != nil {
			if sess.lpr == nil {
				sess.lpr = &bounds.LPRState{}
			}
			opt.LPRState = sess.lpr
		}
		out.res = core.SafeSolve(j.prob, opt)
	}
	if aud != nil && !aud.Ok() {
		rep := aud.Snapshot()
		out.auditErr = fmt.Sprintf("audit: %d invariant violations (first: %s)",
			len(rep.Violations), firstViolation(rep))
	}
	return out
}

// completeJob maps a finished solve onto the job's terminal status and
// stores the session state for the next re-submission.
func (s *Server) completeJob(j *Job, sess *session, out solveOutcome) {
	res := out.res
	if sess != nil {
		var vals []bool
		var cost int64
		if res.HasSolution && len(res.Values) == j.prob.NumVars && j.prob.Feasible(res.Values) {
			vals = res.Values
			cost = res.Best - j.prob.CostOffset
			s.ctr.cacheStores.Add(1)
		}
		sess.release(vals, cost, sess.lpr)
	}

	var best *int64
	var values []bool
	if res.HasSolution {
		b := res.Best
		best = &b
		values = res.Values
	}
	var st JobStatus
	errMsg := ""
	switch res.Status {
	case core.StatusOptimal:
		st = JobOptimal
	case core.StatusSatisfiable:
		st = JobSatisfiable
	case core.StatusUnsat:
		st = JobUnsat
	case core.StatusError:
		st = JobError
		if res.Err != nil {
			errMsg = res.Err.Error()
		}
	default: // StatusLimit: attribute the interruption
		j.mu.Lock()
		rescuing := j.rescuing
		cancelReq := j.cancelReq
		j.mu.Unlock()
		switch {
		case rescuing:
			// The watchdog fired but the solve unwound within the grace
			// period: demotion semantics, delivered by the solve itself.
			st = JobStalled
		case cancelReq:
			st = JobCancelled
		default:
			st = JobTimeout
		}
	}
	if out.auditErr != "" {
		// An audit violation outranks any verdict: never serve an answer the
		// auditor rejected as if it were clean.
		st = JobError
		errMsg = out.auditErr
		best = nil
		values = nil
	}
	s.finalizeJob(j, st, best, values, errMsg)
}

// finalizeJob is the single terminal-transition point: job state, tenant
// quota release, status counters and latency accounting all happen here (and
// only for the finalize call that won the race).
func (s *Server) finalizeJob(j *Job, st JobStatus, best *int64, values []bool, errMsg string) bool {
	if !j.finalize(st, best, values, errMsg) {
		return false
	}
	s.mu.Lock()
	if s.tenantActive[j.Tenant] > 1 {
		s.tenantActive[j.Tenant]--
	} else {
		delete(s.tenantActive, j.Tenant)
	}
	s.mu.Unlock()
	s.ctr.completed.Add(1)
	switch st {
	case JobOptimal:
		s.ctr.optimal.Add(1)
	case JobSatisfiable:
		s.ctr.satisfiable.Add(1)
	case JobUnsat:
		s.ctr.unsat.Add(1)
	case JobTimeout:
		s.ctr.timeouts.Add(1)
	case JobCancelled:
		s.ctr.cancelled.Add(1)
	case JobStalled:
		s.ctr.stalled.Add(1)
		s.ctr.watchdogRescues.Add(1)
	case JobError:
		s.ctr.errors.Add(1)
	}
	v := j.view()
	s.latMu.Lock()
	s.latCount++
	s.latSumMs += v.WallMs
	if v.WallMs > s.latMaxMs {
		s.latMaxMs = v.WallMs
	}
	s.latMu.Unlock()
	return true
}

// --- watchdog ---

func (s *Server) watchdog() {
	defer close(s.watchDone)
	interval := s.cfg.StallTimeout / 8
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
			s.scanStalls(time.Now())
		}
	}
}

// scanStalls advances the two-phase stall state machine for every running
// job: a frozen progress fingerprint first triggers a cancel (the solve may
// unwind normally and deliver its own incumbent), and a solve that outlives
// the grace period after that is demoted — finalized as "stalled" with the
// best incumbent observed, its goroutine abandoned by runJob.
func (s *Server) scanStalls(now time.Time) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.status != JobRunning {
			j.mu.Unlock()
			continue
		}
		rescuing := j.rescuing
		rescueAt := j.rescueAt
		j.mu.Unlock()

		if rescuing {
			if now.Sub(rescueAt) >= s.cfg.StallGrace {
				best, values := j.bestKnown()
				s.finalizeJob(j, JobStalled, best, values, "watchdog: solve stalled; demoted to best incumbent")
			}
			continue
		}
		sig := j.progressSig()
		j.mu.Lock()
		if sig != j.lastSig {
			j.lastSig = sig
			j.lastBeat = now
			j.mu.Unlock()
			continue
		}
		stalled := now.Sub(j.lastBeat) >= s.cfg.StallTimeout
		j.mu.Unlock()
		if stalled {
			s.ctr.watchdogKicks.Add(1)
			j.requestCancel(false)
		}
	}
}

// --- drain ---

// DrainReport is the outcome of a graceful shutdown.
type DrainReport struct {
	// Resolved counts jobs that were in flight (queued or running) when the
	// drain began and reached a terminal status during it.
	Resolved int
	// Forced is the subset that had to be force-finalized at the drain
	// deadline (stuck solves demoted to their incumbents).
	Forced int
	// Clean reports a fully graceful drain: every job resolved, workers and
	// watchdog joined.
	Clean bool
	// MetricsFlushed reports that the final unified snapshot was assembled
	// (Registry configured).
	MetricsFlushed bool
	// FinalSnapshot is that snapshot (zero when no Registry).
	FinalSnapshot obs.Snapshot
}

// Drain performs the SIGTERM shutdown sequence: stop admitting (503), let
// in-flight and queued jobs finish until ctx expires, then cancel the
// remainder, grace-wait, force-resolve anything still stuck, join the worker
// pool and the watchdog, and flush metrics. Idempotent: concurrent callers
// all receive the same report once the first drain completes.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.drainOnce.Do(func() { s.drainReport = s.drain(ctx.Done()) })
	<-s.drainDone
	return s.drainReport
}

func (s *Server) drain(deadline <-chan struct{}) DrainReport {
	defer close(s.drainDone)
	s.mu.Lock()
	s.draining = true
	close(s.queue) // submits check draining under mu first: no send-after-close
	s.mu.Unlock()

	pending := func() []*Job {
		s.mu.Lock()
		defer s.mu.Unlock()
		var out []*Job
		for _, j := range s.jobs {
			j.mu.Lock()
			if !j.status.Terminal() {
				out = append(out, j)
			}
			j.mu.Unlock()
		}
		return out
	}
	inFlight := len(pending())

	// Phase 1: let the queue and the running jobs finish naturally.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
phase1:
	for len(pending()) > 0 {
		select {
		case <-deadline:
			break phase1
		case <-tick.C:
		}
	}

	// Phase 2: the drain budget is spent — cancel everything that remains
	// and give it one stall-grace to unwind through the solver's own
	// cancellation path.
	rest := pending()
	for _, j := range rest {
		j.requestCancel(true)
	}
	if len(rest) > 0 {
		grace := time.NewTimer(s.cfg.StallGrace)
	phase2:
		for len(pending()) > 0 {
			select {
			case <-grace.C:
				break phase2
			case <-tick.C:
			}
		}
		grace.Stop()
	}

	// Phase 3: force-resolve stuck stragglers so no admitted job is ever
	// lost; their worker slots unblock on j.done and the pool joins.
	forced := 0
	for _, j := range pending() {
		best, values := j.bestKnown()
		if s.finalizeJob(j, JobCancelled, best, values, "forced at drain deadline") {
			forced++
			s.ctr.drainForced.Add(1)
		}
	}
	s.wg.Wait()
	close(s.watchStop)
	<-s.watchDone

	rep := DrainReport{
		Resolved: inFlight,
		Forced:   forced,
		Clean:    len(pending()) == 0,
	}
	if s.cfg.Registry != nil {
		s.cfg.Registry.SetMeta("drained", "true")
		rep.FinalSnapshot = s.cfg.Registry.Snapshot()
		rep.MetricsFlushed = true
	}
	return rep
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// --- stats ---

// Stats is a point-in-time snapshot of the serve-level counters.
type Stats struct {
	UptimeMs float64 `json:"uptime_ms"`
	Draining bool    `json:"draining"`
	Queued   int     `json:"queued"`
	Running  int     `json:"running"`

	Submitted     int64 `json:"submitted"`
	Admitted      int64 `json:"admitted"`
	BadRequests   int64 `json:"bad_requests"`
	ShedQueue     int64 `json:"shed_queue"`
	ShedTenant    int64 `json:"shed_tenant"`
	DrainRejected int64 `json:"drain_rejected"`

	Completed   int64 `json:"completed"`
	Optimal     int64 `json:"optimal"`
	Satisfiable int64 `json:"satisfiable"`
	Unsat       int64 `json:"unsatisfiable"`
	Timeouts    int64 `json:"timeouts"`
	Cancelled   int64 `json:"cancelled"`
	Stalled     int64 `json:"stalled"`
	Errors      int64 `json:"errors"`

	PanicsIsolated  int64 `json:"panics_isolated"`
	MemberCrashes   int64 `json:"member_crashes"`
	WatchdogKicks   int64 `json:"watchdog_kicks"`
	WatchdogRescues int64 `json:"watchdog_rescues"`
	Abandoned       int64 `json:"abandoned"`
	DrainForced     int64 `json:"drain_forced"`

	CacheSessions  int   `json:"cache_sessions"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheFallbacks int64 `json:"cache_fallbacks"`
	CacheStores    int64 `json:"cache_stores"`

	LatCount  int64   `json:"lat_count"`
	LatMeanMs float64 `json:"lat_mean_ms"`
	LatMaxMs  float64 `json:"lat_max_ms"`
}

// Stats assembles the current counter snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.status == JobRunning {
			running++
		}
		j.mu.Unlock()
	}
	st := Stats{
		UptimeMs: float64(time.Since(s.start).Microseconds()) / 1000,
		Draining: s.draining,
		Queued:   len(s.queue),
		Running:  running,
	}
	s.mu.Unlock()

	st.Submitted = s.ctr.submitted.Load()
	st.Admitted = s.ctr.admitted.Load()
	st.BadRequests = s.ctr.badRequests.Load()
	st.ShedQueue = s.ctr.shedQueue.Load()
	st.ShedTenant = s.ctr.shedTenant.Load()
	st.DrainRejected = s.ctr.drainRejected.Load()
	st.Completed = s.ctr.completed.Load()
	st.Optimal = s.ctr.optimal.Load()
	st.Satisfiable = s.ctr.satisfiable.Load()
	st.Unsat = s.ctr.unsat.Load()
	st.Timeouts = s.ctr.timeouts.Load()
	st.Cancelled = s.ctr.cancelled.Load()
	st.Stalled = s.ctr.stalled.Load()
	st.Errors = s.ctr.errors.Load()
	st.PanicsIsolated = s.ctr.panicsIsolated.Load()
	st.MemberCrashes = s.ctr.memberCrashes.Load()
	st.WatchdogKicks = s.ctr.watchdogKicks.Load()
	st.WatchdogRescues = s.ctr.watchdogRescues.Load()
	st.Abandoned = s.ctr.abandoned.Load()
	st.DrainForced = s.ctr.drainForced.Load()
	st.CacheSessions = s.cache.len()
	st.CacheHits = s.ctr.cacheHits.Load()
	st.CacheMisses = s.ctr.cacheMisses.Load()
	st.CacheFallbacks = s.ctr.cacheFallback.Load()
	st.CacheStores = s.ctr.cacheStores.Load()

	s.latMu.Lock()
	st.LatCount = s.latCount
	if s.latCount > 0 {
		st.LatMeanMs = s.latSumMs / float64(s.latCount)
	}
	st.LatMaxMs = s.latMaxMs
	s.latMu.Unlock()
	return st
}

// --- helpers ---

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

func solverMode(name string) (core.Method, bool, error) {
	switch name {
	case "", "lpr":
		return core.LBLPR, false, nil
	case "plain":
		return core.LBNone, false, nil
	case "mis":
		return core.LBMIS, false, nil
	case "lgr":
		return core.LBLGR, false, nil
	case "portfolio":
		return 0, true, nil
	}
	return 0, false, fmt.Errorf("unknown solver %q (want plain|mis|lgr|lpr|portfolio)", name)
}

func canonSolver(name string) string {
	if name == "" {
		return "lpr"
	}
	return name
}

// corruptValues simulates a torn cache entry (the "serve.cache" chaos path):
// every bit flipped, which breaks feasibility on any constrained instance.
func corruptValues(values []bool) []bool {
	out := make([]bool, len(values))
	for i, v := range values {
		out[i] = !v
	}
	return out
}

func firstViolation(rep audit.Report) string {
	if len(rep.Violations) == 0 {
		return "?"
	}
	return firstLine(rep.Violations[0].String())
}
