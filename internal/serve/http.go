package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/opb"
)

// SubmitRequest is the JSON submission envelope for POST /solve. The same
// endpoint also accepts a raw OPB body (any non-JSON content type) with the
// envelope fields supplied as query parameters / the X-Tenant header.
type SubmitRequest struct {
	// OPB is the instance text in OPB syntax.
	OPB string `json:"opb"`
	// Solver selects the engine: plain|mis|lgr|lpr|portfolio (default lpr).
	Solver string `json:"solver,omitempty"`
	// Tenant is the quota bucket (default "anon").
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMs is the requested wall-clock budget (clamped server-side).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// WaitMs long-polls the submission: the response is delayed until the
	// job finishes or WaitMs elapses, whichever is first.
	WaitMs int64 `json:"wait_ms,omitempty"`
}

type errorBody struct {
	Error       string `json:"error"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /solve              submit (JSON envelope or raw OPB body)
//	GET  /jobs/{id}          status snapshot
//	GET  /jobs/{id}/result   final result (long-poll via ?wait_ms=N)
//	POST /jobs/{id}/cancel   request cancellation
//	GET  /jobs/{id}/events   NDJSON stream of incumbent improvements
//	GET  /healthz            liveness ("ok" / "draining")
//	GET  /stats              serve-level counters
//	GET  /metrics            unified metrics snapshot (Registry configured)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	if s.cfg.Registry != nil {
		debug := s.cfg.Registry.Handler()
		mux.Handle("/metrics", debug)
		mux.Handle("/debug/pprof/", debug)
	}
	return mux
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req := SubmitRequest{
		Solver: r.URL.Query().Get("solver"),
		Tenant: r.Header.Get("X-Tenant"),
	}
	if q := r.URL.Query().Get("tenant"); q != "" {
		req.Tenant = q
	}
	req.TimeoutMs = queryInt(r, "timeout_ms")
	req.WaitMs = queryInt(r, "wait_ms")
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.ctr.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON envelope: " + firstLine(err.Error())})
			return
		}
	} else {
		raw, err := io.ReadAll(body)
		if err != nil {
			s.ctr.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + firstLine(err.Error())})
			return
		}
		req.OPB = string(raw)
	}
	prob, err := opb.ParseString(req.OPB)
	if err != nil {
		s.ctr.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad OPB: " + firstLine(err.Error())})
		return
	}
	j, aerr := s.Submit(prob, SubmitOptions{
		Tenant:  req.Tenant,
		Solver:  req.Solver,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
	})
	if aerr != nil {
		if aerr.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(aerr.RetryAfter))
		}
		writeJSON(w, aerr.Code, errorBody{Error: aerr.Reason, RetryAfterS: aerr.RetryAfter})
		return
	}
	if req.WaitMs > 0 {
		waitDone(j, time.Duration(req.WaitMs)*time.Millisecond, r.Context().Done())
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, action, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	switch action {
	case "":
		writeJSON(w, http.StatusOK, j.view())
	case "cancel":
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
			return
		}
		s.Cancel(id)
		writeJSON(w, http.StatusOK, j.view())
	case "result":
		wait := 30 * time.Second
		if ms := queryInt(r, "wait_ms"); ms > 0 {
			wait = time.Duration(ms) * time.Millisecond
		}
		waitDone(j, wait, r.Context().Done())
		v := j.view()
		if !v.Status.Terminal() {
			// Long-poll budget spent before the job resolved: not an error,
			// just not done yet.
			writeJSON(w, http.StatusAccepted, v)
			return
		}
		writeJSON(w, http.StatusOK, v)
	case "events":
		s.streamEvents(w, r, j)
	default:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown action " + action})
	}
}

// streamEvents writes an NDJSON stream: one line per incumbent improvement
// ({"at_ms":…,"best":…}) as they happen, then a final line with the full
// terminal JobView. The stream ends when the job turns terminal or the
// client disconnects.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	emit := func() bool {
		j.mu.Lock()
		pendingEvents := append([]IncumbentEvent(nil), j.incumbents[sent:]...)
		j.mu.Unlock()
		for _, ev := range pendingEvents {
			if err := enc.Encode(ev); err != nil {
				return false
			}
			sent++
		}
		if len(pendingEvents) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if !emit() {
			return
		}
		select {
		case <-j.done:
			emit()
			final := struct {
				Final JobView `json:"final"`
			}{j.view()}
			_ = enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// waitDone blocks until the job is terminal, the budget elapses, or the
// client goes away.
func waitDone(j *Job, d time.Duration, clientGone <-chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.done:
	case <-t.C:
	case <-clientGone:
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func queryInt(r *http.Request, key string) int64 {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}
