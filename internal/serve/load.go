package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pb"
)

// LoadConfig parameterizes RunLoad, the daemon's load/chaos harness: many
// concurrent small solves thrown at one Server, with every admitted job
// tracked to its terminal status.
type LoadConfig struct {
	// Jobs is the number of submissions (default 100).
	Jobs int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// Timeout is the per-job deadline handed to Submit (default 2s).
	Timeout time.Duration
	// Tenants spreads submissions over this many tenant IDs (default 4).
	Tenants int
	// Solver selects the engine for every job (default "lpr").
	Solver string
	// Pool is the number of distinct instances cycled through (default 8;
	// Jobs > Pool exercises the solve-session cache via re-submissions).
	Pool int
	// Seed drives instance generation (default 1).
	Seed int64
	// WaitSlack bounds how long a client waits for a submitted job beyond
	// its deadline before declaring it unresolved (default 30s; generous —
	// the watchdog is supposed to resolve stuck jobs long before this).
	WaitSlack time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Solver == "" {
		c.Solver = "lpr"
	}
	if c.Pool <= 0 {
		c.Pool = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WaitSlack <= 0 {
		c.WaitSlack = 30 * time.Second
	}
	return c
}

// LoadReport is RunLoad's outcome: admission split, terminal-status
// histogram, and the client-observed latency distribution (admission to
// terminal status, queue wait included).
type LoadReport struct {
	Jobs     int                 `json:"jobs"`
	Admitted int                 `json:"admitted"`
	Shed     int                 `json:"shed"`
	Rejected int                 `json:"rejected"` // non-429 rejections (drain, bad request, admission panic)
	Statuses map[JobStatus]int   `json:"statuses"`
	ShedFor  map[string]int      `json:"shed_for,omitempty"` // reason histogram for sheds/rejections
	Rescued  int                 `json:"rescued"`            // watchdog demotions observed
	CacheHit int                 `json:"cache_hits"`
	// Unresolved counts admitted jobs that never reached a terminal status
	// within the wait budget — the zero-lost-jobs invariant requires 0.
	Unresolved int     `json:"unresolved"`
	WallMs     float64 `json:"wall_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// RunLoad drives the server with cfg.Jobs submissions from
// cfg.Concurrency concurrent clients and accounts for every single one:
// admitted jobs are awaited to a terminal status, sheds are tallied by
// reason. It never fails on shed/timeout/stall outcomes — those are the
// behaviours under test — but Unresolved > 0 means the robustness envelope
// leaked a job.
func RunLoad(s *Server, cfg LoadConfig) LoadReport {
	cfg = cfg.withDefaults()
	pool := loadPool(cfg.Pool, cfg.Seed)
	rep := LoadReport{
		Jobs:     cfg.Jobs,
		Statuses: make(map[JobStatus]int),
		ShedFor:  make(map[string]int),
	}
	var mu sync.Mutex
	var lat []float64

	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				prob := pool[i%len(pool)]
				tenant := fmt.Sprintf("t%d", i%cfg.Tenants)
				t0 := time.Now()
				j, aerr := s.Submit(prob, SubmitOptions{
					Tenant:  tenant,
					Solver:  cfg.Solver,
					Timeout: cfg.Timeout,
				})
				if aerr != nil {
					mu.Lock()
					if aerr.Code == 429 {
						rep.Shed++
					} else {
						rep.Rejected++
					}
					rep.ShedFor[firstLine(aerr.Reason)]++
					mu.Unlock()
					continue
				}
				waitDone(j, cfg.Timeout+cfg.WaitSlack, nil)
				v := j.view()
				mu.Lock()
				rep.Admitted++
				if !v.Status.Terminal() {
					rep.Unresolved++
				} else {
					rep.Statuses[v.Status]++
					lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
				}
				if v.Rescued {
					rep.Rescued++
				}
				if v.CacheHit {
					rep.CacheHit++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	rep.WallMs = float64(time.Since(start).Microseconds()) / 1000

	sort.Float64s(lat)
	rep.P50Ms = percentile(lat, 0.50)
	rep.P90Ms = percentile(lat, 0.90)
	rep.P99Ms = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.MaxMs = lat[n-1]
	}
	return rep
}

// BenchSnapshot renders the report as a repro.bench/v1 snapshot: latency
// percentiles as rows (comparable by pbbench -compare) and the outcome
// counters as run metadata.
func (r LoadReport) BenchSnapshot(solver string) *obs.BenchSnapshot {
	snap := obs.NewBenchSnapshot([]string{"serveload"}, r.WallMs)
	snap.Meta = map[string]string{
		"jobs":       fmt.Sprintf("%d", r.Jobs),
		"admitted":   fmt.Sprintf("%d", r.Admitted),
		"shed":       fmt.Sprintf("%d", r.Shed),
		"rejected":   fmt.Sprintf("%d", r.Rejected),
		"rescued":    fmt.Sprintf("%d", r.Rescued),
		"unresolved": fmt.Sprintf("%d", r.Unresolved),
		"cache_hits": fmt.Sprintf("%d", r.CacheHit),
	}
	for st, n := range r.Statuses {
		snap.Meta["status_"+string(st)] = fmt.Sprintf("%d", n)
	}
	for _, p := range []struct {
		name string
		ms   float64
	}{
		{"latency_p50", r.P50Ms},
		{"latency_p90", r.P90Ms},
		{"latency_p99", r.P99Ms},
		{"latency_max", r.MaxMs},
	} {
		snap.Rows = append(snap.Rows, obs.BenchRow{
			Instance: p.name,
			Family:   "serveload",
			Solver:   solver,
			Solved:   true,
			WallMs:   p.ms,
		})
	}
	return snap
}

// String renders the operator summary line.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"load: %d jobs → %d admitted, %d shed, %d rejected; statuses %v; rescued=%d cache=%d unresolved=%d; p50=%.1fms p99=%.1fms max=%.1fms wall=%.0fms",
		r.Jobs, r.Admitted, r.Shed, r.Rejected, statusHistogram(r.Statuses),
		r.Rescued, r.CacheHit, r.Unresolved, r.P50Ms, r.P99Ms, r.MaxMs, r.WallMs)
}

func statusHistogram(m map[JobStatus]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", k, m[JobStatus(k)])...)
	}
	return string(b)
}

// loadPool generates n distinct small instances: a mix of synthesis netlists
// and covering problems, all solvable in milliseconds on their own — the
// load harness stresses the envelope, not the solver.
func loadPool(n int, seed int64) []*pb.Problem {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*pb.Problem, 0, n)
	for len(out) < n {
		var (
			p   *pb.Problem
			err error
		)
		if len(out)%2 == 0 {
			p, err = gen.Synthesis(gen.SynthesisConfig{
				Nodes:    5 + rng.Intn(4),
				Impls:    3,
				Fanout:   1.5,
				Incompat: 0.3,
				Seed:     rng.Int63(),
			})
		} else {
			p, err = gen.MinCover(gen.MinCoverConfig{
				Inputs:    4,
				OnDensity: 0.25,
				Seed:      rng.Int63(),
			})
		}
		if err != nil {
			// Generators only fail on bad configs; skip defensively.
			continue
		}
		out = append(out, p)
	}
	return out
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
