package serve

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestNoGoroutineLeakAfterCancelledSolves is the leak regression for the
// serving path: 100 solves cancelled mid-run must leave no goroutine behind
// once the server drains — neither solver goroutines stuck on dead jobs nor
// per-job plumbing (boards, watchdog bookkeeping, result waiters).
func TestNoGoroutineLeakAfterCancelledSolves(t *testing.T) {
	defer fault.Reset()
	// A short injected delay keeps each solve alive long enough for the
	// cancel to land mid-run instead of post-completion.
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 5 * time.Millisecond})

	before := runtime.NumGoroutine()

	s := New(Config{Workers: 4, QueueCap: 128, TenantMax: -1, StallTimeout: time.Minute})
	p := tinyProblem(t)
	var jobs []*Job
	for i := 0; i < 100; i++ {
		j, aerr := s.Submit(p, SubmitOptions{Timeout: 10 * time.Second})
		if aerr != nil {
			t.Fatalf("submit %d: %v", i, aerr)
		}
		jobs = append(jobs, j)
		s.Cancel(j.ID)
	}
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("cancelled job %s never resolved", j.ID)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if rep := s.Drain(ctx); !rep.Clean {
		t.Fatalf("drain not clean: %+v", rep)
	}

	// Give abandoned goroutines (if the implementation leaked any) time to
	// show up as a stable excess, and legitimate ones time to exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d after=%d — leak after 100 cancelled solves\n%s",
				before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
