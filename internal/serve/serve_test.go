package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/opb"
	"repro/internal/pb"
)

// tinyOPB has optimum 3 (pick x1 and x2 to cover the >=2 constraint).
const tinyOPB = `min: +1 x1 +2 x2 +3 x3 ;
+1 x1 +1 x2 +1 x3 >= 2 ;
`

func tinyProblem(t *testing.T) *pb.Problem {
	t.Helper()
	p, err := opb.ParseString(tinyOPB)
	if err != nil {
		t.Fatalf("parse tiny: %v", err)
	}
	return p
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func awaitTerminal(t *testing.T, j *Job, budget time.Duration) JobView {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(budget):
		t.Fatalf("job %s not terminal after %s (status %v)", j.ID, budget, j.view().Status)
	}
	return j.view()
}

func TestSubmitDirectOptimal(t *testing.T) {
	s := newTestServer(t, Config{})
	j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Tenant: "t1"})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	v := awaitTerminal(t, j, 10*time.Second)
	if v.Status != JobOptimal {
		t.Fatalf("status = %v, want optimal (err %q)", v.Status, v.Err)
	}
	if v.Best == nil || *v.Best != 3 {
		t.Fatalf("best = %v, want 3", v.Best)
	}
	p := tinyProblem(t)
	vals := ParseBitstring(v.Values)
	if !p.Feasible(vals) {
		t.Fatalf("returned assignment infeasible: %q", v.Values)
	}
	if got := p.ObjectiveValue(vals); got != 3 {
		t.Fatalf("assignment objective = %d, want 3", got)
	}
}

func TestSolversAllServe(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, solver := range []string{"plain", "mis", "lgr", "lpr", "portfolio"} {
		j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Solver: solver})
		if aerr != nil {
			t.Fatalf("%s: submit: %v", solver, aerr)
		}
		v := awaitTerminal(t, j, 15*time.Second)
		if v.Status != JobOptimal || v.Best == nil || *v.Best != 3 {
			t.Fatalf("%s: got %v best=%v, want optimal 3 (err %q)", solver, v.Status, v.Best, v.Err)
		}
	}
}

func TestSubmitHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Raw OPB body, long-polled to completion.
	resp, err := http.Post(ts.URL+"/solve?wait_ms=10000", "text/plain", strings.NewReader(tinyOPB))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /solve status = %d, want 202", resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v.Status != JobOptimal || v.Best == nil || *v.Best != 3 {
		t.Fatalf("got %v best=%v, want optimal 3", v.Status, v.Best)
	}

	// Status endpoint agrees.
	resp2, err := http.Get(ts.URL + "/jobs/" + v.ID)
	if err != nil {
		t.Fatalf("GET /jobs/{id}: %v", err)
	}
	defer resp2.Body.Close()
	var v2 JobView
	if err := json.NewDecoder(resp2.Body).Decode(&v2); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if v2.Status != JobOptimal {
		t.Fatalf("status endpoint: %v, want optimal", v2.Status)
	}

	// JSON envelope submission.
	body, _ := json.Marshal(SubmitRequest{OPB: tinyOPB, Solver: "mis", Tenant: "env", WaitMs: 10000})
	resp3, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST JSON envelope: %v", err)
	}
	defer resp3.Body.Close()
	var v3 JobView
	if err := json.NewDecoder(resp3.Body).Decode(&v3); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if v3.Status != JobOptimal || v3.Tenant != "env" || v3.Solver != "mis" {
		t.Fatalf("envelope job = %+v, want optimal/env/mis", v3)
	}

	// Garbage body is a 400, not a crash.
	resp4, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader("min x1 garbage"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d, want 400", resp4.StatusCode)
	}

	// Metrics endpoint is mounted when a Registry is configured.
	resp5, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp5.StatusCode)
	}
}

func TestQueueFullSheds(t *testing.T) {
	defer fault.Reset()
	// One worker, one queue slot, slow solves: the third concurrent
	// submission must shed with 429 + Retry-After, not block or hang.
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 300 * time.Millisecond})
	s := newTestServer(t, Config{Workers: 1, QueueCap: 1, TenantMax: -1})

	var admitted []*Job
	shed := 0
	for i := 0; i < 6; i++ {
		j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Timeout: 5 * time.Second})
		if aerr != nil {
			if aerr.Code != 429 {
				t.Fatalf("submit %d: code %d, want 429 (%s)", i, aerr.Code, aerr.Reason)
			}
			if aerr.RetryAfter < 1 {
				t.Fatalf("submit %d: Retry-After %d, want >= 1", i, aerr.RetryAfter)
			}
			shed++
			continue
		}
		admitted = append(admitted, j)
	}
	if shed == 0 {
		t.Fatal("no submission was shed with a full queue")
	}
	if len(admitted) == 0 {
		t.Fatal("every submission was shed")
	}
	for _, j := range admitted {
		v := awaitTerminal(t, j, 15*time.Second)
		if v.Status != JobOptimal {
			t.Fatalf("admitted job %s: %v, want optimal", j.ID, v.Status)
		}
	}
	if got := s.Stats().ShedQueue; got != int64(shed) {
		t.Fatalf("stats.ShedQueue = %d, want %d", got, shed)
	}
}

func TestTenantQuota(t *testing.T) {
	defer fault.Reset()
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 300 * time.Millisecond})
	s := newTestServer(t, Config{Workers: 2, QueueCap: 16, TenantMax: 1})

	j1, aerr := s.Submit(tinyProblem(t), SubmitOptions{Tenant: "hog", Timeout: 5 * time.Second})
	if aerr != nil {
		t.Fatalf("first: %v", aerr)
	}
	if _, aerr = s.Submit(tinyProblem(t), SubmitOptions{Tenant: "hog"}); aerr == nil || aerr.Code != 429 {
		t.Fatalf("second hog submission: %v, want 429", aerr)
	}
	j2, aerr := s.Submit(tinyProblem(t), SubmitOptions{Tenant: "other", Timeout: 5 * time.Second})
	if aerr != nil {
		t.Fatalf("other tenant blocked by hog's quota: %v", aerr)
	}
	awaitTerminal(t, j1, 15*time.Second)
	awaitTerminal(t, j2, 15*time.Second)
	// Quota released after completion.
	j3, aerr := s.Submit(tinyProblem(t), SubmitOptions{Tenant: "hog", Timeout: 5 * time.Second})
	if aerr != nil {
		t.Fatalf("post-completion hog submission: %v", aerr)
	}
	awaitTerminal(t, j3, 15*time.Second)
	if got := s.Stats().ShedTenant; got != 1 {
		t.Fatalf("stats.ShedTenant = %d, want 1", got)
	}
}

func TestDeadlineTimeout(t *testing.T) {
	defer fault.Reset()
	// The solve sleeps past the job's deadline; keep the watchdog out of the
	// way so the timeout attribution (not a stall rescue) is what's tested.
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 300 * time.Millisecond})
	s := newTestServer(t, Config{StallTimeout: time.Minute})
	j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Timeout: 50 * time.Millisecond})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	v := awaitTerminal(t, j, 15*time.Second)
	if v.Status != JobTimeout {
		t.Fatalf("status = %v, want timeout", v.Status)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	defer fault.Reset()
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 200 * time.Millisecond})
	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, StallTimeout: time.Minute})

	running, aerr := s.Submit(tinyProblem(t), SubmitOptions{Timeout: 10 * time.Second})
	if aerr != nil {
		t.Fatalf("submit running: %v", aerr)
	}
	queued, aerr := s.Submit(tinyProblem(t), SubmitOptions{Timeout: 10 * time.Second})
	if aerr != nil {
		t.Fatalf("submit queued: %v", aerr)
	}
	// The queued job cancels instantly, without waiting for a worker.
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel queued: job not found")
	}
	v := awaitTerminal(t, queued, 2*time.Second)
	if v.Status != JobCancelled {
		t.Fatalf("queued: %v, want cancelled", v.Status)
	}
	s.Cancel(running.ID)
	v = awaitTerminal(t, running, 15*time.Second)
	// The delay fires before the solver starts polling the cancel channel,
	// so the solve may also run to optimality before noticing — both are
	// legitimate, torn state is not.
	if v.Status != JobCancelled && v.Status != JobOptimal {
		t.Fatalf("running: %v, want cancelled or optimal", v.Status)
	}
}

func TestSessionCacheWarmHit(t *testing.T) {
	s := newTestServer(t, Config{})
	p := tinyProblem(t)
	j1, aerr := s.Submit(p, SubmitOptions{Solver: "lpr"})
	if aerr != nil {
		t.Fatalf("cold: %v", aerr)
	}
	v1 := awaitTerminal(t, j1, 10*time.Second)
	if v1.Status != JobOptimal || v1.CacheHit {
		t.Fatalf("cold solve: %v cacheHit=%v, want optimal/false", v1.Status, v1.CacheHit)
	}
	// Same mathematical content, different text: the session key matches.
	p2, err := opb.ParseString("* resubmission\n" + tinyOPB)
	if err != nil {
		t.Fatalf("parse resub: %v", err)
	}
	j2, aerr := s.Submit(p2, SubmitOptions{Solver: "lpr"})
	if aerr != nil {
		t.Fatalf("warm: %v", aerr)
	}
	v2 := awaitTerminal(t, j2, 10*time.Second)
	if v2.Status != JobOptimal || *v2.Best != 3 {
		t.Fatalf("warm solve: %v best=%v, want optimal 3", v2.Status, v2.Best)
	}
	if !v2.CacheHit {
		t.Fatal("resubmission did not hit the session cache")
	}
	st := s.Stats()
	if st.CacheHits < 1 || st.CacheStores < 1 {
		t.Fatalf("cache stats = hits %d stores %d, want >= 1 each", st.CacheHits, st.CacheStores)
	}
}

func TestSessionCacheCorruptionFallsBackCold(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, Config{})
	p := tinyProblem(t)
	j1, _ := s.Submit(p, SubmitOptions{})
	awaitTerminal(t, j1, 10*time.Second)

	// Every cache reuse from here on hands the solve a corrupted incumbent;
	// the re-verification must catch it and the answer must still be exact.
	fault.Arm("serve.cache", fault.Spec{Kind: fault.KindCorrupt, Every: 1, Value: 1})
	j2, aerr := s.Submit(p, SubmitOptions{})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	v := awaitTerminal(t, j2, 10*time.Second)
	if v.Status != JobOptimal || v.Best == nil || *v.Best != 3 {
		t.Fatalf("corrupted-cache solve: %v best=%v, want optimal 3", v.Status, v.Best)
	}
	if got := s.Stats().CacheFallbacks; got < 1 {
		t.Fatalf("stats.CacheFallbacks = %d, want >= 1", got)
	}
}

func TestPanicIsolatedPerJob(t *testing.T) {
	defer fault.Reset()
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindPanic, Every: 2})
	s := newTestServer(t, Config{})
	sawError, sawOptimal := 0, 0
	for i := 0; i < 4; i++ {
		j, aerr := s.Submit(tinyProblem(t), SubmitOptions{})
		if aerr != nil {
			t.Fatalf("submit %d: %v", i, aerr)
		}
		v := awaitTerminal(t, j, 10*time.Second)
		switch v.Status {
		case JobError:
			sawError++
		case JobOptimal:
			sawOptimal++
		default:
			t.Fatalf("job %d: unexpected status %v", i, v.Status)
		}
	}
	if sawError != 2 || sawOptimal != 2 {
		t.Fatalf("errors=%d optimal=%d, want 2/2 (panic every 2nd job)", sawError, sawOptimal)
	}
	if got := s.Stats().PanicsIsolated; got != 2 {
		t.Fatalf("stats.PanicsIsolated = %d, want 2", got)
	}
}

func TestWatchdogDemotesStuckJob(t *testing.T) {
	defer fault.Reset()
	// The MIS estimator hangs hard (no cancellation polling inside the
	// injected sleep) after the first incumbent exists — exactly the
	// straggler the watchdog exists for.
	fault.Arm("mis.estimate", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 5 * time.Second})
	s := newTestServer(t, Config{StallTimeout: 150 * time.Millisecond, StallGrace: 100 * time.Millisecond})
	j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Solver: "mis", Timeout: 30 * time.Second})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	start := time.Now()
	v := awaitTerminal(t, j, 10*time.Second)
	if v.Status != JobStalled {
		t.Fatalf("status = %v (err %q), want stalled", v.Status, v.Err)
	}
	if !v.Rescued {
		t.Fatal("view.Rescued = false on a stalled job")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("demotion took %s — watchdog did not fire, the sleep expired", elapsed)
	}
	// The demoted answer carries the best incumbent with its assignment
	// (published to the job's private board before the stall).
	if v.Best == nil {
		t.Fatal("stalled job carries no incumbent")
	}
	p := tinyProblem(t)
	vals := ParseBitstring(v.Values)
	if !p.Feasible(vals) || p.ObjectiveValue(vals) != *v.Best {
		t.Fatalf("demoted incumbent torn: best=%d values=%q", *v.Best, v.Values)
	}
	// The worker abandons the runaway goroutine asynchronously after the
	// finalize: give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if st.WatchdogKicks >= 1 && st.WatchdogRescues >= 1 && st.Abandoned >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog stats = kicks %d rescues %d abandoned %d, want >= 1 each",
				st.WatchdogKicks, st.WatchdogRescues, st.Abandoned)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainResolvesEverything(t *testing.T) {
	defer fault.Reset()
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 150 * time.Millisecond})
	s := New(Config{Workers: 2, QueueCap: 32, TenantMax: -1, StallTimeout: time.Minute})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, aerr := s.Submit(tinyProblem(t), SubmitOptions{Timeout: 10 * time.Second})
		if aerr != nil {
			t.Fatalf("submit %d: %v", i, aerr)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := s.Drain(ctx)
	if !rep.Clean {
		t.Fatalf("drain not clean: %+v", rep)
	}
	for _, j := range jobs {
		v := j.view()
		if !v.Status.Terminal() {
			t.Fatalf("job %s lost in drain: %v", j.ID, v.Status)
		}
	}
	// Draining servers refuse politely.
	if _, aerr := s.Submit(tinyProblem(t), SubmitOptions{}); aerr == nil || aerr.Code != 503 {
		t.Fatalf("post-drain submit: %v, want 503", aerr)
	}
}

func TestEventsStream(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(tinyOPB))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sawFinal := false
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"final"`) {
			sawFinal = true
			var fin struct {
				Final JobView `json:"final"`
			}
			if err := json.Unmarshal([]byte(line), &fin); err != nil {
				t.Fatalf("final line: %v (%q)", err, line)
			}
			if !fin.Final.Status.Terminal() {
				t.Fatalf("final event not terminal: %v", fin.Final.Status)
			}
		}
	}
	if !sawFinal {
		t.Fatal("event stream ended without a final record")
	}
}

// TestCancelFinishRaceNeverTorn pins the write-once finalize contract:
// concurrent cancel-vs-natural-finish must yield either a full final result
// or a clean cancelled status — never a mix — under the race detector.
func TestCancelFinishRaceNeverTorn(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueCap: 64, TenantMax: -1})
	p := tinyProblem(t)
	const rounds = 40
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		j, aerr := s.Submit(p, SubmitOptions{Tenant: fmt.Sprintf("r%d", i%4), Timeout: 5 * time.Second})
		if aerr != nil {
			continue // shed under pressure is fine here
		}
		wg.Add(1)
		go func(j *Job, spin int) {
			defer wg.Done()
			for k := 0; k < spin; k++ {
				_ = j.view() // concurrent observers during the race
			}
			s.Cancel(j.ID)
		}(j, i*10)
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			v := awaitTerminal(t, j, 15*time.Second)
			switch v.Status {
			case JobOptimal:
				if v.Best == nil || *v.Best != 3 {
					t.Errorf("%s: optimal with best=%v", j.ID, v.Best)
				}
				vals := ParseBitstring(v.Values)
				if !p.Feasible(vals) || p.ObjectiveValue(vals) != *v.Best {
					t.Errorf("%s: torn optimal result", j.ID)
				}
			case JobCancelled, JobTimeout:
				// Fine; any attached incumbent must still be whole.
				if v.Best != nil && v.Values != "" {
					vals := ParseBitstring(v.Values)
					if !p.Feasible(vals) || p.ObjectiveValue(vals) != *v.Best {
						t.Errorf("%s: torn cancelled incumbent", j.ID)
					}
				}
			default:
				t.Errorf("%s: unexpected status %v (err %q)", j.ID, v.Status, v.Err)
			}
		}(j)
	}
	wg.Wait()
}
