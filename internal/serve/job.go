package serve

import (
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pb"
	"repro/internal/share"
)

// JobStatus is the lifecycle state of one submitted solve. The terminal
// states form the daemon's answer contract: every admitted job ends in
// exactly one of them, exactly once, no matter how the solve behaved
// (finished, cancelled, timed out, crashed, or hung).
type JobStatus string

const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued JobStatus = "queued"
	// JobRunning: a worker is executing the solve.
	JobRunning JobStatus = "running"

	// JobOptimal / JobSatisfiable / JobUnsat: the solver's proved verdicts.
	JobOptimal     JobStatus = "optimal"
	JobSatisfiable JobStatus = "satisfiable"
	JobUnsat       JobStatus = "unsatisfiable"
	// JobTimeout: the job's deadline expired; the best incumbent found
	// before it (if any) is attached.
	JobTimeout JobStatus = "timeout"
	// JobCancelled: the client (or the drain path) cancelled the job; the
	// best incumbent found before the cancel is attached.
	JobCancelled JobStatus = "cancelled"
	// JobStalled: the watchdog demoted a stuck solve to its best incumbent
	// instead of letting the client hang (graceful degradation).
	JobStalled JobStatus = "stalled"
	// JobError: the solve crashed (panic isolated per job) or failed its
	// audit; Err carries the first line of the cause.
	JobError JobStatus = "error"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	switch s {
	case JobQueued, JobRunning:
		return false
	}
	return true
}

// IncumbentEvent is one upper-bound improvement observed during a job,
// relative to submission time. Streamed live on /jobs/{id}/events.
type IncumbentEvent struct {
	AtMs float64 `json:"at_ms"`
	Best int64   `json:"best"`
}

// Job is one admitted solve. All mutable state is guarded by mu; the
// finalize path is write-once, so a concurrent cancel racing a natural
// finish yields exactly one of the two outcomes and never a torn mix
// (status from one, result from the other) — pinned by the -race tests.
type Job struct {
	ID     string
	Tenant string
	Solver string

	// cancel is closed (once) to stop the solve: client cancel, watchdog
	// demotion, or drain. done is closed exactly when the job turns
	// terminal; result long-polls and the drain path wait on it.
	cancel     chan struct{}
	cancelOnce sync.Once
	done       chan struct{}

	// live receives the solver's periodic metrics publishes; the watchdog
	// derives its progress heartbeat from it (and from incumbent events).
	live *obs.Live

	prob *pb.Problem

	mu sync.Mutex
	// board is the job's private incumbent board (single-solver jobs): the
	// solver publishes every improvement (values included) to it, which is
	// what lets the watchdog demote a stuck job to a full answer.
	board      *share.Board
	status     JobStatus
	submitted  time.Time
	deadline   time.Time
	started    time.Time
	finished   time.Time
	cancelReq  bool // client or drain asked for cancellation
	rescuing   bool // watchdog fired the cancel; rescueAt is when
	rescueAt   time.Time
	rescued    bool // watchdog demotion actually finalized the job
	cacheHit   bool
	best       *int64
	values     []bool
	errMsg     string
	incumbents []IncumbentEvent
	// lastBeat/lastSig drive stall detection: lastSig is the most recent
	// progress fingerprint, lastBeat when it last changed.
	lastBeat time.Time
	lastSig  string
}

// requestCancel closes the cancel channel (idempotent) and records whether
// the request came from a client/drain (asCancel) or from the watchdog.
func (j *Job) requestCancel(asCancel bool) {
	j.mu.Lock()
	if !j.status.Terminal() {
		if asCancel {
			j.cancelReq = true
		} else if !j.rescuing {
			j.rescuing = true
			j.rescueAt = time.Now()
		}
	}
	j.mu.Unlock()
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// markRunning transitions queued → running; false when the job was already
// finalized (cancelled while queued, or force-resolved by the drain path).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return false
	}
	j.status = JobRunning
	j.started = time.Now()
	j.lastBeat = j.started
	return true
}

// recordIncumbent appends an upper-bound improvement (the solver's
// OnIncumbent callback; portfolio members may deliver duplicates or
// regressions relative to each other, so only strict improvements count).
func (j *Job) recordIncumbent(best int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.incumbents) > 0 && best >= j.incumbents[len(j.incumbents)-1].Best {
		return
	}
	j.incumbents = append(j.incumbents, IncumbentEvent{
		AtMs: float64(time.Since(j.submitted).Microseconds()) / 1000,
		Best: best,
	})
	j.lastBeat = time.Now()
}

// bestIncumbent returns the best objective observed so far (the watchdog's
// demotion answer when the solve itself cannot deliver one).
func (j *Job) bestIncumbent() (int64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.incumbents) == 0 {
		return 0, false
	}
	return j.incumbents[len(j.incumbents)-1].Best, true
}

// setBoard publishes the job's private board once the solve has built it.
func (j *Job) setBoard(b *share.Board) {
	j.mu.Lock()
	j.board = b
	j.mu.Unlock()
}

// bestKnown is the best answer retrievable without the solve's cooperation:
// the private board's best solution (values included) when one exists, else
// the best objective seen on the OnIncumbent stream (portfolio jobs publish
// values only at the end, so a demoted portfolio job reports the objective
// without an assignment).
func (j *Job) bestKnown() (*int64, []bool) {
	j.mu.Lock()
	board := j.board
	j.mu.Unlock()
	if board != nil {
		if cost, values, _, ok := board.BestSolution(); ok {
			ext := cost + j.prob.CostOffset
			return &ext, values
		}
	}
	if b, ok := j.bestIncumbent(); ok {
		return &b, nil
	}
	return nil, nil
}

// finalize installs the terminal state exactly once and returns whether this
// call won. Status, result fields and the done broadcast all commit under
// one critical section: observers (view, result waiters) can never see a
// terminal status with partial result fields.
func (j *Job) finalize(st JobStatus, best *int64, values []bool, errMsg string) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = st
	j.best = best
	j.values = values
	j.errMsg = firstLine(errMsg)
	j.finished = time.Now()
	if st == JobStalled {
		j.rescued = true
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// progressSig fingerprints the solve's observable progress: the live
// metrics counters (published by core every 16th node) plus the incumbent
// count. Any change re-arms the stall watchdog.
func (j *Job) progressSig() string {
	m, ok := j.live.Load()
	j.mu.Lock()
	n := len(j.incumbents)
	j.mu.Unlock()
	if !ok {
		return sig2("-", 0, int64(n))
	}
	return sig2(m.Name, m.Decisions+m.Conflicts+m.Propagations+m.BoundCalls+m.Solutions, int64(n))
}

func sig2(name string, work, inc int64) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('/')
	writeInt(&b, work)
	b.WriteByte('/')
	writeInt(&b, inc)
	return b.String()
}

func writeInt(b *strings.Builder, v int64) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// JobView is the JSON representation served by the status, result and list
// endpoints. Values is the solution as a compact bitstring ("0110…", one
// character per variable, index order).
type JobView struct {
	ID              string           `json:"id"`
	Tenant          string           `json:"tenant,omitempty"`
	Solver          string           `json:"solver"`
	Status          JobStatus        `json:"status"`
	SubmittedUnixMs int64            `json:"submitted_unix_ms"`
	DeadlineUnixMs  int64            `json:"deadline_unix_ms"`
	WallMs          float64          `json:"wall_ms,omitempty"`
	Best            *int64           `json:"best,omitempty"`
	Values          string           `json:"values,omitempty"`
	CacheHit        bool             `json:"cache_hit,omitempty"`
	Cancelled       bool             `json:"cancel_requested,omitempty"`
	Rescued         bool             `json:"watchdog_rescued,omitempty"`
	Err             string           `json:"err,omitempty"`
	Incumbents      []IncumbentEvent `json:"incumbents,omitempty"`
}

// view assembles a consistent snapshot under the job mutex.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:              j.ID,
		Tenant:          j.Tenant,
		Solver:          j.Solver,
		Status:          j.status,
		SubmittedUnixMs: j.submitted.UnixMilli(),
		DeadlineUnixMs:  j.deadline.UnixMilli(),
		Best:            j.best,
		Values:          bitstring(j.values),
		CacheHit:        j.cacheHit,
		Cancelled:       j.cancelReq,
		Rescued:         j.rescued,
		Err:             j.errMsg,
		Incumbents:      append([]IncumbentEvent(nil), j.incumbents...),
	}
	if j.status.Terminal() {
		v.WallMs = float64(j.finished.Sub(j.submitted).Microseconds()) / 1000
	}
	return v
}

func bitstring(values []bool) string {
	if values == nil {
		return ""
	}
	b := make([]byte, len(values))
	for i, v := range values {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// ParseBitstring decodes the JobView.Values encoding (tests and clients).
func ParseBitstring(s string) []bool {
	if s == "" {
		return nil
	}
	out := make([]bool, len(s))
	for i := range s {
		out[i] = s[i] == '1'
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
