package serve

import (
	"syscall"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestServeLoadSmoke is the CI load-smoke gate: 50 concurrent solves with
// injected solver panics and a real SIGTERM arriving mid-run. The invariants
// are zero lost jobs (every admitted job terminal) and a clean drain through
// the same signal wiring cmd/bsolvd ships.
func TestServeLoadSmoke(t *testing.T) {
	defer fault.Reset()
	fault.Arm("serve.job", fault.Spec{Kind: fault.KindPanic, Every: 9})
	// Pace each solve so the run is still in flight when SIGTERM lands.
	fault.Arm("serve.queue", fault.Spec{Kind: fault.KindDelay, Every: 1, Delay: 20 * time.Millisecond})

	reg := obs.NewRegistry()
	s := New(Config{
		Workers:      4,
		QueueCap:     32,
		TenantMax:    -1,
		StallTimeout: 500 * time.Millisecond,
		Registry:     reg,
	})
	drained := s.DrainOnSignal(15*time.Second, syscall.SIGTERM)

	repCh := make(chan LoadReport, 1)
	go func() {
		repCh <- RunLoad(s, LoadConfig{Jobs: 50, Concurrency: 10, Timeout: 2 * time.Second})
	}()

	// SIGTERM lands mid-run: some submissions will be 503-rejected, but
	// nothing admitted before it may be lost.
	time.Sleep(60 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-SIGTERM: %v", err)
	}

	var rep LoadReport
	select {
	case rep = <-repCh:
	case <-time.After(60 * time.Second):
		t.Fatal("load run hung")
	}
	var dr DrainReport
	select {
	case dr = <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain-on-signal hung")
	}

	if rep.Unresolved != 0 {
		t.Fatalf("lost jobs: %d admitted jobs never reached a terminal status\n%s", rep.Unresolved, rep)
	}
	if got := rep.Admitted + rep.Shed + rep.Rejected; got != rep.Jobs {
		t.Fatalf("accounting leak: admitted %d + shed %d + rejected %d != %d jobs",
			rep.Admitted, rep.Shed, rep.Rejected, rep.Jobs)
	}
	if !dr.Clean {
		t.Fatalf("drain not clean: %+v", dr)
	}
	if dr.Resolved == 0 {
		t.Fatal("SIGTERM landed after the run ended — the drain path went unexercised")
	}
	if !dr.MetricsFlushed {
		t.Fatal("drain did not flush the final metrics snapshot")
	}
	// The panic injection must actually have fired on some solve.
	if s.Stats().PanicsIsolated == 0 && rep.Admitted > 9 {
		t.Fatal("no panic isolated despite every-9th-job injection")
	}
	t.Logf("smoke: %s; drain resolved=%d forced=%d", rep, dr.Resolved, dr.Forced)
}

// TestServeLoadHundreds runs the full-size load harness (hundreds of small
// solves, no faults) and checks the latency accounting and cache behaviour.
func TestServeLoadHundreds(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s := newTestServer(t, Config{Workers: 4, QueueCap: 64, TenantMax: -1})
	rep := RunLoad(s, LoadConfig{Jobs: 300, Concurrency: 12, Timeout: 5 * time.Second, Pool: 8})
	if rep.Unresolved != 0 {
		t.Fatalf("lost jobs under load: %s", rep)
	}
	if rep.Statuses[JobOptimal] == 0 {
		t.Fatalf("no job solved to optimality: %s", rep)
	}
	if rep.CacheHit == 0 {
		t.Fatalf("300 jobs over 8 instances produced no session-cache hit: %s", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("latency percentiles inconsistent: %s", rep)
	}
	snap := rep.BenchSnapshot("lpr")
	if len(snap.Rows) != 4 || snap.Meta["unresolved"] != "0" {
		t.Fatalf("bench snapshot malformed: %+v", snap)
	}
	t.Logf("load: %s", rep)
}
