package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/opb"
	"repro/internal/pb"
	"repro/internal/preprocess"
)

// TestFuzzCorpus replays every committed reproducer under
// testdata/fuzz-corpus/ through the full differential matrix. Each file is a
// once-shrunk instance that exposed a real bug (or a hand-built regression
// for a fixed one); a bug that resurfaces fails here before any fuzzing runs.
func TestFuzzCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "fuzz-corpus")
	files, err := filepath.Glob(filepath.Join(dir, "*.opb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no reproducers in %s — the corpus must be committed", dir)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			ms, ok := CheckText(string(data), 0)
			if !ok {
				// Structured rejection by the parser is a valid fix: the
				// seed-*.opb headroom reproducers, for example, used to be
				// mis-solved as UNSAT and are now refused with
				// pb.ErrOverflow. CheckText has already asserted the
				// rejection did not panic.
				return
			}
			for _, m := range ms {
				t.Errorf("mismatch %s", m)
			}
		})
	}
}

// TestPresolveReproducersFixVariables guards the point of the presolve-*.opb
// reproducers: each must actually drive FixVariables into eliminating at
// least one variable, so the Check matrix exercises the lifted value-line
// mapping rather than a no-op renumbering. (A presolve regression that stops
// fixing anything would otherwise silently drain these files of coverage.)
func TestPresolveReproducersFixVariables(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "fuzz-corpus")
	files, err := filepath.Glob(filepath.Join(dir, "presolve-*.opb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("want at least 3 presolve reproducers, found %d", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := opb.ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(f), err)
		}
		fx, err := preprocess.FixVariables(p, preprocess.DefaultFixOptions)
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(f), err)
		}
		if fx.NumFixed() == 0 {
			t.Errorf("%s: presolve fixed no variables — reproducer no longer exercises the mapping", filepath.Base(f))
		}
		if fx.ProvedUnsat {
			t.Errorf("%s: unexpectedly proved UNSAT", filepath.Base(f))
		}
	}
}

// TestCutsReproducersEngageSeparation guards the point of the cuts-*.opb
// reproducers: cuts-cover-lifting.opb must actually drive the LPR pool into
// separating cuts (its knapsack rows sit at fractional LP vertices where only
// a lifted cover is violated), and cuts-cardinality.opb must drive the
// cardinality detector into normalizing at least one row while refusing its
// non-cardinality lookalike. Either property silently decaying would drain
// the files of the coverage they were committed for.
func TestCutsReproducersEngageSeparation(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "fuzz-corpus")

	read := func(name string) *pb.Problem {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		p, err := opb.ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return p
	}

	cover := read("cuts-cover-lifting.opb")
	on := core.SafeSolve(cover, core.Options{LowerBound: core.LBLPR, MaxConflicts: DefaultBudget})
	off := core.SafeSolve(cover, core.Options{LowerBound: core.LBLPR, NoCuts: true, MaxConflicts: DefaultBudget})
	if on.Status != core.StatusOptimal || off.Status != core.StatusOptimal || on.Best != off.Best {
		t.Fatalf("cover reproducer: cuts on/off disagree: on=%v/%d off=%v/%d",
			on.Status, on.Best, off.Status, off.Best)
	}
	if on.Stats.Bounds.Cuts.Separated == 0 {
		t.Errorf("cuts-cover-lifting.opb no longer separates any cuts")
	}

	card := read("cuts-cardinality.opb")
	_, info, err := preprocess.Apply(card, preprocess.Options{CardinalityDetect: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.CardinalityNormalized == 0 {
		t.Errorf("cuts-cardinality.opb no longer drives cardinality normalization")
	}
	// The 3a+b+c >= 3 lookalike must survive untouched: it forces a, which no
	// unit-coefficient rewrite expresses.
	if info.CardinalityNormalized >= len(card.Constraints) {
		t.Errorf("every row normalized — the non-cardinality lookalike was wrongly rewritten")
	}
}
