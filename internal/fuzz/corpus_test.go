package fuzz

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFuzzCorpus replays every committed reproducer under
// testdata/fuzz-corpus/ through the full differential matrix. Each file is a
// once-shrunk instance that exposed a real bug (or a hand-built regression
// for a fixed one); a bug that resurfaces fails here before any fuzzing runs.
func TestFuzzCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "fuzz-corpus")
	files, err := filepath.Glob(filepath.Join(dir, "*.opb"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no reproducers in %s — the corpus must be committed", dir)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			ms, ok := CheckText(string(data), 0)
			if !ok {
				// Structured rejection by the parser is a valid fix: the
				// seed-*.opb headroom reproducers, for example, used to be
				// mis-solved as UNSAT and are now refused with
				// pb.ErrOverflow. CheckText has already asserted the
				// rejection did not panic.
				return
			}
			for _, m := range ms {
				t.Errorf("mismatch %s", m)
			}
		})
	}
}
