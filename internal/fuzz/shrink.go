package fuzz

import "repro/internal/pb"

// Shrink greedily minimizes a failing instance: it repeatedly tries the
// structural reductions below and keeps any candidate for which failing still
// returns true, until no reduction preserves the failure. The moves are
//
//   - drop a whole constraint,
//   - drop one term from a constraint,
//   - zero one objective cost,
//   - halve a constraint degree toward 1,
//   - halve one coefficient toward 1,
//
// each of which strictly decreases the measure #constraints + #terms +
// #nonzero-costs + Σ degrees + ΣΣ coefficients, so the loop terminates.
// Candidates are rebuilt through pb.AddConstraint, so every intermediate
// instance is a normalized, valid problem — the same class the solvers see.
//
// failing is typically func(q) bool { return len(Check(q, budget)) > 0 };
// Shrink never calls it on the input p itself, so the caller decides what
// "failing" means (oracle mismatch, audit violation, crash...).
func Shrink(p *pb.Problem, failing func(*pb.Problem) bool) *pb.Problem {
	cur := p
	for {
		next := shrinkStep(cur, failing)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// shrinkStep returns the first single-move reduction of cur that still fails,
// or nil when none does.
func shrinkStep(cur *pb.Problem, failing func(*pb.Problem) bool) *pb.Problem {
	try := func(q *pb.Problem) bool { return q != nil && failing(q) }

	// Drop a whole constraint.
	for i := range cur.Constraints {
		q := rebuild(cur, func(j int, c *pb.Constraint) (*pb.Constraint, bool) {
			if j == i {
				return nil, false
			}
			return c, true
		}, cur.Cost)
		if try(q) {
			return q
		}
	}
	// Drop one term from a constraint.
	for i, c := range cur.Constraints {
		for k := range c.Terms {
			q := rebuild(cur, dropTerm(i, k), cur.Cost)
			if try(q) {
				return q
			}
		}
	}
	// Zero one objective cost.
	for v, cost := range cur.Cost {
		if cost == 0 {
			continue
		}
		nc := append([]int64(nil), cur.Cost...)
		nc[v] = 0
		q := rebuild(cur, keepAll, nc)
		if try(q) {
			return q
		}
	}
	// Halve a degree toward 1.
	for i, c := range cur.Constraints {
		if c.Degree <= 1 {
			continue
		}
		nd := c.Degree / 2
		if nd < 1 {
			nd = 1
		}
		q := rebuild(cur, func(j int, cc *pb.Constraint) (*pb.Constraint, bool) {
			if j == i {
				return &pb.Constraint{Terms: cc.Terms, Degree: nd}, true
			}
			return cc, true
		}, cur.Cost)
		if try(q) {
			return q
		}
	}
	// Halve one coefficient toward 1.
	for i, c := range cur.Constraints {
		for k, t := range c.Terms {
			if t.Coef <= 1 {
				continue
			}
			ncf := t.Coef / 2
			if ncf < 1 {
				ncf = 1
			}
			q := rebuild(cur, func(j int, cc *pb.Constraint) (*pb.Constraint, bool) {
				if j != i {
					return cc, true
				}
				terms := append([]pb.Term(nil), cc.Terms...)
				terms[k].Coef = ncf
				return &pb.Constraint{Terms: terms, Degree: cc.Degree}, true
			}, cur.Cost)
			if try(q) {
				return q
			}
		}
	}
	return nil
}

func keepAll(_ int, c *pb.Constraint) (*pb.Constraint, bool) { return c, true }

func dropTerm(i, k int) func(int, *pb.Constraint) (*pb.Constraint, bool) {
	return func(j int, c *pb.Constraint) (*pb.Constraint, bool) {
		if j != i {
			return c, true
		}
		terms := make([]pb.Term, 0, len(c.Terms)-1)
		for kk, t := range c.Terms {
			if kk != k {
				terms = append(terms, t)
			}
		}
		return &pb.Constraint{Terms: terms, Degree: c.Degree}, true
	}
}

// rebuild constructs a fresh normalized problem from base, mapping each
// original constraint through edit (return keep=false to drop it) and taking
// cost as the new objective vector. Candidates whose edited rows fail
// re-normalization are rejected (nil).
func rebuild(base *pb.Problem, edit func(int, *pb.Constraint) (*pb.Constraint, bool), cost []int64) *pb.Problem {
	q := pb.NewProblem(base.NumVars)
	q.CostOffset = base.CostOffset
	if base.Names != nil {
		q.Names = append([]string(nil), base.Names...)
	}
	for v, c := range cost {
		q.SetCost(pb.Var(v), c)
	}
	for i, c := range base.Constraints {
		nc, keep := edit(i, c)
		if !keep {
			continue
		}
		terms := append([]pb.Term(nil), nc.Terms...)
		if err := q.AddConstraint(terms, pb.GE, nc.Degree); err != nil {
			return nil
		}
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}
