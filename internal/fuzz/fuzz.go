// Package fuzz is the differential-fuzzing harness of the reproduction: it
// runs small instances through every solver configuration — the four
// lower-bound methods, the linear-search strategy, the incremental-reduction
// and warm-LP ablations, and the cooperative portfolio with sharing on and
// off — each under the internal/audit invariant auditor, compares every
// conclusive answer against the exhaustive pb.BruteForce oracle, and shrinks
// any mismatch to a minimal OPB reproducer.
//
// Three layers consume it:
//
//   - go test fuzz targets (FuzzDifferential) mutate raw OPB text;
//   - cmd/pbfuzz generates gen.AdversarialOPB instances in bulk and saves
//     shrunk reproducers under testdata/fuzz-corpus/;
//   - TestFuzzCorpus replays every committed reproducer on each run, so a
//     once-found bug stays fixed.
package fuzz

import (
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/opb"
	"repro/internal/pb"
	"repro/internal/portfolio"
	"repro/internal/preprocess"
	"repro/internal/verify"
)

// MaxVars gates the differential run: beyond this, pb.BruteForce and the
// auditor's exhaustive replay are too slow to be useful oracles. (opb's
// complement normalization inflates the variable count, so generators should
// stay well below this.)
const MaxVars = 16

// MaxCons gates pathological constraint blowups from fuzzer-mutated text.
const MaxCons = 64

// DefaultBudget is the per-configuration conflict budget. Instances within
// MaxVars essentially always finish long before it; the cap only stops a
// runaway configuration (which would itself be a finding worth shrinking,
// surfaced as a StatusLimit skip rather than a hang).
const DefaultBudget = 50_000

// Mismatch is one configuration's disagreement with the oracle (or with its
// own auditor).
type Mismatch struct {
	// Config names the offending configuration ("lpr", "portfolio-shared", …).
	Config string
	// Detail describes the disagreement.
	Detail string
}

func (m Mismatch) String() string { return m.Config + ": " + m.Detail }

// configs is the single-solver half of the differential matrix: all four
// lower-bound methods, both strategies, and the ablation toggles whose
// "never changes results" claims are exactly what a fuzzer should test.
func configs(budget int64) []struct {
	name string
	opt  core.Options
} {
	return []struct {
		name string
		opt  core.Options
	}{
		{"plain", core.Options{LowerBound: core.LBNone, MaxConflicts: budget}},
		{"mis", core.Options{LowerBound: core.LBMIS, MaxConflicts: budget}},
		{"lgr", core.Options{LowerBound: core.LBLGR, MaxConflicts: budget}},
		{"lpr", core.Options{LowerBound: core.LBLPR, MaxConflicts: budget}},
		{"lpr-linear", core.Options{LowerBound: core.LBLPR, Strategy: core.StrategyLinearSearch, MaxConflicts: budget}},
		{"plain-linear-pb", core.Options{LowerBound: core.LBNone, Strategy: core.StrategyLinearSearch, PBLearning: true, MaxConflicts: budget}},
		{"lpr-noincremental", core.Options{LowerBound: core.LBLPR, NoIncrementalReduce: true, MaxConflicts: budget}},
		{"lpr-coldlp", core.Options{LowerBound: core.LBLPR, NoWarmLP: true, MaxConflicts: budget}},
		{"lpr-nocuts", core.Options{LowerBound: core.LBLPR, NoCuts: true, MaxConflicts: budget}},
		{"lgr-chrono", core.Options{LowerBound: core.LBLGR, ChronologicalBounds: true, MaxConflicts: budget}},
		{"mis-cuts", core.Options{LowerBound: core.LBMIS, CardinalityInference: true, PBLearning: true, MaxConflicts: budget}},
	}
}

// Check runs the full differential matrix on p with the given per-config
// conflict budget (0 = DefaultBudget) and returns every mismatch found
// (nil/empty = clean). Instances outside the oracle gates return nil.
func Check(p *pb.Problem, budget int64) []Mismatch {
	if p.NumVars > MaxVars || len(p.Constraints) > MaxCons {
		return nil
	}
	if err := p.Validate(); err != nil {
		// A parsed problem failing validation is an opb bug, surfaced as a
		// mismatch of its own rather than fed to solvers.
		return []Mismatch{{Config: "validate", Detail: err.Error()}}
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	want := pb.BruteForce(p)
	ix := verify.NewIndex(p)

	var out []Mismatch
	judge := func(name string, res core.Result, aud *audit.Auditor) {
		if rep := aud.Snapshot(); !rep.Ok() {
			for _, v := range rep.Violations {
				out = append(out, Mismatch{Config: name, Detail: "audit: " + v.String()})
			}
		}
		switch res.Status {
		case core.StatusError:
			out = append(out, Mismatch{Config: name, Detail: "crashed: " + firstLine(res.Err)})
		case core.StatusLimit:
			// Budget-bound: no verdict to compare. (An incumbent, if any, is
			// still audit-verified above.)
		case core.StatusUnsat:
			if want.Feasible {
				out = append(out, Mismatch{Config: name,
					Detail: fmt.Sprintf("claimed UNSAT, brute force found optimum %d", want.Optimum)})
			}
		case core.StatusSatisfiable, core.StatusOptimal:
			if !want.Feasible {
				out = append(out, Mismatch{Config: name, Detail: "claimed a solution on an UNSAT instance"})
				return
			}
			if res.Status == core.StatusOptimal && res.Best != want.Optimum {
				out = append(out, Mismatch{Config: name,
					Detail: fmt.Sprintf("claimed optimum %d, brute force says %d", res.Best, want.Optimum)})
			}
			if res.Values == nil {
				out = append(out, Mismatch{Config: name, Detail: "conclusive solution without values"})
				return
			}
			// Model round-trip through the value-line format: what a
			// downstream checker would actually see.
			a, err := ix.ParseValueLine(verify.FormatValueLine(p, res.Values))
			if err != nil {
				out = append(out, Mismatch{Config: name, Detail: "value line round-trip: " + err.Error()})
				return
			}
			rep := verify.Check(p, a.Values)
			if !rep.Feasible {
				out = append(out, Mismatch{Config: name,
					Detail: fmt.Sprintf("model violates constraint %d", rep.ViolatedIdx)})
			} else if res.Status == core.StatusOptimal && rep.Objective != res.Best {
				out = append(out, Mismatch{Config: name,
					Detail: fmt.Sprintf("model costs %d, solver claimed %d", rep.Objective, res.Best)})
			}
		}
	}

	for _, c := range configs(budget) {
		aud := audit.New(p)
		opt := c.opt
		opt.Audit = aud
		judge(c.name, core.SafeSolve(p, opt), aud)
	}

	// Presolve half of the matrix: FixVariables rewrites the instance over
	// the unfixed variables (different numbering, possibly fewer vars), each
	// lower-bound method solves the REDUCED problem under its own auditor,
	// and the solution is lifted back and judged against the ORIGINAL
	// problem's oracle and value-line round-trip. Any error in the fixing
	// rules, the CostOffset bookkeeping, or the Lift mapping shows up as a
	// presolve-vs-plain disagreement.
	fx, ferr := preprocess.FixVariables(p, preprocess.DefaultFixOptions)
	if ferr != nil {
		out = append(out, Mismatch{Config: "presolve", Detail: ferr.Error()})
	} else {
		if fx.ProvedUnsat && want.Feasible {
			out = append(out, Mismatch{Config: "presolve",
				Detail: fmt.Sprintf("proved UNSAT, brute force found optimum %d", want.Optimum)})
		}
		for _, lb := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
			name := "presolve-" + lb.String()
			aud := audit.New(fx.Problem)
			res := core.SafeSolve(fx.Problem, core.Options{
				LowerBound: lb, MaxConflicts: budget, Audit: aud,
			})
			if rep := aud.Snapshot(); !rep.Ok() {
				for _, v := range rep.Violations {
					out = append(out, Mismatch{Config: name, Detail: "audit: " + v.String()})
				}
			}
			switch res.Status {
			case core.StatusError:
				out = append(out, Mismatch{Config: name, Detail: "crashed: " + firstLine(res.Err)})
			case core.StatusLimit:
				// No verdict to compare.
			case core.StatusUnsat:
				if want.Feasible {
					out = append(out, Mismatch{Config: name,
						Detail: fmt.Sprintf("claimed UNSAT, brute force found optimum %d", want.Optimum)})
				}
			case core.StatusSatisfiable, core.StatusOptimal:
				if !want.Feasible {
					out = append(out, Mismatch{Config: name, Detail: "claimed a solution on an UNSAT instance"})
					continue
				}
				// A proved StatusSatisfiable on a reduced problem whose
				// objective presolve fully absorbed is an optimum claim in
				// the original space.
				conclusive := res.Status == core.StatusOptimal ||
					(res.Status == core.StatusSatisfiable && p.HasObjective())
				// Best already includes the reduced CostOffset, which absorbs
				// the costs of presolve-fixed-true variables: directly
				// comparable to the original-space optimum.
				if conclusive && res.Best != want.Optimum {
					out = append(out, Mismatch{Config: name,
						Detail: fmt.Sprintf("claimed optimum %d, brute force says %d", res.Best, want.Optimum)})
				}
				if res.Values == nil {
					out = append(out, Mismatch{Config: name, Detail: "conclusive solution without values"})
					continue
				}
				lifted := fx.Lift(res.Values)
				a, err := ix.ParseValueLine(verify.FormatValueLine(p, lifted))
				if err != nil {
					out = append(out, Mismatch{Config: name, Detail: "lifted value line round-trip: " + err.Error()})
					continue
				}
				rep := verify.Check(p, a.Values)
				if !rep.Feasible {
					out = append(out, Mismatch{Config: name,
						Detail: fmt.Sprintf("lifted model violates original constraint %d", rep.ViolatedIdx)})
				} else if conclusive && rep.Objective != res.Best {
					out = append(out, Mismatch{Config: name,
						Detail: fmt.Sprintf("lifted model costs %d in original space, solver claimed %d", rep.Objective, res.Best)})
				}
			}
		}
	}

	// Portfolio: cooperative (sharing) and isolated, each with the audit
	// attached to every member. MaxConcurrent 2 keeps real interleaving (and
	// therefore real clause/incumbent exchange) while bounding fuzz cost.
	for _, shared := range []bool{true, false} {
		name := "portfolio-isolated"
		if shared {
			name = "portfolio-shared"
		}
		aud := audit.New(p)
		members := make([]portfolio.Config, 0, 4)
		for i, lb := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
			members = append(members, portfolio.Config{
				Name: lb.String(),
				Options: core.Options{LowerBound: lb, MaxConflicts: budget,
					Seed: int64(i + 1), RandomBranchFreq: 0.02},
			})
		}
		pres := portfolio.SolveOpts(p, members, portfolio.Options{
			NoSharing:     !shared,
			MaxConcurrent: 2,
			Audit:         aud,
		})
		judge(name, pres.Result, aud)
	}

	// Mixed portfolio: one UB-only local-search member racing one B&B member
	// per lower-bound method, shared and isolated. The judge treats any
	// conclusive verdict as a proof claim, so these cells pin the UB-only
	// contract end to end: the LS member's incumbents may accelerate (or,
	// shared, tighten) the B&B member, but the portfolio's verdict must
	// still match the brute-force oracle exactly — in particular, an LS
	// incumbent must never surface as a fake UNSAT/optimality proof.
	for _, shared := range []bool{true, false} {
		for i, lb := range []core.Method{core.LBNone, core.LBMIS, core.LBLGR, core.LBLPR} {
			name := "mixed-" + lb.String() + "-isolated"
			if shared {
				name = "mixed-" + lb.String() + "-shared"
			}
			aud := audit.New(p)
			members := []portfolio.Config{
				{Name: lb.String(), Options: core.Options{LowerBound: lb, MaxConflicts: budget,
					Seed: int64(i + 1), RandomBranchFreq: 0.02}},
				portfolio.LSConfig("ls", int64(100+i), 10_000),
			}
			pres := portfolio.SolveOpts(p, members, portfolio.Options{
				NoSharing:     !shared,
				MaxConcurrent: 2,
				Audit:         aud,
			})
			judge(name, pres.Result, aud)
		}
	}
	return out
}

// CheckText parses OPB text and runs the differential matrix on it. Parse
// errors are not findings (the adversarial generator deliberately produces
// overflowing inputs the parser must reject) — ok=false reports "nothing to
// check".
func CheckText(text string, budget int64) (mismatches []Mismatch, ok bool) {
	p, err := opb.ParseString(text)
	if err != nil {
		return nil, false
	}
	return Check(p, budget), true
}

// Describe renders a mismatch list plus the instance for reproducer headers
// and failure messages.
func Describe(p *pb.Problem, ms []Mismatch) string {
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "* mismatch %s\n", m)
	}
	sb.WriteString(opb.WriteString(p))
	return sb.String()
}

func firstLine(err error) string {
	if err == nil {
		return "unknown"
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
