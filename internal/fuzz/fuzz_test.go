package fuzz

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/opb"
	"repro/internal/pb"
)

// FuzzDifferential mutates raw OPB text: every input that parses within the
// oracle gates is run through the full differential matrix, and any mismatch
// is shrunk before failing so the reported instance is already minimal.
func FuzzDifferential(f *testing.F) {
	f.Add("min: +3 a +1 b ;\n+1 a +1 b >= 1 ;")
	f.Add("min: -5 a +1 b ;\n+1 a +1 b >= 1 ;\n+2 a +1 ~b <= 2 ;")
	f.Add("min: +1 x1 +2 x2 +3 x3 ;\n+1 x1 +1 x2 +1 x3 = 2 ;\n+2 x1 -1 x2 >= 0 ;")
	f.Add("+1 a >= 1 ;\n+1 ~a >= 1 ;")
	for _, seed := range []int64{1, 7, 42} {
		f.Add(gen.AdversarialOPB(gen.AdversarialConfig{Seed: seed}))
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 4096 {
			return // cap parse work on giant mutated blobs
		}
		p, err := opb.ParseString(text)
		if err != nil {
			return // structured rejection is fine; panics are caught by the fuzzer
		}
		ms := Check(p, 20_000)
		if len(ms) == 0 {
			return
		}
		small := Shrink(p, func(q *pb.Problem) bool { return len(Check(q, 20_000)) > 0 })
		t.Fatalf("differential mismatch (shrunk):\n%s", Describe(small, Check(small, 20_000)))
	})
}

// TestAdversarialDifferential is the always-on slice of the fuzzer: a fixed
// fan of adversarial seeds through the full matrix on every `go test` run.
func TestAdversarialDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for seed := int64(0); seed < int64(n); seed++ {
		cfg := gen.AdversarialConfig{Seed: seed}
		if seed%3 == 1 {
			cfg.Vars, cfg.Rows = 8, 8
		}
		text := gen.AdversarialOPB(cfg)
		ms, ok := CheckText(text, 20_000)
		if !ok {
			continue // parser rejected (overflow &c.) — a valid outcome
		}
		if len(ms) != 0 {
			p, _ := opb.ParseString(text)
			small := Shrink(p, func(q *pb.Problem) bool { return len(Check(q, 20_000)) > 0 })
			t.Fatalf("seed %d: differential mismatch (shrunk):\n%s",
				seed, Describe(small, Check(small, 20_000)))
		}
	}
}

// TestCheckGates: oversized instances are skipped, not solved.
func TestCheckGates(t *testing.T) {
	p := pb.NewProblem(MaxVars + 1)
	if ms := Check(p, 0); ms != nil {
		t.Fatalf("oversized instance must be gated, got %v", ms)
	}
	if _, ok := CheckText("this is not opb", 0); ok {
		t.Fatal("parse failure must report ok=false")
	}
}

// TestShrinkMinimizes: the shrinker must reduce an instance to a minimal
// form under a deterministic predicate, and every candidate it accepts must
// itself satisfy the predicate (greedy invariant).
func TestShrinkMinimizes(t *testing.T) {
	p, err := opb.ParseString(
		"min: +4 a +3 b +2 c ;\n" +
			"+3 a +2 b +1 c >= 4 ;\n" +
			"+1 a +1 b >= 1 ;\n" +
			"+2 b +2 c >= 2 ;")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	// Predicate: some constraint still mentions variable 0 ("a").
	pred := func(q *pb.Problem) bool {
		calls++
		for _, c := range q.Constraints {
			for _, tm := range c.Terms {
				if tm.Lit.Var() == 0 {
					return true
				}
			}
		}
		return false
	}
	small := Shrink(p, pred)
	if calls == 0 {
		t.Fatal("predicate never called")
	}
	if !pred(small) {
		t.Fatal("shrunk instance no longer satisfies the predicate")
	}
	// Minimal form: exactly one constraint, one term (on a), degree 1,
	// coefficient 1, no costs.
	if len(small.Constraints) != 1 {
		t.Fatalf("constraints=%d want 1:\n%s", len(small.Constraints), opb.WriteString(small))
	}
	c := small.Constraints[0]
	if len(c.Terms) != 1 || c.Terms[0].Lit.Var() != 0 || c.Terms[0].Coef != 1 || c.Degree != 1 {
		t.Fatalf("not minimal: %+v", c)
	}
	for v, cost := range small.Cost {
		if cost != 0 {
			t.Fatalf("cost[%d]=%d not shrunk away", v, cost)
		}
	}
}

// TestAdversarialOPBShapes: the generator must exercise its advertised
// hostile shapes across a seed range — negations, duplicates, all three
// operators, negative coefficients — and stay within the fuzz gates.
func TestAdversarialOPBShapes(t *testing.T) {
	var sawNeg, sawTilde, sawLE, sawEQ, parsed int
	for seed := int64(0); seed < 200; seed++ {
		text := gen.AdversarialOPB(gen.AdversarialConfig{Seed: seed})
		for i := 0; i+1 < len(text); i++ {
			switch {
			case text[i] == '~':
				sawTilde++
			case text[i] == '<' && text[i+1] == '=':
				sawLE++
			case text[i] == '=' && text[i+1] == ' ' && i > 0 && text[i-1] == ' ':
				sawEQ++
			case text[i] == ' ' && text[i+1] == '-':
				sawNeg++
			}
		}
		p, err := opb.ParseString(text)
		if err != nil {
			continue // overflow rejection path — intended
		}
		parsed++
		if p.NumVars > MaxVars {
			t.Fatalf("seed %d: %d vars exceeds the fuzz gate %d", seed, p.NumVars, MaxVars)
		}
	}
	if sawNeg == 0 || sawTilde == 0 || sawLE == 0 || sawEQ == 0 {
		t.Fatalf("generator missing shapes: neg=%d tilde=%d le=%d eq=%d", sawNeg, sawTilde, sawLE, sawEQ)
	}
	if parsed < 100 {
		t.Fatalf("only %d/200 seeds parse; generator too hostile to be useful", parsed)
	}
}
