package fuzz

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/pb"
	"repro/internal/wbo"
)

// TestWBODifferential is the always-on WBO slice of the fuzzer: generated
// weighted instances through the core-guided and mixed-portfolio cells on
// every `go test` run, under the exhaustive auditor.
func TestWBODifferential(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < int64(n); seed++ {
		// Small enough that the compiled problem (vars + one selector per
		// soft) stays inside the MaxVars oracle gate.
		in, err := gen.WBO(gen.WBOConfig{Vars: 4, HardRows: 3, SoftRows: 4, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ms := CheckWBO(in, 20_000); len(ms) != 0 {
			for _, m := range ms {
				t.Errorf("seed %d: %s", seed, m)
			}
		}
	}
}

// TestWBODifferentialHardUnsat pins the hard-UNSAT cell: both paths must
// agree that a hard-contradictory instance has no solution at all.
func TestWBODifferentialHardUnsat(t *testing.T) {
	in := &wbo.Instance{
		NumVars: 1,
		Hard: []wbo.HardCons{
			{Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, Cmp: pb.GE, Rhs: 1},
			{Terms: []pb.Term{{Coef: 1, Lit: pb.NegLit(0)}}, Cmp: pb.GE, Rhs: 1},
		},
		Soft: []wbo.SoftCons{
			{Weight: 5, Terms: []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, Cmp: pb.GE, Rhs: 1}},
	}
	if ms := CheckWBO(in, 0); len(ms) != 0 {
		for _, m := range ms {
			t.Error(m)
		}
	}
}

// TestCheckWBOFlagsWrongOracle sanity-checks the checker itself: feeding it
// an instance and manually broken expectations is impossible through the
// public surface, so instead verify it gates oversized instances.
func TestCheckWBOGates(t *testing.T) {
	in, err := gen.WBO(gen.WBOConfig{Vars: MaxVars + 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ms := CheckWBO(in, 0); ms != nil {
		t.Fatalf("oversized instance must be gated, got %v", ms)
	}
}
