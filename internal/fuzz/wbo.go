package fuzz

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/portfolio"
	"repro/internal/wbo"
)

// CheckWBO runs the Weighted Boolean Optimization differential cells on an
// instance: the core-guided loop solo and the mixed core-guided + B&B
// portfolio, each compared against the brute-force oracle of the shared
// soft-relaxed compilation, with the portfolio under the exhaustive auditor
// (scoped to the compiled problem — the space ExtendedWitness maps
// incumbents into). Instances outside the oracle gates return nil.
func CheckWBO(in *wbo.Instance, budget int64) []Mismatch {
	if err := in.Validate(); err != nil {
		return []Mismatch{{Config: "wbo-validate", Detail: err.Error()}}
	}
	b, err := in.Builder()
	if err != nil {
		// Compile-time rejection (e.g. big-M overflow) is not a finding;
		// the parser/validator cells own those inputs.
		return nil
	}
	p, err := b.Problem()
	if err != nil {
		return nil
	}
	if p.NumVars > MaxVars || len(p.Constraints) > MaxCons {
		return nil
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	want := pb.BruteForce(p)

	var out []Mismatch

	// Cell 1: the core-guided loop alone against the oracle.
	res := wbo.Solve(in, wbo.Options{MaxConflicts: budget})
	switch res.Status {
	case core.StatusError:
		out = append(out, Mismatch{Config: "core-guided", Detail: "crashed: " + firstLine(res.Err)})
	case core.StatusLimit:
		// Budget-bound: only the lower bound is checkable.
		if want.Feasible && res.LowerBound-in.Offset > want.Optimum {
			out = append(out, Mismatch{Config: "core-guided",
				Detail: fmt.Sprintf("lower bound %d exceeds brute-force optimum %d",
					res.LowerBound-in.Offset, want.Optimum)})
		}
	case core.StatusUnsat:
		if want.Feasible {
			out = append(out, Mismatch{Config: "core-guided",
				Detail: fmt.Sprintf("claimed hard-UNSAT, brute force found optimum %d", want.Optimum)})
		}
	case core.StatusOptimal:
		switch {
		case !want.Feasible:
			out = append(out, Mismatch{Config: "core-guided", Detail: "claimed an optimum on a hard-UNSAT instance"})
		case res.Best-in.Offset != want.Optimum:
			out = append(out, Mismatch{Config: "core-guided",
				Detail: fmt.Sprintf("claimed optimum %d, brute force says %d", res.Best-in.Offset, want.Optimum)})
		default:
			ext := in.ExtendedWitness(res.Values)
			if !p.Feasible(ext) {
				out = append(out, Mismatch{Config: "core-guided",
					Detail: "extended witness violates the compiled problem"})
			} else if got := p.ObjectiveValue(ext); got != res.Best-in.Offset {
				out = append(out, Mismatch{Config: "core-guided",
					Detail: fmt.Sprintf("extended witness costs %d, claim was %d", got, res.Best-in.Offset)})
			}
		}
	}

	// Cell 2: the mixed portfolio (core-guided member + one B&B member per
	// budgeted race) under the auditor. MaxConcurrent 2 keeps the members
	// genuinely interleaved while bounding fuzz cost.
	aud := audit.New(p)
	members := []portfolio.Config{
		{Name: "core-guided", CoreGuided: &portfolio.CoreGuided{
			Instance: in, Options: wbo.Options{MaxConflicts: budget}}},
		{Name: "mis", Options: core.Options{LowerBound: core.LBMIS, MaxConflicts: budget, Seed: 2}},
	}
	pres := portfolio.SolveOpts(p, members, portfolio.Options{MaxConcurrent: 2, Audit: aud})
	if rep := aud.Snapshot(); !rep.Ok() {
		for _, v := range rep.Violations {
			out = append(out, Mismatch{Config: "portfolio-wbo", Detail: "audit: " + v.String()})
		}
	}
	switch pres.Status {
	case core.StatusError:
		out = append(out, Mismatch{Config: "portfolio-wbo", Detail: "crashed: " + firstLine(pres.Err)})
	case core.StatusLimit:
		// No verdict to compare (the incumbent, if any, was audit-verified).
	case core.StatusUnsat:
		if want.Feasible {
			out = append(out, Mismatch{Config: "portfolio-wbo",
				Detail: fmt.Sprintf("claimed UNSAT, brute force found optimum %d", want.Optimum)})
		}
	case core.StatusSatisfiable, core.StatusOptimal:
		switch {
		case !want.Feasible:
			out = append(out, Mismatch{Config: "portfolio-wbo", Detail: "claimed a solution on an UNSAT instance"})
		case pres.Status == core.StatusOptimal && pres.Best != want.Optimum:
			out = append(out, Mismatch{Config: "portfolio-wbo",
				Detail: fmt.Sprintf("claimed optimum %d, brute force says %d (winner %s)",
					pres.Best, want.Optimum, pres.Winner)})
		case pres.Values != nil && !p.Feasible(pres.Values):
			out = append(out, Mismatch{Config: "portfolio-wbo", Detail: "winning witness infeasible"})
		}
	}
	return out
}
