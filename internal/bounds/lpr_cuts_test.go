package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/pb"
)

// twoTriangles is the canonical instance where clique cuts beat plain LPR by
// a full unit: two disjoint vertex-cover triangles, each with LP optimum 1.5
// but integer optimum 2. The plain relaxation gives 3 (already integral, so
// rounding gains nothing); the two clique cuts x+y+z ≥ 2 lift it to the true
// optimum 4.
func twoTriangles() *pb.Problem {
	p := pb.NewProblem(6)
	for v := 0; v < 6; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	clause := func(a, b int) {
		_ = p.AddConstraint([]pb.Term{
			{Coef: 1, Lit: pb.PosLit(pb.Var(a))},
			{Coef: 1, Lit: pb.PosLit(pb.Var(b))},
		}, pb.GE, 1)
	}
	clause(0, 1)
	clause(1, 2)
	clause(0, 2)
	clause(3, 4)
	clause(4, 5)
	clause(3, 5)
	return p
}

// TestLPRCutsCloseRootGap drives the root fixpoint end to end: separation
// must find both triangle cliques, the re-solved LP must reach the integer
// optimum, and a clean fixpoint must leave the warm basis intact.
func TestLPRCutsCloseRootGap(t *testing.T) {
	p := twoTriangles()
	e := engine.New(p)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		t.Fatalf("unexpected root conflict")
	}
	red := Extract(e)

	plain := LPR{}.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
	if plain.Bound != 3 {
		t.Fatalf("plain LPR bound = %d, want 3", plain.Bound)
	}

	st := &LPRState{}
	pool := cuts.NewPool(cuts.Config{})
	est := LPR{State: st, Cuts: pool}
	res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
	if res.Failed || res.Incomplete {
		t.Fatalf("cut-augmented estimate degraded: %+v", res)
	}
	if res.Bound != 4 {
		t.Fatalf("cut-augmented bound = %d, want 4 (integer optimum)", res.Bound)
	}
	ctr := pool.Counters()
	if ctr.Separated != 2 || ctr.Active != 2 {
		t.Fatalf("expected exactly the two triangle cliques pooled: %+v", ctr)
	}
	if ctr.Applied < 2 || ctr.Rounds < 2 {
		t.Fatalf("fixpoint bookkeeping off: %+v", ctr)
	}
	if !st.HasBasis() {
		t.Fatalf("clean fixpoint must keep the warm basis")
	}
	// The pooled cuts keep tightening subsequent (deeper) estimations.
	e.Decide(pb.PosLit(0))
	if e.Propagate() >= 0 {
		t.Fatalf("unexpected conflict after decision")
	}
	red2 := Extract(e)
	res2 := est.Estimate(e, red2, p.Cost, p.TotalCost()+1, Budget{})
	if res2.Failed {
		t.Fatalf("deep estimate failed")
	}
	// x0=1 satisfies the first triangle's cut partially: residual x1+x2 ≥ 1,
	// second cut untouched — the bound stays ≥ 3 for the remaining vars plus
	// nothing for x0... total completion cost ≥ 1+3 means bound ≥ 3.
	if res2.Bound < 3 {
		t.Fatalf("deep cut-augmented bound = %d, want ≥ 3", res2.Bound)
	}
}

// TestLPRCutsInterruptBetweenRounds is the regression for the warm-basis
// lease bug: a Budget interrupt firing between separation rounds abandons
// the loop after cut rows entered the tableau. The abandonment must
// invalidate the basis snapshot — otherwise the next estimation would
// warm-start from a tableau whose cut rows the returned Result never
// described.
func TestLPRCutsInterruptBetweenRounds(t *testing.T) {
	p := twoTriangles()
	e := engine.New(p)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		t.Fatalf("unexpected root conflict")
	}
	red := Extract(e)

	st := &LPRState{}
	pool := cuts.NewPool(cuts.Config{})
	est := LPR{State: st, Cuts: pool}
	calls := 0
	bud := Budget{Interrupt: func() bool {
		calls++
		return calls >= 2 // round 0 runs in full; round 1 is interrupted
	}}
	res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, bud)
	if calls < 2 {
		t.Fatalf("interrupt consulted %d times; the separation loop never reached round 1", calls)
	}
	if pool.Counters().Separated == 0 {
		t.Fatalf("round 0 separated nothing; the regression scenario did not materialize")
	}
	if st.HasBasis() {
		t.Fatalf("interrupted separation left the warm-basis lease pointing at the cut-augmented tableau")
	}
	// The interrupted result is still sound and still benefits from the
	// round-0 cuts it re-solved with.
	if res.Failed {
		t.Fatalf("interrupted estimate failed outright")
	}
	if res.Bound < 3 || res.Bound > 4 {
		t.Fatalf("interrupted bound = %d, want within [3,4]", res.Bound)
	}
	// The next estimation must work from a cold start and succeed.
	res2 := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
	if res2.Failed || res2.Bound != 4 {
		t.Fatalf("post-interrupt estimate: %+v, want clean bound 4", res2)
	}
	if st.ColdSolves() == 0 {
		t.Fatalf("post-interrupt estimate should have started cold")
	}
}

// TestLPRCutsInfeasibleResidual exercises the residualization fast path: a
// pooled cut whose unassigned literals cannot cover the residual degree
// refutes the node, with the cut's false literals as the explanation. (The
// injected cut is valid for the instance: x2+x3 ≥ 2 is implied by the two
// unit-ish rows below.)
func TestLPRCutsInfeasibleResidual(t *testing.T) {
	p := pb.NewProblem(4)
	for v := 0; v < 4; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	// Loose covering row keeping all four vars in play, plus clause pairs
	// (x2∨x0)(x2∨¬x0) and (x3∨x1)(x3∨¬x1): by resolution they imply x2 and
	// x3 — hence the cut — yet nothing is unit at the root.
	_ = p.AddConstraint([]pb.Term{
		{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)},
		{Coef: 1, Lit: pb.PosLit(2)}, {Coef: 1, Lit: pb.PosLit(3)},
	}, pb.GE, 1)
	clause := func(a, b pb.Lit) {
		_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: a}, {Coef: 1, Lit: b}}, pb.GE, 1)
	}
	clause(pb.PosLit(2), pb.PosLit(0))
	clause(pb.PosLit(2), pb.NegLit(0))
	clause(pb.PosLit(3), pb.PosLit(1))
	clause(pb.PosLit(3), pb.NegLit(1))

	e := engine.New(p)
	if e.SeedUnits() < 0 {
		t.Fatalf("unexpected unit conflict")
	}
	pool := cuts.NewPool(cuts.Config{})
	if !pool.Add(cuts.Cut{Terms: []pb.Term{
		{Coef: 1, Lit: pb.PosLit(2)}, {Coef: 1, Lit: pb.PosLit(3)},
	}, Degree: 2}) {
		t.Fatalf("cut rejected")
	}
	est := LPR{Cuts: pool}

	e.Decide(pb.NegLit(2)) // falsify x2: the cut's residual 1·x3 ≥ 2 is hopeless
	red := Extract(e)
	if red.Infeasible {
		t.Skipf("engine-level extraction already infeasible; cut path shadowed")
	}
	res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
	if res.Bound != InfBound {
		t.Fatalf("bound = %d, want InfBound from the residual cut", res.Bound)
	}
	if len(res.ResponsibleLits) != 1 || res.ResponsibleLits[0] != pb.PosLit(2) {
		t.Fatalf("ResponsibleLits = %v, want [x2]", res.ResponsibleLits)
	}
}

// TestLPRCutsSoundDownRandomPaths is the differential soundness sweep: with
// a persistent pool and warm state, estimates along random decision paths
// never exceed the reduced problem's true optimum, and InfBound claims are
// genuine. The pool accumulates across nodes of the SAME instance (matching
// real use: one pool per solve).
func TestLPRCutsSoundDownRandomPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 150; iter++ {
		p := randomProblem(rng, 4+rng.Intn(5))
		pool := cuts.NewPool(cuts.Config{Every: 1})
		est := LPR{State: &LPRState{}, Cuts: pool}
		e := engine.New(p)
		if e.SeedUnits() >= 0 && e.Propagate() < 0 {
			for depth := 0; depth < 4; depth++ {
				red := Extract(e)
				if red.Infeasible {
					break
				}
				res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
				if res.Failed {
					continue
				}
				opt, feasible := bruteReduced(red, p.Cost)
				if res.Bound >= InfBound {
					if feasible {
						t.Fatalf("iter %d depth %d: InfBound but reduced optimum %d exists", iter, depth, opt)
					}
				} else if feasible && res.Bound > opt {
					t.Fatalf("iter %d depth %d: bound %d > reduced optimum %d", iter, depth, res.Bound, opt)
				}
				for _, l := range res.ResponsibleLits {
					if e.LitValue(l) != engine.False {
						t.Fatalf("iter %d: responsible cut literal %v not false", iter, l)
					}
				}
				// One random decision deeper.
				var free []pb.Var
				for v := 0; v < e.NumVars(); v++ {
					if e.Value(pb.Var(v)) == engine.Unassigned {
						free = append(free, pb.Var(v))
					}
				}
				if len(free) == 0 {
					break
				}
				e.Decide(pb.MkLit(free[rng.Intn(len(free))], rng.Intn(2) == 0))
				if e.Propagate() >= 0 {
					break
				}
			}
		}
	}
}

// TestLPRCutsAlphaFilterSound repeats the soundness sweep with the §4.3
// filter enabled on the cut-augmented LP: exclusions must never let the
// bound exceed the reduced optimum recomputed with excluded variables freed.
func TestLPRCutsAlphaFilterSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		p := randomProblem(rng, 4+rng.Intn(4))
		pool := cuts.NewPool(cuts.Config{Every: 1})
		est := LPR{State: &LPRState{}, Cuts: pool, AlphaFilter: true}
		e := engine.New(p)
		if !decideRandom(e, rng, 1+rng.Intn(2)) {
			continue
		}
		red := Extract(e)
		if red.Infeasible {
			continue
		}
		res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
		if res.Failed || res.Bound >= InfBound {
			continue
		}
		opt, feasible := bruteReduced(red, p.Cost)
		if feasible && res.Bound > opt {
			t.Fatalf("iter %d: filtered bound %d > reduced optimum %d", iter, res.Bound, opt)
		}
	}
}
