package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/pb"
)

// TestExplanationClauseSoundness verifies the §4 bound-conflict property
// directly: whenever path + bound ≥ upper at a node, the explanation clause
//
//	ω_bc = ω_pp ∪ ω_pl
//	ω_pp = {¬x : cost(x) > 0, x = 1}                           (eq. 8)
//	ω_pl = {l : l false, l ∈ responsible constraints} \ α-excluded  (eq. 9, §4.3)
//
// must be satisfied by EVERY full assignment that is feasible and cheaper
// than the upper bound. A violation would mean the solver prunes an optimal
// solution — the exact failure mode the weak-duality recomputation and the
// α-filter margins are designed to prevent.
func TestExplanationClauseSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	ests := []Estimator{
		MIS{},
		LPR{},
		LPR{AlphaFilter: true},
		LPR{ZeroSlackExplanations: true},
		LGR{},
		LGR{WarmStart: true},
		LGR{DisableAlphaFilter: true},
	}
	checked := 0
	for iter := 0; iter < 800 && checked < 400; iter++ {
		n := 4 + rng.Intn(5)
		p := randomProblem(rng, n)
		opt := pb.BruteForce(p)
		if !opt.Feasible {
			continue
		}
		e := engine.New(p)
		if !decideRandom(e, rng, 1+rng.Intn(4)) {
			continue
		}
		red := Extract(e)
		// Path cost of the current partial assignment.
		var path int64
		for i := 0; i < e.TrailSize(); i++ {
			l := e.TrailLit(i)
			if !l.IsNeg() {
				path += p.Cost[l.Var()]
			}
		}
		// An upper bound somewhere between optimum and optimum+4 — tight
		// uppers make bound conflicts (and thus explanations) frequent.
		upper := opt.Optimum + int64(rng.Intn(5))
		if upper <= 0 {
			continue
		}
		for _, est := range ests {
			res := est.Estimate(e, red, p.Cost, upper-path, Budget{})
			if path+res.Bound < upper {
				continue // no bound conflict: nothing to explain
			}
			checked++
			// Build ω_bc exactly as internal/core does.
			inSeed := map[pb.Lit]bool{}
			for i := 0; i < e.TrailSize(); i++ {
				l := e.TrailLit(i)
				if !l.IsNeg() && p.Cost[l.Var()] > 0 && e.Level(l.Var()) > 0 {
					inSeed[pb.NegLit(l.Var())] = true
				}
			}
			for _, ci := range res.Responsible {
				c := e.Cons(ci)
				for _, l := range c.Lits {
					if e.LitValue(l) != engine.False {
						continue
					}
					v := l.Var()
					if e.Level(v) == 0 {
						continue
					}
					if res.ExcludedVars != nil && res.ExcludedVars[v] {
						continue
					}
					inSeed[l] = true
				}
			}
			// Every feasible assignment cheaper than upper must satisfy ω_bc.
			for mask := 0; mask < 1<<n; mask++ {
				vals := make([]bool, n)
				for v := 0; v < n; v++ {
					vals[v] = mask&(1<<v) != 0
				}
				if !p.Feasible(vals) || p.ObjectiveValue(vals) >= upper {
					continue
				}
				// An empty ω_bc asserts that no cheaper feasible assignment
				// exists at all, so reaching this point with one is a
				// violation (satisfied stays false).
				satisfied := false
				for l := range inSeed {
					if l.Eval(vals[l.Var()]) {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Fatalf("iter %d %s: ω_bc excludes feasible assignment %v of cost %d < upper %d\nclause: %v\nbound=%d path=%d",
						iter, est.Name(), vals, p.ObjectiveValue(vals), upper, keys(inSeed), res.Bound, path)
				}
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d bound conflicts exercised", checked)
	}
}

func keys(m map[pb.Lit]bool) []pb.Lit {
	out := make([]pb.Lit, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	return out
}
