package bounds

import (
	"sync/atomic"

	"repro/internal/lp"
)

// LPRState is the persistent warm-start state threaded through consecutive
// LPR estimations. It carries the previous node's LP basis, snapshotted by
// lp.SolveWarm under search-stable keys (engine constraint indices for y
// variables, pb.Var for w variables and rows), so the next node's LP —
// usually differing in a handful of columns and rows — starts from a
// near-optimal basis instead of the slack crash.
//
// Soundness is independent of this state: LPR recomputes its bound from the
// returned multipliers via weak duality, and lp.SolveWarm falls back to a
// cold solve whenever the mapped basis is poor or numerically suspect. The
// state is therefore a pure accelerator; invalidating it at any point (the
// search does so on restarts, database reductions and estimator demotions)
// costs one cold solve and nothing else.
//
// The zero value is ready to use. Not safe for concurrent use, matching the
// single-threaded search loop; the counters are read with atomics only so
// harness goroutines may sample them mid-run.
type LPRState struct {
	basis *lp.Basis

	// Counters (sampled by Stats): warm solves, cold solves (first node,
	// invalidations, and fallbacks), and the subset of cold solves where a
	// warm attempt was abandoned mid-flight.
	warmSolves    atomic.Int64
	coldSolves    atomic.Int64
	warmFallbacks atomic.Int64
}

// Invalidate drops the stored basis: the next LPR call solves cold. Called
// by the search when the node-to-node continuity the basis assumes is broken
// (restart, ReduceDB, estimator demotion) or after a hard LPR failure.
func (st *LPRState) Invalidate() {
	if st != nil {
		st.basis = nil
	}
}

// HasBasis reports whether a basis is currently stored (diagnostics only).
func (st *LPRState) HasBasis() bool { return st != nil && st.basis != nil }

// WarmSolves returns the number of LP solves that reused a previous basis.
func (st *LPRState) WarmSolves() int64 { return st.warmSolves.Load() }

// ColdSolves returns the number of from-scratch LP solves.
func (st *LPRState) ColdSolves() int64 { return st.coldSolves.Load() }

// WarmFallbacks returns the number of cold solves that began as warm
// attempts (poor mapping, corrupted pivots, numerical trouble).
func (st *LPRState) WarmFallbacks() int64 { return st.warmFallbacks.Load() }
