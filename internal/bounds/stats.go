package bounds

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cuts"
)

// ProcStats aggregates per-estimator observability for one lower-bound
// procedure over a run: call volume, wall-clock cost, bound strength, and
// failure/incompleteness counts. The search records one entry per estimator
// name ("lpr", "lgr", "mis", "plain") plus the fallback rung's usage.
type ProcStats struct {
	// Calls counts estimation calls (including failed ones).
	Calls int64
	// Time accumulates wall-clock spent inside Estimate.
	Time time.Duration
	// BoundSum accumulates finite returned bounds; BoundSum/Calls is the
	// mean bound strength. Infeasibility bounds (InfBound) are excluded and
	// counted in Infinite instead, so one hopeless node cannot drown the
	// average.
	BoundSum int64
	// MaxBound is the largest finite bound returned.
	MaxBound int64
	// Infinite counts calls that proved the node infeasible (InfBound).
	Infinite int64
	// Incomplete counts calls that hit their iteration or wall-clock budget
	// (sound, merely weaker bounds).
	Incomplete int64
	// Failed counts hard failures (numerical corruption, solver errors).
	Failed int64
	// Panics counts the subset of Failed that were recovered panics.
	Panics int64
	// Prunes counts calls whose bound triggered a bound conflict.
	Prunes int64
}

// MeanBound returns the average finite bound per successful call (0 when no
// finite bound was ever produced).
func (p *ProcStats) MeanBound() float64 {
	ok := p.Calls - p.Failed - p.Infinite
	if ok <= 0 {
		return 0
	}
	return float64(p.BoundSum) / float64(ok)
}

// MeanTime returns the average wall-clock per call.
func (p *ProcStats) MeanTime() time.Duration {
	if p.Calls == 0 {
		return 0
	}
	return p.Time / time.Duration(p.Calls)
}

// Stats is the bound-pipeline observability block: reduced-problem
// construction cost plus one ProcStats per estimator, and the LP
// warm-start counters when LPR ran with persistent state.
type Stats struct {
	// Incremental reports whether the persistent Reducer produced the
	// reduced problems (false = from-scratch Extract per node).
	Incremental bool
	// Reduces counts reduced-problem constructions; ReduceTime their total
	// wall-clock cost.
	Reduces    int64
	ReduceTime time.Duration

	// Warm-start counters (LPR with persistent state only).
	//
	// WarmSolves counts LP solves that reused the previous basis;
	// ColdSolves counts from-scratch solves (first node, invalidations, and
	// warm attempts that fell back); WarmFallbacks is the subset of
	// ColdSolves where a warm start was attempted but abandoned (dimension
	// mapping too poor, numerical trouble, corrupted basis).
	WarmSolves    int64
	ColdSolves    int64
	WarmFallbacks int64

	// Cuts is the cut-pool observability block (zero when LPR ran without a
	// pool): separation rounds, cuts separated/pooled/pruned, install volume.
	Cuts cuts.Counters

	// Per maps estimator name to its aggregate.
	Per map[string]*ProcStats
}

// Clone returns a deep copy: the Per map and its ProcStats entries are
// duplicated, so the copy can be handed to another goroutine (the live
// metrics registry) or frozen into a Result while the original keeps
// mutating.
func (s Stats) Clone() Stats {
	out := s
	if s.Per != nil {
		out.Per = make(map[string]*ProcStats, len(s.Per))
		for name, p := range s.Per {
			cp := *p
			out.Per[name] = &cp
		}
	}
	return out
}

// Proc returns (allocating on demand) the ProcStats for name.
func (s *Stats) Proc(name string) *ProcStats {
	if s.Per == nil {
		s.Per = make(map[string]*ProcStats, 4)
	}
	p := s.Per[name]
	if p == nil {
		p = &ProcStats{}
		s.Per[name] = p
	}
	return p
}

// Record folds one estimation call into the per-estimator aggregate.
func (s *Stats) Record(name string, res Result, elapsed time.Duration, panicked bool) {
	p := s.Proc(name)
	p.Calls++
	p.Time += elapsed
	switch {
	case panicked:
		p.Failed++
		p.Panics++
	case res.Failed:
		p.Failed++
	case res.Bound >= InfBound:
		p.Infinite++
	default:
		p.BoundSum += res.Bound
		if res.Bound > p.MaxBound {
			p.MaxBound = res.Bound
		}
	}
	if res.Incomplete {
		p.Incomplete++
	}
}

// Names returns the estimator names present, sorted.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.Per))
	for n := range s.Per {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders a compact one-line-per-estimator summary for logs and the
// CLI's "-stats" output.
func (s *Stats) String() string {
	var sb strings.Builder
	mode := "extract"
	if s.Incremental {
		mode = "incremental"
	}
	fmt.Fprintf(&sb, "reduce[%s]: %d calls %v", mode, s.Reduces, s.ReduceTime.Round(time.Microsecond))
	if s.WarmSolves+s.ColdSolves > 0 {
		fmt.Fprintf(&sb, "; lp: %d warm %d cold (%d fallbacks)",
			s.WarmSolves, s.ColdSolves, s.WarmFallbacks)
	}
	if s.Cuts.Rounds > 0 {
		fmt.Fprintf(&sb, "; cuts: %d sep %d active %d pruned (%d rounds, %d applied, %d dup, %v)",
			s.Cuts.Separated, s.Cuts.Active, s.Cuts.Pruned,
			s.Cuts.Rounds, s.Cuts.Applied, s.Cuts.Duplicates,
			s.Cuts.SepTime.Round(time.Microsecond))
	}
	for _, n := range s.Names() {
		p := s.Per[n]
		fmt.Fprintf(&sb, "\n%-5s calls=%d time=%v mean=%v meanBound=%.1f prunes=%d inf=%d incomplete=%d failed=%d panics=%d",
			n, p.Calls, p.Time.Round(time.Microsecond), p.MeanTime().Round(time.Microsecond),
			p.MeanBound(), p.Prunes, p.Infinite, p.Incomplete, p.Failed, p.Panics)
	}
	return sb.String()
}

// TotalTime returns the wall-clock spent across reduction and all
// estimators (the bound pipeline's share of the solve).
func (s *Stats) TotalTime() time.Duration {
	t := s.ReduceTime
	for _, p := range s.Per {
		t += p.Time
	}
	return t
}

// TotalCalls returns the estimation call count across estimators.
func (s *Stats) TotalCalls() int64 {
	var c int64
	for _, p := range s.Per {
		c += p.Calls
	}
	return c
}
