package bounds

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/pb"
)

// MIS approximates a maximum independent set of constraints (§3, refs [5,9]):
// a set of unsatisfied constraints that are pairwise disjoint on unassigned
// variables. Because the constraints share no variables, the minimum cost of
// satisfying each can be summed into a lower bound on the cost of any
// completion.
//
// The per-constraint minimum satisfaction cost is the single-row LP bound:
// literals sorted by cost density (cost/coefficient, negative literals are
// free), accumulated until the residual degree is reached, with the last
// literal counted fractionally. That is exact for clauses (the cheapest
// literal) and a valid relaxation for general rows.
type MIS struct {
	// MaxRows caps how many constraints are examined (0 = no cap).
	MaxRows int
}

// Name implements Estimator.
func (MIS) Name() string { return "mis" }

// rowLPBound returns the single-row LP lower bound for satisfying
// Σ terms ≥ degree in isolation.
func rowLPBound(cost []int64, row *Row) float64 {
	if row.Degree <= 0 {
		return 0
	}
	type cand struct {
		c    int64 // literal cost
		a    int64 // coefficient
		dens float64
	}
	cands := make([]cand, 0, len(row.Terms))
	var freeWeight int64
	for _, t := range row.Terms {
		c := litCost(cost, t.Lit)
		if c == 0 {
			freeWeight += t.Coef
			continue
		}
		cands = append(cands, cand{c: c, a: t.Coef, dens: float64(c) / float64(t.Coef)})
	}
	need := row.Degree - freeWeight
	if need <= 0 {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dens < cands[j].dens })
	var bound float64
	for _, cd := range cands {
		if cd.a >= need {
			bound += cd.dens * float64(need)
			return bound
		}
		bound += float64(cd.c)
		need -= cd.a
	}
	// need > 0 with all literals used: the row alone is unsatisfiable; the
	// caller has already flagged red.Infeasible in that case. Return the
	// accumulated bound (sound).
	return bound
}

// Estimate implements Estimator with a greedy weighted independent set:
// rows are ranked by bound contribution (density per variable) and picked
// greedily subject to disjointness on unassigned variables.
func (m MIS) Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result {
	if red.Infeasible {
		return Result{Bound: InfBound, Responsible: []int{red.InfeasibleRow}}
	}
	// fault point "mis.estimate": lets chaos tests fail even the fallback
	// rung of the ladder.
	fault.Fire("mis.estimate")
	type scored struct {
		idx   int // index into red.Rows
		bound float64
	}
	rows := red.Rows
	if m.MaxRows > 0 && len(rows) > m.MaxRows {
		rows = rows[:m.MaxRows]
	}
	scoredRows := make([]scored, 0, len(rows))
	for i := range rows {
		b := rowLPBound(cost, &rows[i])
		if b <= 0 {
			continue
		}
		scoredRows = append(scoredRows, scored{idx: i, bound: b})
	}
	// Prefer high bound per blocked variable: a cheap row that blocks many
	// variables starves better rows.
	sort.Slice(scoredRows, func(a, b int) bool {
		sa := scoredRows[a].bound / float64(1+len(rows[scoredRows[a].idx].Terms))
		sb := scoredRows[b].bound / float64(1+len(rows[scoredRows[b].idx].Terms))
		if sa != sb {
			return sa > sb
		}
		return rows[scoredRows[a].idx].EngIdx < rows[scoredRows[b].idx].EngIdx
	})
	used := map[pb.Var]bool{}
	var total float64
	var responsible []int
	for _, s := range scoredRows {
		row := &rows[s.idx]
		clash := false
		for _, t := range row.Terms {
			if used[t.Lit.Var()] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for _, t := range row.Terms {
			used[t.Lit.Var()] = true
		}
		total += s.bound
		responsible = append(responsible, row.EngIdx)
	}
	return Result{Bound: ceilBound(total), Responsible: responsible}
}
